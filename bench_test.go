// Benchmark harness: one bench per table and figure of the paper, plus the
// ablation benches DESIGN.md calls out. Each bench runs the full pipeline
// that regenerates the artifact and reports the headline shape metrics via
// b.ReportMetric so `go test -bench` output doubles as the experiment
// record (EXPERIMENTS.md quotes these).
package offnetrisk

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/coloc"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/optics"
	"offnetrisk/internal/stats"
	"offnetrisk/internal/tracert"
	"offnetrisk/internal/traffic"
)

const benchSeed = 42

// instrument attaches a fresh tracer to the pipeline and returns it, so the
// bench can attach per-stage wall-clock to its output.
func instrument(p *Pipeline) *obs.Tracer {
	tr := obs.NewTracer()
	p.Instrument(tr)
	return tr
}

// reportStageTimings reports the per-stage wall-clock of the bench's last
// pipeline run: one "ms/<stage>" metric per root span and per first-level
// child. Stage names are hierarchical ("table1/tls-scan"), so the metrics
// read as a flat per-stage cost profile next to the shape metrics.
func reportStageTimings(b *testing.B, tr *obs.Tracer) {
	b.Helper()
	if tr == nil {
		return
	}
	for _, root := range tr.Snapshot(time.Time{}) {
		b.ReportMetric(root.DurMS, "ms/"+root.Name)
		for _, child := range root.Children {
			b.ReportMetric(child.DurMS, "ms/"+child.Name)
		}
	}
}

// BenchmarkTable1OffnetScan regenerates Table 1 (§2.2): TLS scans at both
// epochs + certificate inference. Reported metrics: per-hypergiant footprint
// growth in percent (paper: Google +23.2, Netflix +37.4, Meta +16.9,
// Akamai +0.0).
func BenchmarkTable1OffnetScan(b *testing.B) {
	var res *Table1Result
	var tr *obs.Tracer
	for i := 0; i < b.N; i++ {
		p := NewPipeline(benchSeed, ScaleTiny)
		tr = instrument(p)
		var err error
		res, err = p.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.GrowthPct, "growth%/"+row.Hypergiant)
	}
	reportStageTimings(b, tr)
}

// benchColocation builds the shared §3 pipeline once per bench run.
func benchColocation(b *testing.B) (*hypergiant.Deployment, *mlab.Campaign, *coloc.Analysis) {
	b.Helper()
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	c := mlab.Measure(d, mlab.Sites(163, benchSeed), mlab.DefaultConfig(benchSeed))
	return d, c, coloc.Analyze(w, c, []float64{0.1, 0.9})
}

// BenchmarkTable2Colocation regenerates Table 2 (§3.2): the latency
// campaign, OPTICS at ξ∈{0.1,0.9}, and the colocation buckets. Metrics: the
// fully-colocated bucket per hypergiant at each ξ (paper: Google 33→62,
// Akamai 16→58, Meta 32→84, Netflix 46→71 percent) plus the §4.1
// single-site fraction for Netflix (paper: 75.3–91.2%).
//
// World and deployment are built outside the timed region; the sub-benches
// time only the ping campaign + OPTICS clustering at each worker count, so
// workers=1 vs workers=4 reads directly as the parallel speedup of the §3
// hot path. The shape metrics are identical across worker counts by
// construction (see TestInstrumentationDeterminism).
func BenchmarkTable2Colocation(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	sites := mlab.Sites(163, benchSeed)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			var a *coloc.Analysis
			for i := 0; i < b.N; i++ {
				cfg := mlab.DefaultConfig(benchSeed)
				cfg.Workers = workers
				c, err := mlab.MeasureContext(ctx, d, sites, cfg)
				if err != nil {
					b.Fatal(err)
				}
				a, err = coloc.AnalyzeContext(ctx, w, c, []float64{0.1, 0.9}, workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, row := range a.Table2() {
				b.ReportMetric(100*row.BucketFrac[stats.BucketFull],
					"full-coloc%/"+row.HG.String()+"/xi="+xiTag(row.Xi))
			}
			b.ReportMetric(100*a.SingleSiteFrac(traffic.Netflix, 0.1), "single-site%/Netflix/xi=0.1")
			b.ReportMetric(100*a.SingleSiteFrac(traffic.Netflix, 0.9), "single-site%/Netflix/xi=0.9")
		})
	}
}

func xiTag(xi float64) string {
	if xi < 0.5 {
		return "0.1"
	}
	return "0.9"
}

// BenchmarkFigure1CountryShares regenerates Figure 1: per-country user
// population in multi-hypergiant ISPs. Metrics: global user shares at ≥1,
// ≥2, ≥3, 4 hypergiants (paper: 76% at ≥1; Figure 1c countries near 100%).
func BenchmarkFigure1CountryShares(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	hosting := make(map[inet.ASN][]traffic.HG)
	for _, as := range d.HostingISPs() {
		hosting[as] = d.HGsIn(as)
	}
	b.ResetTimer()
	var rows []coloc.CountryShare
	for i := 0; i < b.N; i++ {
		rows = coloc.Figure1(w, hosting)
	}
	_ = rows
	one, two, three, four := coloc.GlobalUserShares(w, hosting)
	b.ReportMetric(100*one, "users%≥1HG")
	b.ReportMetric(100*two, "users%≥2HG")
	b.ReportMetric(100*three, "users%≥3HG")
	b.ReportMetric(100*four, "users%4HG")
}

// BenchmarkFigure2TrafficCCDF regenerates Figure 2: the user-weighted CCDF
// of single-facility traffic share. Metrics: the CCDF at share ≥ 0.25
// (paper: 71–82% of analyzable users) and at ≥ 0.52 (the four-hypergiant
// ceiling; paper: 18–31%).
func BenchmarkFigure2TrafficCCDF(b *testing.B) {
	_, _, a := benchColocation(b)
	b.ResetTimer()
	var lo, hi []stats.CCDFPoint
	for i := 0; i < b.N; i++ {
		lo = a.Figure2(0.1)
		hi = a.Figure2(0.9)
	}
	b.ReportMetric(100*stats.CCDFAt(lo, 0.25), "users%≥25%share/xi=0.1")
	b.ReportMetric(100*stats.CCDFAt(hi, 0.25), "users%≥25%share/xi=0.9")
	// The all-four facility share is 0.21·0.80+0.09·0.95+0.15·0.86+0.175·0.75
	// ≈ 0.514 ("52%" in the paper's rounding); probe just below it.
	b.ReportMetric(100*stats.CCDFAt(lo, 0.51), "users%≥52%share/xi=0.1")
	b.ReportMetric(100*stats.CCDFAt(hi, 0.51), "users%≥52%share/xi=0.9")
}

// BenchmarkValidationRDNS regenerates the §3.2 validation: PTR synthesis,
// HOIHO-style extraction, per-cluster location consistency. Metric:
// consistency percentage (paper: ~97% at ξ=0.1, ~94% at ξ=0.9).
func BenchmarkValidationRDNS(b *testing.B) {
	var res *ColocationResult
	var tr *obs.Tracer
	for i := 0; i < b.N; i++ {
		p := NewPipeline(benchSeed, ScaleTiny)
		tr = instrument(p)
		var err error
		res, err = p.Colocation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, v := range res.Validation {
		b.ReportMetric(100*v.Accuracy, "consistent%/xi="+xiTag(v.Xi))
	}
	reportStageTimings(b, tr)
}

// BenchmarkSec41CovidSpike regenerates the §4.1 lockdown replay. Metrics:
// Netflix offnet growth (paper: ≈+20%) and interdomain growth factor
// (paper: more than 2×).
func BenchmarkSec41CovidSpike(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	m := capacity.Build(d, capacity.DefaultConfig(benchSeed))
	b.ResetTimer()
	var rep capacity.CovidReport
	for i := 0; i < b.N; i++ {
		rep = capacity.CovidReplay(m, traffic.Netflix, 1.58)
	}
	b.ReportMetric(100*rep.OffnetGrowth(), "offnet-growth%")
	b.ReportMetric(1+rep.InterdomainGrowth(), "interdomain-x")
}

// BenchmarkSec41Diurnal regenerates the §4.1 diurnal sweep (530-apartment
// observation). Metrics: distant-server share at trough and peak.
func BenchmarkSec41Diurnal(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	m := capacity.Build(d, capacity.DefaultConfig(benchSeed))
	b.ResetTimer()
	var pts []capacity.DiurnalPoint
	for i := 0; i < b.N; i++ {
		pts = capacity.DiurnalSweep(m)
	}
	b.ReportMetric(100*pts[3].DistantShare, "distant%@03h")
	b.ReportMetric(100*pts[19].DistantShare, "distant%@19h")
}

// BenchmarkSec421PeeringSurvey regenerates §4.2.1: the traceroute campaign
// and peering inference for Google. Metrics: peer / possible / no-evidence
// percentages over offnet hosts (paper: 38.2 / 13.3 / 48.4) and the IXP
// shares over peers (62.2 via, 42.5 only).
//
// World and deployment are built outside the timed region; the sub-benches
// time the traceroute campaign + inference at each worker count (the VM
// count matches the tiny-scale pipeline), so workers=1 vs workers=4 reads
// directly as the parallel speedup of the §4.2.1 hot path.
func BenchmarkSec421PeeringSurvey(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			var st tracert.SurveyStats
			var n int
			for i := 0; i < b.N; i++ {
				cfg := tracert.DefaultConfig(benchSeed)
				cfg.VMs = 24
				cfg.Workers = workers
				traces, err := tracert.SurveyContext(ctx, d, traffic.Google, cfg)
				if err != nil {
					b.Fatal(err)
				}
				n = 0
				for _, list := range traces {
					n += len(list)
				}
				inf := tracert.Infer(w, traffic.Google, d.ContentAS[traffic.Google], traces)
				st = tracert.Stats(d, traffic.Google, inf)
			}
			b.ReportMetric(float64(n), "traceroutes")
			b.ReportMetric(pct(st.HostsPeer, st.HostsTotal), "peer%")
			b.ReportMetric(pct(st.HostsPossible, st.HostsTotal), "possible%")
			b.ReportMetric(pct(st.HostsNoEvidence, st.HostsTotal), "no-evidence%")
			b.ReportMetric(pct(st.PeersViaIXP, st.PeersTotal), "via-ixp%")
			b.ReportMetric(pct(st.PeersOnlyIXP, st.PeersTotal), "only-ixp%")
		})
	}
}

// BenchmarkSec422PNICensus regenerates §4.2.2. Metrics: mean exceedance
// among deficit PNIs (paper: ≥13%) and the severe (≥2× capacity) fraction
// (paper: ≈10%), aggregated over all four hypergiants.
func BenchmarkSec422PNICensus(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	m := capacity.Build(d, capacity.DefaultConfig(benchSeed))
	b.ResetTimer()
	var total, deficit, severe float64
	var excess float64
	for i := 0; i < b.N; i++ {
		total, deficit, severe, excess = 0, 0, 0, 0
		for _, hg := range traffic.All {
			c := capacity.CensusPNIs(m, hg)
			total += float64(c.Total)
			deficit += float64(c.Deficit)
			severe += c.SevereFraction * float64(c.Total)
			excess += c.MeanExcessPct * float64(c.Deficit)
		}
	}
	if deficit > 0 {
		b.ReportMetric(excess/deficit, "mean-excess%")
	}
	if total > 0 {
		b.ReportMetric(100*severe/total, "severe%")
		b.ReportMetric(100*deficit/total, "deficit%")
	}
}

// BenchmarkSec43Cascade regenerates the §4.3 cascade sweep: fail each
// hosting ISP's most-colocated facility. Metrics: mean hypergiants knocked
// out per failure and the fraction of scenarios congesting a shared link.
func BenchmarkSec43Cascade(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	m := capacity.Build(d, capacity.DefaultConfig(benchSeed))
	hosts := d.HostingISPs()
	b.ResetTimer()
	var st cascade.SweepStats
	for i := 0; i < b.N; i++ {
		st = cascade.Sweep(m, d, hosts)
	}
	b.ReportMetric(st.MeanHGsPerFailure, "hg-per-failure")
	b.ReportMetric(100*st.CongestionFraction, "congesting%")
	b.ReportMetric(st.MeanCollateralISPs, "collateral-isps")
}

// --- Ablations ------------------------------------------------------------

// pairF1 scores flat cluster labels against rack-level ground truth — the
// granularity ξ=0.1 resolves (see internal/coloc.ScoreLabels).
func pairF1(ms []*mlab.Measurement, labels []int) (f1 float64, pairs int) {
	s := coloc.ScoreLabels(ms, labels, coloc.ByRack)
	return s.F1(), s.TruePos + s.FalseNeg
}

// BenchmarkAblationXiVsThreshold compares the ξ-steepness extraction against
// naive reachability thresholding (cut the ordering wherever reachability
// exceeds a fixed eps). Metric: pairwise F1 against facility ground truth
// for both extractors.
func BenchmarkAblationXiVsThreshold(b *testing.B) {
	_, c, _ := benchColocation(b)
	epsValues := []float64{0.05, 1.0, 8.0}
	b.ResetTimer()
	var xiF1, n float64
	thF1 := make([]float64, len(epsValues))
	for i := 0; i < b.N; i++ {
		xiF1, n = 0, 0
		for j := range thF1 {
			thF1[j] = 0
		}
		for as, ms := range c.ByISP {
			if len(ms) < 2 {
				continue
			}
			dm := coloc.DistanceMatrix(ms, c.GoodSites[as], coloc.DiscrepancyExclusion)
			res := optics.Run(len(ms), dm.At, 2, math.Inf(1))

			lx := res.Labels(res.ExtractXi(0.1, 2))
			f1, _ := pairF1(ms, lx)
			xiF1 += f1

			for j, eps := range epsValues {
				f1t, _ := pairF1(ms, thresholdLabels(res, eps))
				thF1[j] += f1t
			}
			n++
		}
	}
	if n > 0 {
		// ξ extraction needs no absolute scale; fixed-eps thresholding only
		// matches it when eps happens to land between the noise floor and
		// the inter-facility gap — the brittleness this ablation measures.
		b.ReportMetric(xiF1/n, "f1-xi")
		for j, eps := range epsValues {
			b.ReportMetric(thF1[j]/n, fmt.Sprintf("f1-threshold-eps=%.2f", eps))
		}
	}
}

// thresholdLabels is the naive baseline: split the OPTICS ordering wherever
// reachability exceeds eps. It needs the right absolute eps to work — the
// brittleness ξ extraction avoids.
func thresholdLabels(res *optics.Result, eps float64) []int {
	n := len(res.Order)
	posLabel := make([]int, n)
	cur := -1
	next := 0
	for pos := 0; pos < n; pos++ {
		if math.IsInf(res.Reach[pos], 1) || res.Reach[pos] > eps {
			cur = next
			next++
		}
		posLabel[pos] = cur
	}
	// Singleton clusters are noise.
	count := make(map[int]int)
	for _, l := range posLabel {
		count[l]++
	}
	labels := make([]int, n)
	for pos, p := range res.Order {
		l := posLabel[pos]
		if count[l] < 2 {
			l = -1
		}
		labels[p] = l
	}
	return labels
}

// BenchmarkAblationSiteExclusion compares the pairwise distance with and
// without the 20% worst-site exclusion (Appendix A). Metric: pairwise F1 at
// ξ=0.1 under both settings.
func BenchmarkAblationSiteExclusion(b *testing.B) {
	_, c, _ := benchColocation(b)
	b.ResetTimer()
	var withF1, withoutF1, n float64
	for i := 0; i < b.N; i++ {
		withF1, withoutF1, n = 0, 0, 0
		for as, ms := range c.ByISP {
			if len(ms) < 2 {
				continue
			}
			for _, exclude := range []float64{coloc.DiscrepancyExclusion, 0} {
				dm := coloc.DistanceMatrix(ms, c.GoodSites[as], exclude)
				labels := optics.ClusterXi(len(ms), dm.At, 2, 0.1)
				f1, _ := pairF1(ms, labels)
				if exclude > 0 {
					withF1 += f1
				} else {
					withoutF1 += f1
				}
			}
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(withF1/n, "f1-with-exclusion")
		b.ReportMetric(withoutF1/n, "f1-without")
	}
}

// BenchmarkAblationPingStat compares the per-probe summary statistic:
// second-smallest of 8 (the paper's choice) against min and median. Metric:
// pairwise F1 at ξ=0.1 per statistic.
func BenchmarkAblationPingStat(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	sites := mlab.Sites(163, benchSeed)
	stat := map[string]mlab.Statistic{
		"second": mlab.StatSecondSmallest,
		"min":    mlab.StatMin,
		"median": mlab.StatMedian,
	}
	b.ResetTimer()
	scores := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		for name, st := range stat {
			cfg := mlab.DefaultConfig(benchSeed)
			cfg.Stat = st
			c := mlab.Measure(d, sites, cfg)
			var sum, n float64
			for as, ms := range c.ByISP {
				if len(ms) < 2 {
					continue
				}
				dm := coloc.DistanceMatrix(ms, c.GoodSites[as], coloc.DiscrepancyExclusion)
				labels := optics.ClusterXi(len(ms), dm.At, 2, 0.1)
				f1, _ := pairF1(ms, labels)
				sum += f1
				n++
			}
			if n > 0 {
				scores[name] = sum / n
			}
		}
	}
	for name, f1 := range scores {
		b.ReportMetric(f1, "f1-"+name)
	}
}

// BenchmarkMappingTechnique regenerates the §3.2 methodology comparison:
// the 2013 DNS/ECS user→offnet mapping against both steering eras.
// Metrics: Google coverage then and now (paper: worked in 2013; impossible
// today), Akamai coverage now (partial: allowlisted ECS only).
func BenchmarkMappingTechnique(b *testing.B) {
	var res *MappingResult
	var tr *obs.Tracer
	for i := 0; i < b.N; i++ {
		p := NewPipeline(benchSeed, ScaleTiny)
		tr = instrument(p)
		var err error
		res, err = p.MappingStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	defer reportStageTimings(b, tr)
	for _, row := range res.Era2013 {
		if row.Hypergiant == "Google" {
			b.ReportMetric(row.CoveragePct, "coverage%/Google/2013")
		}
	}
	for _, row := range res.Era2023 {
		switch row.Hypergiant {
		case "Google":
			b.ReportMetric(row.CoveragePct, "coverage%/Google/2023")
		case "Akamai":
			b.ReportMetric(row.CoveragePct, "coverage%/Akamai/2023")
		}
	}
}

// BenchmarkMitigationIsolation regenerates the §6 isolation what-if.
// Metrics: mean collateral ISPs per facility failure with shared fate vs
// per-hypergiant capacity slices.
func BenchmarkMitigationIsolation(b *testing.B) {
	var res *MitigationResult
	var tr *obs.Tracer
	for i := 0; i < b.N; i++ {
		p := NewPipeline(benchSeed, ScaleTiny)
		tr = instrument(p)
		var err error
		res, err = p.MitigationStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	defer reportStageTimings(b, tr)
	b.ReportMetric(res.MeanCollateralShared, "collateral-shared")
	b.ReportMetric(res.MeanCollateralIsolated, "collateral-isolated")
	b.ReportMetric(res.FullyNeutralizedPct, "neutralized%")
}

// BenchmarkSec41Apartments regenerates the 530-apartment panel (§4.1).
// Metrics: median nearby share at trough and peak (the paper's qualitative
// claim: high at the trough, lower at the peak).
func BenchmarkSec41Apartments(b *testing.B) {
	var res *CapacityResult
	var tr *obs.Tracer
	for i := 0; i < b.N; i++ {
		p := NewPipeline(benchSeed, ScaleTiny)
		tr = instrument(p)
		var err error
		res, err = p.CapacityStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	defer reportStageTimings(b, tr)
	b.ReportMetric(100*res.Panel.TroughNearby, "nearby%@trough")
	b.ReportMetric(100*res.Panel.PeakNearby, "nearby%@peak")
}

// BenchmarkAblationColocationRisk quantifies the paper's central claim:
// Monte Carlo 3-facility outages against today's colocated deployments vs
// a counterfactual where ISPs spread hypergiants across facilities.
// Metrics: mean hypergiants knocked out per outage and mean affected users
// under both layouts.
func BenchmarkAblationColocationRisk(b *testing.B) {
	w := inet.Generate(inet.TinyConfig(benchSeed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	decol := cascade.Decolocate(d)
	mCol := capacity.Build(d, capacity.DefaultConfig(benchSeed))
	mDecol := capacity.Build(decol, capacity.DefaultConfig(benchSeed))
	b.ResetTimer()
	var col, dec cascade.RiskCurve
	for i := 0; i < b.N; i++ {
		col = cascade.MonteCarlo(mCol, d, 3, 60, benchSeed)
		dec = cascade.MonteCarlo(mDecol, decol, 3, 60, benchSeed)
	}
	b.ReportMetric(col.MeanHGs, "hg-hit/colocated")
	b.ReportMetric(dec.MeanHGs, "hg-hit/decolocated")
	b.ReportMetric(col.MeanAffected/1e6, "Musers/colocated")
	b.ReportMetric(dec.MeanAffected/1e6, "Musers/decolocated")
}
