package offnetrisk

import (
	"context"
	"fmt"
	"strings"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/session"
	"offnetrisk/internal/traffic"
)

// QoERow summarizes user-session quality under one serving state.
type QoERow struct {
	MedianRTTms  float64
	P95RTTms     float64
	OffnetPct    float64
	DroppedPct   float64
	SessionCount int
}

// CascadeResult reproduces the §3.3/§4.3 risk argument as a simulation: fail
// each ISP's most-colocated facility and watch the spillover.
type CascadeResult struct {
	// Sweep over all hosting ISPs.
	Scenarios          int
	MeanHGsPerFailure  float64 // >1 means colocation correlates failures
	CongestionFraction float64 // scenarios congesting a shared link
	MeanCollateralISPs float64

	// Worst single scenario (most collateral users).
	Worst CascadeScenario

	// User-experience view: session QoE at peak baseline vs under the
	// worst-case facility failure with minimal shared headroom.
	BaselineQoE, WorstQoE QoERow
}

// CascadeScenario is one concrete facility-failure story.
type CascadeScenario struct {
	ISP               string
	Facility          string
	HGsKnockedOut     []string
	DirectUsers       float64
	CollateralISPs    int
	CollateralUsers   float64
	CongestedIXPs     int
	CongestedTransits int
}

// CascadeStudy sweeps top-facility failures across every hosting ISP and
// reports the aggregate correlated-failure statistics plus the worst case.
func (p *Pipeline) CascadeStudy() (*CascadeResult, error) {
	return p.CascadeStudyContext(context.Background())
}

// CascadeStudyContext is CascadeStudy with cancellation; the facility sweep
// and the QoE session simulation fan out across p.Workers goroutines.
func (p *Pipeline) CascadeStudyContext(ctx context.Context) (*CascadeResult, error) {
	root := p.span("cascade-study")
	defer root.End()
	w, d, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	sp := p.span("cascade-study/build-model")
	m := capacity.Build(d, capacity.ConfigFromScenario(p.spec(), p.Seed))
	sp.End()
	hosts := d.HostingISPs()
	sctx, sp := p.spanCtx(ctx, "cascade-study/facility-sweep")
	st, err := cascade.SweepContext(sctx, m, d, hosts, p.Workers)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttr("scenarios", st.Scenarios)
	sp.End()
	out := &CascadeResult{
		Scenarios:          st.Scenarios,
		MeanHGsPerFailure:  st.MeanHGsPerFailure,
		CongestionFraction: st.CongestionFraction,
		MeanCollateralISPs: st.MeanCollateralISPs,
	}

	// Find the worst case: fail the facility hosting the most hypergiants
	// in the ISP with the most users among multi-hypergiant facilities.
	var worstAS inet.ASN
	var worstFID inet.FacilityID
	var worstScore float64
	for _, as := range hosts {
		fid, n := cascade.TopFacility(d, as)
		if n < 2 {
			continue
		}
		score := float64(n) * w.ISPs[as].Users
		if score > worstScore {
			worstScore, worstAS, worstFID = score, as, fid
		}
	}
	if worstScore > 0 {
		sctx, sp = p.spanCtx(ctx, "cascade-study/worst-case-qoe")
		defer sp.End()
		sc := cascade.DefaultScenario()
		sc.SharedHeadroom = 1.1
		sc.FailFacilities = map[inet.FacilityID]bool{worstFID: true}
		rep := cascade.Simulate(m, d, sc)

		// Session-level QoE: baseline vs this worst case.
		base := cascade.Simulate(m, d, cascade.DefaultScenario())
		scfg := session.ConfigFromScenario(p.spec(), p.Seed)
		scfg.Workers = p.Workers
		baseSessions, err := session.RunContext(sctx, m, d, base, scfg)
		if err != nil {
			return nil, err
		}
		worstSessions, err := session.RunContext(sctx, m, d, rep, scfg)
		if err != nil {
			return nil, err
		}
		out.BaselineQoE = qoeRow(session.Score(baseSessions))
		out.WorstQoE = qoeRow(session.Score(worstSessions))

		var hgs []string
		for _, hg := range rep.HGsImpacted {
			hgs = append(hgs, hg.String())
		}
		out.Worst = CascadeScenario{
			ISP:               w.ISPs[worstAS].Name,
			Facility:          w.Facilities[worstFID].Name(),
			HGsKnockedOut:     hgs,
			DirectUsers:       rep.DirectUsers(w),
			CollateralISPs:    len(rep.CollateralISPs),
			CollateralUsers:   rep.CollateralUsers(w),
			CongestedIXPs:     len(rep.CongestedIXPs()),
			CongestedTransits: len(rep.CongestedTransits()),
		}
		sp.SetAttr("collateral_isps", out.Worst.CollateralISPs)
	}
	return out, nil
}

func qoeRow(q session.QoE) QoERow {
	return QoERow{
		MedianRTTms:  q.MedianRTT,
		P95RTTms:     q.P95RTT,
		OffnetPct:    100 * q.OffnetShare,
		DroppedPct:   100 * q.DroppedShare,
		SessionCount: q.Sessions,
	}
}

// PerfectStorm runs the §4.3 worst case on demand: simultaneous surge on
// every hypergiant plus failure of the N most-colocated facilities.
func (p *Pipeline) PerfectStorm(failures int, surge float64) (*CascadeScenario, error) {
	return p.PerfectStormContext(context.Background(), failures, surge)
}

// PerfectStormContext is PerfectStorm with cancellation (the scenario is a
// single simulation, so the context only gates entry).
func (p *Pipeline) PerfectStormContext(ctx context.Context, failures int, surge float64) (*CascadeScenario, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	root := p.span("perfect-storm")
	root.SetAttr("failures", failures)
	root.SetAttr("surge", surge)
	defer root.End()
	w, d, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	m := capacity.Build(d, capacity.ConfigFromScenario(p.spec(), p.Seed))
	sc := cascade.DefaultScenario()
	sc.Surge = map[traffic.HG]float64{
		traffic.Google: surge, traffic.Netflix: surge,
		traffic.Meta: surge, traffic.Akamai: surge,
	}
	sc.FailFacilities = make(map[inet.FacilityID]bool)
	for _, as := range d.HostingISPs() {
		if len(sc.FailFacilities) >= failures {
			break
		}
		if fid, n := cascade.TopFacility(d, as); n >= 2 {
			sc.FailFacilities[fid] = true
		}
	}
	rep := cascade.Simulate(m, d, sc)
	var hgs []string
	for _, hg := range rep.HGsImpacted {
		hgs = append(hgs, hg.String())
	}
	return &CascadeScenario{
		ISP:               fmt.Sprintf("%d ISPs", len(rep.DirectISPs)),
		Facility:          fmt.Sprintf("%d facilities", len(sc.FailFacilities)),
		HGsKnockedOut:     hgs,
		DirectUsers:       rep.DirectUsers(w),
		CollateralISPs:    len(rep.CollateralISPs),
		CollateralUsers:   rep.CollateralUsers(w),
		CongestedIXPs:     len(rep.CongestedIXPs()),
		CongestedTransits: len(rep.CongestedTransits()),
	}, nil
}

// String renders the study.
func (r *CascadeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3 cascade sweep: %d top-facility failures simulated\n", r.Scenarios)
	fmt.Fprintf(&b, "  mean hypergiants knocked out per failure: %.2f\n", r.MeanHGsPerFailure)
	fmt.Fprintf(&b, "  scenarios congesting a shared link: %.0f%%\n", 100*r.CongestionFraction)
	fmt.Fprintf(&b, "  mean collateral ISPs per scenario: %.1f\n", r.MeanCollateralISPs)
	if r.BaselineQoE.SessionCount > 0 {
		fmt.Fprintf(&b, "  session QoE: median %.0f→%.0f ms, p95 %.0f→%.0f ms, dropped %.1f%%→%.1f%% (baseline→worst case)\n",
			r.BaselineQoE.MedianRTTms, r.WorstQoE.MedianRTTms,
			r.BaselineQoE.P95RTTms, r.WorstQoE.P95RTTms,
			r.BaselineQoE.DroppedPct, r.WorstQoE.DroppedPct)
	}
	if r.Worst.Facility != "" {
		fmt.Fprintf(&b, "  worst case: %s at %s knocks out %s; %.1fM direct users, %d collateral ISPs (%.1fM users), %d IXPs + %d transits congested\n",
			r.Worst.ISP, r.Worst.Facility, strings.Join(r.Worst.HGsKnockedOut, "+"),
			r.Worst.DirectUsers/1e6, r.Worst.CollateralISPs, r.Worst.CollateralUsers/1e6,
			r.Worst.CongestedIXPs, r.Worst.CongestedTransits)
	}
	return b.String()
}
