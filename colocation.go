package offnetrisk

import (
	"context"
	"fmt"
	"strings"

	"offnetrisk/internal/coloc"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/rdns"
	"offnetrisk/internal/stats"
	"offnetrisk/internal/traffic"
)

// Xis are the two steepness values the paper clusters with, "likely
// bounding the actual colocation".
var Xis = []float64{0.1, 0.9}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Hypergiant string
	Xi         float64
	SolePct    float64
	// Bucket percentages over ISPs hosting the hypergiant:
	// {0%, (0,50)%, [50,100)%, 100%} of offnets colocated with another
	// hypergiant. SolePct + ΣBuckets ≈ 100.
	BucketPct [4]float64
}

// Figure2Point is one point of the Figure 2 CCDF.
type Figure2Point struct {
	Share float64 // estimated fraction of traffic from one facility
	Users float64 // fraction of users with at least this share
}

// CountryRow is one country of Figure 1.
type CountryRow struct {
	Country  string
	Users    float64
	AtLeast2 float64
	AtLeast3 float64
	AllFour  float64
}

// ValidationRow is one ξ of the §3.2 rDNS validation.
type ValidationRow struct {
	Xi              float64
	Evaluated       int
	SingleCity      int
	SingleMetroArea int
	MultipleCities  int
	Accuracy        float64
}

// ColocationResult bundles the §3 analyses: Table 2, Figures 1 and 2, the
// clustering validation, the single-site statistics of §4.1, and the §3.2
// headline user-share numbers.
type ColocationResult struct {
	Table2  []Table2Row
	Figure2 map[float64][]Figure2Point
	Figure1 []CountryRow
	// Global user shares (Figure 1 summary): fraction of all users in ISPs
	// hosting ≥1/≥2/≥3/4 hypergiants. Paper: 76% for ≥1.
	UsersAtLeast1, UsersAtLeast2, UsersAtLeast3, UsersAllFour float64
	// UsersAnalyzable is the fraction of users in ISPs that passed the
	// measurement gates (paper: 56%).
	UsersAnalyzable float64
	// UserShare25Pct is, per ξ, the fraction of analyzable users whose ISP
	// has one facility able to serve ≥25% of their traffic (paper: 71–82%).
	UserShare25Pct map[float64]float64
	// TrafficHHI is the user-weighted mean Herfindahl index of traffic
	// concentration across facilities, per ξ — §1's "concentration of
	// traffic" as a single number.
	TrafficHHI map[float64]float64
	// SingleSitePct is, per hypergiant per ξ, the share of host ISPs with
	// a single site (§4.1).
	SingleSitePct map[string]map[float64]float64
	Validation    []ValidationRow
	// Campaign accounting (Appendix A).
	Unresponsive, Impossible, MeasuredISPs int
}

// Colocation runs the full §3 pipeline on the 2023 deployment: latency
// campaign from 163 vantage points, per-ISP OPTICS clustering at both ξ,
// Table 2 bucketing, Figure 1/2 aggregation, and the rDNS validation.
func (p *Pipeline) Colocation() (*ColocationResult, error) {
	return p.ColocationContext(context.Background())
}

// ColocationContext is Colocation with cancellation; the ping campaign and
// the per-ISP OPTICS clustering fan out across p.Workers goroutines.
func (p *Pipeline) ColocationContext(ctx context.Context) (*ColocationResult, error) {
	root := p.span("colocation")
	defer root.End()
	w, d, err := p.deployment(hypergiant.Epoch2023)
	if err != nil {
		return nil, err
	}
	sctx, sp := p.spanCtx(ctx, "colocation/ping-campaign")
	sites := mlab.Sites(p.spec().Measurement.PingSites, p.Seed)
	mcfg := mlab.ConfigFromScenario(p.spec(), p.Seed)
	mcfg.Workers = p.Workers
	mcfg.Chaos = p.Chaos
	campaign, err := mlab.MeasureContext(sctx, d, sites, mcfg)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttr("measured_isps", campaign.MeasuredISPs)
	sp.SetAttr("unresponsive", campaign.Unresponsive)
	sp.End()
	sctx, sp = p.spanCtx(ctx, "colocation/optics-cluster")
	analysis, err := coloc.AnalyzeMixContext(sctx, w, campaign, Xis, p.Workers, p.spec().Mix())
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttr("isps_clustered", len(analysis.PerISP))
	sp.End()

	sp = p.span("colocation/aggregate")
	out := &ColocationResult{
		Figure2:        make(map[float64][]Figure2Point),
		UserShare25Pct: make(map[float64]float64),
		TrafficHHI:     make(map[float64]float64),
		SingleSitePct:  make(map[string]map[float64]float64),
		Unresponsive:   campaign.Unresponsive,
		Impossible:     campaign.Impossible,
		MeasuredISPs:   campaign.MeasuredISPs,
	}

	for _, row := range analysis.Table2() {
		r := Table2Row{Hypergiant: row.HG.String(), Xi: row.Xi, SolePct: 100 * row.SoleFrac}
		for b := stats.BucketZero; b < stats.NumBuckets; b++ {
			r.BucketPct[int(b)] = 100 * row.BucketFrac[b]
		}
		out.Table2 = append(out.Table2, r)
	}

	for _, xi := range Xis {
		for _, pt := range analysis.Figure2(xi) {
			out.Figure2[xi] = append(out.Figure2[xi], Figure2Point{Share: pt.X, Users: pt.Frac})
		}
		out.UserShare25Pct[xi] = analysis.UserShareAtLeast(xi, 0.25)
		out.TrafficHHI[xi] = analysis.MeanTrafficHHI(xi)
	}

	hosting := make(map[inet.ASN][]traffic.HG)
	for _, as := range d.HostingISPs() {
		hosting[as] = d.HGsIn(as)
	}
	for _, row := range coloc.Figure1(w, hosting) {
		out.Figure1 = append(out.Figure1, CountryRow{
			Country: row.Country, Users: row.Users,
			AtLeast2: row.AtLeast2, AtLeast3: row.AtLeast3, AllFour: row.AllFour,
		})
	}
	out.UsersAtLeast1, out.UsersAtLeast2, out.UsersAtLeast3, out.UsersAllFour =
		coloc.GlobalUserShares(w, hosting)

	var analyzableUsers float64
	for as := range campaign.ByISP {
		if isp, ok := w.ISPs[as]; ok {
			analyzableUsers += isp.Users
		}
	}
	if total := w.TotalUsers(); total > 0 {
		out.UsersAnalyzable = analyzableUsers / total
	}

	for _, hg := range traffic.All {
		out.SingleSitePct[hg.String()] = make(map[float64]float64)
		for _, xi := range Xis {
			out.SingleSitePct[hg.String()][xi] = 100 * analysis.SingleSiteFrac(hg, xi)
		}
	}

	sp.SetAttr("countries", len(out.Figure1))
	sp.End()

	// §3.2 validation against synthesized PTR records.
	sp = p.span("colocation/rdns-validate")
	defer sp.End()
	ptrs := rdns.Synthesize(d, rdns.ConfigFromScenario(p.spec(), p.Seed))
	for _, xi := range Xis {
		clusters := make(map[string][][]netaddr.Addr)
		for as, isp := range analysis.PerISP {
			ms := campaign.ByISP[as]
			byLabel := make(map[int][]netaddr.Addr)
			for i, l := range isp.PerXi[xi].Labels {
				if l < 0 {
					continue
				}
				byLabel[l] = append(byLabel[l], ms[i].Target.Addr)
			}
			var list [][]netaddr.Addr
			for _, members := range byLabel {
				list = append(list, members)
			}
			clusters[fmt.Sprint(as)] = list
		}
		rep := rdns.Validate(ptrs, clusters, xi)
		out.Validation = append(out.Validation, ValidationRow{
			Xi: xi, Evaluated: rep.ClustersEvaluated,
			SingleCity: rep.SingleCity, SingleMetroArea: rep.SingleMetroArea,
			MultipleCities: rep.MultipleCities, Accuracy: rep.Accuracy(),
		})
	}
	return out, nil
}

// String renders Table 2 plus the headline numbers.
func (r *ColocationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: %% of host ISPs by colocation bucket\n")
	fmt.Fprintf(&b, "%-8s %4s %6s %8s %10s %12s %7s\n",
		"HG", "xi", "sole", "0%", "(0,50)%", "[50,100)%", "100%")
	for _, row := range r.Table2 {
		fmt.Fprintf(&b, "%-8s %4.1f %5.0f%% %7.0f%% %9.0f%% %11.0f%% %6.0f%%\n",
			row.Hypergiant, row.Xi, row.SolePct,
			row.BucketPct[0], row.BucketPct[1], row.BucketPct[2], row.BucketPct[3])
	}
	fmt.Fprintf(&b, "\nusers in ISPs hosting ≥1/≥2/≥3/4 hypergiants: %.0f%% / %.0f%% / %.0f%% / %.0f%%\n",
		100*r.UsersAtLeast1, 100*r.UsersAtLeast2, 100*r.UsersAtLeast3, 100*r.UsersAllFour)
	for _, xi := range Xis {
		fmt.Fprintf(&b, "ξ=%.1f: users with a ≥25%%-of-traffic facility: %.0f%%; traffic concentration HHI %.2f\n",
			xi, 100*r.UserShare25Pct[xi], r.TrafficHHI[xi])
	}
	for _, v := range r.Validation {
		fmt.Fprintf(&b, "validation ξ=%.1f: %d clusters evaluated, %d single-city, %d metro, %d multi-city (%.0f%% consistent)\n",
			v.Xi, v.Evaluated, v.SingleCity, v.SingleMetroArea, v.MultipleCities, 100*v.Accuracy)
	}
	return b.String()
}
