package offnetrisk

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/chaos"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/scenario"
	"offnetrisk/internal/temporal"
)

// flashCrowdSchedule loads the committed seed-42 flash-crowd schedule — the
// ISSUE 10 acceptance artifact. Tests that replay it pin the digest contract
// to the exact bytes shipped in the repo.
func flashCrowdSchedule(t *testing.T) *scenario.Schedule {
	t.Helper()
	sched, err := scenario.LoadSchedule("schedules/ios-flash-crowd.json")
	if err != nil {
		t.Fatalf("committed schedule does not load: %v", err)
	}
	return sched
}

// temporalRun replays the flash crowd on the tiny seed-42 pipeline at the
// given parallelism knobs and chaos profile, returning the trajectory.
func temporalRun(t *testing.T, workers, shards int, profile string, sched *scenario.Schedule) *temporal.Trajectory {
	t.Helper()
	obs.Default.Reset()
	p := NewPipeline(42, ScaleTiny)
	p.Workers = workers
	p.Shards = shards
	if profile != "" {
		prof, err := chaos.ParseProfile(profile)
		if err != nil {
			t.Fatal(err)
		}
		p.Chaos = chaos.New(prof, 7)
	}
	traj, err := p.TemporalReplayContext(context.Background(), 24, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

// TestTrajectoryDigestDeterminism is the acceptance guard: the committed
// flash-crowd schedule replays byte-identically — same digest, same summary —
// at every worker count, every shard count, and under heavy chaos. Workers,
// shards and chaos are parallelism/fault knobs on the measurement pipeline;
// none of them may reach the temporal engine.
func TestTrajectoryDigestDeterminism(t *testing.T) {
	sched := flashCrowdSchedule(t)
	base := temporalRun(t, 1, 1, "", sched)
	digest := base.Digest()
	if len(base.Events) == 0 || len(base.Steps) == 0 {
		t.Fatal("flash-crowd replay produced an empty trajectory")
	}
	summary := base.Summary()
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		traj := temporalRun(t, workers, 1, "", sched)
		if traj.Digest() != digest {
			t.Fatalf("Workers=%d trajectory digest diverged", workers)
		}
		if traj.Summary() != summary {
			t.Fatalf("Workers=%d trajectory summary diverged", workers)
		}
	}
	for _, shards := range []int{1, 4} {
		traj := temporalRun(t, 0, shards, "", sched)
		if traj.Digest() != digest {
			t.Fatalf("Shards=%d trajectory digest diverged", shards)
		}
	}
	for _, workers := range []int{1, 4} {
		traj := temporalRun(t, workers, 1, "heavy", sched)
		if traj.Digest() != digest {
			t.Fatalf("Workers=%d -chaos heavy trajectory digest diverged: chaos leaked into the engine", workers)
		}
	}
}

// TestTrajectoryDigestShardedBuilder: the digest also survives switching the
// world synthesis path itself — the sharded streaming builder at several
// shard counts must yield the same world bytes, hence the same trajectory.
func TestTrajectoryDigestShardedBuilder(t *testing.T) {
	sched := flashCrowdSchedule(t)
	run := func(shards int) string {
		cfg := inet.TinyConfig(42)
		cfg.Sharded = true
		cfg.Shards = shards
		w := inet.Generate(cfg)
		d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(42))
		if err != nil {
			t.Fatal(err)
		}
		m := capacity.Build(d, capacity.DefaultConfig(42))
		eng, err := temporal.New(m, d, sched, temporal.Config{Hours: 24})
		if err != nil {
			t.Fatal(err)
		}
		traj, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return traj.Digest()
	}
	base := run(1)
	for _, shards := range []int{2, 4} {
		if d := run(shards); d != base {
			t.Fatalf("sharded builder Shards=%d trajectory digest diverged", shards)
		}
	}
}

// TestScheduleFreeRunLeavesManifestClean: without -hours/-schedule the
// temporal fields never appear in manifest JSON (omitempty), so every
// committed golden manifest stays byte-identical — the transparency half of
// the drift contract.
func TestScheduleFreeRunLeavesManifestClean(t *testing.T) {
	m := obs.Manifest{Tool: "offnetrisk-test", Seed: 42}
	b, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trajectory_digest", "temporal_hours", "temporal_schedule"} {
		if strings.Contains(string(b), key) {
			t.Fatalf("schedule-free manifest leaks %q: %s", key, b)
		}
	}
	m.TrajectoryDigest = "sha256:abc"
	m.TemporalHours = 24
	m.TemporalSchedule = "ios-flash-crowd"
	b, err = json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trajectory_digest", "temporal_hours", "temporal_schedule"} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("replay manifest missing %q: %s", key, b)
		}
	}
}

// TestTemporalReplayTransparency: running a replay must not perturb the
// measurement experiments — Table 1 renders byte-identically with and
// without a trajectory having been computed on the same pipeline.
func TestTemporalReplayTransparency(t *testing.T) {
	obs.Default.Reset()
	plain := tinyPipeline(42)
	a, err := plain.Table1()
	if err != nil {
		t.Fatal(err)
	}
	withReplay := tinyPipeline(42)
	if _, err := withReplay.TemporalReplayContext(context.Background(), 24, flashCrowdSchedule(t), nil); err != nil {
		t.Fatal(err)
	}
	b, err := withReplay.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("temporal replay perturbed Table 1 output")
	}
}
