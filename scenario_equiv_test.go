package offnetrisk

import (
	"reflect"
	"runtime"
	"testing"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/rdns"
	"offnetrisk/internal/scan"
	"offnetrisk/internal/scenario"
	"offnetrisk/internal/session"
	"offnetrisk/internal/tracert"
	"offnetrisk/internal/traffic"
)

// TestScenarioConfigEquivalence: every layer's ConfigFromScenario applied to
// the default scenario reproduces the hand-written default constructor —
// the contract that makes plain runs byte-identical to pre-scenario builds.
func TestScenarioConfigEquivalence(t *testing.T) {
	sp := scenario.Default()
	const seed = 42

	if got, want := mlab.ConfigFromScenario(sp, seed), mlab.DefaultConfig(seed); got != want {
		t.Errorf("mlab: %+v != %+v", got, want)
	}
	if got, want := tracert.ConfigFromScenario(sp, seed), tracert.DefaultConfig(seed); got != want {
		t.Errorf("tracert: %+v != %+v", got, want)
	}
	if got, want := scan.ConfigFromScenario(sp, seed), scan.DefaultConfig(seed); got != want {
		t.Errorf("scan: %+v != %+v", got, want)
	}
	if got, want := rdns.ConfigFromScenario(sp, seed), rdns.DefaultConfig(seed); got != want {
		t.Errorf("rdns: %+v != %+v", got, want)
	}

	// capacity and session gained a Mix field the old constructors leave
	// zero; the scenario fills it with the equivalent default mix.
	gotCap, wantCap := capacity.ConfigFromScenario(sp, seed), capacity.DefaultConfig(seed)
	wantCap.Mix = traffic.DefaultMix()
	if gotCap != wantCap {
		t.Errorf("capacity: %+v != %+v", gotCap, wantCap)
	}
	gotSes, wantSes := session.ConfigFromScenario(sp, seed), session.DefaultConfig(seed)
	wantSes.Mix = traffic.DefaultMix()
	if gotSes != wantSes {
		t.Errorf("session: %+v != %+v", gotSes, wantSes)
	}

	gotDep, wantDep := hypergiant.DeployConfigFromScenario(sp, seed), hypergiant.DefaultDeployConfig(seed)
	wantDep.Mix = traffic.DefaultMix()
	wantDep.PNICapacityScale = 1.0
	wantDep.TransitCoverageScale = 0.8
	wantDep.Profiles = hypergiant.Profiles()
	if !reflect.DeepEqual(gotDep, wantDep) {
		t.Errorf("hypergiant deploy: %+v != %+v", gotDep, wantDep)
	}
	if !reflect.DeepEqual(hypergiant.ProfilesFromScenario(sp), hypergiant.Profiles()) {
		t.Error("default-scenario profiles differ from the compiled-in profiles")
	}
}

// TestDefaultScenarioPipelineByteIdentical: a pipeline explicitly running
// the default scenario renders every experiment byte-identically to a plain
// NewPipeline — spec plumbing adds no drift.
func TestDefaultScenarioPipelineByteIdentical(t *testing.T) {
	plain := runAll(t, NewPipeline(42, ScaleTiny))

	spec := NewPipelineFromSpec(scenario.Default(), 42)
	spec.Scale = ScaleTiny
	if got := runAll(t, spec); got != plain {
		t.Fatal("default-scenario pipeline diverged from plain pipeline")
	}
}

// TestScenarioWorkerDeterminism: each named scenario is byte-identical at
// any worker count — the spec layer introduces no ordering hazards.
func TestScenarioWorkerDeterminism(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sp := scenario.MustLookup(name)
			render := func(workers int) string {
				p := NewPipelineFromSpec(sp, 42)
				p.Scale = ScaleTiny
				p.Workers = workers
				return runAll(t, p)
			}
			serial := render(1)
			for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
				if got := render(workers); got != serial {
					t.Fatalf("scenario %s diverged at Workers=%d", name, workers)
				}
			}
		})
	}
}
