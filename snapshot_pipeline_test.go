package offnetrisk

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestPipelineSnapshotStreaming: a campaign run against a spilled world
// snapshot produces results identical to one that synthesizes in memory,
// and the second epoch of the snapshot-backed run streams from disk
// instead of regenerating. This is the snapshot contract end to end:
// spill once, stream thereafter, byte-identical science either way.
func TestPipelineSnapshotStreaming(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.ofnw")

	mem := tinyPipeline(7)
	memRes, err := mem.Table1()
	if err != nil {
		t.Fatal(err)
	}

	snap := tinyPipeline(7)
	snap.SnapshotPath = path
	snapRes, err := snap.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memRes, snapRes) {
		t.Fatal("snapshot-backed Table1 differs from in-memory Table1")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("world was not spilled: %v", err)
	}

	// A fresh pipeline over the same snapshot streams the world back and
	// still agrees — the consuming-campaign half of the contract.
	replay := tinyPipeline(7)
	replay.SnapshotPath = path
	replayRes, err := replay.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memRes, replayRes) {
		t.Fatal("streamed-world Table1 differs from in-memory Table1")
	}
}

// TestPipelineSnapshotMismatchIsFatal: pointing a run at a snapshot built
// for a different world must fail loudly, not silently regenerate or —
// worse — analyze the wrong world.
func TestPipelineSnapshotMismatchIsFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.ofnw")
	first := tinyPipeline(7)
	first.SnapshotPath = path
	if _, err := first.Table1(); err != nil {
		t.Fatal(err)
	}

	other := tinyPipeline(8) // different seed => different world config
	other.SnapshotPath = path
	if _, err := other.Table1(); err == nil {
		t.Fatal("seed-8 run accepted a seed-7 snapshot")
	} else if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("unexpected error: %v", err)
	}
}
