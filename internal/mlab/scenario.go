package mlab

import "offnetrisk/internal/scenario"

// ConfigFromScenario builds the campaign configuration a resolved spec's
// measurement section declares. With the default scenario it equals
// DefaultConfig(seed).
func ConfigFromScenario(sp *scenario.Spec, seed int64) Config {
	return Config{
		Seed:      seed,
		Probes:    sp.Measurement.PingProbes,
		ProbeLoss: sp.Measurement.ProbeLoss,
		MinSites:  sp.Measurement.MinSites,
	}
}
