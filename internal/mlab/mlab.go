// Package mlab simulates the paper's vantage-point latency campaign
// (Appendix A): pings from 163 globally distributed measurement sites to
// every discovered offnet address, keeping the second-smallest of 8 RTTs,
// discarding unresponsive addresses and addresses whose latency combinations
// violate the speed of light, and gating ISPs on having at least 100 usable
// sites.
//
// The latency model is built so the structure OPTICS exploits survives:
// servers in the same facility share, per vantage point, an identical stable
// route offset on top of the great-circle fiber time; servers in different
// facilities — even in the same city — take different routes and therefore
// different offsets. Per-probe jitter rides on top and is mostly suppressed
// by the second-smallest-of-8 statistic.
package mlab

import (
	"context"
	"fmt"
	"math"
	"sort"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/geo"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/par"
	"offnetrisk/internal/rngutil"
)

// Campaign accounting metrics (Appendix A). Counters are cumulative over the
// process; the run manifest snapshots them per run.
var (
	mRTTsMeasured = obs.NewCounter("ping.rtts_measured",
		"per-(site,target) RTT summaries kept by the campaign")
	mUnresponsive = obs.NewCounter("ping.targets_unresponsive",
		"offnet targets discarded as unresponsive")
	mImpossible = obs.NewCounter("ping.targets_impossible",
		"targets discarded for speed-of-light violations")
	mISPsGated = obs.NewCounter("ping.isps_gated",
		"ISPs discarded by the minimum-usable-sites gate")
	mRTTHist = obs.NewHistogram("ping.rtt_ms",
		"distribution of kept RTT summaries in milliseconds",
		[]float64{1, 2, 5, 10, 20, 50, 100, 200, 500})
)

// Funnels mirror the Appendix A accounting as explicit in/out/drop stages.
// They are fed from the serial merge and gate loops, so snapshots are
// byte-identical at any worker count and reconcile exactly with the counters
// above (ping.filter drops == targets_unresponsive + targets_impossible;
// ping.isp_gate drops == isps_gated).
var (
	fFilter = obs.NewFunnel("ping.filter",
		"offnet targets entering the campaign vs. kept after the responsiveness and speed-of-light filters")
	fFilterUnresponsive = fFilter.Reason("unresponsive")
	fFilterSOL          = fFilter.Reason("sol_violation")
	fISPGate            = obs.NewFunnel("ping.isp_gate",
		"measured ISPs entering the minimum-usable-sites gate vs. kept")
	fGateLT100 = fISPGate.Reason("lt_100_vps")
)

// Site is one measurement vantage point.
type Site struct {
	ID   int
	Name string
	Loc  geo.Point
}

// Sites generates n vantage points spread over the metro catalogue,
// round-robin with location jitter — M-Lab style coverage.
func Sites(n int, seed int64) []Site {
	r := rngutil.New(seed ^ 0x14ab5)
	out := make([]Site, 0, n)
	for i := 0; i < n; i++ {
		m := geo.Metros[i%len(geo.Metros)]
		out = append(out, Site{
			ID:   i,
			Name: m.Code,
			Loc: geo.Point{
				LatDeg: m.Loc.LatDeg + (r.Float64()*2-1)*0.1,
				LonDeg: m.Loc.LonDeg + (r.Float64()*2-1)*0.1,
			},
		})
	}
	return out
}

// Statistic selects which order statistic of the probe RTTs is kept.
type Statistic int

// Statistics. The paper keeps the second-smallest of 8 (Appendix A,
// following Calder et al. 2013); Min and Median exist for the ablation
// benches.
const (
	StatSecondSmallest Statistic = iota
	StatMin
	StatMedian
)

// Config controls the campaign.
type Config struct {
	// Seed drives probe noise.
	Seed int64
	// Probes per (site, target); the paper sends 8.
	Probes int
	// Stat is the per-(site,target) summary statistic.
	Stat Statistic
	// ProbeLoss is the per-probe loss probability.
	ProbeLoss float64
	// MinSites is the per-ISP usability gate: ISPs with fewer sites having
	// successful measurements to all their offnets are discarded (100 in
	// the paper).
	MinSites int
	// Workers bounds the campaign's fan-out across targets; <= 0 means
	// GOMAXPROCS. Any worker count produces identical results: every
	// (site, target) probe stream is derived independently, never advanced
	// across targets.
	Workers int
	// Chaos injects deterministic faults (target blackouts, extra probe
	// loss, stragglers, transient errors); nil runs clean. Fault decisions
	// are pure per-item hashes on streams separate from the probe noise, so
	// unaffected targets measure byte-identically to a clean run.
	Chaos *chaos.Injector
}

// DefaultConfig mirrors Appendix A with 163 sites assumed.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Probes: 8, ProbeLoss: 0.01, MinSites: 100}
}

func (c Config) sanitized() Config {
	if c.Probes <= 0 {
		c.Probes = 8
	}
	if c.ProbeLoss < 0 || c.ProbeLoss >= 1 {
		c.ProbeLoss = 0.01
	}
	if c.MinSites <= 0 {
		c.MinSites = 100
	}
	return c
}

// Measurement is the per-target latency vector: RTT in milliseconds per
// site, NaN where all probes were lost.
type Measurement struct {
	Target *hypergiant.Server
	RTTms  []float64
}

// Campaign is the outcome of measuring a deployment.
type Campaign struct {
	Sites []Site
	// ByISP holds usable measurements grouped by hosting ISP; only ISPs
	// passing the MinSites gate appear.
	ByISP map[inet.ASN][]*Measurement
	// GoodSites lists, per usable ISP, the site indices with successful
	// measurements to every offnet in the ISP; distances are computed over
	// these.
	GoodSites map[inet.ASN][]int
	// Discard accounting (Appendix A reports 12K unresponsive, 1.9K
	// impossible, plus ISPs failing the site gate).
	Unresponsive  int
	Impossible    int
	GatedISPs     int
	MeasuredISPs  int
	TotalMeasured int
	// Chaos accounting: targets lost to injected blackouts/transients and
	// ISPs gated because one of their offnets was chaos-lost (an ISP whose
	// target set is incomplete cannot be clustered against full vectors).
	// Zero on clean runs.
	ChaosLost      int
	ChaosGatedISPs int
}

// Measure runs the campaign against every offnet server in the deployment.
func Measure(d *hypergiant.Deployment, sites []Site, cfg Config) *Campaign {
	c, _ := MeasureContext(context.Background(), d, sites, cfg)
	return c
}

// MeasureContext is Measure with cancellation: the campaign fans out across
// targets on cfg.Workers goroutines and aborts early (returning a non-nil
// error and no campaign) when the context is cancelled. Results are merged
// in deployment order, so they are byte-identical at any worker count.
func MeasureContext(ctx context.Context, d *hypergiant.Deployment, sites []Site, cfg Config) (*Campaign, error) {
	cfg = cfg.sanitized()
	c := &Campaign{
		Sites:     sites,
		ByISP:     make(map[inet.ASN][]*Measurement),
		GoodSites: make(map[inet.ASN][]int),
	}
	w := d.World

	// The per-facility RTT floors are shared by every server in a facility;
	// precompute them (in parallel, keyed by ascending facility ID) so the
	// per-target pass below is read-only on the cache.
	var facs []inet.FacilityID
	seen := make(map[inet.FacilityID]bool)
	for _, s := range d.Servers {
		if s.Responsive && !s.Anycast && !seen[s.Facility] {
			seen[s.Facility] = true
			facs = append(facs, s.Facility)
		}
	}
	sort.Slice(facs, func(i, j int) bool { return facs[i] < facs[j] })
	opts := par.Options{Workers: cfg.Workers, Name: "ping-campaign"}
	bases, err := par.Map(ctx, len(facs), opts, func(_ context.Context, i int) ([]float64, error) {
		return facilityBase(w.Facilities[facs[i]], sites), nil
	})
	if err != nil {
		return nil, err
	}
	baseCache := make(map[inet.FacilityID][]float64, len(facs))
	for i, fid := range facs {
		baseCache[fid] = bases[i]
	}

	// One task per server. Each target's probe streams are derived from
	// (seed, addr, site) — never advanced across targets — so the fan-out
	// cannot change a single RTT.
	type outcome struct {
		m            *Measurement
		unresponsive bool
		impossible   bool
		blackout     bool
		transient    bool
	}
	outcomes, err := par.MapLocal(ctx, len(d.Servers), opts, newProbeScratch, func(_ context.Context, i int, sc *probeScratch) (outcome, error) {
		s := d.Servers[i]
		if !s.Responsive {
			mUnresponsive.Inc()
			return outcome{unresponsive: true}, nil
		}
		// Injected faults replace the measurement, never run alongside it: a
		// blacked-out or transiently-failed target is measured zero times, a
		// retried target exactly once — so the filter funnel counts every
		// target once no matter how many attempts it took (the retry
		// attempts themselves land in chaos.retries_total inside Attempts).
		if cfg.Chaos.TargetBlackout(int64(s.Addr)) {
			return outcome{blackout: true}, nil
		}
		if _, ok := cfg.Chaos.Attempts(chaos.StagePing, int64(s.Addr), 0); !ok {
			return outcome{transient: true}, nil
		}
		m := measureServer(w, s, sites, cfg, baseCache[s.Facility], sc)
		if violatesSpeedOfLight(m.RTTms, sites) {
			mImpossible.Inc()
			return outcome{impossible: true}, nil
		}
		for _, rtt := range m.RTTms {
			if !math.IsNaN(rtt) {
				mRTTsMeasured.Inc()
				mRTTHist.Observe(rtt)
			}
		}
		return outcome{m: m}, nil
	})
	if err != nil {
		return nil, err
	}

	// Serial merge in deployment order — identical to the old single-loop
	// accounting. The filter funnel is fed here, not in the parallel tasks,
	// so its snapshot is deterministic at any worker count. Chaos drop
	// reasons are bound lazily so clean snapshots carry no chaos_* rows.
	var cBlackout, cTransient, cGateLost *obs.Counter
	if cfg.Chaos.Enabled() {
		cBlackout = fFilter.Reason("chaos_blackout")
		cTransient = fFilter.Reason("chaos_transient")
		cGateLost = fISPGate.Reason("chaos_lost_offnets")
	}
	lr := obs.ActiveLineage()
	// filterDrop mirrors one filter-funnel drop into the lineage recorder.
	// Targets group by hosting ISP so every ISP's losses keep sampled
	// evidence; evidence is pure per (target, config), so duplicate decisions
	// from re-measured deployments dedupe byte-identically.
	filterDrop := func(s *hypergiant.Server, reason string) {
		lr.CountDrop(lnFilter, reason, 1)
		if lr != nil {
			lr.Record(lnFilter, fmt.Sprintf("isp=%d|reason=%s", s.ISP, reason),
				s.Addr.String(), obs.LineageDropped, reason, func() []obs.LineageKV {
					return []obs.LineageKV{
						{K: "hg", V: s.HG.String()},
						{K: "isp", V: fmt.Sprint(s.ISP)},
						{K: "facility", V: fmt.Sprint(s.Facility)},
					}
				})
		}
	}
	fFilter.In(int64(len(outcomes)))
	lr.CountIn(lnFilter, int64(len(outcomes)))
	perISP := make(map[inet.ASN][]*Measurement)
	lost := make(map[inet.ASN]int)
	for i, o := range outcomes {
		s := d.Servers[i]
		switch {
		case o.unresponsive:
			c.Unresponsive++
			fFilterUnresponsive.Inc()
			filterDrop(s, "unresponsive")
		case o.blackout:
			c.ChaosLost++
			lost[s.ISP]++
			cBlackout.Inc()
			cfg.Chaos.Blackouts.Inc()
			filterDrop(s, "chaos_blackout")
		case o.transient:
			c.ChaosLost++
			lost[s.ISP]++
			cTransient.Inc()
			filterDrop(s, "chaos_transient")
		case o.impossible:
			c.Impossible++
			fFilterSOL.Inc()
			filterDrop(s, "sol_violation")
		default:
			perISP[s.ISP] = append(perISP[s.ISP], o.m)
			c.TotalMeasured++
			fFilter.Out(1)
			lr.CountKept(lnFilter, 1)
			if lr != nil {
				m := o.m
				lr.Record(lnFilter, fmt.Sprintf("isp=%d", s.ISP), s.Addr.String(),
					obs.LineageKept, "measured", func() []obs.LineageKV {
						sitesOK := 0
						for _, rtt := range m.RTTms {
							if !math.IsNaN(rtt) {
								sitesOK++
							}
						}
						return []obs.LineageKV{
							{K: "hg", V: s.HG.String()},
							{K: "isp", V: fmt.Sprint(s.ISP)},
							{K: "facility", V: fmt.Sprint(s.Facility)},
							{K: "sites_with_rtt", V: fmt.Sprint(sitesOK)},
						}
					})
			}
		}
	}

	// Per-ISP gate: count sites with successful measurements to all offnets.
	// An ISP that chaos-lost any offnet is gated first: its surviving
	// vectors describe an incomplete target set, and — because blackout and
	// transient fault sets are nested across profiles while survivors'
	// streams are untouched — this rule makes the usable-ISP set shrink
	// monotonically with the fault rate (prop_test.go asserts it).
	fISPGate.In(int64(len(perISP)))
	lr.CountIn(lnISPGate, int64(len(perISP)))
	for as, ms := range perISP {
		if lost[as] > 0 {
			c.ChaosGatedISPs++
			cGateLost.Inc()
			lr.CountDrop(lnISPGate, "chaos_lost_offnets", 1)
			if lr != nil {
				as, nLost, nMs := as, lost[as], len(ms)
				lr.Record(lnISPGate, fmt.Sprintf("isp=%d", as), fmt.Sprintf("isp=%d", as),
					obs.LineageDropped, "chaos_lost_offnets", func() []obs.LineageKV {
						return []obs.LineageKV{
							{K: "offnets_lost", V: fmt.Sprint(nLost)},
							{K: "offnets_measured", V: fmt.Sprint(nMs)},
						}
					})
			}
			continue
		}
		var good []int
		for si := range sites {
			ok := true
			for _, m := range ms {
				if math.IsNaN(m.RTTms[si]) {
					ok = false
					break
				}
			}
			if ok {
				good = append(good, si)
			}
		}
		if len(good) < cfg.MinSites {
			c.GatedISPs++
			mISPsGated.Inc()
			fGateLT100.Inc()
			lr.CountDrop(lnISPGate, "lt_100_vps", 1)
			if lr != nil {
				as, nGood, nMs := as, len(good), len(ms)
				lr.Record(lnISPGate, fmt.Sprintf("isp=%d", as), fmt.Sprintf("isp=%d", as),
					obs.LineageDropped, "lt_100_vps", func() []obs.LineageKV {
						return []obs.LineageKV{
							{K: "good_sites", V: fmt.Sprint(nGood)},
							{K: "min_sites", V: fmt.Sprint(cfg.MinSites)},
							{K: "offnets_measured", V: fmt.Sprint(nMs)},
						}
					})
			}
			continue
		}
		c.ByISP[as] = ms
		c.GoodSites[as] = good
		c.MeasuredISPs++
		fISPGate.Out(1)
		lr.CountKept(lnISPGate, 1)
		if lr != nil {
			as, nGood, nMs := as, len(good), len(ms)
			lr.Record(lnISPGate, fmt.Sprintf("isp=%d", as), fmt.Sprintf("isp=%d", as),
				obs.LineageKept, "usable", func() []obs.LineageKV {
					return []obs.LineageKV{
						{K: "good_sites", V: fmt.Sprint(nGood)},
						{K: "min_sites", V: fmt.Sprint(cfg.MinSites)},
						{K: "offnets_measured", V: fmt.Sprint(nMs)},
					}
				})
		}
	}
	return c, nil
}

// Lineage stage names mirror the funnels above.
const (
	lnFilter  = "ping.filter"
	lnISPGate = "ping.isp_gate"
)

// facilityBase precomputes, per site, the stable RTT floor toward a
// facility: fiber propagation plus the route detour. Shared by every server
// in the facility — the invariant the clustering relies on.
func facilityBase(f *inet.Facility, sites []Site) []float64 {
	out := make([]float64, len(sites))
	for si, site := range sites {
		base := float64(geo.FiberRTT(site.Loc, f.Loc, 1.25)) / 1e6 // ms
		out[si] = base + routeOffsetMs(site.ID, f.ID, false, nil)
	}
	return out
}

// probeScratch is the per-worker probe buffer: the per-(site,target) RTT
// samples are collected into a reused slice instead of growing a fresh one
// for every site — the old code's dominant allocation (up to four append
// growths per site × 163 sites × every server).
type probeScratch struct {
	got []float64
}

func newProbeScratch() *probeScratch { return &probeScratch{} }

// measureServer produces the per-site second-smallest-of-N RTT vector.
// base may be nil for anycast targets, which are located per-site.
func measureServer(w *inet.World, s *hypergiant.Server, sites []Site, cfg Config, base []float64, sc *probeScratch) *Measurement {
	rtts := make([]float64, len(sites))
	if cap(sc.got) < cfg.Probes {
		sc.got = make([]float64, 0, cfg.Probes)
	}

	// Anycast targets answer from several distinct locations.
	var anycastLocs []geo.Point
	if s.Anycast {
		r := rngutil.NewFast(uint64(cfg.Seed) ^ uint64(s.Addr)*0x9e3779b9)
		for k := 0; k < 3; k++ {
			anycastLocs = append(anycastLocs, geo.Metros[r.Intn(len(geo.Metros))].Loc)
		}
	}

	for si, site := range sites {
		r := rngutil.NewFast(uint64(cfg.Seed) ^ uint64(s.Addr)<<7 ^ uint64(si)*0x85ebca6b)
		var floor float64
		if !s.Anycast {
			// Rack-level structure: servers in one rack share a top-of-rack
			// path and an identical sub-millisecond detour; racks within a
			// facility differ slightly. This is what separates the paper's
			// two ξ settings: ξ=0.1 is steep enough to split some rack
			// groups apart, ξ=0.9 never is.
			floor = rackOffsetMs(si, s.Facility, s.Rack)
		}
		if s.Anycast {
			// The anycast catchment picks the closest answering location.
			best := math.Inf(1)
			loc := sites[si].Loc
			for _, al := range anycastLocs {
				if d := geo.DistanceKm(site.Loc, al); d < best {
					best = d
					loc = al
				}
			}
			floor = float64(geo.FiberRTT(site.Loc, loc, 1.25)) / 1e6
			floor += routeOffsetMs(site.ID, s.Facility, true, s.Addr)
		} else {
			floor += base[si]
		}
		// Chaos straggler: the whole (target, site) path inflates. Drawn
		// from the injector's own stream, so unaffected paths are untouched.
		if ms, ok := cfg.Chaos.Straggler(int64(s.Addr), int64(si)); ok {
			floor += ms
			cfg.Chaos.Stragglers.Inc()
		}

		got := sc.got[:0]
		for p := 0; p < cfg.Probes; p++ {
			if r.Float64() < cfg.ProbeLoss {
				continue
			}
			// Queueing jitter: exponential-ish tail plus a small floor. The
			// scale keeps the second-smallest-of-8 residual (~0.2 ms) well
			// below typical inter-facility route-offset gaps (~2 ms), the
			// separation the validated clustering technique relies on.
			jitter := -0.8 * math.Log(1-r.Float64())
			// Chaos probe loss is checked after the jitter draw so the
			// natural stream advances exactly as in a clean run: dropping
			// probe p never changes probe p+1's RTT.
			if cfg.Chaos.ProbeLost(int64(s.Addr), int64(si), int64(p)) {
				cfg.Chaos.ProbesLost.Inc()
				continue
			}
			got = append(got, floor+0.1+jitter)
		}
		if len(got) < 2 {
			rtts[si] = math.NaN()
			continue
		}
		sort.Float64s(got)
		switch cfg.Stat {
		case StatMin:
			rtts[si] = got[0]
		case StatMedian:
			rtts[si] = got[len(got)/2]
		default:
			rtts[si] = got[1] // second smallest (Appendix A)
		}
	}
	return &Measurement{Target: s, RTTms: rtts}
}

// routeOffsetMs is the stable routing detour from a site toward a facility:
// identical for all servers in one facility, different across facilities.
// It is a pure hash so campaigns are reproducible and co-facility servers
// agree exactly.
func routeOffsetMs(siteID int, fac inet.FacilityID, anycast bool, addr interface{ String() string }) float64 {
	var h uint64 = 1469598103934665603
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(siteID) + 1)
	if anycast {
		// Anycast addresses do not share facility routing; key on address.
		for _, b := range []byte(addr.String()) {
			mix(uint64(b))
		}
	} else {
		mix(uint64(fac) * 2654435761)
	}
	// Map to 0.5–6.5 ms.
	return 0.5 + float64(h%6000)/1000.0
}

// rackOffsetMs is the stable per-(site,facility,rack) detour, 0–1.2 ms:
// co-rack servers agree exactly, racks differ.
func rackOffsetMs(siteID int, fac inet.FacilityID, rack int) float64 {
	var h uint64 = 14695981039346656037
	for _, v := range []uint64{uint64(siteID) + 1, uint64(fac) * 2654435761, uint64(rack)*0x9e3779b9 + 7} {
		h ^= v
		h *= 1099511628211
	}
	return float64(h%1200) / 1000.0
}

// violatesSpeedOfLight reports whether the latency vector is physically
// impossible for a single destination: two sites i, j with
// RTT_i + RTT_j < minimum RTT between the sites themselves (a packet
// site_i→dst→site_j cannot beat the direct great-circle path). Only the
// lowest-latency sites can participate in violations, so the check is
// restricted to the 20 smallest entries.
func violatesSpeedOfLight(rtts []float64, sites []Site) bool {
	type sr struct {
		rtt float64
		idx int
	}
	var low []sr
	for i, v := range rtts {
		if !math.IsNaN(v) {
			low = append(low, sr{v, i})
		}
	}
	if len(low) < 2 {
		return false
	}
	sort.Slice(low, func(i, j int) bool { return low[i].rtt < low[j].rtt })
	if len(low) > 20 {
		low = low[:20]
	}
	for i := 0; i < len(low); i++ {
		for j := i + 1; j < len(low); j++ {
			a, b := low[i], low[j]
			min := float64(geo.MinRTT(sites[a.idx].Loc, sites[b.idx].Loc)) / 1e6
			if a.rtt+b.rtt < min {
				return true
			}
		}
	}
	return false
}
