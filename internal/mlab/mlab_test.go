package mlab

import (
	"math"
	"testing"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func campaign(t *testing.T, seed int64) (*hypergiant.Deployment, *Campaign) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	sites := Sites(163, seed)
	return d, Measure(d, sites, DefaultConfig(seed))
}

func TestSitesGeneration(t *testing.T) {
	sites := Sites(163, 1)
	if len(sites) != 163 {
		t.Fatalf("got %d sites", len(sites))
	}
	for i, s := range sites {
		if s.ID != i {
			t.Errorf("site %d has ID %d", i, s.ID)
		}
		if !s.Loc.Valid() {
			t.Errorf("site %d invalid location", i)
		}
	}
	// Deterministic.
	again := Sites(163, 1)
	for i := range sites {
		if sites[i].Loc != again[i].Loc {
			t.Fatal("sites not deterministic")
		}
	}
}

func TestCampaignBasics(t *testing.T) {
	d, c := campaign(t, 1)
	if c.MeasuredISPs == 0 {
		t.Fatal("no ISPs survived the campaign")
	}
	if c.TotalMeasured == 0 {
		t.Fatal("no measurements")
	}
	// Unresponsive servers exist in the deployment and are discarded.
	anyUnresponsive := false
	for _, s := range d.Servers {
		if !s.Responsive {
			anyUnresponsive = true
		}
	}
	if anyUnresponsive && c.Unresponsive == 0 {
		t.Error("unresponsive servers not accounted")
	}
	for as, ms := range c.ByISP {
		good := c.GoodSites[as]
		if len(good) < DefaultConfig(1).MinSites {
			t.Errorf("ISP %d passed gate with %d sites", as, len(good))
		}
		for _, m := range ms {
			if len(m.RTTms) != len(c.Sites) {
				t.Fatalf("vector length %d != %d sites", len(m.RTTms), len(c.Sites))
			}
			for _, si := range good {
				if math.IsNaN(m.RTTms[si]) {
					t.Fatalf("good site %d has NaN for ISP %d", si, as)
				}
			}
		}
	}
}

func TestLatencyPhysicallySane(t *testing.T) {
	d, c := campaign(t, 2)
	w := d.World
	for _, ms := range c.ByISP {
		for _, m := range ms {
			if m.Target.Anycast {
				continue
			}
			f := w.Facilities[m.Target.Facility]
			for si, rtt := range m.RTTms {
				if math.IsNaN(rtt) {
					continue
				}
				minMs := float64(geo.MinRTT(c.Sites[si].Loc, f.Loc)) / 1e6
				if rtt < minMs {
					t.Fatalf("RTT %.2fms beats light (%.2fms) site %d → %s",
						rtt, minMs, si, f.Name())
				}
			}
		}
	}
}

func TestCoFacilityServersLookAlike(t *testing.T) {
	// The clustering premise: two servers in the same facility must have
	// nearly identical vectors; two servers in different facilities of the
	// same ISP must differ measurably.
	_, c := campaign(t, 1)
	foundSame, foundDiff := false, false
	for _, ms := range c.ByISP {
		for i := 0; i < len(ms) && !(foundSame && foundDiff); i++ {
			for j := i + 1; j < len(ms); j++ {
				if ms[i].Target.Anycast || ms[j].Target.Anycast {
					continue
				}
				dist := meanAbsDiff(ms[i].RTTms, ms[j].RTTms)
				if ms[i].Target.Facility == ms[j].Target.Facility {
					foundSame = true
					if dist > 1.5 {
						t.Errorf("co-facility servers differ by %.2fms on average", dist)
					}
				} else {
					foundDiff = true
					if dist < 0.05 {
						t.Errorf("cross-facility servers nearly identical (%.3fms)", dist)
					}
				}
			}
		}
	}
	if !foundSame {
		t.Error("no co-facility pair found in campaign")
	}
	if !foundDiff {
		t.Log("no cross-facility pair found (acceptable in tiny worlds)")
	}
}

func meanAbsDiff(a, b []float64) float64 {
	var sum float64
	var n int
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		sum += math.Abs(a[i] - b[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func TestAnycastDiscarded(t *testing.T) {
	d, c := campaign(t, 1)
	anycast := 0
	for _, s := range d.Servers {
		if s.Anycast && s.Responsive {
			anycast++
		}
	}
	if anycast == 0 {
		t.Skip("no responsive anycast servers this seed")
	}
	if c.Impossible == 0 {
		t.Errorf("%d anycast servers but none flagged impossible", anycast)
	}
	// Flagged targets must not appear in usable data.
	for _, ms := range c.ByISP {
		for _, m := range ms {
			if m.Target.Anycast {
				// Some anycast may slip through (locations close together);
				// assert most are caught instead of all.
				t.Logf("anycast target %s survived filters", m.Target.Addr)
			}
		}
	}
}

func TestViolatesSpeedOfLight(t *testing.T) {
	sites := []Site{
		{ID: 0, Loc: geo.Point{LatDeg: 40.71, LonDeg: -74.01}},  // NYC
		{ID: 1, Loc: geo.Point{LatDeg: -33.87, LonDeg: 151.21}}, // Sydney
	}
	// Both sites see 1ms: impossible for one destination ~16000km apart.
	if !violatesSpeedOfLight([]float64{1, 1}, sites) {
		t.Error("1ms/1ms NYC+Sydney should be impossible")
	}
	// NYC 1ms, Sydney 110ms: plausible (server near NYC).
	if violatesSpeedOfLight([]float64{1, 110}, sites) {
		t.Error("plausible vector flagged")
	}
	// Single site can never violate.
	if violatesSpeedOfLight([]float64{1, math.NaN()}, sites) {
		t.Error("single measurement flagged")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	_, a := campaign(t, 9)
	_, b := campaign(t, 9)
	if a.TotalMeasured != b.TotalMeasured || a.Impossible != b.Impossible {
		t.Fatal("campaign not deterministic")
	}
	for as, ms := range a.ByISP {
		ms2 := b.ByISP[as]
		if len(ms) != len(ms2) {
			t.Fatal("per-ISP measurement counts differ")
		}
		for i := range ms {
			for si := range ms[i].RTTms {
				x, y := ms[i].RTTms[si], ms2[i].RTTms[si]
				if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
					t.Fatalf("RTT differs at ISP %d target %d site %d", as, i, si)
				}
			}
		}
	}
}

func TestMinSitesGate(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(3))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	sites := Sites(50, 3) // fewer sites than the gate
	cfg := DefaultConfig(3)
	cfg.MinSites = 100
	c := Measure(d, sites, cfg)
	if c.MeasuredISPs != 0 {
		t.Errorf("no ISP can have ≥100 good sites out of 50; got %d", c.MeasuredISPs)
	}
	if c.GatedISPs == 0 {
		t.Error("gate should have fired")
	}
}

func TestMeasureEmptyDeployment(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(3))
	d := &hypergiant.Deployment{
		Epoch: hypergiant.Epoch2023, World: w,
		ContentAS: map[traffic.HG]inet.ASN{},
	}
	d.Reindex()
	c := Measure(d, Sites(10, 3), DefaultConfig(3))
	if c.TotalMeasured != 0 || c.MeasuredISPs != 0 {
		t.Errorf("empty deployment produced measurements: %+v", c)
	}
}
