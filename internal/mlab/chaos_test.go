package mlab

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
)

func chaosInjector(t *testing.T, profile string, seed int64) *chaos.Injector {
	t.Helper()
	prof, err := chaos.ParseProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	return chaos.New(prof, seed)
}

// TestCampaignChaosDeterministicAcrossWorkers extends the clean worker-sweep
// guard to fault injection: chaos decisions are pure per-item hashes, so the
// campaign accounting and the full funnel/metric state must stay
// byte-identical at any worker count.
func TestCampaignChaosDeterministicAcrossWorkers(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(7))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	sites := Sites(163, 7)

	state := func(workers int) []byte {
		obs.Default.Reset()
		cfg := DefaultConfig(7)
		cfg.Workers = workers
		cfg.Chaos = chaosInjector(t, "heavy", 11)
		c, err := MeasureContext(context.Background(), d, sites, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Histogram float sums are excluded: parallel float accumulation is
		// order-sensitive in the last ulp (runsdiff treats it as
		// informational); counters and funnels must match exactly.
		counters := make(map[string]obs.MetricValue)
		for name, v := range obs.Default.Snapshot() {
			if v.Type == "counter" {
				counters[name] = v
			}
		}
		blob, err := json.Marshal(struct {
			Campaign *Campaign
			Funnels  []obs.FunnelSnapshot
			Counters map[string]obs.MetricValue
		}{c, obs.Default.FunnelSnapshots(), counters})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	ref := state(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := state(workers); !bytes.Equal(ref, got) {
			t.Fatalf("chaos campaign state diverged between workers=1 and workers=%d", workers)
		}
	}
}

// TestCampaignChaosRetrySingleCount pins the retry accounting: a retried
// target still enters the filter funnel exactly once, the attempts land in
// chaos.retries_total, and the campaign's chaos-lost count reconciles with
// the chaos_* funnel drops.
func TestCampaignChaosRetrySingleCount(t *testing.T) {
	obs.Default.Reset()
	w := inet.Generate(inet.TinyConfig(7))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Profile{
		Name: "retry", TransientProb: 0.4, BlackoutProb: 0.05,
		Retry: chaos.RetryPolicy{MaxAttempts: 3}, // zero backoff: no sleeping
	}, 11)
	cfg := DefaultConfig(7)
	cfg.Chaos = inj
	c := Measure(d, Sites(163, 7), cfg)

	var filter obs.FunnelSnapshot
	for _, s := range obs.Default.FunnelSnapshots() {
		if s.Name == "ping.filter" {
			filter = s
		}
	}
	if !filter.Balanced() {
		t.Fatalf("filter funnel unbalanced under retry: %+v", filter)
	}
	if filter.In != int64(len(d.Servers)) {
		t.Fatalf("filter.In = %d, want every server exactly once (%d) despite retries",
			filter.In, len(d.Servers))
	}
	if inj.Retries.Value() == 0 {
		t.Fatal("no retries recorded at TransientProb=0.4 — retry loop never ran")
	}
	if got, want := filter.DropN("chaos_transient"), inj.Transients.Value(); got != want {
		t.Fatalf("funnel chaos_transient = %d, chaos.transients_total = %d", got, want)
	}
	if got, want := filter.DropN("chaos_blackout"), inj.Blackouts.Value(); got != want {
		t.Fatalf("funnel chaos_blackout = %d, chaos.blackouts_total = %d", got, want)
	}
	if lost := filter.DropN("chaos_blackout") + filter.DropN("chaos_transient"); lost != int64(c.ChaosLost) {
		t.Fatalf("funnel chaos drops %d disagree with campaign ChaosLost %d", lost, c.ChaosLost)
	}
	if c.ChaosLost == 0 {
		t.Fatal("campaign lost nothing under 40% transient probability")
	}
}

// TestCampaignChaosOffUnchanged: threading a nil injector must leave the
// campaign byte-identical to one measured with the zero Config — the
// chaos-off acceptance criterion at the package level.
func TestCampaignChaosOffUnchanged(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(7))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	sites := Sites(163, 7)

	run := func(inj *chaos.Injector) []byte {
		obs.Default.Reset()
		cfg := DefaultConfig(7)
		cfg.Chaos = inj
		c := Measure(d, sites, cfg)
		blob, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	clean := run(nil)
	off, err := chaos.ParseProfile("off")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, run(chaos.New(off, 99))) {
		t.Fatal("chaos-off campaign differs from a clean campaign")
	}
}
