package mlab

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
)

// funnelState serializes the shared registry's funnel accounting;
// byte-identical serializations mean identical accounting.
func funnelState(t *testing.T) []byte {
	t.Helper()
	data, err := json.Marshal(obs.Default.FunnelSnapshots())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCampaignFunnelDeterministicAcrossWorkers is the worker-sweep guard:
// the funnel is fed from the campaign's serial merge, so its snapshot must
// be byte-identical at any worker count.
func TestCampaignFunnelDeterministicAcrossWorkers(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(7))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	sites := Sites(163, 7)

	var ref []byte
	refWorkers := 0
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		obs.Default.Reset()
		cfg := DefaultConfig(7)
		cfg.Workers = workers
		if _, err := MeasureContext(context.Background(), d, sites, cfg); err != nil {
			t.Fatal(err)
		}
		state := funnelState(t)
		if ref == nil {
			ref, refWorkers = state, workers
			continue
		}
		if !bytes.Equal(ref, state) {
			t.Fatalf("funnel snapshot differs between workers=%d and workers=%d:\n%s\nvs\n%s",
				refWorkers, workers, ref, state)
		}
	}
}

// TestCampaignFunnelReconcilesWithCounters pins the acceptance criterion:
// the ping.filter and ping.isp_gate rows reconcile exactly with the
// pre-existing campaign counters and the Campaign's own accounting.
func TestCampaignFunnelReconcilesWithCounters(t *testing.T) {
	obs.Default.Reset()
	d, c := campaign(t, 3)

	var filter, gate obs.FunnelSnapshot
	for _, s := range obs.Default.FunnelSnapshots() {
		switch s.Name {
		case "ping.filter":
			filter = s
		case "ping.isp_gate":
			gate = s
		}
	}

	if !filter.Balanced() || !gate.Balanced() {
		t.Fatalf("funnels unbalanced: filter=%+v gate=%+v", filter, gate)
	}
	if filter.In != int64(len(d.Servers)) {
		t.Fatalf("filter.In = %d, want every server (%d)", filter.In, len(d.Servers))
	}
	if got, want := filter.DropN("unresponsive"), mUnresponsive.Value(); got != want {
		t.Fatalf("filter unresponsive = %d, counter ping.targets_unresponsive = %d", got, want)
	}
	if got, want := filter.DropN("sol_violation"), mImpossible.Value(); got != want {
		t.Fatalf("filter sol_violation = %d, counter ping.targets_impossible = %d", got, want)
	}
	if filter.Out != int64(c.TotalMeasured) {
		t.Fatalf("filter.Out = %d, campaign measured %d", filter.Out, c.TotalMeasured)
	}
	if int(filter.DropN("unresponsive")) != c.Unresponsive || int(filter.DropN("sol_violation")) != c.Impossible {
		t.Fatalf("funnel drops (%d, %d) disagree with campaign accounting (%d, %d)",
			filter.DropN("unresponsive"), filter.DropN("sol_violation"), c.Unresponsive, c.Impossible)
	}

	if got, want := gate.DropN("lt_100_vps"), mISPsGated.Value(); got != want {
		t.Fatalf("gate lt_100_vps = %d, counter ping.isps_gated = %d", got, want)
	}
	if gate.Out != int64(c.MeasuredISPs) || int(gate.DropN("lt_100_vps")) != c.GatedISPs {
		t.Fatalf("gate funnel (%+v) disagrees with campaign (measured %d, gated %d)",
			gate, c.MeasuredISPs, c.GatedISPs)
	}
}
