package inet

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// canonBytes renders the world through the same canonical JSON path the
// golden manifests hash, so equality here means runsdiff-grade equality.
func canonBytes(t *testing.T, w *World) []byte {
	t.Helper()
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSnapshotBinaryRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"legacy-tiny", TinyConfig(42)},
		{"sharded-tiny", func() Config { c := TinyConfig(42); c.Sharded = true; return c }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := Generate(tc.cfg)
			// Post-generation state must survive: content AS + host cursors.
			if _, err := w.AddContentAS("hg-snap", nil, 4); err != nil {
				t.Fatal(err)
			}
			isp := w.AccessISPs()[0]
			for i := 0; i < 3; i++ {
				if _, err := w.AllocHostIn(isp.ASN); err != nil {
					t.Fatal(err)
				}
			}

			path := filepath.Join(t.TempDir(), "world.ofnw")
			if err := WriteWorldFile(path, w, tc.cfg, "hash-abc"); err != nil {
				t.Fatal(err)
			}
			r, err := ReadWorldFile(path, tc.cfg, "hash-abc")
			if err != nil {
				t.Fatal(err)
			}
			want, got := canonBytes(t, w), canonBytes(t, r)
			if sha256.Sum256(want) != sha256.Sum256(got) {
				t.Fatal("canonical render differs after binary round trip")
			}
			// Restored pools keep allocating without collision.
			a1, err := w.AllocHostIn(isp.ASN)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := r.AllocHostIn(isp.ASN)
			if err != nil {
				t.Fatal(err)
			}
			if a1 != a2 {
				t.Fatalf("restored host cursor diverged: %v vs %v", a1, a2)
			}
		})
	}
}

func TestSnapshotShardCountIrrelevantToLoad(t *testing.T) {
	// Shards/GenWorkers are parallelism knobs, not world parameters: a
	// snapshot written under one sharding must load under another.
	cfg := TinyConfig(42)
	cfg.Sharded = true
	cfg.Shards, cfg.GenWorkers = 16, 4
	w := Generate(cfg)
	path := filepath.Join(t.TempDir(), "world.ofnw")
	if err := WriteWorldFile(path, w, cfg, ""); err != nil {
		t.Fatal(err)
	}
	cfg.Shards, cfg.GenWorkers = 3, 1
	if _, err := ReadWorldFile(path, cfg, ""); err != nil {
		t.Fatalf("load with different shard count rejected: %v", err)
	}
}

func TestSnapshotRejection(t *testing.T) {
	cfg := TinyConfig(42)
	w := Generate(cfg)
	dir := t.TempDir()
	path := filepath.Join(dir, "world.ofnw")
	if err := WriteWorldFile(path, w, cfg, "hash-abc"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{3, 10, len(data) / 2, len(data) - 1} {
			_, err := ReadWorld(bytes.NewReader(data[:cut]), cfg, "hash-abc")
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("truncated at %d: got %v, want ErrSnapshotCorrupt", cut, err)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte("NOPE"), data[4:]...)
		if _, err := ReadWorld(bytes.NewReader(bad), cfg, "hash-abc"); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		bad := bytes.Clone(data)
		binary.LittleEndian.PutUint32(bad[4:8], 99)
		if _, err := ReadWorld(bytes.NewReader(bad), cfg, "hash-abc"); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("got %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("scenario-hash-mismatch", func(t *testing.T) {
		if _, err := ReadWorldFile(path, cfg, "hash-other"); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("got %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("config-mismatch", func(t *testing.T) {
		other := cfg
		other.AccessISPs++
		if _, err := ReadWorldFile(path, other, "hash-abc"); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("got %v, want ErrSnapshotMismatch", err)
		}
		other = cfg
		other.Sharded = !other.Sharded
		if _, err := ReadWorldFile(path, other, "hash-abc"); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("builder flip accepted: got %v, want ErrSnapshotMismatch", err)
		}
	})
}

func TestLoadOrGenerate(t *testing.T) {
	cfg := TinyConfig(42)
	cfg.Sharded = true
	path := filepath.Join(t.TempDir(), "sub", "world.ofnw")

	w1, fromDisk, err := LoadOrGenerate(path, cfg, "h")
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk {
		t.Fatal("first call claimed a disk hit")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not spilled: %v", err)
	}

	w2, fromDisk, err := LoadOrGenerate(path, cfg, "h")
	if err != nil {
		t.Fatal(err)
	}
	if !fromDisk {
		t.Fatal("second call regenerated instead of streaming the snapshot")
	}
	if sha256.Sum256(canonBytes(t, w1)) != sha256.Sum256(canonBytes(t, w2)) {
		t.Fatal("streamed world differs from generated world")
	}

	// A stale snapshot (different scenario hash) is a hard error, not a
	// silent regenerate.
	if _, _, err := LoadOrGenerate(path, cfg, "other"); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("stale snapshot: got %v, want ErrSnapshotMismatch", err)
	}

	// Empty path: plain generation, nothing written.
	w3, fromDisk, err := LoadOrGenerate("", cfg, "h")
	if err != nil || fromDisk {
		t.Fatalf("empty path: err=%v fromDisk=%v", err, fromDisk)
	}
	if sha256.Sum256(canonBytes(t, w1)) != sha256.Sum256(canonBytes(t, w3)) {
		t.Fatal("empty-path generation differs")
	}
}
