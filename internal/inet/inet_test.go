package inet

import (
	"testing"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/netaddr"
)

func tinyWorld(t *testing.T) *World {
	t.Helper()
	return Generate(TinyConfig(1))
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TinyConfig(7))
	b := Generate(TinyConfig(7))
	if len(a.ISPs) != len(b.ISPs) || len(a.Facilities) != len(b.Facilities) || len(a.IXPs) != len(b.IXPs) {
		t.Fatal("same seed produced different world sizes")
	}
	for as, isp := range a.ISPs {
		other, ok := b.ISPs[as]
		if !ok {
			t.Fatalf("AS %d missing in second world", as)
		}
		if isp.Name != other.Name || isp.Users != other.Users || len(isp.Prefixes) != len(other.Prefixes) {
			t.Fatalf("AS %d differs between worlds", as)
		}
	}
	c := Generate(TinyConfig(8))
	diff := false
	for as, isp := range a.ISPs {
		if o, ok := c.ISPs[as]; !ok || o.Users != isp.Users {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical worlds")
	}
}

func TestWorldCounts(t *testing.T) {
	w := tinyWorld(t)
	cfg := TinyConfig(1)
	if got := len(w.AccessISPs()); got != cfg.AccessISPs {
		t.Errorf("access ISPs = %d, want %d", got, cfg.AccessISPs)
	}
	var backbones, transits int
	for _, isp := range w.ISPs {
		switch isp.Tier {
		case TierBackbone:
			backbones++
		case TierTransit:
			transits++
		}
	}
	if backbones != cfg.Backbones || transits != cfg.TransitISPs {
		t.Errorf("backbones=%d transits=%d, want %d/%d", backbones, transits, cfg.Backbones, cfg.TransitISPs)
	}
	if len(w.IXPs) == 0 || len(w.IXPs) > cfg.IXPs {
		t.Errorf("IXPs = %d, want 1..%d", len(w.IXPs), cfg.IXPs)
	}
}

func TestEveryAccessISPViable(t *testing.T) {
	w := tinyWorld(t)
	for _, isp := range w.AccessISPs() {
		if isp.Users <= 0 {
			t.Errorf("%s: zero users", isp.Name)
		}
		if len(isp.Prefixes) == 0 {
			t.Errorf("%s: no prefixes", isp.Name)
		}
		if len(isp.Providers) == 0 {
			t.Errorf("%s: no transit providers", isp.Name)
		}
		if len(isp.Facilities) == 0 {
			t.Errorf("%s: no facilities", isp.Name)
		}
		if len(isp.Metros) == 0 {
			t.Errorf("%s: no metros", isp.Name)
		}
		for _, m := range isp.Metros {
			if m.Country != isp.Country {
				t.Errorf("%s: metro %s outside home country %s", isp.Name, m.Code, isp.Country)
			}
		}
	}
}

func TestProvidersResolve(t *testing.T) {
	w := tinyWorld(t)
	for _, isp := range w.ISPList() {
		for _, p := range isp.Providers {
			prov, ok := w.ISPs[p]
			if !ok {
				t.Fatalf("%s: provider AS %d does not exist", isp.Name, p)
			}
			if prov.Tier >= isp.Tier {
				t.Errorf("%s (%s): provider %s is not upstream tier", isp.Name, isp.Tier, prov.Tier)
			}
		}
	}
}

func TestPrefixOwnershipConsistent(t *testing.T) {
	w := tinyWorld(t)
	for _, isp := range w.ISPList() {
		for _, p := range isp.Prefixes {
			for _, s := range p.Slash24s() {
				// Both edges of every /24 must resolve through the interval
				// index to the announcing AS.
				for _, addr := range []netaddr.Addr{s.First(), s.Last()} {
					owner, ok := w.OwnerOf(addr)
					if !ok {
						t.Fatalf("%s: address %s in announced /24 %s unowned", isp.Name, addr, s)
					}
					if owner != isp.ASN {
						t.Fatalf("%s: address %s owned by AS %d", isp.Name, addr, owner)
					}
				}
			}
		}
	}
	// Addresses outside every announcement stay unrouted.
	if _, ok := w.OwnerOf(netaddr.MustPrefix("1.2.3.0/24").First()); ok {
		t.Error("unannounced address resolved to an owner")
	}
}

func TestPrefixesDisjointAcrossISPs(t *testing.T) {
	w := tinyWorld(t)
	var all []netaddr.Prefix
	owners := make(map[netaddr.Prefix]ASN)
	for _, isp := range w.ISPList() {
		for _, p := range isp.Prefixes {
			all = append(all, p)
			owners[p] = isp.ASN
		}
	}
	netaddr.SortPrefixes(all)
	for i := 1; i < len(all); i++ {
		if all[i-1].Overlaps(all[i]) && owners[all[i-1]] != owners[all[i]] {
			t.Fatalf("prefixes overlap across ISPs: %s (AS%d) and %s (AS%d)",
				all[i-1], owners[all[i-1]], all[i], owners[all[i]])
		}
	}
}

func TestOwnerOf(t *testing.T) {
	w := tinyWorld(t)
	isp := w.AccessISPs()[0]
	addr := isp.Prefixes[0].First() + 5
	as, ok := w.OwnerOf(addr)
	if !ok || as != isp.ASN {
		t.Errorf("OwnerOf(%s) = %d,%v want %d", addr, as, ok, isp.ASN)
	}
	if _, ok := w.OwnerOf(netaddr.AddrFrom4(203, 0, 113, 1)); ok {
		t.Error("unrouted address should have no owner")
	}
}

func TestIXPMembership(t *testing.T) {
	w := tinyWorld(t)
	totalMembers := 0
	for _, x := range w.IXPList() {
		totalMembers += len(x.MemberAddr)
		for as, addr := range x.MemberAddr {
			if !x.Fabric.Contains(addr) {
				t.Errorf("IXP %s: member AS%d addr %s outside fabric %s", x.Name, as, addr, x.Fabric)
			}
			if _, ok := w.ISPs[as]; !ok {
				t.Errorf("IXP %s: member AS%d does not exist", x.Name, as)
			}
		}
		// Fabric addresses must be unique.
		seen := make(map[netaddr.Addr]bool)
		for _, addr := range x.MemberAddr {
			if seen[addr] {
				t.Errorf("IXP %s: duplicate fabric address %s", x.Name, addr)
			}
			seen[addr] = true
		}
	}
	if totalMembers == 0 {
		t.Error("no IXP has any members")
	}
	// Membership lists on ISPs agree with MemberAddr maps.
	for _, isp := range w.ISPList() {
		for _, id := range isp.IXPs {
			if !w.MemberOf(isp.ASN, id) {
				t.Errorf("%s claims membership of IXP %d but exchange disagrees", isp.Name, id)
			}
		}
	}
}

func TestIXPOf(t *testing.T) {
	w := tinyWorld(t)
	for _, x := range w.IXPList() {
		for as, addr := range x.MemberAddr {
			gx, gas, ok := w.IXPOf(addr)
			if !ok || gx.ID != x.ID || gas != as {
				t.Fatalf("IXPOf(%s) = %v,%d,%v want %d,%d", addr, gx, gas, ok, x.ID, as)
			}
			break
		}
	}
	if _, _, ok := w.IXPOf(netaddr.AddrFrom4(1, 2, 3, 4)); ok {
		t.Error("non-fabric address resolved to an IXP")
	}
}

func TestAddContentAS(t *testing.T) {
	w := tinyWorld(t)
	as, err := w.AddContentAS("hg-google", geo.Metros[:5], 16)
	if err != nil {
		t.Fatal(err)
	}
	isp := w.ISPs[as]
	if isp == nil || isp.Tier != TierContent {
		t.Fatalf("content AS not registered: %+v", isp)
	}
	if len(isp.Prefixes) == 0 {
		t.Fatal("content AS has no prefixes")
	}
	if got := len(w.ContentASes()); got != 1 {
		t.Errorf("ContentASes = %d, want 1", got)
	}
	as2, err := w.AddContentAS("hg-netflix", geo.Metros[:3], 8)
	if err != nil {
		t.Fatal(err)
	}
	if as2 == as {
		t.Error("second content AS reused ASN")
	}
}

func TestAllocHostIn(t *testing.T) {
	w := tinyWorld(t)
	isp := w.AccessISPs()[0]
	seen := make(map[netaddr.Addr]bool)
	for i := 0; i < 100; i++ {
		a, err := w.AllocHostIn(isp.ASN)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("duplicate host address %s", a)
		}
		seen[a] = true
		owner, ok := w.OwnerOf(a)
		if !ok || owner != isp.ASN {
			t.Fatalf("host %s not in ISP space", a)
		}
	}
	if _, err := w.AllocHostIn(ASN(424242)); err == nil {
		t.Error("unknown AS should error")
	}
}

func TestAllocHostExhaustion(t *testing.T) {
	w := tinyWorld(t)
	// Find the smallest ISP (1 /24 = 256 addrs).
	var small *ISP
	for _, isp := range w.AccessISPs() {
		n := uint64(0)
		for _, p := range isp.Prefixes {
			n += p.NumAddrs()
		}
		if n == 256 {
			small = isp
			break
		}
	}
	if small == nil {
		t.Skip("no single-/24 ISP in this world")
	}
	for i := 0; i < 256; i++ {
		if _, err := w.AllocHostIn(small.ASN); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := w.AllocHostIn(small.ASN); err == nil {
		t.Error("exhausted ISP space should error")
	}
}

func TestJoinIXPExplicit(t *testing.T) {
	w := tinyWorld(t)
	as, err := w.AddContentAS("hg", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := w.IXPList()[0]
	if err := w.JoinIXP(as, x.ID); err != nil {
		t.Fatal(err)
	}
	if !w.MemberOf(as, x.ID) {
		t.Error("JoinIXP did not register membership")
	}
	// Idempotent.
	if err := w.JoinIXP(as, x.ID); err != nil {
		t.Errorf("re-join errored: %v", err)
	}
	if err := w.JoinIXP(ASN(424242), x.ID); err == nil {
		t.Error("unknown AS should error")
	}
	if err := w.JoinIXP(as, IXPID(9999)); err == nil {
		t.Error("unknown IXP should error")
	}
}

func TestSharedIXPs(t *testing.T) {
	w := tinyWorld(t)
	x := w.IXPList()[0]
	members := x.Members()
	if len(members) >= 2 {
		shared := w.SharedIXPs(members[0], members[1])
		found := false
		for _, id := range shared {
			if id == x.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("SharedIXPs(%d,%d) missing IXP %d", members[0], members[1], x.ID)
		}
	}
}

func TestFacilitiesOf(t *testing.T) {
	w := tinyWorld(t)
	isp := w.AccessISPs()[0]
	fs := w.FacilitiesOf(isp.ASN)
	if len(fs) != len(isp.Facilities) {
		t.Fatalf("FacilitiesOf = %d, want %d", len(fs), len(isp.Facilities))
	}
	for _, f := range fs {
		if f.Owner != isp.ASN {
			t.Errorf("facility %s owned by AS%d", f.Name(), f.Owner)
		}
		if !f.Loc.Valid() {
			t.Errorf("facility %s: invalid location", f.Name())
		}
	}
	if fs := w.FacilitiesOf(ASN(424242)); fs != nil {
		t.Error("unknown AS should return nil facilities")
	}
}

func TestSomeISPsHaveMultipleFacilitiesInOneMetro(t *testing.T) {
	// The clustering pipeline must be able to tell apart facilities within a
	// city; the generator must produce that situation.
	w := Generate(TinyConfig(3))
	found := false
	for _, isp := range w.AccessISPs() {
		perMetro := make(map[string]int)
		for _, f := range w.FacilitiesOf(isp.ASN) {
			perMetro[f.Metro.Code]++
		}
		for _, n := range perMetro {
			if n >= 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no ISP has multiple facilities in one metro; clustering has nothing to separate")
	}
}

func TestUserAccounting(t *testing.T) {
	w := tinyWorld(t)
	cfg := TinyConfig(1)
	total := w.TotalUsers()
	if total < cfg.TotalUsers*0.99 || total > cfg.TotalUsers*1.01 {
		t.Errorf("TotalUsers = %v, want ≈%v", total, cfg.TotalUsers)
	}
	byCountry := w.CountryUsers()
	var sum float64
	for _, v := range byCountry {
		sum += v
	}
	if sum < total*0.999 || sum > total*1.001 {
		t.Errorf("country sum %v != total %v", sum, total)
	}
	set := map[ASN]bool{w.AccessISPs()[0].ASN: true, w.AccessISPs()[1].ASN: false}
	if got := w.UsersInISPs(set); got != w.AccessISPs()[0].Users {
		t.Errorf("UsersInISPs honours false entries: got %v", got)
	}
}

func TestTierString(t *testing.T) {
	cases := map[Tier]string{
		TierBackbone: "backbone",
		TierTransit:  "transit",
		TierAccess:   "access",
		TierContent:  "content",
		Tier(99):     "tier(99)",
	}
	for tier, want := range cases {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), got, want)
		}
	}
}
