package inet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/netaddr"
)

// Binary world snapshots let campaigns spill a synthesized world to disk
// once and stream it back on every subsequent run instead of re-generating
// it — the whole point of the huge tier, where synthesis costs seconds and
// a campaign may build the world once per epoch.
//
// Format (all integers little-endian):
//
//	magic   "OFNW"
//	version u32 (currently 1)
//	hash    string  — scenario spec hash the world was built for ("" = none)
//	config  the output-affecting Config fields, in declaration order
//	counts  u32 ISPs, u32 facilities, u32 IXPs, u32 hostNext entries
//	body    ISP records, facility records, IXP records, hostNext pairs,
//	        each section in ascending-ID order
//	footer  "WNFO"
//
// Strings are u16 length + bytes. Prefixes are u32 base address + u8 bits.
// The config echo deliberately omits Shards and GenWorkers: both are
// output-invariant, so a snapshot written with -shards 16 must load under
// -shards 4. Loading validates magic, version, scenario hash, and the
// config echo; any mismatch is a hard error (the runsdiff drift contract:
// silently analyzing the wrong world is worse than failing).

// Snapshot format errors. ReadWorldFile wraps these, so callers can match
// with errors.Is.
var (
	// ErrSnapshotCorrupt marks truncated files, bad magic, or garbled data.
	ErrSnapshotCorrupt = errors.New("snapshot corrupt")
	// ErrSnapshotVersion marks a version this build cannot read.
	ErrSnapshotVersion = errors.New("unsupported snapshot version")
	// ErrSnapshotMismatch marks a snapshot built for a different scenario
	// hash or world config than the run asked for.
	ErrSnapshotMismatch = errors.New("snapshot does not match requested world")
)

const (
	snapMagic       = "OFNW"
	snapFooter      = "WNFO"
	snapVersion     = 1
	snapMaxStrLen   = 1 << 15
	snapMaxEntities = 1 << 27 // sanity bound on section counts
)

// binWriter wraps a buffered writer with sticky-error little-endian
// primitives, so encoding code reads as a flat field list.
type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) raw(p []byte) {
	if b.err == nil {
		_, b.err = b.w.Write(p)
	}
}

func (b *binWriter) u8(v uint8)   { b.raw([]byte{v}) }
func (b *binWriter) u16(v uint16) { b.raw(binary.LittleEndian.AppendUint16(nil, v)) }
func (b *binWriter) u32(v uint32) { b.raw(binary.LittleEndian.AppendUint32(nil, v)) }
func (b *binWriter) u64(v uint64) { b.raw(binary.LittleEndian.AppendUint64(nil, v)) }
func (b *binWriter) f64(v float64) {
	b.u64(math.Float64bits(v))
}

func (b *binWriter) str(s string) {
	if len(s) >= snapMaxStrLen {
		if b.err == nil {
			b.err = fmt.Errorf("string too long (%d bytes)", len(s))
		}
		return
	}
	b.u16(uint16(len(s)))
	b.raw([]byte(s))
}

func (b *binWriter) prefix(p netaddr.Prefix) {
	b.u32(uint32(p.Addr))
	b.u8(uint8(p.Bits))
}

// binReader mirrors binWriter for decoding.
type binReader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

func (b *binReader) raw(n int) []byte {
	if b.err != nil {
		return b.buf[:n]
	}
	if _, err := io.ReadFull(b.r, b.buf[:n]); err != nil {
		b.err = fmt.Errorf("%w: unexpected end of file", ErrSnapshotCorrupt)
	}
	return b.buf[:n]
}

func (b *binReader) u8() uint8   { return b.raw(1)[0] }
func (b *binReader) u16() uint16 { return binary.LittleEndian.Uint16(b.raw(2)) }
func (b *binReader) u32() uint32 { return binary.LittleEndian.Uint32(b.raw(4)) }
func (b *binReader) u64() uint64 { return binary.LittleEndian.Uint64(b.raw(8)) }
func (b *binReader) f64() float64 {
	return math.Float64frombits(b.u64())
}

func (b *binReader) str() string {
	n := int(b.u16())
	if b.err != nil {
		return ""
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(b.r, p); err != nil {
		b.err = fmt.Errorf("%w: unexpected end of file", ErrSnapshotCorrupt)
		return ""
	}
	return string(p)
}

func (b *binReader) prefix() netaddr.Prefix {
	addr := netaddr.Addr(b.u32())
	bits := int(b.u8())
	return netaddr.Prefix{Addr: addr, Bits: bits}
}

func (b *binReader) count() int {
	n := b.u32()
	if b.err == nil && n > snapMaxEntities {
		b.err = fmt.Errorf("%w: implausible count %d", ErrSnapshotCorrupt, n)
	}
	return int(n)
}

// snapshotConfig reduces a Config to the fields that determine the world's
// bytes: equal snapshotConfigs generate byte-identical worlds. Shards and
// GenWorkers are parallelism knobs, not world parameters.
func snapshotConfig(c Config) Config {
	c = c.sanitized()
	c.Shards, c.GenWorkers = 0, 0
	return c
}

func (b *binWriter) config(c Config) {
	c = snapshotConfig(c)
	b.u64(uint64(c.Seed))
	b.u32(uint32(c.AccessISPs))
	b.u32(uint32(c.TransitISPs))
	b.u32(uint32(c.Backbones))
	b.u32(uint32(c.IXPs))
	b.f64(c.TotalUsers)
	b.f64(c.ZipfExponent)
	b.f64(c.UsersPerSlash24)
	if c.Sharded {
		b.u8(1)
	} else {
		b.u8(0)
	}
}

func (b *binReader) config() Config {
	var c Config
	c.Seed = int64(b.u64())
	c.AccessISPs = int(b.u32())
	c.TransitISPs = int(b.u32())
	c.Backbones = int(b.u32())
	c.IXPs = int(b.u32())
	c.TotalUsers = b.f64()
	c.ZipfExponent = b.f64()
	c.UsersPerSlash24 = b.f64()
	c.Sharded = b.u8() == 1
	return c
}

// WriteWorld streams the world to wr in the binary snapshot format, tagged
// with the config that generated it and the scenario hash it serves (""
// when the run has no scenario). Sections stream in ascending-ID order.
func WriteWorld(wr io.Writer, w *World, cfg Config, scenarioHash string) error {
	b := &binWriter{w: bufio.NewWriterSize(wr, 1<<20)}
	b.raw([]byte(snapMagic))
	b.u32(snapVersion)
	b.str(scenarioHash)
	b.config(cfg)

	isps := w.ISPList()
	facs := w.FacilityList()
	ixps := w.IXPList()
	hostASNs := make([]ASN, 0, len(w.hostNext))
	for as, n := range w.hostNext {
		if n > 0 {
			hostASNs = append(hostASNs, as)
		}
	}
	sortASNs(hostASNs)

	b.u32(uint32(len(isps)))
	b.u32(uint32(len(facs)))
	b.u32(uint32(len(ixps)))
	b.u32(uint32(len(hostASNs)))

	for _, isp := range isps {
		b.u32(uint32(isp.ASN))
		b.str(isp.Name)
		b.str(isp.Country)
		b.u8(uint8(isp.Tier))
		b.f64(isp.Users)
		b.u32(uint32(len(isp.Metros)))
		for _, m := range isp.Metros {
			b.str(m.Code)
		}
		b.u32(uint32(len(isp.Prefixes)))
		for _, p := range isp.Prefixes {
			b.prefix(p)
		}
		b.u32(uint32(len(isp.Providers)))
		for _, p := range isp.Providers {
			b.u32(uint32(p))
		}
		b.u32(uint32(len(isp.IXPs)))
		for _, x := range isp.IXPs {
			b.u32(uint32(x))
		}
		b.u32(uint32(len(isp.Facilities)))
		for _, f := range isp.Facilities {
			b.u32(uint32(f))
		}
	}
	for _, f := range facs {
		b.u32(uint32(f.ID))
		b.u32(uint32(f.Owner))
		b.str(f.Metro.Code)
		b.f64(f.Loc.LatDeg)
		b.f64(f.Loc.LonDeg)
		b.u32(uint32(f.Racks))
	}
	for _, x := range ixps {
		b.u32(uint32(x.ID))
		b.str(x.Name)
		b.str(x.Metro.Code)
		b.prefix(x.Fabric)
		b.f64(x.CapacityGbps)
		members := x.Members()
		b.u32(uint32(len(members)))
		for _, as := range members {
			b.u32(uint32(as))
			b.u32(uint32(x.MemberAddr[as]))
		}
	}
	for _, as := range hostASNs {
		b.u32(uint32(as))
		b.u64(w.hostNext[as])
	}
	b.raw([]byte(snapFooter))
	if b.err != nil {
		return fmt.Errorf("inet: write snapshot: %w", b.err)
	}
	if err := b.w.Flush(); err != nil {
		return fmt.Errorf("inet: write snapshot: %w", err)
	}
	return nil
}

// WriteWorldFile writes the snapshot to path atomically (temp file in the
// same directory, then rename), creating parent directories as needed.
func WriteWorldFile(path string, w *World, cfg Config, scenarioHash string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("inet: write snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("inet: write snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteWorld(tmp, w, cfg, scenarioHash); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("inet: write snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("inet: write snapshot: %w", err)
	}
	return nil
}

// ReadWorld streams a world back from rd, validating that the snapshot was
// written for the requested config and scenario hash. Validation failures
// are hard errors wrapping ErrSnapshotVersion or ErrSnapshotMismatch — a
// stale or foreign snapshot must stop the run, exactly like manifest drift
// does, because every downstream number would silently describe the wrong
// world.
func ReadWorld(rd io.Reader, want Config, scenarioHash string) (*World, error) {
	b := &binReader{r: bufio.NewReaderSize(rd, 1<<20)}
	if string(b.raw(4)) != snapMagic && b.err == nil {
		return nil, fmt.Errorf("inet: read snapshot: %w: bad magic", ErrSnapshotCorrupt)
	}
	if v := b.u32(); b.err == nil && v != snapVersion {
		return nil, fmt.Errorf("inet: read snapshot: %w: got v%d, this build reads v%d", ErrSnapshotVersion, v, snapVersion)
	}
	gotHash := b.str()
	gotCfg := b.config()
	if b.err != nil {
		return nil, fmt.Errorf("inet: read snapshot: %w", b.err)
	}
	if gotHash != scenarioHash {
		return nil, fmt.Errorf("inet: read snapshot: %w: snapshot scenario hash %q, run wants %q",
			ErrSnapshotMismatch, gotHash, scenarioHash)
	}
	if gotCfg != snapshotConfig(want) {
		return nil, fmt.Errorf("inet: read snapshot: %w: snapshot config %+v, run wants %+v",
			ErrSnapshotMismatch, gotCfg, snapshotConfig(want))
	}

	nISPs, nFacs, nIXPs, nHosts := b.count(), b.count(), b.count(), b.count()
	if b.err != nil {
		return nil, fmt.Errorf("inet: read snapshot: %w", b.err)
	}

	w := &World{
		Seed:       gotCfg.Seed,
		ISPs:       make(map[ASN]*ISP, nISPs),
		Facilities: make(map[FacilityID]*Facility, nFacs),
		IXPs:       make(map[IXPID]*IXP, nIXPs),
		hostNext:   make(map[ASN]uint64, nHosts),
	}
	w.isps.Reserve(nISPs)
	w.facs.Reserve(nFacs)
	w.owners = make([]ownerSpan, 0, nISPs)

	metroCache := make(map[string]geo.Metro, 128)
	metro := func(code string) (geo.Metro, error) {
		if m, ok := metroCache[code]; ok {
			return m, nil
		}
		m, ok := geo.MetroByCode(code)
		if !ok {
			return geo.Metro{}, fmt.Errorf("%w: unknown metro %q", ErrSnapshotCorrupt, code)
		}
		metroCache[code] = m
		return m, nil
	}

	var maxISP, maxContent, maxIXP netaddr.Addr
	for i := 0; i < nISPs && b.err == nil; i++ {
		isp := w.isps.Get()
		isp.ASN = ASN(b.u32())
		isp.Name = b.str()
		isp.Country = b.str()
		isp.Tier = Tier(b.u8())
		isp.Users = b.f64()
		if n := b.count(); n > 0 {
			isp.Metros = make([]geo.Metro, 0, n)
			for j := 0; j < n && b.err == nil; j++ {
				m, err := metro(b.str())
				if err != nil {
					b.err = err
					break
				}
				isp.Metros = append(isp.Metros, m)
			}
		}
		if n := b.count(); n > 0 {
			isp.Prefixes = make([]netaddr.Prefix, 0, n)
			for j := 0; j < n && b.err == nil; j++ {
				p := b.prefix()
				if p != p.Canonical() {
					b.err = fmt.Errorf("%w: non-canonical prefix %v", ErrSnapshotCorrupt, p)
					break
				}
				isp.Prefixes = append(isp.Prefixes, p)
				w.registerOwner(p.First(), p.Last(), isp.ASN)
				if isp.Tier == TierContent {
					if p.Last() > maxContent {
						maxContent = p.Last()
					}
				} else if p.Last() > maxISP {
					maxISP = p.Last()
				}
			}
		}
		if n := b.count(); n > 0 {
			isp.Providers = make([]ASN, 0, n)
			for j := 0; j < n; j++ {
				isp.Providers = append(isp.Providers, ASN(b.u32()))
			}
		}
		if n := b.count(); n > 0 {
			isp.IXPs = make([]IXPID, 0, n)
			for j := 0; j < n; j++ {
				isp.IXPs = append(isp.IXPs, IXPID(b.u32()))
			}
		}
		if n := b.count(); n > 0 {
			isp.Facilities = make([]FacilityID, 0, n)
			for j := 0; j < n; j++ {
				isp.Facilities = append(isp.Facilities, FacilityID(b.u32()))
			}
		}
		w.ISPs[isp.ASN] = isp
	}
	for i := 0; i < nFacs && b.err == nil; i++ {
		f := w.facs.Get()
		f.ID = FacilityID(b.u32())
		f.Owner = ASN(b.u32())
		m, err := metro(b.str())
		if err != nil {
			b.err = err
			break
		}
		f.Metro = m
		f.Loc = geo.Point{LatDeg: b.f64(), LonDeg: b.f64()}
		f.Racks = int(b.u32())
		w.Facilities[f.ID] = f
	}
	for i := 0; i < nIXPs && b.err == nil; i++ {
		x := &IXP{ID: IXPID(b.u32())}
		x.Name = b.str()
		m, err := metro(b.str())
		if err != nil {
			b.err = err
			break
		}
		x.Metro = m
		x.Fabric = b.prefix()
		x.CapacityGbps = b.f64()
		n := b.count()
		x.MemberAddr = make(map[ASN]netaddr.Addr, n)
		for j := 0; j < n && b.err == nil; j++ {
			as := ASN(b.u32())
			x.MemberAddr[as] = netaddr.Addr(b.u32())
		}
		if x.Fabric.Last() > maxIXP {
			maxIXP = x.Fabric.Last()
		}
		w.IXPs[x.ID] = x
	}
	for i := 0; i < nHosts && b.err == nil; i++ {
		as := ASN(b.u32())
		w.hostNext[as] = b.u64()
	}
	if b.err == nil && string(b.raw(4)) != snapFooter && b.err == nil {
		b.err = fmt.Errorf("%w: missing footer", ErrSnapshotCorrupt)
	}
	if b.err != nil {
		return nil, fmt.Errorf("inet: read snapshot: %w", b.err)
	}

	w.ispPool = restoredPool("16.0.0.0/4", maxISP)
	w.contentPool = restoredPool("8.0.0.0/9", maxContent)
	w.ixpPool = restoredPool("198.32.0.0/13", maxIXP)
	w.finalize()
	return w, nil
}

// ReadWorldFile loads a snapshot written by WriteWorldFile.
func ReadWorldFile(path string, want Config, scenarioHash string) (*World, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("inet: read snapshot: %w", err)
	}
	defer f.Close()
	w, err := ReadWorld(f, want, scenarioHash)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return w, nil
}

// LoadOrGenerate is the campaign entry point for snapshot-backed worlds:
// with an empty path it just generates; with a path it streams the snapshot
// back if present (hard-erroring on any mismatch) and otherwise generates
// the world once and spills it for the next run. The returned bool reports
// whether the world came from disk.
func LoadOrGenerate(path string, cfg Config, scenarioHash string) (*World, bool, error) {
	if path == "" {
		return Generate(cfg), false, nil
	}
	if _, err := os.Stat(path); err == nil {
		w, err := ReadWorldFile(path, cfg, scenarioHash)
		if err != nil {
			return nil, false, err
		}
		return w, true, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, false, fmt.Errorf("inet: read snapshot: %w", err)
	}
	w := Generate(cfg)
	if err := WriteWorldFile(path, w, cfg, scenarioHash); err != nil {
		return nil, false, err
	}
	return w, false, nil
}

// sortASNs sorts in place, ascending.
func sortASNs(s []ASN) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
