package inet

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkWorldGenerate measures world synthesis at the default-world
// scale: the legacy sequential builder against the sharded streaming
// builder at 1, 4 and GOMAXPROCS shards (workers matched to shards).
// Generation only — no deployment, no snapshot I/O. The sharded/shards=1
// case isolates the columnar/arena rewrite; the multi-shard cases add
// parallel fan-out on top (flat on a single-core host, near-linear on
// multi-core ones).
func BenchmarkWorldGenerate(b *testing.B) {
	b.Run("legacy", func(b *testing.B) {
		cfg := DefaultConfig(42)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Generate(cfg)
		}
	})
	shardCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		shardCounts = append(shardCounts, n)
	}
	for _, sh := range shardCounts {
		b.Run(fmt.Sprintf("sharded/shards=%d", sh), func(b *testing.B) {
			cfg := DefaultConfig(42)
			cfg.Sharded = true
			cfg.Shards = sh
			cfg.GenWorkers = sh
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Generate(cfg)
			}
		})
	}
}
