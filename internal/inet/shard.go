package inet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/par"
	"offnetrisk/internal/rngutil"
)

// The sharded builder. Where the legacy generator threads one RNG stream
// through every entity in sequence (so it can never be split without moving
// every draw), this builder derives an independent substream per entity:
//
//	rngutil.Derive(seed, Label("inet"), <phase label>, entityIndex)
//
// The entity index is the logical shard; Config.Shards only groups those
// logical shards into batches for the worker pool. Consequently the composed
// world is byte-identical at ANY shard count and ANY worker count — the
// property the shard-composition suite asserts across {1, 2, 7, GOMAXPROCS}.
//
// Address space is planned, not allocated: entity i's prefixes occupy a
// deterministic [start24, start24+n24) run of /24 slots computed from the
// config alone (prefix sums for the access tier), rendered to minimal CIDRs
// by netaddr.AppendSlash24Range. No shared pool, no cross-shard state.
//
// The only sequential passes are the cheap ones whose outputs must be
// partition-independent: country weights, the IXP skeleton, the Zipf
// normalization sum (floating-point addition is not associative, so the sum
// runs in ascending rank order), and the final merge.

// defaultShards is the shard count when Config.Shards is unset. It is a
// fixed constant rather than GOMAXPROCS so the deterministic fan-out
// counters (par.tasks_total) that land in run manifests do not vary across
// machines.
const defaultShards = 16

// Substream labels, one per generation phase.
var (
	labInet     = rngutil.Label("inet")
	labCountry  = rngutil.Label("country")
	labIXP      = rngutil.Label("ixp")
	labBackbone = rngutil.Label("backbone")
	labTransit  = rngutil.Label("transit")
	labUsers    = rngutil.Label("users")
	labAccess   = rngutil.Label("access")
)

// generateSharded is the Sharded=true entry point behind Generate.
func generateSharded(cfg Config) *World {
	p := newShardPlan(cfg)

	backbones := p.runShards(cfg.Backbones, p.buildBackbone)
	transits := p.runShards(cfg.TransitISPs, p.buildTransit)
	p.indexTransits(transits)
	p.planUsers()
	access := p.runShards(cfg.AccessISPs, p.buildAccess)

	return p.merge(backbones, transits, access)
}

// memberPair records one IXP membership decision; fabric addresses are
// assigned at merge time by ascending member ASN.
type memberPair struct {
	ixp IXPID
	as  ASN
}

// genArena carves entity-owned slices out of chunked blocks, so a shard's
// thousands of ISPs cost a handful of block allocations instead of several
// slice allocations each. Growth opens a new block; carved slices never move.
type genArena[T any] struct {
	cur []T
}

func (a *genArena[T]) carve(n int) []T {
	if n == 0 {
		return nil
	}
	if cap(a.cur)-len(a.cur) < n {
		b := 4096
		if n > b {
			b = n
		}
		a.cur = make([]T, 0, b)
	}
	lo := len(a.cur)
	a.cur = a.cur[:lo+n]
	return a.cur[lo : lo+n : lo+n]
}

func carveCopy[T any](a *genArena[T], src []T) []T {
	dst := a.carve(len(src))
	copy(dst, src)
	return dst
}

// genShard is one shard's output: entity values in index order plus the
// arenas backing their slices. The merged World's maps point straight into
// these; nothing is copied.
type genShard struct {
	isps  []ISP
	facs  []Facility
	spans []ownerSpan
	joins []memberPair

	metros   genArena[geo.Metro]
	provs    genArena[ASN]
	prefixes genArena[netaddr.Prefix]
	fids     genArena[FacilityID]
	ixpIDs   genArena[IXPID]
}

// shardScratch is per-worker state: a reseedable RNG (math/rand's source
// reinitializes in place, so per-entity streams cost zero allocations) and
// reusable draw buffers. Every field is fully overwritten per entity.
type shardScratch struct {
	rng     *rand.Rand
	perm    []int
	prefBuf []netaddr.Prefix
	ixpBuf  []IXPID
	ccBuf   []string
}

func newShardScratch() *shardScratch {
	return &shardScratch{rng: rngutil.New(0)}
}

// seed rewinds the scratch RNG onto entity i's substream for the phase.
func (sc *shardScratch) seed(seed, phase int64, i int) *rand.Rand {
	sc.rng.Seed(rngutil.Derive(seed, labInet, phase, int64(i)))
	return sc.rng
}

// sample draws k distinct indices from [0,n) by partial Fisher-Yates into a
// reused buffer; the result is valid until the next call.
func (sc *shardScratch) sample(r *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	if cap(sc.perm) < n {
		sc.perm = make([]int, n)
	}
	buf := sc.perm[:n]
	for i := range buf {
		buf[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf[:k]
}

// shardPlan is the deterministic layout of one sharded build, computed
// sequentially up front so shards run against read-only shared state.
type shardPlan struct {
	cfg     Config
	shards  int
	workers int

	countries []string
	weight    []float64
	sq        []float64
	metrosBy  map[string][]geo.Metro

	ixps    []*IXP
	ixpsBy  map[string][]*IXP
	nearest map[string]*IXP

	base          netaddr.Addr // 16.0.0.0
	transitBase24 int
	accessBase24  int
	accStride     int
	transitFIDs   FacilityID

	transitsBy  map[string][]ASN
	allTransits []ASN

	users   []float64
	n24     []int
	start24 []int
}

func newShardPlan(cfg Config) *shardPlan {
	shards := cfg.Shards
	if shards <= 0 {
		shards = defaultShards
	}
	workers := cfg.GenWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}

	p := &shardPlan{
		cfg:       cfg,
		shards:    shards,
		workers:   workers,
		countries: geo.Countries(),
		metrosBy:  make(map[string][]geo.Metro),
	}
	maxHome := 1
	for _, cc := range p.countries {
		home := geo.MetrosIn(cc)
		p.metrosBy[cc] = home
		if len(home) > maxHome {
			maxHome = len(home)
		}
	}

	// Country weights: one substream per country, so the weight vector never
	// depends on how entities are partitioned.
	p.weight = make([]float64, len(p.countries))
	p.sq = make([]float64, len(p.countries))
	r := rngutil.New(0)
	for ci, cc := range p.countries {
		r.Seed(rngutil.Derive(cfg.Seed, labInet, labCountry, int64(ci)))
		p.weight[ci] = float64(len(p.metrosBy[cc])) * math.Exp(r.NormFloat64()*0.5)
		p.sq[ci] = p.weight[ci] * p.weight[ci]
	}

	// Address plan: backbones at slot 0, then transits and the access tier,
	// each aligned to a /16 boundary.
	p.base = netaddr.MustPrefix("16.0.0.0/4").First()
	p.transitBase24 = roundUp24(cfg.Backbones*8, 256)
	p.accessBase24 = roundUp24(p.transitBase24+cfg.TransitISPs*4, 256)

	// Facility IDs are strided per entity so shards never coordinate: access
	// ISP i owns [1+i*accStride, 1+(i+1)*accStride); transit facilities keep
	// the legacy 1_000_000 base unless the access range would reach it.
	p.accStride = maxHome + 2 // per-metro facilities plus up to two extras
	p.transitFIDs = FacilityID(1_000_000)
	if top := FacilityID(1 + cfg.AccessISPs*p.accStride); top > p.transitFIDs {
		p.transitFIDs = top
	}

	p.planIXPs()
	return p
}

func roundUp24(n, align int) int {
	return (n + align - 1) / align * align
}

// planIXPs places the exchange skeleton: metros round-robin across countries
// (wrapping when the scenario asks for more exchanges than catalogue metros,
// unlike the legacy builder which caps there), fabrics at fixed /23 slots,
// capacities from per-exchange substreams. Memberships arrive at merge.
func (p *shardPlan) planIXPs() {
	order := ixpMetroOrder()
	n := p.cfg.IXPs
	if fabrics := int(netaddr.MustPrefix("198.32.0.0/13").NumAddrs() >> 9); n > fabrics {
		n = fabrics
	}
	ixpBase := netaddr.MustPrefix("198.32.0.0/13").First()
	r := rngutil.New(0)
	p.ixps = make([]*IXP, n)
	p.ixpsBy = make(map[string][]*IXP)
	for i := 0; i < n; i++ {
		m := geo.Metros[order[i%len(order)]]
		r.Seed(rngutil.Derive(p.cfg.Seed, labInet, labIXP, int64(i)))
		x := &IXP{
			ID:           IXPID(i + 1),
			Name:         fmt.Sprintf("ix-%s-%d", m.Code, i+1),
			Metro:        m,
			Fabric:       netaddr.Prefix{Addr: ixpBase + netaddr.Addr(i)<<9, Bits: 23},
			MemberAddr:   make(map[ASN]netaddr.Addr),
			CapacityGbps: rngutil.LogNormal(r, math.Log(400), 0.7),
		}
		p.ixps[i] = x
		p.ixpsBy[m.Country] = append(p.ixpsBy[m.Country], x)
	}
	p.nearest = make(map[string]*IXP, len(geo.Metros))
	for _, m := range geo.Metros {
		var best *IXP
		bestD := math.Inf(1)
		for _, x := range p.ixps {
			if d := geo.DistanceKm(m.Loc, x.Metro.Loc); d < bestD {
				best, bestD = x, d
			}
		}
		p.nearest[m.Code] = best
	}
}

// runShards partitions [0,n) into p.shards contiguous batches and builds
// them on the worker pool. Entity order inside a shard and shard order in
// the result are both ascending, so concatenating shard outputs yields the
// same sequence at any shard count.
func (p *shardPlan) runShards(n int, build func(i int, sh *genShard, sc *shardScratch)) []*genShard {
	out, err := par.MapLocal(context.Background(), p.shards, par.Options{Workers: p.workers},
		newShardScratch,
		func(_ context.Context, s int, sc *shardScratch) (*genShard, error) {
			lo, hi := s * n / p.shards, (s+1)*n/p.shards
			sh := &genShard{isps: make([]ISP, 0, hi-lo)}
			for i := lo; i < hi; i++ {
				build(i, sh, sc)
			}
			return sh, nil
		})
	if err != nil {
		panic(err) // only a builder panic can land here; re-raise it
	}
	return out
}

// planPrefixes renders entity-owned address space from the layout plan: a
// contiguous run of n24 /24 slots becomes minimal CIDRs plus one owner span.
func (p *shardPlan) planPrefixes(sh *genShard, sc *shardScratch, isp *ISP, start24, n24 int) {
	if n24 <= 0 {
		return
	}
	start := p.base + netaddr.Addr(start24)<<8
	sc.prefBuf = netaddr.AppendSlash24Range(sc.prefBuf[:0], start, n24)
	isp.Prefixes = carveCopy(&sh.prefixes, sc.prefBuf)
	sh.spans = append(sh.spans, ownerSpan{first: start, last: start + netaddr.Addr(n24)<<8 - 1, as: isp.ASN})
}

func (p *shardPlan) buildBackbone(i int, sh *genShard, sc *shardScratch) {
	s := sc.seed(p.cfg.Seed, labBackbone, i)
	n := rngutil.IntBetween(s, 25, 45)
	idx := sc.sample(s, len(geo.Metros), n)
	metros := sh.metros.carve(n)
	for k, j := range idx {
		metros[k] = geo.Metros[j]
	}
	sh.isps = append(sh.isps, ISP{
		ASN:     ASN(asnBackboneBase + i),
		Name:    fmt.Sprintf("backbone-%d", i+1),
		Country: metros[0].Country,
		Tier:    TierBackbone,
		Metros:  metros,
	})
	isp := &sh.isps[len(sh.isps)-1]
	p.planPrefixes(sh, sc, isp, i*8, 8)
	sc.ixpBuf = sc.ixpBuf[:0]
	for _, x := range p.ixps {
		if rngutil.Bernoulli(s, 0.7) {
			sh.joins = append(sh.joins, memberPair{x.ID, isp.ASN})
			sc.ixpBuf = append(sc.ixpBuf, x.ID)
		}
	}
	isp.IXPs = carveCopy(&sh.ixpIDs, sc.ixpBuf)
}

func (p *shardPlan) buildTransit(i int, sh *genShard, sc *shardScratch) {
	s := sc.seed(p.cfg.Seed, labTransit, i)
	cc := p.countries[rngutil.WeightedChoice(s, p.weight)]
	home := p.metrosBy[cc]
	extra := rngutil.IntBetween(s, 2, 6)
	metros := sh.metros.carve(len(home) + extra)
	copy(metros, home)
	for k, j := range sc.sample(s, len(geo.Metros), extra) {
		metros[len(home)+k] = geo.Metros[j]
	}
	sh.isps = append(sh.isps, ISP{
		ASN:     ASN(asnTransitBase + i),
		Name:    fmt.Sprintf("transit-%s-%d", cc, i+1),
		Country: cc,
		Tier:    TierTransit,
		Metros:  metros,
	})
	isp := &sh.isps[len(sh.isps)-1]

	nProv := rngutil.IntBetween(s, 1, 2)
	provs := sh.provs.carve(nProv)
	for k, j := range sc.sample(s, p.cfg.Backbones, nProv) {
		provs[k] = ASN(asnBackboneBase + j)
	}
	isp.Providers = provs

	p.planPrefixes(sh, sc, isp, p.transitBase24+i*4, 4)

	// Footprint = the set of countries the metros cover; code-level matches
	// imply a country match, so the set check equals the legacy metro scan.
	sc.ccBuf = sc.ccBuf[:0]
	for _, m := range metros {
		if !containsStr(sc.ccBuf, m.Country) {
			sc.ccBuf = append(sc.ccBuf, m.Country)
		}
	}
	sc.ixpBuf = sc.ixpBuf[:0]
	for _, x := range p.ixps {
		if containsStr(sc.ccBuf, x.Metro.Country) && rngutil.Bernoulli(s, 0.6) {
			sh.joins = append(sh.joins, memberPair{x.ID, isp.ASN})
			sc.ixpBuf = append(sc.ixpBuf, x.ID)
		}
	}
	isp.IXPs = carveCopy(&sh.ixpIDs, sc.ixpBuf)

	nf := rngutil.IntBetween(s, 1, 2)
	fids := sh.fids.carve(nf)
	for k := 0; k < nf; k++ {
		m := metros[k%len(metros)]
		fid := p.transitFIDs + FacilityID(i*2+k)
		sh.facs = append(sh.facs, Facility{
			ID:    fid,
			Owner: isp.ASN,
			Metro: m,
			Loc:   jitterLoc(s, m.Loc, 0.15),
			Racks: rngutil.IntBetween(s, 8, 40),
		})
		fids[k] = fid
	}
	isp.Facilities = fids
}

// indexTransits groups the built transit tier by home country (ascending
// ASN), the provider candidate lists the access tier samples from.
func (p *shardPlan) indexTransits(shards []*genShard) {
	p.transitsBy = make(map[string][]ASN)
	p.allTransits = make([]ASN, 0, p.cfg.TransitISPs)
	for _, sh := range shards {
		for k := range sh.isps {
			isp := &sh.isps[k]
			p.transitsBy[isp.Country] = append(p.transitsBy[isp.Country], isp.ASN)
			p.allTransits = append(p.allTransits, isp.ASN)
		}
	}
}

// planUsers draws the Zipf population: per-entity noise from independent
// substreams (parallel), then a normalization sum taken in ascending rank
// order — float addition is not associative, so per-shard partial sums would
// make populations depend on the partition.
func (p *shardPlan) planUsers() {
	n := p.cfg.AccessISPs
	weights := make([]float64, n)
	chunks, err := par.MapLocal(context.Background(), p.shards, par.Options{Workers: p.workers},
		newShardScratch,
		func(_ context.Context, s int, sc *shardScratch) (struct{}, error) {
			lo, hi := s * n / p.shards, (s+1)*n/p.shards
			for i := lo; i < hi; i++ {
				z := sc.seed(p.cfg.Seed, labUsers, i).NormFloat64()
				weights[i] = 1 / math.Pow(float64(i+1), p.cfg.ZipfExponent) * math.Exp(z*0.25)
			}
			return struct{}{}, nil
		})
	_ = chunks
	if err != nil {
		panic(err)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	p.users = weights
	for i := range p.users {
		p.users[i] = p.users[i] / sum * p.cfg.TotalUsers
	}

	// Address plan: contiguous /24 runs by prefix sum, clamped to the pool.
	p.n24 = make([]int, n)
	p.start24 = make([]int, n)
	limit24 := int(netaddr.MustPrefix("16.0.0.0/4").NumAddrs() >> 8)
	cursor := p.accessBase24
	for i := 0; i < n; i++ {
		n24 := int(math.Ceil(p.users[i] / p.cfg.UsersPerSlash24))
		n24 = min(max(n24, 1), 512)
		if cursor+n24 > limit24 {
			n24 = max(limit24-cursor, 0) // degraded, like pool exhaustion
		}
		p.start24[i] = cursor
		p.n24[i] = n24
		cursor += n24
	}
}

func (p *shardPlan) buildAccess(i int, sh *genShard, sc *shardScratch) {
	cfg := p.cfg
	s := sc.seed(cfg.Seed, labAccess, i)
	wsel := p.weight
	if i < cfg.AccessISPs/3 {
		wsel = p.sq
	}
	cc := p.countries[rngutil.WeightedChoice(s, wsel)]
	home := p.metrosBy[cc]
	nm := 1
	switch {
	case i < cfg.AccessISPs/20:
		nm = rngutil.IntBetween(s, min(2, len(home)), len(home))
	case i < cfg.AccessISPs/4:
		nm = rngutil.IntBetween(s, 1, min(3, len(home)))
	}
	nm = min(nm, len(home))
	metros := sh.metros.carve(nm)
	for k, j := range sc.sample(s, len(home), nm) {
		metros[k] = home[j]
	}
	sh.isps = append(sh.isps, ISP{
		ASN:     ASN(asnAccessBase + i),
		Name:    fmt.Sprintf("access-%s-%d", cc, i+1),
		Country: cc,
		Tier:    TierAccess,
		Users:   p.users[i],
		Metros:  metros,
	})
	isp := &sh.isps[len(sh.isps)-1]

	nProv := 1
	if i < cfg.AccessISPs/5 {
		nProv = rngutil.IntBetween(s, 1, 2)
	}
	cands := p.transitsBy[cc]
	if len(cands) == 0 {
		cands = p.allTransits
	}
	if len(cands) == 0 {
		provs := sh.provs.carve(1)
		provs[0] = ASN(asnBackboneBase)
		isp.Providers = provs
	} else {
		idx := sc.sample(s, len(cands), nProv)
		provs := sh.provs.carve(len(idx))
		for k, j := range idx {
			provs[k] = cands[j]
		}
		isp.Providers = provs
	}

	p.planPrefixes(sh, sc, isp, p.start24[i], p.n24[i])

	// Facilities: one per metro plus extras in the primary metro for the
	// biggest ISPs. The extra decision is drawn up front (its own fixed spot
	// in the entity's stream) rather than inside the metro loop.
	extra := 0
	if i < cfg.AccessISPs/10 && rngutil.Bernoulli(s, 0.5) {
		extra = rngutil.IntBetween(s, 1, 2)
	}
	fids := sh.fids.carve(nm + extra)
	slot := 0
	for mi, m := range metros {
		e := 0
		if mi == 0 {
			e = extra
		}
		for k := 0; k <= e; k++ {
			fid := FacilityID(1 + i*p.accStride + slot)
			sh.facs = append(sh.facs, Facility{
				ID:    fid,
				Owner: isp.ASN,
				Metro: m,
				Loc:   jitterLoc(s, m.Loc, 0.15),
				Racks: rngutil.IntBetween(s, 4, 40),
			})
			fids[slot] = fid
			slot++
		}
	}
	isp.Facilities = fids

	// IXP membership. Access footprints stay inside the home country, so
	// "in-footprint exchanges" is exactly the per-country list; iteration is
	// ID-ascending, matching the legacy scan order.
	joinP := 0.15 + 0.6*math.Exp(-float64(i)/float64(cfg.AccessISPs/4+1))
	joined := false
	sc.ixpBuf = sc.ixpBuf[:0]
	for _, x := range p.ixpsBy[cc] {
		if rngutil.Bernoulli(s, joinP) {
			sh.joins = append(sh.joins, memberPair{x.ID, isp.ASN})
			sc.ixpBuf = append(sc.ixpBuf, x.ID)
			joined = true
		}
	}
	if !joined && rngutil.Bernoulli(s, 0.35+joinP/2) {
		if x := p.nearest[metros[0].Code]; x != nil {
			sh.joins = append(sh.joins, memberPair{x.ID, isp.ASN})
			sc.ixpBuf = append(sc.ixpBuf, x.ID)
		}
	}
	isp.IXPs = carveCopy(&sh.ixpIDs, sc.ixpBuf)
}

// merge composes the shard outputs into one World: maps point into the shard
// slabs, announcement spans concatenate and sort, and IXP memberships get
// fabric addresses by ascending member ASN (the phase-then-shard-then-entity
// concatenation order is already ASN-ascending for every partition).
func (p *shardPlan) merge(phases ...[]*genShard) *World {
	cfg := p.cfg
	w := newWorld(cfg.Seed)
	nISPs := cfg.Backbones + cfg.TransitISPs + cfg.AccessISPs
	w.ISPs = make(map[ASN]*ISP, nISPs)
	w.Facilities = make(map[FacilityID]*Facility, cfg.TransitISPs*2+cfg.AccessISPs*2)
	w.IXPs = make(map[IXPID]*IXP, len(p.ixps))

	var lastISPAddr netaddr.Addr
	perIXP := make([][]ASN, len(p.ixps)+1)
	counts := make([]int, len(p.ixps)+1)
	for _, phase := range phases {
		for _, sh := range phase {
			for _, pair := range sh.joins {
				counts[pair.ixp]++
			}
		}
	}
	for id := 1; id <= len(p.ixps); id++ {
		perIXP[id] = make([]ASN, 0, counts[id])
	}
	for _, phase := range phases {
		for _, sh := range phase {
			for k := range sh.isps {
				isp := &sh.isps[k]
				w.ISPs[isp.ASN] = isp
			}
			for k := range sh.facs {
				f := &sh.facs[k]
				w.Facilities[f.ID] = f
			}
			w.owners = append(w.owners, sh.spans...)
			for _, sp := range sh.spans {
				if sp.last > lastISPAddr {
					lastISPAddr = sp.last
				}
			}
			for _, pair := range sh.joins {
				perIXP[pair.ixp] = append(perIXP[pair.ixp], pair.as)
			}
		}
	}

	// Fabric address assignment; members beyond the fabric's capacity are
	// dropped deterministically (highest ASNs last in, first out).
	var dropped map[memberPair]bool
	for _, x := range p.ixps {
		w.IXPs[x.ID] = x
		members := perIXP[x.ID]
		for rank, as := range members {
			addr := x.Fabric.First() + netaddr.Addr(rank+1)
			if addr > x.Fabric.Last()-1 {
				if dropped == nil {
					dropped = make(map[memberPair]bool)
				}
				dropped[memberPair{x.ID, as}] = true
				continue
			}
			x.MemberAddr[as] = addr
		}
	}
	if dropped != nil {
		for _, isp := range w.ISPs {
			kept := isp.IXPs[:0]
			for _, id := range isp.IXPs {
				if !dropped[memberPair{id, isp.ASN}] {
					kept = append(kept, id)
				}
			}
			isp.IXPs = kept
		}
	}

	if lastISPAddr != 0 {
		w.ispPool.AdvancePast(lastISPAddr)
	}
	if n := len(p.ixps); n > 0 {
		w.ixpPool.AdvancePast(p.ixps[n-1].Fabric.Last())
	}
	w.finalize()
	mWorldsGenerated.Inc()
	mISPsGenerated.Add(int64(len(w.ISPs)))
	return w
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
