package inet

import "offnetrisk/internal/scenario"

// ConfigFromScenario builds the generation config a resolved spec's topology
// section declares. With the registry's default/tiny/large/huge scenarios it
// equals DefaultConfig/TinyConfig/LargeConfig/HugeConfig field for field.
func ConfigFromScenario(sp *scenario.Spec, seed int64) Config {
	t := sp.Topology
	return Config{
		Seed:            seed,
		AccessISPs:      t.AccessISPs,
		TransitISPs:     t.TransitISPs,
		Backbones:       t.Backbones,
		IXPs:            t.IXPs,
		TotalUsers:      t.TotalUsers,
		ZipfExponent:    t.ZipfExponent,
		UsersPerSlash24: t.UsersPerSlash24,
		Sharded:         t.Sharded,
	}
}
