package inet

import (
	"encoding/json"
	"fmt"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/netaddr"
)

// Snapshot is the JSON-serializable form of a World. It captures everything
// analyses need (ISPs, facilities, exchanges, announcements); allocation
// pool state is reconstructed on load so a restored world can keep
// allocating addresses without colliding with existing assignments.
type Snapshot struct {
	Seed       int64              `json:"seed"`
	ISPs       []ispSnapshot      `json:"isps"`
	Facilities []facilitySnapshot `json:"facilities"`
	IXPs       []ixpSnapshot      `json:"ixps"`
	// HostNext preserves per-AS host allocation cursors.
	HostNext map[uint32]uint64 `json:"host_next,omitempty"`
}

type ispSnapshot struct {
	ASN       uint32   `json:"asn"`
	Name      string   `json:"name"`
	Country   string   `json:"country"`
	Tier      int      `json:"tier"`
	Users     float64  `json:"users,omitempty"`
	Metros    []string `json:"metros,omitempty"`
	Prefixes  []string `json:"prefixes,omitempty"`
	Providers []uint32 `json:"providers,omitempty"`
	IXPs      []int    `json:"ixps,omitempty"`
	Facs      []int    `json:"facilities,omitempty"`
}

type facilitySnapshot struct {
	ID    int     `json:"id"`
	Owner uint32  `json:"owner"`
	Metro string  `json:"metro"`
	Lat   float64 `json:"lat"`
	Lon   float64 `json:"lon"`
	Racks int     `json:"racks"`
}

type ixpSnapshot struct {
	ID       int               `json:"id"`
	Name     string            `json:"name"`
	Metro    string            `json:"metro"`
	Fabric   string            `json:"fabric"`
	Capacity float64           `json:"capacity_gbps"`
	Members  map[uint32]string `json:"members"`
}

// Snapshot captures the world for serialization.
func (w *World) Snapshot() *Snapshot {
	s := &Snapshot{Seed: w.Seed, HostNext: make(map[uint32]uint64)}
	for as, n := range w.hostNext {
		if n > 0 {
			s.HostNext[uint32(as)] = n
		}
	}
	for _, isp := range w.ISPList() {
		is := ispSnapshot{
			ASN: uint32(isp.ASN), Name: isp.Name, Country: isp.Country,
			Tier: int(isp.Tier), Users: isp.Users,
		}
		for _, m := range isp.Metros {
			is.Metros = append(is.Metros, m.Code)
		}
		for _, p := range isp.Prefixes {
			is.Prefixes = append(is.Prefixes, p.String())
		}
		for _, p := range isp.Providers {
			is.Providers = append(is.Providers, uint32(p))
		}
		for _, x := range isp.IXPs {
			is.IXPs = append(is.IXPs, int(x))
		}
		for _, f := range isp.Facilities {
			is.Facs = append(is.Facs, int(f))
		}
		s.ISPs = append(s.ISPs, is)
	}
	for _, f := range w.FacilityList() {
		s.Facilities = append(s.Facilities, facilitySnapshot{
			ID: int(f.ID), Owner: uint32(f.Owner), Metro: f.Metro.Code,
			Lat: f.Loc.LatDeg, Lon: f.Loc.LonDeg, Racks: f.Racks,
		})
	}
	for _, x := range w.IXPList() {
		xs := ixpSnapshot{
			ID: int(x.ID), Name: x.Name, Metro: x.Metro.Code,
			Fabric: x.Fabric.String(), Capacity: x.CapacityGbps,
			Members: make(map[uint32]string, len(x.MemberAddr)),
		}
		for as, addr := range x.MemberAddr {
			xs.Members[uint32(as)] = addr.String()
		}
		s.IXPs = append(s.IXPs, xs)
	}
	return s
}

// MarshalJSON encodes the world as its snapshot.
func (w *World) MarshalJSON() ([]byte, error) {
	return json.Marshal(w.Snapshot())
}

// Restore rebuilds a World from a snapshot. Pool cursors advance past every
// announced prefix so further allocations never collide.
func Restore(s *Snapshot) (*World, error) {
	w := &World{
		Seed:       s.Seed,
		ISPs:       make(map[ASN]*ISP, len(s.ISPs)),
		Facilities: make(map[FacilityID]*Facility, len(s.Facilities)),
		IXPs:       make(map[IXPID]*IXP, len(s.IXPs)),
		hostNext:   make(map[ASN]uint64, len(s.HostNext)),
	}
	w.isps.Reserve(len(s.ISPs))
	w.facs.Reserve(len(s.Facilities))
	for as, n := range s.HostNext {
		w.hostNext[ASN(as)] = n
	}

	metro := func(code string) (geo.Metro, error) {
		m, ok := geo.MetroByCode(code)
		if !ok {
			return geo.Metro{}, fmt.Errorf("inet: unknown metro %q", code)
		}
		return m, nil
	}

	var maxISP, maxContent, maxIXP netaddr.Addr
	for _, is := range s.ISPs {
		isp := w.isps.Get()
		*isp = ISP{
			ASN: ASN(is.ASN), Name: is.Name, Country: is.Country,
			Tier: Tier(is.Tier), Users: is.Users,
		}
		for _, code := range is.Metros {
			m, err := metro(code)
			if err != nil {
				return nil, err
			}
			isp.Metros = append(isp.Metros, m)
		}
		for _, ps := range is.Prefixes {
			p, err := netaddr.ParsePrefix(ps)
			if err != nil {
				return nil, fmt.Errorf("inet: ISP %s: %w", is.Name, err)
			}
			isp.Prefixes = append(isp.Prefixes, p)
			w.registerOwner(p.First(), p.Last(), isp.ASN)
			if isp.Tier == TierContent {
				if p.Last() > maxContent {
					maxContent = p.Last()
				}
			} else if p.Last() > maxISP {
				maxISP = p.Last()
			}
		}
		for _, p := range is.Providers {
			isp.Providers = append(isp.Providers, ASN(p))
		}
		for _, x := range is.IXPs {
			isp.IXPs = append(isp.IXPs, IXPID(x))
		}
		for _, f := range is.Facs {
			isp.Facilities = append(isp.Facilities, FacilityID(f))
		}
		w.ISPs[isp.ASN] = isp
	}
	for _, fs := range s.Facilities {
		m, err := metro(fs.Metro)
		if err != nil {
			return nil, err
		}
		f := w.facs.Get()
		*f = Facility{
			ID: FacilityID(fs.ID), Owner: ASN(fs.Owner), Metro: m,
			Loc: geo.Point{LatDeg: fs.Lat, LonDeg: fs.Lon}, Racks: fs.Racks,
		}
		w.Facilities[f.ID] = f
	}
	for _, xs := range s.IXPs {
		m, err := metro(xs.Metro)
		if err != nil {
			return nil, err
		}
		fabric, err := netaddr.ParsePrefix(xs.Fabric)
		if err != nil {
			return nil, fmt.Errorf("inet: IXP %s: %w", xs.Name, err)
		}
		x := &IXP{
			ID: IXPID(xs.ID), Name: xs.Name, Metro: m, Fabric: fabric,
			CapacityGbps: xs.Capacity,
			MemberAddr:   make(map[ASN]netaddr.Addr, len(xs.Members)),
		}
		for as, addrStr := range xs.Members {
			addr, err := netaddr.ParseAddr(addrStr)
			if err != nil {
				return nil, fmt.Errorf("inet: IXP %s member: %w", xs.Name, err)
			}
			x.MemberAddr[ASN(as)] = addr
		}
		if fabric.Last() > maxIXP {
			maxIXP = fabric.Last()
		}
		w.IXPs[x.ID] = x
	}

	// Reconstruct allocation pools past everything in use.
	w.ispPool = restoredPool("16.0.0.0/4", maxISP)
	w.contentPool = restoredPool("8.0.0.0/9", maxContent)
	w.ixpPool = restoredPool("198.32.0.0/13", maxIXP)
	w.finalize()
	return w, nil
}

// restoredPool returns a pool over base whose cursor is past lastUsed.
func restoredPool(base string, lastUsed netaddr.Addr) *netaddr.Pool {
	pool := netaddr.NewPool(netaddr.MustPrefix(base))
	if lastUsed != 0 {
		pool.AdvancePast(lastUsed)
	}
	return pool
}

// RestoreJSON decodes a snapshot produced by MarshalJSON.
func RestoreJSON(data []byte) (*World, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("inet: decode snapshot: %w", err)
	}
	return Restore(&s)
}
