// Package inet builds the synthetic Internet all experiments run against:
// countries with Internet-user populations, access and transit ISPs (ASes),
// colocation facilities in metros, IXPs with shared fabrics, a valley-free
// transit hierarchy, and IPv4 address assignments.
//
// It substitutes for the gated datasets the paper measures over (the routed
// IPv4 space Censys scans, the APNIC per-ISP user populations, PeeringDB /
// Euro-IX registries) while preserving the structural properties those
// pipelines depend on: ISPs announce prefixes, host facilities near their
// interconnection points, join IXPs, and buy transit from providers.
package inet

import (
	"fmt"
	"sort"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/netaddr"
)

// ASN identifies an autonomous system.
type ASN uint32

// Tier classifies an AS's role in the transit hierarchy.
type Tier int

// Tiers, from the top of the hierarchy down.
const (
	TierBackbone Tier = iota // global transit-free carriers
	TierTransit              // regional transit providers
	TierAccess               // eyeball / access ISPs
	TierContent              // content providers (hypergiant onnet ASes)
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierBackbone:
		return "backbone"
	case TierTransit:
		return "transit"
	case TierAccess:
		return "access"
	case TierContent:
		return "content"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// FacilityID identifies a colocation facility.
type FacilityID int

// IXPID identifies an Internet exchange point.
type IXPID int

// Facility is a physical building in which an ISP hosts infrastructure —
// including, centrally for this paper, offnet servers from hypergiants.
type Facility struct {
	ID    FacilityID
	Owner ASN // hosting ISP
	Metro geo.Metro
	// Loc is the exact facility location; facilities of the same ISP in the
	// same metro are separated by a few km so latency clustering has real
	// work to do ("differentiating between multiple facilities in a city").
	Loc geo.Point
	// Racks is the number of rack positions available to third-party
	// (hypergiant) equipment.
	Racks int
}

// Name returns a stable human-readable facility name.
func (f *Facility) Name() string {
	return fmt.Sprintf("fac%d-as%d-%s", f.ID, f.Owner, f.Metro.Code)
}

// IXP is an Internet exchange point with a shared layer-2 fabric. Members get
// one address each on the fabric prefix; the paper's traceroute methodology
// maps those addresses back to members via Euro-IX/PeeringDB-style data.
type IXP struct {
	ID     IXPID
	Name   string
	Metro  geo.Metro
	Fabric netaddr.Prefix
	// MemberAddr maps each member AS to its fabric address.
	MemberAddr map[ASN]netaddr.Addr
	// CapacityGbps is the usable switching capacity of the fabric; §4.3
	// argues IXPs lack headroom for hypergiant spillover.
	CapacityGbps float64
}

// Members returns the member ASNs in ascending order.
func (x *IXP) Members() []ASN {
	out := make([]ASN, 0, len(x.MemberAddr))
	for as := range x.MemberAddr {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ISP is an autonomous system: an access network, a transit provider, or a
// backbone carrier.
type ISP struct {
	ASN     ASN
	Name    string
	Country string
	Tier    Tier
	// Users is the estimated Internet-user population (APNIC-style).
	Users float64
	// Metros this ISP operates in; access ISPs concentrate in one country.
	Metros []geo.Metro
	// Facilities owned by this ISP (indices into World.Facilities).
	Facilities []FacilityID
	// Prefixes announced to the global Internet.
	Prefixes []netaddr.Prefix
	// Providers are the ASes this ISP buys transit from.
	Providers []ASN
	// IXPs this ISP is a member of.
	IXPs []IXPID
}

// IsAccess reports whether the ISP is an eyeball/access network.
func (i *ISP) IsAccess() bool { return i.Tier == TierAccess }

// World is the complete synthetic Internet.
type World struct {
	Seed       int64
	ISPs       map[ASN]*ISP
	Facilities map[FacilityID]*Facility
	IXPs       map[IXPID]*IXP
	// PrefixOwner maps every announced prefix to its origin AS, the
	// "IP-to-ISP mapping" role PeeringDB/Euro-IX + routing data play in the
	// paper's traceroute methodology.
	PrefixOwner map[netaddr.Prefix]ASN

	// Allocation state, used after generation to place content (hypergiant)
	// ASes and to carve server addresses out of ISP space.
	ispPool     *netaddr.Pool
	contentPool *netaddr.Pool
	ixpPool     *netaddr.Pool
	hostNext    map[ASN]uint64
}

// ISPList returns all ISPs ordered by ASN for deterministic iteration.
func (w *World) ISPList() []*ISP {
	out := make([]*ISP, 0, len(w.ISPs))
	for _, isp := range w.ISPs {
		out = append(out, isp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// AccessISPs returns the access ISPs ordered by ASN.
func (w *World) AccessISPs() []*ISP {
	var out []*ISP
	for _, isp := range w.ISPList() {
		if isp.IsAccess() {
			out = append(out, isp)
		}
	}
	return out
}

// FacilityList returns all facilities ordered by ID.
func (w *World) FacilityList() []*Facility {
	out := make([]*Facility, 0, len(w.Facilities))
	for _, f := range w.Facilities {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IXPList returns all IXPs ordered by ID.
func (w *World) IXPList() []*IXP {
	out := make([]*IXP, 0, len(w.IXPs))
	for _, x := range w.IXPs {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OwnerOf returns the AS announcing the /24 containing addr, or false when
// the address is unrouted. IXP fabric addresses belong to no AS (they are
// deliberately absent, as in the real Internet where fabric space is not
// globally announced) and resolve via IXPOf instead.
func (w *World) OwnerOf(addr netaddr.Addr) (ASN, bool) {
	as, ok := w.PrefixOwner[addr.Slash24()]
	return as, ok
}

// IXPOf returns the IXP whose fabric contains addr, and the member AS using
// that fabric address, if any.
func (w *World) IXPOf(addr netaddr.Addr) (*IXP, ASN, bool) {
	for _, x := range w.IXPList() {
		if !x.Fabric.Contains(addr) {
			continue
		}
		for as, a := range x.MemberAddr {
			if a == addr {
				return x, as, true
			}
		}
		return x, 0, false
	}
	return nil, 0, false
}

// UsersInISPs sums the user population of the given set of ASNs.
func (w *World) UsersInISPs(set map[ASN]bool) float64 {
	var total float64
	for as, in := range set {
		if !in {
			continue
		}
		if isp, ok := w.ISPs[as]; ok {
			total += isp.Users
		}
	}
	return total
}

// TotalUsers sums the user population across all access ISPs.
func (w *World) TotalUsers() float64 {
	var total float64
	for _, isp := range w.ISPs {
		if isp.IsAccess() {
			total += isp.Users
		}
	}
	return total
}

// CountryUsers returns the total access-ISP user population per country.
func (w *World) CountryUsers() map[string]float64 {
	out := make(map[string]float64)
	for _, isp := range w.ISPs {
		if isp.IsAccess() {
			out[isp.Country] += isp.Users
		}
	}
	return out
}
