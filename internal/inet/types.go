// Package inet builds the synthetic Internet all experiments run against:
// countries with Internet-user populations, access and transit ISPs (ASes),
// colocation facilities in metros, IXPs with shared fabrics, a valley-free
// transit hierarchy, and IPv4 address assignments.
//
// It substitutes for the gated datasets the paper measures over (the routed
// IPv4 space Censys scans, the APNIC per-ISP user populations, PeeringDB /
// Euro-IX registries) while preserving the structural properties those
// pipelines depend on: ISPs announce prefixes, host facilities near their
// interconnection points, join IXPs, and buy transit from providers.
package inet

import (
	"fmt"
	"sort"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/netaddr"
)

// ASN identifies an autonomous system.
type ASN uint32

// Tier classifies an AS's role in the transit hierarchy.
type Tier int

// Tiers, from the top of the hierarchy down.
const (
	TierBackbone Tier = iota // global transit-free carriers
	TierTransit              // regional transit providers
	TierAccess               // eyeball / access ISPs
	TierContent              // content providers (hypergiant onnet ASes)
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierBackbone:
		return "backbone"
	case TierTransit:
		return "transit"
	case TierAccess:
		return "access"
	case TierContent:
		return "content"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// FacilityID identifies a colocation facility.
type FacilityID int

// IXPID identifies an Internet exchange point.
type IXPID int

// Facility is a physical building in which an ISP hosts infrastructure —
// including, centrally for this paper, offnet servers from hypergiants.
type Facility struct {
	ID    FacilityID
	Owner ASN // hosting ISP
	Metro geo.Metro
	// Loc is the exact facility location; facilities of the same ISP in the
	// same metro are separated by a few km so latency clustering has real
	// work to do ("differentiating between multiple facilities in a city").
	Loc geo.Point
	// Racks is the number of rack positions available to third-party
	// (hypergiant) equipment.
	Racks int
}

// Name returns a stable human-readable facility name.
func (f *Facility) Name() string {
	return fmt.Sprintf("fac%d-as%d-%s", f.ID, f.Owner, f.Metro.Code)
}

// IXP is an Internet exchange point with a shared layer-2 fabric. Members get
// one address each on the fabric prefix; the paper's traceroute methodology
// maps those addresses back to members via Euro-IX/PeeringDB-style data.
type IXP struct {
	ID     IXPID
	Name   string
	Metro  geo.Metro
	Fabric netaddr.Prefix
	// MemberAddr maps each member AS to its fabric address.
	MemberAddr map[ASN]netaddr.Addr
	// CapacityGbps is the usable switching capacity of the fabric; §4.3
	// argues IXPs lack headroom for hypergiant spillover.
	CapacityGbps float64
}

// Members returns the member ASNs in ascending order.
func (x *IXP) Members() []ASN {
	out := make([]ASN, 0, len(x.MemberAddr))
	for as := range x.MemberAddr {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ISP is an autonomous system: an access network, a transit provider, or a
// backbone carrier.
type ISP struct {
	ASN     ASN
	Name    string
	Country string
	Tier    Tier
	// Users is the estimated Internet-user population (APNIC-style).
	Users float64
	// Metros this ISP operates in; access ISPs concentrate in one country.
	Metros []geo.Metro
	// Facilities owned by this ISP (indices into World.Facilities).
	Facilities []FacilityID
	// Prefixes announced to the global Internet.
	Prefixes []netaddr.Prefix
	// Providers are the ASes this ISP buys transit from.
	Providers []ASN
	// IXPs this ISP is a member of.
	IXPs []IXPID
}

// IsAccess reports whether the ISP is an eyeball/access network.
func (i *ISP) IsAccess() bool { return i.Tier == TierAccess }

// ownerSpan is one contiguous run of announced address space and its origin
// AS. The sorted span table is the interval-indexed form of the "IP-to-ISP
// mapping" role PeeringDB/Euro-IX + routing data play in the paper's
// traceroute methodology: at huge scale it replaces a per-/24 map (hundreds
// of thousands of entries) with one entry per contiguous announcement.
type ownerSpan struct {
	first, last netaddr.Addr
	as          ASN
}

// fabricSpan is the interval-index entry for one IXP fabric, so IXPOf is a
// binary search instead of a sorted scan over all exchanges per lookup.
type fabricSpan struct {
	first, last netaddr.Addr
	id          IXPID
}

// slab is a chunked arena of pointer-stable slots: Get never moves existing
// elements (growth allocates a fresh block rather than reallocating), so the
// World maps can point into it while generation keeps appending. It cuts
// entity allocation from one per ISP/facility to one per block.
type slab[T any] struct {
	block []T
	size  int
}

// Reserve sizes the next block for n upcoming slots (a hint, not a cap).
func (s *slab[T]) Reserve(n int) {
	if n > s.size {
		s.size = n
	}
}

// Get returns a zeroed, pointer-stable slot.
func (s *slab[T]) Get() *T {
	if len(s.block) == cap(s.block) {
		n := s.size
		if n < 256 {
			n = 256
		}
		s.block = make([]T, 0, n)
		s.size = 0
	}
	s.block = s.block[:len(s.block)+1]
	return &s.block[len(s.block)-1]
}

// World is the complete synthetic Internet.
type World struct {
	Seed       int64
	ISPs       map[ASN]*ISP
	Facilities map[FacilityID]*Facility
	IXPs       map[IXPID]*IXP

	// owners is the sorted interval index behind OwnerOf: every announced
	// prefix contributes one contiguous [first,last] span. Mutation paths
	// (generation, Restore, AddContentAS) append and then finalize; lookups
	// never sort, so concurrent measurement stages read race-free.
	owners []ownerSpan
	// fabrics is the sorted interval index behind IXPOf.
	fabrics []fabricSpan

	// Entity slabs: ISPs and Facilities are values in chunked arenas; the
	// maps above hold pointers into them.
	isps slab[ISP]
	facs slab[Facility]

	// Allocation state, used after generation to place content (hypergiant)
	// ASes and to carve server addresses out of ISP space.
	ispPool     *netaddr.Pool
	contentPool *netaddr.Pool
	ixpPool     *netaddr.Pool
	hostNext    map[ASN]uint64
}

// registerOwner records one contiguous announcement for the interval index.
// finalize must run before lookups.
func (w *World) registerOwner(first, last netaddr.Addr, as ASN) {
	w.owners = append(w.owners, ownerSpan{first: first, last: last, as: as})
}

// finalize sorts the interval indexes. Every mutation path (Generate,
// Restore, AddContentAS) calls it eagerly before returning, so OwnerOf and
// IXPOf are pure reads — safe under the parallel measurement stages.
func (w *World) finalize() {
	sort.Slice(w.owners, func(i, j int) bool { return w.owners[i].first < w.owners[j].first })
	w.fabrics = w.fabrics[:0]
	for _, x := range w.IXPs {
		w.fabrics = append(w.fabrics, fabricSpan{first: x.Fabric.First(), last: x.Fabric.Last(), id: x.ID})
	}
	sort.Slice(w.fabrics, func(i, j int) bool { return w.fabrics[i].first < w.fabrics[j].first })
}

// ISPList returns all ISPs ordered by ASN for deterministic iteration.
func (w *World) ISPList() []*ISP {
	out := make([]*ISP, 0, len(w.ISPs))
	for _, isp := range w.ISPs {
		out = append(out, isp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// AccessISPs returns the access ISPs ordered by ASN.
func (w *World) AccessISPs() []*ISP {
	var out []*ISP
	for _, isp := range w.ISPList() {
		if isp.IsAccess() {
			out = append(out, isp)
		}
	}
	return out
}

// FacilityList returns all facilities ordered by ID.
func (w *World) FacilityList() []*Facility {
	out := make([]*Facility, 0, len(w.Facilities))
	for _, f := range w.Facilities {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IXPList returns all IXPs ordered by ID.
func (w *World) IXPList() []*IXP {
	out := make([]*IXP, 0, len(w.IXPs))
	for _, x := range w.IXPs {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OwnerOf returns the AS announcing the address space containing addr, or
// false when the address is unrouted. IXP fabric addresses belong to no AS
// (they are deliberately absent, as in the real Internet where fabric space
// is not globally announced) and resolve via IXPOf instead. Lookup is a
// binary search over the sorted announcement spans.
func (w *World) OwnerOf(addr netaddr.Addr) (ASN, bool) {
	i := sort.Search(len(w.owners), func(i int) bool { return w.owners[i].last >= addr })
	if i < len(w.owners) && w.owners[i].first <= addr {
		return w.owners[i].as, true
	}
	return 0, false
}

// IXPOf returns the IXP whose fabric contains addr, and the member AS using
// that fabric address, if any. Fabric containment is a binary search over
// the sorted fabric spans.
func (w *World) IXPOf(addr netaddr.Addr) (*IXP, ASN, bool) {
	i := sort.Search(len(w.fabrics), func(i int) bool { return w.fabrics[i].last >= addr })
	if i >= len(w.fabrics) || w.fabrics[i].first > addr {
		return nil, 0, false
	}
	x := w.IXPs[w.fabrics[i].id]
	for as, a := range x.MemberAddr {
		if a == addr {
			return x, as, true
		}
	}
	return x, 0, false
}

// UsersInISPs sums the user population of the given set of ASNs.
func (w *World) UsersInISPs(set map[ASN]bool) float64 {
	var total float64
	for as, in := range set {
		if !in {
			continue
		}
		if isp, ok := w.ISPs[as]; ok {
			total += isp.Users
		}
	}
	return total
}

// TotalUsers sums the user population across all access ISPs.
func (w *World) TotalUsers() float64 {
	var total float64
	for _, isp := range w.ISPs {
		if isp.IsAccess() {
			total += isp.Users
		}
	}
	return total
}

// CountryUsers returns the total access-ISP user population per country.
func (w *World) CountryUsers() map[string]float64 {
	out := make(map[string]float64)
	for _, isp := range w.ISPs {
		if isp.IsAccess() {
			out[isp.Country] += isp.Users
		}
	}
	return out
}
