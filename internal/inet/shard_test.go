package inet

import (
	"crypto/sha256"
	"encoding/json"
	"runtime"
	"testing"

	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/rngutil"
)

// worldHash returns the SHA-256 of the world's canonical JSON snapshot —
// the same bytes runsdiff hashes, so two equal hashes mean byte-identical
// worlds by the repo's drift contract.
func worldHash(t testing.TB, cfg Config) [32]byte {
	t.Helper()
	b, err := json.Marshal(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(b)
}

// TestShardCompositionDeterminism is the sharded builder's core contract:
// the composed world is byte-identical regardless of how the entity index
// space is partitioned into shards or how many workers build them. 100
// derived seeds at the tiny tier, crossed over shard counts {1, 2, 7,
// GOMAXPROCS} and worker counts {1, 4}.
func TestShardCompositionDeterminism(t *testing.T) {
	shardCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	workerCounts := []int{1, 4}
	label := rngutil.Label("shard-composition")
	for i := 0; i < 100; i++ {
		seed := rngutil.Derive(42, label, int64(i))
		cfg := TinyConfig(seed)
		cfg.Sharded = true
		cfg.Shards, cfg.GenWorkers = 1, 1
		ref := worldHash(t, cfg)
		for _, sh := range shardCounts {
			for _, wk := range workerCounts {
				cfg.Shards, cfg.GenWorkers = sh, wk
				if worldHash(t, cfg) != ref {
					t.Fatalf("seed %d: shards=%d workers=%d diverged from shards=1 workers=1", seed, sh, wk)
				}
			}
		}
	}
}

// TestShardCompositionDeterminismHuge repeats the composition check at the
// huge tier, where shard boundaries land in completely different places.
// One seed, three partitionings — each generation builds 50k+ entities, so
// the sweep is skipped under -short.
func TestShardCompositionDeterminismHuge(t *testing.T) {
	if testing.Short() {
		t.Skip("huge-tier composition sweep skipped in -short mode")
	}
	cfg := HugeConfig(42)
	cfg.Shards, cfg.GenWorkers = 1, 4
	ref := worldHash(t, cfg)
	for _, sh := range []int{7, defaultShards} {
		cfg.Shards, cfg.GenWorkers = sh, 4
		if worldHash(t, cfg) != ref {
			t.Fatalf("huge: shards=%d diverged from shards=1", sh)
		}
	}
}

// TestShardedDefaultsAreShardCountIndependent checks the zero-value path:
// Shards <= 0 means defaultShards and GenWorkers <= 0 means GOMAXPROCS,
// and neither default changes the output.
func TestShardedDefaultsAreShardCountIndependent(t *testing.T) {
	cfg := TinyConfig(7)
	cfg.Sharded = true
	ref := worldHash(t, cfg) // zero Shards/GenWorkers
	cfg.Shards, cfg.GenWorkers = defaultShards, 1
	if worldHash(t, cfg) != ref {
		t.Fatal("explicit defaults diverged from zero-value defaults")
	}
}

// TestShardedWorldStructure validates that the sharded builder produces a
// world satisfying the same structural invariants the legacy builder does.
func TestShardedWorldStructure(t *testing.T) {
	cfg := TinyConfig(42)
	cfg.Sharded = true
	w := Generate(cfg)

	if got := len(w.AccessISPs()); got != cfg.AccessISPs {
		t.Fatalf("access ISPs = %d, want %d", got, cfg.AccessISPs)
	}
	var transits, backbones int
	for _, isp := range w.ISPList() {
		switch isp.Tier {
		case TierTransit:
			transits++
		case TierBackbone:
			backbones++
		}
	}
	if transits != cfg.TransitISPs || backbones != cfg.Backbones {
		t.Fatalf("transit/backbone = %d/%d, want %d/%d", transits, backbones, cfg.TransitISPs, cfg.Backbones)
	}

	for _, isp := range w.ISPList() {
		if len(isp.Prefixes) == 0 {
			t.Fatalf("%s announces no prefixes", isp.Name)
		}
		for _, p := range isp.Prefixes {
			for _, a := range []netaddr.Addr{p.First(), p.Last()} {
				if owner, ok := w.OwnerOf(a); !ok || owner != isp.ASN {
					t.Fatalf("OwnerOf(%v) = %d,%v inside %v of %s", a, owner, ok, p, isp.Name)
				}
			}
		}
		if len(isp.Metros) == 0 {
			t.Fatalf("%s has no metros", isp.Name)
		}
		switch isp.Tier {
		case TierAccess:
			if len(isp.Providers) == 0 {
				t.Fatalf("access %s has no providers", isp.Name)
			}
			if len(isp.Facilities) == 0 {
				t.Fatalf("access %s is in no facility", isp.Name)
			}
			if isp.Users <= 0 {
				t.Fatalf("access %s has %v users", isp.Name, isp.Users)
			}
		case TierTransit:
			for _, prov := range isp.Providers {
				if p := w.ISPs[prov]; p == nil || p.Tier != TierBackbone {
					t.Fatalf("transit %s has non-backbone provider AS%d", isp.Name, prov)
				}
			}
		}
		for _, fid := range isp.Facilities {
			if w.Facilities[fid] == nil {
				t.Fatalf("%s lists unknown facility %d", isp.Name, fid)
			}
		}
		for _, id := range isp.IXPs {
			x := w.IXPs[id]
			if x == nil {
				t.Fatalf("%s lists unknown IXP %d", isp.Name, id)
			}
			addr, ok := x.MemberAddr[isp.ASN]
			if !ok {
				t.Fatalf("%s claims IXP %d membership but has no fabric address", isp.Name, id)
			}
			if gotX, gotAS, ok := w.IXPOf(addr); !ok || gotX != x || gotAS != isp.ASN {
				t.Fatalf("IXPOf(%v) = %v,%d,%v, want IXP %d,%d", addr, gotX, gotAS, ok, id, isp.ASN)
			}
		}
	}

	// Fabric addresses stay inside their IXP's fabric prefix and every
	// member is mirrored on the ISP side.
	for id, x := range w.IXPs {
		for as, addr := range x.MemberAddr {
			if !x.Fabric.Contains(addr) {
				t.Fatalf("IXP %d member AS%d addr %v outside fabric %v", id, as, addr, x.Fabric)
			}
			isp := w.ISPs[as]
			if isp == nil {
				t.Fatalf("IXP %d member AS%d unknown", id, as)
			}
			found := false
			for _, mid := range isp.IXPs {
				if mid == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("IXP %d lists AS%d but %s does not list the IXP back", id, as, isp.Name)
			}
		}
	}
}
