package inet

import (
	"fmt"
	"math"
	"math/rand"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
)

var (
	mWorldsGenerated = obs.NewCounter("inet.worlds_generated",
		"synthetic Internets generated")
	mISPsGenerated = obs.NewCounter("inet.isps_generated",
		"ISPs generated across all worlds")
)

// ASN ranges per role; content ASes (hypergiants) are added later via
// AddContentAS and live in their own range.
const (
	asnBackboneBase = 100
	asnTransitBase  = 1000
	asnAccessBase   = 10000
	asnContentBase  = 90000
)

// Generate builds a synthetic Internet from the configuration.
//
// Two builders exist behind this one entry point. The legacy sequential
// builder (Sharded false, the default) draws from a single RNG stream and is
// bit-identical to the original generator — every committed golden manifest
// depends on that. The sharded builder (Sharded true, selected by a
// scenario's topology, e.g. `huge`) derives an independent substream per
// entity and builds shards in parallel; its output is invariant to both the
// shard count and the worker count. See DESIGN.md §12.
func Generate(cfg Config) *World {
	cfg = cfg.sanitized()
	if cfg.Sharded {
		return generateSharded(cfg)
	}
	r := rngutil.New(cfg.Seed)

	w := newWorld(cfg.Seed)
	w.isps.Reserve(cfg.Backbones + cfg.TransitISPs + cfg.AccessISPs)
	w.facs.Reserve(2*cfg.TransitISPs + 2*cfg.AccessISPs)

	countries := geo.Countries()

	// Country weight: Internet population proxy — proportional to metro
	// count with noise, so countries with more catalogue metros host more
	// ISPs and users, approximating the APNIC skew.
	countryWeight := make([]float64, len(countries))
	for i, cc := range countries {
		countryWeight[i] = float64(len(geo.MetrosIn(cc))) * math.Exp(r.NormFloat64()*0.5)
	}

	w.genBackbones(cfg, r)
	w.genIXPs(cfg, r)
	w.genTransits(cfg, r, countries, countryWeight)
	w.genAccess(cfg, r, countries, countryWeight)
	w.finalize()
	mWorldsGenerated.Inc()
	mISPsGenerated.Add(int64(len(w.ISPs)))
	return w
}

// newWorld returns an empty world with fresh allocation pools.
func newWorld(seed int64) *World {
	return &World{
		Seed:        seed,
		ISPs:        make(map[ASN]*ISP),
		Facilities:  make(map[FacilityID]*Facility),
		IXPs:        make(map[IXPID]*IXP),
		ispPool:     netaddr.NewPool(netaddr.MustPrefix("16.0.0.0/4")),
		contentPool: netaddr.NewPool(netaddr.MustPrefix("8.0.0.0/9")),
		ixpPool:     netaddr.NewPool(netaddr.MustPrefix("198.32.0.0/13")),
		hostNext:    make(map[ASN]uint64),
	}
}

func (w *World) genBackbones(cfg Config, r *rand.Rand) {
	// Backbones are present "everywhere": give each a global metro sample.
	for i := 0; i < cfg.Backbones; i++ {
		as := ASN(asnBackboneBase + i)
		n := rngutil.IntBetween(r, 25, 45)
		idx := rngutil.SampleWithoutReplacement(r, len(geo.Metros), n)
		metros := make([]geo.Metro, 0, n)
		for _, j := range idx {
			metros = append(metros, geo.Metros[j])
		}
		isp := w.isps.Get()
		*isp = ISP{
			ASN:     as,
			Name:    fmt.Sprintf("backbone-%d", i+1),
			Country: metros[0].Country,
			Tier:    TierBackbone,
			Metros:  metros,
		}
		w.allocPrefixes(isp, 8, w.ispPool)
		w.ISPs[as] = isp
	}
}

// ixpMetroOrder returns metro indices round-robin across countries (each
// country's first metro first), so even small worlds place exchanges on
// every continent the way real interconnection hubs cluster. Shared by both
// builders.
func ixpMetroOrder() []int {
	byCountry := make(map[string][]int)
	for i, m := range geo.Metros {
		byCountry[m.Country] = append(byCountry[m.Country], i)
	}
	countries := geo.Countries()
	var order []int
	for round := 0; len(order) < len(geo.Metros); round++ {
		added := false
		for _, cc := range countries {
			if round < len(byCountry[cc]) {
				order = append(order, byCountry[cc][round])
				added = true
			}
		}
		if !added {
			break
		}
	}
	return order
}

func (w *World) genIXPs(cfg Config, r *rand.Rand) {
	order := ixpMetroOrder()
	n := cfg.IXPs
	if n > len(order) {
		n = len(order)
	}
	for i := 0; i < n; i++ {
		m := geo.Metros[order[i]]
		fabric, err := w.ixpPool.AllocPrefix(23)
		if err != nil {
			break
		}
		id := IXPID(i + 1)
		w.IXPs[id] = &IXP{
			ID:           id,
			Name:         fmt.Sprintf("ix-%s-%d", m.Code, i+1),
			Metro:        m,
			Fabric:       fabric,
			MemberAddr:   make(map[ASN]netaddr.Addr),
			CapacityGbps: rngutil.LogNormal(r, math.Log(400), 0.7),
		}
	}
	// Backbones join most IXPs.
	for _, isp := range w.ISPList() {
		if isp.Tier != TierBackbone {
			continue
		}
		for _, x := range w.IXPList() {
			if rngutil.Bernoulli(r, 0.7) {
				w.joinIXP(isp, x)
			}
		}
	}
}

func (w *World) joinIXP(isp *ISP, x *IXP) {
	if _, ok := x.MemberAddr[isp.ASN]; ok {
		return
	}
	// Fabric addresses are handed out sequentially after the network addr.
	addr := x.Fabric.First() + netaddr.Addr(len(x.MemberAddr)+1)
	if addr > x.Fabric.Last()-1 {
		return // fabric full
	}
	x.MemberAddr[isp.ASN] = addr
	isp.IXPs = append(isp.IXPs, x.ID)
}

func (w *World) genTransits(cfg Config, r *rand.Rand, countries []string, weight []float64) {
	fid := FacilityID(1_000_000) // transit facility IDs live in their own range
	for i := 0; i < cfg.TransitISPs; i++ {
		as := ASN(asnTransitBase + i)
		cc := countries[rngutil.WeightedChoice(r, weight)]
		home := geo.MetrosIn(cc)
		// Transit providers cover their home country and nearby spill.
		metros := append([]geo.Metro(nil), home...)
		extra := rngutil.IntBetween(r, 2, 6)
		idx := rngutil.SampleWithoutReplacement(r, len(geo.Metros), extra)
		for _, j := range idx {
			metros = append(metros, geo.Metros[j])
		}
		isp := w.isps.Get()
		*isp = ISP{
			ASN:     as,
			Name:    fmt.Sprintf("transit-%s-%d", cc, i+1),
			Country: cc,
			Tier:    TierTransit,
			Metros:  metros,
		}
		// One or two backbone providers.
		nProv := rngutil.IntBetween(r, 1, 2)
		provs := rngutil.SampleWithoutReplacement(r, cfg.Backbones, nProv)
		for _, p := range provs {
			isp.Providers = append(isp.Providers, ASN(asnBackboneBase+p))
		}
		w.allocPrefixes(isp, 4, w.ispPool)
		w.ISPs[as] = isp
		// Transit networks are heavy IXP joiners in their footprint.
		for _, x := range w.IXPList() {
			if w.inFootprint(isp, x.Metro) && rngutil.Bernoulli(r, 0.6) {
				w.joinIXP(isp, x)
			}
		}
		// One or two POP facilities where transit providers can host
		// hypergiant offnets serving their downstream customers.
		nf := rngutil.IntBetween(r, 1, 2)
		for k := 0; k < nf; k++ {
			m := metros[k%len(metros)]
			fid++
			f := w.facs.Get()
			*f = Facility{
				ID:    fid,
				Owner: as,
				Metro: m,
				Loc:   jitterLoc(r, m.Loc, 0.15),
				Racks: rngutil.IntBetween(r, 8, 40),
			}
			w.Facilities[fid] = f
			isp.Facilities = append(isp.Facilities, fid)
		}
	}
}

func (w *World) genAccess(cfg Config, r *rand.Rand, countries []string, weight []float64) {
	users := rngutil.Zipf(r, cfg.AccessISPs, cfg.ZipfExponent, cfg.TotalUsers)
	// Rank 0 = biggest ISP. Assign countries by weight; big ISPs prefer big
	// countries (first third of draws biased by squaring weights).
	sq := make([]float64, len(weight))
	for i, v := range weight {
		sq[i] = v * v
	}
	transits := w.transitsByCountry()

	var fid FacilityID
	for i := 0; i < cfg.AccessISPs; i++ {
		as := ASN(asnAccessBase + i)
		wsel := weight
		if i < cfg.AccessISPs/3 {
			wsel = sq
		}
		cc := countries[rngutil.WeightedChoice(r, wsel)]
		home := geo.MetrosIn(cc)
		// Number of metros grows with size rank.
		nm := 1
		switch {
		case i < cfg.AccessISPs/20:
			nm = rngutil.IntBetween(r, min(2, len(home)), len(home))
		case i < cfg.AccessISPs/4:
			nm = rngutil.IntBetween(r, 1, min(3, len(home)))
		}
		if nm > len(home) {
			nm = len(home)
		}
		idx := rngutil.SampleWithoutReplacement(r, len(home), nm)
		metros := make([]geo.Metro, 0, nm)
		for _, j := range idx {
			metros = append(metros, home[j])
		}
		isp := w.isps.Get()
		*isp = ISP{
			ASN:     as,
			Name:    fmt.Sprintf("access-%s-%d", cc, i+1),
			Country: cc,
			Tier:    TierAccess,
			Users:   users[i],
			Metros:  metros,
		}
		// Providers: prefer in-country transit, fall back to any transit,
		// then backbone. Most access ISPs single-home; bigger ones multihome.
		nProv := 1
		if i < cfg.AccessISPs/5 {
			nProv = rngutil.IntBetween(r, 1, 2)
		}
		cands := transits[cc]
		if len(cands) == 0 {
			cands = w.allTransits()
		}
		for _, j := range rngutil.SampleWithoutReplacement(r, len(cands), nProv) {
			isp.Providers = append(isp.Providers, cands[j])
		}
		if len(isp.Providers) == 0 {
			isp.Providers = append(isp.Providers, ASN(asnBackboneBase))
		}

		// Address space scales with users.
		n24 := int(math.Ceil(users[i] / cfg.UsersPerSlash24))
		if n24 < 1 {
			n24 = 1
		}
		if n24 > 512 {
			n24 = 512
		}
		w.allocPrefixes(isp, n24, w.ispPool)
		w.ISPs[as] = isp

		// Facilities: one per metro; ISPs in multiple metros or with large
		// user bases run extra facilities in their primary metro — exactly
		// the structure whose latency separability OPTICS must recover.
		for mi, m := range metros {
			extra := 0
			if mi == 0 && i < cfg.AccessISPs/10 && rngutil.Bernoulli(r, 0.5) {
				extra = rngutil.IntBetween(r, 1, 2)
			}
			for k := 0; k <= extra; k++ {
				fid++
				f := w.facs.Get()
				*f = Facility{
					ID:    fid,
					Owner: as,
					Metro: m,
					Loc:   jitterLoc(r, m.Loc, 0.15),
					Racks: rngutil.IntBetween(r, 4, 40),
				}
				w.Facilities[fid] = f
				isp.Facilities = append(isp.Facilities, fid)
			}
		}

		// IXP membership: probability rises with size. In-footprint
		// exchanges are preferred; ISPs with no domestic exchange remote-
		// peer at the geographically nearest one, the way ISPs without a
		// local hub interconnect at the big regional exchanges.
		joinP := 0.15 + 0.6*math.Exp(-float64(i)/float64(cfg.AccessISPs/4+1))
		joined := false
		for _, x := range w.IXPList() {
			if w.inFootprint(isp, x.Metro) && rngutil.Bernoulli(r, joinP) {
				w.joinIXP(isp, x)
				joined = true
			}
		}
		if !joined && rngutil.Bernoulli(r, 0.35+joinP/2) {
			if x := w.nearestIXP(metros[0].Loc); x != nil {
				w.joinIXP(isp, x)
			}
		}
	}
}

// transitsByCountry groups transit ASNs by home country.
func (w *World) transitsByCountry() map[string][]ASN {
	out := make(map[string][]ASN)
	for _, isp := range w.ISPList() {
		if isp.Tier == TierTransit {
			out[isp.Country] = append(out[isp.Country], isp.ASN)
		}
	}
	return out
}

func (w *World) allTransits() []ASN {
	var out []ASN
	for _, isp := range w.ISPList() {
		if isp.Tier == TierTransit {
			out = append(out, isp.ASN)
		}
	}
	return out
}

// nearestIXP returns the exchange closest to the location, or nil when none
// exist.
func (w *World) nearestIXP(loc geo.Point) *IXP {
	var best *IXP
	bestD := math.Inf(1)
	for _, x := range w.IXPList() {
		if d := geo.DistanceKm(loc, x.Metro.Loc); d < bestD {
			best, bestD = x, d
		}
	}
	return best
}

func (w *World) inFootprint(isp *ISP, m geo.Metro) bool {
	for _, im := range isp.Metros {
		if im.Code == m.Code {
			return true
		}
		if im.Country == m.Country {
			return true
		}
	}
	return false
}

func (w *World) allocPrefixes(isp *ISP, n24 int, pool *netaddr.Pool) {
	// Allocate in the largest aligned blocks possible to keep the prefix
	// table small: /16 chunks of 256 /24s, then /20s, then /24s.
	for n24 > 0 {
		var bits int
		switch {
		case n24 >= 256:
			bits, n24 = 16, n24-256
		case n24 >= 16:
			bits, n24 = 20, n24-16
		default:
			bits, n24 = 24, n24-1
		}
		p, err := pool.AllocPrefix(bits)
		if err != nil {
			return // address space exhausted; generation proceeds degraded
		}
		isp.Prefixes = append(isp.Prefixes, p)
		w.registerOwner(p.First(), p.Last(), isp.ASN)
	}
}

func jitterLoc(r *rand.Rand, p geo.Point, deg float64) geo.Point {
	return geo.Point{
		LatDeg: p.LatDeg + (r.Float64()*2-1)*deg,
		LonDeg: p.LonDeg + (r.Float64()*2-1)*deg,
	}
}
