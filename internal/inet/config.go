package inet

// Config controls synthetic Internet generation. The defaults produce a
// world sized for laptop-scale experiments while keeping the structural
// ratios the paper measures (thousands of access ISPs, tens of IXPs, a
// handful of backbones).
type Config struct {
	// Seed drives every random draw; equal seeds produce identical worlds.
	Seed int64
	// AccessISPs is the number of eyeball networks to generate. The paper
	// works with 5516 offnet-hosting ISPs; tests use much smaller worlds.
	AccessISPs int
	// TransitISPs is the number of regional transit providers.
	TransitISPs int
	// Backbones is the number of global transit-free carriers.
	Backbones int
	// IXPs is the number of exchange points, placed in the largest metros.
	IXPs int
	// TotalUsers is the world Internet-user population distributed across
	// access ISPs with a Zipf profile (APNIC-style).
	TotalUsers float64
	// ZipfExponent shapes the user-population distribution.
	ZipfExponent float64
	// UsersPerSlash24 controls how much address space an ISP announces
	// relative to its user base.
	UsersPerSlash24 float64
}

// DefaultConfig returns the world used by the command-line tools: large
// enough for stable statistics, small enough to run in seconds.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		AccessISPs:      900,
		TransitISPs:     48,
		Backbones:       8,
		IXPs:            36,
		TotalUsers:      3.0e9,
		ZipfExponent:    1.05,
		UsersPerSlash24: 8000,
	}
}

// LargeConfig returns a world sized closer to the paper's datasets (still
// laptop-feasible: the colocation pipeline takes on the order of a minute).
func LargeConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		AccessISPs:      2400,
		TransitISPs:     96,
		Backbones:       10,
		IXPs:            60,
		TotalUsers:      4.2e9,
		ZipfExponent:    1.05,
		UsersPerSlash24: 8000,
	}
}

// TinyConfig returns a miniature world for unit tests.
func TinyConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		AccessISPs:      60,
		TransitISPs:     10,
		Backbones:       3,
		IXPs:            8,
		TotalUsers:      2.0e8,
		ZipfExponent:    1.0,
		UsersPerSlash24: 8000,
	}
}

// sanitized fills zero or nonsense fields with the TinyConfig values, so a
// zero-valued Config and the tiny world agree field for field.
func (c Config) sanitized() Config {
	if c.AccessISPs <= 0 {
		c.AccessISPs = 60
	}
	if c.TransitISPs <= 0 {
		c.TransitISPs = 10
	}
	if c.Backbones <= 0 {
		c.Backbones = 3
	}
	if c.IXPs <= 0 {
		c.IXPs = 8
	}
	if c.TotalUsers <= 0 {
		c.TotalUsers = 2.0e8
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 1.0
	}
	if c.UsersPerSlash24 <= 0 {
		c.UsersPerSlash24 = 8000
	}
	return c
}
