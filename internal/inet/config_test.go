package inet

import (
	"testing"

	"offnetrisk/internal/scenario"
)

// TestSanitizedMatchesTiny: the zero-config fallbacks are exactly the tiny
// world, field by field, and real values pass through untouched.
func TestSanitizedMatchesTiny(t *testing.T) {
	tiny := TinyConfig(0)
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{"zero config becomes tiny", Config{}, tiny},
		{"negative counts become tiny", Config{
			AccessISPs: -1, TransitISPs: -1, Backbones: -1, IXPs: -1,
			TotalUsers: -1, ZipfExponent: -1, UsersPerSlash24: -1,
		}, tiny},
		{"valid config passes through", DefaultConfig(3), DefaultConfig(3)},
		{"partial zero fills only the holes", Config{
			Seed: 9, AccessISPs: 200, TotalUsers: 1e9,
		}, Config{
			Seed: 9, AccessISPs: 200, TransitISPs: tiny.TransitISPs,
			Backbones: tiny.Backbones, IXPs: tiny.IXPs, TotalUsers: 1e9,
			ZipfExponent: tiny.ZipfExponent, UsersPerSlash24: tiny.UsersPerSlash24,
		}},
	}
	for _, tc := range cases {
		got := tc.in.sanitized()
		got.Seed = tc.want.Seed
		if got != tc.want {
			t.Errorf("%s: sanitized() = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestConfigFromScenario: the registry's default/tiny/large scenarios
// reproduce the hand-written constructors exactly — the topology half of the
// byte-compatibility contract.
func TestConfigFromScenario(t *testing.T) {
	cases := []struct {
		scenario string
		want     Config
	}{
		{"default", DefaultConfig(42)},
		{"tiny", TinyConfig(42)},
		{"large", LargeConfig(42)},
		{"huge", HugeConfig(42)},
	}
	for _, tc := range cases {
		sp := scenario.MustLookup(tc.scenario)
		if got := ConfigFromScenario(sp, 42); got != tc.want {
			t.Errorf("ConfigFromScenario(%s) = %+v, want %+v", tc.scenario, got, tc.want)
		}
	}
}
