package inet

import (
	"encoding/json"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	w := Generate(TinyConfig(1))
	// Exercise post-generation state: a content AS and some host
	// allocations must survive the round trip.
	if _, err := w.AddContentAS("hg-test", nil, 4); err != nil {
		t.Fatal(err)
	}
	isp := w.AccessISPs()[0]
	var lastHost string
	for i := 0; i < 5; i++ {
		a, err := w.AllocHostIn(isp.ASN)
		if err != nil {
			t.Fatal(err)
		}
		lastHost = a.String()
	}

	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreJSON(data)
	if err != nil {
		t.Fatal(err)
	}

	if len(r.ISPs) != len(w.ISPs) || len(r.Facilities) != len(w.Facilities) || len(r.IXPs) != len(w.IXPs) {
		t.Fatalf("sizes differ: %d/%d/%d vs %d/%d/%d",
			len(r.ISPs), len(r.Facilities), len(r.IXPs),
			len(w.ISPs), len(w.Facilities), len(w.IXPs))
	}
	for as, orig := range w.ISPs {
		got, ok := r.ISPs[as]
		if !ok {
			t.Fatalf("AS%d missing after restore", as)
		}
		if got.Name != orig.Name || got.Users != orig.Users || got.Tier != orig.Tier ||
			len(got.Prefixes) != len(orig.Prefixes) || len(got.Providers) != len(orig.Providers) {
			t.Fatalf("AS%d differs after restore", as)
		}
	}
	// Prefix ownership index fully rebuilt: every announced prefix resolves
	// to the same AS through the restored world.
	for _, isp := range w.ISPList() {
		for _, p := range isp.Prefixes {
			if owner, ok := r.OwnerOf(p.First()); !ok || owner != isp.ASN {
				t.Fatalf("restored OwnerOf(%s) = %d,%v, want %d", p, owner, ok, isp.ASN)
			}
		}
	}
	// Fabric addresses intact.
	for id, x := range w.IXPs {
		rx := r.IXPs[id]
		if rx == nil || len(rx.MemberAddr) != len(x.MemberAddr) {
			t.Fatalf("IXP %d members differ", id)
		}
		for as, addr := range x.MemberAddr {
			if rx.MemberAddr[as] != addr {
				t.Fatalf("IXP %d member AS%d addr differs", id, as)
			}
		}
	}
	_ = lastHost
}

func TestRestoredWorldKeepsAllocating(t *testing.T) {
	w := Generate(TinyConfig(2))
	isp := w.AccessISPs()[0]
	var used []string
	for i := 0; i < 10; i++ {
		a, err := w.AllocHostIn(isp.ASN)
		if err != nil {
			t.Fatal(err)
		}
		used = append(used, a.String())
	}

	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreJSON(data)
	if err != nil {
		t.Fatal(err)
	}

	// Continued host allocation must not collide with pre-snapshot hosts.
	next, err := r.AllocHostIn(isp.ASN)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range used {
		if u == next.String() {
			t.Fatalf("restored world reissued %s", u)
		}
	}
	// Content pool cursor must be reconstructed: a new content AS gets
	// prefixes disjoint from existing ones.
	if _, err := w.AddContentAS("hg-a", nil, 4); err != nil {
		t.Fatal(err)
	}
	data2, _ := json.Marshal(w)
	r2, err := RestoreJSON(data2)
	if err != nil {
		t.Fatal(err)
	}
	as2, err := r2.AddContentAS("hg-b", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	newPfx := r2.ISPs[as2].Prefixes[0]
	for _, isp := range r2.ISPList() {
		if isp.ASN == as2 {
			continue
		}
		for _, p := range isp.Prefixes {
			if p.Overlaps(newPfx) {
				t.Fatalf("restored content allocation %s overlaps %s of %s", newPfx, p, isp.Name)
			}
		}
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	if _, err := RestoreJSON([]byte("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := RestoreJSON([]byte(`{"isps":[{"asn":1,"name":"x","metros":["zzz"]}]}`)); err == nil {
		t.Error("unknown metro accepted")
	}
	if _, err := RestoreJSON([]byte(`{"isps":[{"asn":1,"name":"x","prefixes":["bad/99"]}]}`)); err == nil {
		t.Error("bad prefix accepted")
	}
}
