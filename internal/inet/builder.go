package inet

import (
	"fmt"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/netaddr"
)

// AddContentAS registers a content-provider (hypergiant) AS with its own
// onnet address space, drawn from the content pool. Hypergiant deployments
// are layered on top of the base world by the hypergiant package.
func (w *World) AddContentAS(name string, metros []geo.Metro, n24 int) (ASN, error) {
	as := ASN(asnContentBase + len(w.contentASNs()))
	if _, exists := w.ISPs[as]; exists {
		return 0, fmt.Errorf("inet: ASN %d already exists", as)
	}
	isp := w.isps.Get()
	*isp = ISP{
		ASN:     as,
		Name:    name,
		Country: "US",
		Tier:    TierContent,
		Metros:  metros,
	}
	w.allocPrefixes(isp, n24, w.contentPool)
	if len(isp.Prefixes) == 0 {
		return 0, fmt.Errorf("inet: content pool exhausted for %s", name)
	}
	w.ISPs[as] = isp
	// Re-sort the announcement index so OwnerOf sees the new space; content
	// prefixes sort below ISP space, so this cannot be a plain append.
	w.finalize()
	return as, nil
}

// contentASNs returns the registered content ASes in ascending order.
func (w *World) contentASNs() []ASN {
	var out []ASN
	for _, isp := range w.ISPList() {
		if isp.Tier == TierContent {
			out = append(out, isp.ASN)
		}
	}
	return out
}

// ContentASes returns the registered content-provider ASes.
func (w *World) ContentASes() []*ISP {
	var out []*ISP
	for _, isp := range w.ISPList() {
		if isp.Tier == TierContent {
			out = append(out, isp)
		}
	}
	return out
}

// AllocHostIn carves the next unused host address out of the ISP's announced
// space. Offnet servers live at such addresses: "If an IP address of an ISP
// other than a hypergiant hosts a certificate of the hypergiant, then the IP
// address corresponds to an offnet server of the hypergiant, hosted in the
// ISP."
func (w *World) AllocHostIn(as ASN) (netaddr.Addr, error) {
	isp, ok := w.ISPs[as]
	if !ok {
		return 0, fmt.Errorf("inet: unknown AS %d", as)
	}
	next := w.hostNext[as]
	var cum uint64
	for _, p := range isp.Prefixes {
		n := p.NumAddrs()
		if next < cum+n {
			off := next - cum
			w.hostNext[as] = next + 1
			return p.First() + netaddr.Addr(off), nil
		}
		cum += n
	}
	return 0, fmt.Errorf("inet: AS %d address space exhausted (%d hosts used)", as, next)
}

// JoinIXP adds the AS to the exchange, assigning a fabric address. It is
// exposed for the hypergiant layer, which joins exchanges where it peers.
func (w *World) JoinIXP(as ASN, id IXPID) error {
	isp, ok := w.ISPs[as]
	if !ok {
		return fmt.Errorf("inet: unknown AS %d", as)
	}
	x, ok := w.IXPs[id]
	if !ok {
		return fmt.Errorf("inet: unknown IXP %d", id)
	}
	w.joinIXP(isp, x)
	if _, member := x.MemberAddr[as]; !member {
		return fmt.Errorf("inet: IXP %d fabric full", id)
	}
	return nil
}

// MemberOf reports whether the AS is a member of the IXP.
func (w *World) MemberOf(as ASN, id IXPID) bool {
	x, ok := w.IXPs[id]
	if !ok {
		return false
	}
	_, member := x.MemberAddr[as]
	return member
}

// SharedIXPs returns the exchanges where both ASes are members, in ID order.
func (w *World) SharedIXPs(a, b ASN) []IXPID {
	var out []IXPID
	for _, x := range w.IXPList() {
		if _, ok := x.MemberAddr[a]; !ok {
			continue
		}
		if _, ok := x.MemberAddr[b]; !ok {
			continue
		}
		out = append(out, x.ID)
	}
	return out
}

// FacilitiesOf returns the ISP's facilities ordered by ID.
func (w *World) FacilitiesOf(as ASN) []*Facility {
	isp, ok := w.ISPs[as]
	if !ok {
		return nil
	}
	out := make([]*Facility, 0, len(isp.Facilities))
	for _, id := range isp.Facilities {
		if f, ok := w.Facilities[id]; ok {
			out = append(out, f)
		}
	}
	return out
}

// DownstreamUsers sums the user populations of the AS's direct customers —
// the population a transit-hosted offnet can serve ("offnets ... can also
// serve users downstream from a transit provider").
func (w *World) DownstreamUsers(as ASN) float64 {
	// Sum in ascending-ASN order: float accumulation over the ISPs map's
	// iteration order differs in the last ulp from build to build, which is
	// enough to break byte-identical replay digests downstream.
	var total float64
	for _, isp := range w.ISPList() {
		for _, prov := range isp.Providers {
			if prov == as {
				total += isp.Users
				break
			}
		}
	}
	return total
}
