package scan

import "offnetrisk/internal/scenario"

// ConfigFromScenario builds the scan configuration a resolved spec's
// measurement section declares. With the default scenario it equals
// DefaultConfig(seed).
func ConfigFromScenario(sp *scenario.Spec, seed int64) Config {
	return Config{
		Seed:             seed,
		BackgroundPerISP: sp.Measurement.ScanBackgroundPerISP,
		OnnetPerHG:       sp.Measurement.ScanOnnetPerHG,
	}
}
