package scan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"offnetrisk/internal/cert"
	"offnetrisk/internal/netaddr"
)

// recordJSON is the interchange form of a scan record: one JSON object per
// line, the shape scan datasets (Censys, zgrab output) are exchanged in.
type recordJSON struct {
	IP string `json:"ip"`
	// TLS certificate fields as the scanner observed them.
	SubjectOrg string   `json:"subject_org,omitempty"`
	SubjectCN  string   `json:"subject_cn,omitempty"`
	DNSNames   []string `json:"dns_names,omitempty"`
	Issuer     string   `json:"issuer,omitempty"`
}

// WriteNDJSON streams records to w as newline-delimited JSON, one scan
// observation per line.
func WriteNDJSON(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range records {
		if err := enc.Encode(recordJSON{
			IP:         r.Addr.String(),
			SubjectOrg: r.Cert.SubjectOrg,
			SubjectCN:  r.Cert.SubjectCN,
			DNSNames:   r.Cert.DNSNames,
			Issuer:     r.Cert.Issuer,
		}); err != nil {
			return fmt.Errorf("scan: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses newline-delimited scan records. Blank lines are
// skipped; a malformed line aborts with its line number, since silently
// dropping scan data would bias the inference downstream.
func ReadNDJSON(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec recordJSON
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("scan: line %d: %w", line, err)
		}
		addr, err := netaddr.ParseAddr(rec.IP)
		if err != nil {
			return nil, fmt.Errorf("scan: line %d: %w", line, err)
		}
		out = append(out, Record{
			Addr: addr,
			Cert: cert.Certificate{
				SubjectOrg: rec.SubjectOrg,
				SubjectCN:  rec.SubjectCN,
				DNSNames:   rec.DNSNames,
				Issuer:     rec.Issuer,
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan: read: %w", err)
	}
	return out, nil
}
