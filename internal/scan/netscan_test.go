package scan

import (
	"context"
	"strings"
	"testing"
	"time"

	"offnetrisk/internal/cert"
)

func TestNetScannerLive(t *testing.T) {
	// Spin up live TLS listeners presenting hypergiant-style certificates
	// and verify the scanner recovers the fields the methodology needs.
	certs := []cert.Certificate{
		{SubjectOrg: "Netflix, Inc.", SubjectCN: "*.nflxvideo.net",
			DNSNames: []string{"ipv4-c001-lhr1-isp.1.oca.nflxvideo.net"}},
		{SubjectCN: "*.googlevideo.com", DNSNames: []string{"r1---sn-lhr1.googlevideo.com"}},
		{SubjectOrg: "Meta Platforms, Inc.", SubjectCN: "*.fhan14-4.fna.fbcdn.net",
			DNSNames: []string{"*.fhan14-4.fna.fbcdn.net"}},
	}
	var targets []string
	for _, c := range certs {
		addr, stop, err := ServeTLS("127.0.0.1:0", c)
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		targets = append(targets, addr)
	}

	s := &NetScanner{Timeout: 5 * time.Second, Concurrency: 4}
	recs := s.Scan(context.Background(), targets)
	if len(recs) != len(targets) {
		t.Fatalf("got %d records, want %d", len(recs), len(targets))
	}
	for i, r := range recs {
		if r.Err != nil {
			t.Fatalf("target %s: %v", r.Target, r.Err)
		}
		if r.Cert.SubjectCN != certs[i].SubjectCN {
			t.Errorf("target %d: CN = %q, want %q", i, r.Cert.SubjectCN, certs[i].SubjectCN)
		}
		if r.Cert.SubjectOrg != certs[i].SubjectOrg {
			t.Errorf("target %d: Org = %q, want %q", i, r.Cert.SubjectOrg, certs[i].SubjectOrg)
		}
		if len(r.Cert.DNSNames) != len(certs[i].DNSNames) {
			t.Errorf("target %d: SANs = %v, want %v", i, r.Cert.DNSNames, certs[i].DNSNames)
		}
	}

	// The Google record must be identifiable by the 2023 pattern even
	// though its Organization entry is absent.
	if recs[1].Cert.SubjectOrg != "" {
		t.Error("Google-style cert should have empty Org")
	}
	if !recs[1].Cert.AnyNameMatches([]string{"*.googlevideo.com"}) {
		t.Error("Google-style live cert must match *.googlevideo.com")
	}
	if !recs[2].Cert.AnyNameMatches([]string{"*.fbcdn.net"}) {
		t.Error("Meta-style live cert must match *.fbcdn.net")
	}
}

func TestNetScannerDeadHost(t *testing.T) {
	s := &NetScanner{Timeout: 500 * time.Millisecond}
	// Reserved TEST-NET-1 address: must fail fast, not hang the scan.
	recs := s.Scan(context.Background(), []string{"127.0.0.1:1"})
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Err == nil {
		t.Error("dead host should produce an error record")
	}
}

func TestNetScannerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &NetScanner{Timeout: time.Second}
	recs := s.Scan(ctx, []string{"127.0.0.1:1", "127.0.0.1:2"})
	for _, r := range recs {
		if r.Err == nil {
			t.Error("cancelled scan should error per target")
		}
	}
}

func TestServeTLSStop(t *testing.T) {
	addr, stop, err := ServeTLS("127.0.0.1:0", cert.Certificate{SubjectCN: "x.example"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Errorf("bound addr = %q", addr)
	}
	stop()
	// After stop the port must refuse new scans.
	s := &NetScanner{Timeout: 500 * time.Millisecond}
	recs := s.Scan(context.Background(), []string{addr})
	if recs[0].Err == nil {
		t.Error("scan after shutdown should fail")
	}
}
