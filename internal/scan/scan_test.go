package scan

import (
	"testing"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/rngutil"
)

func simTiny(t *testing.T, seed int64) (*hypergiant.Deployment, []Record) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Simulate(d, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d, recs
}

func TestSimulateCoversAllOffnets(t *testing.T) {
	d, recs := simTiny(t, 1)
	byAddr := make(map[string]Record, len(recs))
	for _, r := range recs {
		byAddr[r.Addr.String()] = r
	}
	for _, s := range d.Servers {
		r, ok := byAddr[s.Addr.String()]
		if !ok {
			t.Fatalf("offnet %s missing from scan", s.Addr)
		}
		if r.Cert.Fingerprint() != s.Cert.Fingerprint() {
			t.Fatalf("offnet %s certificate mismatch", s.Addr)
		}
	}
}

func TestSimulateSortedAndUnique(t *testing.T) {
	_, recs := simTiny(t, 2)
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Addr > recs[i].Addr {
			t.Fatal("records not sorted by address")
		}
		if recs[i-1].Addr == recs[i].Addr {
			t.Fatalf("duplicate scan address %s", recs[i].Addr)
		}
	}
}

func TestSimulateIncludesOnnetAndBackground(t *testing.T) {
	d, recs := simTiny(t, 3)
	w := d.World
	offnetAddrs := make(map[string]bool)
	for _, s := range d.Servers {
		offnetAddrs[s.Addr.String()] = true
	}
	var onnet, background int
	for _, r := range recs {
		if offnetAddrs[r.Addr.String()] {
			continue
		}
		as, ok := w.OwnerOf(r.Addr)
		if !ok {
			t.Fatalf("scan record %s not in routed space", r.Addr)
		}
		if w.ISPs[as].Tier == inet.TierContent {
			onnet++
		} else {
			background++
		}
	}
	if onnet == 0 {
		t.Error("no onnet records")
	}
	if background == 0 {
		t.Error("no background records")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	_, a := simTiny(t, 4)
	_, b := simTiny(t, 4)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || a[i].Cert.Fingerprint() != b[i].Cert.Fingerprint() {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestPoisson(t *testing.T) {
	r := rngutil.New(1)
	if got := poisson(r, 0); got != 0 {
		t.Errorf("poisson(0) = %d", got)
	}
	if got := poisson(r, -1); got != 0 {
		t.Errorf("poisson(-1) = %d", got)
	}
	var sum int
	const n = 5000
	for i := 0; i < n; i++ {
		sum += poisson(r, 3.0)
	}
	mean := float64(sum) / n
	if mean < 2.7 || mean > 3.3 {
		t.Errorf("poisson mean = %v, want ≈3", mean)
	}
}
