package scan

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"

	"offnetrisk/internal/cert"
)

// NetScanner performs real TLS banner grabs: it dials each target, completes
// a TLS handshake without verification (scanners record whatever leaf the
// server presents, exactly as Censys does), and extracts the certificate
// fields the methodology reads. It exists so the inference pipeline can be
// exercised end-to-end over actual sockets in integration tests.
type NetScanner struct {
	// Dialer is used for TCP connections; zero value works.
	Dialer net.Dialer
	// Timeout bounds each handshake; default 5s.
	Timeout time.Duration
	// Concurrency bounds parallel handshakes; default 16.
	Concurrency int
}

// NetRecord is one live-scan observation.
type NetRecord struct {
	Target string
	Cert   cert.Certificate
	Err    error
}

// Scan grabs TLS banners from every target ("host:port") and returns one
// record per target, in input order. Individual failures are recorded, not
// fatal — a scan of the Internet never stops for one dead host.
func (s *NetScanner) Scan(ctx context.Context, targets []string) []NetRecord {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conc := s.Concurrency
	if conc <= 0 {
		conc = 16
	}
	out := make([]NetRecord, len(targets))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := s.grab(ctx, target, timeout)
			out[i] = NetRecord{Target: target, Cert: c, Err: err}
		}(i, t)
	}
	wg.Wait()
	return out
}

func (s *NetScanner) grab(ctx context.Context, target string, timeout time.Duration) (cert.Certificate, error) {
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	conn, err := s.Dialer.DialContext(dctx, "tcp", target)
	if err != nil {
		return cert.Certificate{}, fmt.Errorf("scan: dial %s: %w", target, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return cert.Certificate{}, fmt.Errorf("scan: deadline %s: %w", target, err)
	}
	tc := tls.Client(conn, &tls.Config{InsecureSkipVerify: true})
	if err := tc.HandshakeContext(dctx); err != nil {
		return cert.Certificate{}, fmt.Errorf("scan: handshake %s: %w", target, err)
	}
	defer tc.Close()
	state := tc.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		return cert.Certificate{}, fmt.Errorf("scan: %s presented no certificate", target)
	}
	leaf := state.PeerCertificates[0]
	return FromX509(leaf), nil
}

// FromX509 converts an X.509 leaf into the record shape the methodology
// consumes.
func FromX509(leaf *x509.Certificate) cert.Certificate {
	var org string
	if len(leaf.Subject.Organization) > 0 {
		org = leaf.Subject.Organization[0]
	}
	var issuer string
	if len(leaf.Issuer.Organization) > 0 {
		issuer = leaf.Issuer.Organization[0]
	} else {
		issuer = leaf.Issuer.CommonName
	}
	return cert.Certificate{
		SubjectOrg: org,
		SubjectCN:  leaf.Subject.CommonName,
		DNSNames:   append([]string(nil), leaf.DNSNames...),
		Issuer:     issuer,
	}
}

// ServeTLS starts a TLS listener on addr (use "127.0.0.1:0" in tests)
// presenting a freshly self-signed certificate with the given record's
// fields. It returns the bound address and a shutdown func. Connections are
// accepted, handshaken, and closed — all a banner scan needs.
func ServeTLS(addr string, c cert.Certificate) (string, func(), error) {
	tlsCert, err := selfSign(c)
	if err != nil {
		return "", nil, err
	}
	ln, err := tls.Listen("tcp", addr, &tls.Config{Certificates: []tls.Certificate{tlsCert}})
	if err != nil {
		return "", nil, fmt.Errorf("scan: listen %s: %w", addr, err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if tc, ok := conn.(*tls.Conn); ok {
					_ = tc.Handshake()
				}
			}(conn)
		}
	}()
	stop := func() {
		close(done)
		ln.Close()
	}
	return ln.Addr().String(), stop, nil
}

// selfSign builds a throwaway self-signed X.509 certificate carrying the
// record's Subject and SANs.
func selfSign(c cert.Certificate) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("scan: keygen: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject: pkix.Name{
			CommonName: c.SubjectCN,
		},
		Issuer: pkix.Name{
			Organization: []string{c.Issuer},
		},
		DNSNames:  c.DNSNames,
		NotBefore: time.Now().Add(-time.Hour),
		NotAfter:  time.Now().Add(24 * time.Hour),
		KeyUsage:  x509.KeyUsageDigitalSignature,
	}
	if c.SubjectOrg != "" {
		tmpl.Subject.Organization = []string{c.SubjectOrg}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("scan: self-sign: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}
