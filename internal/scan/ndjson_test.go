package scan

import (
	"bytes"
	"strings"
	"testing"
)

func TestNDJSONRoundTrip(t *testing.T) {
	_, records := simTiny(t, 1)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(records))
	}
	for i := range records {
		if back[i].Addr != records[i].Addr {
			t.Fatalf("record %d address differs", i)
		}
		if back[i].Cert.Fingerprint() != records[i].Cert.Fingerprint() {
			t.Fatalf("record %d certificate differs", i)
		}
	}
}

func TestReadNDJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json": `{"ip": "1.2.3.4"` + "\n",
		"bad ip":   `{"ip": "999.1.1.1"}` + "\n",
		"no ip":    `{"subject_cn": "x"}` + "\n",
	}
	for name, input := range cases {
		if _, err := ReadNDJSON(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Blank lines are tolerated.
	good := `{"ip":"1.2.3.4","subject_cn":"*.nflxvideo.net"}` + "\n\n" +
		`{"ip":"1.2.3.5"}` + "\n"
	recs, err := ReadNDJSON(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Cert.SubjectCN != "*.nflxvideo.net" {
		t.Fatalf("parsed %d records: %+v", len(recs), recs)
	}
}
