// Package scan produces Censys-style TLS scan records over the synthetic
// Internet: one record per host listening on TCP/443, carrying the
// certificate fields the offnet methodology inspects. It also contains a
// real-socket scanner (netscan.go) used in integration tests to exercise the
// same pipeline against live TLS listeners.
package scan

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"offnetrisk/internal/cert"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
)

var mRecordsSimulated = obs.NewCounter("scan.records_simulated",
	"TLS scan records produced over the synthetic Internet")

// Record is one scan observation: an address presenting a certificate on
// port 443.
type Record struct {
	Addr netaddr.Addr
	Cert cert.Certificate
}

// Config controls the synthetic scan.
type Config struct {
	// Seed drives the background-host draw.
	Seed int64
	// BackgroundPerISP is the expected number of unrelated TLS hosts per
	// access ISP (enterprise servers, local CDNs, decoys). These exercise
	// the methodology's false-positive resistance.
	BackgroundPerISP float64
	// OnnetPerHG is the number of onnet (hypergiant-operated, in the
	// hypergiant's own AS) servers per hypergiant. The methodology must not
	// count these as offnets.
	OnnetPerHG int
}

// DefaultConfig returns the scan configuration used by experiments.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, BackgroundPerISP: 2.5, OnnetPerHG: 20}
}

// Simulate scans the deployed world: every offnet server, every hypergiant
// onnet server, and a population of background TLS hosts. Records are
// returned in ascending address order, as an Internet-wide scan would
// enumerate them.
func Simulate(d *hypergiant.Deployment, cfg Config) ([]Record, error) {
	r := rngutil.New(cfg.Seed ^ 0x5caff01d)
	w := d.World
	var out []Record

	// Offnet servers: the scan sees every listener regardless of whether it
	// answers pings later.
	for _, s := range d.Servers {
		out = append(out, Record{Addr: s.Addr, Cert: s.Cert})
	}

	// Onnet servers inside each hypergiant's own AS.
	profiles := hypergiant.Profiles()
	for hg, as := range d.ContentAS {
		prof := profiles[hg]
		for i := 0; i < cfg.OnnetPerHG; i++ {
			addr, err := w.AllocHostIn(as)
			if err != nil {
				return nil, fmt.Errorf("scan: onnet alloc for %s: %w", hg, err)
			}
			domain := prof.OnnetDomains[i%len(prof.OnnetDomains)]
			out = append(out, Record{Addr: addr, Cert: cert.Certificate{
				SubjectOrg: prof.OnnetOrg,
				SubjectCN:  domain,
				DNSNames:   []string{domain},
				Issuer:     "DigiCert Inc",
			}})
		}
	}

	// Background hosts: unrelated TLS services in access ISPs, including
	// deliberately confusable certificates the methodology must reject.
	for _, isp := range w.AccessISPs() {
		n := poisson(r, cfg.BackgroundPerISP)
		for i := 0; i < n; i++ {
			addr, err := w.AllocHostIn(isp.ASN)
			if err != nil {
				break // ISP space exhausted; scan the rest
			}
			out = append(out, Record{Addr: addr, Cert: backgroundCert(r, isp, i)})
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	mRecordsSimulated.Add(int64(len(out)))
	return out, nil
}

// backgroundCert fabricates a non-hypergiant certificate. A slice of them are
// decoys: names or organizations that look hypergiant-adjacent but must not
// match the methodology's rules.
func backgroundCert(r *rand.Rand, isp *inet.ISP, i int) cert.Certificate {
	switch r.Intn(8) {
	case 0:
		// Decoy: bare suffix — "*.fbcdn.net" patterns must not match it.
		return cert.Certificate{
			SubjectOrg: "Example CDN Resellers",
			SubjectCN:  "fbcdn.net",
			Issuer:     "Let's Encrypt",
		}
	case 1:
		// Decoy: lookalike organization.
		return cert.Certificate{
			SubjectOrg: "Googlevideo Fanclub e.V.",
			SubjectCN:  fmt.Sprintf("cache%d.%s.example.net", i, isp.Country),
			Issuer:     "Let's Encrypt",
		}
	case 2:
		// Decoy: hypergiant-like label embedded mid-name.
		return cert.Certificate{
			SubjectOrg: "Hosting GmbH",
			SubjectCN:  fmt.Sprintf("googlevideo.com.cdn%d.example.org", i),
			Issuer:     "Let's Encrypt",
		}
	default:
		return cert.Certificate{
			SubjectOrg: fmt.Sprintf("%s Web Services %d", isp.Name, i),
			SubjectCN:  fmt.Sprintf("www%d.as%d.example.com", i, isp.ASN),
			Issuer:     "Let's Encrypt",
		}
	}
}

// poisson draws a Poisson variate via inversion; fine for small means.
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
