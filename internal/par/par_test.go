package par

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
)

// TestMapOrderStability: results land in input order no matter how workers
// interleave. Tasks sleep in a scheduling-hostile pattern (later indices
// finish first) to shake out any completion-order dependence.
func TestMapOrderStability(t *testing.T) {
	const n = 64
	got, err := Map(context.Background(), n, Options{Workers: 8}, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapWorkerEquivalence: workers=1 and workers=N produce identical
// results when tasks derive their randomness per index — the determinism
// contract the pipeline relies on.
func TestMapWorkerEquivalence(t *testing.T) {
	const n = 50
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), n, Options{Workers: workers}, func(_ context.Context, i int) (float64, error) {
			r := rngutil.New(rngutil.Derive(99, int64(i)))
			return r.Float64() + float64(r.Intn(10)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), n + 3} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from workers=1:\n%v\n%v", w, got, serial)
		}
	}
}

// TestMapCancellationMidFlight: cancelling the parent context stops the
// pool before it drains the input and surfaces the context error.
func TestMapCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 1000
	_, err := Map(ctx, n, Options{Workers: 4}, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 8 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= n {
		t.Fatalf("all %d tasks ran despite mid-flight cancellation", n)
	}
}

// TestMapPreCancelled: a context cancelled before the call runs no tasks.
func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := Map(ctx, 10, Options{}, func(context.Context, int) (int, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("task ran under a pre-cancelled context")
	}
}

// TestMapPanicCapture: a panicking task becomes an error naming the task
// and carrying the panic value, instead of crashing the process.
func TestMapPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 20, Options{Workers: workers}, func(_ context.Context, i int) (int, error) {
			if i == 7 {
				panic("boom at seven")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not converted to error", workers)
		}
		if !strings.Contains(err.Error(), "task 7") || !strings.Contains(err.Error(), "boom at seven") {
			t.Fatalf("workers=%d: error %q does not identify the panic", workers, err)
		}
	}
}

// TestMapFirstErrorDeterministic: when several tasks fail, the
// lowest-index error wins regardless of worker interleaving.
func TestMapFirstErrorDeterministic(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		_, err := Map(context.Background(), 40, Options{Workers: 8}, func(_ context.Context, i int) (int, error) {
			if i%3 == 1 { // tasks 1, 4, 7, ... fail
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		// Task 1 is the lowest failing index; workers may or may not have
		// reached later failing indices, but the reported error must be
		// the smallest index among those that did fail.
		if !strings.Contains(err.Error(), "task 1 ") && !strings.HasSuffix(err.Error(), "task 1 failed") {
			t.Fatalf("trial %d: got %q, want the lowest-index failure (task 1)", trial, err)
		}
	}
}

// TestMapErrorStopsClaiming: after a failure the pool cancels outstanding
// work instead of draining the whole input.
func TestMapErrorStopsClaiming(t *testing.T) {
	var ran atomic.Int64
	const n = 10000
	_, err := Map(context.Background(), n, Options{Workers: 4}, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(50 * time.Microsecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d tasks ran despite an early failure", n)
	}
}

// TestMapEmpty: n <= 0 returns no results and no error.
func TestMapEmpty(t *testing.T) {
	for _, n := range []int{0, -3} {
		got, err := Map(context.Background(), n, Options{}, func(context.Context, int) (int, error) {
			t.Fatal("task ran for empty input")
			return 0, nil
		})
		if err != nil || got != nil {
			t.Fatalf("n=%d: got (%v, %v), want (nil, nil)", n, got, err)
		}
	}
}

// TestMapWorkerSpans: with a span in the context and a Name set, each
// worker records a child span and the per-worker task counts cover the
// whole input exactly once.
func TestMapWorkerSpans(t *testing.T) {
	tr := obs.NewTracer()
	root := tr.Start("fanout")
	ctx := obs.ContextWithSpan(context.Background(), root)
	const n, workers = 30, 3
	if _, err := Map(ctx, n, Options{Workers: workers, Name: "stage"}, func(ctx context.Context, i int) (int, error) {
		if obs.SpanFromContext(ctx) == nil {
			t.Error("task context lost its worker span")
		}
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	snap := tr.Snapshot(time.Time{})
	if len(snap) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap))
	}
	children := snap[0].Children
	if len(children) != workers {
		t.Fatalf("want %d worker spans, got %d", workers, len(children))
	}
	total := 0
	for _, c := range children {
		if !strings.HasPrefix(c.Name, "stage/worker-") {
			t.Fatalf("unexpected worker span name %q", c.Name)
		}
		if !c.Ended {
			t.Fatalf("worker span %q never ended", c.Name)
		}
		tasks, ok := c.Attrs["tasks"].(int)
		if !ok {
			t.Fatalf("worker span %q missing tasks attr", c.Name)
		}
		total += tasks
	}
	if total != n {
		t.Fatalf("worker task counts sum to %d, want %d", total, n)
	}
}

// TestForEach: the side-effect variant visits every index exactly once.
func TestForEach(t *testing.T) {
	const n = 100
	seen := make([]atomic.Int64, n)
	if err := ForEach(context.Background(), n, Options{Workers: 7}, func(_ context.Context, i int) error {
		seen[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

// TestWorkers: the knob normalizer.
func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestMapLocalStatePerWorker: every worker gets its own state (never shared
// across goroutines), each state is created exactly once per worker, and the
// merged results are still in input order.
func TestMapLocalStatePerWorker(t *testing.T) {
	const n = 200
	type scratch struct {
		buf   []int
		tasks int
	}
	var created atomic.Int64
	results, err := MapLocal(context.Background(), n, Options{Workers: 5},
		func() *scratch { created.Add(1); return &scratch{buf: make([]int, 0, 8)} },
		func(_ context.Context, i int, sc *scratch) (int, error) {
			// Scratch usage pattern: fully overwrite before use.
			sc.buf = append(sc.buf[:0], i, i)
			sc.tasks++
			return sc.buf[0] + sc.buf[1], nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != 2*i {
			t.Fatalf("results[%d] = %d, want %d", i, r, 2*i)
		}
	}
	if c := created.Load(); c < 1 || c > 5 {
		t.Fatalf("newState ran %d times, want 1..5 (once per worker)", c)
	}
}

// TestForEachLocal: the side-effect variant threads state the same way.
func TestForEachLocal(t *testing.T) {
	const n = 64
	seen := make([]atomic.Int64, n)
	err := ForEachLocal(context.Background(), n, Options{Workers: 3},
		func() []int { return make([]int, 1) },
		func(_ context.Context, i int, sc []int) error {
			sc[0] = i
			seen[sc[0]].Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

// TestMapBusyIdleAccounting: every worker span carries the busy/idle/queue
// accounting the profile analyzer aggregates, the numbers are internally
// consistent (busy ≤ lane duration, idle ≥ 0), and the parent gains the
// "par:<Name>" efficiency summary.
func TestMapBusyIdleAccounting(t *testing.T) {
	tr := obs.NewTracer()
	root := tr.Start("fanout")
	ctx := obs.ContextWithSpan(context.Background(), root)
	const n, workers = 12, 3
	if _, err := Map(ctx, n, Options{Workers: workers, Name: "stage"}, func(ctx context.Context, i int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	snap := tr.Snapshot(time.Time{})
	var totalBusy float64
	var totalTasks int
	for _, ws := range snap[0].Children {
		busy, ok := ws.Attrs["busy_ms"].(float64)
		if !ok {
			t.Fatalf("worker span %q missing busy_ms: %v", ws.Name, ws.Attrs)
		}
		idle, ok := ws.Attrs["idle_ms"].(float64)
		if !ok || idle < 0 {
			t.Fatalf("worker span %q missing/negative idle_ms: %v", ws.Name, ws.Attrs)
		}
		if _, ok := ws.Attrs["queue_wait_ms"].(float64); !ok {
			t.Fatalf("worker span %q missing queue_wait_ms: %v", ws.Name, ws.Attrs)
		}
		tasks := ws.Attrs["tasks"].(int)
		if tasks > 0 && busy <= 0 {
			t.Fatalf("worker span %q ran %d sleeping tasks with busy_ms=%g", ws.Name, tasks, busy)
		}
		if busy > ws.DurMS+1 { // +1ms slack for clock granularity
			t.Fatalf("worker span %q busy %gms exceeds its own duration %gms", ws.Name, busy, ws.DurMS)
		}
		totalBusy += busy
		totalTasks += tasks
	}
	if totalTasks != n {
		t.Fatalf("tasks sum to %d, want %d", totalTasks, n)
	}
	// n tasks × 2ms sleep is a hard floor on summed busy time.
	if totalBusy < float64(n)*2*0.9 {
		t.Fatalf("summed busy %.1fms below the %.0fms sleep floor", totalBusy, float64(n)*2.0)
	}

	summary, ok := snap[0].Attrs["par:stage"].(string)
	if !ok {
		t.Fatalf("parent span missing par:stage summary: %v", snap[0].Attrs)
	}
	for _, want := range []string{"workers=3", "tasks=12", "busy=", "wall=", "eff="} {
		if !strings.Contains(summary, want) {
			t.Fatalf("par:stage summary %q missing %q", summary, want)
		}
	}
}

// TestMapAccountingOffWhenUnnamed: without a Name (or without a parent span)
// no accounting runs — the uninstrumented hot path stays free of time.Now.
func TestMapAccountingOffWhenUnnamed(t *testing.T) {
	tr := obs.NewTracer()
	root := tr.Start("fanout")
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, err := Map(ctx, 4, Options{Workers: 2}, func(ctx context.Context, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := tr.Snapshot(time.Time{})
	if len(snap[0].Children) != 0 {
		t.Fatalf("unnamed region opened worker spans: %+v", snap[0].Children)
	}
	if _, ok := snap[0].Attrs["par:"]; ok {
		t.Fatal("unnamed region wrote a par: summary")
	}
}

// TestParMetricsDeterministic: par.tasks_total / par.regions_total advance by
// the task structure alone — identical at any worker count — which is what
// lets them live in manifests under the runsdiff drift gate.
func TestParMetricsDeterministic(t *testing.T) {
	delta := func(workers int) (int64, int64) {
		snap0 := obs.Default.Snapshot()
		t0, r0 := snap0["par.tasks_total"].Value, snap0["par.regions_total"].Value
		for rep := 0; rep < 3; rep++ {
			if _, err := Map(context.Background(), 17, Options{Workers: workers}, func(ctx context.Context, i int) (int, error) {
				return i, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		snap1 := obs.Default.Snapshot()
		return int64(snap1["par.tasks_total"].Value - t0), int64(snap1["par.regions_total"].Value - r0)
	}
	wantTasks, wantRegions := delta(1)
	if wantTasks != 3*17 || wantRegions != 3 {
		t.Fatalf("serial deltas = %d tasks, %d regions; want 51, 3", wantTasks, wantRegions)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if tasks, regions := delta(workers); tasks != wantTasks || regions != wantRegions {
			t.Fatalf("workers=%d deltas (%d, %d) != serial (%d, %d)",
				workers, tasks, regions, wantTasks, wantRegions)
		}
	}
}
