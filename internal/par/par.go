// Package par is the reproduction's deterministic fan-out substrate: a
// bounded worker pool whose results are collected index-addressed, so the
// output of a parallel loop is identical — byte for byte — to the serial
// loop it replaced, at any worker count.
//
// Determinism rests on two rules the callers follow (DESIGN.md §8):
//
//  1. Tasks never share mutable state; each task i writes only results[i].
//  2. Tasks never advance a shared RNG; any randomness comes from a
//     substream derived per task (rngutil.Derive) so consumption order
//     cannot depend on scheduling.
//
// Under those rules Map's merge order equals input order regardless of how
// the scheduler interleaves workers, and workers=1 reproduces the old
// serial behaviour exactly.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"offnetrisk/internal/obs"
)

// Deterministic fan-out metrics: totals are functions of the task structure
// alone (never of timing or worker count), so they land in run manifests and
// survive the runsdiff drift gate. Wall-clock accounting — per-worker busy
// and idle time — lives on spans only, where it is quarantined like every
// other duration.
var (
	mTasks = obs.NewCounter("par.tasks_total",
		"tasks executed across all parallel regions")
	mRegions = obs.NewCounter("par.regions_total",
		"parallel regions (Map/ForEach fan-outs) entered")
)

// Options tunes a fan-out. The zero value is valid: GOMAXPROCS workers, no
// span attribution.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Name labels per-worker spans ("<Name>/worker-<w>"); empty disables
	// span attribution even when the context carries a span.
	Name string
}

// Workers normalizes a worker-count knob: n when positive, otherwise
// GOMAXPROCS. Shared by everything exposing a Workers field.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// panicError carries a recovered task panic to the caller as an error.
type panicError struct {
	index int
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v\n%s", e.index, e.value, e.stack)
}

// Map runs fn(ctx, i) for every i in [0, n) across a bounded worker pool
// and returns the results in input order. The first failure (lowest task
// index, so the choice is deterministic even when several tasks fail
// concurrently) cancels the remaining tasks and is returned; a task panic
// is captured as an error rather than crashing the process. When the
// parent context is cancelled mid-flight, Map stops claiming tasks and
// returns the context's error.
//
// When opts.Name is set and ctx carries a span (obs.ContextWithSpan), each
// worker opens a "<Name>/worker-<w>" child span recording the tasks it ran,
// the time it spent inside tasks (busy_ms), the time it idled waiting for
// work or stragglers (idle_ms), and its startup delay (queue_wait_ms); the
// parent span gains a one-line "par:<Name>" summary with the region's
// parallel efficiency (Σ busy / (workers × region wall)). The context
// passed to fn carries the worker's span so task code can attach children
// of its own. Span attribution is observability-only — it never alters
// results.
func Map[R any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	return MapLocal(ctx, n, opts, func() struct{} { return struct{}{} },
		func(ctx context.Context, i int, _ struct{}) (R, error) { return fn(ctx, i) })
}

// MapLocal is Map with per-worker scratch state: newState runs once per
// worker goroutine and its value is handed to every task that worker claims.
// It exists so hot kernels can reuse buffers across tasks without a sync.Pool
// or per-task allocation.
//
// The determinism rules extend to state: it may hold only scratch whose
// contents are fully overwritten by each task before use — a task's result
// must never depend on which tasks previously ran on the same worker, and
// must not retain references into the state after returning.
func MapLocal[S, R any](ctx context.Context, n int, opts Options, newState func() S, fn func(ctx context.Context, i int, state S) (R, error)) ([]R, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	workers := Workers(opts.Workers)
	if workers > n {
		workers = n
	}

	results := make([]R, n)
	errs := make([]error, n)
	parent := obs.SpanFromContext(ctx)
	mRegions.Inc()

	// Busy/idle accounting runs only in the instrumented case: an
	// uninstrumented hot loop pays no time.Now calls.
	timed := opts.Name != "" && parent != nil
	var regionStart time.Time
	if timed {
		regionStart = time.Now()
	}
	var totalTasks, totalBusyNS atomic.Int64

	// Workers claim indices from an atomic cursor; each task writes only
	// its own slot, so the interleaving never matters. workers==1 runs the
	// same loop on the calling goroutine — the serial case is not special.
	pctx := ctx
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var failed atomic.Bool
	work := func(w int) {
		wctx := cctx
		var ws *obs.Span
		var queueWait time.Duration
		if timed {
			ws = parent.Child(fmt.Sprintf("%s/worker-%d", opts.Name, w))
			ws.SetAttr("worker", w)
			wctx = obs.ContextWithSpan(cctx, ws)
			// Startup delay: how long after the region opened this worker
			// got scheduled and reached the claim loop.
			queueWait = time.Since(regionStart)
		}
		state := newState()
		tasks := 0
		var busy time.Duration
		for {
			i := int(next.Add(1) - 1)
			if i >= n || cctx.Err() != nil {
				break
			}
			tasks++
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			err := runTask(wctx, i, state, fn, results)
			if timed {
				busy += time.Since(t0)
			}
			if err != nil {
				errs[i] = err
				failed.Store(true)
				cancel() // stop claiming; finished slots stay valid
				break
			}
		}
		totalTasks.Add(int64(tasks))
		if ws != nil {
			totalBusyNS.Add(int64(busy))
			idle := ws.Elapsed() - busy
			if idle < 0 {
				idle = 0
			}
			ws.SetAttr("tasks", tasks)
			ws.SetAttr("busy_ms", ms(busy))
			ws.SetAttr("idle_ms", ms(idle))
			ws.SetAttr("queue_wait_ms", ms(queueWait))
			ws.End()
		}
	}

	if workers == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				work(w)
			}(w)
		}
		wg.Wait()
	}

	mTasks.Add(totalTasks.Load())
	if timed {
		wall := time.Since(regionStart)
		eff := 0.0
		if wall > 0 {
			eff = float64(totalBusyNS.Load()) / (float64(wall) * float64(workers))
			if eff > 1 {
				eff = 1
			}
		}
		parent.SetAttr("par:"+opts.Name, fmt.Sprintf(
			"workers=%d tasks=%d busy=%.1fms wall=%.1fms eff=%.0f%%",
			workers, totalTasks.Load(), ms(time.Duration(totalBusyNS.Load())), ms(wall), 100*eff))
	}

	if failed.Load() {
		// Deterministic error selection: the lowest-index failure, however
		// the workers happened to interleave.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if err := pctx.Err(); err != nil {
		// Cancelled from outside mid-flight (we only cancel cctx ourselves
		// on task failure, which returned above).
		return nil, err
	}
	return results, nil
}

// ms renders a duration as float milliseconds for span attributes.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runTask executes one task with panic capture, writing its result slot.
func runTask[S, R any](ctx context.Context, i int, state S, fn func(ctx context.Context, i int, state S) (R, error), results []R) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{index: i, value: r, stack: debug.Stack()}
		}
	}()
	r, err := fn(ctx, i, state)
	if err != nil {
		return err
	}
	results[i] = r
	return nil
}

// ForEach is Map for side-effect-only tasks (each task must still write
// only state owned by its index).
func ForEach(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, opts, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// ForEachLocal is ForEach with per-worker scratch state (see MapLocal).
func ForEachLocal[S any](ctx context.Context, n int, opts Options, newState func() S, fn func(ctx context.Context, i int, state S) error) error {
	_, err := MapLocal(ctx, n, opts, newState, func(ctx context.Context, i int, state S) (struct{}, error) {
		return struct{}{}, fn(ctx, i, state)
	})
	return err
}
