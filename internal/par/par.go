// Package par is the reproduction's deterministic fan-out substrate: a
// bounded worker pool whose results are collected index-addressed, so the
// output of a parallel loop is identical — byte for byte — to the serial
// loop it replaced, at any worker count.
//
// Determinism rests on two rules the callers follow (DESIGN.md §8):
//
//  1. Tasks never share mutable state; each task i writes only results[i].
//  2. Tasks never advance a shared RNG; any randomness comes from a
//     substream derived per task (rngutil.Derive) so consumption order
//     cannot depend on scheduling.
//
// Under those rules Map's merge order equals input order regardless of how
// the scheduler interleaves workers, and workers=1 reproduces the old
// serial behaviour exactly.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"offnetrisk/internal/obs"
)

// Options tunes a fan-out. The zero value is valid: GOMAXPROCS workers, no
// span attribution.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Name labels per-worker spans ("<Name>/worker-<w>"); empty disables
	// span attribution even when the context carries a span.
	Name string
}

// Workers normalizes a worker-count knob: n when positive, otherwise
// GOMAXPROCS. Shared by everything exposing a Workers field.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// panicError carries a recovered task panic to the caller as an error.
type panicError struct {
	index int
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v\n%s", e.index, e.value, e.stack)
}

// Map runs fn(ctx, i) for every i in [0, n) across a bounded worker pool
// and returns the results in input order. The first failure (lowest task
// index, so the choice is deterministic even when several tasks fail
// concurrently) cancels the remaining tasks and is returned; a task panic
// is captured as an error rather than crashing the process. When the
// parent context is cancelled mid-flight, Map stops claiming tasks and
// returns the context's error.
//
// When opts.Name is set and ctx carries a span (obs.ContextWithSpan), each
// worker opens a "<Name>/worker-<w>" child span counting the tasks it ran;
// the context passed to fn carries the worker's span so task code can
// attach children of its own. Span attribution is observability-only — it
// never alters results.
func Map[R any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	return MapLocal(ctx, n, opts, func() struct{} { return struct{}{} },
		func(ctx context.Context, i int, _ struct{}) (R, error) { return fn(ctx, i) })
}

// MapLocal is Map with per-worker scratch state: newState runs once per
// worker goroutine and its value is handed to every task that worker claims.
// It exists so hot kernels can reuse buffers across tasks without a sync.Pool
// or per-task allocation.
//
// The determinism rules extend to state: it may hold only scratch whose
// contents are fully overwritten by each task before use — a task's result
// must never depend on which tasks previously ran on the same worker, and
// must not retain references into the state after returning.
func MapLocal[S, R any](ctx context.Context, n int, opts Options, newState func() S, fn func(ctx context.Context, i int, state S) (R, error)) ([]R, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	workers := Workers(opts.Workers)
	if workers > n {
		workers = n
	}

	results := make([]R, n)
	errs := make([]error, n)
	parent := obs.SpanFromContext(ctx)

	// Workers claim indices from an atomic cursor; each task writes only
	// its own slot, so the interleaving never matters. workers==1 runs the
	// same loop on the calling goroutine — the serial case is not special.
	pctx := ctx
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var failed atomic.Bool
	work := func(w int) {
		wctx := cctx
		var ws *obs.Span
		if opts.Name != "" && parent != nil {
			ws = parent.Child(fmt.Sprintf("%s/worker-%d", opts.Name, w))
			ws.SetAttr("worker", w)
			wctx = obs.ContextWithSpan(cctx, ws)
		}
		state := newState()
		tasks := 0
		for {
			i := int(next.Add(1) - 1)
			if i >= n || cctx.Err() != nil {
				break
			}
			tasks++
			if err := runTask(wctx, i, state, fn, results); err != nil {
				errs[i] = err
				failed.Store(true)
				cancel() // stop claiming; finished slots stay valid
				break
			}
		}
		if ws != nil {
			ws.SetAttr("tasks", tasks)
			ws.End()
		}
	}

	if workers == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				work(w)
			}(w)
		}
		wg.Wait()
	}

	if failed.Load() {
		// Deterministic error selection: the lowest-index failure, however
		// the workers happened to interleave.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if err := pctx.Err(); err != nil {
		// Cancelled from outside mid-flight (we only cancel cctx ourselves
		// on task failure, which returned above).
		return nil, err
	}
	return results, nil
}

// runTask executes one task with panic capture, writing its result slot.
func runTask[S, R any](ctx context.Context, i int, state S, fn func(ctx context.Context, i int, state S) (R, error), results []R) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{index: i, value: r, stack: debug.Stack()}
		}
	}()
	r, err := fn(ctx, i, state)
	if err != nil {
		return err
	}
	results[i] = r
	return nil
}

// ForEach is Map for side-effect-only tasks (each task must still write
// only state owned by its index).
func ForEach(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, opts, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// ForEachLocal is ForEach with per-worker scratch state (see MapLocal).
func ForEachLocal[S any](ctx context.Context, n int, opts Options, newState func() S, fn func(ctx context.Context, i int, state S) error) error {
	_, err := MapLocal(ctx, n, opts, newState, func(ctx context.Context, i int, state S) (struct{}, error) {
		return struct{}{}, fn(ctx, i, state)
	})
	return err
}
