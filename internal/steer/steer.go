// Package steer models how hypergiants direct clients to offnet servers and
// why measuring that mapping from outside broke (§3.2):
//
//	"With existing methodologies, it is impossible to know which users are
//	served from which offnets. An earlier technique provided such results
//	for Google in 2013, but it only works if the hypergiant uses DNS to
//	direct users to specific offnet locations for a given hostname ...
//	Google no longer does so, and instead Google, Netflix, and Meta
//	generally direct users to a particular offnet for cached content by
//	embedding customized URLs into web pages returned to users ... Akamai
//	does use DNS to direct users to offnets, but it only accepts EDNS
//	Client Subnet queries from allow-listed DNS resolvers."
//
// The package implements all three steering regimes, the authoritative DNS
// behaviour each implies, and the Calder-2013-style mapping experiment that
// demonstrates where the technique still works (2013-era DNS steering),
// degrades (ECS allowlisting), and fails outright (embedded URLs).
package steer

import (
	"fmt"
	"sort"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/traffic"
)

// Mode is a hypergiant's client-steering regime.
type Mode int

// Steering regimes.
const (
	// ModeDNS2013: the hostname of the service itself (www.google.com)
	// resolves, per client subnet, to the offnet serving that client — the
	// regime the 2013 mapping technique exploited.
	ModeDNS2013 Mode = iota
	// ModeECSAllowlist: DNS steering, but EDNS Client Subnet is honoured
	// only for allow-listed resolvers; everyone else is mapped by resolver
	// address (Akamai's regime).
	ModeECSAllowlist
	// ModeEmbeddedURL: the service hostname resolves to onnet/cloud front
	// ends for everybody; offnet selection happens by embedding per-session
	// URLs (e.g. fhan14-4.fna.fbcdn.net) in returned pages (the modern
	// Google/Netflix/Meta regime).
	ModeEmbeddedURL
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDNS2013:
		return "dns-2013"
	case ModeECSAllowlist:
		return "ecs-allowlist"
	case ModeEmbeddedURL:
		return "embedded-url"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Modes2013 is the steering world of the early-2010s measurements: DNS
// steering everywhere.
func Modes2013() map[traffic.HG]Mode {
	return map[traffic.HG]Mode{
		traffic.Google:  ModeDNS2013,
		traffic.Netflix: ModeDNS2013,
		traffic.Meta:    ModeDNS2013,
		traffic.Akamai:  ModeECSAllowlist,
	}
}

// Modes2023 is today's regime per §3.2.
func Modes2023() map[traffic.HG]Mode {
	return map[traffic.HG]Mode{
		traffic.Google:  ModeEmbeddedURL,
		traffic.Netflix: ModeEmbeddedURL,
		traffic.Meta:    ModeEmbeddedURL,
		traffic.Akamai:  ModeECSAllowlist,
	}
}

// Directory is the ground-truth client→server mapping a hypergiant's
// steering system maintains: for each client /24, the offnet (or onnet
// fallback) that serves it. It is built from the BGP feeds ISPs give
// hypergiants ("The ISP provides the hypergiant with a BGP feed of IP
// prefixes it is willing to serve from the offnet").
type Directory struct {
	hg traffic.HG
	// by24 maps a client /24 to the serving offnet address.
	by24 map[netaddr.Prefix]netaddr.Addr
	// onnet is the fallback front end for unmapped clients.
	onnet netaddr.Addr
	// hostname per offnet address (the embedded-URL names).
	hostname map[netaddr.Addr]string
}

// BuildDirectories derives each hypergiant's steering directory from the
// deployment: every /24 of an offnet-hosting ISP maps to one of the
// hypergiant's servers there (round-robin), everything else to onnet.
func BuildDirectories(d *hypergiant.Deployment) map[traffic.HG]*Directory {
	w := d.World
	out := make(map[traffic.HG]*Directory, len(traffic.All))
	for _, hg := range traffic.All {
		dir := &Directory{
			hg:       hg,
			by24:     make(map[netaddr.Prefix]netaddr.Addr),
			hostname: make(map[netaddr.Addr]string),
		}
		// Onnet front end: first address of the content AS.
		if isp, ok := w.ISPs[d.ContentAS[hg]]; ok && len(isp.Prefixes) > 0 {
			dir.onnet = isp.Prefixes[0].First() + 10
		}
		for _, as := range d.HostISPs(hg) {
			servers := d.ServersOf(hg, as)
			if len(servers) == 0 {
				continue
			}
			isp := w.ISPs[as]
			i := 0
			for _, p := range isp.Prefixes {
				for _, s24 := range p.Slash24s() {
					srv := servers[i%len(servers)]
					dir.by24[s24] = srv.Addr
					dir.hostname[srv.Addr] = embeddedHostname(hg, srv)
					i++
				}
			}
		}
		out[hg] = dir
	}
	return out
}

// embeddedHostname is the per-deployment content hostname a page would
// embed, following each hypergiant's convention.
func embeddedHostname(hg traffic.HG, s *hypergiant.Server) string {
	switch hg {
	case traffic.Google:
		return fmt.Sprintf("r3---sn-%s.googlevideo.com", s.SiteTag)
	case traffic.Netflix:
		return fmt.Sprintf("ipv4-c%03d-%s-isp.1.oca.nflxvideo.net", s.Rack+1, s.SiteTag)
	case traffic.Meta:
		return fmt.Sprintf("scontent.f%s-%d.fna.fbcdn.net", s.SiteTag, s.Rack%6+1)
	case traffic.Akamai:
		return "a248.e.akamai.net"
	default:
		return ""
	}
}

// ServerFor returns the ground-truth serving address for a client.
func (dir *Directory) ServerFor(client netaddr.Addr) (netaddr.Addr, bool) {
	if srv, ok := dir.by24[client.Slash24()]; ok {
		return srv, true
	}
	return dir.onnet, false
}

// Hostname returns the embedded-URL hostname for a serving address, if it
// is an offnet.
func (dir *Directory) Hostname(srv netaddr.Addr) (string, bool) {
	h, ok := dir.hostname[srv]
	return h, ok
}

// OffnetAddrs returns all serving offnet addresses, ascending.
func (dir *Directory) OffnetAddrs() []netaddr.Addr {
	seen := make(map[netaddr.Addr]bool)
	for _, a := range dir.by24 {
		seen[a] = true
	}
	out := make([]netaddr.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Resolver is a recursive DNS resolver as the mapping experiment sees it.
type Resolver struct {
	Addr netaddr.Addr
	ISP  inet.ASN
	// SendsECS: the resolver attaches EDNS Client Subnet to upstream
	// queries (most big public resolvers do).
	SendsECS bool
	// Allowlisted: the hypergiant honours this resolver's ECS (Akamai's
	// allowlist).
	Allowlisted bool
}

// Resolvers synthesizes a resolver population: a handful of big public
// resolvers (ECS-sending, partially allowlisted) plus per-ISP resolvers
// (no ECS, mapped by their own address).
func Resolvers(w *inet.World, nPublic int, seed int64) []Resolver {
	r := rngutil.New(seed ^ 0xd45)
	var out []Resolver
	// Public resolvers live in content-ish space; use TEST-NET style fixed
	// addresses outside the routed synthetic space so they never collide.
	for i := 0; i < nPublic; i++ {
		out = append(out, Resolver{
			Addr:        netaddr.AddrFrom4(9, 9, byte(i), 9),
			SendsECS:    true,
			Allowlisted: i < nPublic/2, // half the public resolvers are allowlisted
		})
	}
	for _, isp := range w.AccessISPs() {
		if len(isp.Prefixes) == 0 {
			continue
		}
		out = append(out, Resolver{
			Addr:     isp.Prefixes[0].First() + 53,
			ISP:      isp.ASN,
			SendsECS: rngutil.Bernoulli(r, 0.1),
		})
	}
	return out
}

// Resolve answers a service-hostname query for the hypergiant under the
// given steering mode, as its authoritative DNS would: the address the
// resolver (and optionally its client subnet) is steered to.
func Resolve(dir *Directory, mode Mode, res Resolver, clientSubnet *netaddr.Prefix) netaddr.Addr {
	switch mode {
	case ModeDNS2013:
		// Full ECS support; fall back to resolver-based mapping.
		if clientSubnet != nil && res.SendsECS {
			if srv, ok := dir.by24[clientSubnet.Addr.Slash24()]; ok {
				return srv
			}
			return dir.onnet
		}
		if srv, ok := dir.by24[res.Addr.Slash24()]; ok {
			return srv
		}
		return dir.onnet
	case ModeECSAllowlist:
		// ECS honoured only for allowlisted resolvers.
		if clientSubnet != nil && res.SendsECS && res.Allowlisted {
			if srv, ok := dir.by24[clientSubnet.Addr.Slash24()]; ok {
				return srv
			}
			return dir.onnet
		}
		if srv, ok := dir.by24[res.Addr.Slash24()]; ok {
			return srv
		}
		return dir.onnet
	case ModeEmbeddedURL:
		// The service hostname always fronts from onnet; offnets are only
		// reachable via per-session embedded names.
		return dir.onnet
	default:
		return dir.onnet
	}
}
