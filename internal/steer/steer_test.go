package steer

import (
	"strings"
	"testing"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/traffic"
)

func deployTiny(t *testing.T, seed int64) *hypergiant.Deployment {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDirectoriesCoverHostISPs(t *testing.T) {
	d := deployTiny(t, 1)
	dirs := BuildDirectories(d)
	for _, hg := range traffic.All {
		dir := dirs[hg]
		if dir.onnet == 0 {
			t.Fatalf("%s: no onnet front end", hg)
		}
		for _, as := range d.HostISPs(hg) {
			isp := d.World.ISPs[as]
			client := isp.Prefixes[0].First() + 200
			srv, offnet := dir.ServerFor(client)
			if !offnet {
				t.Errorf("%s: client in host ISP %d steered onnet", hg, as)
				continue
			}
			// The serving offnet must be one of the hypergiant's servers in
			// that ISP.
			found := false
			for _, s := range d.ServersOf(hg, as) {
				if s.Addr == srv {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: client steered to %s which is not a local server", hg, srv)
			}
		}
	}
}

func TestDirectoryFallsBackToOnnet(t *testing.T) {
	d := deployTiny(t, 1)
	dirs := BuildDirectories(d)
	dir := dirs[traffic.Akamai]
	// A client in an ISP without Akamai offnets steers onnet.
	for _, isp := range d.World.AccessISPs() {
		hosted := false
		for _, as := range d.HostISPs(traffic.Akamai) {
			if as == isp.ASN {
				hosted = true
			}
		}
		if hosted {
			continue
		}
		srv, offnet := dir.ServerFor(isp.Prefixes[0].First() + 9)
		if offnet {
			t.Fatalf("client in non-host ISP mapped to offnet %s", srv)
		}
		if srv != dir.onnet {
			t.Fatalf("fallback is not the onnet front end")
		}
		return
	}
	t.Skip("every ISP hosts Akamai in this world")
}

func TestEmbeddedHostnamesFollowConventions(t *testing.T) {
	d := deployTiny(t, 1)
	dirs := BuildDirectories(d)
	checks := map[traffic.HG]string{
		traffic.Google:  ".googlevideo.com",
		traffic.Netflix: ".oca.nflxvideo.net",
		traffic.Meta:    ".fna.fbcdn.net",
	}
	for hg, suffix := range checks {
		dir := dirs[hg]
		addrs := dir.OffnetAddrs()
		if len(addrs) == 0 {
			t.Fatalf("%s: no offnets in directory", hg)
		}
		h, ok := dir.Hostname(addrs[0])
		if !ok || !strings.HasSuffix(h, suffix) {
			t.Errorf("%s: hostname %q (ok=%v), want suffix %q", hg, h, ok, suffix)
		}
	}
}

func TestResolveModes(t *testing.T) {
	d := deployTiny(t, 1)
	dirs := BuildDirectories(d)
	dir := dirs[traffic.Google]
	hostISP := d.World.ISPs[d.HostISPs(traffic.Google)[0]]
	subnet := hostISP.Prefixes[0].Slash24s()[0]

	public := Resolver{Addr: netaddr.AddrFrom4(9, 9, 0, 9), SendsECS: true, Allowlisted: true}
	publicNoList := Resolver{Addr: netaddr.AddrFrom4(9, 9, 1, 9), SendsECS: true}

	// DNS2013: ECS steers to the client's offnet.
	if got := Resolve(dir, ModeDNS2013, public, &subnet); got == dir.onnet {
		t.Error("DNS2013 with ECS should steer offnet")
	}
	// EmbeddedURL: always onnet, ECS or not.
	if got := Resolve(dir, ModeEmbeddedURL, public, &subnet); got != dir.onnet {
		t.Error("EmbeddedURL must front onnet")
	}
	// ECSAllowlist: allowlisted resolver steers; non-allowlisted falls back
	// to resolver-address mapping (here: unrouted resolver → onnet).
	if got := Resolve(dir, ModeECSAllowlist, public, &subnet); got == dir.onnet {
		t.Error("allowlisted ECS should steer offnet")
	}
	if got := Resolve(dir, ModeECSAllowlist, publicNoList, &subnet); got != dir.onnet {
		t.Error("non-allowlisted resolver's ECS must be ignored")
	}
	// ISP resolver (no ECS) in a host ISP maps by its own address.
	ispResolver := Resolver{Addr: subnet.First() + 53, ISP: hostISP.ASN}
	if got := Resolve(dir, ModeECSAllowlist, ispResolver, nil); got == dir.onnet {
		t.Error("in-ISP resolver should steer to the local offnet")
	}
}

func TestMapUsers2013VsToday(t *testing.T) {
	// The headline §3.2 reproduction: the 2013 technique worked; today it
	// fails for Google/Netflix/Meta (embedded URLs) and degrades for Akamai
	// (ECS allowlist).
	d := deployTiny(t, 1)
	resolvers := Resolvers(d.World, 6, 1)

	then := MapUsers(d, Modes2013(), resolvers, 12, 1)
	now := MapUsers(d, Modes2023(), resolvers, 12, 1)

	byHG := func(rs []MappingResult, hg traffic.HG) MappingResult {
		for _, r := range rs {
			if r.HG == hg {
				return r
			}
		}
		t.Fatalf("no result for %s", hg)
		return MappingResult{}
	}

	// 2013: Google mapping works with high coverage of host-ISP prefixes
	// and high accuracy.
	g13 := byHG(then, traffic.Google)
	if g13.CoveragePct() < 20 {
		t.Errorf("2013 Google coverage = %.1f%%, should be substantial", g13.CoveragePct())
	}
	if g13.AccuracyPct() < 95 {
		t.Errorf("2013 Google accuracy = %.1f%%, should be near-perfect", g13.AccuracyPct())
	}
	if g13.DiscoveryPct() < 30 {
		t.Errorf("2013 Google discovery = %.1f%%, should surface many offnets", g13.DiscoveryPct())
	}

	// Today: zero for the embedded-URL hypergiants.
	for _, hg := range []traffic.HG{traffic.Google, traffic.Netflix, traffic.Meta} {
		r := byHG(now, hg)
		if r.OffnetMapped != 0 {
			t.Errorf("2023 %s: technique mapped %d prefixes, want 0 (embedded URLs)", hg, r.OffnetMapped)
		}
	}

	// Akamai: works through allowlisted resolvers — nonzero but it was
	// never the full story.
	a := byHG(now, traffic.Akamai)
	if a.OffnetMapped == 0 {
		t.Error("2023 Akamai: allowlisted ECS should still map something")
	}

	for _, r := range now {
		if r.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeDNS2013: "dns-2013", ModeECSAllowlist: "ecs-allowlist",
		ModeEmbeddedURL: "embedded-url", Mode(9): "mode(9)",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q want %q", int(m), m.String(), want)
		}
	}
}

func TestResolversPopulation(t *testing.T) {
	d := deployTiny(t, 1)
	rs := Resolvers(d.World, 6, 1)
	var public, ispRes, ecs, listed int
	for _, r := range rs {
		if r.ISP == 0 {
			public++
		} else {
			ispRes++
		}
		if r.SendsECS {
			ecs++
		}
		if r.Allowlisted {
			listed++
		}
	}
	if public != 6 {
		t.Errorf("public resolvers = %d, want 6", public)
	}
	if ispRes == 0 {
		t.Error("no ISP resolvers")
	}
	if listed == 0 || listed >= ecs {
		t.Errorf("allowlist (%d) should be a strict subset of ECS senders (%d)", listed, ecs)
	}
}
