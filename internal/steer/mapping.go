package steer

import (
	"fmt"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/traffic"
)

// lnMapping is the lineage stage name of the §5 user-mapping probe
// (DESIGN.md §13).
const lnMapping = "steer.mapping"

// fMapping accounts the ECS mapping technique: client /24s probed vs. mapped
// to an offnet. Lazily registered and fed only under lineage, so lineage-off
// runs keep golden manifests byte-identical.
var fMapping = obs.NewLazyFunnel("steer.mapping",
	"client /24s probed with ECS queries vs. mapped to an offnet address")

// MappingResult is the outcome of attempting the 2013 DNS-based
// user→offnet mapping technique against one hypergiant.
type MappingResult struct {
	HG   traffic.HG
	Mode Mode
	// PrefixesProbed is the number of client /24s for which ECS queries
	// were issued.
	PrefixesProbed int
	// OffnetMapped is the number of those prefixes the technique mapped to
	// an offnet address.
	OffnetMapped int
	// Correct is the number mapped to the offnet that actually serves the
	// prefix (ground truth from the steering directory).
	Correct int
	// DistinctOffnets is how many distinct offnet addresses the technique
	// surfaced — its discovery power.
	DistinctOffnets int
	// TotalOffnets is the directory's ground-truth offnet count.
	TotalOffnets int
}

// CoveragePct is the share of probed prefixes mapped to any offnet.
func (r MappingResult) CoveragePct() float64 {
	if r.PrefixesProbed == 0 {
		return 0
	}
	return 100 * float64(r.OffnetMapped) / float64(r.PrefixesProbed)
}

// AccuracyPct is the share of offnet-mapped prefixes mapped correctly.
func (r MappingResult) AccuracyPct() float64 {
	if r.OffnetMapped == 0 {
		return 0
	}
	return 100 * float64(r.Correct) / float64(r.OffnetMapped)
}

// DiscoveryPct is the share of ground-truth offnets the technique surfaced.
func (r MappingResult) DiscoveryPct() float64 {
	if r.TotalOffnets == 0 {
		return 0
	}
	return 100 * float64(r.DistinctOffnets) / float64(r.TotalOffnets)
}

// String renders the result.
func (r MappingResult) String() string {
	return fmt.Sprintf("%s (%s): coverage %.1f%%, accuracy %.1f%%, offnets discovered %.1f%%",
		r.HG, r.Mode, r.CoveragePct(), r.AccuracyPct(), r.DiscoveryPct())
}

// MapUsers runs the Calder-2013 technique: for a sample of client /24s,
// issue ECS queries for the hypergiant's service hostname through the
// available resolvers and record where DNS steers each prefix. Under
// ModeDNS2013 this recovers the user→offnet mapping; under ModeECSAllowlist
// it works only through allowlisted resolvers; under ModeEmbeddedURL it
// recovers nothing — "it is impossible to know which users are served from
// which offnets".
func MapUsers(d *hypergiant.Deployment, modes map[traffic.HG]Mode, resolvers []Resolver, samplePerISP int, seed int64) []MappingResult {
	w := d.World
	dirs := BuildDirectories(d)
	r := rngutil.New(seed ^ 0x3a11)

	// Sample client /24s across access ISPs.
	var sample []netaddr.Prefix
	for _, isp := range w.AccessISPs() {
		var s24s []netaddr.Prefix
		for _, p := range isp.Prefixes {
			s24s = append(s24s, p.Slash24s()...)
		}
		for _, idx := range rngutil.SampleWithoutReplacement(r, len(s24s), samplePerISP) {
			sample = append(sample, s24s[idx])
		}
	}

	// Only ECS-sending resolvers are useful for the technique; prefer
	// public ones as the original did.
	var probes []Resolver
	for _, res := range resolvers {
		if res.SendsECS && res.ISP == 0 {
			probes = append(probes, res)
		}
	}
	if len(probes) == 0 {
		probes = resolvers
	}

	lr := obs.ActiveLineage()
	var f *obs.Funnel
	if lr != nil {
		// Lazily registered and fed only under lineage (golden protection).
		f = fMapping.Get()
	}
	var out []MappingResult
	for _, hg := range traffic.All {
		dir := dirs[hg]
		mode := modes[hg]
		group := "hg=" + hg.String()
		res := MappingResult{HG: hg, Mode: mode, TotalOffnets: len(dir.OffnetAddrs())}
		discovered := make(map[netaddr.Addr]bool)
		for _, s24 := range sample {
			res.PrefixesProbed++
			client := s24.First() + 77
			// Try each probe resolver until one steers us off the onnet
			// front end (the technique aggregates across resolvers).
			var mapped netaddr.Addr
			found := false
			for _, pr := range probes {
				subnet := s24
				ans := Resolve(dir, mode, pr, &subnet)
				if ans != dir.onnet {
					mapped, found = ans, true
					break
				}
			}
			if lr != nil {
				f.In(1)
				lr.CountIn(lnMapping, 1)
			}
			if !found {
				if lr != nil {
					f.Drop("no_offnet_steering", 1)
					lr.CountDrop(lnMapping, "no_offnet_steering", 1)
					lr.Record(lnMapping, group, s24.String(), obs.LineageDropped,
						"no_offnet_steering", func() []obs.LineageKV {
							return []obs.LineageKV{
								{K: "mode", V: mode.String()},
								{K: "probe_resolvers", V: fmt.Sprint(len(probes))},
							}
						})
				}
				continue
			}
			res.OffnetMapped++
			discovered[mapped] = true
			correct := false
			if truth, ok := dir.ServerFor(client); ok && truth == mapped {
				res.Correct++
				correct = true
			}
			if lr != nil {
				f.Out(1)
				lr.CountKept(lnMapping, 1)
				lr.Record(lnMapping, group, s24.String(), obs.LineageKept, "offnet_mapped",
					func() []obs.LineageKV {
						return []obs.LineageKV{
							{K: "mode", V: mode.String()},
							{K: "mapped_addr", V: mapped.String()},
							{K: "correct", V: fmt.Sprint(correct)},
						}
					})
			}
		}
		res.DistinctOffnets = len(discovered)
		out = append(out, res)
	}
	return out
}
