package tracert

import "offnetrisk/internal/scenario"

// ConfigFromScenario builds the survey configuration a resolved spec's
// measurement section declares. With the default scenario it equals
// DefaultConfig(seed).
func ConfigFromScenario(sp *scenario.Spec, seed int64) Config {
	return Config{
		Seed:                 seed,
		VMs:                  sp.Measurement.TracerouteVMs,
		TargetsPerISP:        sp.Measurement.TargetsPerISP,
		SilentRouterFraction: sp.Measurement.SilentRouterFraction,
	}
}
