package tracert

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/traffic"
)

func chaosWorld(t *testing.T) (*inet.World, *hypergiant.Deployment) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(7))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w, d
}

func heavyInjector(t *testing.T, seed int64) *chaos.Injector {
	t.Helper()
	prof, err := chaos.ParseProfile("heavy")
	if err != nil {
		t.Fatal(err)
	}
	return chaos.New(prof, seed)
}

// TestSurveyChaosDeterministicAcrossWorkers: hop silencing, noise,
// truncation and transient retries are all pure per-item hashes, so the full
// trace set and the funnel state must be byte-identical at any worker count.
func TestSurveyChaosDeterministicAcrossWorkers(t *testing.T) {
	w, d := chaosWorld(t)

	state := func(workers int) []byte {
		obs.Default.Reset()
		cfg := DefaultConfig(7)
		cfg.VMs = 8
		cfg.TargetsPerISP = 2
		cfg.Workers = workers
		cfg.Chaos = heavyInjector(t, 11)
		traces, err := SurveyContext(context.Background(), d, traffic.Google, cfg)
		if err != nil {
			t.Fatal(err)
		}
		Infer(w, traffic.Google, d.ContentAS[traffic.Google], traces)
		blob, err := json.Marshal(struct {
			Traces  map[inet.ASN][]Trace
			Funnels []obs.FunnelSnapshot
		}{traces, obs.Default.FunnelSnapshots()})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	ref := state(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := state(workers); !bytes.Equal(ref, got) {
			t.Fatalf("chaos survey diverged between workers=1 and workers=%d", workers)
		}
	}
}

// TestSurveyChaosAccounting: the attempt funnel reconciles with the issued
// trace count, truncated traces stay non-empty, and chaos hop perturbations
// land in the chaos_* funnel reasons.
func TestSurveyChaosAccounting(t *testing.T) {
	obs.Default.Reset()
	w, d := chaosWorld(t)
	inj := heavyInjector(t, 11)
	cfg := DefaultConfig(7)
	cfg.VMs = 8
	cfg.TargetsPerISP = 2
	cfg.Chaos = inj
	traces := Survey(d, traffic.Google, cfg)
	Infer(w, traffic.Google, d.ContentAS[traffic.Google], traces)

	var issued int64
	const testNet3 netaddr.Addr = 203<<24 | 113<<8
	for _, trs := range traces {
		for _, tr := range trs {
			issued++
			if len(tr.Hops) == 0 {
				t.Fatal("truncation produced an empty trace")
			}
			for _, h := range tr.Hops {
				// Noise hops answer from TEST-NET-3; they must be flagged.
				if h.Addr&0xFFFFFF00 == testNet3 && !h.Chaos {
					t.Fatalf("unmapped noise hop %v not marked as injected", h.Addr)
				}
			}
		}
	}

	var attempts, hops obs.FunnelSnapshot
	for _, s := range obs.Default.FunnelSnapshots() {
		switch s.Name {
		case "tracert.traces":
			attempts = s
		case "tracert.hops":
			hops = s
		}
	}
	if !attempts.Balanced() || !hops.Balanced() {
		t.Fatalf("funnels unbalanced: attempts=%+v hops=%+v", attempts, hops)
	}
	if attempts.Out != issued {
		t.Fatalf("attempts funnel kept %d, survey issued %d", attempts.Out, issued)
	}
	if attempts.DropN("chaos_transient") != inj.Transients.Value() {
		t.Fatalf("funnel chaos_transient = %d, chaos.transients_total = %d",
			attempts.DropN("chaos_transient"), inj.Transients.Value())
	}
	if got, want := hops.DropN("chaos_silent"), inj.HopsSilenced.Value(); got != want {
		t.Fatalf("funnel chaos_silent = %d, chaos.hops_silenced_total = %d", got, want)
	}
	if got, want := hops.DropN("chaos_unmapped"), inj.HopsNoised.Value(); got != want {
		t.Fatalf("funnel chaos_unmapped = %d, chaos.hops_noised_total = %d", got, want)
	}
	if inj.TracesTruncated.Value() == 0 || inj.HopsSilenced.Value() == 0 {
		t.Fatal("heavy profile injected nothing into the survey")
	}
}

// TestSurveyChaosOffUnchanged: a nil injector yields traces byte-identical
// to the pre-chaos code path.
func TestSurveyChaosOffUnchanged(t *testing.T) {
	_, d := chaosWorld(t)
	run := func(inj *chaos.Injector) []byte {
		obs.Default.Reset()
		cfg := DefaultConfig(7)
		cfg.VMs = 8
		cfg.TargetsPerISP = 2
		cfg.Chaos = inj
		blob, err := json.Marshal(Survey(d, traffic.Google, cfg))
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	off, err := chaos.ParseProfile("off")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(run(nil), run(chaos.New(off, 99))) {
		t.Fatal("chaos-off survey differs from a clean survey")
	}
}
