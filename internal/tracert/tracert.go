// Package tracert reproduces the peering survey of §4.2.1: traceroutes
// issued from VMs in every region of a hypergiant's cloud toward one address
// per announced /24, hop-level IP-to-network mapping with IXP fabric
// addresses resolved Euro-IX-style, and the peering inference — "we inferred
// an ISP as a peer if any traceroute has a Google IP address directly
// followed by one mapped to the ISP", with "only unresponsive hops" between
// them counting as possible peering.
package tracert

import (
	"context"
	"fmt"

	"offnetrisk/internal/bgp"
	"offnetrisk/internal/chaos"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/par"
	"offnetrisk/internal/traffic"
)

var (
	mTracesRun = obs.NewCounter("tracert.traces_run",
		"traceroutes issued by the peering survey")
	mHopsMapped = obs.NewCounter("tracert.hops_mapped",
		"traceroute hops successfully mapped to a network during inference")
	mHopsPerTrace = obs.NewHistogram("tracert.hops_per_trace",
		"hop counts per traceroute", []float64{2, 4, 6, 8, 12, 16, 24})
)

// fHops accounts the hop-level IP-to-network mapping of §4.2.1: every hop of
// every trace enters the inference, unresponsive hops ('*' lines) and hops
// whose address maps to no announced prefix or fabric membership are dropped,
// the remainder are mapped. Out reconciles exactly with tracert.hops_mapped.
var (
	fHops             = obs.NewFunnel("tracert.hops", "traceroute hops entering the peering inference vs. mapped to a network")
	fHopsUnresponsive = fHops.Reason("unresponsive")
	fHopsUnmapped     = fHops.Reason("unmapped")
)

// fTraces exists only on chaos runs: it is registered through the shared
// lazy helper on first use, so clean manifests carry no tracert.traces row.
var fTraces = obs.NewLazyFunnel("tracert.traces",
	"traceroutes attempted vs. issued under fault injection")

// lnHops is the lineage stage mirroring the hops funnel.
const lnHops = "tracert.hops"

// Hop is one traceroute hop. Unresponsive hops appear with Responded=false
// and no address (the '*' lines of a real traceroute).
type Hop struct {
	Addr      netaddr.Addr
	Responded bool
	// Chaos marks hops perturbed by fault injection (forced silent, or
	// answered from unmapped noise space), so the hop funnel can attribute
	// their drops to chaos_* reasons instead of the natural ones.
	Chaos bool
}

// Trace is one traceroute: the probing VM, the target, and the hops.
type Trace struct {
	VM     int
	Target netaddr.Addr
	Hops   []Hop
}

// Config controls the survey.
type Config struct {
	Seed int64
	// VMs is the number of cloud regions probed from (112 in the paper).
	VMs int
	// TargetsPerISP caps the number of /24s probed per ISP; the paper
	// probes every /24 (21M traceroutes) — a cap keeps the simulation
	// laptop-sized without changing the inference, which only needs one
	// revealing path per ISP.
	TargetsPerISP int
	// SilentRouterFraction is the probability a given router interface
	// never answers traceroute probes (stable per address).
	SilentRouterFraction float64
	// Workers bounds the survey's fan-out across destination ISPs; <= 0
	// means GOMAXPROCS. Hop responsiveness is a pure per-address hash, so
	// traces are identical at any worker count.
	Workers int
	// Chaos injects deterministic faults (trace truncation, forced-silent
	// hops, unmapped-address noise, transient trace failures); nil runs
	// clean. All decisions are pure per-item hashes, so the survey stays
	// byte-identical at any worker count.
	Chaos *chaos.Injector
}

// DefaultConfig mirrors the paper's scale knobs.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, VMs: 112, TargetsPerISP: 4, SilentRouterFraction: 0.15}
}

func (c Config) sanitized() Config {
	if c.VMs <= 0 {
		c.VMs = 112
	}
	if c.TargetsPerISP <= 0 {
		c.TargetsPerISP = 4
	}
	if c.SilentRouterFraction < 0 || c.SilentRouterFraction >= 1 {
		c.SilentRouterFraction = 0.15
	}
	return c
}

// Survey issues traceroutes from the hypergiant's cloud toward every ISP
// and returns them grouped by destination ISP. Probes follow the AS paths
// the Gao-Rexford routing substrate computes over the relationship graph
// (valley-free, customer > peer > provider), so a peered ISP really is one
// AS-level hop from the hypergiant and everything else is reached through
// the transit hierarchy.
func Survey(d *hypergiant.Deployment, hg traffic.HG, cfg Config) map[inet.ASN][]Trace {
	out, _ := SurveyContext(context.Background(), d, hg, cfg)
	return out
}

// SurveyContext is Survey with cancellation, fanned out one destination ISP
// per task on cfg.Workers goroutines. Every task runs its own BGP path
// computation over the shared (read-only) relationship graph and emits that
// ISP's traces; per-ISP trace slices are merged in ascending-ASN order, so
// the survey is byte-identical at any worker count.
func SurveyContext(ctx context.Context, d *hypergiant.Deployment, hg traffic.HG, cfg Config) (map[inet.ASN][]Trace, error) {
	cfg = cfg.sanitized()
	w := d.World
	hgAS := d.ContentAS[hg]
	hgISP := w.ISPs[hgAS]
	graph := bgp.FromWorld(d)

	// Pre-index peerings by ISP.
	pni := make(map[inet.ASN]bool)
	ixp := make(map[inet.ASN][]inet.IXPID)
	for _, p := range d.Peerings {
		if p.HG != hg {
			continue
		}
		switch p.Kind {
		case hypergiant.PeerPNI:
			pni[p.ISP] = true
		case hypergiant.PeerIXP:
			ixp[p.ISP] = append(ixp[p.ISP], p.IXP)
		}
	}

	var isps []*inet.ISP
	for _, isp := range w.ISPList() {
		if isp.Tier != inet.TierContent {
			isps = append(isps, isp)
		}
	}
	// Per-ISP task result: the traces plus the chaos attempt accounting,
	// merged serially below so the traces funnel is fed in ascending-ASN
	// order regardless of worker schedule.
	type ispTraces struct {
		list                       []Trace
		attempted, lost, truncated int64
	}
	traces, err := par.Map(ctx, len(isps), par.Options{Workers: cfg.Workers, Name: "traceroutes"},
		func(_ context.Context, i int) (ispTraces, error) {
			isp := isps[i]
			path := graph.PathsTo(isp.ASN).Path(hgAS)
			targets := targetsOf(isp, cfg.TargetsPerISP)
			res := ispTraces{list: make([]Trace, 0, cfg.VMs*len(targets))}
			for vm := 0; vm < cfg.VMs; vm++ {
				for _, target := range targets {
					res.attempted++
					// A transiently-failed trace is retried per the chaos
					// policy and, if exhausted, never issued — so it counts
					// once as attempted, never in traces_run (attempts land
					// in chaos.retries_total inside Attempts).
					if _, ok := cfg.Chaos.Attempts(chaos.StageTrace, int64(vm), int64(target)); !ok {
						res.lost++
						continue
					}
					tr := trace(w, hgISP, path, vm, target, pni[isp.ASN], ixp[isp.ASN], cfg)
					if cut, ok := cfg.Chaos.TruncateAt(int64(vm), int64(target), len(tr.Hops)); ok {
						tr.Hops = tr.Hops[:cut]
						res.truncated++
					}
					mTracesRun.Inc()
					mHopsPerTrace.Observe(float64(len(tr.Hops)))
					res.list = append(res.list, tr)
				}
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[inet.ASN][]Trace, len(isps))
	var attempted, lost, truncated int64
	for i, res := range traces {
		if len(res.list) > 0 {
			out[isps[i].ASN] = res.list
		}
		attempted += res.attempted
		lost += res.lost
		truncated += res.truncated
	}
	if cfg.Chaos.Enabled() {
		f := fTraces.Get()
		f.In(attempted)
		f.Out(attempted - lost)
		f.Reason("chaos_transient").Add(lost)
		cfg.Chaos.TracesTruncated.Add(truncated)
		// Hop perturbations are counted over the kept hops only, so the
		// counters equal the chaos_silent / chaos_unmapped funnel reasons
		// inference will report — truncated-away hops never count.
		var silenced, noised int64
		for _, trs := range out {
			for _, tr := range trs {
				for _, h := range tr.Hops {
					if !h.Chaos {
						continue
					}
					if h.Responded {
						noised++
					} else {
						silenced++
					}
				}
			}
		}
		cfg.Chaos.HopsSilenced.Add(silenced)
		cfg.Chaos.HopsNoised.Add(noised)
	}
	return out, nil
}

// targetsOf picks one address per /24 for up to n of the ISP's /24s.
func targetsOf(isp *inet.ISP, n int) []netaddr.Addr {
	var out []netaddr.Addr
	for _, p := range isp.Prefixes {
		for _, s := range p.Slash24s() {
			out = append(out, s.First()+1)
			if len(out) >= n {
				return out
			}
		}
	}
	return out
}

// trace emits the hop sequence for one probe along the BGP-selected AS
// path. Each AS contributes one or two router interfaces; when the
// hypergiant→ISP edge is an exchange peering, the entry hop is the ISP's
// fabric address, which the Euro-IX-style registry maps back to the ISP.
func trace(w *inet.World, hgISP *inet.ISP, path []inet.ASN, vm int, target netaddr.Addr, hasPNI bool, ixps []inet.IXPID, cfg Config) Trace {
	var hops []Hop
	add := func(a netaddr.Addr) {
		h := Hop{Addr: a, Responded: responds(a, cfg)}
		// Chaos perturbs naturally responsive interfaces only (a silent
		// router cannot get noisier), stable per address like the natural
		// silent fraction: noise makes the interface answer from unrouted
		// space the IP-to-AS mapping cannot resolve; silence forces a '*'.
		// Counted in the survey's serial merge, not here: truncation may
		// discard a perturbed tail hop, and the counters must reconcile
		// with the hops that actually reach inference.
		if h.Responded {
			switch {
			case cfg.Chaos.HopNoised(int64(a)):
				h = Hop{Addr: noiseAddr(cfg.Chaos, a), Responded: true, Chaos: true}
			case cfg.Chaos.HopSilenced(int64(a)):
				h = Hop{Addr: a, Responded: false, Chaos: true}
			}
		}
		hops = append(hops, h)
	}

	// Intra-cloud hops: addresses in the hypergiant's own space, varying by
	// VM region so paths differ across regions.
	hgBase := hgISP.Prefixes[0]
	add(hgBase.First() + netaddr.Addr(2+vm%64))
	add(hgBase.First() + netaddr.Addr(128+vm%32))

	if len(path) == 0 {
		// Unroutable destination: the probe dies in the cloud.
		return Trace{VM: vm, Target: target, Hops: hops}
	}

	for i := 1; i < len(path); i++ {
		as := path[i]
		isp, ok := w.ISPs[as]
		if !ok {
			continue
		}
		direct := i == 1 // edge crossing straight out of the hypergiant
		useIXP := direct && len(ixps) > 0 && (!hasPNI || vm%2 == 1)
		if useIXP {
			x := w.IXPs[ixps[vm%len(ixps)]]
			if fabricAddr, ok := x.MemberAddr[as]; ok {
				add(fabricAddr)
			} else {
				add(borderAddr(isp, 1))
			}
		} else {
			add(borderAddr(isp, 2+i))
		}
		// Interior interface for intermediate ASes, so silent borders do
		// not blind the mapping for long paths.
		if i != len(path)-1 {
			add(borderAddr(isp, 9+i))
		}
	}

	// Inside the destination ISP toward the target.
	add(target + 1) // a last-hop router interface in the target /24
	add(target)

	return Trace{VM: vm, Target: target, Hops: hops}
}

// borderAddr returns a stable router address inside the network's first
// prefix, offset by role so PNI/transit/IXP interfaces differ.
func borderAddr(isp *inet.ISP, role int) netaddr.Addr {
	if len(isp.Prefixes) == 0 {
		return 0
	}
	return isp.Prefixes[0].First() + netaddr.Addr(240+role)
}

// noiseAddr maps a perturbed hop into 203.0.113.0/24 (TEST-NET-3), which no
// synthetic network ever announces — the world allocates ISPs from
// 16.0.0.0/4, content from 8.0.0.0/9 and IXP fabrics from 198.32.0.0/13 —
// so the hop is guaranteed unmappable, like a real probe answered from
// unallocated or internal space.
func noiseAddr(in *chaos.Injector, a netaddr.Addr) netaddr.Addr {
	const testNet3 netaddr.Addr = 203<<24 | 0<<16 | 113<<8
	return testNet3 | netaddr.Addr(in.NoiseLow8(int64(a)))
}

// responds is the stable per-interface traceroute responsiveness: a hash of
// the address against the silent fraction.
func responds(a netaddr.Addr, cfg Config) bool {
	h := uint64(a) * 0x9e3779b97f4a7c15
	h ^= uint64(cfg.Seed)
	h *= 0xbf58476d1ce4e5b9
	return float64(h%1000)/1000.0 >= cfg.SilentRouterFraction
}

// PeeringClass is the §4.2.1 classification of an ISP.
type PeeringClass int

// Peering classes.
const (
	ClassNoEvidence PeeringClass = iota // "our traceroutes reveal no evidence of peering"
	ClassPossible                       // "only unresponsive hops separate Google and the ISP"
	ClassPeer                           // adjacency observed
)

// String implements fmt.Stringer.
func (c PeeringClass) String() string {
	switch c {
	case ClassPeer:
		return "peer"
	case ClassPossible:
		return "possible"
	default:
		return "no-evidence"
	}
}

// ISPInference is the inference outcome for one ISP.
type ISPInference struct {
	Class PeeringClass
	// ViaIXP: at least one adjacency went through an exchange fabric
	// address.
	ViaIXP bool
	// ViaPNI: at least one adjacency was a direct ISP address (private
	// interconnect).
	ViaPNI bool
}

// Infer classifies each ISP from its traceroutes. An adjacency requires a
// hop owned by the hypergiant directly followed by a responsive hop mapped
// to the ISP — either an address the ISP announces or its fabric address at
// an exchange. If the following hops are unresponsive until an ISP-mapped
// hop appears, the ISP is a possible peer.
func Infer(w *inet.World, hg traffic.HG, contentAS inet.ASN, traces map[inet.ASN][]Trace) map[inet.ASN]ISPInference {
	out := make(map[inet.ASN]ISPInference, len(traces))
	for as, list := range traces {
		inf := ISPInference{Class: ClassNoEvidence}
		for _, tr := range list {
			accountHops(w, as, tr)
			classifyTrace(w, contentAS, as, tr, &inf)
		}
		out[as] = inf
	}
	return out
}

// accountHops feeds the tracert.hops funnel and the hops_mapped counter for
// one trace, batched into single atomic adds per trace. Lineage counts mirror
// the funnel feed; sampled hop records group by the trace's destination ISP.
// Hop responsiveness, chaos perturbation, and network mapping are all stable
// per address, so a hop's decision record is pure per (address, config) no
// matter which trace it appears in.
func accountHops(w *inet.World, dst inet.ASN, tr Trace) {
	lr := obs.ActiveLineage()
	hopRecord := func(h Hop, outcome, reason string, build func() []obs.LineageKV) {
		group := fmt.Sprintf("isp=%d", dst)
		if outcome == obs.LineageDropped {
			group += "|reason=" + reason
		}
		lr.Record(lnHops, group, h.Addr.String(), outcome, reason, build)
	}
	var unresp, unmapped, mapped, chaosSilent, chaosNoise int64
	for _, h := range tr.Hops {
		switch {
		case !h.Responded:
			if h.Chaos {
				chaosSilent++
				if lr != nil {
					hopRecord(h, obs.LineageDropped, "chaos_silent", nil)
				}
			} else {
				unresp++
				if lr != nil {
					hopRecord(h, obs.LineageDropped, "unresponsive", nil)
				}
			}
		default:
			if owner, viaIXP, ok := mapHop(w, h); ok {
				mapped++
				if lr != nil {
					owner, viaIXP := owner, viaIXP
					hopRecord(h, obs.LineageKept, "mapped", func() []obs.LineageKV {
						return []obs.LineageKV{
							{K: "owner_as", V: fmt.Sprint(owner)},
							{K: "via_ixp", V: fmt.Sprint(viaIXP)},
							{K: "dst_isp", V: fmt.Sprint(dst)},
						}
					})
				}
			} else if h.Chaos {
				chaosNoise++
				if lr != nil {
					hopRecord(h, obs.LineageDropped, "chaos_unmapped", nil)
				}
			} else {
				unmapped++
				if lr != nil {
					hopRecord(h, obs.LineageDropped, "unmapped", nil)
				}
			}
		}
	}
	fHops.In(int64(len(tr.Hops)))
	fHops.Out(mapped)
	fHopsUnresponsive.Add(unresp)
	fHopsUnmapped.Add(unmapped)
	lr.CountIn(lnHops, int64(len(tr.Hops)))
	lr.CountKept(lnHops, mapped)
	lr.CountDrop(lnHops, "unresponsive", unresp)
	lr.CountDrop(lnHops, "unmapped", unmapped)
	// Chaos reasons are bound lazily — only traces carrying perturbed hops
	// register them, so clean snapshots have no chaos_* rows.
	if chaosSilent > 0 {
		fHops.Reason("chaos_silent").Add(chaosSilent)
		lr.CountDrop(lnHops, "chaos_silent", chaosSilent)
	}
	if chaosNoise > 0 {
		fHops.Reason("chaos_unmapped").Add(chaosNoise)
		lr.CountDrop(lnHops, "chaos_unmapped", chaosNoise)
	}
	mHopsMapped.Add(mapped)
}

// mapHop resolves a responsive hop to its owning network: exchange fabric
// addresses map to the member ISP, everything else to the announcing AS.
func mapHop(w *inet.World, h Hop) (owner inet.ASN, viaIXP bool, ok bool) {
	if !h.Responded {
		return 0, false, false
	}
	if x, member, found := w.IXPOf(h.Addr); found && x != nil {
		return member, true, member != 0
	}
	as, found := w.OwnerOf(h.Addr)
	return as, false, found
}

func classifyTrace(w *inet.World, contentAS inet.ASN, target inet.ASN, tr Trace, inf *ISPInference) {
	for i := 0; i < len(tr.Hops)-1; i++ {
		h := tr.Hops[i]
		if !h.Responded {
			continue
		}
		owner, _, ok := mapHop(w, h)
		if !ok || owner != contentAS {
			continue
		}
		// Found a responsive hypergiant hop; look at what follows.
		j := i + 1
		sawGap := false
		for j < len(tr.Hops) {
			next := tr.Hops[j]
			if !next.Responded {
				sawGap = true
				j++
				continue
			}
			nOwner, viaIXP, nOK := mapHop(w, next)
			if !nOK {
				break
			}
			if nOwner == contentAS {
				// Still inside the hypergiant; continue from here.
				break
			}
			if nOwner == target {
				if sawGap {
					if inf.Class < ClassPossible {
						inf.Class = ClassPossible
					}
				} else {
					inf.Class = ClassPeer
					if viaIXP {
						inf.ViaIXP = true
					} else {
						inf.ViaPNI = true
					}
				}
			}
			break
		}
	}
}

// SurveyStats aggregates the §4.2.1 numbers.
type SurveyStats struct {
	HG traffic.HG
	// Over ISPs hosting the hypergiant's offnets:
	HostsTotal      int
	HostsPeer       int // 38.2% in the paper
	HostsPossible   int // 13.3%
	HostsNoEvidence int // 48.4%
	// Over all inferred peers (any ISP):
	PeersTotal   int
	PeersViaIXP  int // 62.2% peer via an IXP in ≥1 traceroute
	PeersOnlyIXP int // 42.5% only appear connected through an IXP
}

// Stats computes the survey statistics given the deployment ground truth
// for "ISPs with offnets".
func Stats(d *hypergiant.Deployment, hg traffic.HG, inf map[inet.ASN]ISPInference) SurveyStats {
	s := SurveyStats{HG: hg}
	hosts := make(map[inet.ASN]bool)
	for _, as := range d.HostISPs(hg) {
		hosts[as] = true
	}
	s.HostsTotal = len(hosts)
	for as := range hosts {
		switch inf[as].Class {
		case ClassPeer:
			s.HostsPeer++
		case ClassPossible:
			s.HostsPossible++
		default:
			s.HostsNoEvidence++
		}
	}
	for _, i := range inf {
		if i.Class != ClassPeer {
			continue
		}
		s.PeersTotal++
		if i.ViaIXP {
			s.PeersViaIXP++
		}
		if i.ViaIXP && !i.ViaPNI {
			s.PeersOnlyIXP++
		}
	}
	return s
}

// String renders the stats in the paper's phrasing.
func (s SurveyStats) String() string {
	pct := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	return fmt.Sprintf(
		"%s: of %d ISPs with offnets, %d (%.1f%%) peer, %d (%.1f%%) possible, %d (%.1f%%) no evidence; "+
			"of %d peers, %d (%.1f%%) via IXP, %d (%.1f%%) IXP-only",
		s.HG, s.HostsTotal,
		s.HostsPeer, pct(s.HostsPeer, s.HostsTotal),
		s.HostsPossible, pct(s.HostsPossible, s.HostsTotal),
		s.HostsNoEvidence, pct(s.HostsNoEvidence, s.HostsTotal),
		s.PeersTotal,
		s.PeersViaIXP, pct(s.PeersViaIXP, s.PeersTotal),
		s.PeersOnlyIXP, pct(s.PeersOnlyIXP, s.PeersTotal))
}
