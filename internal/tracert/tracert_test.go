package tracert

import (
	"testing"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func surveyTiny(t *testing.T, seed int64) (*hypergiant.Deployment, map[inet.ASN][]Trace, map[inet.ASN]ISPInference) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(seed)
	cfg.VMs = 24 // keep the tiny survey fast; coverage is still dense
	traces := Survey(d, traffic.Google, cfg)
	inf := Infer(w, traffic.Google, d.ContentAS[traffic.Google], traces)
	return d, traces, inf
}

func TestSurveyCoversEveryISP(t *testing.T) {
	d, traces, _ := surveyTiny(t, 1)
	for _, isp := range d.World.ISPList() {
		if isp.Tier == inet.TierContent {
			if _, ok := traces[isp.ASN]; ok {
				t.Errorf("content AS %d should not be a survey target", isp.ASN)
			}
			continue
		}
		if len(traces[isp.ASN]) == 0 {
			t.Errorf("no traceroutes toward %s", isp.Name)
		}
	}
}

func TestTracesStartInCloudAndReachTarget(t *testing.T) {
	d, traces, _ := surveyTiny(t, 1)
	w := d.World
	googleAS := d.ContentAS[traffic.Google]
	for as, list := range traces {
		tr := list[0]
		if len(tr.Hops) < 3 {
			t.Fatalf("trace to AS%d too short: %d hops", as, len(tr.Hops))
		}
		if owner, ok := w.OwnerOf(tr.Hops[0].Addr); !ok || owner != googleAS {
			t.Fatalf("first hop not in hypergiant space (owner %d)", owner)
		}
		last := tr.Hops[len(tr.Hops)-1]
		if owner, ok := w.OwnerOf(last.Addr); !ok || owner != as {
			t.Fatalf("last hop not in destination ISP (owner %d, want %d)", owner, as)
		}
		break
	}
}

func TestInferMatchesDeploymentGroundTruth(t *testing.T) {
	// ISPs with a PNI or IXP peering in the deployment should be classified
	// peer (or at worst possible, when silent routers hide the adjacency);
	// ISPs without any peering must never be classified as peers.
	d, _, inf := surveyTiny(t, 1)
	peered := make(map[inet.ASN]bool)
	viaPNI := make(map[inet.ASN]bool)
	viaIXP := make(map[inet.ASN]bool)
	for _, p := range d.Peerings {
		if p.HG != traffic.Google {
			continue
		}
		peered[p.ISP] = true
		if p.Kind == hypergiant.PeerPNI {
			viaPNI[p.ISP] = true
		} else {
			viaIXP[p.ISP] = true
		}
	}

	var peeredSeen, peeredMissed, falsePeers int
	for as, i := range inf {
		if peered[as] {
			switch i.Class {
			case ClassPeer:
				peeredSeen++
				if i.ViaPNI && !viaPNI[as] {
					t.Errorf("AS%d inferred PNI without one deployed", as)
				}
				if i.ViaIXP && !viaIXP[as] {
					t.Errorf("AS%d inferred IXP peering without one deployed", as)
				}
			default:
				peeredMissed++
			}
		} else if i.Class == ClassPeer {
			// Backbones interconnect with hypergiants implicitly; any other
			// peer classification without a deployed peering is a false
			// positive.
			if d.World.ISPs[as].Tier != inet.TierBackbone {
				falsePeers++
				t.Errorf("AS%d classified peer without any deployed peering", as)
			}
		}
	}
	if peeredSeen == 0 {
		t.Fatal("no deployed peering was discovered")
	}
	// With 24 VMs and stable silent routers a small miss rate is expected,
	// but most peerings must surface.
	if frac := float64(peeredSeen) / float64(peeredSeen+peeredMissed); frac < 0.7 {
		t.Errorf("discovered only %.2f of deployed peerings", frac)
	}
	_ = falsePeers
}

func TestStatsShapeMatchesSec421(t *testing.T) {
	// §4.2.1: 38.2% of Google-offnet ISPs peer, 13.3% possible, 48.4% no
	// evidence; 62.2% of peers via IXP, 42.5% IXP-only. Match loosely.
	d, _, inf := surveyTiny(t, 1)
	s := Stats(d, traffic.Google, inf)
	if s.HostsTotal == 0 {
		t.Fatal("no hosts")
	}
	frac := func(n int) float64 { return float64(n) / float64(s.HostsTotal) }
	if f := frac(s.HostsPeer); f < 0.2 || f > 0.65 {
		t.Errorf("peer fraction = %.2f, want ≈0.38", f)
	}
	if f := frac(s.HostsNoEvidence); f < 0.25 || f > 0.70 {
		t.Errorf("no-evidence fraction = %.2f, want ≈0.48", f)
	}
	if s.HostsPossible == 0 {
		t.Error("no possible-peering ISPs; silent routers should create some")
	}
	if s.HostsPeer+s.HostsPossible+s.HostsNoEvidence != s.HostsTotal {
		t.Error("host classes do not partition hosts")
	}
	if s.PeersTotal == 0 {
		t.Fatal("no peers at all")
	}
	if f := float64(s.PeersViaIXP) / float64(s.PeersTotal); f < 0.3 || f > 0.95 {
		t.Errorf("via-IXP fraction = %.2f, want ≈0.62", f)
	}
	if s.PeersOnlyIXP > s.PeersViaIXP {
		t.Error("IXP-only cannot exceed via-IXP")
	}
	// More networks peer than host offnets (paper: 9207 peers vs 4697
	// hosts) — at least, peers must extend beyond hosts.
	if s.PeersTotal <= s.HostsPeer {
		t.Errorf("peers (%d) should exceed peering hosts (%d): transit and non-host ISPs peer too",
			s.PeersTotal, s.HostsPeer)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[PeeringClass]string{
		ClassPeer: "peer", ClassPossible: "possible", ClassNoEvidence: "no-evidence",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestSurveyDeterministic(t *testing.T) {
	_, _, a := surveyTiny(t, 3)
	_, _, b := surveyTiny(t, 3)
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for as, ia := range a {
		if b[as] != ia {
			t.Fatalf("inference for AS%d differs: %+v vs %+v", as, ia, b[as])
		}
	}
}

func TestConfigSanitized(t *testing.T) {
	c := Config{}.sanitized()
	if c.VMs != 112 || c.TargetsPerISP != 4 {
		t.Errorf("sanitized defaults wrong: %+v", c)
	}
	// Zero silent fraction is a legal "all interfaces respond" setting;
	// negative and ≥1 values fall back to the default.
	if c.SilentRouterFraction != 0 {
		t.Errorf("explicit zero silent fraction must be preserved: %+v", c)
	}
	c = Config{SilentRouterFraction: -0.5}.sanitized()
	if c.SilentRouterFraction != 0.15 {
		t.Errorf("negative silent fraction not defaulted: %+v", c)
	}
}
