package chaos

import (
	"strings"
	"testing"
	"time"

	"offnetrisk/internal/obs"
)

func TestParseProfile(t *testing.T) {
	for _, name := range []string{"", "off", "none"} {
		p, err := ParseProfile(name)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", name, err)
		}
		if p.Name != "off" || p.Enabled() {
			t.Fatalf("ParseProfile(%q) = %+v, want disabled 'off'", name, p)
		}
		if New(p, 7) != nil {
			t.Fatalf("New(off) must return the nil injector")
		}
	}
	for _, name := range []string{"light", "heavy"} {
		p, err := ParseProfile(name)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", name, err)
		}
		if p.Name != name || !p.Enabled() {
			t.Fatalf("ParseProfile(%q) = %+v, want enabled profile", name, p)
		}
		if p.Retry.MaxAttempts < 2 {
			t.Fatalf("%s profile has no retries: %+v", name, p.Retry)
		}
	}
	light, _ := ParseProfile("light")
	heavy, _ := ParseProfile("heavy")
	if !(light.BlackoutProb < heavy.BlackoutProb && light.TransientProb < heavy.TransientProb) {
		t.Fatalf("heavy must dominate light: light=%+v heavy=%+v", light, heavy)
	}
	if _, err := ParseProfile("cataclysmic"); err == nil {
		t.Fatal("unknown profile must be rejected")
	} else if !strings.Contains(err.Error(), "cataclysmic") {
		t.Fatalf("error should name the bad profile: %v", err)
	}
}

// TestNilInjectorSafe pins the chaos-off contract: every decision method on
// the nil injector reports "no fault" without touching the registry.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Enabled() || in.ProfileName() != "off" || in.Seed() != 0 || in.Profile().Enabled() {
		t.Fatalf("nil injector leaks state: enabled=%v name=%q", in.Enabled(), in.ProfileName())
	}
	if in.TargetBlackout(1) || in.ProbeLost(1, 2, 3) || in.HopSilenced(1) ||
		in.HopNoised(1) || in.CertFetchFailed(1) || in.CertMangled(1) {
		t.Fatal("nil injector injected a fault")
	}
	if ms, ok := in.Straggler(1, 2); ok || ms != 0 {
		t.Fatal("nil injector injected a straggler")
	}
	if cut, ok := in.TruncateAt(1, 2, 30); ok || cut != 0 {
		t.Fatal("nil injector truncated a trace")
	}
	if retries, ok := in.Attempts(StagePing, 1, 2); retries != 0 || !ok {
		t.Fatal("nil injector failed an attempt")
	}
	if in.TransientLost(StagePing, 1, 2) {
		t.Fatal("nil injector lost an item")
	}
	if in.NoiseLow8(1) != 0 {
		t.Fatal("nil injector produced a noise byte")
	}
}

// TestDecisionsDeterministic: decisions are pure functions of
// (seed, fault kind, labels) — two injectors with equal identity agree on
// every item, and replays never change an answer.
func TestDecisionsDeterministic(t *testing.T) {
	prof, _ := ParseProfile("heavy")
	a := New(prof, 7)
	b := New(prof, 7)
	other := New(prof, 8)
	differs := false
	for addr := int64(0); addr < 2000; addr++ {
		if a.TargetBlackout(addr) != b.TargetBlackout(addr) ||
			a.ProbeLost(addr, 3, 5) != b.ProbeLost(addr, 3, 5) ||
			a.HopSilenced(addr) != b.HopSilenced(addr) ||
			a.CertFetchFailed(addr) != b.CertFetchFailed(addr) {
			t.Fatalf("equal injectors disagree at addr %d", addr)
		}
		if a.TargetBlackout(addr) != a.TargetBlackout(addr) {
			t.Fatalf("replay changed the answer at addr %d", addr)
		}
		ams, aok := a.Straggler(addr, 9)
		bms, bok := b.Straggler(addr, 9)
		if ams != bms || aok != bok {
			t.Fatalf("straggler magnitudes disagree at addr %d", addr)
		}
		if a.TargetBlackout(addr) != other.TargetBlackout(addr) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different chaos seeds produced identical blackout sets")
	}
}

// TestFaultNesting: the fault set at probability p is a subset of the set at
// p' > p — the property the ISP-gate monotonicity suite builds on. Holds
// because every decision compares one shared pure roll against p.
func TestFaultNesting(t *testing.T) {
	probs := []float64{0.01, 0.05, 0.2, 0.5, 0.9}
	injs := make([]*Injector, len(probs))
	for i, p := range probs {
		injs[i] = New(Profile{
			Name: "nest", BlackoutProb: p, ProbeLossExtra: p, StragglerProb: p,
			StragglerMs: 10, TruncateProb: p, HopSilentProb: p, HopNoiseProb: p,
			CertFailProb: p, CertMangleProb: p, TransientProb: p,
			Retry: RetryPolicy{MaxAttempts: 3},
		}, 42)
	}
	for addr := int64(0); addr < 3000; addr++ {
		for i := 1; i < len(injs); i++ {
			lo, hi := injs[i-1], injs[i]
			if lo.TargetBlackout(addr) && !hi.TargetBlackout(addr) {
				t.Fatalf("blackout set not nested at addr %d: p=%v faults, p=%v does not", addr, probs[i-1], probs[i])
			}
			if lo.ProbeLost(addr, 1, 2) && !hi.ProbeLost(addr, 1, 2) {
				t.Fatalf("probe-loss set not nested at addr %d", addr)
			}
			if lo.HopSilenced(addr) && !hi.HopSilenced(addr) {
				t.Fatalf("hop-silence set not nested at addr %d", addr)
			}
			if lo.CertFetchFailed(addr) && !hi.CertFetchFailed(addr) {
				t.Fatalf("cert-fail set not nested at addr %d", addr)
			}
			if lo.TransientLost(StagePing, addr, 0) && !hi.TransientLost(StagePing, addr, 0) {
				t.Fatalf("transient-loss set not nested at addr %d", addr)
			}
			if _, ok := lo.Straggler(addr, 1); ok {
				if _, ok := hi.Straggler(addr, 1); !ok {
					t.Fatalf("straggler set not nested at addr %d", addr)
				}
			}
		}
	}
}

// TestAttemptsAccounting pins the single-count retry semantics: the Retries
// counter equals the sum of retries the callers observed, exhaustion lands
// in Transients exactly once per lost item, and TransientLost replays the
// verdict without side effects.
func TestAttemptsAccounting(t *testing.T) {
	obs.Default.Reset()
	in := New(Profile{
		Name: "retry", TransientProb: 0.5,
		Retry: RetryPolicy{MaxAttempts: 3}, // zero backoff: no sleeping in tests
	}, 11)

	const items = 4000
	var wantRetries, wantLost int64
	for i := int64(0); i < items; i++ {
		retries, ok := in.Attempts(StagePing, i, 0)
		wantRetries += int64(retries)
		if !ok {
			wantLost++
			if retries != 2 {
				t.Fatalf("exhausted item %d reported %d retries, want MaxAttempts-1 = 2", i, retries)
			}
		}
		if in.TransientLost(StagePing, i, 0) == ok {
			t.Fatalf("TransientLost disagrees with Attempts at item %d", i)
		}
	}
	if got := in.Retries.Value(); got != wantRetries {
		t.Fatalf("chaos.retries_total = %d, callers observed %d", got, wantRetries)
	}
	if got := in.Transients.Value(); got != wantLost {
		t.Fatalf("chaos.transients_total = %d, callers lost %d", got, wantLost)
	}
	if wantLost == 0 || wantLost == items {
		t.Fatalf("degenerate transient outcome: lost %d of %d", wantLost, items)
	}
	// Expected loss rate is p^MaxAttempts = 0.125; allow a wide band.
	rate := float64(wantLost) / items
	if rate < 0.05 || rate > 0.25 {
		t.Fatalf("loss rate %.3f implausible for p=0.5, 3 attempts", rate)
	}

	// The pure replay must not move the counters.
	r, tr := in.Retries.Value(), in.Transients.Value()
	for i := int64(0); i < items; i++ {
		in.TransientLost(StagePing, i, 0)
	}
	if in.Retries.Value() != r || in.Transients.Value() != tr {
		t.Fatal("TransientLost touched the retry counters")
	}

	// Distinct stages draw distinct streams.
	same := true
	for i := int64(0); i < 256 && same; i++ {
		same = in.TransientLost(StagePing, i, 0) == in.TransientLost(StageTrace, i, 0)
	}
	if same {
		t.Fatal("ping and trace stages share a transient stream")
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 50 * time.Microsecond, MaxBackoff: 300 * time.Microsecond}
	want := []time.Duration{50 * time.Microsecond, 100 * time.Microsecond, 200 * time.Microsecond, 300 * time.Microsecond, 300 * time.Microsecond}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
	zero := RetryPolicy{MaxAttempts: 3}
	if zero.Backoff(0) != 0 || zero.Backoff(4) != 0 {
		t.Fatal("zero policy must not sleep")
	}
	if s := (RetryPolicy{}).sanitized(); s.MaxAttempts != 1 {
		t.Fatalf("sanitized zero policy = %+v, want 1 attempt", s)
	}
}

func TestTruncateAtBounds(t *testing.T) {
	in := New(Profile{Name: "trunc", TruncateProb: 1}, 3)
	for n := 2; n < 40; n++ {
		for vm := int64(0); vm < 50; vm++ {
			cut, ok := in.TruncateAt(vm, 1000+vm, n)
			if !ok {
				t.Fatalf("TruncateProb=1 must always truncate (n=%d)", n)
			}
			if cut < 1 || cut >= n {
				t.Fatalf("TruncateAt(vm=%d, n=%d) = %d, want in [1, %d]", vm, n, cut, n-1)
			}
		}
	}
	if _, ok := in.TruncateAt(0, 0, 1); ok {
		t.Fatal("single-hop traces cannot be truncated")
	}
}

func TestThresholds(t *testing.T) {
	th := DefaultThresholds()
	if got := th.For("ping.filter"); got != DefaultThreshold {
		t.Fatalf("For(ping.filter) = %v, want default %v", got, DefaultThreshold)
	}
	if got := th.For("ping.isp_gate"); got != 0.50 {
		t.Fatalf("For(ping.isp_gate) = %v, want the documented 0.50", got)
	}
	if got := (Thresholds{}).For("anything"); got != DefaultThreshold {
		t.Fatalf("zero thresholds must fall back to the default, got %v", got)
	}
}

func TestChaosDropFractionAndDegradedStages(t *testing.T) {
	snaps := []obs.FunnelSnapshot{
		{Name: "clean.stage", In: 100, Out: 90, Drops: []obs.FunnelDrop{{Reason: "unresponsive", N: 10}}},
		{Name: "hit.stage", In: 100, Out: 70, Drops: []obs.FunnelDrop{
			{Reason: "chaos_blackout", N: 20}, {Reason: "unresponsive", N: 10}}},
		{Name: "grazed.stage", In: 100, Out: 95, Drops: []obs.FunnelDrop{{Reason: "chaos_transient", N: 5}}},
		{Name: "empty.stage"},
	}
	if f := ChaosDropFraction(snaps[0]); f != 0 {
		t.Fatalf("natural drops counted as chaos: %v", f)
	}
	if f := ChaosDropFraction(snaps[1]); f != 0.20 {
		t.Fatalf("ChaosDropFraction = %v, want 0.20", f)
	}
	if f := ChaosDropFraction(snaps[3]); f != 0 {
		t.Fatalf("empty funnel must have zero fraction, got %v", f)
	}
	got := DegradedStages(snaps, DefaultThresholds())
	if len(got) != 1 || got[0] != "hit.stage" {
		t.Fatalf("DegradedStages = %v, want [hit.stage]", got)
	}
	// A run with no chaos_* reasons can never be degraded, whatever it drops.
	if d := DegradedStages(snaps[:1], DefaultThresholds()); len(d) != 0 {
		t.Fatalf("clean snapshots degraded: %v", d)
	}
}

func TestAnnotate(t *testing.T) {
	m := &obs.Manifest{Funnels: []obs.FunnelSnapshot{
		{Name: "ping.filter", In: 10, Out: 5, Drops: []obs.FunnelDrop{{Reason: "chaos_blackout", N: 5}}},
	}}
	Annotate(m, nil, DefaultThresholds())
	if m.ChaosProfile != "" || m.Degraded || m.DegradedStages != nil {
		t.Fatalf("nil injector annotated the manifest: %+v", m)
	}
	prof, _ := ParseProfile("light")
	Annotate(m, New(prof, 77), DefaultThresholds())
	if m.ChaosProfile != "light" || m.ChaosSeed != 77 {
		t.Fatalf("identity not stamped: %+v", m)
	}
	if !m.Degraded || len(m.DegradedStages) != 1 || m.DegradedStages[0] != "ping.filter" {
		t.Fatalf("degradation verdict wrong: degraded=%v stages=%v", m.Degraded, m.DegradedStages)
	}

	calm := &obs.Manifest{Funnels: []obs.FunnelSnapshot{
		{Name: "ping.filter", In: 1000, Out: 995, Drops: []obs.FunnelDrop{{Reason: "chaos_blackout", N: 5}}},
	}}
	Annotate(calm, New(prof, 77), DefaultThresholds())
	if calm.Degraded || len(calm.DegradedStages) != 0 {
		t.Fatalf("sub-threshold run marked degraded: %+v", calm)
	}
}

// TestTimelineInstantsObservabilityOnly: attaching a timeline records one
// instant per injected fault without changing a single decision — recording
// is a pure side channel of the same pure-hash rolls.
func TestTimelineInstantsObservabilityOnly(t *testing.T) {
	prof, _ := ParseProfile("heavy")
	plain := New(prof, 7)
	traced := New(prof, 7)
	tr := obs.NewTracer()
	tr.EnableTimeline()
	traced.SetTimeline(tr)

	faults := 0
	for addr := int64(0); addr < 400; addr++ {
		a, b := plain.TargetBlackout(addr), traced.TargetBlackout(addr)
		if a != b {
			t.Fatalf("TargetBlackout(%d) diverged with timeline attached: %v vs %v", addr, a, b)
		}
		if b {
			faults++
		}
		if p, q := plain.HopSilenced(addr), traced.HopSilenced(addr); p != q {
			t.Fatalf("HopSilenced(%d) diverged: %v vs %v", addr, p, q)
		}
		mp, okp := plain.Straggler(addr, 3)
		mq, okq := traced.Straggler(addr, 3)
		if okp != okq || mp != mq {
			t.Fatalf("Straggler(%d) diverged: (%g,%v) vs (%g,%v)", addr, mp, okp, mq, okq)
		}
	}
	if faults == 0 {
		t.Fatal("heavy profile injected no blackouts over 400 targets")
	}

	instants := tr.Instants()
	blackouts := 0
	for _, in := range instants {
		if in.Name == "chaos.blackout" {
			blackouts++
		}
	}
	if blackouts != faults {
		t.Fatalf("recorded %d chaos.blackout instants for %d injected blackouts", blackouts, faults)
	}

	// Detached or disabled timelines record nothing.
	traced.SetTimeline(nil)
	if traced.TargetBlackout(0) != plain.TargetBlackout(0) {
		t.Fatal("detaching the timeline changed a decision")
	}
	cold := obs.NewTracer() // EnableTimeline never called
	traced.SetTimeline(cold)
	for addr := int64(0); addr < 50; addr++ {
		traced.TargetBlackout(addr)
	}
	if len(cold.Instants()) != 0 {
		t.Fatal("disabled timeline recorded instants")
	}

	// TransientLost is the pure replay audit: it must never record instants
	// even on a live timeline.
	traced.SetTimeline(tr)
	before := len(tr.Instants())
	for i := int64(0); i < 200; i++ {
		traced.TransientLost(StagePing, i, 0)
	}
	if got := len(tr.Instants()); got != before {
		t.Fatalf("TransientLost recorded %d instants", got-before)
	}
}

// TestAttemptsTimelineInstants: the retry engine lands chaos.retry per
// consumed retry and chaos.transient per exhaustion on the timeline, matching
// its own counters exactly.
func TestAttemptsTimelineInstants(t *testing.T) {
	prof, _ := ParseProfile("heavy")
	prof.Retry.BaseBackoff = 0 // no sleeping in tests
	in := New(prof, 7)
	tr := obs.NewTracer()
	tr.EnableTimeline()
	in.SetTimeline(tr)

	r0, t0 := in.Retries.Value(), in.Transients.Value()
	for i := int64(0); i < 3000; i++ {
		in.Attempts(StagePing, i, 0)
	}
	retries, transients := 0, 0
	for _, ev := range tr.Instants() {
		switch ev.Name {
		case "chaos.retry":
			retries++
		case "chaos.transient":
			transients++
		}
	}
	if int64(retries) != in.Retries.Value()-r0 {
		t.Fatalf("chaos.retry instants %d != retries counter delta %d", retries, in.Retries.Value()-r0)
	}
	if int64(transients) != in.Transients.Value()-t0 {
		t.Fatalf("chaos.transient instants %d != transients counter delta %d", transients, in.Transients.Value()-t0)
	}
	if transients == 0 {
		t.Fatal("heavy profile exhausted no retries over 3000 items")
	}
}
