// Package chaos is the deterministic fault-injection layer: it perturbs
// every measurement stage of the reproduction — probe loss, target
// blackouts and RTT stragglers in the mlab ping campaign, hop silence,
// unmapped-address noise and truncation in the tracert survey, cert fetch
// failures and mangled certificates in the TLS-scan classification, and
// transient per-item errors (with bounded retry) everywhere — the failure
// shapes the paper's real pipelines face (§3.2, §4.2.1, Appendix A).
//
// Every fault decision is a pure hash of (chaos seed, fault kind, item
// labels) via rngutil.Derive substreams: no sequential stream is ever
// advanced, so decisions are independent of worker count and schedule, runs
// are byte-identical for a fixed (seed, chaos-seed, workers) triple, and
// the fault set at probability p is a strict subset of the set at p' > p
// (the nesting the monotonicity properties in prop_test.go rely on).
//
// Injected faults are never silent: each one lands in a chaos.* counter
// and, at the drop site, in a chaos_-prefixed funnel drop reason, so
// REPORT.md and runsdiff reconcile under chaos exactly as they do clean.
// All chaos metrics are registered lazily by New — a run with chaos off
// carries no trace of this package in its manifest.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"

	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
)

// RetryPolicy bounds the retry loop for transient per-item faults.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first;
	// values <= 0 mean 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it, capped at MaxBackoff. Backoff burns wall clock only —
	// results are merged by index, never by completion order.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) sanitized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	return p
}

// Backoff returns the sleep before retry number retry (0-based).
func (p RetryPolicy) Backoff(retry int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < retry && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Profile is one named fault mix. All probabilities are per-item; zero
// disables that fault kind.
type Profile struct {
	Name string

	// Ping campaign (internal/mlab).
	BlackoutProb   float64 // whole offnet target goes dark for the campaign
	ProbeLossExtra float64 // additional per-probe loss on top of Config.ProbeLoss
	StragglerProb  float64 // per-(target,site) path inflates by StragglerMs
	StragglerMs    float64

	// Traceroute survey (internal/tracert).
	TruncateProb  float64 // per-trace early termination
	HopSilentProb float64 // per-interface forced '*' lines
	HopNoiseProb  float64 // per-interface response from unmapped address space

	// TLS-scan classification (internal/offnetmap).
	CertFailProb   float64 // cert fetch fails, record unusable
	CertMangleProb float64 // cert arrives malformed, record unusable

	// Transient per-item errors under par workers, retried per Retry.
	TransientProb float64
	Retry         RetryPolicy
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.BlackoutProb > 0 || p.ProbeLossExtra > 0 || p.StragglerProb > 0 ||
		p.TruncateProb > 0 || p.HopSilentProb > 0 || p.HopNoiseProb > 0 ||
		p.CertFailProb > 0 || p.CertMangleProb > 0 || p.TransientProb > 0
}

// DefaultRetry is the retry policy of the named profiles: up to 3 attempts
// with a 50µs→500µs exponential backoff (kept tiny so chaos runs stay
// test-sized; the policy shape, not the absolute sleeps, is what the
// degradation semantics depend on).
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Microsecond, MaxBackoff: 500 * time.Microsecond}
}

// ParseProfile resolves a -chaos flag value to a profile. "off" (or the
// empty string) disables injection.
func ParseProfile(name string) (Profile, error) {
	switch name {
	case "", "off", "none":
		return Profile{Name: "off"}, nil
	case "light":
		return Profile{
			Name:           "light",
			BlackoutProb:   0.02,
			ProbeLossExtra: 0.05,
			StragglerProb:  0.05,
			StragglerMs:    15,
			TruncateProb:   0.05,
			HopSilentProb:  0.05,
			HopNoiseProb:   0.02,
			CertFailProb:   0.05,
			CertMangleProb: 0.02,
			TransientProb:  0.05,
			Retry:          DefaultRetry(),
		}, nil
	case "heavy":
		return Profile{
			Name:           "heavy",
			BlackoutProb:   0.20,
			ProbeLossExtra: 0.20,
			StragglerProb:  0.20,
			StragglerMs:    40,
			TruncateProb:   0.20,
			HopSilentProb:  0.20,
			HopNoiseProb:   0.05,
			CertFailProb:   0.20,
			CertMangleProb: 0.05,
			TransientProb:  0.20,
			Retry:          DefaultRetry(),
		}, nil
	}
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (want off, light or heavy)", name)
}

// Stage labels for Attempts/TransientLost: one substream per retryable
// stage, so a ping item and a traceroute with colliding numeric labels
// still draw independent fault streams.
var (
	StagePing  = rngutil.Label("mlab.ping")
	StageTrace = rngutil.Label("tracert.trace")
)

// Fault-kind labels. Private: callers pick faults through the typed
// decision methods, never raw labels.
var (
	lblChaos      = rngutil.Label("chaos")
	lblBlackout   = rngutil.Label("mlab.blackout")
	lblProbeLoss  = rngutil.Label("mlab.probe_loss")
	lblStraggler  = rngutil.Label("mlab.straggler")
	lblTruncate   = rngutil.Label("tracert.truncate")
	lblTruncateAt = rngutil.Label("tracert.truncate_at")
	lblHopSilent  = rngutil.Label("tracert.hop_silent")
	lblHopNoise   = rngutil.Label("tracert.hop_noise")
	lblCertFail   = rngutil.Label("scan.cert_fail")
	lblCertMangle = rngutil.Label("scan.cert_mangle")
	lblTransient  = rngutil.Label("transient")
)

// Injector decides and accounts injected faults. A nil *Injector is the
// chaos-off state: every decision method returns "no fault" and nothing is
// registered in the metrics registry — callers thread it unconditionally.
//
// Decision methods are pure (same labels, same answer, no state) so tests
// and audits can replay any decision; the only side effect is an optional
// timeline instant per injected fault, which never feeds back into a
// decision. Accounting happens at the call sites
// through the exported counters, except the retry engine (Attempts), which
// owns chaos.retries_total / chaos.transients_total itself.
type Injector struct {
	prof Profile
	seed int64

	// timeline, when attached (Pipeline.Instrument) and enabled on the
	// tracer (-trace), receives one instant event per injected fault, so
	// the Perfetto export shows exactly when each fault landed. Recording
	// is observability-only: decisions stay pure hashes either way.
	timeline atomic.Pointer[obs.Tracer]

	// Fault counters, registered by New only — so chaos-off manifests are
	// byte-identical to a build without this package.
	Blackouts       *obs.Counter
	ProbesLost      *obs.Counter
	Stragglers      *obs.Counter
	HopsSilenced    *obs.Counter
	HopsNoised      *obs.Counter
	TracesTruncated *obs.Counter
	CertsFailed     *obs.Counter
	CertsMangled    *obs.Counter
	Retries         *obs.Counter
	Transients      *obs.Counter
}

// New builds an injector for the profile, seeded independently of the world
// seed. It returns nil — the disabled injector — when the profile injects
// nothing.
func New(prof Profile, seed int64) *Injector {
	if !prof.Enabled() {
		return nil
	}
	return &Injector{
		prof: prof,
		seed: seed,
		Blackouts: obs.NewCounter("chaos.blackouts_total",
			"offnet targets blacked out for the whole campaign by fault injection"),
		ProbesLost: obs.NewCounter("chaos.probes_lost_total",
			"individual ping probes dropped by fault injection"),
		Stragglers: obs.NewCounter("chaos.stragglers_total",
			"(target,site) paths inflated by the straggler fault"),
		HopsSilenced: obs.NewCounter("chaos.hops_silenced_total",
			"traceroute hops forced to '*' by fault injection"),
		HopsNoised: obs.NewCounter("chaos.hops_noised_total",
			"traceroute hops answered from unmapped address space by fault injection"),
		TracesTruncated: obs.NewCounter("chaos.traces_truncated_total",
			"traceroutes cut short by fault injection"),
		CertsFailed: obs.NewCounter("chaos.certs_failed_total",
			"scan records whose certificate fetch was failed by fault injection"),
		CertsMangled: obs.NewCounter("chaos.certs_mangled_total",
			"scan records whose certificate was mangled by fault injection"),
		Retries: obs.NewCounter("chaos.retries_total",
			"retry attempts consumed by injected transient faults"),
		Transients: obs.NewCounter("chaos.transients_total",
			"items lost to injected transient faults after exhausting retries"),
	}
}

// SetTimeline attaches (or, with nil, detaches) the tracer whose timeline
// receives chaos-fault instant events. Safe on a nil injector; instants are
// recorded only while the tracer's timeline is enabled (the -trace flag).
func (in *Injector) SetTimeline(tr *obs.Tracer) {
	if in != nil {
		in.timeline.Store(tr)
	}
}

// timelineOn returns the attached tracer when instant recording is live,
// nil otherwise. The disabled path — one atomic load plus one bool load —
// is what per-probe decision methods pay; attribute maps are only built
// after a non-nil return.
func (in *Injector) timelineOn() *obs.Tracer {
	tr := in.timeline.Load()
	if !tr.TimelineEnabled() {
		return nil
	}
	return tr
}

// Enabled reports whether the injector injects faults (false for nil).
func (in *Injector) Enabled() bool { return in != nil }

// ProfileName returns the profile name ("off" for nil).
func (in *Injector) ProfileName() string {
	if in == nil {
		return "off"
	}
	return in.prof.Name
}

// Seed returns the chaos seed (0 for nil).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Profile returns the active profile (the zero profile for nil).
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{Name: "off"}
	}
	return in.prof
}

// roll is the single uniform draw behind every decision: a pure hash of
// (chaos seed, fault kind, item labels) in [0,1). Fixed arity keeps the
// per-probe hot path free of variadic slice allocation.
func (in *Injector) roll(kind, a, b, c int64) float64 {
	f := rngutil.NewFast(uint64(rngutil.Derive(in.seed, lblChaos, kind, a, b, c)))
	return f.Float64()
}

// TargetBlackout reports whether the offnet target is dark for the whole
// campaign.
func (in *Injector) TargetBlackout(addr int64) bool {
	if in == nil || in.prof.BlackoutProb <= 0 ||
		in.roll(lblBlackout, addr, 0, 0) >= in.prof.BlackoutProb {
		return false
	}
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.blackout", map[string]any{"target": addr})
	}
	return true
}

// ProbeLost reports whether one ping probe of a (target, site) pair is
// dropped on top of the natural loss model.
func (in *Injector) ProbeLost(addr, site, probe int64) bool {
	if in == nil || in.prof.ProbeLossExtra <= 0 ||
		in.roll(lblProbeLoss, addr, site, probe) >= in.prof.ProbeLossExtra {
		return false
	}
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.probe_lost", map[string]any{"target": addr, "site": site, "probe": probe})
	}
	return true
}

// Straggler returns the extra milliseconds the (target, site) path carries,
// with ok=false when the path is unaffected.
func (in *Injector) Straggler(addr, site int64) (ms float64, ok bool) {
	if in == nil || in.prof.StragglerProb <= 0 ||
		in.roll(lblStraggler, addr, site, 0) >= in.prof.StragglerProb {
		return 0, false
	}
	// 0.5×–1.5× the profile magnitude, itself a pure hash.
	extra := in.prof.StragglerMs * (0.5 + in.roll(lblStraggler, addr, site, 1))
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.straggler", map[string]any{"target": addr, "site": site, "extra_ms": extra})
	}
	return extra, true
}

// TruncateAt returns the hop count to keep for a trace of n hops, with
// ok=false when the trace survives intact. Kept counts are in [1, n-1].
func (in *Injector) TruncateAt(vm, target int64, n int) (int, bool) {
	if in == nil || in.prof.TruncateProb <= 0 || n <= 1 ||
		in.roll(lblTruncate, vm, target, 0) >= in.prof.TruncateProb {
		return 0, false
	}
	keep := 1 + int(in.roll(lblTruncateAt, vm, target, 0)*float64(n-1))
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.truncate", map[string]any{"vm": vm, "target": target, "keep": keep})
	}
	return keep, true
}

// HopSilenced reports whether a (naturally responsive) router interface is
// forced silent — stable per address, like the natural silent fraction.
func (in *Injector) HopSilenced(addr int64) bool {
	if in == nil || in.prof.HopSilentProb <= 0 ||
		in.roll(lblHopSilent, addr, 0, 0) >= in.prof.HopSilentProb {
		return false
	}
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.hop_silent", map[string]any{"addr": addr})
	}
	return true
}

// HopNoised reports whether a router interface answers from an address the
// IP-to-AS mapping cannot resolve (the unmapped-hop noise of §4.2.1).
func (in *Injector) HopNoised(addr int64) bool {
	if in == nil || in.prof.HopNoiseProb <= 0 ||
		in.roll(lblHopNoise, addr, 0, 0) >= in.prof.HopNoiseProb {
		return false
	}
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.hop_noise", map[string]any{"addr": addr})
	}
	return true
}

// NoiseLow8 returns the stable low byte for the hop's replacement address
// inside the caller's unrouted noise prefix.
func (in *Injector) NoiseLow8(addr int64) uint8 {
	if in == nil {
		return 0
	}
	return uint8(in.roll(lblHopNoise, addr, 1, 0) * 256)
}

// CertFetchFailed reports whether the scan record's certificate fetch
// failed. Keyed by address only, so every classification pass over the same
// scan agrees.
func (in *Injector) CertFetchFailed(addr int64) bool {
	if in == nil || in.prof.CertFailProb <= 0 ||
		in.roll(lblCertFail, addr, 0, 0) >= in.prof.CertFailProb {
		return false
	}
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.cert_fail", map[string]any{"addr": addr})
	}
	return true
}

// CertMangled reports whether the record's certificate arrived malformed.
func (in *Injector) CertMangled(addr int64) bool {
	if in == nil || in.prof.CertMangleProb <= 0 ||
		in.roll(lblCertMangle, addr, 0, 0) >= in.prof.CertMangleProb {
		return false
	}
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.cert_mangle", map[string]any{"addr": addr})
	}
	return true
}

// Attempts runs the transient-fault retry loop for one item of a stage
// BEFORE the caller does the real work: each attempt independently fails
// with TransientProb; the first surviving attempt returns ok=true and the
// caller then runs the operation exactly once. This is what keeps funnel
// accounting single-count under retry — the item enters its stage funnel
// once regardless of attempts, while the attempts themselves land in
// chaos.retries_total (and exhaustion in chaos.transients_total, after
// which the caller drops the item with a chaos_transient funnel reason).
//
// retries is the number of re-attempts performed (0 on first-try success).
// Backoff sleeps between attempts per the profile's policy; sleeping cannot
// perturb results because merges are index-addressed.
func (in *Injector) Attempts(stage, a, b int64) (retries int, ok bool) {
	if in == nil || in.prof.TransientProb <= 0 {
		return 0, true
	}
	pol := in.prof.Retry.sanitized()
	for att := 0; att < pol.MaxAttempts; att++ {
		if in.roll(lblTransient, stage, mix2(a, b), int64(att)) >= in.prof.TransientProb {
			return att, true
		}
		if att == pol.MaxAttempts-1 {
			break
		}
		in.Retries.Inc()
		if tr := in.timelineOn(); tr != nil {
			tr.Instant("chaos.retry", map[string]any{"stage": stage, "item": mix2(a, b), "attempt": att})
		}
		if d := pol.Backoff(att); d > 0 {
			time.Sleep(d)
		}
	}
	in.Transients.Inc()
	if tr := in.timelineOn(); tr != nil {
		tr.Instant("chaos.transient", map[string]any{"stage": stage, "item": mix2(a, b)})
	}
	return pol.MaxAttempts - 1, false
}

// TransientLost replays the Attempts decision without touching any counter
// or sleeping: true when the item would exhaust its retries. Used by the
// property suite to audit what the pipeline should have dropped.
func (in *Injector) TransientLost(stage, a, b int64) bool {
	if in == nil || in.prof.TransientProb <= 0 {
		return false
	}
	pol := in.prof.Retry.sanitized()
	for att := 0; att < pol.MaxAttempts; att++ {
		if in.roll(lblTransient, stage, mix2(a, b), int64(att)) >= in.prof.TransientProb {
			return false
		}
	}
	return true
}

// mix2 folds two item labels into one so Attempts keeps the fixed-arity
// roll while distinguishing (a, b) from (b, a).
func mix2(a, b int64) int64 {
	return rngutil.Derive(a, b)
}
