// Property-based conformance suite for the fault-injection layer: for a few
// hundred derived (chaos seed, profile) pairs, the pipelines under chaos must
// keep every funnel balanced, never leak a dropped target into downstream
// clustering, shrink the usable-ISP set monotonically with the fault rate,
// and mark the run degraded exactly when a stage crosses its threshold.
package chaos_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/coloc"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/offnetmap"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/scan"
	"offnetrisk/internal/tracert"
	"offnetrisk/internal/traffic"
)

// propSeed roots every derived chaos seed in the suite.
const propSeed = 0x5EED5

// fixture is the world the whole suite perturbs, built once: chaos must
// never mutate the substrate, only the measurements taken over it.
var fixture struct {
	once  sync.Once
	w     *inet.World
	d     *hypergiant.Deployment
	recs  []scan.Record
	sites []mlab.Site
}

func propFixture(t *testing.T) (*inet.World, *hypergiant.Deployment, []scan.Record, []mlab.Site) {
	t.Helper()
	fixture.once.Do(func() {
		fixture.w = inet.Generate(inet.TinyConfig(7))
		d, err := hypergiant.Deploy(fixture.w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		fixture.d = d
		recs, err := scan.Simulate(d, scan.DefaultConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		fixture.recs = recs
		fixture.sites = mlab.Sites(40, 7)
	})
	return fixture.w, fixture.d, fixture.recs, fixture.sites
}

// randomProfile derives the i-th arbitrary profile: each fault kind is off
// ~1/3 of the time, otherwise drawn up to rates well past "heavy". Backoff
// is zero so retries never sleep in tests.
func randomProfile(i int64) chaos.Profile {
	f := rngutil.NewFast(uint64(rngutil.Derive(propSeed, 1, i)))
	draw := func(max float64) float64 {
		if f.Float64() < 1.0/3 {
			return 0
		}
		return f.Float64() * max
	}
	return chaos.Profile{
		Name:           "prop",
		BlackoutProb:   draw(0.35),
		ProbeLossExtra: draw(0.35),
		StragglerProb:  draw(0.5),
		StragglerMs:    5 + f.Float64()*45,
		TruncateProb:   draw(0.5),
		HopSilentProb:  draw(0.5),
		HopNoiseProb:   draw(0.25),
		CertFailProb:   draw(0.35),
		CertMangleProb: draw(0.2),
		TransientProb:  draw(0.35),
		Retry:          chaos.RetryPolicy{MaxAttempts: 1 + int(f.Uint64()%4)},
	}
}

// pingCampaign runs the measurement stage against the fixture under inj.
func pingCampaign(t *testing.T, inj *chaos.Injector) *mlab.Campaign {
	t.Helper()
	_, d, _, sites := propFixture(t)
	cfg := mlab.DefaultConfig(7)
	cfg.Probes = 4
	cfg.MinSites = 25
	cfg.Workers = 4
	cfg.Chaos = inj
	return mlab.Measure(d, sites, cfg)
}

// auditDegraded recomputes the degradation verdict from raw snapshots with
// independent arithmetic and checks Annotate agrees.
func auditDegraded(t *testing.T, inj *chaos.Injector, snaps []obs.FunnelSnapshot) {
	t.Helper()
	th := chaos.DefaultThresholds()
	m := &obs.Manifest{Funnels: snaps}
	chaos.Annotate(m, inj, th)

	var wantStages []string
	for _, s := range snaps {
		var chaosDrops int64
		for _, dr := range s.Drops {
			if strings.HasPrefix(dr.Reason, chaos.ChaosReasonPrefix) {
				chaosDrops += dr.N
			}
		}
		if s.In > 0 && float64(chaosDrops)/float64(s.In) > th.For(s.Name) {
			wantStages = append(wantStages, s.Name)
		}
	}
	sort.Strings(wantStages)

	if inj == nil {
		if m.Degraded || m.ChaosProfile != "" || len(wantStages) != 0 {
			t.Fatalf("clean run degraded: manifest=%+v stages=%v", m, wantStages)
		}
		return
	}
	if m.Degraded != (len(wantStages) > 0) {
		t.Fatalf("degraded=%v but %d stages over threshold (%v)", m.Degraded, len(wantStages), wantStages)
	}
	if len(m.DegradedStages) != len(wantStages) {
		t.Fatalf("DegradedStages = %v, independent audit says %v", m.DegradedStages, wantStages)
	}
	for i := range wantStages {
		if m.DegradedStages[i] != wantStages[i] {
			t.Fatalf("DegradedStages = %v, independent audit says %v", m.DegradedStages, wantStages)
		}
	}
}

// TestPropertyPingAndClassify is the core property loop: across 200 derived
// (seed, profile) pairs, the ping campaign and the cert classification keep
// every funnel balanced, chaos losses replay exactly, and the degradation
// verdict matches an independent recomputation.
func TestPropertyPingAndClassify(t *testing.T) {
	w, d, recs, _ := propFixture(t)
	iters := int64(200)
	if testing.Short() {
		iters = 40
	}
	rules := offnetmap.Rules2023()
	for i := int64(0); i < iters; i++ {
		obs.Default.Reset()
		prof := randomProfile(i)
		inj := chaos.New(prof, rngutil.Derive(propSeed, 2, i))

		c := pingCampaign(t, inj)
		res := offnetmap.InferChaos(w, recs, rules, inj)

		// Replay audit: the campaign's chaos-lost count must equal a pure
		// replay of the blackout/transient decisions over the deployment.
		var wantLost int
		lostISP := make(map[inet.ASN]bool)
		for _, s := range d.Servers {
			if !s.Responsive {
				continue
			}
			if inj.TargetBlackout(int64(s.Addr)) || inj.TransientLost(chaos.StagePing, int64(s.Addr), 0) {
				wantLost++
				lostISP[s.ISP] = true
			}
		}
		if c.ChaosLost != wantLost {
			t.Fatalf("iter %d: campaign lost %d targets, replay says %d", i, c.ChaosLost, wantLost)
		}

		// No usable ISP may have lost an offnet; no surviving measurement
		// may reference a chaos-lost address.
		for as, ms := range c.ByISP {
			if lostISP[as] {
				t.Fatalf("iter %d: ISP %d usable despite a chaos-lost offnet", i, as)
			}
			for _, m := range ms {
				if inj.TargetBlackout(int64(m.Target.Addr)) ||
					inj.TransientLost(chaos.StagePing, int64(m.Target.Addr), 0) {
					t.Fatalf("iter %d: dropped target %v survived into ISP %d", i, m.Target.Addr, as)
				}
			}
		}

		// Classification audit: no inferred offnet may carry a failed or
		// mangled certificate.
		for _, o := range res.Offnets {
			if inj.CertFetchFailed(int64(o.Addr)) || inj.CertMangled(int64(o.Addr)) {
				t.Fatalf("iter %d: offnet %v classified from a chaos-dropped record", i, o.Addr)
			}
		}

		snaps := obs.Default.FunnelSnapshots()
		for _, s := range snaps {
			if !s.Balanced() {
				t.Fatalf("iter %d: funnel %s unbalanced under chaos: %+v", i, s.Name, s)
			}
		}
		auditDegraded(t, inj, snaps)
	}
}

// TestPropertyColocClustersExcludeDropped: clustering only ever sees
// surviving measurements — for sampled profiles, every cluster label indexes
// a measurement whose target provably survived the fault replay.
func TestPropertyColocClustersExcludeDropped(t *testing.T) {
	w, _, _, _ := propFixture(t)
	iters := int64(20)
	if testing.Short() {
		iters = 6
	}
	for i := int64(0); i < iters; i++ {
		obs.Default.Reset()
		prof := randomProfile(1000 + i)
		inj := chaos.New(prof, rngutil.Derive(propSeed, 3, i))
		c := pingCampaign(t, inj)
		a := coloc.Analyze(w, c, []float64{0.9})
		for as, r := range a.PerISP {
			ms := c.ByISP[as]
			xr := r.PerXi[0.9]
			if xr == nil || len(xr.Labels) != len(ms) {
				t.Fatalf("iter %d: ISP %d labels misaligned with measurements", i, as)
			}
			for j := range xr.Labels {
				addr := int64(ms[j].Target.Addr)
				if inj.TargetBlackout(addr) || inj.TransientLost(chaos.StagePing, addr, 0) {
					t.Fatalf("iter %d: cluster label %d of ISP %d references dropped target", i, j, as)
				}
			}
		}
	}
}

// TestPropertyISPGateMonotone: raising the fault rate can only shrink the
// usable-ISP set — the fault sets are nested across probabilities and the
// survivors' measurement streams are untouched, so usable(p') ⊆ usable(p)
// for p' > p, seed by seed.
func TestPropertyISPGateMonotone(t *testing.T) {
	_, _, _, _ = propFixture(t)
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	probs := []float64{0, 0.02, 0.05, 0.1, 0.25, 0.5}
	for cs := int64(0); cs < seeds; cs++ {
		chaosSeed := rngutil.Derive(propSeed, 4, cs)
		var prev map[inet.ASN]bool
		prevMeasured := -1
		for _, p := range probs {
			obs.Default.Reset()
			// Blackout + transient only: probe loss would perturb survivors'
			// RTT vectors and break strict nesting of the natural gate.
			prof := chaos.Profile{
				Name: "mono", BlackoutProb: p / 2, TransientProb: p / 2,
				Retry: chaos.RetryPolicy{MaxAttempts: 2},
			}
			c := pingCampaign(t, chaos.New(prof, chaosSeed))
			cur := make(map[inet.ASN]bool, len(c.ByISP))
			for as := range c.ByISP {
				cur[as] = true
			}
			if prev != nil {
				if c.MeasuredISPs > prevMeasured {
					t.Fatalf("seed %d: usable ISPs grew from %d to %d at p=%v", cs, prevMeasured, c.MeasuredISPs, p)
				}
				for as := range cur {
					if !prev[as] {
						t.Fatalf("seed %d: ISP %d usable at p=%v but not at the lower rate", cs, as, p)
					}
				}
			}
			prev, prevMeasured = cur, c.MeasuredISPs
		}
	}
}

// TestPropertyTracertFunnelsBalanced: the traceroute survey's attempt and
// hop funnels reconcile under arbitrary profiles, and the attempted count
// replays from the chaos decisions.
func TestPropertyTracertFunnelsBalanced(t *testing.T) {
	w, d, _, _ := propFixture(t)
	iters := int64(25)
	if testing.Short() {
		iters = 6
	}
	for i := int64(0); i < iters; i++ {
		obs.Default.Reset()
		prof := randomProfile(2000 + i)
		inj := chaos.New(prof, rngutil.Derive(propSeed, 5, i))
		cfg := tracert.DefaultConfig(7)
		cfg.VMs = 6
		cfg.TargetsPerISP = 2
		cfg.Workers = 4
		cfg.Chaos = inj
		traces := tracert.Survey(d, traffic.Google, cfg)
		tracert.Infer(w, traffic.Google, d.ContentAS[traffic.Google], traces)

		var issued int64
		for _, trs := range traces {
			issued += int64(len(trs))
		}
		snaps := obs.Default.FunnelSnapshots()
		var attempts, hops obs.FunnelSnapshot
		for _, s := range snaps {
			if !s.Balanced() {
				t.Fatalf("iter %d: funnel %s unbalanced: %+v", i, s.Name, s)
			}
			switch s.Name {
			case "tracert.traces":
				attempts = s
			case "tracert.hops":
				hops = s
			}
		}
		if inj.Enabled() {
			if attempts.Name == "" {
				t.Fatalf("iter %d: chaos run missing the tracert.traces funnel", i)
			}
			if attempts.Out != issued {
				t.Fatalf("iter %d: attempts funnel kept %d traces, survey issued %d", i, attempts.Out, issued)
			}
			if attempts.In != issued+attempts.DropN("chaos_transient") {
				t.Fatalf("iter %d: attempts funnel does not reconcile: %+v", i, attempts)
			}
		}
		if hops.Name == "" || hops.In == 0 {
			t.Fatalf("iter %d: hop funnel never fed: %+v", i, hops)
		}
		auditDegraded(t, inj, snaps)
	}
}
