package chaos

import (
	"sort"
	"strings"

	"offnetrisk/internal/obs"
)

// Degradation semantics: a stage that loses more than a configurable
// fraction of its inputs to injected faults marks the run *degraded* in the
// manifest instead of failing it. Degradation is computed from the funnel
// snapshots alone — the same accounting REPORT.md prints and runsdiff
// compares — by summing the chaos_-prefixed drop reasons per funnel. A
// clean run can therefore never be degraded: without an injector no
// chaos_* reason is ever registered.

// ChaosReasonPrefix marks funnel drop reasons attributable to injected
// faults.
const ChaosReasonPrefix = "chaos_"

// DefaultThreshold is the chaos-drop fraction above which a stage counts as
// degraded when Thresholds.PerStage has no entry for it.
const DefaultThreshold = 0.10

// Thresholds is the per-stage degradation threshold table.
type Thresholds struct {
	// Default applies to any funnel not listed in PerStage; <= 0 means
	// DefaultThreshold.
	Default  float64
	PerStage map[string]float64
}

// DefaultThresholds is the table DESIGN.md §9 documents: 10% everywhere,
// except the ISP gate, where a single blacked-out offnet already disquali-
// fies its whole ISP, so the same target-level fault rate produces a much
// larger ISP-level drop fraction.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Default: DefaultThreshold,
		PerStage: map[string]float64{
			"ping.isp_gate": 0.50,
		},
	}
}

// For returns the threshold for a funnel name.
func (t Thresholds) For(stage string) float64 {
	if v, ok := t.PerStage[stage]; ok {
		return v
	}
	if t.Default > 0 {
		return t.Default
	}
	return DefaultThreshold
}

// ChaosDropFraction returns the fraction of a funnel's inputs dropped for
// chaos_-prefixed reasons; 0 when the funnel saw no items.
func ChaosDropFraction(s obs.FunnelSnapshot) float64 {
	if s.In == 0 {
		return 0
	}
	var n int64
	for _, d := range s.Drops {
		if strings.HasPrefix(d.Reason, ChaosReasonPrefix) {
			n += d.N
		}
	}
	return float64(n) / float64(s.In)
}

// DegradedStages returns, sorted by name, the funnels whose chaos-drop
// fraction exceeds their threshold.
func DegradedStages(snaps []obs.FunnelSnapshot, t Thresholds) []string {
	var out []string
	for _, s := range snaps {
		if ChaosDropFraction(s) > t.For(s.Name) {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Annotate stamps a manifest with the injector's identity and the
// degradation verdict computed from the manifest's own funnel snapshots.
// No-op for a nil injector, so clean manifests stay byte-identical.
func Annotate(m *obs.Manifest, in *Injector, t Thresholds) {
	if in == nil {
		return
	}
	m.ChaosProfile = in.ProfileName()
	m.ChaosSeed = in.Seed()
	m.DegradedStages = DegradedStages(m.Funnels, t)
	m.Degraded = len(m.DegradedStages) > 0
}
