package rngutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestZipfSumAndShape(t *testing.T) {
	r := New(1)
	xs := Zipf(r, 1000, 1.1, 1e6)
	var sum float64
	for _, x := range xs {
		if x < 0 {
			t.Fatalf("negative mass %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1e6) > 1 {
		t.Errorf("sum = %v, want 1e6", sum)
	}
	// Head-heavy: first decile should hold far more mass than last decile.
	var head, tail float64
	for i := 0; i < 100; i++ {
		head += xs[i]
	}
	for i := 900; i < 1000; i++ {
		tail += xs[i]
	}
	if head < 5*tail {
		t.Errorf("Zipf not head-heavy: head=%v tail=%v", head, tail)
	}
}

func TestZipfEdgeCases(t *testing.T) {
	r := New(1)
	if got := Zipf(r, 0, 1, 100); got != nil {
		t.Errorf("n=0 should return nil, got %v", got)
	}
	one := Zipf(r, 1, 1, 100)
	if len(one) != 1 || math.Abs(one[0]-100) > 1e-9 {
		t.Errorf("n=1 should carry all mass: %v", one)
	}
}

func TestIntBetween(t *testing.T) {
	r := New(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := IntBetween(r, 3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn", v)
		}
	}
	if got := IntBetween(r, 5, 5); got != 5 {
		t.Errorf("degenerate range: got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("hi < lo should panic")
		}
	}()
	IntBetween(r, 2, 1)
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(11)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(r, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("ratio = %v, want ≈3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := New(3)
	if got := WeightedChoice(r, []float64{0, 0, 0}); got != 2 {
		t.Errorf("all-zero weights should return last index, got %d", got)
	}
}

func TestWeightedChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty weights should panic")
		}
	}()
	WeightedChoice(New(1), nil)
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(5)
	f := func(seed int64) bool {
		rr := New(seed)
		n, k := 20, 7
		s := SampleWithoutReplacement(rr, n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// k > n clamps.
	s := SampleWithoutReplacement(r, 3, 10)
	if len(s) != 3 {
		t.Errorf("k>n should clamp: got %d", len(s))
	}
}

func TestJitterBounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := Jitter(r, 100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("jitter out of bounds: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if v := LogNormal(r, 2, 1); v <= 0 {
			t.Fatalf("log-normal must be positive: %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("p=0 fired")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("p=1 did not fire")
		}
	}
}

func TestDescending(t *testing.T) {
	xs := Descending([]float64{3, 1, 2})
	if xs[0] != 3 || xs[1] != 2 || xs[2] != 1 {
		t.Errorf("not descending: %v", xs)
	}
}

func TestFastDeterministicAndUniform(t *testing.T) {
	a, b := NewFast(99), NewFast(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fast not deterministic")
		}
	}
	f := NewFast(7)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := f.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Errorf("Fast mean = %v, want ≈0.5", mean)
	}
	for i := 0; i < 1000; i++ {
		if v := f.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	f.Intn(0)
}
