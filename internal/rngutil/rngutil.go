// Package rngutil provides deterministic random-draw helpers shared by all
// synthetic generators. Every generator in the reproduction takes an explicit
// *rand.Rand so that whole experiments are reproducible from a single seed.
package rngutil

import (
	"math"
	"math/rand"
	"sort"
)

// New returns a rand.Rand seeded with the given seed. It exists so callers
// never reach for the global source.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derive mixes a base seed with one or more labels into the seed of an
// independent substream. It is the splittable-RNG rule of DESIGN.md §8:
// instead of advancing one shared stream inside a loop, each unit of work
// (a target IP, a /24 trace, a Monte Carlo trial) derives its own stream
// from the run seed plus stable labels, so results are byte-identical at
// any worker count — including one.
//
// Each label is folded in with a splitmix64-style finalizer, so Derive(s, a)
// and Derive(s, b) are decorrelated even for adjacent a, b, and
// Derive(s, a, b) differs from Derive(s, b, a).
func Derive(seed int64, labels ...int64) int64 {
	h := uint64(seed)
	for _, l := range labels {
		h ^= uint64(l) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}

// Label folds a string into a Derive label (FNV-1a), so substreams can be
// named after what they perturb ("chaos", "mlab.blackout") instead of
// numbered by convention. Stable across processes and platforms.
func Label(s string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// Zipf draws n samples from a Zipf-like distribution over ranks 1..n with
// exponent s, normalized so the samples sum to total. This is the shape of
// per-ISP Internet user populations (a few eyeball giants, a long tail),
// mirroring the APNIC population dataset the paper weights Figure 1 and
// Figure 2 by.
func Zipf(r *rand.Rand, n int, s float64, total float64) []float64 {
	if n <= 0 {
		return nil
	}
	weights := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		// Base Zipf mass with mild multiplicative noise so ties break
		// differently across seeds.
		w := 1 / math.Pow(float64(i+1), s)
		w *= math.Exp(r.NormFloat64() * 0.25)
		weights[i] = w
		sum += w
	}
	for i := range weights {
		weights[i] = weights[i] / sum * total
	}
	return weights
}

// LogNormal draws a log-normal sample with the given parameters of the
// underlying normal (mu, sigma). Used for capacities and demand volumes.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Bernoulli reports true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}

// IntBetween returns a uniform integer in [lo, hi] inclusive. It panics when
// hi < lo.
func IntBetween(r *rand.Rand, lo, hi int) int {
	if hi < lo {
		panic("rngutil: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Jitter returns v multiplied by a uniform factor in [1-frac, 1+frac].
func Jitter(r *rand.Rand, v, frac float64) float64 {
	return v * (1 + (r.Float64()*2-1)*frac)
}

// WeightedChoice returns an index in [0, len(weights)) drawn proportionally
// to the weights. Zero or negative weights are treated as zero. It panics on
// an empty slice and returns the last index if all weights are zero.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		panic("rngutil: WeightedChoice on empty weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return len(weights) - 1
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement returns k distinct indices from [0, n) in random
// order. When k >= n it returns a permutation of all n indices.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// Shuffle shuffles a slice of ints in place.
func Shuffle(r *rand.Rand, xs []int) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Descending sorts the values in descending order (in place) and returns
// them; convenience for rank-ordered population assignment.
func Descending(xs []float64) []float64 {
	sort.Sort(sort.Reverse(sort.Float64Slice(xs)))
	return xs
}

// Fast is a splitmix64 PRNG: far cheaper to seed than math/rand (whose
// source initialization runs hundreds of iterations), which matters in hot
// paths that need one independent deterministic stream per (site, target)
// pair. Not cryptographic; statistical quality is ample for noise synthesis.
type Fast struct{ state uint64 }

// NewFast returns a Fast seeded with the given value.
func NewFast(seed uint64) *Fast { return &Fast{state: seed} }

// Uint64 returns the next value of the stream.
func (f *Fast) Uint64() uint64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (f *Fast) Float64() float64 {
	return float64(f.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n); it panics when n <= 0.
func (f *Fast) Intn(n int) int {
	if n <= 0 {
		panic("rngutil: Fast.Intn with n <= 0")
	}
	return int(f.Uint64() % uint64(n))
}
