package offnetmap

import (
	"testing"

	"offnetrisk/internal/cert"
)

// FuzzRuleMatches drives arbitrary certificate fields through both rule
// epochs: Matches must be total, and a rule with a RequireIssuer list must
// never accept a certificate whose issuer is outside it — the check that
// separates the 2021 methodology from lookalike certificates.
func FuzzRuleMatches(f *testing.F) {
	f.Add("Google LLC", "mirror.example.com", "*.c.example.net", "Google Trust Services")
	f.Add("", "", "", "")
	f.Add("Netflix Inc", "oca001.example.org", "*.nflxvideo.net", "DigiCert")
	f.Add("evil", "*.fbcdn.net", "fbcdn.net", "Meta Platforms")
	f.Add("Akamai", "a248.e.akamai.net", "*.akamaized.net", "Let's Encrypt")
	rules := append(append([]Rule(nil), Rules2021()...), Rules2023()...)
	f.Fuzz(func(t *testing.T, org, cn, san, issuer string) {
		c := cert.Certificate{SubjectOrg: org, SubjectCN: cn, DNSNames: []string{san}, Issuer: issuer}
		for _, r := range rules {
			got := r.Matches(c)
			if !got || len(r.RequireIssuer) == 0 {
				continue
			}
			ok := false
			for _, want := range r.RequireIssuer {
				if issuer == want {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("rule for %v accepted issuer %q outside its RequireIssuer set %v",
					r.HG, issuer, r.RequireIssuer)
			}
		}
		// Matching must be deterministic for classification replays.
		for _, r := range rules {
			if r.Matches(c) != r.Matches(c) {
				t.Fatalf("rule for %v unstable on %+v", r.HG, c)
			}
		}
	})
}
