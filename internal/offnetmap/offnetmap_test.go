package offnetmap

import (
	"testing"

	"offnetrisk/internal/cert"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/scan"
	"offnetrisk/internal/traffic"
)

// pipeline runs world → deployment → scan → inference for one epoch.
func pipeline(t *testing.T, epoch hypergiant.Epoch, seed int64, rules []Rule) (*hypergiant.Deployment, *Result) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, epoch, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := scan.Simulate(d, scan.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d, Infer(w, recs, rules)
}

func TestInferRecoversGroundTruth2023(t *testing.T) {
	d, res := pipeline(t, hypergiant.Epoch2023, 1, Rules2023())
	for _, hg := range traffic.All {
		truth := d.HostISPs(hg)
		got := res.ISPs[hg]
		if len(got) != len(truth) {
			t.Errorf("%s: inferred %d ISPs, ground truth %d", hg, len(got), len(truth))
		}
		for _, as := range truth {
			if !got[as] {
				t.Errorf("%s: missed hosting ISP AS%d", hg, as)
			}
		}
	}
	// Every inferred offnet is a real one (no false positives from
	// background/onnet/decoy certs).
	truthAddrs := make(map[string]traffic.HG)
	for _, s := range d.Servers {
		truthAddrs[s.Addr.String()] = s.HG
	}
	for _, o := range res.Offnets {
		hg, ok := truthAddrs[o.Addr.String()]
		if !ok {
			t.Errorf("false positive: %s inferred as %s offnet", o.Addr, o.HG)
			continue
		}
		if hg != o.HG {
			t.Errorf("%s attributed to %s, is %s", o.Addr, o.HG, hg)
		}
	}
}

func TestInferRecoversGroundTruth2021(t *testing.T) {
	d, res := pipeline(t, hypergiant.Epoch2021, 2, Rules2021())
	for _, hg := range traffic.All {
		if got, want := res.ISPCount(hg), len(d.HostISPs(hg)); got != want {
			t.Errorf("%s: inferred %d ISPs, ground truth %d", hg, got, want)
		}
	}
}

func TestStale2021RulesMissEvasions(t *testing.T) {
	// The point of §2.2: running the unmodified 2021 methodology against
	// the 2023 deployment must miss Google (no Organization entry any more)
	// and Meta (site-specific names) while still finding Netflix and Akamai.
	d, stale := pipeline(t, hypergiant.Epoch2023, 3, Rules2021())
	if got := stale.ISPCount(traffic.Google); got != 0 {
		t.Errorf("stale rules found %d Google ISPs, want 0 (Org entry removed)", got)
	}
	if got := stale.ISPCount(traffic.Meta); got != 0 {
		t.Errorf("stale rules found %d Meta ISPs, want 0 (site-specific names)", got)
	}
	if got, want := stale.ISPCount(traffic.Netflix), len(d.HostISPs(traffic.Netflix)); got != want {
		t.Errorf("stale rules: Netflix %d, want %d (convention unchanged)", got, want)
	}
	if got, want := stale.ISPCount(traffic.Akamai), len(d.HostISPs(traffic.Akamai)); got != want {
		t.Errorf("stale rules: Akamai %d, want %d (convention unchanged)", got, want)
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	// Table 1 reports growth +23.2% (Google), +37.4% (Netflix), +16.9%
	// (Meta), +0.0% (Akamai). The synthetic reproduction must match the
	// growth within a few points and preserve the footprint ordering.
	_, res21 := pipeline(t, hypergiant.Epoch2021, 1, Rules2021())
	_, res23 := pipeline(t, hypergiant.Epoch2023, 1, Rules2023())
	rows := Table1(res21, res23)
	if len(rows) != 4 {
		t.Fatalf("Table1 has %d rows", len(rows))
	}
	want := map[traffic.HG]float64{
		traffic.Google:  23.2,
		traffic.Netflix: 37.4,
		traffic.Meta:    16.9,
		traffic.Akamai:  0.0,
	}
	for _, row := range rows {
		if row.ISPs2021 == 0 {
			t.Fatalf("%s: zero 2021 ISPs", row.HG)
		}
		g := row.GrowthPct()
		if g < want[row.HG]-12 || g > want[row.HG]+12 {
			t.Errorf("%s growth = %+.1f%%, want ≈%+.1f%%", row.HG, g, want[row.HG])
		}
	}
	if !(rows[0].ISPs2023 > rows[1].ISPs2023 && rows[1].ISPs2023 > rows[3].ISPs2023) {
		t.Errorf("footprint order violated: %+v", rows)
	}
}

func TestRuleMatching(t *testing.T) {
	google2023 := Rules2023()[0]
	cases := []struct {
		name string
		c    cert.Certificate
		want bool
	}{
		{"google offnet", cert.Certificate{
			SubjectCN: "*.googlevideo.com", Issuer: "Google Trust Services LLC"}, true},
		{"wrong issuer", cert.Certificate{
			SubjectCN: "*.googlevideo.com", Issuer: "Evil CA"}, false},
		{"decoy mid-name", cert.Certificate{
			SubjectCN: "googlevideo.com.cdn1.example.org", Issuer: "Google Trust Services LLC"}, false},
		{"empty", cert.Certificate{}, false},
	}
	for _, tc := range cases {
		if got := google2023.Matches(tc.c); got != tc.want {
			t.Errorf("%s: Matches = %v, want %v", tc.name, got, tc.want)
		}
	}

	meta2023 := Rules2023()[2]
	if !meta2023.Matches(cert.Certificate{SubjectCN: "*.fbhx2-2.fna.fbcdn.net"}) {
		t.Error("Meta rule must match site-specific names")
	}
	if meta2023.Matches(cert.Certificate{SubjectCN: "fbcdn.net"}) {
		t.Error("Meta rule must not match the bare suffix decoy")
	}
}

func TestInferSkipsUnroutedAndOnnet(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(5))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	googleAS := d.ContentAS[traffic.Google]
	onnetAddr, err := w.AllocHostIn(googleAS)
	if err != nil {
		t.Fatal(err)
	}
	googleCert := cert.Certificate{SubjectCN: "*.googlevideo.com", Issuer: "Google Trust Services LLC"}
	recs := []scan.Record{
		{Addr: onnetAddr, Cert: googleCert}, // onnet: content AS space
		{Addr: 42, Cert: googleCert},        // unrouted
	}
	res := Infer(w, recs, Rules2023())
	if len(res.Offnets) != 0 {
		t.Errorf("onnet/unrouted records classified as offnets: %+v", res.Offnets)
	}
}

func TestResultHelpers(t *testing.T) {
	d, res := pipeline(t, hypergiant.Epoch2023, 1, Rules2023())
	hosting := res.HostingISPs()
	if len(hosting) == 0 {
		t.Fatal("no hosting ISPs")
	}
	for i := 1; i < len(hosting); i++ {
		if hosting[i-1] >= hosting[i] {
			t.Fatal("HostingISPs not strictly ascending")
		}
	}
	addrs := res.AddrsOf(traffic.Netflix)
	if len(addrs) == 0 {
		t.Fatal("no Netflix addresses")
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] > addrs[i] {
			t.Fatal("AddrsOf not sorted")
		}
	}
	_ = d
	// GrowthPct guards division by zero.
	if g := (Table1Row{HG: traffic.Google, ISPs2021: 0, ISPs2023: 5}).GrowthPct(); g != 0 {
		t.Errorf("GrowthPct with zero base = %v", g)
	}
}
