package offnetmap

import (
	"bytes"
	"encoding/json"
	"testing"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/scan"
)

func chaosScan(t *testing.T) (*inet.World, []scan.Record) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(7))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := scan.Simulate(d, scan.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w, recs
}

// TestInferChaosAccounting: the classify funnel stays balanced with every
// chaos-dropped record attributed, and the drops reconcile with the chaos
// counters.
func TestInferChaosAccounting(t *testing.T) {
	obs.Default.Reset()
	w, recs := chaosScan(t)
	prof, err := chaos.ParseProfile("heavy")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(prof, 11)
	res := InferChaos(w, recs, Rules2023(), inj)

	var classify obs.FunnelSnapshot
	for _, s := range obs.Default.FunnelSnapshots() {
		if s.Name == "offnetmap.classify" {
			classify = s
		}
	}
	if !classify.Balanced() {
		t.Fatalf("classify funnel unbalanced under chaos: %+v", classify)
	}
	if classify.In != int64(len(recs)) {
		t.Fatalf("classify.In = %d, want every record (%d)", classify.In, len(recs))
	}
	if got, want := classify.DropN("chaos_fetch_failed"), inj.CertsFailed.Value(); got != want {
		t.Fatalf("funnel chaos_fetch_failed = %d, chaos.certs_failed_total = %d", got, want)
	}
	if got, want := classify.DropN("chaos_malformed"), inj.CertsMangled.Value(); got != want {
		t.Fatalf("funnel chaos_malformed = %d, chaos.certs_mangled_total = %d", got, want)
	}
	if inj.CertsFailed.Value() == 0 || inj.CertsMangled.Value() == 0 {
		t.Fatal("heavy profile dropped no scan records")
	}
	if len(res.Offnets) == 0 {
		t.Fatal("heavy chaos wiped out every offnet — classification untestable")
	}
}

// TestInferChaosSubsetOfClean: chaos only ever removes records, so the
// inferred offnet set is a subset of the clean inference, every surviving
// classification is identical, and repeated runs agree byte-for-byte.
func TestInferChaosSubsetOfClean(t *testing.T) {
	obs.Default.Reset()
	w, recs := chaosScan(t)
	prof, err := chaos.ParseProfile("heavy")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(prof, 11)

	clean := Infer(w, recs, Rules2023())
	cleanBy := make(map[netaddr.Addr]Offnet, len(clean.Offnets))
	for _, o := range clean.Offnets {
		cleanBy[o.Addr] = o
	}
	faulty := InferChaos(w, recs, Rules2023(), inj)
	if len(faulty.Offnets) >= len(clean.Offnets) {
		t.Fatalf("chaos inference kept %d offnets, clean kept %d — nothing was dropped",
			len(faulty.Offnets), len(clean.Offnets))
	}
	for _, o := range faulty.Offnets {
		want, ok := cleanBy[o.Addr]
		if !ok {
			t.Fatalf("offnet %v inferred under chaos but not clean", o.Addr)
		}
		if want != o {
			t.Fatalf("offnet %v classified differently under chaos: %+v vs %+v", o.Addr, o, want)
		}
	}

	// Address-keyed faults: a second pass over the same scan loses exactly
	// the same records (the property the three Table 1 passes rely on).
	again := InferChaos(w, recs, Rules2023(), inj)
	a, err := json.Marshal(faulty)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two chaos passes over the same scan disagree")
	}
}
