// Package offnetmap implements the offnet-discovery methodology of §2.2: it
// classifies TLS scan records as offnet servers of Google, Netflix, Meta, or
// Akamai when an address announced by a non-hypergiant AS presents a
// hypergiant certificate.
//
// Two rule sets are provided. Rules2021 reproduces the original (Gigis et
// al. 2021) methodology: ownership by the Organization entry of the Subject
// Name, plus names exactly matching hypergiant onnet domains. Rules2023
// reproduces this paper's updates: Google dropped the Organization entry, so
// the CN is matched against *.googlevideo.com (with an issuer check); Meta
// moved to per-site names, so the *.fbcdn.net pattern is matched instead of
// exact onnet names.
package offnetmap

import (
	"sort"

	"offnetrisk/internal/cert"
	"offnetrisk/internal/chaos"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/scan"
	"offnetrisk/internal/traffic"
)

// The classification step of the TLS-scan pipeline lives here, so the
// "scan." metric namespace is shared between the two packages.
var mCertsClassified = obs.NewCounter("scan.certs_classified",
	"scan records classified against the offnet inference rules")

// fClassify accounts the §2.2 discovery funnel: every scan record enters,
// records without an IP-to-AS mapping hit are dropped as unrouted, records in
// hypergiant-announced space are onnet (not offnet candidates), and records
// whose certificate matches no rule drop as no_cert_match; the remainder are
// inferred offnets.
var (
	fClassify         = obs.NewFunnel("offnetmap.classify", "TLS scan records entering offnet inference vs. classified as offnets")
	fClassifyUnrouted = fClassify.Reason("unrouted")
	fClassifyOnnet    = fClassify.Reason("onnet_space")
	fClassifyNoMatch  = fClassify.Reason("no_cert_match")
)

// Rule decides whether a certificate belongs to a hypergiant.
type Rule struct {
	HG traffic.HG
	// Orgs: certificate Subject Organization entries owned by the
	// hypergiant. Empty disables the organization check.
	Orgs []string
	// ExactNames: names that must match a certificate name exactly (the
	// 2021 "names observed on onnet servers" check).
	ExactNames []string
	// Patterns: wildcard name patterns (the 2023 updates).
	Patterns []string
	// RequireIssuer, when non-empty, additionally requires the issuer
	// organization to match one of these ("passes the other checks from the
	// 2021 methodology").
	RequireIssuer []string
}

// Matches reports whether the certificate satisfies the rule.
func (r Rule) Matches(c cert.Certificate) bool {
	matched := false
	for _, org := range r.Orgs {
		if c.SubjectOrg == org {
			matched = true
		}
	}
	if !matched {
		for _, n := range c.Names() {
			for _, e := range r.ExactNames {
				if n == e {
					matched = true
				}
			}
		}
	}
	if !matched && len(r.Patterns) > 0 && c.AnyNameMatches(r.Patterns) {
		matched = true
	}
	if !matched {
		return false
	}
	if len(r.RequireIssuer) > 0 {
		ok := false
		for _, iss := range r.RequireIssuer {
			if c.Issuer == iss {
				ok = true
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Rules2021 returns the original methodology's fingerprints.
func Rules2021() []Rule {
	return []Rule{
		{
			HG:         traffic.Google,
			Orgs:       []string{"Google LLC"},
			ExactNames: []string{"www.google.com", "youtube.com", "ggc.google.com"},
		},
		{
			HG:         traffic.Netflix,
			Orgs:       []string{"Netflix, Inc."},
			ExactNames: []string{"*.nflxvideo.net"},
		},
		{
			HG:         traffic.Meta,
			Orgs:       []string{"Facebook, Inc."},
			ExactNames: []string{"*.fbcdn.net", "*.facebook.com"},
		},
		{
			HG:         traffic.Akamai,
			Orgs:       []string{"Akamai Technologies, Inc."},
			ExactNames: []string{"a248.e.akamai.net"},
		},
	}
}

// Rules2023 returns the updated methodology: "For Google, instead of
// inspecting the Organization subfield ... we use the CN field [matching]
// *.googlevideo.com"; for Meta "we check for the pattern *.fbcdn.net".
func Rules2023() []Rule {
	rules := Rules2021()
	for i := range rules {
		switch rules[i].HG {
		case traffic.Google:
			rules[i] = Rule{
				HG:            traffic.Google,
				Patterns:      []string{"*.googlevideo.com"},
				RequireIssuer: []string{"Google Trust Services LLC"},
			}
		case traffic.Meta:
			rules[i] = Rule{
				HG:       traffic.Meta,
				Orgs:     []string{"Facebook, Inc.", "Meta Platforms, Inc."},
				Patterns: []string{"*.fbcdn.net"},
			}
		}
	}
	return rules
}

// Offnet is one inferred offnet server.
type Offnet struct {
	Addr netaddr.Addr
	HG   traffic.HG
	ISP  inet.ASN
}

// Result is the outcome of running the methodology over a scan.
type Result struct {
	Offnets []Offnet
	// ISPs maps each hypergiant to the set of ASes hosting its offnets —
	// the quantity Table 1 counts.
	ISPs map[traffic.HG]map[inet.ASN]bool
}

// ISPCount returns the number of ISPs hosting the hypergiant's offnets.
func (res *Result) ISPCount(hg traffic.HG) int { return len(res.ISPs[hg]) }

// HostingISPs returns every AS hosting at least one inferred offnet,
// ascending.
func (res *Result) HostingISPs() []inet.ASN {
	set := make(map[inet.ASN]bool)
	for _, m := range res.ISPs {
		for as := range m {
			set[as] = true
		}
	}
	out := make([]inet.ASN, 0, len(set))
	for as := range set {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddrsOf returns the inferred offnet addresses of the hypergiant, ascending.
func (res *Result) AddrsOf(hg traffic.HG) []netaddr.Addr {
	var out []netaddr.Addr
	for _, o := range res.Offnets {
		if o.HG == hg {
			out = append(out, o.Addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Infer runs the methodology: for each scan record, if the certificate
// matches a hypergiant rule and the address is announced by an AS other than
// a hypergiant's own, the address is an offnet of that hypergiant hosted in
// that AS. Unrouted addresses are skipped (the real pipeline requires an
// IP-to-AS mapping hit).
func Infer(w *inet.World, records []scan.Record, rules []Rule) *Result {
	return InferChaos(w, records, rules, nil)
}

// InferChaos is Infer with fault injection: records whose certificate fetch
// fails or arrives mangled are dropped before classification, accounted as
// chaos_fetch_failed / chaos_malformed in the classify funnel. Faults are
// keyed by address only, so every classification pass over the same scan
// (both rule epochs and the stale-rule ablation) loses the same records.
func InferChaos(w *inet.World, records []scan.Record, rules []Rule, inj *chaos.Injector) *Result {
	mCertsClassified.Add(int64(len(records)))
	var cFetchFail, cMangled *obs.Counter
	if inj.Enabled() {
		cFetchFail = fClassify.Reason("chaos_fetch_failed")
		cMangled = fClassify.Reason("chaos_malformed")
	}
	res := &Result{ISPs: make(map[traffic.HG]map[inet.ASN]bool)}
	for _, rule := range rules {
		if res.ISPs[rule.HG] == nil {
			res.ISPs[rule.HG] = make(map[inet.ASN]bool)
		}
	}
	fClassify.In(int64(len(records)))
	for _, rec := range records {
		if inj.CertFetchFailed(int64(rec.Addr)) {
			cFetchFail.Inc()
			inj.CertsFailed.Inc()
			continue
		}
		if inj.CertMangled(int64(rec.Addr)) {
			cMangled.Inc()
			inj.CertsMangled.Inc()
			continue
		}
		as, ok := w.OwnerOf(rec.Addr)
		if !ok {
			fClassifyUnrouted.Inc()
			continue
		}
		owner, ok := w.ISPs[as]
		if !ok || owner.Tier == inet.TierContent {
			// Hypergiant-announced space: onnet, not offnet.
			fClassifyOnnet.Inc()
			continue
		}
		matched := false
		for _, rule := range rules {
			if !rule.Matches(rec.Cert) {
				continue
			}
			res.Offnets = append(res.Offnets, Offnet{Addr: rec.Addr, HG: rule.HG, ISP: as})
			res.ISPs[rule.HG][as] = true
			matched = true
			break
		}
		if matched {
			fClassify.Out(1)
		} else {
			fClassifyNoMatch.Inc()
		}
	}
	return res
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	HG       traffic.HG
	ISPs2021 int
	ISPs2023 int
}

// GrowthPct returns the 2021→2023 growth in percent (Table 1 annotates
// +23.2% etc.).
func (r Table1Row) GrowthPct() float64 {
	if r.ISPs2021 == 0 {
		return 0
	}
	return (float64(r.ISPs2023)/float64(r.ISPs2021) - 1) * 100
}

// Table1 assembles the table from the two epochs' inference results, in the
// paper's row order.
func Table1(res2021, res2023 *Result) []Table1Row {
	rows := make([]Table1Row, 0, len(traffic.All))
	for _, hg := range traffic.All {
		rows = append(rows, Table1Row{
			HG:       hg,
			ISPs2021: res2021.ISPCount(hg),
			ISPs2023: res2023.ISPCount(hg),
		})
	}
	return rows
}
