// Package offnetmap implements the offnet-discovery methodology of §2.2: it
// classifies TLS scan records as offnet servers of Google, Netflix, Meta, or
// Akamai when an address announced by a non-hypergiant AS presents a
// hypergiant certificate.
//
// Two rule sets are provided. Rules2021 reproduces the original (Gigis et
// al. 2021) methodology: ownership by the Organization entry of the Subject
// Name, plus names exactly matching hypergiant onnet domains. Rules2023
// reproduces this paper's updates: Google dropped the Organization entry, so
// the CN is matched against *.googlevideo.com (with an issuer check); Meta
// moved to per-site names, so the *.fbcdn.net pattern is matched instead of
// exact onnet names.
package offnetmap

import (
	"fmt"
	"sort"

	"offnetrisk/internal/cert"
	"offnetrisk/internal/chaos"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/scan"
	"offnetrisk/internal/traffic"
)

// The classification step of the TLS-scan pipeline lives here, so the
// "scan." metric namespace is shared between the two packages.
var mCertsClassified = obs.NewCounter("scan.certs_classified",
	"scan records classified against the offnet inference rules")

// fClassify accounts the §2.2 discovery funnel: every scan record enters,
// records without an IP-to-AS mapping hit are dropped as unrouted, records in
// hypergiant-announced space are onnet (not offnet candidates), and records
// whose certificate matches no rule drop as no_cert_match; the remainder are
// inferred offnets.
var (
	fClassify         = obs.NewFunnel("offnetmap.classify", "TLS scan records entering offnet inference vs. classified as offnets")
	fClassifyUnrouted = fClassify.Reason("unrouted")
	fClassifyOnnet    = fClassify.Reason("onnet_space")
	fClassifyNoMatch  = fClassify.Reason("no_cert_match")
)

// Rule decides whether a certificate belongs to a hypergiant.
type Rule struct {
	HG traffic.HG
	// ID names the rule in provenance records ("google-2023"). Rules carried
	// unchanged across methodology epochs keep their original vintage ID.
	ID string
	// Orgs: certificate Subject Organization entries owned by the
	// hypergiant. Empty disables the organization check.
	Orgs []string
	// ExactNames: names that must match a certificate name exactly (the
	// 2021 "names observed on onnet servers" check).
	ExactNames []string
	// Patterns: wildcard name patterns (the 2023 updates).
	Patterns []string
	// RequireIssuer, when non-empty, additionally requires the issuer
	// organization to match one of these ("passes the other checks from the
	// 2021 methodology").
	RequireIssuer []string
}

// MatchInfo records which part of a rule a certificate satisfied — the
// cert-matching step of the evidence chain behind every Table 1 cell.
type MatchInfo struct {
	RuleID string
	// Via is the check that matched: "org", "exact_name", or "pattern".
	Via string
	// Name is the certificate field that matched: the Subject Organization
	// for "org", the matching name otherwise.
	Name string
	// Issuer is the certificate issuer when the rule required one.
	Issuer string
}

// MatchDetail reports whether the certificate satisfies the rule and, when it
// does, which check matched.
func (r Rule) MatchDetail(c cert.Certificate) (MatchInfo, bool) {
	info := MatchInfo{RuleID: r.ID}
	for _, org := range r.Orgs {
		if c.SubjectOrg == org {
			info.Via, info.Name = "org", c.SubjectOrg
		}
	}
	if info.Via == "" {
		for _, n := range c.Names() {
			for _, e := range r.ExactNames {
				if n == e {
					info.Via, info.Name = "exact_name", n
				}
			}
		}
	}
	if info.Via == "" && len(r.Patterns) > 0 && c.AnyNameMatches(r.Patterns) {
		info.Via = "pattern"
	patternName:
		for _, n := range c.Names() {
			for _, p := range r.Patterns {
				if cert.MatchPattern(p, n) {
					info.Name = n
					break patternName
				}
			}
		}
	}
	if info.Via == "" {
		return MatchInfo{}, false
	}
	if len(r.RequireIssuer) > 0 {
		ok := false
		for _, iss := range r.RequireIssuer {
			if c.Issuer == iss {
				ok = true
			}
		}
		if !ok {
			return MatchInfo{}, false
		}
		info.Issuer = c.Issuer
	}
	return info, true
}

// Matches reports whether the certificate satisfies the rule.
func (r Rule) Matches(c cert.Certificate) bool {
	_, ok := r.MatchDetail(c)
	return ok
}

// Rules2021 returns the original methodology's fingerprints.
func Rules2021() []Rule {
	return []Rule{
		{
			HG:         traffic.Google,
			ID:         "google-2021",
			Orgs:       []string{"Google LLC"},
			ExactNames: []string{"www.google.com", "youtube.com", "ggc.google.com"},
		},
		{
			HG:         traffic.Netflix,
			ID:         "netflix-2021",
			Orgs:       []string{"Netflix, Inc."},
			ExactNames: []string{"*.nflxvideo.net"},
		},
		{
			HG:         traffic.Meta,
			ID:         "meta-2021",
			Orgs:       []string{"Facebook, Inc."},
			ExactNames: []string{"*.fbcdn.net", "*.facebook.com"},
		},
		{
			HG:         traffic.Akamai,
			ID:         "akamai-2021",
			Orgs:       []string{"Akamai Technologies, Inc."},
			ExactNames: []string{"a248.e.akamai.net"},
		},
	}
}

// Rules2023 returns the updated methodology: "For Google, instead of
// inspecting the Organization subfield ... we use the CN field [matching]
// *.googlevideo.com"; for Meta "we check for the pattern *.fbcdn.net".
func Rules2023() []Rule {
	rules := Rules2021()
	for i := range rules {
		switch rules[i].HG {
		case traffic.Google:
			rules[i] = Rule{
				HG:            traffic.Google,
				ID:            "google-2023",
				Patterns:      []string{"*.googlevideo.com"},
				RequireIssuer: []string{"Google Trust Services LLC"},
			}
		case traffic.Meta:
			rules[i] = Rule{
				HG:       traffic.Meta,
				ID:       "meta-2023",
				Orgs:     []string{"Facebook, Inc.", "Meta Platforms, Inc."},
				Patterns: []string{"*.fbcdn.net"},
			}
		}
	}
	return rules
}

// Offnet is one inferred offnet server.
type Offnet struct {
	Addr netaddr.Addr
	HG   traffic.HG
	ISP  inet.ASN
}

// Result is the outcome of running the methodology over a scan.
type Result struct {
	Offnets []Offnet
	// ISPs maps each hypergiant to the set of ASes hosting its offnets —
	// the quantity Table 1 counts.
	ISPs map[traffic.HG]map[inet.ASN]bool
}

// ISPCount returns the number of ISPs hosting the hypergiant's offnets.
func (res *Result) ISPCount(hg traffic.HG) int { return len(res.ISPs[hg]) }

// HostingISPs returns every AS hosting at least one inferred offnet,
// ascending.
func (res *Result) HostingISPs() []inet.ASN {
	set := make(map[inet.ASN]bool)
	for _, m := range res.ISPs {
		for as := range m {
			set[as] = true
		}
	}
	out := make([]inet.ASN, 0, len(set))
	for as := range set {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddrsOf returns the inferred offnet addresses of the hypergiant, ascending.
func (res *Result) AddrsOf(hg traffic.HG) []netaddr.Addr {
	var out []netaddr.Addr
	for _, o := range res.Offnets {
		if o.HG == hg {
			out = append(out, o.Addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Infer runs the methodology: for each scan record, if the certificate
// matches a hypergiant rule and the address is announced by an AS other than
// a hypergiant's own, the address is an offnet of that hypergiant hosted in
// that AS. Unrouted addresses are skipped (the real pipeline requires an
// IP-to-AS mapping hit).
func Infer(w *inet.World, records []scan.Record, rules []Rule) *Result {
	return InferChaos(w, records, rules, nil)
}

// InferChaos is Infer with fault injection: records whose certificate fetch
// fails or arrives mangled are dropped before classification, accounted as
// chaos_fetch_failed / chaos_malformed in the classify funnel. Faults are
// keyed by address only, so every classification pass over the same scan
// (both rule epochs and the stale-rule ablation) loses the same records.
func InferChaos(w *inet.World, records []scan.Record, rules []Rule, inj *chaos.Injector) *Result {
	return InferLineage(w, records, rules, inj, "")
}

// lnClassify is the lineage stage name mirroring the classify funnel.
const lnClassify = "offnetmap.classify"

// InferLineage is InferChaos with a pass label for provenance: Table 1 runs
// the same scan through three rule passes ("2021", "2023", "stale-2021"), and
// the label keeps their lineage records apart. Kept decisions group by
// (hypergiant, ISP, pass) — one sampling cell per Table 1 cell, so every
// populated cell retains at least one full evidence chain.
func InferLineage(w *inet.World, records []scan.Record, rules []Rule, inj *chaos.Injector, pass string) *Result {
	mCertsClassified.Add(int64(len(records)))
	var cFetchFail, cMangled *obs.Counter
	if inj.Enabled() {
		cFetchFail = fClassify.Reason("chaos_fetch_failed")
		cMangled = fClassify.Reason("chaos_malformed")
	}
	lr := obs.ActiveLineage()
	dropGroup := func(reason string) string { return "pass=" + pass + "|reason=" + reason }
	res := &Result{ISPs: make(map[traffic.HG]map[inet.ASN]bool)}
	for _, rule := range rules {
		if res.ISPs[rule.HG] == nil {
			res.ISPs[rule.HG] = make(map[inet.ASN]bool)
		}
	}
	fClassify.In(int64(len(records)))
	lr.CountIn(lnClassify, int64(len(records)))
	for _, rec := range records {
		if inj.CertFetchFailed(int64(rec.Addr)) {
			cFetchFail.Inc()
			inj.CertsFailed.Inc()
			lr.CountDrop(lnClassify, "chaos_fetch_failed", 1)
			if lr != nil {
				lr.Record(lnClassify, dropGroup("chaos_fetch_failed"), rec.Addr.String(),
					obs.LineageDropped, "chaos_fetch_failed", func() []obs.LineageKV {
						return []obs.LineageKV{{K: "pass", V: pass}}
					})
			}
			continue
		}
		if inj.CertMangled(int64(rec.Addr)) {
			cMangled.Inc()
			inj.CertsMangled.Inc()
			lr.CountDrop(lnClassify, "chaos_malformed", 1)
			if lr != nil {
				lr.Record(lnClassify, dropGroup("chaos_malformed"), rec.Addr.String(),
					obs.LineageDropped, "chaos_malformed", func() []obs.LineageKV {
						return []obs.LineageKV{{K: "pass", V: pass}}
					})
			}
			continue
		}
		as, ok := w.OwnerOf(rec.Addr)
		if !ok {
			fClassifyUnrouted.Inc()
			lr.CountDrop(lnClassify, "unrouted", 1)
			if lr != nil {
				lr.Record(lnClassify, dropGroup("unrouted"), rec.Addr.String(),
					obs.LineageDropped, "unrouted", func() []obs.LineageKV {
						return []obs.LineageKV{
							{K: "pass", V: pass},
							{K: "ip_to_as", V: "miss"},
						}
					})
			}
			continue
		}
		owner, ok := w.ISPs[as]
		if !ok || owner.Tier == inet.TierContent {
			// Hypergiant-announced space: onnet, not offnet.
			fClassifyOnnet.Inc()
			lr.CountDrop(lnClassify, "onnet_space", 1)
			if lr != nil {
				lr.Record(lnClassify, dropGroup("onnet_space"), rec.Addr.String(),
					obs.LineageDropped, "onnet_space", func() []obs.LineageKV {
						return []obs.LineageKV{
							{K: "pass", V: pass},
							{K: "routed_as", V: fmt.Sprint(as)},
							{K: "as_tier", V: "content"},
						}
					})
			}
			continue
		}
		matched := false
		for _, rule := range rules {
			info, ok := rule.MatchDetail(rec.Cert)
			if !ok {
				continue
			}
			res.Offnets = append(res.Offnets, Offnet{Addr: rec.Addr, HG: rule.HG, ISP: as})
			res.ISPs[rule.HG][as] = true
			matched = true
			if lr != nil {
				hg, asn := rule.HG, as
				lr.Record(lnClassify,
					fmt.Sprintf("hg=%s|isp=%d|pass=%s", hg, asn, pass),
					rec.Addr.String(), obs.LineageKept, "offnet", func() []obs.LineageKV {
						ev := []obs.LineageKV{
							{K: "pass", V: pass},
							{K: "routed_as", V: fmt.Sprint(asn)},
							{K: "hg", V: hg.String()},
							{K: "rule_id", V: info.RuleID},
							{K: "match_via", V: info.Via},
							{K: "match_name", V: info.Name},
							{K: "cert_fingerprint", V: rec.Cert.Fingerprint()},
						}
						if info.Issuer != "" {
							ev = append(ev, obs.LineageKV{K: "issuer", V: info.Issuer})
						}
						return ev
					})
			}
			break
		}
		if matched {
			fClassify.Out(1)
			lr.CountKept(lnClassify, 1)
		} else {
			fClassifyNoMatch.Inc()
			lr.CountDrop(lnClassify, "no_cert_match", 1)
			if lr != nil {
				lr.Record(lnClassify, dropGroup("no_cert_match"), rec.Addr.String(),
					obs.LineageDropped, "no_cert_match", func() []obs.LineageKV {
						return []obs.LineageKV{
							{K: "pass", V: pass},
							{K: "routed_as", V: fmt.Sprint(as)},
							{K: "cert_fingerprint", V: rec.Cert.Fingerprint()},
						}
					})
			}
		}
	}
	return res
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	HG       traffic.HG
	ISPs2021 int
	ISPs2023 int
}

// GrowthPct returns the 2021→2023 growth in percent (Table 1 annotates
// +23.2% etc.).
func (r Table1Row) GrowthPct() float64 {
	if r.ISPs2021 == 0 {
		return 0
	}
	return (float64(r.ISPs2023)/float64(r.ISPs2021) - 1) * 100
}

// Table1 assembles the table from the two epochs' inference results, in the
// paper's row order.
func Table1(res2021, res2023 *Result) []Table1Row {
	rows := make([]Table1Row, 0, len(traffic.All))
	for _, hg := range traffic.All {
		rows = append(rows, Table1Row{
			HG:       hg,
			ISPs2021: res2021.ISPCount(hg),
			ISPs2023: res2023.ISPCount(hg),
		})
	}
	return rows
}
