package session

import (
	"testing"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func setup(t *testing.T, seed int64) (*hypergiant.Deployment, *capacity.Model) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d, capacity.Build(d, capacity.DefaultConfig(seed))
}

func TestBaselineQoEHealthy(t *testing.T) {
	d, m := setup(t, 1)
	rep := cascade.Simulate(m, d, cascade.DefaultScenario())
	sessions := Run(m, d, rep, DefaultConfig(1))
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	q := Score(sessions)
	if q.DroppedShare != 0 {
		t.Errorf("baseline dropped share = %.3f, want 0 (no congestion)", q.DroppedShare)
	}
	// Sessions are drawn per-ISP, not traffic-weighted, and peak-hour
	// flows already spill ~8% of cacheable demand, so roughly half of
	// session *counts* are local even though most traffic *volume* is.
	if q.OffnetShare < 0.40 {
		t.Errorf("baseline offnet share = %.2f; should be roughly half", q.OffnetShare)
	}
	if q.MedianRTT <= 0 || q.MedianRTT > 40 {
		t.Errorf("baseline median RTT = %.1f ms, want local-ish", q.MedianRTT)
	}
	if q.P95RTT < q.MedianRTT {
		t.Error("p95 below median")
	}
	for _, s := range sessions {
		if s.RTTms <= 0 {
			t.Fatalf("non-positive RTT: %+v", s)
		}
	}
}

func TestFailureDegradesQoE(t *testing.T) {
	// The §3.3 consequence in user terms: failing the most-colocated
	// facilities must raise latency and drop sessions relative to baseline.
	d, m := setup(t, 1)
	base := cascade.Simulate(m, d, cascade.DefaultScenario())
	baseQ := Score(Run(m, d, base, DefaultConfig(1)))

	sc := cascade.DefaultScenario()
	sc.SharedHeadroom = 1.05
	sc.Surge = map[traffic.HG]float64{
		traffic.Google: 1.4, traffic.Netflix: 1.4, traffic.Meta: 1.4, traffic.Akamai: 1.4,
	}
	sc.FailFacilities = make(map[inet.FacilityID]bool)
	for _, as := range d.HostingISPs() {
		fid, n := cascade.TopFacility(d, as)
		if n >= 2 {
			sc.FailFacilities[fid] = true
		}
	}
	rep := cascade.Simulate(m, d, sc)
	failQ := Score(Run(m, d, rep, DefaultConfig(1)))

	if failQ.OffnetShare >= baseQ.OffnetShare {
		t.Errorf("offnet share did not fall: %.2f → %.2f", baseQ.OffnetShare, failQ.OffnetShare)
	}
	if failQ.MedianRTT <= baseQ.MedianRTT {
		t.Errorf("median RTT did not rise: %.1f → %.1f ms", baseQ.MedianRTT, failQ.MedianRTT)
	}
	if failQ.P95RTT <= baseQ.P95RTT {
		t.Errorf("p95 RTT did not rise: %.1f → %.1f ms", baseQ.P95RTT, failQ.P95RTT)
	}
	if failQ.DroppedShare <= baseQ.DroppedShare {
		t.Errorf("dropped share did not rise: %.3f → %.3f", baseQ.DroppedShare, failQ.DroppedShare)
	}
}

func TestRunDeterministic(t *testing.T) {
	d, m := setup(t, 3)
	rep := cascade.Simulate(m, d, cascade.DefaultScenario())
	a := Run(m, d, rep, DefaultConfig(3))
	b := Run(m, d, rep, DefaultConfig(3))
	if len(a) != len(b) {
		t.Fatal("session counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sessions differ across identical runs")
		}
	}
}

func TestScoreEmpty(t *testing.T) {
	q := Score(nil)
	if q.Sessions != 0 || q.MedianRTT != 0 {
		t.Errorf("empty score = %+v", q)
	}
}

func TestOriginStrings(t *testing.T) {
	want := map[Origin]string{
		FromOffnet: "offnet", FromPNI: "pni", FromIXP: "ixp",
		FromUpstreamOffnet: "upstream-offnet", FromTransit: "transit",
		FromUnserved: "unserved",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
}

func TestPickHGDistribution(t *testing.T) {
	r := newCounter()
	counts := make(map[traffic.HG]int)
	for i := 0; i < 40000; i++ {
		counts[pickHG(r, traffic.DefaultMix())]++
	}
	// Google's share (21%) is over double Netflix's (9%): the draw must
	// reflect that ordering.
	if counts[traffic.Google] <= counts[traffic.Netflix] {
		t.Errorf("Google drawn %d ≤ Netflix %d", counts[traffic.Google], counts[traffic.Netflix])
	}
	for _, hg := range traffic.All {
		if counts[hg] == 0 {
			t.Errorf("%s never drawn", hg)
		}
	}
}

// counter is a tiny deterministic Float64 source for distribution tests.
type counter struct{ i int }

func newCounter() *counter { return &counter{} }

func (c *counter) Float64() float64 {
	c.i++
	return float64(c.i%9973) / 9973
}
