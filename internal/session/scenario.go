package session

import "offnetrisk/internal/scenario"

// ConfigFromScenario builds the session-simulation configuration a resolved
// spec declares. The congestion RTT penalty stays a modeling constant (it
// calibrates bufferbloat behaviour, not the world). With the default
// scenario the result equals DefaultConfig(seed) plus the equivalent
// default mix.
func ConfigFromScenario(sp *scenario.Spec, seed int64) Config {
	return Config{
		Seed:                  seed,
		PerISP:                sp.Measurement.SessionsPerISP,
		CongestedRTTPenaltyMs: 80,
		Mix:                   sp.Mix(),
	}
}
