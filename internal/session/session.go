// Package session simulates user sessions fetching hypergiant content and
// scores the quality of experience they get — the user-facing consequence
// of §3.3's correlated failures: "As these applications often demand high
// availability and low latency, disruptions from traffic overloads or
// infrastructure failures can have severe consequences."
//
// A session picks a hypergiant by the user's traffic mix, is steered to a
// server (local offnet, hypergiant edge over PNI/IXP, or distant onnet via
// transit), and experiences latency from geography plus congestion penalty
// from the capacity model's link utilization under the scenario.
package session

import (
	"context"
	"math"
	"sort"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/geo"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/par"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/traffic"
)

// Origin mirrors where a session's content was served from.
type Origin int

// Origins in increasing distance order.
const (
	FromOffnet Origin = iota
	FromPNI
	FromIXP
	FromUpstreamOffnet
	FromTransit
	FromUnserved // demand beyond every layer's capacity
)

// String implements fmt.Stringer.
func (o Origin) String() string {
	switch o {
	case FromOffnet:
		return "offnet"
	case FromPNI:
		return "pni"
	case FromIXP:
		return "ixp"
	case FromUpstreamOffnet:
		return "upstream-offnet"
	case FromTransit:
		return "transit"
	default:
		return "unserved"
	}
}

// Session is one simulated content fetch.
type Session struct {
	ISP     inet.ASN
	HG      traffic.HG
	Origin  Origin
	RTTms   float64
	Dropped bool
}

// QoE summarizes a batch of sessions.
type QoE struct {
	Sessions  int
	MedianRTT float64
	P95RTT    float64
	// OffnetShare is the fraction of sessions served by the local offnet.
	OffnetShare float64
	// DroppedShare is the fraction of sessions that found no capacity.
	DroppedShare float64
}

// Config sizes the simulation.
type Config struct {
	Seed        int64
	PerISP      int // sessions per host ISP
	CongestBase float64
	// CongestedRTTPenaltyMs is added per unit of over-utilization on a
	// congested shared link (bufferbloat/queueing under overload).
	CongestedRTTPenaltyMs float64
	// Workers bounds RunContext's fan-out across host ISPs; <= 0 means
	// GOMAXPROCS. Each ISP already draws from its own seed-derived RNG
	// stream, so sessions are identical at any worker count.
	Workers int
	// Mix is the traffic mix sessions are drawn against; the zero Mix means
	// the paper's published constants.
	Mix traffic.Mix
}

// DefaultConfig returns the simulation defaults.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, PerISP: 40, CongestedRTTPenaltyMs: 80}
}

// Run simulates sessions for every access ISP hosting offnets, under the
// serving split and link state of a cascade report (use a no-failure
// scenario for the baseline).
func Run(m *capacity.Model, d *hypergiant.Deployment, rep *cascade.Report, cfg Config) []Session {
	out, _ := RunContext(context.Background(), m, d, rep, cfg)
	return out
}

// RunContext is Run with cancellation, simulating each host ISP's sessions
// as one task on cfg.Workers goroutines and concatenating the per-ISP
// session batches in ascending-ASN order.
func RunContext(ctx context.Context, m *capacity.Model, d *hypergiant.Deployment, rep *cascade.Report, cfg Config) ([]Session, error) {
	if cfg.PerISP <= 0 {
		cfg.PerISP = 40
	}
	if cfg.CongestedRTTPenaltyMs <= 0 {
		cfg.CongestedRTTPenaltyMs = 80
	}
	cfg.Mix = cfg.Mix.Sanitized()
	w := d.World

	// Index flows by (hg, isp).
	type key struct {
		hg traffic.HG
		as inet.ASN
	}
	flowOf := make(map[key]capacity.Flow, len(rep.Flows))
	for _, f := range rep.Flows {
		flowOf[key{f.HG, f.ISP}] = f
	}

	// Congestion state of shared links.
	congIXP := make(map[inet.IXPID]float64)
	for id, l := range rep.IXPLoad {
		if l.Congested() {
			congIXP[id] = l.Utilization() - 1
		}
	}
	congTr := make(map[inet.ASN]float64)
	for as, l := range rep.TransitLoad {
		if l.Congested() {
			congTr[as] = l.Utilization() - 1
		}
	}

	var asns []inet.ASN
	for _, as := range d.HostingISPs() {
		if w.ISPs[as].IsAccess() {
			asns = append(asns, as)
		}
	}
	batches, err := par.Map(ctx, len(asns), par.Options{Workers: cfg.Workers, Name: "sessions"},
		func(_ context.Context, idx int) ([]Session, error) {
			as := asns[idx]
			isp := w.ISPs[as]
			r := rngutil.New(cfg.Seed ^ int64(as)*0x9e3779b9)
			userLoc := isp.Metros[0].Loc
			batch := make([]Session, 0, cfg.PerISP)
			for i := 0; i < cfg.PerISP; i++ {
				hg := pickHG(r, cfg.Mix)
				f, ok := flowOf[key{hg, as}]
				if !ok || f.Demand <= 0 {
					// The hypergiant has no local deployment: served onnet via
					// transit.
					s := Session{ISP: as, HG: hg, Origin: FromTransit}
					s.RTTms = onnetRTT(userLoc, r)
					s.RTTms += transitPenalty(isp, congTr, cfg, r, &s)
					batch = append(batch, s)
					continue
				}
				origin := drawOrigin(r, f)
				s := Session{ISP: as, HG: hg, Origin: origin}
				switch origin {
				case FromOffnet:
					// Local: metro-scale RTT.
					s.RTTms = 2 + 8*r.Float64()
				case FromPNI:
					s.RTTms = edgeRTT(userLoc, r)
				case FromIXP:
					s.RTTms = edgeRTT(userLoc, r)
					if id, ok := m.IXPIDOf[hg][as]; ok {
						if over, bad := congIXP[id]; bad {
							s.RTTms += cfg.CongestedRTTPenaltyMs * (1 + over)
							s.Dropped = r.Float64() < math.Min(0.5, over)
						}
					}
				case FromUpstreamOffnet:
					s.RTTms = edgeRTT(userLoc, r) + 10
					s.RTTms += transitPenalty(isp, congTr, cfg, r, &s)
				default:
					s.RTTms = onnetRTT(userLoc, r)
					s.RTTms += transitPenalty(isp, congTr, cfg, r, &s)
				}
				batch = append(batch, s)
			}
			return batch, nil
		})
	if err != nil {
		return nil, err
	}
	var out []Session
	for _, batch := range batches {
		out = append(out, batch...)
	}
	return out, nil
}

// pickHG draws a hypergiant proportional to its traffic share under the
// mix.
func pickHG(r interface{ Float64() float64 }, mix traffic.Mix) traffic.HG {
	var total float64
	for _, hg := range traffic.All {
		total += mix.Share(hg)
	}
	x := r.Float64() * total
	for _, hg := range traffic.All {
		x -= mix.Share(hg)
		if x < 0 {
			return hg
		}
	}
	return traffic.Akamai
}

// drawOrigin samples the serving layer proportional to the flow's split.
func drawOrigin(r interface{ Float64() float64 }, f capacity.Flow) Origin {
	weights := []float64{f.Offnet, f.PNI, f.IXP, f.UpstreamOffnet, f.Transit}
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return FromUnserved
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return Origin(i)
		}
	}
	return FromTransit
}

// edgeRTT approximates reaching a hypergiant edge in the region.
func edgeRTT(_ geo.Point, r interface{ Float64() float64 }) float64 {
	return 12 + 18*r.Float64() // regional edge: 12–30 ms
}

// onnetRTT approximates fetching from a distant hypergiant data center.
func onnetRTT(user geo.Point, r interface{ Float64() float64 }) float64 {
	// Data centers cluster in the US in this world; distance drives RTT.
	dc := geo.Point{LatDeg: 39, LonDeg: -98}
	base := float64(geo.FiberRTT(user, dc, 1.3)) / 1e6
	return base + 5 + 15*r.Float64()
}

func transitPenalty(isp *inet.ISP, congTr map[inet.ASN]float64, cfg Config, r interface{ Float64() float64 }, s *Session) float64 {
	var worst float64
	for _, prov := range isp.Providers {
		if over, ok := congTr[prov]; ok && over > worst {
			worst = over
		}
	}
	if worst <= 0 {
		return 0
	}
	if r.Float64() < math.Min(0.5, worst) {
		s.Dropped = true
	}
	return cfg.CongestedRTTPenaltyMs * (1 + worst)
}

// Score reduces sessions to QoE statistics.
func Score(sessions []Session) QoE {
	q := QoE{Sessions: len(sessions)}
	if len(sessions) == 0 {
		return q
	}
	rtts := make([]float64, 0, len(sessions))
	var offnet, dropped int
	for _, s := range sessions {
		rtts = append(rtts, s.RTTms)
		if s.Origin == FromOffnet {
			offnet++
		}
		if s.Dropped {
			dropped++
		}
	}
	sort.Float64s(rtts)
	q.MedianRTT = rtts[len(rtts)/2]
	q.P95RTT = rtts[int(float64(len(rtts))*0.95)]
	q.OffnetShare = float64(offnet) / float64(len(sessions))
	q.DroppedShare = float64(dropped) / float64(len(sessions))
	return q
}
