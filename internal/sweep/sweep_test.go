package sweep

import (
	"strings"
	"testing"
)

func TestColocationPropensitySweep(t *testing.T) {
	res, err := ColocationPropensity(1, []float64{0.3, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	lo, hi := res.Points[0], res.Points[1]
	// Higher propensity must yield more ground-truth colocation and more
	// correlated failures.
	if hi.Metrics["all-at-top-frac"] <= lo.Metrics["all-at-top-frac"] {
		t.Errorf("full concentration did not rise with propensity: %.2f → %.2f",
			lo.Metrics["all-at-top-frac"], hi.Metrics["all-at-top-frac"])
	}
	if hi.Metrics["hg-per-failure"] <= lo.Metrics["hg-per-failure"] {
		t.Errorf("correlated failures did not rise with propensity: %.2f → %.2f",
			lo.Metrics["hg-per-failure"], hi.Metrics["hg-per-failure"])
	}
	if !strings.Contains(res.String(), "propensity") {
		t.Error("table missing header")
	}
}

func TestSharedHeadroomSweep(t *testing.T) {
	res, err := SharedHeadroom(1, []float64{1.02, 1.25, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Congestion fraction must fall (weakly) as headroom grows, and the
	// tight-headroom end must actually congest.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Metrics["congesting-frac"] > res.Points[i-1].Metrics["congesting-frac"]+1e-9 {
			t.Errorf("congestion rose with headroom: %+v", res.Points)
		}
	}
	if res.Points[0].Metrics["congesting-frac"] <= 0 {
		t.Error("no congestion even at 2% headroom")
	}
}

func TestDemandSpikeSweep(t *testing.T) {
	res, err := DemandSpike(1, []float64{1.0, 1.3, 1.58, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	// Interdomain growth must be monotone in the spike and dominate offnet
	// growth at every point past 1.0 (the §4.1 asymmetry).
	prev := -1.0
	for _, p := range res.Points {
		ig := p.Metrics["interdomain-growth"]
		if ig < prev-1e-9 {
			t.Errorf("interdomain growth not monotone: %+v", res.Points)
		}
		prev = ig
		if p.Param > 1.2 && ig <= p.Metrics["offnet-growth"] {
			t.Errorf("spike %v: interdomain (%v) should exceed offnet growth (%v)",
				p.Param, ig, p.Metrics["offnet-growth"])
		}
	}
	// At multiplier 1.0 the only change is the burst regime absorbing the
	// steady-state spill: offnet growth is the small burst margin and
	// interdomain traffic falls.
	if g := res.Points[0].Metrics["offnet-growth"]; g < 0 || g > 0.15 {
		t.Errorf("no-spike offnet growth = %v, want small burst margin", g)
	}
	if ig := res.Points[0].Metrics["interdomain-growth"]; ig > 0 {
		t.Errorf("no-spike interdomain growth = %v, want ≤0", ig)
	}
}

func TestResultStringEmpty(t *testing.T) {
	r := Result{Name: "x", Param: "p"}
	if !strings.Contains(r.String(), "sweep x") {
		t.Error("empty sweep renders header")
	}
}
