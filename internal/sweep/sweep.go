// Package sweep runs parameter sweeps over the reproduction's design knobs
// and records how the paper's headline quantities respond — the sensitivity
// analysis behind the calibration choices in DESIGN.md. Each sweep rebuilds
// the affected pipeline per point, deterministically.
package sweep

import (
	"fmt"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/traffic"
)

// Point is one sweep sample: the parameter value and the observed metrics.
type Point struct {
	Param   float64
	Metrics map[string]float64
	// ElapsedMS is the wall-clock cost of computing this point, recorded from
	// the sweep's span tracer. It is excluded from String() so the default
	// rendering (used in REPORT.md and conformance) stays deterministic;
	// TimedString() includes it.
	ElapsedMS float64
}

// Result is a named sweep.
type Result struct {
	Name   string
	Param  string
	Points []Point
}

// String renders the sweep as an aligned table. Timing is deliberately
// omitted: this rendering feeds REPORT.md and must be identical across runs
// of the same seed.
func (r Result) String() string {
	return r.render(false)
}

// TimedString is String plus a wall-clock column per point.
func (r Result) TimedString() string {
	return r.render(true)
}

func (r Result) render(timed bool) string {
	out := fmt.Sprintf("sweep %s over %s:\n", r.Name, r.Param)
	if len(r.Points) == 0 {
		return out
	}
	keys := sortedKeys(r.Points[0].Metrics)
	header := fmt.Sprintf("%10s", r.Param)
	for _, k := range keys {
		header += fmt.Sprintf(" %18s", k)
	}
	if timed {
		header += fmt.Sprintf(" %10s", "wall(ms)")
	}
	out += header + "\n"
	for _, p := range r.Points {
		row := fmt.Sprintf("%10.2f", p.Param)
		for _, k := range keys {
			row += fmt.Sprintf(" %18.3f", p.Metrics[k])
		}
		if timed {
			row += fmt.Sprintf(" %10.2f", p.ElapsedMS)
		}
		out += row + "\n"
	}
	return out
}

// timePoint runs fn under a span on the sweep's tracer and stamps the point's
// ElapsedMS from the span.
func timePoint(tr *obs.Tracer, name string, pt *Point, fn func() error) error {
	sp := tr.Start(name)
	err := fn()
	sp.End()
	pt.ElapsedMS = float64(sp.Elapsed().Nanoseconds()) / 1e6
	return err
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ColocationPropensity sweeps the probability that ISPs concentrate offnets
// in their primary facility and reports how ground-truth colocation and the
// correlated-failure measure respond — the knob behind §3.1's operational
// story.
func ColocationPropensity(seed int64, values []float64) (Result, error) {
	res := Result{Name: "colocation-propensity", Param: "propensity"}
	tr := obs.NewTracer()
	for _, v := range values {
		point := Point{Param: v}
		err := timePoint(tr, fmt.Sprintf("propensity=%g", v), &point, func() error {
			w := inet.Generate(inet.TinyConfig(seed))
			cfg := hypergiant.DefaultDeployConfig(seed)
			cfg.ColocationPropensity = v
			d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, cfg)
			if err != nil {
				return fmt.Errorf("sweep: propensity %v: %w", v, err)
			}

			// Ground-truth share of multi-HG ISPs whose top facility hosts
			// ALL their hypergiants (full concentration), plus the mean HGs
			// hit by a top-facility failure.
			var multi, allAtTop int
			for _, as := range d.HostingISPs() {
				hgs := len(d.HGsIn(as))
				if hgs < 2 {
					continue
				}
				multi++
				if _, top := cascade.TopFacility(d, as); top == hgs {
					allAtTop++
				}
			}
			m := capacity.Build(d, capacity.DefaultConfig(seed))
			st := cascade.Sweep(m, d, d.HostingISPs())

			point.Metrics = map[string]float64{
				"all-at-top-frac": frac(allAtTop, multi),
				"hg-per-failure":  st.MeanHGsPerFailure,
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// SharedHeadroom sweeps the spare capacity of shared links and reports the
// fraction of facility-failure scenarios that congest one — §4.3's argument
// that headroom, not topology, decides whether spillover cascades.
func SharedHeadroom(seed int64, values []float64) (Result, error) {
	res := Result{Name: "shared-headroom", Param: "headroom"}
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		return res, err
	}
	m := capacity.Build(d, capacity.DefaultConfig(seed))
	hosts := d.HostingISPs()
	tr := obs.NewTracer()
	for _, v := range values {
		point := Point{Param: v}
		_ = timePoint(tr, fmt.Sprintf("headroom=%g", v), &point, func() error {
			var congested, scenarios int
			var collateral float64
			for _, as := range hosts {
				fid, n := cascade.TopFacility(d, as)
				if n <= 0 {
					continue
				}
				sc := cascade.DefaultScenario()
				sc.SharedHeadroom = v
				sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
				rep := cascade.Simulate(m, d, sc)
				scenarios++
				if len(rep.CongestedIXPs())+len(rep.CongestedTransits()) > 0 {
					congested++
				}
				collateral += float64(len(rep.CollateralISPs))
			}
			point.Metrics = map[string]float64{
				"congesting-frac": frac(congested, scenarios),
				"collateral-isps": collateral / float64(max(scenarios, 1)),
			}
			return nil
		})
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// DemandSpike sweeps the §4.1 demand multiplier and reports offnet vs
// interdomain growth — the curve whose 1.58 point is the paper's COVID
// observation.
func DemandSpike(seed int64, values []float64) (Result, error) {
	res := Result{Name: "demand-spike", Param: "multiplier"}
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		return res, err
	}
	m := capacity.Build(d, capacity.DefaultConfig(seed))
	tr := obs.NewTracer()
	for _, v := range values {
		point := Point{Param: v}
		_ = timePoint(tr, fmt.Sprintf("multiplier=%g", v), &point, func() error {
			rep := capacity.CovidReplay(m, traffic.Netflix, v)
			point.Metrics = map[string]float64{
				"offnet-growth":      rep.OffnetGrowth(),
				"interdomain-growth": rep.InterdomainGrowth(),
			}
			return nil
		})
		res.Points = append(res.Points, point)
	}
	return res, nil
}

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

