package report

import (
	"strings"
	"testing"
)

func TestCheckPass(t *testing.T) {
	cases := []struct {
		c    Check
		want bool
	}{
		{Check{Got: 5, Lo: 1, Hi: 10}, true},
		{Check{Got: 1, Lo: 1, Hi: 10}, true},
		{Check{Got: 10, Lo: 1, Hi: 10}, true},
		{Check{Got: 0.9, Lo: 1, Hi: 10}, false},
		{Check{Got: 10.1, Lo: 1, Hi: 10}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Pass(); got != tc.want {
			t.Errorf("Pass(%+v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestSuiteAccounting(t *testing.T) {
	var s Suite
	s.Add("a", "1", 1, 0, 2, "%")
	s.Add("b", "5", 50, 0, 10, "%")
	s.AddBool("c", "claim", true)
	s.AddBool("d", "claim", false)
	if s.Passed() != 2 {
		t.Errorf("Passed = %d, want 2", s.Passed())
	}
	if s.AllPassed() {
		t.Error("AllPassed should be false")
	}
	failed := s.Failed()
	if len(failed) != 2 || failed[0].ID != "b" || failed[1].ID != "d" {
		t.Errorf("Failed = %+v", failed)
	}
}

func TestMarkdownRendering(t *testing.T) {
	var s Suite
	s.Add("Table1/x", "23.2%", 23.1, 10, 36, "%")
	s.AddBool("order", "a > b", true)
	md := s.Markdown()
	for _, want := range []string{"| check |", "Table1/x", "✅", "holds", "2/2 checks passed"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	s.AddBool("bad", "claim", false)
	md = s.Markdown()
	if !strings.Contains(md, "❌") || !strings.Contains(md, "violated") {
		t.Error("failing check not rendered")
	}
}
