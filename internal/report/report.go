// Package report scores a full reproduction run against the paper's
// reported shapes: each check encodes one claim from a table, figure, or
// section as an acceptance band, and the package renders a verdict table.
// cmd/reproduce appends this table to REPORT.md, so any seed/scale run
// self-assesses against the paper.
package report

import (
	"fmt"
	"strings"
)

// Check is one claim-level comparison.
type Check struct {
	// ID names the artifact (e.g. "Table1/Google-growth").
	ID string
	// Paper is the paper's reported value, as text.
	Paper string
	// Got is the measured value.
	Got float64
	// Lo and Hi bound the acceptance band for shape agreement.
	Lo, Hi float64
	// Unit annotates Got (e.g. "%", "×").
	Unit string
}

// Pass reports whether the measured value falls inside the band.
func (c Check) Pass() bool { return c.Got >= c.Lo && c.Got <= c.Hi }

// Suite accumulates checks.
type Suite struct {
	Checks []Check
}

// Add appends a check.
func (s *Suite) Add(id, paper string, got, lo, hi float64, unit string) {
	s.Checks = append(s.Checks, Check{ID: id, Paper: paper, Got: got, Lo: lo, Hi: hi, Unit: unit})
}

// AddBool appends a directional claim: pass encodes as 1 inside [1,1].
func (s *Suite) AddBool(id, paper string, pass bool) {
	got := 0.0
	if pass {
		got = 1
	}
	s.Checks = append(s.Checks, Check{ID: id, Paper: paper, Got: got, Lo: 1, Hi: 1, Unit: "bool"})
}

// Passed counts passing checks.
func (s *Suite) Passed() int {
	n := 0
	for _, c := range s.Checks {
		if c.Pass() {
			n++
		}
	}
	return n
}

// AllPassed reports whether every check passed.
func (s *Suite) AllPassed() bool { return s.Passed() == len(s.Checks) }

// Failed returns the failing checks.
func (s *Suite) Failed() []Check {
	var out []Check
	for _, c := range s.Checks {
		if !c.Pass() {
			out = append(out, c)
		}
	}
	return out
}

// Markdown renders the verdict table.
func (s *Suite) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| check | paper | measured | band | verdict |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	for _, c := range s.Checks {
		verdict := "✅"
		if !c.Pass() {
			verdict = "❌"
		}
		if c.Unit == "bool" {
			state := "holds"
			if !c.Pass() {
				state = "violated"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | — | %s |\n", c.ID, c.Paper, state, verdict)
			continue
		}
		fmt.Fprintf(&b, "| %s | %s | %.1f%s | [%.1f, %.1f] | %s |\n",
			c.ID, c.Paper, c.Got, c.Unit, c.Lo, c.Hi, verdict)
	}
	fmt.Fprintf(&b, "\n**%d/%d checks passed**\n", s.Passed(), len(s.Checks))
	return b.String()
}
