package atlas

import (
	"bytes"
	"strings"
	"testing"

	"offnetrisk/internal/coloc"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/rdns"
)

func buildAtlas(t *testing.T, seed int64) (*hypergiant.Deployment, []Entry) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	c := mlab.Measure(d, mlab.Sites(163, seed), mlab.DefaultConfig(seed))
	a := coloc.Analyze(w, c, []float64{0.1, 0.9})
	ptrs := rdns.Synthesize(d, rdns.DefaultConfig(seed))
	return d, Build(d, c, a, ptrs, 0.9)
}

func TestAtlasCoverageAndAccuracy(t *testing.T) {
	_, entries := buildAtlas(t, 1)
	if len(entries) == 0 {
		t.Fatal("empty atlas")
	}
	s := Score(entries)
	// PTR coverage is 45% with 55% geohint rate per hostname, but cluster
	// majority voting lifts per-server location coverage well above the
	// per-hostname rate — the point of clustering first.
	if s.Coverage < 0.5 {
		t.Errorf("coverage = %.2f, want ≥0.5 (cluster voting should lift it)", s.Coverage)
	}
	if s.Accuracy < 0.9 {
		t.Errorf("accuracy = %.2f, want ≥0.9", s.Accuracy)
	}
	for _, e := range entries {
		if e.Confidence < 0 || e.Confidence > 1 {
			t.Fatalf("confidence out of range: %+v", e)
		}
		if e.Metro != "" && e.Confidence == 0 {
			t.Fatalf("located entry without confidence: %+v", e)
		}
	}
}

func TestAtlasBeatsPerHostnameLocation(t *testing.T) {
	// Locating each address only by its own PTR caps coverage at
	// (PTR coverage × geohint rate) ≈ 25%; the cluster vote must beat it.
	d, entries := buildAtlas(t, 1)
	ptrs := rdns.Synthesize(d, rdns.DefaultConfig(1))
	var soloLocated int
	for _, e := range entries {
		if host, ok := ptrs[e.Addr]; ok {
			if _, ok := rdns.ExtractMetro(host); ok {
				soloLocated++
			}
		}
	}
	s := Score(entries)
	if s.Located <= soloLocated {
		t.Errorf("cluster voting (%d located) should beat per-hostname (%d)", s.Located, soloLocated)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	_, entries := buildAtlas(t, 2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip: %d vs %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i].Addr != entries[i].Addr || back[i].Metro != entries[i].Metro ||
			back[i].Cluster != entries[i].Cluster || back[i].ISP != entries[i].ISP {
			t.Fatalf("entry %d differs: %+v vs %+v", i, back[i], entries[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"short row": "ip,hypergiant,asn,cluster,metro,confidence,true_metro\n1.2.3.4,Google\n",
		"bad ip":    "ip,hypergiant,asn,cluster,metro,confidence,true_metro\nxxx,Google,1,0,lhr,1.0,lhr\n",
		"bad asn":   "ip,hypergiant,asn,cluster,metro,confidence,true_metro\n1.2.3.4,Google,zz,0,lhr,1.0,lhr\n",
		"bad conf":  "ip,hypergiant,asn,cluster,metro,confidence,true_metro\n1.2.3.4,Google,1,0,lhr,zz,lhr\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Header-only is fine.
	got, err := ReadCSV(strings.NewReader("ip,hypergiant,asn,cluster,metro,confidence,true_metro\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("header-only: %v, %v", got, err)
	}
}

func TestScoreEmpty(t *testing.T) {
	s := Score(nil)
	if s.Coverage != 0 || s.Accuracy != 0 {
		t.Errorf("empty score = %+v", s)
	}
}
