// Package atlas assembles the end product a measurement study like the
// paper's would publish: a located offnet dataset. Each discovered offnet
// address is annotated with its hosting ISP, its latency-derived cluster
// (facility proxy), and a metro-level location inferred by majority vote
// over the cluster's reverse-DNS geohints — with per-entry confidence and,
// uniquely to the simulation, ground-truth scoring.
package atlas

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"offnetrisk/internal/coloc"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/rdns"
)

// Entry is one located offnet server.
type Entry struct {
	Addr netaddr.Addr
	HG   string
	ISP  inet.ASN
	// Cluster is the per-ISP OPTICS label (-1: not colocated with anything).
	Cluster int
	// Metro is the inferred metro code, "" when unlocatable.
	Metro string
	// Confidence is the fraction of the cluster's located hostnames that
	// agree with Metro.
	Confidence float64
	// TrueMetro is the simulation's ground truth (unknowable in the real
	// pipeline; empty only if the server vanished from the world).
	TrueMetro string
}

// Build assembles the atlas from the colocation analysis at one ξ plus the
// PTR corpus. Cluster members inherit the cluster's majority location; noise
// servers locate from their own hostname alone.
func Build(d *hypergiant.Deployment, c *mlab.Campaign, a *coloc.Analysis, ptrs rdns.PTRTable, xi float64) []Entry {
	w := d.World
	var out []Entry

	asns := make([]inet.ASN, 0, len(a.PerISP))
	for as := range a.PerISP {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	for _, as := range asns {
		isp := a.PerISP[as]
		x, ok := isp.PerXi[xi]
		if !ok {
			continue
		}
		ms := c.ByISP[as]

		// Per-cluster location votes.
		votes := make(map[int]map[string]int)
		for i, l := range x.Labels {
			if l < 0 {
				continue
			}
			host, ok := ptrs[ms[i].Target.Addr]
			if !ok {
				continue
			}
			if m, ok := rdns.ExtractMetro(host); ok {
				if votes[l] == nil {
					votes[l] = make(map[string]int)
				}
				votes[l][m.Code]++
			}
		}
		majority := make(map[int]struct {
			metro string
			conf  float64
		})
		for l, vs := range votes {
			var best string
			var bestN, total int
			codes := make([]string, 0, len(vs))
			for code := range vs {
				codes = append(codes, code)
			}
			sort.Strings(codes)
			for _, code := range codes {
				n := vs[code]
				total += n
				if n > bestN {
					best, bestN = code, n
				}
			}
			majority[l] = struct {
				metro string
				conf  float64
			}{best, float64(bestN) / float64(total)}
		}

		for i, l := range x.Labels {
			e := Entry{
				Addr:    ms[i].Target.Addr,
				HG:      ms[i].Target.HG.String(),
				ISP:     as,
				Cluster: l,
			}
			if f, ok := w.Facilities[ms[i].Target.Facility]; ok {
				e.TrueMetro = f.Metro.Code
			}
			if l >= 0 {
				if mv, ok := majority[l]; ok {
					e.Metro, e.Confidence = mv.metro, mv.conf
				}
			} else if host, ok := ptrs[e.Addr]; ok {
				if m, ok := rdns.ExtractMetro(host); ok {
					e.Metro, e.Confidence = m.Code, 1
				}
			}
			out = append(out, e)
		}
	}
	return out
}

// Stats summarizes an atlas: coverage (entries with a location) and
// accuracy among located entries (vs simulation ground truth).
type Stats struct {
	Entries  int
	Located  int
	Correct  int
	Coverage float64
	Accuracy float64
}

// Score computes the atlas statistics.
func Score(entries []Entry) Stats {
	s := Stats{Entries: len(entries)}
	for _, e := range entries {
		if e.Metro == "" {
			continue
		}
		s.Located++
		if e.Metro == e.TrueMetro {
			s.Correct++
		}
	}
	if s.Entries > 0 {
		s.Coverage = float64(s.Located) / float64(s.Entries)
	}
	if s.Located > 0 {
		s.Accuracy = float64(s.Correct) / float64(s.Located)
	}
	return s
}

// WriteCSV emits the atlas as CSV with a header row.
func WriteCSV(w io.Writer, entries []Entry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ip", "hypergiant", "asn", "cluster", "metro", "confidence", "true_metro"}); err != nil {
		return fmt.Errorf("atlas: write header: %w", err)
	}
	for _, e := range entries {
		rec := []string{
			e.Addr.String(), e.HG, strconv.FormatUint(uint64(e.ISP), 10),
			strconv.Itoa(e.Cluster), e.Metro,
			strconv.FormatFloat(e.Confidence, 'f', 3, 64), e.TrueMetro,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("atlas: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses an atlas written by WriteCSV.
func ReadCSV(r io.Reader) ([]Entry, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("atlas: read: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	var out []Entry
	for i, row := range rows[1:] {
		if len(row) != 7 {
			return nil, fmt.Errorf("atlas: row %d: %d fields", i+2, len(row))
		}
		addr, err := netaddr.ParseAddr(row[0])
		if err != nil {
			return nil, fmt.Errorf("atlas: row %d: %w", i+2, err)
		}
		asn, err := strconv.ParseUint(row[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("atlas: row %d: %w", i+2, err)
		}
		cluster, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("atlas: row %d: %w", i+2, err)
		}
		conf, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return nil, fmt.Errorf("atlas: row %d: %w", i+2, err)
		}
		out = append(out, Entry{
			Addr: addr, HG: row[1], ISP: inet.ASN(asn), Cluster: cluster,
			Metro: row[4], Confidence: conf, TrueMetro: row[6],
		})
	}
	return out, nil
}
