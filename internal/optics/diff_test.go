package optics

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"offnetrisk/internal/rngutil"
)

// referenceRun is the original OPTICS implementation — full per-point sort
// for core distances, linear-scan seed queue — kept verbatim (minus metrics)
// as the differential oracle for the selection + heap implementation.
func referenceRun(n int, dist DistFunc, minPts int, eps float64) *Result {
	if n <= 0 {
		return &Result{}
	}
	if minPts < 2 {
		minPts = 2
	}
	if eps <= 0 {
		eps = math.Inf(1)
	}

	core := make([]float64, n)
	d := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		d = d[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d = append(d, dist(i, j))
		}
		sort.Float64s(d)
		k := minPts - 2
		if k < len(d) && d[k] <= eps {
			core[i] = d[k]
		} else {
			core[i] = math.Inf(1)
		}
	}

	processed := make([]bool, n)
	reachOf := make([]float64, n)
	for i := range reachOf {
		reachOf[i] = math.Inf(1)
	}
	inSeeds := make([]bool, n)

	res := &Result{Core: core}
	process := func(p int, reach float64) {
		processed[p] = true
		res.Order = append(res.Order, p)
		res.Reach = append(res.Reach, reach)
	}
	update := func(p int) {
		if math.IsInf(core[p], 1) {
			return
		}
		for o := 0; o < n; o++ {
			if processed[o] || o == p {
				continue
			}
			dpo := dist(p, o)
			if dpo > eps {
				continue
			}
			newReach := math.Max(core[p], dpo)
			if newReach < reachOf[o] {
				reachOf[o] = newReach
				inSeeds[o] = true
			}
		}
	}
	popSeed := func() (int, bool) {
		best, bestReach := -1, math.Inf(1)
		for o := 0; o < n; o++ {
			if inSeeds[o] && !processed[o] && reachOf[o] < bestReach {
				best, bestReach = o, reachOf[o]
			}
		}
		if best < 0 {
			return 0, false
		}
		inSeeds[best] = false
		return best, true
	}

	for p := 0; p < n; p++ {
		if processed[p] {
			continue
		}
		process(p, math.Inf(1))
		update(p)
		for {
			q, ok := popSeed()
			if !ok {
				break
			}
			process(q, reachOf[q])
			update(q)
		}
	}
	return res
}

// randomMatrix draws a symmetric distance matrix: continuous, or tie-heavy
// (distances quantized to a 3-value grid, forcing many equal reachabilities
// so the heap's index tie-break is exercised), with occasional +Inf cells
// (pairs whose latency vectors shared no usable site).
func randomMatrix(seed int64) (n int, dist DistFunc, minPts int, eps float64) {
	r := rngutil.New(seed)
	n = r.Intn(47) + 2
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	tieHeavy := r.Intn(2) == 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			switch {
			case r.Float64() < 0.03:
				v = math.Inf(1)
			case tieHeavy:
				v = float64(r.Intn(3) + 1)
			default:
				v = r.Float64() * 100
			}
			m[i][j], m[j][i] = v, v
		}
	}
	minPts = r.Intn(3) + 2
	eps = math.Inf(1)
	if r.Intn(4) == 0 {
		eps = r.Float64() * 60
	}
	return n, func(i, j int) float64 { return m[i][j] }, minPts, eps
}

// TestRunMatchesReference is the differential proof: the heap-seeded,
// selection-based Run must reproduce the linear-scan reference exactly —
// same processing order, bit-identical reachability and core distances — on
// 1000 seeded random inputs including tie-heavy matrices, with one Scratch
// reused across every case (the steady-state usage).
func TestRunMatchesReference(t *testing.T) {
	var sc Scratch
	for seed := int64(0); seed < 1000; seed++ {
		n, dist, minPts, eps := randomMatrix(seed)
		want := referenceRun(n, dist, minPts, eps)
		got := sc.Run(n, dist, minPts, eps)
		if len(got.Order) != len(want.Order) {
			t.Fatalf("seed %d: ordered %d points, want %d", seed, len(got.Order), len(want.Order))
		}
		for i := range want.Order {
			if got.Order[i] != want.Order[i] {
				t.Fatalf("seed %d: Order[%d] = %d, want %d (n=%d minPts=%d eps=%v)",
					seed, i, got.Order[i], want.Order[i], n, minPts, eps)
			}
			if math.Float64bits(got.Reach[i]) != math.Float64bits(want.Reach[i]) {
				t.Fatalf("seed %d: Reach[%d] = %v, want %v", seed, i, got.Reach[i], want.Reach[i])
			}
		}
		for i := range want.Core {
			if math.Float64bits(got.Core[i]) != math.Float64bits(want.Core[i]) {
				t.Fatalf("seed %d: Core[%d] = %v, want %v", seed, i, got.Core[i], want.Core[i])
			}
		}
	}
}

// TestLabelsMatchReference closes the loop at the label level: flat ξ-labels
// from the new Run equal those from the reference ordering at both paper ξ
// settings.
func TestLabelsMatchReference(t *testing.T) {
	var sc Scratch
	for seed := int64(0); seed < 200; seed++ {
		n, dist, _, _ := randomMatrix(seed)
		want := referenceRun(n, dist, 2, math.Inf(1))
		got := sc.Run(n, dist, 2, math.Inf(1))
		for _, xi := range []float64{0.1, 0.9} {
			wl := want.Labels(want.ExtractXi(xi, 2))
			gl := got.Labels(got.ExtractXi(xi, 2))
			for i := range wl {
				if wl[i] != gl[i] {
					t.Fatalf("seed %d ξ=%v: label[%d] = %d, want %d", seed, xi, i, gl[i], wl[i])
				}
			}
		}
	}
}

// TestRunScratchZeroAlloc guards the steady-state ordering: once the scratch
// has grown to the problem size, a full OPTICS run allocates nothing.
func TestRunScratchZeroAlloc(t *testing.T) {
	n, dist, _, _ := randomMatrix(17)
	var sc Scratch
	sc.Run(n, dist, 2, math.Inf(1)) // warm the buffers
	if a := testing.AllocsPerRun(50, func() {
		sc.Run(n, dist, 2, math.Inf(1))
	}); a != 0 {
		t.Fatalf("steady-state Run allocates %v per run, want 0", a)
	}
}

// BenchmarkOpticsRun measures the ordering kernel at the sizes the per-ISP
// clustering sees (tiny worlds cluster tens of offnets per ISP; atlas-scale
// inputs push into the hundreds).
func BenchmarkOpticsRun(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rngutil.New(23)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.Float64() * 100
			}
			dist := func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) }
			var sc Scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Run(n, dist, 2, math.Inf(1))
			}
		})
	}
}
