package optics_test

import (
	"fmt"
	"math"

	"offnetrisk/internal/optics"
)

// Example demonstrates OPTICS over two dense 1-D groups and an outlier:
// the ξ extraction finds the groups and leaves the outlier unclustered.
func Example() {
	points := []float64{0.0, 0.1, 0.2, 50.0, 100.0, 100.1, 100.2}
	dist := func(i, j int) float64 { return math.Abs(points[i] - points[j]) }

	labels := optics.ClusterXi(len(points), dist, 2, 0.1)
	fmt.Println("labels:", labels)

	res := optics.Run(len(points), dist, 2, math.Inf(1))
	clusters := res.ExtractXi(0.1, 2)
	fmt.Println("clusters found:", len(res.Labels(clusters)) > 0)
	// Output:
	// labels: [0 0 0 -1 1 1 1]
	// clusters found: true
}
