package optics

import (
	"math"
	"testing"
	"testing/quick"

	"offnetrisk/internal/rngutil"
)

// pointsDist builds a DistFunc over 1-D coordinates.
func pointsDist(xs []float64) DistFunc {
	return func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) }
}

func TestRunOrdersAllPoints(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 10, 10.1, 10.2, 50}
	res := Run(len(xs), pointsDist(xs), 2, math.Inf(1))
	if len(res.Order) != len(xs) || len(res.Reach) != len(xs) {
		t.Fatalf("ordering covers %d of %d points", len(res.Order), len(xs))
	}
	seen := make(map[int]bool)
	for _, p := range res.Order {
		if seen[p] {
			t.Fatalf("point %d ordered twice", p)
		}
		seen[p] = true
	}
	if !math.IsInf(res.Reach[0], 1) {
		t.Error("first point must have undefined (+Inf) reachability")
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	res := Run(0, nil, 2, 0)
	if len(res.Order) != 0 {
		t.Error("empty input should produce empty ordering")
	}
	res = Run(1, pointsDist([]float64{5}), 2, math.Inf(1))
	if len(res.Order) != 1 || !math.IsInf(res.Core[0], 1) {
		t.Error("single point: ordered once, not core")
	}
	if got := res.Labels(res.ExtractXi(0.1, 2)); got[0] != -1 {
		t.Error("single point must be noise")
	}
}

func TestCoreDistanceMinPts2(t *testing.T) {
	xs := []float64{0, 1, 3}
	res := Run(3, pointsDist(xs), 2, math.Inf(1))
	// minPts=2 → core distance = distance to nearest other point.
	want := []float64{1, 1, 2}
	for i, w := range want {
		if math.Abs(res.Core[i]-w) > 1e-12 {
			t.Errorf("Core[%d] = %v, want %v", i, res.Core[i], w)
		}
	}
}

func TestTwoTightGroups(t *testing.T) {
	// Two well-separated dense groups: ξ=0.1 must find exactly two leaf
	// clusters matching the groups.
	xs := []float64{0, 0.1, 0.2, 0.15, 100, 100.1, 100.2}
	labels := ClusterXi(len(xs), pointsDist(xs), 2, 0.1)
	groupA := labels[0]
	for i := 1; i <= 3; i++ {
		if labels[i] != groupA {
			t.Errorf("point %d not grouped with group A: labels=%v", i, labels)
		}
	}
	groupB := labels[4]
	for i := 5; i <= 6; i++ {
		if labels[i] != groupB {
			t.Errorf("point %d not grouped with group B: labels=%v", i, labels)
		}
	}
	if groupA == groupB {
		t.Errorf("groups merged: labels=%v", labels)
	}
	if groupA == -1 || groupB == -1 {
		t.Errorf("dense groups marked noise: labels=%v", labels)
	}
}

func TestIsolatedPointIsNoise(t *testing.T) {
	// Two dense pairs plus one faraway singleton: the singleton must not be
	// assigned to any cluster.
	xs := []float64{0, 0.1, 500, 1000, 1000.1}
	labels := ClusterXi(len(xs), pointsDist(xs), 2, 0.1)
	if labels[2] != -1 {
		t.Errorf("isolated point got label %d: labels=%v", labels[2], labels)
	}
	if labels[0] == -1 || labels[0] != labels[1] {
		t.Errorf("pair A mislabelled: %v", labels)
	}
	if labels[3] == -1 || labels[3] != labels[4] {
		t.Errorf("pair B mislabelled: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("distant pairs merged: %v", labels)
	}
}

func TestXiSteepnessDirection(t *testing.T) {
	// Moderately separated groups: a mild valley splits at ξ=0.1 but must
	// NOT split at ξ=0.9 (which demands a 10× drop). This is the Table 2
	// bounding behaviour.
	var xs []float64
	for i := 0; i < 6; i++ {
		xs = append(xs, float64(i)*1.0) // group A: spacing 1
	}
	for i := 0; i < 6; i++ {
		xs = append(xs, 30+float64(i)*1.0) // group B at distance 30 (ratio ~30/1... )
	}
	// Use a separation only ~4× the intra-group spacing for the mild case.
	mild := make([]float64, len(xs))
	copy(mild, xs)
	for i := 6; i < 12; i++ {
		mild[i] = 10 + float64(i-6)*2.0 // intra spacing 2, gap 10/2=5x
	}

	lo := ClusterXi(len(mild), pointsDist(mild), 2, 0.1)
	hi := ClusterXi(len(mild), pointsDist(mild), 2, 0.9)

	distinct := func(labels []int) int {
		set := make(map[int]bool)
		for _, l := range labels {
			if l >= 0 {
				set[l] = true
			}
		}
		return len(set)
	}
	if distinct(lo) < 2 {
		t.Errorf("ξ=0.1 should split the mild valley: labels=%v", lo)
	}
	if distinct(hi) > distinct(lo) {
		t.Errorf("ξ=0.9 split more than ξ=0.1: hi=%v lo=%v", hi, lo)
	}
	// At ξ=0.9 the two mild groups merge into one cluster.
	if hi[0] == -1 || hi[0] != hi[11] {
		t.Errorf("ξ=0.9 should merge mild groups: labels=%v", hi)
	}
}

func TestLabelsContiguityInvariant(t *testing.T) {
	// Property: every cluster label occupies a contiguous span of the
	// OPTICS ordering, and every cluster has ≥ minPts points.
	f := func(seed int64) bool {
		r := rngutil.New(seed)
		var xs []float64
		nGroups := r.Intn(4) + 1
		for g := 0; g < nGroups; g++ {
			center := float64(g) * (50 + r.Float64()*100)
			for k := 0; k < r.Intn(6)+2; k++ {
				xs = append(xs, center+r.Float64())
			}
		}
		res := Run(len(xs), pointsDist(xs), 2, math.Inf(1))
		labels := res.Labels(res.ExtractXi(0.1, 2))

		counts := make(map[int]int)
		for _, l := range labels {
			if l >= 0 {
				counts[l]++
			}
		}
		for _, c := range counts {
			if c < 2 {
				return false
			}
		}
		// Contiguity over ordering positions.
		posLabels := make([]int, len(res.Order))
		for pos, p := range res.Order {
			posLabels[pos] = labels[p]
		}
		seenEnded := make(map[int]bool)
		prev := -2
		for _, l := range posLabels {
			if l != prev {
				if seenEnded[l] && l >= 0 {
					return false // label resumed after ending: not contiguous
				}
				if prev >= 0 {
					seenEnded[prev] = true
				}
				prev = l
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRunDeterministic(t *testing.T) {
	r := rngutil.New(3)
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	a := Run(len(xs), pointsDist(xs), 2, math.Inf(1))
	b := Run(len(xs), pointsDist(xs), 2, math.Inf(1))
	for i := range a.Order {
		if a.Order[i] != b.Order[i] || a.Reach[i] != b.Reach[i] {
			t.Fatal("OPTICS not deterministic")
		}
	}
}

func TestReachabilityNeighborsLowWithinGroup(t *testing.T) {
	// All intra-group reachability values must be far below the inter-group
	// jump — the structural property ξ extraction depends on.
	xs := []float64{0, 0.1, 0.2, 100, 100.1, 100.2}
	res := Run(len(xs), pointsDist(xs), 2, math.Inf(1))
	var jumps, smalls int
	for i := 1; i < len(res.Reach); i++ {
		if res.Reach[i] > 50 {
			jumps++
		} else if res.Reach[i] < 1 {
			smalls++
		}
	}
	if jumps != 1 {
		t.Errorf("expected exactly 1 big jump, got %d (reach=%v)", jumps, res.Reach)
	}
	if smalls != 4 {
		t.Errorf("expected 4 small reachabilities, got %d (reach=%v)", smalls, res.Reach)
	}
}

func TestEpsBoundsCoreness(t *testing.T) {
	xs := []float64{0, 5, 10}
	res := Run(len(xs), pointsDist(xs), 2, 1.0) // eps smaller than any gap
	for i, c := range res.Core {
		if !math.IsInf(c, 1) {
			t.Errorf("point %d core with eps=1: %v", i, c)
		}
	}
	// Everyone is its own component: all reach +Inf.
	for i, r := range res.Reach {
		if !math.IsInf(r, 1) {
			t.Errorf("reach[%d] = %v, want +Inf", i, r)
		}
	}
}

func TestClusterSize(t *testing.T) {
	if got := (Cluster{Start: 2, End: 5}).Size(); got != 4 {
		t.Errorf("Size = %d", got)
	}
}

func TestExtractXiDegenerateParams(t *testing.T) {
	xs := []float64{0, 0.1, 10, 10.1}
	res := Run(len(xs), pointsDist(xs), 2, math.Inf(1))
	// Out-of-range xi falls back to 0.1 rather than panicking.
	for _, xi := range []float64{-1, 0, 1, 2} {
		cs := res.ExtractXi(xi, 2)
		labels := res.Labels(cs)
		if len(labels) != len(xs) {
			t.Fatalf("xi=%v: bad labels length", xi)
		}
	}
}
