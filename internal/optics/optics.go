// Package optics implements OPTICS (Ankerst, Breunig, Kriegel, Sander —
// SIGMOD 1999) from scratch: the reachability ordering and the ξ-steepness
// cluster extraction. The paper clusters each ISP's offnet addresses with
// OPTICS over latency-vector distances, n_min = 2, and two extreme
// steepness values ξ ∈ {0.1, 0.9} "likely bounding the actual colocation"
// (§3.2, Appendix A).
//
// With high ξ only very steep reachability drops delimit clusters, so few
// boundaries fire and clusters merge (more inferred colocation); with low ξ
// mild drops already split (less inferred colocation) — exactly the
// direction of the two rows per hypergiant in Table 2.
package optics

import (
	"math"
	"sort"

	"offnetrisk/internal/obs"
)

var (
	mRunsTotal = obs.NewCounter("optics.runs_total",
		"OPTICS orderings computed")
	mPointsClustered = obs.NewCounter("optics.points_clustered",
		"points put through the OPTICS ordering")
)

// DistFunc returns the distance between points i and j. It must be
// symmetric and non-negative.
type DistFunc func(i, j int) float64

// Result is the OPTICS ordering: Order[k] is the index of the k-th processed
// point, Reach[k] its reachability distance at processing time (+Inf for
// starts of new components), and Core[i] the core distance of point i.
type Result struct {
	Order []int
	Reach []float64
	Core  []float64
}

// Run computes the OPTICS ordering for n points under the distance function,
// with the DBSCAN-convention minPts (a point is core when minPts points,
// including itself, lie within eps) and generating distance eps (use +Inf
// for unbounded, as the colocation analysis does).
//
// Run allocates a fresh Scratch per call; hot loops that run OPTICS many
// times should hold a Scratch and call its Run method instead.
func Run(n int, dist DistFunc, minPts int, eps float64) *Result {
	return new(Scratch).Run(n, dist, minPts, eps)
}

// Scratch is the reusable working state of an OPTICS run: core/reachability
// arrays, the seed min-heap, and the bounded neighbor-selection buffer. The
// zero value is ready; buffers grow to the largest n seen and are reused.
//
// The *Result returned by (*Scratch).Run aliases the scratch buffers: it is
// valid until the next Run call on the same Scratch. A Scratch must not be
// shared across goroutines — give each worker its own (par.MapLocal).
type Scratch struct {
	core    []float64
	reachOf []float64
	order   []int
	reach   []float64
	// processed doubles as "popped from seeds": a point is popped and
	// processed in the same step, so one flag covers both.
	processed []bool
	heap      []int // seed queue: point indices, min-heap on (reachOf, index)
	pos       []int // pos[p] = index of p in heap, -1 when absent
	nn        []float64
	res       Result
}

// grow sizes every buffer for n points, reusing prior capacity.
func (s *Scratch) grow(n int) {
	if cap(s.core) < n {
		s.core = make([]float64, n)
		s.reachOf = make([]float64, n)
		s.processed = make([]bool, n)
		s.pos = make([]int, n)
	}
	s.core = s.core[:n]
	s.reachOf = s.reachOf[:n]
	s.processed = s.processed[:n]
	s.pos = s.pos[:n]
	for i := 0; i < n; i++ {
		s.reachOf[i] = math.Inf(1)
		s.processed[i] = false
		s.pos[i] = -1
	}
	if cap(s.order) < n {
		s.order = make([]int, 0, n)
		s.reach = make([]float64, 0, n)
	}
	s.order = s.order[:0]
	s.reach = s.reach[:0]
	s.heap = s.heap[:0]
}

// seedLess replicates the linear scan's selection rule exactly: smallest
// reachability wins, ties broken by the smaller point index (the old scan
// visited indices in ascending order with a strict '<'). This tie-break is
// what makes the heap-seeded ordering — and every downstream cluster label —
// bit-identical to the scan-based implementation.
func (s *Scratch) seedLess(a, b int) bool {
	if s.reachOf[a] != s.reachOf[b] {
		return s.reachOf[a] < s.reachOf[b]
	}
	return a < b
}

func (s *Scratch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.seedLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Scratch) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.heap) && s.seedLess(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < len(s.heap) && s.seedLess(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heapSwap(i, smallest)
		i = smallest
	}
}

func (s *Scratch) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = i
	s.pos[s.heap[j]] = j
}

// seedDecrease inserts p, or restores heap order after reachOf[p] decreased
// (a decrease can only move p toward the root).
func (s *Scratch) seedDecrease(p int) {
	if s.pos[p] < 0 {
		s.pos[p] = len(s.heap)
		s.heap = append(s.heap, p)
	}
	s.siftUp(s.pos[p])
}

// seedPop removes and returns the minimum seed, or (0, false) when empty.
func (s *Scratch) seedPop() (int, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	p := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.pos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.pos[p] = -1
	if last > 0 {
		s.siftDown(0)
	}
	return p, true
}

// kthNearest returns the distance from i to its (k+1)-th nearest other point
// (0-based k), via bounded insertion into a (k+1)-slot buffer — a partial
// selection that touches each of the n-1 distances once instead of sorting
// them all. The selected value is an order statistic, so it is the exact
// float the full sort produced.
func (s *Scratch) kthNearest(n int, dist DistFunc, i, k int) float64 {
	if k == 0 {
		// minPts = 2, the colocation analysis' fixed n_min: a plain min scan.
		best := math.Inf(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if d := dist(i, j); d < best {
				best = d
			}
		}
		return best
	}
	if cap(s.nn) < k+1 {
		s.nn = make([]float64, 0, k+1)
	}
	nn := s.nn[:0]
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		d := dist(i, j)
		if len(nn) == k+1 {
			if d >= nn[k] {
				continue
			}
			nn = nn[:k]
		}
		at := len(nn)
		for at > 0 && nn[at-1] > d {
			at--
		}
		nn = append(nn, 0)
		copy(nn[at+1:], nn[at:])
		nn[at] = d
	}
	s.nn = nn[:0]
	if len(nn) <= k {
		return math.Inf(1)
	}
	return nn[k]
}

// Run is the scratch-reusing form of the package-level Run; see Scratch for
// the aliasing rules.
func (s *Scratch) Run(n int, dist DistFunc, minPts int, eps float64) *Result {
	if n <= 0 {
		s.res = Result{}
		return &s.res
	}
	mRunsTotal.Inc()
	mPointsClustered.Add(int64(n))
	if minPts < 2 {
		minPts = 2
	}
	if eps <= 0 {
		eps = math.Inf(1)
	}
	s.grow(n)

	core := s.core
	k := minPts - 2 // (minPts-1)-th nearest distinct point, 0-based
	for i := 0; i < n; i++ {
		if d := s.kthNearest(n, dist, i, k); k < n-1 && d <= eps {
			core[i] = d
		} else {
			core[i] = math.Inf(1)
		}
	}

	reachOf := s.reachOf
	process := func(p int, reach float64) {
		s.processed[p] = true
		s.order = append(s.order, p)
		s.reach = append(s.reach, reach)
	}
	update := func(p int) {
		if math.IsInf(core[p], 1) {
			return
		}
		for o := 0; o < n; o++ {
			if s.processed[o] || o == p {
				continue
			}
			dpo := dist(p, o)
			if dpo > eps {
				continue
			}
			newReach := math.Max(core[p], dpo)
			if newReach < reachOf[o] {
				reachOf[o] = newReach
				s.seedDecrease(o)
			}
		}
	}

	for p := 0; p < n; p++ {
		if s.processed[p] {
			continue
		}
		process(p, math.Inf(1))
		update(p)
		for {
			q, ok := s.seedPop()
			if !ok {
				break
			}
			process(q, reachOf[q])
			update(q)
		}
	}
	s.res = Result{Order: s.order, Reach: s.reach, Core: core}
	return &s.res
}

// Cluster is a contiguous span [Start, End] (inclusive) of the ordering.
type Cluster struct {
	Start, End int
}

// Size returns the number of ordered points in the cluster.
func (c Cluster) Size() int { return c.End - c.Start + 1 }

// steep-down area bookkeeping for ξ extraction.
type steepDownArea struct {
	start, end int
	mib        float64
}

// ExtractXi runs the ξ-steepness cluster extraction over the reachability
// plot, returning all ξ-clusters (hierarchical; nested spans are expected).
// minClusterSize is the minimum number of points per cluster (the paper's
// n_min = 2).
func (res *Result) ExtractXi(xi float64, minClusterSize int) []Cluster {
	n := len(res.Order)
	if n == 0 {
		return nil
	}
	if xi <= 0 || xi >= 1 {
		xi = 0.1
	}
	if minClusterSize < 2 {
		minClusterSize = 2
	}
	ixi := 1 - xi

	// rp with +Inf sentinel so trailing clusters close.
	rp := make([]float64, n+1)
	copy(rp, res.Reach)
	rp[n] = math.Inf(1)

	// Edge i describes the transition rp[i] → rp[i+1].
	steepDown := func(i int) bool { return lessEq(rp[i+1], mulInf(rp[i], ixi)) }
	steepUp := func(i int) bool { return lessEq(rp[i], mulInf(rp[i+1], ixi)) }
	downward := func(i int) bool { return rp[i] > rp[i+1] }
	upward := func(i int) bool { return rp[i] < rp[i+1] }

	// extendRegion grows a steep region from start: steep edges reset the
	// interruption counter, flat/same-direction edges are tolerated up to
	// minClusterSize in a row, an opposite-direction edge ends the region.
	extendRegion := func(steep func(int) bool, opposite func(int) bool, start int) int {
		end := start
		interruptions := 0
		for i := start; i < n; i++ {
			if steep(i) {
				interruptions = 0
				end = i
				continue
			}
			if opposite(i) {
				break
			}
			interruptions++
			if interruptions > minClusterSize {
				break
			}
		}
		return end
	}

	var clusters []Cluster
	var sdas []steepDownArea
	mib := 0.0

	filterSDAs := func() {
		kept := sdas[:0]
		for _, d := range sdas {
			if lessEq(mib, mulInf(rp[d.start], ixi)) {
				if mib > d.mib {
					d.mib = mib
				}
				kept = append(kept, d)
			}
		}
		sdas = kept
	}

	index := 0
	for index < n {
		if rp[index] > mib {
			mib = rp[index]
		}
		switch {
		case steepDown(index):
			filterSDAs()
			start := index
			end := extendRegion(steepDown, upward, start)
			sdas = append(sdas, steepDownArea{start: start, end: end})
			index = end + 1
			mib = rp[index]
		case steepUp(index):
			filterSDAs()
			uStart := index
			uEnd := extendRegion(steepUp, downward, uStart)
			index = uEnd + 1
			uNext := rp[index]
			mib = uNext

			for di := len(sdas) - 1; di >= 0; di-- {
				d := sdas[di]
				dMax := rp[d.start]
				// Condition 3a via max-in-between: everything inside must
				// sit below both boundaries scaled by 1-ξi.
				if !lessEq(d.mib, mulInf(math.Min(dMax, uNext), ixi)) {
					continue
				}
				s, e := d.start, uEnd
				switch {
				case lessEq(uNext, mulInf(dMax, ixi)):
					// 4b: drop much deeper than the climb — trim the start
					// to the last down-area position still above uNext.
					for x := d.end; x >= d.start; x-- {
						if rp[x] > uNext {
							s = x
							break
						}
					}
				case lessEq(dMax, mulInf(uNext, ixi)):
					// 4c: climb much higher than the drop — trim the end to
					// the first up-area position climbing past dMax.
					for x := uStart; x <= uEnd; x++ {
						if rp[x+1] >= dMax {
							e = x
							break
						}
					}
				}
				if e-s+1 < minClusterSize {
					continue
				}
				if s > d.end && s > uStart {
					continue
				}
				clusters = append(clusters, Cluster{Start: s, End: e})
			}
		default:
			index++
		}
	}
	return clusters
}

// significanceRatio is how much a cluster's boundary reachability must
// exceed its internal scale to count as a real cluster. ξ extraction over a
// noisy, near-flat reachability plot emits spurious micro-clusters whose
// boundaries are barely above the noise floor (a well-known artifact the
// reference implementation suppresses via predecessor correction); requiring
// boundary ≥ 2× the internal median prunes them without affecting real
// facility boundaries, which sit an order of magnitude above the floor.
const significanceRatio = 2.0

// Labels flattens the hierarchical ξ-clusters into one label per point.
// Insignificant clusters (boundary not clearly above the internal
// reachability scale) are pruned; among the significant ones only leaves —
// clusters containing no other significant cluster — assign labels, so
// enclosing super-clusters never swallow their structure. Points in no leaf
// get label -1: noise, an offnet "not colocated" with anything.
func (res *Result) Labels(clusters []Cluster) []int {
	n := len(res.Order)
	posLabel := make([]int, n)
	for i := range posLabel {
		posLabel[i] = -1
	}

	// rp with sentinel for right-boundary lookups.
	rp := make([]float64, n+1)
	copy(rp, res.Reach)
	if n >= 0 {
		rp[n] = math.Inf(1)
	}

	var significant []Cluster
	for _, c := range clusters {
		if c.Start < 0 || c.End >= n || c.Size() < 2 {
			continue
		}
		boundary := math.Min(rp[c.Start], rp[c.End+1])
		internal := make([]float64, 0, c.Size()-1)
		for p := c.Start + 1; p <= c.End; p++ {
			internal = append(internal, rp[p])
		}
		sort.Float64s(internal)
		median := internal[len(internal)/2]
		if math.IsInf(boundary, 1) || boundary >= significanceRatio*median {
			significant = append(significant, c)
		}
	}

	// Keep leaves: significant clusters strictly containing no other
	// significant cluster.
	leaves := significant[:0]
	for i, c := range significant {
		isLeaf := true
		for j, o := range significant {
			if i == j {
				continue
			}
			if c.Start <= o.Start && o.End <= c.End && c.Size() > o.Size() {
				isLeaf = false
				break
			}
		}
		if isLeaf {
			leaves = append(leaves, c)
		}
	}

	sort.Slice(leaves, func(i, j int) bool {
		if leaves[i].Size() != leaves[j].Size() {
			return leaves[i].Size() < leaves[j].Size()
		}
		return leaves[i].Start < leaves[j].Start
	})
	next := 0
	for _, c := range leaves {
		assigned := false
		for p := c.Start; p <= c.End; p++ {
			if posLabel[p] == -1 {
				posLabel[p] = next
				assigned = true
			}
		}
		if assigned {
			next++
		}
	}

	// Map ordering positions back to point indices.
	labels := make([]int, n)
	for pos, p := range res.Order {
		labels[p] = posLabel[pos]
	}
	return labels
}

// ClusterXi is the convenience entry point the colocation analysis uses:
// run the ordering and return flat labels at the given ξ.
func ClusterXi(n int, dist DistFunc, minPts int, xi float64) []int {
	res := Run(n, dist, minPts, math.Inf(1))
	return res.Labels(res.ExtractXi(xi, minPts))
}

// lessEq is ≤ with +Inf handled so Inf ≤ Inf holds.
func lessEq(a, b float64) bool {
	if math.IsInf(b, 1) {
		return true
	}
	return a <= b
}

// mulInf multiplies treating +Inf × x = +Inf for x > 0 (avoids Inf×0=NaN).
func mulInf(a, b float64) float64 {
	if math.IsInf(a, 1) {
		if b > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return a * b
}
