// Package optics implements OPTICS (Ankerst, Breunig, Kriegel, Sander —
// SIGMOD 1999) from scratch: the reachability ordering and the ξ-steepness
// cluster extraction. The paper clusters each ISP's offnet addresses with
// OPTICS over latency-vector distances, n_min = 2, and two extreme
// steepness values ξ ∈ {0.1, 0.9} "likely bounding the actual colocation"
// (§3.2, Appendix A).
//
// With high ξ only very steep reachability drops delimit clusters, so few
// boundaries fire and clusters merge (more inferred colocation); with low ξ
// mild drops already split (less inferred colocation) — exactly the
// direction of the two rows per hypergiant in Table 2.
package optics

import (
	"math"
	"sort"

	"offnetrisk/internal/obs"
)

var (
	mRunsTotal = obs.NewCounter("optics.runs_total",
		"OPTICS orderings computed")
	mPointsClustered = obs.NewCounter("optics.points_clustered",
		"points put through the OPTICS ordering")
)

// DistFunc returns the distance between points i and j. It must be
// symmetric and non-negative.
type DistFunc func(i, j int) float64

// Result is the OPTICS ordering: Order[k] is the index of the k-th processed
// point, Reach[k] its reachability distance at processing time (+Inf for
// starts of new components), and Core[i] the core distance of point i.
type Result struct {
	Order []int
	Reach []float64
	Core  []float64
}

// Run computes the OPTICS ordering for n points under the distance function,
// with the DBSCAN-convention minPts (a point is core when minPts points,
// including itself, lie within eps) and generating distance eps (use +Inf
// for unbounded, as the colocation analysis does).
func Run(n int, dist DistFunc, minPts int, eps float64) *Result {
	if n <= 0 {
		return &Result{}
	}
	mRunsTotal.Inc()
	mPointsClustered.Add(int64(n))
	if minPts < 2 {
		minPts = 2
	}
	if eps <= 0 {
		eps = math.Inf(1)
	}

	core := make([]float64, n)
	d := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		d = d[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d = append(d, dist(i, j))
		}
		sort.Float64s(d)
		k := minPts - 2 // (minPts-1)-th nearest distinct point, 0-based
		if k < len(d) && d[k] <= eps {
			core[i] = d[k]
		} else {
			core[i] = math.Inf(1)
		}
	}

	processed := make([]bool, n)
	reachOf := make([]float64, n)
	for i := range reachOf {
		reachOf[i] = math.Inf(1)
	}
	inSeeds := make([]bool, n)

	res := &Result{Core: core}
	process := func(p int, reach float64) {
		processed[p] = true
		res.Order = append(res.Order, p)
		res.Reach = append(res.Reach, reach)
	}
	update := func(p int) {
		if math.IsInf(core[p], 1) {
			return
		}
		for o := 0; o < n; o++ {
			if processed[o] || o == p {
				continue
			}
			dpo := dist(p, o)
			if dpo > eps {
				continue
			}
			newReach := math.Max(core[p], dpo)
			if newReach < reachOf[o] {
				reachOf[o] = newReach
				inSeeds[o] = true
			}
		}
	}
	popSeed := func() (int, bool) {
		best, bestReach := -1, math.Inf(1)
		for o := 0; o < n; o++ {
			if inSeeds[o] && !processed[o] && reachOf[o] < bestReach {
				best, bestReach = o, reachOf[o]
			}
		}
		if best < 0 {
			return 0, false
		}
		inSeeds[best] = false
		return best, true
	}

	for p := 0; p < n; p++ {
		if processed[p] {
			continue
		}
		process(p, math.Inf(1))
		update(p)
		for {
			q, ok := popSeed()
			if !ok {
				break
			}
			process(q, reachOf[q])
			update(q)
		}
	}
	return res
}

// Cluster is a contiguous span [Start, End] (inclusive) of the ordering.
type Cluster struct {
	Start, End int
}

// Size returns the number of ordered points in the cluster.
func (c Cluster) Size() int { return c.End - c.Start + 1 }

// steep-down area bookkeeping for ξ extraction.
type steepDownArea struct {
	start, end int
	mib        float64
}

// ExtractXi runs the ξ-steepness cluster extraction over the reachability
// plot, returning all ξ-clusters (hierarchical; nested spans are expected).
// minClusterSize is the minimum number of points per cluster (the paper's
// n_min = 2).
func (res *Result) ExtractXi(xi float64, minClusterSize int) []Cluster {
	n := len(res.Order)
	if n == 0 {
		return nil
	}
	if xi <= 0 || xi >= 1 {
		xi = 0.1
	}
	if minClusterSize < 2 {
		minClusterSize = 2
	}
	ixi := 1 - xi

	// rp with +Inf sentinel so trailing clusters close.
	rp := make([]float64, n+1)
	copy(rp, res.Reach)
	rp[n] = math.Inf(1)

	// Edge i describes the transition rp[i] → rp[i+1].
	steepDown := func(i int) bool { return lessEq(rp[i+1], mulInf(rp[i], ixi)) }
	steepUp := func(i int) bool { return lessEq(rp[i], mulInf(rp[i+1], ixi)) }
	downward := func(i int) bool { return rp[i] > rp[i+1] }
	upward := func(i int) bool { return rp[i] < rp[i+1] }

	// extendRegion grows a steep region from start: steep edges reset the
	// interruption counter, flat/same-direction edges are tolerated up to
	// minClusterSize in a row, an opposite-direction edge ends the region.
	extendRegion := func(steep func(int) bool, opposite func(int) bool, start int) int {
		end := start
		interruptions := 0
		for i := start; i < n; i++ {
			if steep(i) {
				interruptions = 0
				end = i
				continue
			}
			if opposite(i) {
				break
			}
			interruptions++
			if interruptions > minClusterSize {
				break
			}
		}
		return end
	}

	var clusters []Cluster
	var sdas []steepDownArea
	mib := 0.0

	filterSDAs := func() {
		kept := sdas[:0]
		for _, d := range sdas {
			if lessEq(mib, mulInf(rp[d.start], ixi)) {
				if mib > d.mib {
					d.mib = mib
				}
				kept = append(kept, d)
			}
		}
		sdas = kept
	}

	index := 0
	for index < n {
		if rp[index] > mib {
			mib = rp[index]
		}
		switch {
		case steepDown(index):
			filterSDAs()
			start := index
			end := extendRegion(steepDown, upward, start)
			sdas = append(sdas, steepDownArea{start: start, end: end})
			index = end + 1
			mib = rp[index]
		case steepUp(index):
			filterSDAs()
			uStart := index
			uEnd := extendRegion(steepUp, downward, uStart)
			index = uEnd + 1
			uNext := rp[index]
			mib = uNext

			for di := len(sdas) - 1; di >= 0; di-- {
				d := sdas[di]
				dMax := rp[d.start]
				// Condition 3a via max-in-between: everything inside must
				// sit below both boundaries scaled by 1-ξi.
				if !lessEq(d.mib, mulInf(math.Min(dMax, uNext), ixi)) {
					continue
				}
				s, e := d.start, uEnd
				switch {
				case lessEq(uNext, mulInf(dMax, ixi)):
					// 4b: drop much deeper than the climb — trim the start
					// to the last down-area position still above uNext.
					for x := d.end; x >= d.start; x-- {
						if rp[x] > uNext {
							s = x
							break
						}
					}
				case lessEq(dMax, mulInf(uNext, ixi)):
					// 4c: climb much higher than the drop — trim the end to
					// the first up-area position climbing past dMax.
					for x := uStart; x <= uEnd; x++ {
						if rp[x+1] >= dMax {
							e = x
							break
						}
					}
				}
				if e-s+1 < minClusterSize {
					continue
				}
				if s > d.end && s > uStart {
					continue
				}
				clusters = append(clusters, Cluster{Start: s, End: e})
			}
		default:
			index++
		}
	}
	return clusters
}

// significanceRatio is how much a cluster's boundary reachability must
// exceed its internal scale to count as a real cluster. ξ extraction over a
// noisy, near-flat reachability plot emits spurious micro-clusters whose
// boundaries are barely above the noise floor (a well-known artifact the
// reference implementation suppresses via predecessor correction); requiring
// boundary ≥ 2× the internal median prunes them without affecting real
// facility boundaries, which sit an order of magnitude above the floor.
const significanceRatio = 2.0

// Labels flattens the hierarchical ξ-clusters into one label per point.
// Insignificant clusters (boundary not clearly above the internal
// reachability scale) are pruned; among the significant ones only leaves —
// clusters containing no other significant cluster — assign labels, so
// enclosing super-clusters never swallow their structure. Points in no leaf
// get label -1: noise, an offnet "not colocated" with anything.
func (res *Result) Labels(clusters []Cluster) []int {
	n := len(res.Order)
	posLabel := make([]int, n)
	for i := range posLabel {
		posLabel[i] = -1
	}

	// rp with sentinel for right-boundary lookups.
	rp := make([]float64, n+1)
	copy(rp, res.Reach)
	if n >= 0 {
		rp[n] = math.Inf(1)
	}

	var significant []Cluster
	for _, c := range clusters {
		if c.Start < 0 || c.End >= n || c.Size() < 2 {
			continue
		}
		boundary := math.Min(rp[c.Start], rp[c.End+1])
		internal := make([]float64, 0, c.Size()-1)
		for p := c.Start + 1; p <= c.End; p++ {
			internal = append(internal, rp[p])
		}
		sort.Float64s(internal)
		median := internal[len(internal)/2]
		if math.IsInf(boundary, 1) || boundary >= significanceRatio*median {
			significant = append(significant, c)
		}
	}

	// Keep leaves: significant clusters strictly containing no other
	// significant cluster.
	leaves := significant[:0]
	for i, c := range significant {
		isLeaf := true
		for j, o := range significant {
			if i == j {
				continue
			}
			if c.Start <= o.Start && o.End <= c.End && c.Size() > o.Size() {
				isLeaf = false
				break
			}
		}
		if isLeaf {
			leaves = append(leaves, c)
		}
	}

	sort.Slice(leaves, func(i, j int) bool {
		if leaves[i].Size() != leaves[j].Size() {
			return leaves[i].Size() < leaves[j].Size()
		}
		return leaves[i].Start < leaves[j].Start
	})
	next := 0
	for _, c := range leaves {
		assigned := false
		for p := c.Start; p <= c.End; p++ {
			if posLabel[p] == -1 {
				posLabel[p] = next
				assigned = true
			}
		}
		if assigned {
			next++
		}
	}

	// Map ordering positions back to point indices.
	labels := make([]int, n)
	for pos, p := range res.Order {
		labels[p] = posLabel[pos]
	}
	return labels
}

// ClusterXi is the convenience entry point the colocation analysis uses:
// run the ordering and return flat labels at the given ξ.
func ClusterXi(n int, dist DistFunc, minPts int, xi float64) []int {
	res := Run(n, dist, minPts, math.Inf(1))
	return res.Labels(res.ExtractXi(xi, minPts))
}

// lessEq is ≤ with +Inf handled so Inf ≤ Inf holds.
func lessEq(a, b float64) bool {
	if math.IsInf(b, 1) {
		return true
	}
	return a <= b
}

// mulInf multiplies treating +Inf × x = +Inf for x > 0 (avoids Inf×0=NaN).
func mulInf(a, b float64) float64 {
	if math.IsInf(a, 1) {
		if b > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return a * b
}
