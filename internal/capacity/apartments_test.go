package capacity

import (
	"math"
	"testing"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

// firstAccessHost returns the first access-network hosting ISP.
func firstAccessHost(t *testing.T, d *hypergiant.Deployment) inet.ASN {
	t.Helper()
	for _, as := range d.HostingISPs() {
		if d.World.ISPs[as].IsAccess() {
			return as
		}
	}
	t.Fatal("no access hosting ISP")
	return 0
}

func TestApartmentsGeneration(t *testing.T) {
	d, _ := buildModel(t, 1)
	isp := firstAccessHost(t, d)
	apts := Apartments(530, isp, 1)
	if len(apts) != 530 {
		t.Fatalf("apartments = %d", len(apts))
	}
	for _, a := range apts {
		if a.ISP != isp {
			t.Fatal("apartment in wrong ISP")
		}
		if a.PeakMbps <= 0 {
			t.Fatal("non-positive peak demand")
		}
		var sum float64
		for _, w := range a.Mix {
			if w < 0 {
				t.Fatal("negative mix weight")
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mix sums to %v", sum)
		}
	}
	// Deterministic.
	again := Apartments(530, isp, 1)
	for i := range apts {
		if apts[i].PeakMbps != again[i].PeakMbps {
			t.Fatal("apartments not deterministic")
		}
	}
}

func TestApartmentStudyReproducesSec41(t *testing.T) {
	// The 530-apartment observation: nearby share high at the trough,
	// lower at the peak.
	d, m := buildModel(t, 1)
	// Pick an access host ISP with all four hypergiants for a clean panel.
	isp := firstAccessHost(t, d)
	for _, as := range d.HostingISPs() {
		if d.World.ISPs[as].IsAccess() && len(d.HGsIn(as)) == 4 {
			isp = as
			break
		}
	}
	apts := Apartments(530, isp, 1)
	hours := ApartmentStudy(m, apts)
	if len(hours) != 530*24 {
		t.Fatalf("household-hours = %d, want %d", len(hours), 530*24)
	}
	for _, h := range hours {
		if h.Total() < 0 {
			t.Fatal("negative demand")
		}
		for _, v := range h.ByOrigin {
			if v < -1e-9 {
				t.Fatalf("negative origin component: %+v", h)
			}
		}
	}
	s := Summarize(hours)
	if s.Apartments != 530 {
		t.Errorf("panel size = %d", s.Apartments)
	}
	if s.TroughNearby <= s.PeakNearby {
		t.Errorf("nearby share should fall at peak: trough %.3f vs peak %.3f",
			s.TroughNearby, s.PeakNearby)
	}
	if s.TroughNearby < 0.5 {
		t.Errorf("trough nearby share = %.3f; 'the vast majority of traffic comes from nearby servers'", s.TroughNearby)
	}
}

func TestApartmentStudyEmpty(t *testing.T) {
	_, m := buildModel(t, 1)
	if got := ApartmentStudy(m, nil); got != nil {
		t.Error("empty panel should produce nil")
	}
}

func TestFlowOriginStrings(t *testing.T) {
	for o, want := range map[FlowOrigin]string{
		OriginOffnet: "offnet", OriginPNI: "pni", OriginIXP: "ixp", OriginTransit: "transit",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
}

func TestApartmentNoLocalOffnetGoesTransit(t *testing.T) {
	// A household whose hypergiant mix has no local deployment must see
	// that share arrive via transit.
	d, m := buildModel(t, 1)
	// Find an access ISP hosting fewer than 4 hypergiants.
	isp := firstAccessHost(t, d)
	found := false
	for _, as := range d.HostingISPs() {
		if d.World.ISPs[as].IsAccess() && len(d.HGsIn(as)) < 4 {
			isp, found = as, true
			break
		}
	}
	if !found {
		t.Skip("every host ISP has all four hypergiants")
	}
	apts := Apartments(10, isp, 1)
	hours := ApartmentStudy(m, apts)
	var transit float64
	for _, h := range hours {
		transit += h.ByOrigin[OriginTransit]
	}
	if transit <= 0 {
		t.Error("missing hypergiants should be served via transit")
	}
	_ = traffic.All
}
