package capacity

import "offnetrisk/internal/scenario"

// ConfigFromScenario builds the capacity-model calibration a resolved spec
// declares: demand from the deployment section, provisioning and burst
// tolerance from the traffic section. With the default scenario it equals
// DefaultConfig(seed) plus the equivalent default mix.
func ConfigFromScenario(sp *scenario.Spec, seed int64) Config {
	return Config{
		Seed:               seed,
		PeakMbpsPerUser:    sp.Deployment.PeakMbpsPerUser,
		OffnetProvisioning: sp.Traffic.OffnetProvisioning,
		BurstFactor:        sp.Traffic.BurstFactor,
		Mix:                sp.Mix(),
	}
}
