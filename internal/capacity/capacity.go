// Package capacity models how hypergiant traffic is actually served — local
// offnets first, spillover across interdomain links second — and reproduces
// the §4 evidence: offnets running near capacity (the COVID-lockdown Netflix
// replay and the diurnal distant-server effect, §4.1) and under-provisioned
// dedicated peering (the PNI census, §4.2.2).
//
// The serving order per (hypergiant, ISP) follows §4.1–4.3: offnet up to
// (burst) capacity, then the dedicated PNI, then shared IXP ports, then
// transit — each layer with finite capacity, each spill landing on a more
// shared resource.
package capacity

import (
	"math"
	"sort"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/traffic"
)

var (
	mModelsBuilt = obs.NewCounter("capacity.models_built",
		"capacity models derived from deployments")
	mFlowsServed = obs.NewCounter("capacity.flows_served",
		"per-(hypergiant,ISP) flows resolved by the serving model")
	mSitesTracked = obs.NewGauge("capacity.sites_tracked",
		"offnet sites in the most recently built capacity model")
)

// Config tunes the capacity model.
type Config struct {
	Seed int64
	// PeakMbpsPerUser matches the deployment's demand model.
	PeakMbpsPerUser float64
	// OffnetProvisioning is the ratio of offnet site capacity to the
	// offnet-servable peak demand. Near 1.0: "offnets are running near
	// capacity, with little ability to absorb sudden increases".
	OffnetProvisioning float64
	// BurstFactor is how far above nominal capacity an offnet can be pushed
	// briefly; the COVID data implies ≈1.2 (offnet traffic grew only 20%
	// under a 58% demand spike).
	BurstFactor float64
	// Mix is the traffic mix demand is computed against; the zero Mix means
	// the paper's published constants.
	Mix traffic.Mix
}

// DefaultConfig returns the calibration used by the experiments.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:               seed,
		PeakMbpsPerUser:    0.3,
		OffnetProvisioning: traffic.SteadyOffnetProvisioning,
		BurstFactor:        1.2,
	}
}

func (c Config) sanitized() Config {
	if c.PeakMbpsPerUser <= 0 {
		c.PeakMbpsPerUser = 0.3
	}
	if c.OffnetProvisioning <= 0 {
		c.OffnetProvisioning = traffic.SteadyOffnetProvisioning
	}
	if c.BurstFactor < 1 {
		c.BurstFactor = 1.2
	}
	c.Mix = c.Mix.Sanitized()
	return c
}

// Diurnal is a 24-hour demand multiplier profile: overnight trough, evening
// peak — the shape of residential access traffic.
var Diurnal = [24]float64{
	0.42, 0.36, 0.33, 0.32, 0.33, 0.37, 0.45, 0.55,
	0.62, 0.66, 0.68, 0.70, 0.72, 0.72, 0.73, 0.76,
	0.82, 0.90, 0.97, 1.00, 0.99, 0.92, 0.74, 0.55,
}

// Site is one hypergiant's offnet plant in one ISP (all its servers pooled),
// with nominal and burst serving capacity in Gbps.
type Site struct {
	HG          traffic.HG
	ISP         inet.ASN
	NominalGbps float64
	BurstGbps   float64
	// Facilities hosting the servers; losing all of them removes the site.
	Facilities map[inet.FacilityID]float64 // facility → share of capacity
}

// Model is the serving-capacity view of a deployment.
type Model struct {
	cfg Config
	dep *hypergiant.Deployment
	// Sites by (hg, isp): offnets inside access networks.
	Sites map[traffic.HG]map[inet.ASN]*Site
	// Upstream sites by (hg, transit AS): offnets hosted in transit
	// providers, absorbing their customers' spillover ("offnets ... can
	// also serve users downstream from a transit provider").
	Upstream map[traffic.HG]map[inet.ASN]*Site
	// PNIGbps and IXP peering capacity by (hg, isp).
	PNIGbps map[traffic.HG]map[inet.ASN]float64
	IXPPort map[traffic.HG]map[inet.ASN]float64
	// IXPOf maps (hg, isp) to the exchange carrying that peering.
	IXPIDOf map[traffic.HG]map[inet.ASN]inet.IXPID
}

// Build derives the capacity model from a deployment. Offnet site capacity
// is calibrated to the offnet-servable share of peak demand times the
// provisioning ratio, reproducing "offnets run near capacity".
func Build(d *hypergiant.Deployment, cfg Config) *Model {
	cfg = cfg.sanitized()
	m := &Model{
		cfg:      cfg,
		dep:      d,
		Sites:    make(map[traffic.HG]map[inet.ASN]*Site),
		Upstream: make(map[traffic.HG]map[inet.ASN]*Site),
		PNIGbps:  make(map[traffic.HG]map[inet.ASN]float64),
		IXPPort:  make(map[traffic.HG]map[inet.ASN]float64),
		IXPIDOf:  make(map[traffic.HG]map[inet.ASN]inet.IXPID),
	}
	for _, hg := range traffic.All {
		m.Sites[hg] = make(map[inet.ASN]*Site)
		m.Upstream[hg] = make(map[inet.ASN]*Site)
		m.PNIGbps[hg] = make(map[inet.ASN]float64)
		m.IXPPort[hg] = make(map[inet.ASN]float64)
		m.IXPIDOf[hg] = make(map[inet.ASN]inet.IXPID)
	}

	for _, hg := range traffic.All {
		for _, as := range d.HostISPs(hg) {
			isp := d.World.ISPs[as]
			r := rngutil.New(cfg.Seed ^ int64(as)*127 ^ int64(hg)*0x27220a95)
			var servable float64
			if isp.Tier == inet.TierTransit {
				// Transit-hosted offnets are sized against the spillover
				// their downstream customers generate in steady state.
				servable = d.World.DownstreamUsers(as) * cfg.Mix.Share(hg) *
					cfg.PeakMbpsPerUser / 1000 * cfg.Mix.SteadyInterdomainShare(hg)
			} else {
				servable = m.PeakDemand(hg, as) * cfg.Mix.OffnetFraction(hg)
			}
			nominal := servable * cfg.OffnetProvisioning * rngutil.Jitter(r, 1.0, 0.06)
			site := &Site{
				HG:          hg,
				ISP:         as,
				NominalGbps: nominal,
				BurstGbps:   nominal * cfg.BurstFactor,
				Facilities:  make(map[inet.FacilityID]float64),
			}
			servers := d.ServersOf(hg, as)
			for _, s := range servers {
				site.Facilities[s.Facility] += 1.0 / float64(len(servers))
			}
			if isp.Tier == inet.TierTransit {
				m.Upstream[hg][as] = site
			} else {
				m.Sites[hg][as] = site
			}
		}
	}
	for _, p := range d.Peerings {
		switch p.Kind {
		case hypergiant.PeerPNI:
			m.PNIGbps[p.HG][p.ISP] += p.CapacityGbps
		case hypergiant.PeerIXP:
			m.IXPPort[p.HG][p.ISP] += p.CapacityGbps
			m.IXPIDOf[p.HG][p.ISP] = p.IXP
		}
	}
	mModelsBuilt.Inc()
	sites := 0
	for _, hg := range traffic.All {
		sites += len(m.Sites[hg]) + len(m.Upstream[hg])
	}
	mSitesTracked.Set(float64(sites))
	return m
}

// PeakDemand is the hypergiant's peak-hour demand in the ISP, in Gbps.
func (m *Model) PeakDemand(hg traffic.HG, as inet.ASN) float64 {
	isp, ok := m.dep.World.ISPs[as]
	if !ok {
		return 0
	}
	return isp.Users * m.cfg.Mix.Share(hg) * m.cfg.PeakMbpsPerUser / 1000
}

// Flow is how one (hypergiant, ISP) demand was served, in Gbps.
type Flow struct {
	HG  traffic.HG
	ISP inet.ASN
	// Demand and its split across serving layers. UpstreamOffnet is spill
	// absorbed by an offnet hosted in one of the ISP's transit providers;
	// Transit is what travels beyond even those.
	Demand, Offnet, PNI, IXP, UpstreamOffnet, Transit float64
}

// Interdomain returns the traffic crossing an interdomain boundary.
func (f Flow) Interdomain() float64 { return f.PNI + f.IXP + f.UpstreamOffnet + f.Transit }

// SharedSpill returns the traffic landing on shared (IXP/transit)
// infrastructure — the collateral-damage currency of §4.3. Upstream-offnet
// traffic rides the shared customer↔provider link too.
func (f Flow) SharedSpill() float64 { return f.IXP + f.UpstreamOffnet + f.Transit }

// Serve computes the steady-state serving split for every (hypergiant, ISP)
// at the given demand multiplier: offnets serve up to their nominal
// capacity. failedFacilities removes the corresponding share of offnet
// capacity (nil for none). The split per layer follows the §4 spillover
// order.
func (m *Model) Serve(mult float64, scale map[traffic.HG]float64, failedFacilities map[inet.FacilityID]bool) []Flow {
	return m.serve(mult, scale, failedFacilities, false)
}

// ServeBurst is Serve with offnets pushed to their short-term burst ceiling
// — the regime of sudden spikes and failovers, where operators squeeze
// whatever the boxes will give (the COVID data shows ≈20%% above nominal).
func (m *Model) ServeBurst(mult float64, scale map[traffic.HG]float64, failedFacilities map[inet.FacilityID]bool) []Flow {
	return m.serve(mult, scale, failedFacilities, true)
}

// ServeHour is the diurnal replay entry point: it serves the given clock
// hour of the 24-hour demand curve, so a temporal-engine step at hour h is
// exactly Serve(Diurnal[h%24], ...) — the differential-oracle identity the
// engine's steady-state steps are tested against. burst selects the
// short-term ceiling regime, as in ServeBurst.
func (m *Model) ServeHour(hour int, scale map[traffic.HG]float64, failedFacilities map[inet.FacilityID]bool, burst bool) []Flow {
	h := ((hour % 24) + 24) % 24
	return m.serve(Diurnal[h], scale, failedFacilities, burst)
}

// Layer identifies one serving-capacity surface of the model for targeted
// cuts.
type Layer int

const (
	// LayerOffnet is in-ISP (and upstream transit-hosted) offnet plant.
	LayerOffnet Layer = iota
	// LayerPNI is dedicated private peering capacity.
	LayerPNI
	// LayerIXP is shared exchange port capacity.
	LayerIXP
)

// String names the layer as event schedules spell it.
func (l Layer) String() string {
	switch l {
	case LayerOffnet:
		return "offnet"
	case LayerPNI:
		return "pni"
	case LayerIXP:
		return "ixp"
	}
	return "unknown"
}

// Cut removes a fraction of one layer's capacity — the temporal engine's
// "a PNI port dies / an offnet rack drains / an IXP LAG degrades" primitive.
type Cut struct {
	Layer Layer
	// HG is the hypergiant the cut applies to; AllHGs widens it to all four.
	HG     traffic.HG
	AllHGs bool
	// ISP restricts the cut to one access (or transit, for offnet) network;
	// 0 means every network.
	ISP inet.ASN
	// Frac is the share of capacity removed, clamped to [0, 1].
	Frac float64
}

func (c Cut) hits(hg traffic.HG, as inet.ASN) bool {
	if !c.AllHGs && c.HG != hg {
		return false
	}
	return c.ISP == 0 || c.ISP == as
}

// WithCuts returns a model with the cuts applied multiplicatively; the
// receiver is never mutated (sites and capacity maps are deep-copied), so a
// temporal engine can re-derive the cut model whenever its active-cut set
// changes while the pristine baseline model stays untouched. An empty cut
// list returns the receiver itself, keeping uncut serving bit-identical.
func (m *Model) WithCuts(cuts []Cut) *Model {
	if len(cuts) == 0 {
		return m
	}
	out := &Model{
		cfg:      m.cfg,
		dep:      m.dep,
		Sites:    make(map[traffic.HG]map[inet.ASN]*Site),
		Upstream: make(map[traffic.HG]map[inet.ASN]*Site),
		PNIGbps:  make(map[traffic.HG]map[inet.ASN]float64),
		IXPPort:  make(map[traffic.HG]map[inet.ASN]float64),
		IXPIDOf:  m.IXPIDOf,
	}
	keep := func(hg traffic.HG, as inet.ASN, layer Layer) float64 {
		k := 1.0
		for _, c := range cuts {
			if c.Layer != layer || !c.hits(hg, as) {
				continue
			}
			f := math.Min(math.Max(c.Frac, 0), 1)
			k *= 1 - f
		}
		return k
	}
	cloneSites := func(src map[inet.ASN]*Site, hg traffic.HG) map[inet.ASN]*Site {
		dst := make(map[inet.ASN]*Site, len(src))
		for as, s := range src {
			cp := *s // Facilities map is read-only downstream; share it.
			k := keep(hg, as, LayerOffnet)
			cp.NominalGbps *= k
			cp.BurstGbps *= k
			dst[as] = &cp
		}
		return dst
	}
	for _, hg := range traffic.All {
		out.Sites[hg] = cloneSites(m.Sites[hg], hg)
		out.Upstream[hg] = cloneSites(m.Upstream[hg], hg)
		out.PNIGbps[hg] = make(map[inet.ASN]float64, len(m.PNIGbps[hg]))
		for as, v := range m.PNIGbps[hg] {
			out.PNIGbps[hg][as] = v * keep(hg, as, LayerPNI)
		}
		out.IXPPort[hg] = make(map[inet.ASN]float64, len(m.IXPPort[hg]))
		for as, v := range m.IXPPort[hg] {
			out.IXPPort[hg][as] = v * keep(hg, as, LayerIXP)
		}
	}
	return out
}

func (m *Model) serve(mult float64, scale map[traffic.HG]float64, failedFacilities map[inet.FacilityID]bool, burst bool) []Flow {
	var flows []Flow
	// Per-(hg, transit) upstream pools, drained greedily in deterministic
	// flow order within one serving pass.
	pool := make(map[traffic.HG]map[inet.ASN]float64)
	for _, hg := range traffic.All {
		pool[hg] = make(map[inet.ASN]float64, len(m.Upstream[hg]))
		for as, site := range m.Upstream[hg] {
			avail := site.NominalGbps
			if burst {
				avail = site.BurstGbps
			}
			if failedFacilities != nil {
				lost := 0.0
				for fid, share := range site.Facilities {
					if failedFacilities[fid] {
						lost += share
					}
				}
				avail *= 1 - lost
			}
			pool[hg][as] = avail
		}
	}
	for _, hg := range traffic.All {
		s := 1.0
		if scale != nil {
			if v, ok := scale[hg]; ok {
				s = v
			}
		}
		isps := make([]inet.ASN, 0, len(m.Sites[hg]))
		for as := range m.Sites[hg] {
			isps = append(isps, as)
		}
		sort.Slice(isps, func(i, j int) bool { return isps[i] < isps[j] })
		for _, as := range isps {
			site := m.Sites[hg][as]
			demand := m.PeakDemand(hg, as) * mult * s
			avail := site.NominalGbps
			if burst {
				avail = site.BurstGbps
			}
			if failedFacilities != nil {
				lost := 0.0
				for fid, share := range site.Facilities {
					if failedFacilities[fid] {
						lost += share
					}
				}
				avail *= 1 - lost
			}
			// Offnets can serve at most the cacheable share of demand.
			offnet := math.Min(demand*m.cfg.Mix.OffnetFraction(hg), avail)
			rest := demand - offnet
			pni := math.Min(rest, m.PNIGbps[hg][as])
			rest -= pni
			ixp := math.Min(rest, m.IXPPort[hg][as])
			rest -= ixp
			// Remaining spill heads to the ISP's providers; offnets hosted
			// there absorb what their pools allow.
			var upstream float64
			if rest > 0 {
				if isp, ok := m.dep.World.ISPs[as]; ok {
					for _, prov := range isp.Providers {
						if rest <= 0 {
							break
						}
						if p, ok := pool[hg][prov]; ok && p > 0 {
							take := math.Min(rest, p)
							pool[hg][prov] -= take
							upstream += take
							rest -= take
						}
					}
				}
			}
			flows = append(flows, Flow{
				HG: hg, ISP: as,
				Demand: demand, Offnet: offnet, PNI: pni, IXP: ixp,
				UpstreamOffnet: upstream, Transit: rest,
			})
		}
	}
	mFlowsServed.Add(int64(len(flows)))
	return flows
}
