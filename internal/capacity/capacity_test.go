package capacity

import (
	"math"
	"testing"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func buildModel(t *testing.T, seed int64) (*hypergiant.Deployment, *Model) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d, Build(d, DefaultConfig(seed))
}

func TestBuildCoversDeployment(t *testing.T) {
	d, m := buildModel(t, 1)
	for _, hg := range traffic.All {
		hosts := d.HostISPs(hg)
		if len(m.Sites[hg])+len(m.Upstream[hg]) != len(hosts) {
			t.Errorf("%s: %d+%d sites for %d hosts", hg, len(m.Sites[hg]), len(m.Upstream[hg]), len(hosts))
		}
		for _, as := range hosts {
			site := m.Sites[hg][as]
			if site == nil {
				site = m.Upstream[hg][as]
			}
			if site == nil {
				t.Fatalf("%s: no site in AS%d", hg, as)
			}
			if d.World.ISPs[as].Tier == inet.TierTransit && m.Upstream[hg][as] == nil {
				t.Fatalf("%s: transit host AS%d not an upstream site", hg, as)
			}
			if site.NominalGbps <= 0 || site.BurstGbps < site.NominalGbps {
				t.Errorf("%s/AS%d: bad capacities %v/%v", hg, as, site.NominalGbps, site.BurstGbps)
			}
			var share float64
			for _, v := range site.Facilities {
				share += v
			}
			if math.Abs(share-1) > 1e-9 {
				t.Errorf("%s/AS%d: facility shares sum to %v", hg, as, share)
			}
		}
	}
}

func TestServeConservation(t *testing.T) {
	_, m := buildModel(t, 1)
	for _, mult := range []float64{0.3, 0.7, 1.0, 1.5} {
		for _, f := range m.Serve(mult, nil, nil) {
			sum := f.Offnet + f.PNI + f.IXP + f.UpstreamOffnet + f.Transit
			if math.Abs(sum-f.Demand) > 1e-6 {
				t.Fatalf("flow not conserved: %v != %v (%+v)", sum, f.Demand, f)
			}
			for _, v := range []float64{f.Offnet, f.PNI, f.IXP, f.UpstreamOffnet, f.Transit} {
				if v < -1e-9 {
					t.Fatalf("negative flow component: %+v", f)
				}
			}
		}
	}
}

func TestOffnetsRunNearCapacity(t *testing.T) {
	// §4.1's premise: at peak, offnets serve ≈ their nominal capacity, and
	// the cacheable share of demand is close to what they can hold.
	_, m := buildModel(t, 1)
	flows := m.Serve(1.0, nil, nil)
	var nearCap, total int
	for _, f := range flows {
		site := m.Sites[f.HG][f.ISP]
		total++
		util := f.Offnet / site.NominalGbps
		if util > 0.85 {
			nearCap++
		}
	}
	if frac := float64(nearCap) / float64(total); frac < 0.8 {
		t.Errorf("only %.2f of sites near capacity at peak; model premise broken", frac)
	}
}

func TestOffPeakServedLocally(t *testing.T) {
	// At the overnight trough, nearly all cacheable traffic fits the local
	// offnet — the §4.1 "vast majority of traffic comes from nearby
	// servers" observation.
	_, m := buildModel(t, 1)
	flows := m.Serve(Diurnal[3], nil, nil)
	for _, f := range flows {
		wantOffnet := f.Demand * f.HG.OffnetFraction()
		if math.Abs(f.Offnet-wantOffnet) > 1e-6 {
			t.Fatalf("trough flow should be fully cache-served: %+v", f)
		}
	}
}

func TestCovidReplayShape(t *testing.T) {
	// §4.1: +58% Netflix demand → offnet growth small (≈20%), interdomain
	// growth large (more than doubled).
	_, m := buildModel(t, 1)
	rep := CovidReplay(m, traffic.Netflix, 1.58)
	og, ig := rep.OffnetGrowth(), rep.InterdomainGrowth()
	if og > 0.30 {
		t.Errorf("offnet growth %.2f, want ≤0.30 (paper: 0.20)", og)
	}
	if og < 0 {
		t.Errorf("offnet growth negative: %.2f", og)
	}
	if ig < 1.0 {
		t.Errorf("interdomain growth %.2f, want >1.0 (paper: more than doubled)", ig)
	}
	if ig < 3*og {
		t.Errorf("interdomain growth (%.2f) should dwarf offnet growth (%.2f)", ig, og)
	}
	if rep.OffnetSharePre < 0.5 || rep.OffnetSharePre > 1.0 {
		t.Errorf("pre-spike offnet share = %.2f, want high (paper: 0.63+)", rep.OffnetSharePre)
	}
}

func TestDiurnalDistantServerEffect(t *testing.T) {
	// Distant share must be higher at peak (hour 19) than at trough (hour
	// 3) — the 530-apartment observation.
	_, m := buildModel(t, 1)
	pts := DiurnalSweep(m)
	if len(pts) != 24 {
		t.Fatalf("got %d hours", len(pts))
	}
	trough, peak := pts[3], pts[19]
	if peak.DistantShare <= trough.DistantShare {
		t.Errorf("distant share at peak (%.3f) not above trough (%.3f)",
			peak.DistantShare, trough.DistantShare)
	}
	if peak.Demand <= trough.Demand {
		t.Error("peak demand should exceed trough demand")
	}
	for _, p := range pts {
		if s := p.NearbyShare + p.DistantShare; math.Abs(s-1) > 1e-6 {
			t.Fatalf("hour %d: shares sum to %v", p.Hour, s)
		}
	}
}

func TestPNICensusShape(t *testing.T) {
	// §4.2.2: a substantial share of PNIs in deficit, ≈10% severe, mean
	// exceedance ≥13%. Aggregate over all four hypergiants — per-hypergiant
	// PNI counts in the tiny world are too small for the 10% tail.
	_, m := buildModel(t, 1)
	var total, deficit, severe int
	var excess float64
	for _, hg := range traffic.All {
		c := CensusPNIs(m, hg)
		total += c.Total
		deficit += c.Deficit
		severe += int(c.SevereFraction*float64(c.Total) + 0.5)
		excess += c.MeanExcessPct * float64(c.Deficit)
	}
	if total == 0 {
		t.Fatal("no PNIs in census")
	}
	if deficit == 0 {
		t.Fatal("no deficit PNIs; §4.2.2 requires under-provisioning")
	}
	if mean := excess / float64(deficit); mean < 10 {
		t.Errorf("mean excess %.1f%%, want ≥10%% (paper: ≥13%%)", mean)
	}
	if f := float64(severe) / float64(total); f < 0.01 || f > 0.4 {
		t.Errorf("severe fraction %.2f, want ≈0.10", f)
	}
	if f := float64(deficit) / float64(total); f < 0.2 || f > 0.9 {
		t.Errorf("deficit fraction %.2f, want substantial (Meta study: 'most sites constrained on some paths')", f)
	}
}

func TestFailedFacilityReducesOffnet(t *testing.T) {
	d, m := buildModel(t, 1)
	// Fail every facility of the first access-network Google host: its
	// offnet flow must drop to zero and spill interdomain.
	var as inet.ASN
	for _, cand := range d.HostISPs(traffic.Google) {
		if d.World.ISPs[cand].IsAccess() {
			as = cand
			break
		}
	}
	failed := make(map[inet.FacilityID]bool)
	for fid := range m.Sites[traffic.Google][as].Facilities {
		failed[fid] = true
	}
	flows := m.Serve(1.0, nil, failed)
	for _, f := range flows {
		if f.HG == traffic.Google && f.ISP == as {
			if f.Offnet != 0 {
				t.Errorf("failed facilities still serving: %+v", f)
			}
			if f.Interdomain() <= 0 {
				t.Error("failure must push traffic interdomain")
			}
		}
	}
}

func TestFlowHelpers(t *testing.T) {
	f := Flow{Demand: 10, Offnet: 4, PNI: 2, IXP: 2, UpstreamOffnet: 1, Transit: 1}
	if f.Interdomain() != 6 {
		t.Errorf("Interdomain = %v", f.Interdomain())
	}
	if f.SharedSpill() != 4 {
		t.Errorf("SharedSpill = %v", f.SharedSpill())
	}
}

func TestCovidReportZeroGuards(t *testing.T) {
	r := CovidReport{}
	if r.OffnetGrowth() != 0 || r.InterdomainGrowth() != 0 {
		t.Error("zero baselines must not divide by zero")
	}
}

// TestServeHourMatchesDiurnal: ServeHour is exactly Serve at the diurnal
// multiplier for that wall-clock hour, with hour wrapping mod 24 — the
// identity the temporal engine's steady-state oracle leans on.
func TestServeHourMatchesDiurnal(t *testing.T) {
	_, m := buildModel(t, 3)
	for h := 0; h < 24; h++ {
		want := m.Serve(Diurnal[h], nil, nil)
		got := m.ServeHour(h, nil, nil, false)
		if len(got) != len(want) {
			t.Fatalf("hour %d: %d flows vs %d", h, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("hour %d flow %d differs", h, i)
			}
		}
	}
	// Hours wrap: 25 ≡ 1, negative hours count back from midnight.
	for _, pair := range [][2]int{{25, 1}, {-1, 23}, {48, 0}} {
		a := m.ServeHour(pair[0], nil, nil, false)
		b := m.ServeHour(pair[1], nil, nil, false)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("hour %d and %d should serve identically", pair[0], pair[1])
			}
		}
	}
}

func sumPNI(flows []Flow) float64 {
	var s float64
	for _, f := range flows {
		s += f.PNI
	}
	return s
}

// TestWithCuts pins the cut-model contract: empty cut lists alias the
// receiver, the receiver is never mutated, cuts scale exactly their layer,
// wildcards hit everything they cover, and stacked cuts multiply.
func TestWithCuts(t *testing.T) {
	_, m := buildModel(t, 3)
	if m.WithCuts(nil) != m {
		t.Fatal("empty cut list must return the receiver itself")
	}

	before := m.Serve(1.0, nil, nil)
	cut := m.WithCuts([]Cut{{Layer: LayerPNI, AllHGs: true, Frac: 1}})
	after := m.Serve(1.0, nil, nil)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("WithCuts mutated the pristine model")
		}
	}
	if pni := sumPNI(cut.Serve(1.0, nil, nil)); pni != 0 {
		t.Fatalf("100%% all-HG PNI cut still serves %.3f Gbps over PNI", pni)
	}

	// A half cut on one hypergiant halves exactly that hypergiant's PNI pool.
	for as, v := range m.PNIGbps[traffic.Akamai] {
		half := m.WithCuts([]Cut{{Layer: LayerPNI, HG: traffic.Akamai, Frac: 0.5}})
		if got := half.PNIGbps[traffic.Akamai][as]; math.Abs(got-v/2) > 1e-12 {
			t.Fatalf("half cut: PNI %v -> %v, want %v", v, got, v/2)
		}
		if got := half.IXPPort[traffic.Akamai][as]; got != m.IXPPort[traffic.Akamai][as] {
			t.Fatal("PNI cut leaked into the IXP layer")
		}
		if half.PNIGbps[traffic.Google][as] != m.PNIGbps[traffic.Google][as] {
			t.Fatal("akamai cut leaked onto google")
		}
		break
	}

	// ISP-scoped cuts hit only that ISP; stacked cuts compose multiplicatively.
	for as, v := range m.IXPPort[traffic.Google] {
		if v == 0 {
			continue
		}
		scoped := m.WithCuts([]Cut{
			{Layer: LayerIXP, HG: traffic.Google, ISP: as, Frac: 0.5},
			{Layer: LayerIXP, HG: traffic.Google, ISP: as, Frac: 0.5},
		})
		if got := scoped.IXPPort[traffic.Google][as]; math.Abs(got-v/4) > 1e-12 {
			t.Fatalf("stacked 50%% cuts: %v -> %v, want %v", v, got, v/4)
		}
		for other, ov := range m.IXPPort[traffic.Google] {
			if other != as && scoped.IXPPort[traffic.Google][other] != ov {
				t.Fatal("ISP-scoped cut leaked onto another ISP")
			}
		}
		break
	}

	// Offnet cuts scale both nominal and burst site capacity.
	for as, site := range m.Sites[traffic.Netflix] {
		c := m.WithCuts([]Cut{{Layer: LayerOffnet, HG: traffic.Netflix, Frac: 0.25}})
		got := c.Sites[traffic.Netflix][as]
		if math.Abs(got.NominalGbps-site.NominalGbps*0.75) > 1e-9 ||
			math.Abs(got.BurstGbps-site.BurstGbps*0.75) > 1e-9 {
			t.Fatalf("offnet cut: nominal %v->%v burst %v->%v, want 75%%",
				site.NominalGbps, got.NominalGbps, site.BurstGbps, got.BurstGbps)
		}
		break
	}
}
