package capacity

import (
	"math"
	"sort"

	"offnetrisk/internal/inet"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/traffic"
)

// §4.1: "Our analysis of traffic to 530 residential apartments supports
// this claim. During low traffic times of day, the vast majority of traffic
// comes from nearby servers, including Netflix and Akamai offnets hosted in
// the ISP. During peak periods, a higher fraction of traffic from the same
// services instead comes from more distant servers."
//
// This file reproduces that observation at the household level: synthetic
// apartments with individual diurnal demand, each flow labelled by where the
// serving capacity model actually sourced it.

// Apartment is one residential subscriber line.
type Apartment struct {
	ID  int
	ISP inet.ASN
	// Mix is the apartment's per-hypergiant demand weight (streaming-heavy
	// households skew Netflix, etc.).
	Mix [traffic.NumHG]float64
	// PeakMbps is the household's peak-hour demand.
	PeakMbps float64
	// Phase shifts the household's diurnal curve by whole hours.
	Phase int
}

// Apartments synthesizes n households inside one ISP under the paper's
// traffic mix.
func Apartments(n int, isp inet.ASN, seed int64) []Apartment {
	return ApartmentsMix(n, isp, seed, traffic.DefaultMix())
}

// ApartmentsMix synthesizes n households whose per-hypergiant demand
// weights follow the given traffic mix.
func ApartmentsMix(n int, isp inet.ASN, seed int64, mix traffic.Mix) []Apartment {
	mix = mix.Sanitized()
	r := rngutil.New(seed ^ 0xa9a97)
	out := make([]Apartment, 0, n)
	for i := 0; i < n; i++ {
		a := Apartment{
			ID:       i,
			ISP:      isp,
			PeakMbps: rngutil.LogNormal(r, math.Log(8), 0.6),
			Phase:    rngutil.IntBetween(r, -2, 2),
		}
		var sum float64
		for hg := range a.Mix {
			w := mix.Share(traffic.HG(hg)) * math.Exp(r.NormFloat64()*0.5)
			a.Mix[hg] = w
			sum += w
		}
		for hg := range a.Mix {
			a.Mix[hg] /= sum
		}
		out = append(out, a)
	}
	return out
}

// FlowOrigin classifies where a household flow was served from.
type FlowOrigin int

// Flow origins, ordered by distance from the subscriber.
const (
	OriginOffnet  FlowOrigin = iota // in-ISP offnet: "nearby"
	OriginPNI                       // hypergiant edge over dedicated peering
	OriginIXP                       // hypergiant edge over an exchange
	OriginTransit                   // distant: via the ISP's providers
)

// String implements fmt.Stringer.
func (o FlowOrigin) String() string {
	switch o {
	case OriginOffnet:
		return "offnet"
	case OriginPNI:
		return "pni"
	case OriginIXP:
		return "ixp"
	default:
		return "transit"
	}
}

// ApartmentHour is one household-hour: demand in Mbps split by origin.
type ApartmentHour struct {
	Apartment int
	Hour      int
	ByOrigin  [4]float64
}

// Total returns the household-hour demand.
func (h ApartmentHour) Total() float64 {
	var t float64
	for _, v := range h.ByOrigin {
		t += v
	}
	return t
}

// NearbyFrac is the share served from the in-ISP offnet.
func (h ApartmentHour) NearbyFrac() float64 {
	t := h.Total()
	if t <= 0 {
		return 0
	}
	return h.ByOrigin[OriginOffnet] / t
}

// ApartmentStudy simulates a day of the apartment panel against the
// capacity model of their ISP: each hour, the ISP-level serving split
// (offnet vs spillover layers) is applied proportionally to every
// household's per-hypergiant demand. Returns one record per
// (apartment, hour).
func ApartmentStudy(m *Model, apartments []Apartment) []ApartmentHour {
	if len(apartments) == 0 {
		return nil
	}
	isp := apartments[0].ISP

	out := make([]ApartmentHour, 0, len(apartments)*24)
	for hour := 0; hour < 24; hour++ {
		flows := m.Serve(Diurnal[hour], nil, nil)
		// Per-HG origin split for this ISP this hour.
		var split [traffic.NumHG][4]float64
		for _, f := range flows {
			if f.ISP != isp {
				continue
			}
			if f.Demand <= 0 {
				continue
			}
			split[f.HG][OriginOffnet] = f.Offnet / f.Demand
			split[f.HG][OriginPNI] = f.PNI / f.Demand
			split[f.HG][OriginIXP] = f.IXP / f.Demand
			split[f.HG][OriginTransit] = f.Transit / f.Demand
		}
		for _, a := range apartments {
			h := (hour + a.Phase + 24) % 24
			demand := a.PeakMbps * Diurnal[h]
			rec := ApartmentHour{Apartment: a.ID, Hour: hour}
			for hg := range a.Mix {
				d := demand * a.Mix[hg]
				s := split[hg]
				if s[0]+s[1]+s[2]+s[3] == 0 {
					// Hypergiant without a local offnet: everything comes
					// over transit.
					rec.ByOrigin[OriginTransit] += d
					continue
				}
				for o := 0; o < 4; o++ {
					rec.ByOrigin[o] += d * s[o]
				}
			}
			out = append(out, rec)
		}
	}
	return out
}

// PanelSummary aggregates an apartment panel into the §4.1 comparison.
type PanelSummary struct {
	Apartments int
	// NearbyFracAt summarizes the panel's median nearby share at each hour.
	NearbyFracAt [24]float64
	// TroughNearby/PeakNearby are the medians at the overnight trough and
	// evening peak.
	TroughNearby, PeakNearby float64
}

// Summarize reduces the household-hours to the paper's observation.
func Summarize(hours []ApartmentHour) PanelSummary {
	var s PanelSummary
	byHour := make(map[int][]float64)
	apts := make(map[int]bool)
	for _, h := range hours {
		byHour[h.Hour] = append(byHour[h.Hour], h.NearbyFrac())
		apts[h.Apartment] = true
	}
	s.Apartments = len(apts)
	for hour := 0; hour < 24; hour++ {
		vals := byHour[hour]
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		s.NearbyFracAt[hour] = vals[len(vals)/2]
	}
	s.TroughNearby = s.NearbyFracAt[3]
	s.PeakNearby = s.NearbyFracAt[19]
	return s
}
