package capacity

import (
	"context"

	"offnetrisk/internal/inet"
	"offnetrisk/internal/par"
	"offnetrisk/internal/traffic"
)

// CovidReport is the §4.1 lockdown replay: demand for one hypergiant spikes
// while everything else stays flat, and the offnet vs interdomain growth is
// compared. The paper's observation: Netflix demand +58% → offnet traffic
// +20%, interdomain Netflix traffic more than doubled.
type CovidReport struct {
	HG          traffic.HG
	SpikeFactor float64
	// Pre/post totals in Gbps across all host ISPs.
	OffnetPre, OffnetPost           float64
	InterdomainPre, InterdomainPost float64
	// OffnetShare is the pre-spike fraction of the hypergiant's traffic
	// served by offnets (the paper's pre-lockdown 63% figure for the
	// affected ISPs).
	OffnetSharePre float64
}

// OffnetGrowth returns the relative growth of offnet-served traffic.
func (r CovidReport) OffnetGrowth() float64 {
	if r.OffnetPre == 0 {
		return 0
	}
	return r.OffnetPost/r.OffnetPre - 1
}

// InterdomainGrowth returns the relative growth of interdomain traffic.
func (r CovidReport) InterdomainGrowth() float64 {
	if r.InterdomainPre == 0 {
		return 0
	}
	return r.InterdomainPost/r.InterdomainPre - 1
}

// CovidReplay runs the lockdown experiment at peak hour for one hypergiant.
func CovidReplay(m *Model, hg traffic.HG, spike float64) CovidReport {
	rep := CovidReport{HG: hg, SpikeFactor: spike}
	pre := m.Serve(1.0, nil, nil)
	post := m.ServeBurst(1.0, map[traffic.HG]float64{hg: spike}, nil)
	var demandPre float64
	for _, f := range pre {
		if f.HG != hg {
			continue
		}
		rep.OffnetPre += f.Offnet
		rep.InterdomainPre += f.Interdomain()
		demandPre += f.Demand
	}
	for _, f := range post {
		if f.HG != hg {
			continue
		}
		rep.OffnetPost += f.Offnet
		rep.InterdomainPost += f.Interdomain()
	}
	if demandPre > 0 {
		rep.OffnetSharePre = rep.OffnetPre / demandPre
	}
	return rep
}

// DiurnalPoint is one hour of the §4.1 residential observation: the share of
// traffic served from nearby (in-ISP offnet) versus distant servers.
type DiurnalPoint struct {
	Hour          int
	Demand        float64
	NearbyShare   float64 // offnet
	DistantShare  float64 // interdomain
	SharedSpill   float64 // Gbps landing on IXP/transit
	OffnetHeadGap float64 // unserved-by-offnet Gbps
}

// DiurnalSweep serves all 24 hours and reports the nearby/distant split —
// the 530-apartment observation: "During peak periods, a higher fraction of
// traffic from the same services instead comes from more distant servers."
func DiurnalSweep(m *Model) []DiurnalPoint {
	out, _ := DiurnalSweepContext(context.Background(), m, 1)
	return out
}

// DiurnalSweepContext is DiurnalSweep with cancellation, serving each of the
// 24 hours as an independent task (Serve is read-only on the model) and
// returning the points in hour order.
func DiurnalSweepContext(ctx context.Context, m *Model, workers int) ([]DiurnalPoint, error) {
	return par.Map(ctx, 24, par.Options{Workers: workers, Name: "diurnal-sweep"},
		func(_ context.Context, h int) (DiurnalPoint, error) {
			flows := m.Serve(Diurnal[h], nil, nil)
			var demand, offnet, inter, spill float64
			for _, f := range flows {
				demand += f.Demand
				offnet += f.Offnet
				inter += f.Interdomain()
				spill += f.SharedSpill()
			}
			p := DiurnalPoint{Hour: h, Demand: demand, SharedSpill: spill}
			if demand > 0 {
				p.NearbyShare = offnet / demand
				p.DistantShare = inter / demand
			}
			return p, nil
		})
}

// PNICensus is the §4.2.2 reproduction: how dedicated interconnects compare
// to the demand they carry.
type PNICensus struct {
	HG    traffic.HG
	Total int
	// Deficit: peak demand routed at the PNI exceeds its capacity.
	Deficit int
	// MeanExcessPct is the average relative exceedance among deficit PNIs
	// (the paper: "demand during peak periods exceeded capacity by an
	// average of at least 13%").
	MeanExcessPct float64
	// SevereFraction is the share of PNIs whose demand reaches 2× capacity
	// ("10% of Meta PNI experienced periods in which traffic demand was
	// twice the capacity").
	SevereFraction float64
}

// CensusPNIs audits every PNI of a hypergiant against the interdomain
// demand offered to it when offnets are saturated at peak.
func CensusPNIs(m *Model, hg traffic.HG) PNICensus {
	c := PNICensus{HG: hg}
	// Normal peak conditions — §4.2.2's deficits occur "even under normal
	// conditions", no failure or spike needed.
	flows := m.Serve(1.0, nil, nil)
	byISP := make(map[inet.ASN]Flow, len(flows))
	for _, f := range flows {
		if f.HG == hg {
			byISP[f.ISP] = f
		}
	}
	var excessSum float64
	for as, cap := range m.PNIGbps[hg] {
		if cap <= 0 {
			continue
		}
		f, ok := byISP[as]
		if !ok {
			continue
		}
		offered := f.PNI + f.IXP + f.UpstreamOffnet + f.Transit // everything the local offnet could not hold
		c.Total++
		if offered > cap {
			c.Deficit++
			excessSum += (offered - cap) / cap
		}
		if offered >= 2*cap {
			c.SevereFraction++
		}
	}
	if c.Deficit > 0 {
		c.MeanExcessPct = 100 * excessSum / float64(c.Deficit)
	}
	if c.Total > 0 {
		c.SevereFraction /= float64(c.Total)
	}
	return c
}
