package svgplot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesWellFormed(t *testing.T) {
	svg := Lines("Title <x>", "hour", "Gbps", []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 3, 2}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 1, 4}, Color: "#000"},
	})
	for _, want := range []string{"<svg", "</svg>", "polyline", "Title &lt;x&gt;", "#000"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
	if strings.Contains(svg, "<x>") {
		t.Error("title not escaped")
	}
	if n := strings.Count(svg, "<polyline"); n != 2 {
		t.Errorf("polylines = %d, want 2", n)
	}
}

func TestStepLinesAddStepPoints(t *testing.T) {
	line := Lines("t", "x", "y", []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 0}}})
	step := StepLines("t", "x", "y", []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 0}}})
	if len(step) <= len(line) {
		t.Error("step chart should contain extra step vertices")
	}
}

func TestBoundsDegenerate(t *testing.T) {
	// Empty and constant series must not produce NaN coordinates.
	for _, series := range [][]Series{
		nil,
		{{Name: "c", X: []float64{1, 2}, Y: []float64{5, 5}}},
		{{Name: "n", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}},
	} {
		svg := Lines("t", "x", "y", series)
		if strings.Contains(svg, "NaN") {
			t.Errorf("NaN leaked into SVG for %+v", series)
		}
	}
}

func TestWorldMap(t *testing.T) {
	svg := WorldMap("Figure 1", []MapPoint{
		{LatDeg: 48.9, LonDeg: 2.3, Value: 0.9, Label: "FR"},
		{LatDeg: -34.9, LonDeg: -56.2, Value: 0.2, Label: "UY"},
		{LatDeg: 0, LonDeg: 0, Value: 2.0, Label: "clamped"}, // out of range clamps
	})
	if n := strings.Count(svg, "<circle"); n != 3 {
		t.Errorf("circles = %d, want 3", n)
	}
	if !strings.Contains(svg, "FR: 90%") {
		t.Error("tooltip missing")
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN in world map")
	}
}

func TestBars(t *testing.T) {
	svg := Bars("reachability", "order", "ms", []float64{1, 2, math.Inf(1), 0.5})
	if n := strings.Count(svg, "<rect"); n < 5 { // background + 4 bars
		t.Errorf("rects = %d, want ≥5", n)
	}
	if !strings.Contains(svg, "#d62728") {
		t.Error("capped (infinite) bar should be highlighted")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("non-finite values leaked")
	}
	// All-zero input guards the scale.
	if svg := Bars("z", "x", "y", []float64{0, 0}); strings.Contains(svg, "NaN") {
		t.Error("zero bars produced NaN")
	}
}
