// Package svgplot renders the paper's figures as standalone SVG documents
// using nothing but the standard library: step lines for the Figure 2 CCDF,
// line charts for the diurnal sweep, a world scatter for the Figure 1 maps,
// and bar plots for reachability diagrams. The output is deliberately
// minimal, deterministic, and viewer-agnostic.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line: X strictly ascending.
type Series struct {
	Name  string
	X, Y  []float64
	Color string
}

// Palette supplies default series colors.
var Palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"}

const (
	width   = 720
	height  = 440
	marginL = 70
	marginR = 30
	marginT = 46
	marginB = 58
)

type canvas struct {
	b strings.Builder
}

func newCanvas(title string) *canvas {
	c := &canvas{}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(&c.b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`,
		width/2, escape(title))
	return c
}

func (c *canvas) finish() string {
	c.b.WriteString(`</svg>`)
	return c.b.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// bounds computes data extents across series with degenerate-range guards.
func bounds(series []Series) (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return
}

type scale struct {
	xmin, xmax, ymin, ymax float64
}

func (sc scale) px(x float64) float64 {
	return marginL + (x-sc.xmin)/(sc.xmax-sc.xmin)*(width-marginL-marginR)
}

func (sc scale) py(y float64) float64 {
	return float64(height-marginB) - (y-sc.ymin)/(sc.ymax-sc.ymin)*float64(height-marginT-marginB)
}

func (c *canvas) axes(sc scale, xlabel, ylabel string) {
	fmt.Fprintf(&c.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&c.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&c.b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`,
		(marginL+width-marginR)/2, height-14, escape(xlabel))
	fmt.Fprintf(&c.b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(ylabel))
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		xv := sc.xmin + (sc.xmax-sc.xmin)*float64(i)/5
		yv := sc.ymin + (sc.ymax-sc.ymin)*float64(i)/5
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`,
			sc.px(xv), height-marginB, sc.px(xv), height-marginB+5)
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			sc.px(xv), height-marginB+18, fmtTick(xv))
		fmt.Fprintf(&c.b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
			marginL-5, sc.py(yv), marginL, sc.py(yv))
		fmt.Fprintf(&c.b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`,
			marginL-8, sc.py(yv)+3, fmtTick(yv))
	}
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.1fB", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10 || av == 0:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func (c *canvas) legend(series []Series) {
	y := marginT + 4
	for i, s := range series {
		color := s.Color
		if color == "" {
			color = Palette[i%len(Palette)]
		}
		fmt.Fprintf(&c.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			width-marginR-150, y, width-marginR-120, y, color)
		fmt.Fprintf(&c.b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`,
			width-marginR-114, y+4, escape(s.Name))
		y += 18
	}
}

func (c *canvas) polyline(sc scale, s Series, color string, step bool) {
	if len(s.X) == 0 {
		return
	}
	var pts []string
	prevY := math.NaN()
	for i := range s.X {
		if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
			continue
		}
		if step && !math.IsNaN(prevY) {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sc.px(s.X[i]), sc.py(prevY)))
		}
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", sc.px(s.X[i]), sc.py(s.Y[i])))
		prevY = s.Y[i]
	}
	fmt.Fprintf(&c.b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`,
		color, strings.Join(pts, " "))
}

// Lines renders a multi-series line chart.
func Lines(title, xlabel, ylabel string, series []Series) string {
	return plot(title, xlabel, ylabel, series, false)
}

// StepLines renders a multi-series step chart (CCDFs).
func StepLines(title, xlabel, ylabel string, series []Series) string {
	return plot(title, xlabel, ylabel, series, true)
}

func plot(title, xlabel, ylabel string, series []Series, step bool) string {
	c := newCanvas(title)
	xmin, xmax, ymin, ymax := bounds(series)
	sc := scale{xmin, xmax, ymin, ymax}
	c.axes(sc, xlabel, ylabel)
	for i, s := range series {
		color := s.Color
		if color == "" {
			color = Palette[i%len(Palette)]
		}
		c.polyline(sc, s, color, step)
	}
	c.legend(series)
	return c.finish()
}

// MapPoint is one dot on the world scatter: a location with an intensity in
// [0,1].
type MapPoint struct {
	LatDeg, LonDeg float64
	Value          float64
	Label          string
}

// WorldMap renders an equirectangular scatter of points shaded by value —
// the stand-in for Figure 1's choropleths.
func WorldMap(title string, points []MapPoint) string {
	c := newCanvas(title)
	sc := scale{xmin: -180, xmax: 180, ymin: -60, ymax: 75}
	// Frame.
	fmt.Fprintf(&c.b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f4f7fa" stroke="#ccc"/>`,
		marginL, marginT, width-marginL-marginR, height-marginT-marginB)
	for _, p := range points {
		v := math.Max(0, math.Min(1, p.Value))
		// Light grey → deep red.
		r := int(220 - 60*v)
		g := int(220 - 180*v)
		b := int(220 - 180*v)
		fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="rgb(%d,%d,%d)" stroke="#666" stroke-width="0.4"><title>%s: %.0f%%</title></circle>`,
			sc.px(p.LonDeg), sc.py(p.LatDeg), 4+6*v, r, g, b, escape(p.Label), 100*v)
	}
	return c.finish()
}

// Bars renders a single-series bar plot (reachability diagrams).
func Bars(title, xlabel, ylabel string, values []float64) string {
	c := newCanvas(title)
	ymax := 0.0
	for _, v := range values {
		if !math.IsInf(v, 1) && v > ymax {
			ymax = v
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	sc := scale{xmin: 0, xmax: float64(len(values)), ymin: 0, ymax: ymax * 1.05}
	c.axes(sc, xlabel, ylabel)
	bw := (float64(width-marginL-marginR) / float64(len(values))) * 0.9
	for i, v := range values {
		val := v
		capped := false
		if math.IsInf(v, 1) || v > ymax {
			val = ymax
			capped = true
		}
		color := "#1f77b4"
		if capped {
			color = "#d62728"
		}
		x := sc.px(float64(i))
		fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
			x, sc.py(val), bw, sc.py(0)-sc.py(val), color)
	}
	return c.finish()
}
