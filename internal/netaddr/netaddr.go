// Package netaddr provides the IPv4 arithmetic the synthetic Internet is
// built on: addresses, prefixes, /24 enumeration, and sequential allocation
// pools. It deliberately mirrors how the paper's pipelines treat address
// space — Censys scans enumerate IPv4 hosts, the traceroute survey targets
// "a single IP address per /24 announced to the global Internet", and ISPs
// hand hypergiants "a BGP feed of IP prefixes".
package netaddr

import (
	"fmt"
	"sort"
)

// Addr is an IPv4 address in host byte order. The zero value is 0.0.0.0.
type Addr uint32

// AddrFrom4 builds an address from its four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad string.
func ParseAddr(s string) (Addr, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("netaddr: parse %q: %w", s, err)
	}
	for _, o := range []int{a, b, c, d} {
		if o < 0 || o > 255 {
			return 0, fmt.Errorf("netaddr: parse %q: octet out of range", s)
		}
	}
	return AddrFrom4(byte(a), byte(b), byte(c), byte(d)), nil
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Slash24 returns the /24 prefix containing the address.
func (a Addr) Slash24() Prefix {
	return Prefix{Addr: a &^ 0xff, Bits: 24}
}

// Prefix is an IPv4 CIDR prefix. Addr must have its host bits zero; use
// Canonical to enforce that.
type Prefix struct {
	Addr Addr
	Bits int
}

// MustPrefix parses a CIDR string, panicking on error. For tests and tables.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses a CIDR string like "10.1.2.0/24".
func ParsePrefix(s string) (Prefix, error) {
	var quad string
	var bits int
	if _, err := fmt.Sscanf(s, "%15s", &quad); err != nil {
		return Prefix{}, fmt.Errorf("netaddr: parse prefix %q: %w", s, err)
	}
	var a, b, c, d int
	if n, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &bits); n != 5 || err != nil {
		return Prefix{}, fmt.Errorf("netaddr: parse prefix %q", s)
	}
	for _, o := range []int{a, b, c, d} {
		if o < 0 || o > 255 {
			return Prefix{}, fmt.Errorf("netaddr: parse prefix %q: octet out of range", s)
		}
	}
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: parse prefix %q: bad mask", s)
	}
	p := Prefix{Addr: AddrFrom4(byte(a), byte(b), byte(c), byte(d)), Bits: bits}
	return p.Canonical(), nil
}

// Canonical returns the prefix with host bits zeroed.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: p.Addr & p.mask(), Bits: p.Bits}
}

func (p Prefix) mask() Addr {
	if p.Bits <= 0 {
		return 0
	}
	if p.Bits >= 32 {
		return 0xffffffff
	}
	return Addr(^uint32(0) << (32 - p.Bits))
}

// Contains reports whether the address falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&p.mask() == p.Addr&p.mask()
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Addr&q.mask()) || q.Contains(p.Addr&p.mask())
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - p.Bits)
}

// First returns the first (network) address of the prefix.
func (p Prefix) First() Addr { return p.Addr & p.mask() }

// Last returns the last (broadcast) address of the prefix.
func (p Prefix) Last() Addr { return p.First() + Addr(p.NumAddrs()-1) }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}

// Slash24s returns every /24 contained in the prefix. For prefixes longer
// than /24 it returns the single covering /24.
func (p Prefix) Slash24s() []Prefix {
	p = p.Canonical()
	if p.Bits >= 24 {
		return []Prefix{p.Addr.Slash24()}
	}
	n := 1 << (24 - p.Bits)
	out := make([]Prefix, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Prefix{Addr: p.First() + Addr(i<<8), Bits: 24})
	}
	return out
}

// AppendSlash24Range appends the minimal set of aligned CIDR prefixes
// covering the run of n /24s starting at the /24-aligned address start. It is
// the inverse of Slash24s for contiguous runs: the sharded world builder
// plans address space as [start24, start24+n) intervals and renders them as
// announcements here, without ever touching a shared allocation pool. start
// must be /24-aligned; n <= 0 appends nothing.
func AppendSlash24Range(dst []Prefix, start Addr, n int) []Prefix {
	start &^= 0xff
	for n > 0 {
		// The block size is bounded by both the alignment of start and the
		// remaining run length: the largest power of two dividing start/256
		// that still fits in n.
		max24 := 1 << 16 // a /8, the largest block the builder ever needs
		if a := int((start >> 8) & -(start >> 8)); start != 0 && a < max24 {
			max24 = a
		}
		for max24 > n {
			max24 >>= 1
		}
		bits := 24
		for s := max24; s > 1; s >>= 1 {
			bits--
		}
		dst = append(dst, Prefix{Addr: start, Bits: bits})
		start += Addr(max24) << 8
		n -= max24
	}
	return dst
}

// Pool hands out non-overlapping prefixes and addresses from a base prefix.
// The synthetic Internet uses one pool per address-space "registry" so ISP,
// hypergiant, and IXP prefixes never collide.
type Pool struct {
	base Prefix
	next Addr
}

// NewPool creates a pool over the given base prefix.
func NewPool(base Prefix) *Pool {
	base = base.Canonical()
	return &Pool{base: base, next: base.First()}
}

// AllocPrefix carves the next aligned prefix of the given length. It returns
// an error when the pool is exhausted or bits is out of range.
func (p *Pool) AllocPrefix(bits int) (Prefix, error) {
	if bits < p.base.Bits || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: cannot allocate /%d from %s", bits, p.base)
	}
	size := Addr(1) << (32 - bits)
	// Align upward.
	start := (p.next + size - 1) &^ (size - 1)
	if start < p.next || start+size-1 > p.base.Last() || start < p.base.First() {
		return Prefix{}, fmt.Errorf("netaddr: pool %s exhausted allocating /%d", p.base, bits)
	}
	p.next = start + size
	return Prefix{Addr: start, Bits: bits}, nil
}

// AllocAddr hands out the next single address.
func (p *Pool) AllocAddr() (Addr, error) {
	pre, err := p.AllocPrefix(32)
	if err != nil {
		return 0, err
	}
	return pre.Addr, nil
}

// Remaining returns how many addresses are still available.
func (p *Pool) Remaining() uint64 {
	if p.next > p.base.Last() {
		return 0
	}
	return uint64(p.base.Last()-p.next) + 1
}

// SortPrefixes orders prefixes by address then mask length; deterministic
// iteration order for map-derived prefix sets.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr != ps[j].Addr {
			return ps[i].Addr < ps[j].Addr
		}
		return ps[i].Bits < ps[j].Bits
	})
}

// AdvancePast moves the pool cursor just past the given address if it is
// inside the pool; used when reconstructing a pool around pre-existing
// allocations.
func (p *Pool) AdvancePast(a Addr) {
	if a >= p.base.First() && a <= p.base.Last() && a+1 > p.next {
		p.next = a + 1
	}
}
