package netaddr

import (
	"testing"
	"testing/quick"
)

func TestAddrRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.1.2.3", "192.168.255.1", "255.255.255.255"}
	for _, s := range cases {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "256.1.1.1", "a.b.c.d"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) should fail", s)
		}
	}
}

func TestAddrRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := ParseAddr(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlash24(t *testing.T) {
	a, _ := ParseAddr("10.1.2.3")
	p := a.Slash24()
	if p.String() != "10.1.2.0/24" {
		t.Errorf("Slash24 = %s", p)
	}
	if !p.Contains(a) {
		t.Error("slash24 must contain its address")
	}
}

func TestPrefixParseCanonical(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.1.2.0/24" {
		t.Errorf("canonicalization failed: %s", p)
	}
	if p.NumAddrs() != 256 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if p.First().String() != "10.1.2.0" || p.Last().String() != "10.1.2.255" {
		t.Errorf("bounds: %s..%s", p.First(), p.Last())
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "300.0.0.0/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", s)
		}
	}
}

func TestContainsProperty(t *testing.T) {
	f := func(v uint32, bits uint8) bool {
		b := int(bits % 33)
		p := Prefix{Addr: Addr(v), Bits: b}.Canonical()
		// Every address in [First, Last] is contained; First-1 and Last+1
		// (when they exist) are not.
		if !p.Contains(p.First()) || !p.Contains(p.Last()) {
			return false
		}
		if p.First() > 0 && p.Contains(p.First()-1) {
			return false
		}
		if p.Last() < 0xffffffff && p.Contains(p.Last()+1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlaps(t *testing.T) {
	a := MustPrefix("10.0.0.0/8")
	b := MustPrefix("10.1.0.0/16")
	c := MustPrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestSlash24Enumeration(t *testing.T) {
	p := MustPrefix("10.0.0.0/22")
	s := p.Slash24s()
	if len(s) != 4 {
		t.Fatalf("want 4 /24s, got %d", len(s))
	}
	want := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}
	for i, w := range want {
		if s[i].String() != w {
			t.Errorf("s[%d] = %s, want %s", i, s[i], w)
		}
	}
	// Longer than /24 collapses to its covering /24.
	host := MustPrefix("10.9.8.128/25")
	s = host.Slash24s()
	if len(s) != 1 || s[0].String() != "10.9.8.0/24" {
		t.Errorf("/25 slash24s = %v", s)
	}
}

func TestPoolAllocation(t *testing.T) {
	pool := NewPool(MustPrefix("10.0.0.0/16"))
	a, err := pool.AllocPrefix(24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.AllocPrefix(24)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overlaps(b) {
		t.Errorf("allocations overlap: %s %s", a, b)
	}
	if a.String() != "10.0.0.0/24" || b.String() != "10.0.1.0/24" {
		t.Errorf("unexpected allocations: %s %s", a, b)
	}
}

func TestPoolAlignmentAfterMixedSizes(t *testing.T) {
	pool := NewPool(MustPrefix("10.0.0.0/16"))
	if _, err := pool.AllocAddr(); err != nil { // consumes one /32
		t.Fatal(err)
	}
	p, err := pool.AllocPrefix(24) // must skip to next aligned /24
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.0.1.0/24" {
		t.Errorf("aligned alloc = %s, want 10.0.1.0/24", p)
	}
}

func TestPoolExhaustion(t *testing.T) {
	pool := NewPool(MustPrefix("10.0.0.0/30"))
	for i := 0; i < 4; i++ {
		if _, err := pool.AllocAddr(); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := pool.AllocAddr(); err == nil {
		t.Error("exhausted pool should fail")
	}
	if pool.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", pool.Remaining())
	}
}

func TestPoolNonOverlappingProperty(t *testing.T) {
	f := func(seed uint8) bool {
		pool := NewPool(MustPrefix("172.16.0.0/12"))
		var allocs []Prefix
		sizes := []int{24, 22, 28, 24, 20, 32}
		for i := 0; i < int(seed%20)+2; i++ {
			p, err := pool.AllocPrefix(sizes[i%len(sizes)])
			if err != nil {
				return true // exhaustion is fine
			}
			for _, q := range allocs {
				if p.Overlaps(q) {
					return false
				}
			}
			allocs = append(allocs, p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoolRejectsBadSizes(t *testing.T) {
	pool := NewPool(MustPrefix("10.0.0.0/16"))
	if _, err := pool.AllocPrefix(8); err == nil {
		t.Error("allocating /8 from /16 should fail")
	}
	if _, err := pool.AllocPrefix(33); err == nil {
		t.Error("allocating /33 should fail")
	}
}

func TestSortPrefixes(t *testing.T) {
	ps := []Prefix{MustPrefix("10.2.0.0/16"), MustPrefix("10.1.0.0/16"), MustPrefix("10.1.0.0/24")}
	SortPrefixes(ps)
	if ps[0].String() != "10.1.0.0/16" || ps[1].String() != "10.1.0.0/24" || ps[2].String() != "10.2.0.0/16" {
		t.Errorf("sorted: %v", ps)
	}
}

func TestPoolAdvancePast(t *testing.T) {
	pool := NewPool(MustPrefix("10.0.0.0/16"))
	used, _ := ParseAddr("10.0.3.200")
	pool.AdvancePast(used)
	p, err := pool.AllocPrefix(24)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.0.4.0/24" {
		t.Errorf("alloc after advance = %s, want 10.0.4.0/24", p)
	}
	// Out-of-pool addresses are ignored.
	outside, _ := ParseAddr("192.168.0.1")
	before := pool.Remaining()
	pool.AdvancePast(outside)
	if pool.Remaining() != before {
		t.Error("AdvancePast moved cursor for an outside address")
	}
	// Never moves backwards.
	early, _ := ParseAddr("10.0.0.1")
	pool.AdvancePast(early)
	if pool.Remaining() != before {
		t.Error("AdvancePast moved cursor backwards")
	}
}

func TestAppendSlash24Range(t *testing.T) {
	cases := []struct {
		start string
		n     int
		want  []string
	}{
		{"16.0.0.0", 1, []string{"16.0.0.0/24"}},
		{"16.0.0.0", 8, []string{"16.0.0.0/21"}},
		{"16.0.1.0", 8, []string{"16.0.1.0/24", "16.0.2.0/23", "16.0.4.0/22", "16.0.8.0/24"}},
		{"16.0.0.0", 256, []string{"16.0.0.0/16"}},
		{"16.0.0.0", 512, []string{"16.0.0.0/15"}},
		{"16.3.0.0", 300, []string{"16.3.0.0/16", "16.4.0.0/19", "16.4.32.0/21", "16.4.40.0/22"}},
		{"16.0.0.0", 0, nil},
	}
	for _, c := range cases {
		start, err := ParseAddr(c.start)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendSlash24Range(nil, start, c.n)
		var gotS []string
		for _, p := range got {
			gotS = append(gotS, p.String())
		}
		if len(gotS) != len(c.want) {
			t.Fatalf("AppendSlash24Range(%s, %d) = %v, want %v", c.start, c.n, gotS, c.want)
			continue
		}
		for i := range gotS {
			if gotS[i] != c.want[i] {
				t.Errorf("AppendSlash24Range(%s, %d)[%d] = %s, want %s", c.start, c.n, i, gotS[i], c.want[i])
			}
		}
	}
}

// TestAppendSlash24RangeProperty: for random aligned runs, the decomposition
// covers exactly the run — contiguous, non-overlapping, minimal-count — and
// every prefix is properly aligned.
func TestAppendSlash24RangeProperty(t *testing.T) {
	check := func(startSlot uint16, nRaw uint16) bool {
		start := Addr(16<<24) + Addr(startSlot)<<8
		n := int(nRaw%600) + 1
		ps := AppendSlash24Range(nil, start, n)
		cursor := start
		var total uint64
		for _, p := range ps {
			if p.Canonical() != p {
				return false // misaligned
			}
			if p.First() != cursor {
				return false // gap or overlap
			}
			cursor = p.Last() + 1
			total += p.NumAddrs()
		}
		return total == uint64(n)*256
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
