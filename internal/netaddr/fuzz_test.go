package netaddr

import "testing"

// FuzzParseAddr checks that the parser never panics and that everything it
// accepts round-trips.
func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{"0.0.0.0", "255.255.255.255", "10.1.2.3", "", "1.2.3", "a.b.c.d", "999.1.1.1", "1.2.3.4.5", "-1.2.3.4"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		b, err := ParseAddr(a.String())
		if err != nil {
			t.Fatalf("accepted %q → %s which fails to re-parse: %v", s, a, err)
		}
		if b != a {
			t.Fatalf("round trip %q: %s != %s", s, a, b)
		}
	})
}

// FuzzParsePrefix checks prefix parsing invariants: no panics, accepted
// prefixes are canonical and contain their own bounds.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{"10.0.0.0/8", "0.0.0.0/0", "255.255.255.255/32", "10.1.2.3/24", "10.0.0.0/33", "x/8", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.Canonical() != p {
			t.Fatalf("accepted %q not canonical: %s", s, p)
		}
		if !p.Contains(p.First()) || !p.Contains(p.Last()) {
			t.Fatalf("%s does not contain its own bounds", p)
		}
		if p.NumAddrs() == 0 {
			t.Fatalf("%s has zero addresses", p)
		}
	})
}
