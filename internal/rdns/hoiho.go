package rdns

import (
	"sort"
	"strings"

	"offnetrisk/internal/geo"
)

// The validation pipeline's ExtractMetro is a dictionary scan. The system
// the paper actually cites — HOIHO, "Learning to Extract Geographic
// Information from Internet Router Hostnames" — *learns* per-operator
// naming templates from hostnames with known locations, which survives
// ambiguity a dictionary cannot (a constant brand token that collides with
// an airport code appears in every hostname of an operator; only position
// identifies the real geohint). This file implements that learner.

// TrainingSample pairs a hostname with its known metro code.
type TrainingSample struct {
	Hostname string
	Metro    string
}

// Template is a learned per-domain extraction rule: in hostnames under
// Domain, the geohint is the Part-th dash-separated token of the
// LabelFromEnd-th dot label (counting from the end, 0 = TLD side).
type Template struct {
	Domain       string
	LabelFromEnd int
	Part         int
	// Accuracy and Support record the rule's training performance.
	Accuracy float64
	Support  int
}

// Learned is a set of per-domain templates with a dictionary fallback.
type Learned struct {
	rules map[string]Template
}

// domainOf returns the registration-ish suffix the learner keys on: the
// last two labels.
func domainOf(hostname string) string {
	labels := strings.Split(strings.ToLower(hostname), ".")
	if len(labels) < 2 {
		return strings.ToLower(hostname)
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// tokenAt returns the candidate geohint at a position, or "" when the
// position does not exist. Tokens are lower-cased with trailing digits
// trimmed, matching hostname conventions like lhr2 or nyc3.
func tokenAt(hostname string, labelFromEnd, part int) string {
	labels := strings.Split(strings.ToLower(hostname), ".")
	idx := len(labels) - 1 - labelFromEnd
	if idx < 0 || idx >= len(labels) {
		return ""
	}
	parts := strings.FieldsFunc(labels[idx], func(r rune) bool { return r == '-' || r == '_' })
	if part >= len(parts) {
		return ""
	}
	return trimDigits(parts[part])
}

// Learn fits per-domain templates: for every candidate position, count how
// often the token equals the sample's metro code; keep the best position
// per domain when it clears the support and accuracy thresholds.
func Learn(samples []TrainingSample, minSupport int, minAccuracy float64) *Learned {
	if minSupport < 1 {
		minSupport = 1
	}
	type pos struct{ label, part int }
	perDomain := make(map[string]map[pos][2]int) // pos → [hits, total]
	for _, s := range samples {
		d := domainOf(s.Hostname)
		if perDomain[d] == nil {
			perDomain[d] = make(map[pos][2]int)
		}
		for label := 0; label < 6; label++ {
			for part := 0; part < 6; part++ {
				tok := tokenAt(s.Hostname, label, part)
				if tok == "" {
					continue
				}
				c := perDomain[d][pos{label, part}]
				c[1]++
				if tok == strings.ToLower(s.Metro) {
					c[0]++
				}
				perDomain[d][pos{label, part}] = c
			}
		}
	}

	out := &Learned{rules: make(map[string]Template)}
	for d, positions := range perDomain {
		// Deterministic iteration: sort candidate positions.
		var cands []pos
		for p := range positions {
			cands = append(cands, p)
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].label != cands[j].label {
				return cands[i].label < cands[j].label
			}
			return cands[i].part < cands[j].part
		})
		best := Template{}
		for _, p := range cands {
			c := positions[p]
			if c[1] < minSupport {
				continue
			}
			acc := float64(c[0]) / float64(c[1])
			if acc > best.Accuracy {
				best = Template{
					Domain: d, LabelFromEnd: p.label, Part: p.part,
					Accuracy: acc, Support: c[1],
				}
			}
		}
		if best.Support >= minSupport && best.Accuracy >= minAccuracy {
			out.rules[d] = best
		}
	}
	return out
}

// Rules returns the learned templates, sorted by domain.
func (l *Learned) Rules() []Template {
	out := make([]Template, 0, len(l.rules))
	for _, t := range l.rules {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Extract applies the learned template for the hostname's domain; when no
// template exists (or its token is not a known metro) it falls back to the
// dictionary scan.
func (l *Learned) Extract(hostname string) (geo.Metro, bool) {
	if t, ok := l.rules[domainOf(hostname)]; ok {
		if tok := tokenAt(hostname, t.LabelFromEnd, t.Part); tok != "" {
			if m, ok := geo.MetroByCode(tok); ok {
				return m, true
			}
		}
		// A learned template that fails to produce a known metro means the
		// hostname genuinely has no (recognizable) geohint at the learned
		// position; don't guess from other positions.
		return geo.Metro{}, false
	}
	return ExtractMetro(hostname)
}
