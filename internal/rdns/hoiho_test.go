package rdns

import (
	"fmt"
	"testing"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/rngutil"
)

// ambiguousHost builds hostnames for an operator whose constant brand token
// "lim" collides with the Lima metro code — the dictionary scan sees two
// candidate codes and gives up; only position identifies the geohint.
func ambiguousHost(metro string, i int) string {
	return fmt.Sprintf("lim-core-%02d.%s%d.net.example.net", i, metro, i%4+1)
}

func ambiguousSamples(n int, seed int64) []TrainingSample {
	r := rngutil.New(seed)
	out := make([]TrainingSample, 0, n)
	for i := 0; i < n; i++ {
		m := geo.Metros[r.Intn(len(geo.Metros))]
		out = append(out, TrainingSample{Hostname: ambiguousHost(m.Code, i), Metro: m.Code})
	}
	return out
}

func TestDictionaryFailsOnAmbiguity(t *testing.T) {
	// Sanity: the baseline extractor cannot handle the colliding brand
	// token (unless the host really is in Lima, where both tokens agree).
	if _, ok := ExtractMetro(ambiguousHost("lhr", 3)); ok {
		t.Fatal("dictionary extracted from an ambiguous hostname; test premise broken")
	}
}

func TestLearnRecoversTemplate(t *testing.T) {
	train := ambiguousSamples(200, 1)
	l := Learn(train, 10, 0.9)
	rules := l.Rules()
	if len(rules) != 1 {
		t.Fatalf("learned %d rules, want 1: %+v", len(rules), rules)
	}
	r := rules[0]
	if r.Domain != "example.net" {
		t.Errorf("rule domain = %q", r.Domain)
	}
	if r.Accuracy < 0.99 {
		t.Errorf("rule accuracy = %.3f", r.Accuracy)
	}

	// Held-out evaluation: learned extraction recovers every location the
	// dictionary cannot.
	test := ambiguousSamples(100, 2)
	var learnedOK, dictOK int
	for _, s := range test {
		if m, ok := l.Extract(s.Hostname); ok && m.Code == s.Metro {
			learnedOK++
		}
		if m, ok := ExtractMetro(s.Hostname); ok && m.Code == s.Metro {
			dictOK++
		}
	}
	if learnedOK < 95 {
		t.Errorf("learned extraction: %d/100 correct", learnedOK)
	}
	if dictOK >= learnedOK {
		t.Errorf("learning shows no advantage: dict %d vs learned %d", dictOK, learnedOK)
	}
}

func TestLearnedFallsBackForUnknownDomains(t *testing.T) {
	l := Learn(ambiguousSamples(50, 3), 10, 0.9)
	// A hostname under a different domain uses the dictionary path.
	m, ok := l.Extract("cache-google-01.lhr2.as10014.other.org")
	if !ok || m.Code != "lhr" {
		t.Errorf("fallback extraction = %v, %v", m, ok)
	}
	// A hostname under the learned domain with no geohint at the learned
	// position yields nothing rather than a dictionary guess.
	if _, ok := l.Extract("lim-mgmt.static.net.example.net"); ok {
		t.Error("learned template should not fall through to a wrong guess")
	}
}

func TestLearnThresholds(t *testing.T) {
	// Too little support → no rule.
	l := Learn(ambiguousSamples(3, 4), 10, 0.9)
	if len(l.Rules()) != 0 {
		t.Errorf("learned from 3 samples with minSupport 10: %+v", l.Rules())
	}
	// Inconsistent operator (random metro in the hostname, unrelated truth)
	// → no position clears the accuracy bar.
	r := rngutil.New(5)
	var noisy []TrainingSample
	for i := 0; i < 100; i++ {
		host := geo.Metros[r.Intn(len(geo.Metros))]
		truth := geo.Metros[r.Intn(len(geo.Metros))]
		noisy = append(noisy, TrainingSample{
			Hostname: ambiguousHost(host.Code, i),
			Metro:    truth.Code,
		})
	}
	l = Learn(noisy, 10, 0.9)
	if len(l.Rules()) != 0 {
		t.Errorf("learned a rule from noise: %+v", l.Rules())
	}
}

func TestLearnFromSynthesizedPTRs(t *testing.T) {
	// End-to-end: train on the deployment's own PTR corpus (hostnames with
	// geohints paired with facility metros) and check held-out accuracy
	// matches the dictionary on the standard naming scheme.
	d := deployForRDNS(t, 1)
	ptrs := Synthesize(d, DefaultConfig(1))
	var samples []TrainingSample
	for addr, host := range ptrs {
		for _, s := range d.Servers {
			if s.Addr == addr {
				samples = append(samples, TrainingSample{
					Hostname: host,
					Metro:    d.World.Facilities[s.Facility].Metro.Code,
				})
				break
			}
		}
		if len(samples) >= 300 {
			break
		}
	}
	if len(samples) < 50 {
		t.Skip("not enough PTR samples")
	}
	half := len(samples) / 2
	l := Learn(samples[:half], 10, 0.7)
	var learnedOK, dictOK, n int
	for _, s := range samples[half:] {
		n++
		if m, ok := l.Extract(s.Hostname); ok && m.Code == s.Metro {
			learnedOK++
		}
		if m, ok := ExtractMetro(s.Hostname); ok && m.Code == s.Metro {
			dictOK++
		}
	}
	if learnedOK < dictOK-n/20 {
		t.Errorf("learned (%d/%d) clearly worse than dictionary (%d/%d)", learnedOK, n, dictOK, n)
	}
}
