package rdns

import "offnetrisk/internal/scenario"

// ConfigFromScenario builds the PTR-synthesis configuration a resolved
// spec's measurement section declares. With the default scenario it equals
// DefaultConfig(seed).
func ConfigFromScenario(sp *scenario.Spec, seed int64) Config {
	return Config{
		Seed:             seed,
		CoverageFraction: sp.Measurement.RDNSCoverage,
		GeoHintFraction:  sp.Measurement.RDNSGeoHint,
		StaleFraction:    sp.Measurement.RDNSStale,
	}
}
