package rdns

import (
	"strings"
	"testing"

	"offnetrisk/internal/geo"
)

// FuzzExtractMetro checks the PTR geohint extractor is total, canonical
// (every extracted metro exists in the catalogue under its own code), and
// case-insensitive — the properties the atlas majority vote relies on.
func FuzzExtractMetro(f *testing.F) {
	f.Add("cache-google-03.lhr2.as10014.example.net")
	f.Add("a23-45.deploy.akamaitechnologies.com")
	f.Add("lhr2.ams1.double-metro.example.net")
	f.Add("")
	f.Add("...")
	f.Add("LHR-nyc_fra3")
	f.Add("no-geohint-here.example")
	f.Fuzz(func(t *testing.T, hostname string) {
		m, ok := ExtractMetro(hostname)
		if !ok {
			if m.Code != "" {
				t.Fatalf("miss returned a metro: %+v", m)
			}
			return
		}
		if len(m.Code) != 3 {
			t.Fatalf("metro code %q not three letters", m.Code)
		}
		got, exists := geo.MetroByCode(m.Code)
		if !exists || got.Code != m.Code {
			t.Fatalf("extracted metro %q not in the catalogue", m.Code)
		}
		um, uok := ExtractMetro(strings.ToUpper(hostname))
		if !uok || um.Code != m.Code {
			t.Fatalf("case sensitivity: %q → %q, upper-cased → (%q, %v)",
				hostname, m.Code, um.Code, uok)
		}
	})
}

// FuzzLearnedExtract checks a trained HOIHO extractor never panics on
// arbitrary hostnames and only ever returns catalogue metros.
func FuzzLearnedExtract(f *testing.F) {
	l := Learn([]TrainingSample{
		{Hostname: "cache-a.lhr1.example.net", Metro: "lhr"},
		{Hostname: "cache-b.lhr2.example.net", Metro: "lhr"},
		{Hostname: "cache-c.nyc1.example.net", Metro: "nyc"},
		{Hostname: "edge-1.fra3.other.org", Metro: "fra"},
		{Hostname: "edge-2.fra1.other.org", Metro: "fra"},
	}, 2, 0.5)
	f.Add("cache-z.lhr9.example.net")
	f.Add("edge-9.fra2.other.org")
	f.Add("unrelated.host.test")
	f.Add("")
	f.Add(".-.")
	f.Fuzz(func(t *testing.T, hostname string) {
		m, ok := l.Extract(hostname)
		if !ok {
			return
		}
		if _, exists := geo.MetroByCode(m.Code); !exists {
			t.Fatalf("learned extractor produced unknown metro %q from %q", m.Code, hostname)
		}
		if m2, ok2 := l.Extract(hostname); !ok2 || m2.Code != m.Code {
			t.Fatalf("learned extractor unstable on %q", hostname)
		}
	})
}
