// Package rdns reproduces the paper's clustering validation (§3.2): reverse
// DNS hostnames are synthesized for offnet addresses following operator
// naming conventions (Rapid7 Project Sonar stands in for the PTR corpus),
// locations are extracted from the hostnames with a HOIHO-style geohint
// engine, and clusters are checked for location consistency — counting
// clusters whose identified hostnames are in a single city, a single
// metropolitan area, or spread across cities.
//
// The synthesis deliberately includes the real corpus's failure modes:
// addresses without PTRs, hostnames without location tokens, and stale
// hostnames naming the wrong city ("stale/incorrect locations in
// hostnames").
package rdns

import (
	"fmt"
	"strings"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
)

// lnMetro is the lineage stage name of the geohint extraction (DESIGN.md §13).
const lnMetro = "rdns.metro"

// fMetro accounts PTR geohint extraction during cluster validation: cluster
// members considered vs. located. Lazily registered — the funnel exists for
// provenance and is fed only when lineage recording is on, so lineage-off
// runs leave golden manifests untouched.
var fMetro = obs.NewLazyFunnel("rdns.metro",
	"cluster members entering PTR geohint extraction vs. located to a metro")

// Config controls PTR synthesis.
type Config struct {
	Seed int64
	// CoverageFraction is the probability an address has a PTR record at
	// all ("many IP addresses do not have reverse DNS entries").
	CoverageFraction float64
	// GeoHintFraction is the probability a PTR embeds a location token
	// ("many reverse DNS entries do not have obvious location information").
	GeoHintFraction float64
	// StaleFraction is the probability an embedded location token names
	// the wrong metro.
	StaleFraction float64
}

// DefaultConfig mirrors the sparse coverage the paper reports.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, CoverageFraction: 0.45, GeoHintFraction: 0.55, StaleFraction: 0.01}
}

// PTRTable maps addresses to hostnames.
type PTRTable map[netaddr.Addr]string

// Synthesize builds PTR records for every offnet server in the deployment.
// Naming follows common operator conventions, using the facility's metro
// code as the location token (e.g. cache-google-03.lhr2.as10014.example.net).
func Synthesize(d *hypergiant.Deployment, cfg Config) PTRTable {
	if cfg.CoverageFraction <= 0 {
		cfg = DefaultConfig(cfg.Seed)
	}
	r := rngutil.New(cfg.Seed ^ 0x9d45)
	out := make(PTRTable)
	for i, s := range d.Servers {
		if !rngutil.Bernoulli(r, cfg.CoverageFraction) {
			continue
		}
		f := d.World.Facilities[s.Facility]
		metro := f.Metro.Code
		if rngutil.Bernoulli(r, cfg.StaleFraction) {
			metro = geo.Metros[r.Intn(len(geo.Metros))].Code
		}
		var host string
		if rngutil.Bernoulli(r, cfg.GeoHintFraction) {
			host = fmt.Sprintf("cache-%s-%02d.%s%d.as%d.example.net",
				strings.ToLower(s.HG.String()), i%97, metro, int(f.ID)%9+1, s.ISP)
		} else {
			// No location token: generic management naming.
			host = fmt.Sprintf("static-%d.as%d.example.net", i, s.ISP)
		}
		out[s.Addr] = host
	}
	return out
}

// ExtractMetro is the HOIHO-style geohint extractor: it scans hostname
// labels for metro codes from the catalogue. A token matches when a label
// equals the code or starts with the code followed by digits (lhr, lhr2).
// It returns false when no token (or an ambiguous set of tokens) is found.
func ExtractMetro(hostname string) (geo.Metro, bool) {
	m, _, ok := extractMetroDetail(hostname)
	return m, ok
}

// extractMetroDetail is ExtractMetro with the failure reason spelled out for
// lineage records: "no_geo_token" when no catalogue code appears in any
// label, "ambiguous_token" when distinct codes disagree.
func extractMetroDetail(hostname string) (geo.Metro, string, bool) {
	labels := strings.Split(strings.ToLower(hostname), ".")
	var found []geo.Metro
	for _, label := range labels {
		for _, part := range strings.FieldsFunc(label, func(r rune) bool { return r == '-' || r == '_' }) {
			code := trimDigits(part)
			if len(code) != 3 {
				continue
			}
			if m, ok := geo.MetroByCode(code); ok {
				found = append(found, m)
			}
		}
	}
	if len(found) == 0 {
		return geo.Metro{}, "no_geo_token", false
	}
	// Multiple distinct tokens are ambiguous (HOIHO would score them; we
	// require agreement).
	for _, m := range found[1:] {
		if m.Code != found[0].Code {
			return geo.Metro{}, "ambiguous_token", false
		}
	}
	return found[0], "", true
}

func trimDigits(s string) string {
	end := len(s)
	for end > 0 && s[end-1] >= '0' && s[end-1] <= '9' {
		end--
	}
	return s[:end]
}

// ClusterConsistency classifies one cluster's identified locations the way
// the paper reports validation: single city, single metropolitan area
// (different codes, same city-scale distance), or multiple cities.
type ClusterConsistency int

// Consistency classes (§3.2 validation).
const (
	TooFewIdentified ClusterConsistency = iota // fewer than 2 located hostnames
	SingleCity
	SingleMetroArea // distinct codes within metroAreaKm of each other
	MultipleCities
)

// String implements fmt.Stringer.
func (c ClusterConsistency) String() string {
	switch c {
	case TooFewIdentified:
		return "too-few-identified"
	case SingleCity:
		return "single-city"
	case SingleMetroArea:
		return "single-metro-area"
	case MultipleCities:
		return "multiple-cities"
	default:
		return "unknown"
	}
}

// metroAreaKm bounds "multiple locations within a single metropolitan area
// (i.e., suburbs of London and Paris)".
const metroAreaKm = 60.0

// Classify determines the consistency class for a set of extracted metros.
func Classify(metros []geo.Metro) ClusterConsistency {
	if len(metros) < 2 {
		return TooFewIdentified
	}
	sameCity := true
	withinArea := true
	for _, m := range metros[1:] {
		if m.Code != metros[0].Code {
			sameCity = false
		}
		if geo.DistanceKm(m.Loc, metros[0].Loc) > metroAreaKm {
			withinArea = false
		}
	}
	switch {
	case sameCity:
		return SingleCity
	case withinArea:
		return SingleMetroArea
	default:
		return MultipleCities
	}
}

// ValidationReport aggregates consistency over all clusters of an analysis,
// reproducing the §3.2 validation numbers (e.g. ξ=0.1: 60 clusters with ≥2
// identified hostnames, of which 55 single-city, 3 single-metro, 2
// multi-city).
type ValidationReport struct {
	Xi                float64
	ClustersEvaluated int // clusters with ≥2 located hostnames
	SingleCity        int
	SingleMetroArea   int
	MultipleCities    int
}

// Validate runs the consistency check for every cluster in every analyzed
// ISP at the given ξ. labelsOf returns the flat labels and the measured
// servers for each ISP (the shape the coloc analysis provides).
func Validate(ptrs PTRTable, clusters map[string][][]netaddr.Addr, xi float64) ValidationReport {
	lr := obs.ActiveLineage()
	var f *obs.Funnel
	if lr != nil {
		// Lazily registered and fed only under lineage so lineage-off runs
		// keep every committed golden manifest byte-identical.
		f = fMetro.Get()
	}
	rep := ValidationReport{Xi: xi}
	for ispKey, ispClusters := range clusters {
		group := fmt.Sprintf("isp=%s|xi=%g", ispKey, xi)
		for _, members := range ispClusters {
			var located []geo.Metro
			for _, addr := range members {
				addr := addr
				host, ok := ptrs[addr]
				if lr != nil {
					f.In(1)
					lr.CountIn(lnMetro, 1)
				}
				if !ok {
					if lr != nil {
						f.Drop("no_ptr", 1)
						lr.CountDrop(lnMetro, "no_ptr", 1)
						lr.Record(lnMetro, group, addr.String(), obs.LineageDropped, "no_ptr", nil)
					}
					continue
				}
				m, reason, ok := extractMetroDetail(host)
				if !ok {
					if lr != nil {
						f.Drop(reason, 1)
						lr.CountDrop(lnMetro, reason, 1)
						lr.Record(lnMetro, group, addr.String(), obs.LineageDropped, reason,
							func() []obs.LineageKV {
								return []obs.LineageKV{{K: "hostname", V: host}}
							})
					}
					continue
				}
				if lr != nil {
					f.Out(1)
					lr.CountKept(lnMetro, 1)
					lr.Record(lnMetro, group, addr.String(), obs.LineageKept, "located",
						func() []obs.LineageKV {
							return []obs.LineageKV{
								{K: "hostname", V: host},
								{K: "metro", V: m.Code},
							}
						})
				}
				located = append(located, m)
			}
			switch Classify(located) {
			case SingleCity:
				rep.ClustersEvaluated++
				rep.SingleCity++
			case SingleMetroArea:
				rep.ClustersEvaluated++
				rep.SingleMetroArea++
			case MultipleCities:
				rep.ClustersEvaluated++
				rep.MultipleCities++
			}
		}
	}
	return rep
}

// Accuracy returns the fraction of evaluated clusters that are location
// consistent (single city or single metro area).
func (r ValidationReport) Accuracy() float64 {
	if r.ClustersEvaluated == 0 {
		return 0
	}
	return float64(r.SingleCity+r.SingleMetroArea) / float64(r.ClustersEvaluated)
}
