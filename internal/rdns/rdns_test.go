package rdns

import (
	"testing"

	"offnetrisk/internal/coloc"
	"offnetrisk/internal/geo"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/netaddr"
)

func TestExtractMetro(t *testing.T) {
	cases := []struct {
		host string
		code string
		ok   bool
	}{
		{"cache-google-03.lhr2.as10014.example.net", "lhr", true},
		{"cache-netflix-01.han1.as10020.example.net", "han", true},
		{"static-55.as10014.example.net", "", false},
		{"", "", false},
		{"router.nyc.example.net", "nyc", true},
		{"core1-NYC3.example.net", "nyc", true}, // case-insensitive, digit-trimmed
		{"conflicting.lhr1.cdg2.example.net", "", false},
		{"agree.lhr1.lhr2.example.net", "lhr", true},
		{"host.zzz9.example.net", "", false}, // unknown code
	}
	for _, tc := range cases {
		m, ok := ExtractMetro(tc.host)
		if ok != tc.ok {
			t.Errorf("ExtractMetro(%q) ok = %v, want %v", tc.host, ok, tc.ok)
			continue
		}
		if ok && m.Code != tc.code {
			t.Errorf("ExtractMetro(%q) = %s, want %s", tc.host, m.Code, tc.code)
		}
	}
}

func TestExtractMetroHostertTrap(t *testing.T) {
	// The paper manually corrected HOIHO interpreting "host" as Hostert,
	// LU. Our extractor requires exactly-3-letter tokens, so "host" must
	// not match anything.
	if _, ok := ExtractMetro("host-12.example.net"); ok {
		t.Error("'host' label must not geolocate")
	}
}

func TestClassify(t *testing.T) {
	lhr, _ := geo.MetroByCode("lhr")
	ltn, _ := geo.MetroByCode("ltn") // Luton: London metro area
	cdg, _ := geo.MetroByCode("cdg")
	cases := []struct {
		name   string
		metros []geo.Metro
		want   ClusterConsistency
	}{
		{"empty", nil, TooFewIdentified},
		{"one", []geo.Metro{lhr}, TooFewIdentified},
		{"same city", []geo.Metro{lhr, lhr, lhr}, SingleCity},
		{"london area", []geo.Metro{lhr, ltn}, SingleMetroArea},
		{"different cities", []geo.Metro{lhr, cdg}, MultipleCities},
	}
	for _, tc := range cases {
		if got := Classify(tc.metros); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestConsistencyStrings(t *testing.T) {
	for c, want := range map[ClusterConsistency]string{
		TooFewIdentified: "too-few-identified",
		SingleCity:       "single-city",
		SingleMetroArea:  "single-metro-area",
		MultipleCities:   "multiple-cities",
	} {
		if c.String() != want {
			t.Errorf("String = %q, want %q", c.String(), want)
		}
	}
}

func TestSynthesizeCoverage(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(1))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	ptrs := Synthesize(d, cfg)
	frac := float64(len(ptrs)) / float64(len(d.Servers))
	if frac < cfg.CoverageFraction-0.1 || frac > cfg.CoverageFraction+0.1 {
		t.Errorf("PTR coverage = %.2f, want ≈%.2f", frac, cfg.CoverageFraction)
	}
	// Some PTRs carry geohints, some do not.
	var hinted, blind int
	for _, host := range ptrs {
		if _, ok := ExtractMetro(host); ok {
			hinted++
		} else {
			blind++
		}
	}
	if hinted == 0 || blind == 0 {
		t.Errorf("hinted=%d blind=%d; need both failure modes", hinted, blind)
	}
}

func TestEndToEndValidationMatchesPaperShape(t *testing.T) {
	// Full §3.2 validation loop: cluster, attach PTRs, check consistency.
	// The paper finds the overwhelming majority of evaluated clusters are
	// single-city (55/60 at ξ=0.1 plus 3 same-metro ⇒ ~97% consistent).
	w := inet.Generate(inet.TinyConfig(1))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	c := mlab.Measure(d, mlab.Sites(163, 1), mlab.DefaultConfig(1))
	a := coloc.Analyze(w, c, []float64{0.1, 0.9})
	ptrs := Synthesize(d, DefaultConfig(1))

	for _, xi := range []float64{0.1, 0.9} {
		clusters := make(map[string][][]netaddr.Addr)
		for as, isp := range a.PerISP {
			byLabel := make(map[int][]netaddr.Addr)
			ms := c.ByISP[as]
			for i, l := range isp.PerXi[xi].Labels {
				if l < 0 {
					continue
				}
				byLabel[l] = append(byLabel[l], ms[i].Target.Addr)
			}
			var list [][]netaddr.Addr
			for _, members := range byLabel {
				list = append(list, members)
			}
			clusters[string(rune(as))] = list
		}
		rep := Validate(ptrs, clusters, xi)
		if rep.ClustersEvaluated == 0 {
			t.Fatalf("ξ=%v: no clusters evaluated", xi)
		}
		if acc := rep.Accuracy(); acc < 0.85 {
			t.Errorf("ξ=%v: validation accuracy %.2f, paper ≈0.93–0.97", xi, acc)
		}
		if rep.SingleCity < rep.MultipleCities {
			t.Errorf("ξ=%v: single-city (%d) should dominate multi-city (%d)",
				xi, rep.SingleCity, rep.MultipleCities)
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if (ValidationReport{}).Accuracy() != 0 {
		t.Error("empty report accuracy should be 0")
	}
}

// deployForRDNS builds a deployment for PTR-based tests.
func deployForRDNS(t *testing.T, seed int64) *hypergiant.Deployment {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}
