package cert

import (
	"strings"
	"testing"
)

// FuzzMatchPattern checks the wildcard matcher never panics and never lets
// a bare suffix match its own wildcard pattern.
func FuzzMatchPattern(f *testing.F) {
	f.Add("*.fbcdn.net", "x.fhan14-4.fna.fbcdn.net")
	f.Add("*.googlevideo.com", "googlevideo.com")
	f.Add("", "")
	f.Add("*.", ".")
	f.Add("a248.e.akamai.net", "a248.e.akamai.net")
	f.Fuzz(func(t *testing.T, pattern, name string) {
		got := MatchPattern(pattern, name)
		// Invariant: a wildcard pattern never matches its bare suffix.
		if strings.HasPrefix(pattern, "*.") {
			suffix := strings.ToLower(strings.TrimSpace(pattern[2:]))
			if got && strings.ToLower(strings.TrimSpace(name)) == suffix {
				t.Fatalf("bare suffix matched: pattern %q name %q", pattern, name)
			}
		}
		// Invariant: empty inputs never match.
		if (strings.TrimSpace(pattern) == "" || strings.TrimSpace(name) == "") && got {
			t.Fatalf("empty input matched: %q %q", pattern, name)
		}
	})
}

// FuzzFingerprint checks fingerprinting is total and collision-free across
// field-boundary shifts.
func FuzzFingerprint(f *testing.F) {
	f.Add("org", "cn", "san")
	f.Add("", "", "")
	f.Fuzz(func(t *testing.T, org, cn, san string) {
		a := Certificate{SubjectOrg: org, SubjectCN: cn, DNSNames: []string{san}}
		fp := a.Fingerprint()
		if len(fp) != 64 {
			t.Fatalf("fingerprint length %d", len(fp))
		}
		if fp != a.Fingerprint() {
			t.Fatal("fingerprint unstable")
		}
	})
}
