// Package cert models the TLS end-entity certificates the paper's offnet
// discovery inspects. Censys-style scans record, per IP, the certificate's
// Subject Name (Organization and Common Name) and its SubjectAltName DNS
// entries; the 2021 methodology fingerprints hypergiants by Organization and
// by names matching onnet servers, and the 2023 update matches CN patterns
// instead (Google dropped the Organization entry; Meta moved to site-specific
// names like *.fhan14-4.fna.fbcdn.net).
//
// Certificates here are structural records, not DER blobs: the pipelines only
// ever consume the fields below plus a stable fingerprint, so a deterministic
// encoding hashed with SHA-256 preserves everything the methodology needs.
package cert

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
)

// Certificate is the subset of an X.509 end-entity certificate the offnet
// methodology reads.
type Certificate struct {
	// SubjectOrg is the Organization entry of the Subject Name. Empty when
	// the operator omits it (as Google does post-2021).
	SubjectOrg string
	// SubjectCN is the Common Name of the Subject Name.
	SubjectCN string
	// DNSNames are the SubjectAltName dNSName entries.
	DNSNames []string
	// Issuer is the issuing CA's organization, for completeness of the
	// scan record.
	Issuer string
}

// Fingerprint returns the SHA-256 fingerprint of a deterministic encoding of
// the certificate, hex-encoded — the stable identity scan pipelines key on.
func (c Certificate) Fingerprint() string {
	var b strings.Builder
	b.WriteString("org:")
	b.WriteString(c.SubjectOrg)
	b.WriteString("\ncn:")
	b.WriteString(c.SubjectCN)
	for _, n := range c.DNSNames {
		b.WriteString("\nsan:")
		b.WriteString(n)
	}
	b.WriteString("\nissuer:")
	b.WriteString(c.Issuer)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Names returns the CN followed by all SANs; the name set a scanner observes.
func (c Certificate) Names() []string {
	out := make([]string, 0, 1+len(c.DNSNames))
	if c.SubjectCN != "" {
		out = append(out, c.SubjectCN)
	}
	out = append(out, c.DNSNames...)
	return out
}

// MatchPattern reports whether name matches pattern. Patterns are DNS names
// where a leading "*." matches one or more leading labels — the loose
// suffix-style matching the 2023 methodology applies ("we check for the
// pattern *.fbcdn.net", which must catch *.fhan14-4.fna.fbcdn.net).
// Matching is case-insensitive. A pattern without a wildcard requires
// equality.
func MatchPattern(pattern, name string) bool {
	pattern = strings.ToLower(strings.TrimSpace(pattern))
	name = strings.ToLower(strings.TrimSpace(name))
	if pattern == "" || name == "" {
		return false
	}
	if !strings.HasPrefix(pattern, "*.") {
		return pattern == name
	}
	suffix := pattern[1:] // ".fbcdn.net"
	if !strings.HasSuffix(name, suffix) {
		return false
	}
	// At least one label must precede the suffix ("fbcdn.net" itself does
	// not match "*.fbcdn.net").
	head := name[:len(name)-len(suffix)]
	return head != "" && !strings.HasSuffix(head, ".")
}

// AnyNameMatches reports whether any certificate name matches any of the
// patterns.
func (c Certificate) AnyNameMatches(patterns []string) bool {
	for _, n := range c.Names() {
		for _, p := range patterns {
			if MatchPattern(p, n) {
				return true
			}
		}
	}
	return false
}
