package cert

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFingerprintStable(t *testing.T) {
	c := Certificate{SubjectOrg: "Netflix, Inc.", SubjectCN: "*.nflxvideo.net", Issuer: "DigiCert"}
	if c.Fingerprint() != c.Fingerprint() {
		t.Error("fingerprint not stable")
	}
	d := c
	d.SubjectCN = "*.example.com"
	if c.Fingerprint() == d.Fingerprint() {
		t.Error("different certs share fingerprint")
	}
}

func TestFingerprintFieldSeparation(t *testing.T) {
	// Moving bytes between fields must change the fingerprint (no ambiguous
	// concatenation).
	a := Certificate{SubjectOrg: "ab", SubjectCN: "c"}
	b := Certificate{SubjectOrg: "a", SubjectCN: "bc"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("field boundary ambiguity in fingerprint encoding")
	}
	c := Certificate{DNSNames: []string{"a", "b"}}
	d := Certificate{DNSNames: []string{"a.b"}}
	if c.Fingerprint() == d.Fingerprint() {
		t.Error("SAN list ambiguity in fingerprint encoding")
	}
}

func TestFingerprintIsHex64(t *testing.T) {
	f := func(org, cn string) bool {
		fp := Certificate{SubjectOrg: org, SubjectCN: cn}.Fingerprint()
		if len(fp) != 64 {
			return false
		}
		return strings.Trim(fp, "0123456789abcdef") == ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*.googlevideo.com", "r3---sn-abc.googlevideo.com", true},
		{"*.googlevideo.com", "googlevideo.com", false},
		{"*.googlevideo.com", "evil-googlevideo.com", false},
		{"*.googlevideo.com", "a.b.googlevideo.com", true},
		{"*.fbcdn.net", "scontent.fhan14-4.fna.fbcdn.net", true},
		{"*.fbcdn.net", "x.fbhx2-2.fna.fbcdn.net", true},
		{"*.fbcdn.net", "fbcdn.net", false},
		{"*.fbcdn.net", "notfbcdn.net", false},
		{"a248.e.akamai.net", "a248.e.akamai.net", true},
		{"a248.e.akamai.net", "a249.e.akamai.net", false},
		{"*.Nflxvideo.NET", "cache1.ISP.nflxvideo.net", true}, // case-insensitive
		{"", "anything", false},
		{"*.x.com", "", false},
		{"*.x.com", ".x.com", false},
	}
	for _, tc := range cases {
		if got := MatchPattern(tc.pattern, tc.name); got != tc.want {
			t.Errorf("MatchPattern(%q,%q) = %v, want %v", tc.pattern, tc.name, got, tc.want)
		}
	}
}

func TestMatchPatternNeverMatchesBareSuffixProperty(t *testing.T) {
	// For any label sequence, the bare suffix never matches its own wildcard.
	f := func(label string) bool {
		label = strings.Map(func(r rune) rune {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
				return r
			}
			return 'x'
		}, label)
		if label == "" {
			label = "x"
		}
		domain := label + ".example.org"
		return !MatchPattern("*."+domain, domain) && MatchPattern("*."+domain, "h."+domain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNames(t *testing.T) {
	c := Certificate{SubjectCN: "cn.example", DNSNames: []string{"a.example", "b.example"}}
	names := c.Names()
	if len(names) != 3 || names[0] != "cn.example" {
		t.Errorf("Names = %v", names)
	}
	empty := Certificate{DNSNames: []string{"a.example"}}
	if got := empty.Names(); len(got) != 1 || got[0] != "a.example" {
		t.Errorf("Names without CN = %v", got)
	}
}

func TestAnyNameMatches(t *testing.T) {
	c := Certificate{
		SubjectCN: "*.fhan14-4.fna.fbcdn.net",
		DNSNames:  []string{"*.fhan14-4.fna.fbcdn.net"},
	}
	if !c.AnyNameMatches([]string{"*.fbcdn.net"}) {
		t.Error("Meta site-specific cert should match *.fbcdn.net")
	}
	if c.AnyNameMatches([]string{"*.googlevideo.com"}) {
		t.Error("Meta cert should not match Google pattern")
	}
	if c.AnyNameMatches(nil) {
		t.Error("no patterns should match nothing")
	}
}
