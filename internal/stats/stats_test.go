package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {-1, 1}, {2, 4},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa, qb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedCCDF(t *testing.T) {
	pts := []WeightedPoint{
		{Value: 0.1, Weight: 1},
		{Value: 0.5, Weight: 2},
		{Value: 0.5, Weight: 1},
		{Value: 0.9, Weight: 1},
	}
	ccdf := WeightedCCDF(pts)
	// At the minimum everything is ≥: frac 1.
	if ccdf[0].X != 0.1 || ccdf[0].Frac != 1 {
		t.Errorf("first point = %+v", ccdf[0])
	}
	// ≥0.5: weight 4 of 5.
	if got := CCDFAt(ccdf, 0.5); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("CCDF(0.5) = %v, want 0.8", got)
	}
	// ≥0.9: weight 1 of 5.
	if got := CCDFAt(ccdf, 0.9); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("CCDF(0.9) = %v, want 0.2", got)
	}
	// Beyond max: 0.
	if got := CCDFAt(ccdf, 0.95); got != 0 {
		t.Errorf("CCDF(0.95) = %v, want 0", got)
	}
	if WeightedCCDF(nil) != nil {
		t.Error("empty CCDF should be nil")
	}
	if WeightedCCDF([]WeightedPoint{{Value: 1, Weight: 0}}) != nil {
		t.Error("zero total weight should be nil")
	}
}

func TestWeightedCCDFMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var pts []WeightedPoint
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			pts = append(pts, WeightedPoint{Value: v, Weight: float64(i%3 + 1)})
		}
		ccdf := WeightedCCDF(pts)
		// X ascending, Frac non-increasing, Frac within [0,1].
		for i := range ccdf {
			if ccdf[i].Frac < -1e-9 || ccdf[i].Frac > 1+1e-9 {
				return false
			}
			if i > 0 && (ccdf[i].X <= ccdf[i-1].X || ccdf[i].Frac > ccdf[i-1].Frac+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		frac float64
		want Bucket
	}{
		{0, BucketZero}, {-0.1, BucketZero},
		{0.001, BucketLow}, {0.499, BucketLow},
		{0.5, BucketHigh}, {0.999, BucketHigh},
		{1.0, BucketFull}, {1.5, BucketFull},
	}
	for _, tc := range cases {
		if got := BucketOf(tc.frac); got != tc.want {
			t.Errorf("BucketOf(%v) = %v, want %v", tc.frac, got, tc.want)
		}
	}
}

func TestBucketStrings(t *testing.T) {
	want := map[Bucket]string{
		BucketZero: "0%", BucketLow: "(0%,50%)", BucketHigh: "[50%,100%)", BucketFull: "100%",
	}
	for b, s := range want {
		if b.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(b), b.String(), s)
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(BucketZero)
	h.Add(BucketFull)
	h.Add(BucketFull)
	h.Add(Bucket(99)) // ignored
	if h.Total != 3 {
		t.Errorf("Total = %d, want 3", h.Total)
	}
	if got := h.Frac(BucketFull); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Frac(full) = %v", got)
	}
	var empty Histogram
	if empty.Frac(BucketZero) != 0 {
		t.Error("empty histogram Frac should be 0")
	}
	// Row sums to 1 across buckets.
	var sum float64
	for b := BucketZero; b < NumBuckets; b++ {
		sum += h.Frac(b)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("bucket fractions sum to %v", sum)
	}
}

func TestQuantileAgainstSort(t *testing.T) {
	xs := []float64{9, 7, 5, 3, 1}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if got := Quantile(xs, 0.25); math.Abs(got-3) > 1e-9 {
		t.Errorf("Quantile(0.25) = %v, want 3", got)
	}
}

func TestHHI(t *testing.T) {
	if got := HHI([]float64{1, 1, 1, 1}); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("even HHI = %v, want 0.25", got)
	}
	if got := HHI([]float64{10, 0, 0}); got != 1 {
		t.Errorf("concentrated HHI = %v, want 1", got)
	}
	if HHI(nil) != 0 || HHI([]float64{0, 0}) != 0 {
		t.Error("degenerate HHI should be 0")
	}
	// Scale invariance.
	a := HHI([]float64{1, 2, 3})
	b := HHI([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("HHI not scale invariant: %v vs %v", a, b)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{5, 5, 5, 5}); math.Abs(got) > 1e-9 {
		t.Errorf("even Gini = %v, want 0", got)
	}
	n := 1000
	concentrated := make([]float64, n)
	concentrated[0] = 100
	if got := Gini(concentrated); got < 0.99 {
		t.Errorf("concentrated Gini = %v, want ≈1", got)
	}
	if Gini(nil) != 0 {
		t.Error("empty Gini should be 0")
	}
	// More unequal distributions score higher.
	even := Gini([]float64{3, 3, 3})
	skew := Gini([]float64{1, 2, 6})
	if skew <= even {
		t.Errorf("skewed Gini (%v) should exceed even (%v)", skew, even)
	}
}

func TestGiniNegativeClamped(t *testing.T) {
	if got := Gini([]float64{-5, 5}); got < 0 || got > 1 {
		t.Errorf("Gini with negative input out of range: %v", got)
	}
}
