// Package stats provides the small statistical toolkit the analyses share:
// quantiles, means, weighted CCDFs (Figure 2 weights users, not ISPs), and
// the colocation bucketing of Table 2.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0≤q≤1) using linear interpolation between
// order statistics. It returns 0 for an empty slice and clamps q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// WeightedPoint is one observation with a weight (e.g. a facility share
// weighted by the ISP's user population).
type WeightedPoint struct {
	Value  float64
	Weight float64
}

// CCDFPoint is one point of a complementary CDF: the fraction of total
// weight with Value >= X.
type CCDFPoint struct {
	X    float64
	Frac float64
}

// WeightedCCDF computes the weight-fraction of observations with value ≥ x
// over all distinct values. Figure 2 is such a curve: "CCDF of users in ISPs
// with offnets" against "estimated fraction of traffic served from one
// facility".
func WeightedCCDF(points []WeightedPoint) []CCDFPoint {
	if len(points) == 0 {
		return nil
	}
	s := append([]WeightedPoint(nil), points...)
	sort.Slice(s, func(i, j int) bool { return s[i].Value < s[j].Value })
	var total float64
	for _, p := range s {
		total += p.Weight
	}
	if total <= 0 {
		return nil
	}
	var out []CCDFPoint
	remaining := total
	i := 0
	for i < len(s) {
		x := s[i].Value
		out = append(out, CCDFPoint{X: x, Frac: remaining / total})
		for i < len(s) && s[i].Value == x {
			remaining -= s[i].Weight
			i++
		}
	}
	return out
}

// CCDFAt evaluates a CCDF (as produced by WeightedCCDF) at x: the weight
// fraction with value ≥ x.
func CCDFAt(ccdf []CCDFPoint, x float64) float64 {
	// Points are ascending in X; find the first point with X >= x.
	for _, p := range ccdf {
		if p.X >= x {
			return p.Frac
		}
	}
	return 0
}

// Bucket identifies a Table 2 colocation bucket. The table buckets ISPs by
// the percentage of a hypergiant's offnets colocated with another
// hypergiant: {0%, (0%,50%), [50%,100%), 100%}.
type Bucket int

// Table 2 buckets, in column order.
const (
	BucketZero Bucket = iota // exactly 0%
	BucketLow                // (0%, 50%)
	BucketHigh               // [50%, 100%)
	BucketFull               // exactly 100%
	NumBuckets
)

// String implements fmt.Stringer with the paper's column headers.
func (b Bucket) String() string {
	switch b {
	case BucketZero:
		return "0%"
	case BucketLow:
		return "(0%,50%)"
	case BucketHigh:
		return "[50%,100%)"
	case BucketFull:
		return "100%"
	default:
		return fmt.Sprintf("bucket(%d)", int(b))
	}
}

// BucketOf classifies a colocated fraction into its Table 2 bucket. The
// fraction is clamped into [0,1].
func BucketOf(frac float64) Bucket {
	switch {
	case frac <= 0:
		return BucketZero
	case frac < 0.5:
		return BucketLow
	case frac < 1:
		return BucketHigh
	default:
		return BucketFull
	}
}

// Histogram counts occurrences per bucket and converts to fractions.
type Histogram struct {
	Counts [NumBuckets]int
	Total  int
}

// Add records one observation.
func (h *Histogram) Add(b Bucket) {
	if b >= 0 && b < NumBuckets {
		h.Counts[b]++
		h.Total++
	}
}

// Frac returns the fraction of observations in the bucket.
func (h *Histogram) Frac(b Bucket) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.Total)
}

// HHI computes the Herfindahl–Hirschman concentration index of a set of
// shares: the sum of squared share fractions, 1/n for perfectly even
// distribution, 1.0 for full concentration. The paper's argument is that
// offnet colocation concentrates a user's traffic into few facilities; HHI
// over per-facility traffic shares quantifies it.
func HHI(shares []float64) float64 {
	var total float64
	for _, s := range shares {
		if s > 0 {
			total += s
		}
	}
	if total <= 0 {
		return 0
	}
	var hhi float64
	for _, s := range shares {
		if s > 0 {
			f := s / total
			hhi += f * f
		}
	}
	return hhi
}

// Gini computes the Gini coefficient of the values (0 = perfectly even,
// →1 = fully concentrated). Negative values are treated as zero.
func Gini(values []float64) float64 {
	xs := make([]float64, 0, len(values))
	var total float64
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		xs = append(xs, v)
		total += v
	}
	if len(xs) == 0 || total <= 0 {
		return 0
	}
	sort.Float64s(xs)
	var cum, area float64
	for _, v := range xs {
		area += cum + v/2
		cum += v
	}
	// area is the Lorenz area in units of total × n; normalize.
	lorenz := area / (float64(len(xs)) * total)
	return 1 - 2*lorenz
}
