package cascade

import (
	"testing"

	"offnetrisk/internal/capacity"
)

func TestMonteCarloBasics(t *testing.T) {
	d, m := setup(t, 1)
	rc := MonteCarlo(m, d, 3, 40, 1)
	if rc.Trials != 40 || len(rc.Curve) != 40 {
		t.Fatalf("trials=%d curve=%d", rc.Trials, len(rc.Curve))
	}
	if rc.MeanAffected <= 0 {
		t.Error("no users affected across trials")
	}
	if rc.MeanHGs < 1 {
		t.Errorf("mean HGs per scenario = %.2f", rc.MeanHGs)
	}
	// Exceedance curve: Users ascending, Prob non-increasing, in (0,1].
	for i := 1; i < len(rc.Curve); i++ {
		if rc.Curve[i].Users < rc.Curve[i-1].Users {
			t.Fatal("curve users not ascending")
		}
		if rc.Curve[i].Prob > rc.Curve[i-1].Prob {
			t.Fatal("curve prob not non-increasing")
		}
	}
	if rc.AtLeast(0) != 1 {
		t.Errorf("P(≥0) = %v, want 1", rc.AtLeast(0))
	}
	if p := rc.AtLeast(rc.Curve[len(rc.Curve)-1].Users * 10); p != 0 {
		t.Errorf("P(≥huge) = %v, want 0", p)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	d, m := setup(t, 2)
	a := MonteCarlo(m, d, 2, 20, 7)
	b := MonteCarlo(m, d, 2, 20, 7)
	if a.MeanAffected != b.MeanAffected || a.MeanHGs != b.MeanHGs {
		t.Fatal("Monte Carlo not deterministic for same seed")
	}
}

func TestMonteCarloDegenerate(t *testing.T) {
	d, m := setup(t, 1)
	if rc := MonteCarlo(m, d, 0, 10, 1); rc.Trials != 0 {
		t.Error("k=0 should return empty curve")
	}
	if rc := MonteCarlo(m, d, 3, 0, 1); rc.Trials != 0 {
		t.Error("trials=0 should return empty curve")
	}
}

func TestDecolocationReducesCorrelatedRisk(t *testing.T) {
	// The paper's central claim, quantified: random facility failures knock
	// out fewer hypergiants simultaneously when ISPs spread deployments
	// across facilities.
	d, _ := setup(t, 1)
	decol := Decolocate(d)

	// Same servers, same ISPs — only facilities change.
	if len(decol.Servers) != len(d.Servers) {
		t.Fatal("decolocation changed server count")
	}
	for i := range d.Servers {
		if decol.Servers[i].Addr != d.Servers[i].Addr || decol.Servers[i].ISP != d.Servers[i].ISP {
			t.Fatal("decolocation changed identity fields")
		}
	}

	mCol := capacity.Build(d, capacity.DefaultConfig(1))
	mDecol := capacity.Build(decol, capacity.DefaultConfig(1))
	col := MonteCarlo(mCol, d, 3, 60, 11)
	dec := MonteCarlo(mDecol, decol, 3, 60, 11)
	if dec.MeanHGs >= col.MeanHGs {
		t.Errorf("decolocation did not reduce correlated failures: %.2f vs %.2f HGs/scenario",
			dec.MeanHGs, col.MeanHGs)
	}
}

func TestDecolocateSpreadsWherePossible(t *testing.T) {
	d, _ := setup(t, 1)
	decol := Decolocate(d)
	improved := false
	for _, as := range d.HostingISPs() {
		isp := d.World.ISPs[as]
		if len(isp.Facilities) < 2 || len(d.HGsIn(as)) < 2 {
			continue
		}
		_, before := TopFacility(d, as)
		_, after := TopFacility(decol, as)
		if after < before {
			improved = true
		}
		if after > before {
			t.Errorf("AS%d: decolocation increased top-facility HGs %d→%d", as, before, after)
		}
	}
	if !improved {
		t.Error("decolocation never reduced any ISP's top-facility hypergiant count")
	}
}
