package cascade

import (
	"context"
	"fmt"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/par"
	"offnetrisk/internal/traffic"
)

// lnMitigation is the lineage stage name of the §4.3/§6 isolation sweep
// (DESIGN.md §13).
const lnMitigation = "cascade.mitigation"

// fMitigation accounts the isolation sweep: ISPs attempted vs. scenarios
// whose collateral the capacity slices fully neutralized. Lazily registered
// and fed only under lineage, so lineage-off runs keep golden manifests
// byte-identical.
var fMitigation = obs.NewLazyFunnel("cascade.mitigation",
	"isolation-sweep ISPs attempted vs. collateral fully neutralized")

// §6 sketches mitigations: "isolation mechanisms deployed in colocation
// facilities, ISPs, IXPs, and transit, to protect capacity for each
// hypergiant and for other Internet traffic". This file implements that
// mechanism for shared links: each hypergiant gets a capacity slice of every
// shared link proportional to its normal-peak usage, and a failure's
// spillover can then only congest the offender's own slice — innocent
// hypergiants' traffic (and their ISPs) stay clean.

// IsolatedReport extends a Report with per-hypergiant accounting under
// capacity isolation.
type IsolatedReport struct {
	*Report
	// OffendingHGs exceeded their slice on some shared link.
	OffendingHGs []traffic.HG
	// IsolatedCollateralISPs is the collateral set when slices are
	// enforced: only ISPs whose flows ride an offending hypergiant's
	// over-slice traffic.
	IsolatedCollateralISPs map[inet.ASN]bool
}

// IsolatedCollateralUsers sums users behind the isolated collateral set.
func (r *IsolatedReport) IsolatedCollateralUsers(w *inet.World) float64 {
	return w.UsersInISPs(r.IsolatedCollateralISPs)
}

// SimulateIsolated runs the scenario twice over the same flows: once with
// the plain shared-fate model (the Report) and once with per-hypergiant
// capacity slices on every shared link.
func SimulateIsolated(m *capacity.Model, d *hypergiant.Deployment, sc Scenario) *IsolatedReport {
	return AssessIsolated(m, d, Simulate(m, d, sc))
}

// AssessIsolated is the replay entry point behind SimulateIsolated: it
// re-evaluates an existing Report under per-hypergiant capacity slices
// without re-serving the flows, so the temporal engine can toggle isolation
// mid-trajectory over the step it already assessed.
func AssessIsolated(m *capacity.Model, d *hypergiant.Deployment, rep *Report) *IsolatedReport {
	out := &IsolatedReport{
		Report:                 rep,
		IsolatedCollateralISPs: make(map[inet.ASN]bool),
	}
	w := d.World

	// Per-(link, hypergiant) loads for scenario and baseline.
	ixpHG := perHGIXP(m, rep.Flows)
	ixpHGBase := perHGIXP(m, rep.Baseline)
	trHG := perHGTransit(w, rep.Flows)
	trHGBase := perHGTransit(w, rep.Baseline)

	// Isolation is work-conserving: unused capacity is shareable, so a
	// hypergiant only offends when the link is actually congested AND its
	// own load exceeds its slice (baseline share × link capacity).
	offend := make(map[traffic.HG]bool)
	ixpOffenders := make(map[inet.IXPID]map[traffic.HG]bool)
	for id, l := range rep.IXPLoad {
		if !l.Congested() {
			continue
		}
		slices := slicesOf(ixpHGBase[id], l.CapacityGbps)
		for hg, load := range ixpHG[id] {
			if load > slices[hg] {
				offend[hg] = true
				if ixpOffenders[id] == nil {
					ixpOffenders[id] = make(map[traffic.HG]bool)
				}
				ixpOffenders[id][hg] = true
			}
		}
	}
	trOffenders := make(map[inet.ASN]map[traffic.HG]bool)
	for as, l := range rep.TransitLoad {
		if !l.Congested() {
			continue
		}
		slices := slicesOf(trHGBase[as], l.CapacityGbps)
		for hg, load := range trHG[as] {
			if load > slices[hg] {
				offend[hg] = true
				if trOffenders[as] == nil {
					trOffenders[as] = make(map[traffic.HG]bool)
				}
				trOffenders[as][hg] = true
			}
		}
	}
	for _, hg := range traffic.All {
		if offend[hg] {
			out.OffendingHGs = append(out.OffendingHGs, hg)
		}
	}

	// Collateral under isolation: only flows of an offending hypergiant on
	// the link where it offends.
	for _, f := range rep.Flows {
		if rep.DirectISPs[f.ISP] {
			continue
		}
		if f.IXP > 0 {
			if id, ok := m.IXPIDOf[f.HG][f.ISP]; ok && ixpOffenders[id][f.HG] {
				out.IsolatedCollateralISPs[f.ISP] = true
			}
		}
		if f.Transit+f.UpstreamOffnet > 0 {
			if isp, ok := w.ISPs[f.ISP]; ok {
				for _, prov := range isp.Providers {
					if trOffenders[prov][f.HG] {
						out.IsolatedCollateralISPs[f.ISP] = true
					}
				}
			}
		}
	}
	return out
}

// slicesOf divides a link's capacity into per-hypergiant slices
// proportional to baseline usage; hypergiants with no baseline get an equal
// split of whatever is left (at least a minimal share, so new entrants are
// not starved).
func slicesOf(base map[traffic.HG]float64, cap float64) map[traffic.HG]float64 {
	out := make(map[traffic.HG]float64, len(traffic.All))
	var total float64
	for _, v := range base {
		total += v
	}
	if total <= 0 {
		for _, hg := range traffic.All {
			out[hg] = cap / float64(len(traffic.All))
		}
		return out
	}
	for _, hg := range traffic.All {
		out[hg] = cap * base[hg] / total
	}
	return out
}

func perHGIXP(m *capacity.Model, flows []capacity.Flow) map[inet.IXPID]map[traffic.HG]float64 {
	out := make(map[inet.IXPID]map[traffic.HG]float64)
	for _, f := range flows {
		if f.IXP <= 0 {
			continue
		}
		id, ok := m.IXPIDOf[f.HG][f.ISP]
		if !ok {
			continue
		}
		if out[id] == nil {
			out[id] = make(map[traffic.HG]float64)
		}
		out[id][f.HG] += f.IXP
	}
	return out
}

func perHGTransit(w *inet.World, flows []capacity.Flow) map[inet.ASN]map[traffic.HG]float64 {
	out := make(map[inet.ASN]map[traffic.HG]float64)
	for _, f := range flows {
		load := f.Transit + f.UpstreamOffnet
		if load <= 0 {
			continue
		}
		isp, ok := w.ISPs[f.ISP]
		if !ok || len(isp.Providers) == 0 {
			continue
		}
		per := load / float64(len(isp.Providers))
		for _, prov := range isp.Providers {
			if out[prov] == nil {
				out[prov] = make(map[traffic.HG]float64)
			}
			out[prov][f.HG] += per
		}
	}
	return out
}

// MitigationStats compares collateral damage with and without isolation
// over a sweep of top-facility failures.
type MitigationStats struct {
	Scenarios                 int
	MeanCollateralShared      float64
	MeanCollateralIsolated    float64
	ScenariosFullyNeutralized int // isolation removed all collateral
}

// MitigationSweep runs the §4.3 sweep under both regimes.
func MitigationSweep(m *capacity.Model, d *hypergiant.Deployment, isps []inet.ASN) MitigationStats {
	st, _ := MitigationSweepContext(context.Background(), m, d, isps, 1)
	return st
}

// MitigationSweepContext is MitigationSweep with cancellation and a worker
// pool; each ISP's shared-vs-isolated scenario pair is one task, and the
// aggregates are commutative sums, so the stats match at any worker count.
func MitigationSweepContext(ctx context.Context, m *capacity.Model, d *hypergiant.Deployment, isps []inet.ASN, workers int) (MitigationStats, error) {
	type outcome struct {
		ok               bool
		shared, isolated float64
		neutralized      bool
	}
	lr := obs.ActiveLineage()
	var f *obs.Funnel
	if lr != nil {
		// Lazily registered and fed only under lineage (golden protection).
		f = fMitigation.Get()
	}
	// mitigationDrop accounts and samples one dropped sweep scenario. Counts
	// are commutative atomic adds and each ISP is exactly one task, so the
	// accounting and the sample are identical at any worker count.
	mitigationDrop := func(as inet.ASN, reason string, build func() []obs.LineageKV) {
		f.In(1)
		f.Drop(reason, 1)
		lr.CountIn(lnMitigation, 1)
		lr.CountDrop(lnMitigation, reason, 1)
		lr.Record(lnMitigation, "reason="+reason, fmt.Sprintf("isp=%d", as),
			obs.LineageDropped, reason, build)
	}
	outs, err := par.Map(ctx, len(isps), par.Options{Workers: workers, Name: "mitigation-sweep"},
		func(_ context.Context, i int) (outcome, error) {
			as := isps[i]
			fid, nHGs := TopFacility(d, as)
			if nHGs <= 0 {
				if lr != nil {
					mitigationDrop(as, "no_shared_facility", nil)
				}
				return outcome{}, nil
			}
			sc := DefaultScenario()
			sc.SharedHeadroom = 1.1
			sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
			rep := SimulateIsolated(m, d, sc)
			o := outcome{
				ok:          true,
				shared:      float64(len(rep.CollateralISPs)),
				isolated:    float64(len(rep.IsolatedCollateralISPs)),
				neutralized: len(rep.CollateralISPs) > 0 && len(rep.IsolatedCollateralISPs) == 0,
			}
			if lr != nil {
				evidence := func() []obs.LineageKV {
					kvs := []obs.LineageKV{
						{K: "failed_facility", V: fmt.Sprint(fid)},
						{K: "hgs_at_facility", V: fmt.Sprint(nHGs)},
						{K: "collateral_shared", V: fmt.Sprint(len(rep.CollateralISPs))},
						{K: "collateral_isolated", V: fmt.Sprint(len(rep.IsolatedCollateralISPs))},
					}
					for _, hg := range rep.OffendingHGs {
						kvs = append(kvs, obs.LineageKV{K: "offender", V: hg.String()})
					}
					return kvs
				}
				switch {
				case o.neutralized:
					f.In(1)
					f.Out(1)
					lr.CountIn(lnMitigation, 1)
					lr.CountKept(lnMitigation, 1)
					lr.Record(lnMitigation, "", fmt.Sprintf("isp=%d", as),
						obs.LineageKept, "neutralized", evidence)
				case o.shared == 0:
					mitigationDrop(as, "no_collateral", evidence)
				default:
					mitigationDrop(as, "residual_collateral", evidence)
				}
			}
			return o, nil
		})
	if err != nil {
		return MitigationStats{}, err
	}
	var st MitigationStats
	var shared, isolated float64
	for _, o := range outs {
		if !o.ok {
			continue
		}
		st.Scenarios++
		shared += o.shared
		isolated += o.isolated
		if o.neutralized {
			st.ScenariosFullyNeutralized++
		}
	}
	if st.Scenarios > 0 {
		st.MeanCollateralShared = shared / float64(st.Scenarios)
		st.MeanCollateralIsolated = isolated / float64(st.Scenarios)
	}
	return st, nil
}
