package cascade

import (
	"testing"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func setup(t *testing.T, seed int64) (*hypergiant.Deployment, *capacity.Model) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d, capacity.Build(d, capacity.DefaultConfig(seed))
}

// multiHGISP finds an ISP whose top facility hosts several hypergiants.
func multiHGISP(t *testing.T, d *hypergiant.Deployment) (inet.ASN, inet.FacilityID, int) {
	t.Helper()
	bestAS, bestFID, bestN := inet.ASN(0), inet.FacilityID(0), 0
	for _, as := range d.HostingISPs() {
		if !d.World.ISPs[as].IsAccess() {
			continue
		}
		fid, n := TopFacility(d, as)
		if n > bestN {
			bestAS, bestFID, bestN = as, fid, n
		}
	}
	if bestN < 2 {
		t.Fatal("no multi-hypergiant facility in tiny world")
	}
	return bestAS, bestFID, bestN
}

func TestTopFacility(t *testing.T) {
	d, _ := setup(t, 1)
	as, fid, n := multiHGISP(t, d)
	// The returned facility must actually host n distinct hypergiants.
	hgs := make(map[traffic.HG]bool)
	for _, s := range d.ServersIn(as) {
		if s.Facility == fid {
			hgs[s.HG] = true
		}
	}
	if len(hgs) != n {
		t.Errorf("TopFacility reported %d HGs, facility hosts %d", n, len(hgs))
	}
	// Unknown ISP → zero values.
	if fid, n := TopFacility(d, inet.ASN(424242)); fid != 0 || n != -1 && n != 0 {
		t.Logf("empty ISP: fid=%d n=%d", fid, n)
	}
}

func TestFacilityFailureKnocksOutMultipleHGs(t *testing.T) {
	// §3.3: "Facility-wide outages will impact all hosted servers" — of
	// several hypergiants at once.
	d, m := setup(t, 1)
	_, fid, n := multiHGISP(t, d)
	sc := DefaultScenario()
	sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
	rep := Simulate(m, d, sc)
	if len(rep.HGsImpacted) != n {
		t.Errorf("HGsImpacted = %d, want %d (all colocated hypergiants)", len(rep.HGsImpacted), n)
	}
	if len(rep.DirectISPs) == 0 {
		t.Error("no direct ISPs recorded")
	}
	if rep.DirectUsers(d.World) <= 0 {
		t.Error("no direct users")
	}
}

func TestFailureIncreasesSharedSpill(t *testing.T) {
	d, m := setup(t, 1)
	as, fid, _ := multiHGISP(t, d)
	sc := DefaultScenario()
	sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
	rep := Simulate(m, d, sc)

	var baseSpill, failSpill float64
	for i, f := range rep.Flows {
		if f.ISP != as {
			continue
		}
		baseSpill += rep.Baseline[i].SharedSpill() + rep.Baseline[i].PNI
		failSpill += f.SharedSpill() + f.PNI
	}
	if failSpill <= baseSpill {
		t.Errorf("failure did not increase interdomain spill: %.1f → %.1f", baseSpill, failSpill)
	}
	// Flow order must align between baseline and scenario for comparisons.
	for i := range rep.Flows {
		if rep.Flows[i].HG != rep.Baseline[i].HG || rep.Flows[i].ISP != rep.Baseline[i].ISP {
			t.Fatal("flow ordering not aligned with baseline")
		}
	}
}

func TestSurgeCongestsSharedLinks(t *testing.T) {
	// A large multi-hypergiant surge at peak with failed top facilities
	// must congest shared infrastructure — the §4.3 "perfect storm".
	d, m := setup(t, 1)
	sc := DefaultScenario()
	sc.Surge = map[traffic.HG]float64{
		traffic.Google: 1.6, traffic.Netflix: 1.6, traffic.Meta: 1.6, traffic.Akamai: 1.6,
	}
	sc.FailFacilities = make(map[inet.FacilityID]bool)
	for _, as := range d.HostingISPs()[:10] {
		fid, _ := TopFacility(d, as)
		sc.FailFacilities[fid] = true
	}
	rep := Simulate(m, d, sc)
	if len(rep.CongestedIXPs())+len(rep.CongestedTransits()) == 0 {
		t.Error("perfect-storm scenario congested nothing")
	}
}

func TestNoFailureNoCongestion(t *testing.T) {
	// Without failures or surges, shared links run at their provisioned
	// baseline and must not be congested.
	d, m := setup(t, 1)
	rep := Simulate(m, d, DefaultScenario())
	if n := len(rep.CongestedIXPs()); n != 0 {
		t.Errorf("%d IXPs congested at baseline", n)
	}
	if n := len(rep.CongestedTransits()); n != 0 {
		t.Errorf("%d transits congested at baseline", n)
	}
	if len(rep.HGsImpacted) != 0 || len(rep.DirectISPs) != 0 {
		t.Error("baseline scenario reported impact")
	}
}

func TestCollateralDamage(t *testing.T) {
	// Congesting shared links must pull in ISPs that had nothing to do
	// with the failed facilities.
	d, m := setup(t, 1)
	sc := DefaultScenario()
	sc.SharedHeadroom = 1.05 // §4.3: minimal headroom on shared paths
	sc.FailFacilities = make(map[inet.FacilityID]bool)
	hosts := d.HostingISPs()
	for _, as := range hosts[:len(hosts)/2] {
		fid, _ := TopFacility(d, as)
		sc.FailFacilities[fid] = true
	}
	rep := Simulate(m, d, sc)
	if len(rep.CollateralISPs) == 0 {
		t.Error("no collateral ISPs despite broad failure and tight headroom")
	}
	for as := range rep.CollateralISPs {
		if rep.DirectISPs[as] {
			t.Errorf("AS%d counted both direct and collateral", as)
		}
	}
	if rep.CollateralUsers(d.World) <= 0 {
		t.Error("collateral users not accounted")
	}
}

func TestLinkLoadHelpers(t *testing.T) {
	l := LinkLoad{LoadGbps: 10, CapacityGbps: 5}
	if !l.Congested() || l.Utilization() != 2 {
		t.Errorf("LinkLoad helpers wrong: %+v", l)
	}
	z := LinkLoad{LoadGbps: 1, CapacityGbps: 0}
	if z.Utilization() != 0 {
		t.Error("zero capacity utilization should be 0")
	}
}

func TestSweep(t *testing.T) {
	d, m := setup(t, 1)
	hosts := d.HostingISPs()
	st := Sweep(m, d, hosts[:20])
	if st.Scenarios == 0 {
		t.Fatal("no scenarios ran")
	}
	if st.MeanHGsPerFailure < 1.3 {
		t.Errorf("mean HGs per facility failure = %.2f; colocation should make this >1", st.MeanHGsPerFailure)
	}
	if st.CongestionFraction < 0 || st.CongestionFraction > 1 {
		t.Errorf("congestion fraction out of range: %v", st.CongestionFraction)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	d, m := setup(t, 2)
	_, fid, _ := multiHGISP(t, d)
	sc := DefaultScenario()
	sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
	a := Simulate(m, d, sc)
	b := Simulate(m, d, sc)
	if len(a.Flows) != len(b.Flows) || len(a.CollateralISPs) != len(b.CollateralISPs) {
		t.Fatal("simulation not deterministic")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("flows differ between identical runs")
		}
	}
}

// TestCongestedBoundary pins the inclusive boundary semantics: load exactly
// at capacity is congested (zero-headroom links in temporal schedules must
// trip), while an unused link never is — whatever its capacity.
func TestCongestedBoundary(t *testing.T) {
	cases := []struct {
		load, cap float64
		want      bool
	}{
		{0, 0, false},      // unused link, zero capacity
		{0, 10, false},     // unused link
		{5, 0, true},       // any load over zero capacity
		{10, 10, true},     // exactly at capacity: congested (inclusive)
		{9.999, 10, false}, // just under
		{10.001, 10, true}, // just over
	}
	for _, tc := range cases {
		l := LinkLoad{LoadGbps: tc.load, CapacityGbps: tc.cap}
		if got := l.Congested(); got != tc.want {
			t.Errorf("Congested(load=%v, cap=%v) = %v, want %v", tc.load, tc.cap, got, tc.want)
		}
	}
}

// TestAssessMatchesSimulate: Simulate is exactly sanitize + Serve +
// ServeBurst + Assess — the decomposition the temporal engine relies on to
// share the assessment path with the closed-form oracle.
func TestAssessMatchesSimulate(t *testing.T) {
	d, m := setup(t, 2)
	_, fid, _ := multiHGISP(t, d)
	sc := DefaultScenario()
	sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
	sc.Surge = map[traffic.HG]float64{traffic.Akamai: 2.0}

	want := Simulate(m, d, sc)
	baseline := m.Serve(sc.DemandMult, nil, nil)
	flows := m.ServeBurst(sc.DemandMult, sc.Surge, sc.FailFacilities)
	got := Assess(m, d, sc, baseline, flows)

	if len(got.Flows) != len(want.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(got.Flows), len(want.Flows))
	}
	for i := range got.Flows {
		if got.Flows[i] != want.Flows[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
	for _, pair := range []struct {
		name      string
		got, want int
	}{
		{"congested IXPs", len(got.CongestedIXPs()), len(want.CongestedIXPs())},
		{"congested transits", len(got.CongestedTransits()), len(want.CongestedTransits())},
		{"direct ISPs", len(got.DirectISPs), len(want.DirectISPs)},
		{"collateral ISPs", len(got.CollateralISPs), len(want.CollateralISPs)},
	} {
		if pair.got != pair.want {
			t.Fatalf("%s differ: %d vs %d", pair.name, pair.got, pair.want)
		}
	}
	// And the isolated assessment decomposes the same way.
	wantIso := SimulateIsolated(m, d, sc)
	gotIso := AssessIsolated(m, d, got)
	if len(gotIso.IsolatedCollateralISPs) != len(wantIso.IsolatedCollateralISPs) {
		t.Fatalf("isolated collateral differ: %d vs %d",
			len(gotIso.IsolatedCollateralISPs), len(wantIso.IsolatedCollateralISPs))
	}
}
