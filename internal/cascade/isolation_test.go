package cascade

import (
	"testing"

	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func TestIsolationNeverWorseThanSharedFate(t *testing.T) {
	d, m := setup(t, 1)
	hosts := d.HostingISPs()
	for _, as := range hosts[:15] {
		fid, n := TopFacility(d, as)
		if n == 0 {
			continue
		}
		sc := DefaultScenario()
		sc.SharedHeadroom = 1.1
		sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
		rep := SimulateIsolated(m, d, sc)
		if len(rep.IsolatedCollateralISPs) > len(rep.CollateralISPs) {
			t.Fatalf("AS%d: isolation increased collateral (%d > %d)",
				as, len(rep.IsolatedCollateralISPs), len(rep.CollateralISPs))
		}
		// Isolated collateral must be a subset of shared-fate collateral.
		for isp := range rep.IsolatedCollateralISPs {
			if !rep.CollateralISPs[isp] {
				t.Fatalf("AS%d: isolated collateral ISP %d not in shared-fate set", as, isp)
			}
		}
	}
}

func TestIsolationIdentifiesOffenders(t *testing.T) {
	// A surge on exactly one hypergiant must make (at most) that hypergiant
	// the offender; innocent hypergiants keep within their slices.
	d, m := setup(t, 1)
	sc := DefaultScenario()
	sc.SharedHeadroom = 1.05
	sc.Surge = map[traffic.HG]float64{traffic.Netflix: 2.5}
	rep := SimulateIsolated(m, d, sc)
	for _, hg := range rep.OffendingHGs {
		if hg != traffic.Netflix {
			t.Errorf("innocent hypergiant %s marked as offender", hg)
		}
	}
}

func TestMitigationSweepReducesCollateral(t *testing.T) {
	// The §6 claim in numbers: per-hypergiant capacity slices on shared
	// links cut collateral damage substantially.
	d, m := setup(t, 1)
	hosts := d.HostingISPs()
	st := MitigationSweep(m, d, hosts)
	if st.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	if st.MeanCollateralIsolated > st.MeanCollateralShared {
		t.Errorf("isolation increased mean collateral: %.2f > %.2f",
			st.MeanCollateralIsolated, st.MeanCollateralShared)
	}
	if st.MeanCollateralShared > 0 && st.MeanCollateralIsolated >= st.MeanCollateralShared*0.9 {
		t.Errorf("isolation barely helped: %.2f vs %.2f",
			st.MeanCollateralIsolated, st.MeanCollateralShared)
	}
}

func TestSlicesOf(t *testing.T) {
	base := map[traffic.HG]float64{traffic.Google: 30, traffic.Netflix: 10}
	s := slicesOf(base, 100)
	if s[traffic.Google] != 75 || s[traffic.Netflix] != 25 {
		t.Errorf("proportional slices wrong: %+v", s)
	}
	var total float64
	for _, hg := range traffic.All {
		total += s[hg]
	}
	if total > 100+1e-9 {
		t.Errorf("slices exceed capacity: %v", total)
	}
	// Zero baseline → equal split.
	eq := slicesOf(nil, 100)
	for _, hg := range traffic.All {
		if eq[hg] != 25 {
			t.Errorf("equal split wrong: %+v", eq)
		}
	}
}
