package cascade

import (
	"context"
	"sort"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/par"
	"offnetrisk/internal/rngutil"
)

// This file quantifies the paper's central claim — colocation of offnets
// "centralizes traffic in a risky way" — as a risk curve: the probability
// that a random k-facility outage disrupts at least X users, compared
// between today's colocated deployments and a counterfactual in which each
// ISP spreads its hypergiants across facilities.

// RiskPoint is one point of an exceedance curve: the probability that a
// scenario affects at least Users users.
type RiskPoint struct {
	Users float64
	Prob  float64
}

// RiskCurve summarizes a Monte Carlo failure study.
type RiskCurve struct {
	Trials int
	// MeanAffected is the expected users affected per scenario (direct ISP
	// users scaled by lost offnet share, plus collateral).
	MeanAffected float64
	// MeanHGs is the expected number of hypergiants losing capacity per
	// scenario — the correlated-failure measure.
	MeanHGs float64
	Curve   []RiskPoint
}

// AtLeast evaluates the exceedance probability at a user count: the
// probability mass of trials with at least that many affected users.
func (r RiskCurve) AtLeast(users float64) float64 {
	// Curve is ascending in Users with non-increasing Prob.
	for _, p := range r.Curve {
		if p.Users >= users {
			return p.Prob
		}
	}
	return 0
}

// MonteCarlo samples `trials` scenarios, each failing k uniformly random
// offnet-hosting facilities at peak, and returns the exceedance curve of
// affected users. Each trial draws its facility sample from an independent
// substream derived from (seed, trial), so the curve is invariant to worker
// count and scheduling.
func MonteCarlo(m *capacity.Model, d *hypergiant.Deployment, k, trials int, seed int64) RiskCurve {
	rc, _ := MonteCarloContext(context.Background(), m, d, k, trials, seed, 1)
	return rc
}

// MonteCarloContext is MonteCarlo with cancellation and a worker-pool knob;
// trials run concurrently and merge in trial order.
func MonteCarloContext(ctx context.Context, m *capacity.Model, d *hypergiant.Deployment, k, trials int, seed int64, workers int) (RiskCurve, error) {
	w := d.World

	// Facilities actually hosting offnets.
	facSet := make(map[inet.FacilityID]bool)
	for _, s := range d.Servers {
		facSet[s.Facility] = true
	}
	facs := make([]inet.FacilityID, 0, len(facSet))
	for id := range facSet {
		facs = append(facs, id)
	}
	sort.Slice(facs, func(i, j int) bool { return facs[i] < facs[j] })
	if k > len(facs) {
		k = len(facs)
	}
	if k < 1 || trials < 1 {
		return RiskCurve{}, nil
	}

	type outcome struct {
		hgs      float64
		affected float64
	}
	outs, err := par.Map(ctx, trials, par.Options{Workers: workers, Name: "risk-trials"},
		func(_ context.Context, trial int) (outcome, error) {
			r := rngutil.New(rngutil.Derive(seed, 0x415c, int64(trial)))
			sc := DefaultScenario()
			sc.FailFacilities = make(map[inet.FacilityID]bool, k)
			for _, idx := range rngutil.SampleWithoutReplacement(r, len(facs), k) {
				sc.FailFacilities[facs[idx]] = true
			}
			rep := Simulate(m, d, sc)
			return outcome{
				hgs:      float64(len(rep.HGsImpacted)),
				affected: rep.DirectUsers(w) + rep.CollateralUsers(w),
			}, nil
		})
	if err != nil {
		return RiskCurve{}, err
	}

	affected := make([]float64, 0, trials)
	var hgSum float64
	for _, o := range outs {
		hgSum += o.hgs
		affected = append(affected, o.affected)
	}

	sort.Float64s(affected)
	curve := make([]RiskPoint, 0, len(affected))
	for i, u := range affected {
		curve = append(curve, RiskPoint{Users: u, Prob: float64(len(affected)-i) / float64(len(affected))})
	}
	var sum float64
	for _, u := range affected {
		sum += u
	}
	return RiskCurve{
		Trials:       trials,
		MeanAffected: sum / float64(trials),
		MeanHGs:      hgSum / float64(trials),
		Curve:        curve,
	}, nil
}

// Decolocate builds the counterfactual deployment: within every ISP, each
// hypergiant's servers move to a facility of their own where the ISP has
// enough facilities (round-robin assignment per hypergiant). Single-facility
// ISPs cannot spread — exactly the constraint that makes real
// de-colocation hard for small ISPs.
func Decolocate(d *hypergiant.Deployment) *hypergiant.Deployment {
	w := d.World
	out := &hypergiant.Deployment{
		Epoch:     d.Epoch,
		World:     w,
		ContentAS: d.ContentAS,
		Peerings:  d.Peerings,
	}
	for _, s := range d.Servers {
		ns := *s
		isp := w.ISPs[s.ISP]
		if isp != nil && len(isp.Facilities) > 1 {
			// Deterministic per-hypergiant facility: offset into the ISP's
			// facility list by the hypergiant index.
			ns.Facility = isp.Facilities[int(s.HG)%len(isp.Facilities)]
		}
		out.Servers = append(out.Servers, &ns)
	}
	out.Reindex()
	return out
}
