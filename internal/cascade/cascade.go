// Package cascade simulates the failure scenarios of §3.3 and §4.3: a
// facility hosting colocated offnets from several hypergiants fails (or a
// demand surge hits), the lost offnet capacity spills over interdomain
// links, the spill lands on shared IXP fabrics and transit providers that
// "do not have enough capacity to handle hypergiant traffic without
// congestion", and the congestion collaterally damages networks that had
// nothing to do with the original failure.
package cascade

import (
	"context"
	"sort"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/par"
	"offnetrisk/internal/traffic"
)

var mScenariosSimulated = obs.NewCounter("cascade.scenarios_simulated",
	"failure/surge scenarios run through the spillover simulator")

// Scenario describes one what-if.
type Scenario struct {
	// FailFacilities lists facilities that go dark.
	FailFacilities map[inet.FacilityID]bool
	// Surge multiplies one or more hypergiants' demand (flash crowd, bad
	// software update shifting load).
	Surge map[traffic.HG]float64
	// DemandMult is the diurnal multiplier; 1.0 = peak hour.
	DemandMult float64
	// SharedHeadroom is how much headroom shared links (IXP fabrics,
	// transit) have above their normal peak load; §4.3 argues it is small.
	SharedHeadroom float64
}

// DefaultScenario returns a peak-hour scenario with the paper's pessimistic
// (but evidenced) shared-link headroom.
func DefaultScenario() Scenario {
	return Scenario{DemandMult: 1.0, SharedHeadroom: 1.25}
}

// LinkLoad is the load/capacity state of one shared resource.
type LinkLoad struct {
	LoadGbps     float64
	CapacityGbps float64
}

// Congested reports whether the link is at or beyond capacity. The boundary
// is inclusive: a positively loaded link whose load equals its capacity has
// zero headroom and Utilization() == 1.0, and temporal event schedules can
// land load exactly on capacity, so load == capacity counts as congested.
// An unused link (load 0) is never congested, whatever its capacity.
func (l LinkLoad) Congested() bool { return l.LoadGbps > 0 && l.LoadGbps >= l.CapacityGbps }

// Utilization returns load/capacity (0 when capacity is 0).
func (l LinkLoad) Utilization() float64 {
	if l.CapacityGbps <= 0 {
		return 0
	}
	return l.LoadGbps / l.CapacityGbps
}

// Report is the outcome of one scenario.
type Report struct {
	Scenario Scenario
	Baseline []capacity.Flow
	Flows    []capacity.Flow
	// IXPLoad / TransitLoad after the scenario; capacities derive from the
	// baseline loads times the shared headroom.
	IXPLoad     map[inet.IXPID]LinkLoad
	TransitLoad map[inet.ASN]LinkLoad
	// DirectISPs lost offnet capacity (their facility failed); their users
	// see degraded service first.
	DirectISPs map[inet.ASN]bool
	// CollateralISPs did not fail but route over a congested shared link.
	CollateralISPs map[inet.ASN]bool
	// HGsImpacted lost offnet capacity somewhere.
	HGsImpacted []traffic.HG
}

// DirectUsers sums users in directly affected ISPs.
func (r *Report) DirectUsers(w *inet.World) float64 { return w.UsersInISPs(r.DirectISPs) }

// CollateralUsers sums users in collaterally affected ISPs.
func (r *Report) CollateralUsers(w *inet.World) float64 { return w.UsersInISPs(r.CollateralISPs) }

// CongestedIXPs returns the exchanges pushed past capacity, ascending.
func (r *Report) CongestedIXPs() []inet.IXPID {
	var out []inet.IXPID
	for id, l := range r.IXPLoad {
		if l.Congested() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CongestedTransits returns the transit providers pushed past capacity,
// ascending.
func (r *Report) CongestedTransits() []inet.ASN {
	var out []inet.ASN
	for as, l := range r.TransitLoad {
		if l.Congested() {
			out = append(out, as)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sanitized fills the zero-value scenario fields with the defaults Simulate
// has always applied; idempotent.
func (sc Scenario) sanitized() Scenario {
	if sc.DemandMult <= 0 {
		sc.DemandMult = 1.0
	}
	if sc.SharedHeadroom <= 1 {
		sc.SharedHeadroom = 1.25
	}
	return sc
}

// Simulate runs the scenario: serve demand with the failed facilities
// removed, aggregate spill onto shared links, size those links from the
// baseline (no-failure) loads, and trace the collateral damage.
func Simulate(m *capacity.Model, d *hypergiant.Deployment, sc Scenario) *Report {
	sc = sc.sanitized()
	baseline := m.Serve(sc.DemandMult, nil, nil)
	// Under failure/surge the surviving offnets are pushed to burst.
	flows := m.ServeBurst(sc.DemandMult, sc.Surge, sc.FailFacilities)
	return Assess(m, d, sc, baseline, flows)
}

// Assess is the replay entry point behind Simulate: it takes serving splits
// the caller already computed (the temporal engine serves once per clock
// step and hands the result here) and derives the full congestion report —
// shared-link loads, capacities sized from baseline×headroom, direct and
// collateral ISP sets. Simulate(m, d, sc) is exactly
// Assess(m, d, sc, m.Serve(...), m.ServeBurst(...)), so engine trajectories
// and closed-form sweeps agree bit-for-bit by construction.
func Assess(m *capacity.Model, d *hypergiant.Deployment, sc Scenario, baseline, flows []capacity.Flow) *Report {
	mScenariosSimulated.Inc()
	sc = sc.sanitized()
	w := d.World
	rep := &Report{
		Scenario:       sc,
		Baseline:       baseline,
		Flows:          flows,
		DirectISPs:     make(map[inet.ASN]bool),
		CollateralISPs: make(map[inet.ASN]bool),
	}

	// Direct impact: ISPs owning a failed facility, and hypergiants with
	// servers there.
	hgHit := map[traffic.HG]bool{}
	for fid := range sc.FailFacilities {
		if f, ok := w.Facilities[fid]; ok {
			rep.DirectISPs[f.Owner] = true
		}
	}
	for _, s := range d.Servers {
		if sc.FailFacilities[s.Facility] {
			hgHit[s.HG] = true
		}
	}
	for _, hg := range traffic.All {
		if hgHit[hg] {
			rep.HGsImpacted = append(rep.HGsImpacted, hg)
		}
	}

	rep.IXPLoad = loadIXPs(m, w, rep.Flows, baselineIXPs(m, w, rep.Baseline), sc.SharedHeadroom)
	rep.TransitLoad = loadTransits(w, rep.Flows, baselineTransits(w, rep.Baseline), sc.SharedHeadroom)

	// Collateral: ISPs that did not fail but whose serving path crosses a
	// congested shared resource — via their IXP peering or any of their
	// transit providers.
	congIXP := make(map[inet.IXPID]bool)
	for _, id := range rep.CongestedIXPs() {
		congIXP[id] = true
	}
	congTr := make(map[inet.ASN]bool)
	for _, as := range rep.CongestedTransits() {
		congTr[as] = true
	}
	for _, f := range rep.Flows {
		if rep.DirectISPs[f.ISP] {
			continue
		}
		if f.IXP > 0 {
			if id, ok := m.IXPIDOf[f.HG][f.ISP]; ok && congIXP[id] {
				rep.CollateralISPs[f.ISP] = true
			}
		}
		if f.Transit+f.UpstreamOffnet > 0 {
			if isp, ok := w.ISPs[f.ISP]; ok {
				for _, prov := range isp.Providers {
					if congTr[prov] {
						rep.CollateralISPs[f.ISP] = true
					}
				}
			}
		}
	}
	return rep
}

// baselineIXPs computes normal per-exchange hypergiant load.
func baselineIXPs(m *capacity.Model, w *inet.World, flows []capacity.Flow) map[inet.IXPID]float64 {
	out := make(map[inet.IXPID]float64)
	for _, f := range flows {
		if f.IXP <= 0 {
			continue
		}
		if id, ok := m.IXPIDOf[f.HG][f.ISP]; ok {
			out[id] += f.IXP
		}
	}
	return out
}

func loadIXPs(m *capacity.Model, w *inet.World, flows []capacity.Flow, base map[inet.IXPID]float64, headroom float64) map[inet.IXPID]LinkLoad {
	out := make(map[inet.IXPID]LinkLoad)
	load := baselineIXPs(m, w, flows)
	for id, x := range w.IXPs {
		b := base[id]
		// Capacity: whichever is larger of the fabric's provisioned
		// capacity share for hypergiant traffic and baseline×headroom —
		// exchanges are provisioned for their normal peak, not for failover
		// surges.
		cap := b * headroom
		if cap <= 0 {
			cap = x.CapacityGbps
		}
		if l, ok := load[id]; ok || b > 0 {
			out[id] = LinkLoad{LoadGbps: l, CapacityGbps: cap}
		}
	}
	return out
}

// baselineTransits computes normal per-transit-provider hypergiant load:
// each flow's transit share splits evenly over the destination ISP's
// providers.
func baselineTransits(w *inet.World, flows []capacity.Flow) map[inet.ASN]float64 {
	out := make(map[inet.ASN]float64)
	for _, f := range flows {
		load := f.Transit + f.UpstreamOffnet
		if load <= 0 {
			continue
		}
		isp, ok := w.ISPs[f.ISP]
		if !ok || len(isp.Providers) == 0 {
			continue
		}
		per := load / float64(len(isp.Providers))
		for _, prov := range isp.Providers {
			out[prov] += per
		}
	}
	return out
}

func loadTransits(w *inet.World, flows []capacity.Flow, base map[inet.ASN]float64, headroom float64) map[inet.ASN]LinkLoad {
	load := baselineTransits(w, flows)
	out := make(map[inet.ASN]LinkLoad, len(load))
	for as, l := range load {
		cap := base[as] * headroom
		if cap <= 0 {
			// A provider with no baseline hypergiant load still has some
			// capacity; size it from its customers' baseline interdomain
			// traffic floor.
			cap = 10
		}
		out[as] = LinkLoad{LoadGbps: l, CapacityGbps: cap}
	}
	return out
}

// TopFacility returns the ISP's facility hosting offnets from the most
// hypergiants (ties: more servers), plus that hypergiant count — the
// "single facility – perhaps even a single rack" the paper worries about.
func TopFacility(d *hypergiant.Deployment, as inet.ASN) (inet.FacilityID, int) {
	type acc struct {
		hgs     map[traffic.HG]bool
		servers int
	}
	per := make(map[inet.FacilityID]*acc)
	for _, s := range d.ServersIn(as) {
		a := per[s.Facility]
		if a == nil {
			a = &acc{hgs: make(map[traffic.HG]bool)}
			per[s.Facility] = a
		}
		a.hgs[s.HG] = true
		a.servers++
	}
	var best inet.FacilityID
	bestHGs, bestServers := -1, -1
	ids := make([]inet.FacilityID, 0, len(per))
	for id := range per {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := per[id]
		if len(a.hgs) > bestHGs || (len(a.hgs) == bestHGs && a.servers > bestServers) {
			best, bestHGs, bestServers = id, len(a.hgs), a.servers
		}
	}
	return best, bestHGs
}

// SweepStats aggregates a fail-the-top-facility sweep across ISPs.
type SweepStats struct {
	Scenarios int
	// MeanHGsPerFailure is the average number of hypergiants knocked out
	// by a single facility failure — the correlated-risk headline.
	MeanHGsPerFailure float64
	// CongestionFraction is the share of scenarios congesting at least one
	// shared link.
	CongestionFraction float64
	// MeanCollateralISPs is the average number of uninvolved ISPs behind a
	// congested shared link.
	MeanCollateralISPs float64
}

// Sweep fails the top facility of each given ISP in turn and aggregates.
func Sweep(m *capacity.Model, d *hypergiant.Deployment, isps []inet.ASN) SweepStats {
	st, _ := SweepContext(context.Background(), m, d, isps, 1)
	return st
}

// SweepContext is Sweep with cancellation, one scenario simulation per task
// on a bounded worker pool. Simulate is read-only on the model and
// deployment and the stats are commutative sums, so the aggregate is
// identical at any worker count.
func SweepContext(ctx context.Context, m *capacity.Model, d *hypergiant.Deployment, isps []inet.ASN, workers int) (SweepStats, error) {
	type outcome struct {
		ok        bool
		hgs, coll float64
		congested bool
	}
	outs, err := par.Map(ctx, len(isps), par.Options{Workers: workers, Name: "facility-sweep"},
		func(_ context.Context, i int) (outcome, error) {
			fid, nHGs := TopFacility(d, isps[i])
			if nHGs <= 0 {
				return outcome{}, nil
			}
			sc := DefaultScenario()
			sc.FailFacilities = map[inet.FacilityID]bool{fid: true}
			rep := Simulate(m, d, sc)
			return outcome{
				ok:        true,
				hgs:       float64(nHGs),
				coll:      float64(len(rep.CollateralISPs)),
				congested: len(rep.CongestedIXPs()) > 0 || len(rep.CongestedTransits()) > 0,
			}, nil
		})
	if err != nil {
		return SweepStats{}, err
	}
	var st SweepStats
	var hgSum, collSum float64
	for _, o := range outs {
		if !o.ok {
			continue
		}
		st.Scenarios++
		hgSum += o.hgs
		collSum += o.coll
		if o.congested {
			st.CongestionFraction++
		}
	}
	if st.Scenarios > 0 {
		st.MeanHGsPerFailure = hgSum / float64(st.Scenarios)
		st.MeanCollateralISPs = collSum / float64(st.Scenarios)
		st.CongestionFraction /= float64(st.Scenarios)
	}
	return st, nil
}
