package bgp_test

import (
	"fmt"

	"offnetrisk/internal/bgp"
	"offnetrisk/internal/inet"
)

// Example builds a small hierarchy — a backbone, a transit provider, an
// access ISP, and a content network peering only with the backbone — and
// shows Gao-Rexford path selection.
func Example() {
	const (
		backbone = inet.ASN(100)
		transit  = inet.ASN(1000)
		access   = inet.ASN(10000)
		content  = inet.ASN(90000)
	)
	g := bgp.NewGraph()
	g.AddProvider(transit, backbone)
	g.AddProvider(access, transit)
	g.AddPeer(content, backbone)

	rib := g.PathsTo(access)
	fmt.Println("content → access:", rib.Path(content))
	r, _ := rib.RouteOf(content)
	fmt.Println("route kind:", r.Kind)

	// Peering with the access network shortens the path to one hop.
	g.AddPeer(content, access)
	rib = g.PathsTo(access)
	fmt.Println("after peering:", rib.Path(content))
	// Output:
	// content → access: [90000 100 1000 10000]
	// route kind: peer
	// after peering: [90000 10000]
}
