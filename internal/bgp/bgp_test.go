package bgp

import (
	"testing"
	"testing/quick"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/traffic"
)

// chainGraph builds: bb1 ←prov← t1 ←prov← a1; bb2 ←prov← t2 ←prov← a2;
// bb1 ↔ bb2 peers; hg peers with bb1, bb2, and a1.
func chainGraph() (*Graph, map[string]inet.ASN) {
	as := map[string]inet.ASN{
		"bb1": 100, "bb2": 101, "t1": 1000, "t2": 1001,
		"a1": 10000, "a2": 10001, "hg": 90000,
	}
	g := NewGraph()
	g.AddProvider(as["t1"], as["bb1"])
	g.AddProvider(as["t2"], as["bb2"])
	g.AddProvider(as["a1"], as["t1"])
	g.AddProvider(as["a2"], as["t2"])
	g.AddPeer(as["bb1"], as["bb2"])
	g.AddPeer(as["hg"], as["bb1"])
	g.AddPeer(as["hg"], as["bb2"])
	g.AddPeer(as["hg"], as["a1"])
	return g, as
}

func TestPeeredPathIsDirect(t *testing.T) {
	g, as := chainGraph()
	rib := g.PathsTo(as["a1"])
	path := rib.Path(as["hg"])
	if len(path) != 2 || path[0] != as["hg"] || path[1] != as["a1"] {
		t.Fatalf("peered path = %v, want [hg a1]", path)
	}
	r, _ := rib.RouteOf(as["hg"])
	if r.Kind != RoutePeer {
		t.Errorf("route kind = %v, want peer", r.Kind)
	}
}

func TestUnpeeredPathClimbsHierarchy(t *testing.T) {
	g, as := chainGraph()
	rib := g.PathsTo(as["a2"])
	path := rib.Path(as["hg"])
	want := []inet.ASN{as["hg"], as["bb2"], as["t2"], as["a2"]}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if err := g.ValleyFree(path); err != nil {
		t.Errorf("path not valley-free: %v", err)
	}
}

func TestCustomerRoutePreferredOverPeer(t *testing.T) {
	// t1 reaches a1 as a customer (direct); even though other paths exist
	// via peers, the customer route must win.
	g, as := chainGraph()
	rib := g.PathsTo(as["a1"])
	r, ok := rib.RouteOf(as["t1"])
	if !ok || r.Kind != RouteCustomer || r.NextHop != as["a1"] {
		t.Errorf("t1 route = %+v (ok=%v), want direct customer", r, ok)
	}
	// a2 reaches a1 via its provider chain.
	r, ok = rib.RouteOf(as["a2"])
	if !ok || r.Kind != RouteProvider {
		t.Errorf("a2 route = %+v (ok=%v), want provider", r, ok)
	}
	if err := g.ValleyFree(rib.Path(as["a2"])); err != nil {
		t.Errorf("a2 path not valley-free: %v", err)
	}
}

func TestPeerRoutesNotExportedToPeers(t *testing.T) {
	// hg peers with a1. bb1 must NOT reach a1 through hg (peer route
	// through a peer = valley). bb1's route to a1 goes through its customer
	// chain t1.
	g, as := chainGraph()
	rib := g.PathsTo(as["a1"])
	r, ok := rib.RouteOf(as["bb1"])
	if !ok {
		t.Fatal("bb1 cannot reach a1")
	}
	if r.NextHop == as["hg"] {
		t.Error("bb1 routes via hg: peer route leaked to a peer")
	}
	if r.Kind != RouteCustomer || r.NextHop != as["t1"] {
		t.Errorf("bb1 route = %+v, want customer via t1", r)
	}
}

func TestUnreachableAndUnknown(t *testing.T) {
	g := NewGraph()
	g.AddProvider(10, 20)
	rib := g.PathsTo(99) // unknown destination
	if p := rib.Path(10); p != nil {
		t.Errorf("path to unknown dst = %v", p)
	}
	// Island AS (no edges to dst's component).
	g.AddPeer(30, 31)
	rib = g.PathsTo(20)
	if _, ok := rib.RouteOf(30); ok {
		t.Error("disconnected AS should have no route")
	}
}

func TestSelfRoute(t *testing.T) {
	g, as := chainGraph()
	rib := g.PathsTo(as["a1"])
	p := rib.Path(as["a1"])
	if len(p) != 1 || p[0] != as["a1"] {
		t.Errorf("self path = %v", p)
	}
}

func TestFromWorldFullReachabilityAndValleyFree(t *testing.T) {
	// Every AS must reach every access ISP, and every reconstructed path
	// must be valley-free — the global invariants of the routing substrate.
	w := inet.Generate(inet.TinyConfig(1))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	g := FromWorld(d)

	hgAS := d.ContentAS[traffic.Google]
	checked := 0
	for _, isp := range w.AccessISPs()[:20] {
		rib := g.PathsTo(isp.ASN)
		for _, src := range g.Nodes() {
			path := rib.Path(src)
			if path == nil {
				t.Fatalf("AS%d cannot reach %s", src, isp.Name)
			}
			if err := g.ValleyFree(path); err != nil {
				t.Fatalf("src AS%d → %s: %v (path %v)", src, isp.Name, err, path)
			}
			checked++
		}
		// Hypergiant adjacency appears iff a peering exists.
		path := rib.Path(hgAS)
		direct := len(path) == 2
		peered := g.HasPeer(hgAS, isp.ASN)
		if direct && !peered {
			t.Errorf("%s: direct path without peering", isp.Name)
		}
		if peered && !direct {
			t.Errorf("%s: peering exists but path %v is indirect", isp.Name, path)
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestPathsDeterministic(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(2))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := FromWorld(d), FromWorld(d)
	dst := w.AccessISPs()[0].ASN
	r1, r2 := g1.PathsTo(dst), g2.PathsTo(dst)
	for _, src := range g1.Nodes() {
		p1, p2 := r1.Path(src), r2.Path(src)
		if len(p1) != len(p2) {
			t.Fatalf("paths differ for AS%d: %v vs %v", src, p1, p2)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("paths differ for AS%d: %v vs %v", src, p1, p2)
			}
		}
	}
}

func TestRandomGraphsValleyFreeProperty(t *testing.T) {
	// Random hierarchies: all computed paths must satisfy valley-freeness.
	f := func(seed int64) bool {
		r := rngutil.New(seed)
		g := NewGraph()
		const nBB, nT, nA = 3, 6, 20
		for i := 0; i < nBB; i++ {
			for j := i + 1; j < nBB; j++ {
				g.AddPeer(inet.ASN(i), inet.ASN(j))
			}
		}
		for i := 0; i < nT; i++ {
			g.AddProvider(inet.ASN(100+i), inet.ASN(r.Intn(nBB)))
		}
		for i := 0; i < nA; i++ {
			g.AddProvider(inet.ASN(1000+i), inet.ASN(100+r.Intn(nT)))
			if r.Intn(3) == 0 { // occasional lateral peering between access nets
				g.AddPeer(inet.ASN(1000+i), inet.ASN(1000+r.Intn(nA)))
			}
		}
		for trial := 0; trial < 5; trial++ {
			dst := inet.ASN(1000 + r.Intn(nA))
			rib := g.PathsTo(dst)
			for _, src := range g.Nodes() {
				path := rib.Path(src)
				if path == nil {
					continue
				}
				if err := g.ValleyFree(path); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRouteKindStrings(t *testing.T) {
	for k, want := range map[RouteKind]string{
		RouteSelf: "self", RouteCustomer: "customer", RoutePeer: "peer",
		RouteProvider: "provider", RouteNone: "none",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
