// Package bgp computes AS-level paths over the synthetic Internet under the
// standard Gao-Rexford policy model: customer-provider and peer-peer
// relationships, valley-free export (an AS exports its customers' routes to
// everyone but peer- and provider-learned routes only to customers), and
// the canonical preference order customer > peer > provider with shortest
// AS-path tie-breaking.
//
// The traceroute survey (§4.2.1) runs over these paths: a hypergiant's
// probes reach a peered ISP directly (one AS-level hop) and everything else
// through the transit hierarchy — which is exactly the structure the
// paper's peering inference keys on.
package bgp

import (
	"fmt"
	"sort"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
)

// RouteKind orders route preference: customer routes beat peer routes beat
// provider routes (Gao-Rexford).
type RouteKind int

// Route kinds in preference order.
const (
	RouteNone RouteKind = iota
	RouteProvider
	RoutePeer
	RouteCustomer
	RouteSelf
)

// String implements fmt.Stringer.
func (k RouteKind) String() string {
	switch k {
	case RouteSelf:
		return "self"
	case RouteCustomer:
		return "customer"
	case RoutePeer:
		return "peer"
	case RouteProvider:
		return "provider"
	default:
		return "none"
	}
}

// Graph is the AS relationship graph.
type Graph struct {
	// providers[a] lists a's transit providers (a pays them).
	providers map[inet.ASN][]inet.ASN
	// customers[a] lists a's customers.
	customers map[inet.ASN][]inet.ASN
	// peers[a] lists a's settlement-free peers.
	peers map[inet.ASN][]inet.ASN
	// nodes in deterministic order.
	nodes []inet.ASN
	seen  map[inet.ASN]bool
}

// NewGraph returns an empty relationship graph.
func NewGraph() *Graph {
	return &Graph{
		providers: make(map[inet.ASN][]inet.ASN),
		customers: make(map[inet.ASN][]inet.ASN),
		peers:     make(map[inet.ASN][]inet.ASN),
		seen:      make(map[inet.ASN]bool),
	}
}

func (g *Graph) addNode(as inet.ASN) {
	if !g.seen[as] {
		g.seen[as] = true
		g.nodes = append(g.nodes, as)
	}
}

// AddProvider records that cust buys transit from prov.
func (g *Graph) AddProvider(cust, prov inet.ASN) {
	g.addNode(cust)
	g.addNode(prov)
	g.providers[cust] = append(g.providers[cust], prov)
	g.customers[prov] = append(g.customers[prov], cust)
}

// AddPeer records a settlement-free peering between a and b.
func (g *Graph) AddPeer(a, b inet.ASN) {
	g.addNode(a)
	g.addNode(b)
	g.peers[a] = append(g.peers[a], b)
	g.peers[b] = append(g.peers[b], a)
}

// Nodes returns every AS in insertion order.
func (g *Graph) Nodes() []inet.ASN { return g.nodes }

// HasPeer reports whether a and b peer directly.
func (g *Graph) HasPeer(a, b inet.ASN) bool {
	for _, p := range g.peers[a] {
		if p == b {
			return true
		}
	}
	return false
}

// FromWorld derives the relationship graph from a deployed world:
// provider edges from every ISP's transit arrangements, a full backbone
// peer mesh, hypergiant↔backbone peerings (content networks are
// transit-free), and hypergiant↔ISP peerings from the deployment (both PNI
// and IXP count as peer edges — the relationship is the same, only the
// medium differs).
func FromWorld(d *hypergiant.Deployment) *Graph {
	w := d.World
	g := NewGraph()
	var backbones []inet.ASN
	for _, isp := range w.ISPList() {
		g.addNode(isp.ASN)
		for _, prov := range isp.Providers {
			g.AddProvider(isp.ASN, prov)
		}
		if isp.Tier == inet.TierBackbone {
			backbones = append(backbones, isp.ASN)
		}
	}
	for i := 0; i < len(backbones); i++ {
		for j := i + 1; j < len(backbones); j++ {
			g.AddPeer(backbones[i], backbones[j])
		}
	}
	for _, hgAS := range contentASNs(d) {
		for _, bb := range backbones {
			g.AddPeer(hgAS, bb)
		}
	}
	// Deployment peerings; deduplicate (a pair may have PNI and IXP).
	seen := make(map[[2]inet.ASN]bool)
	for _, p := range d.Peerings {
		hgAS := d.ContentAS[p.HG]
		key := [2]inet.ASN{hgAS, p.ISP}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddPeer(hgAS, p.ISP)
	}
	return g
}

func contentASNs(d *hypergiant.Deployment) []inet.ASN {
	out := make([]inet.ASN, 0, len(d.ContentAS))
	for _, as := range d.ContentAS {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Route is one AS's best route toward a destination.
type Route struct {
	Kind RouteKind
	// NextHop is the neighbor the route was learned from (0 for self).
	NextHop inet.ASN
	// Hops is the AS-path length (0 for self).
	Hops int
}

// RIB holds every AS's best route toward one destination.
type RIB struct {
	Dst    inet.ASN
	routes map[inet.ASN]Route
}

// RouteOf returns the AS's best route, or ok=false when dst is unreachable.
func (t *RIB) RouteOf(as inet.ASN) (Route, bool) {
	r, ok := t.routes[as]
	return r, ok
}

// Path reconstructs the AS path from src to the destination (inclusive of
// both), or nil when unreachable.
func (t *RIB) Path(src inet.ASN) []inet.ASN {
	var out []inet.ASN
	cur := src
	for {
		r, ok := t.routes[cur]
		if !ok {
			return nil
		}
		out = append(out, cur)
		if r.Kind == RouteSelf {
			return out
		}
		if len(out) > len(t.routes)+1 {
			return nil // corrupt table; fail closed
		}
		cur = r.NextHop
	}
}

// PathsTo computes, Gao-Rexford style, every AS's best route to dst:
//
//  1. customer routes propagate "up" provider edges from dst (BFS, so
//     shortest);
//  2. peer routes: one peer edge crossing from an AS holding a customer
//     (or self) route;
//  3. provider routes propagate "down" customer edges from every AS that
//     has any route.
//
// Ties (same kind, same length) break toward the lowest next-hop ASN for
// determinism.
func (g *Graph) PathsTo(dst inet.ASN) *RIB {
	t := &RIB{Dst: dst, routes: make(map[inet.ASN]Route, len(g.nodes))}
	if !g.seen[dst] {
		return t
	}
	t.routes[dst] = Route{Kind: RouteSelf}

	better := func(a, b Route) bool { // is a better than b?
		if a.Kind != b.Kind {
			return a.Kind > b.Kind
		}
		if a.Hops != b.Hops {
			return a.Hops < b.Hops
		}
		return a.NextHop < b.NextHop
	}
	install := func(as inet.ASN, r Route) bool {
		cur, ok := t.routes[as]
		if !ok || better(r, cur) {
			t.routes[as] = r
			return true
		}
		return false
	}

	// Stage 1: customer routes, BFS up provider edges.
	frontier := []inet.ASN{dst}
	for len(frontier) > 0 {
		var next []inet.ASN
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for _, as := range frontier {
			base := t.routes[as]
			for _, prov := range g.providers[as] {
				r := Route{Kind: RouteCustomer, NextHop: as, Hops: base.Hops + 1}
				if install(prov, r) {
					next = append(next, prov)
				}
			}
		}
		frontier = next
	}

	// Stage 2: peer routes. Only ASes holding customer/self routes export
	// across peer edges.
	for _, as := range g.nodes {
		base, ok := t.routes[as]
		if !ok || (base.Kind != RouteCustomer && base.Kind != RouteSelf) {
			continue
		}
		for _, peer := range g.peers[as] {
			install(peer, Route{Kind: RoutePeer, NextHop: as, Hops: base.Hops + 1})
		}
	}

	// Stage 3: provider routes, BFS down customer edges from every routed
	// AS. A customer prefers the shortest provider-learned path; kinds
	// never downgrade an existing better route thanks to install().
	frontier = frontier[:0]
	for as := range t.routes {
		frontier = append(frontier, as)
	}
	for len(frontier) > 0 {
		var next []inet.ASN
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for _, as := range frontier {
			base := t.routes[as]
			for _, cust := range g.customers[as] {
				r := Route{Kind: RouteProvider, NextHop: as, Hops: base.Hops + 1}
				if install(cust, r) {
					next = append(next, cust)
				}
			}
		}
		frontier = next
	}
	return t
}

// ValleyFree checks the Gao-Rexford invariant on a path: once the path
// goes "down" (provider→customer) or "across" (peer), it never goes "up"
// (customer→provider) or across again. Exposed for property tests.
func (g *Graph) ValleyFree(path []inet.ASN) error {
	if len(path) < 2 {
		return nil
	}
	phase := 0 // 0 = climbing, 1 = crossed peer, 2 = descending
	for i := 0; i < len(path)-1; i++ {
		a, b := path[i], path[i+1]
		switch {
		case contains(g.providers[a], b): // up
			if phase != 0 {
				return fmt.Errorf("bgp: up edge %d→%d after phase %d", a, b, phase)
			}
		case g.HasPeer(a, b): // across
			if phase >= 1 {
				return fmt.Errorf("bgp: second lateral edge %d→%d", a, b)
			}
			phase = 1
		case contains(g.customers[a], b): // down
			phase = 2
		default:
			return fmt.Errorf("bgp: %d→%d is not an edge", a, b)
		}
	}
	return nil
}

func contains(xs []inet.ASN, v inet.ASN) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
