package traffic

// Mix parameterizes the published traffic constants so scenario specs can
// declare alternative worlds (a Netflix-dominated regional peak, an iOS
// flash crowd, a multi-CDN split). The zero Mix means "use the paper's
// numbers": every consumer passes it through Sanitized, and DefaultMix
// reproduces the HG methods bit for bit, so defaulted pipelines are
// byte-identical to the constant-based code they replaced.
type Mix struct {
	// Shares is each hypergiant's fraction of total Internet traffic.
	Shares [NumHG]float64
	// OffnetFractions is the fraction of each hypergiant's traffic its
	// offnets serve for covered clients.
	OffnetFractions [NumHG]float64
	// OffnetProvisioning is the economy-wide ratio of offnet capacity to
	// the cacheable share of peak demand (SteadyOffnetProvisioning in the
	// default world).
	OffnetProvisioning float64
}

// DefaultMix returns the paper's published constants as a Mix.
func DefaultMix() Mix {
	m := Mix{OffnetProvisioning: SteadyOffnetProvisioning}
	for _, h := range All {
		m.Shares[h] = h.Share()
		m.OffnetFractions[h] = h.OffnetFraction()
	}
	return m
}

// IsZero reports whether the mix carries no data (all shares unset).
func (m Mix) IsZero() bool {
	for _, s := range m.Shares {
		if s != 0 {
			return false
		}
	}
	return true
}

// Sanitized replaces a zero mix with the default and fills an unset
// provisioning ratio, mirroring the repo-wide zero-config convention.
func (m Mix) Sanitized() Mix {
	if m.IsZero() {
		return DefaultMix()
	}
	if m.OffnetProvisioning <= 0 {
		m.OffnetProvisioning = SteadyOffnetProvisioning
	}
	return m
}

// Share is the hypergiant's fraction of total Internet traffic under this
// mix.
func (m Mix) Share(h HG) float64 {
	if h < 0 || h >= NumHG {
		return 0
	}
	return m.Shares[h]
}

// OffnetFraction is the fraction of the hypergiant's traffic its offnets
// serve under this mix.
func (m Mix) OffnetFraction(h HG) float64 {
	if h < 0 || h >= NumHG {
		return 0
	}
	return m.OffnetFractions[h]
}

// SteadyInterdomainShare is the share of the hypergiant's peak demand
// crossing interdomain links in steady state under this mix.
func (m Mix) SteadyInterdomainShare(h HG) float64 {
	return 1 - m.OffnetProvisioning*m.OffnetFraction(h)
}

// FacilityShare is the fraction of a user's total traffic a local offnet of
// this hypergiant can serve under this mix.
func (m Mix) FacilityShare(h HG) float64 {
	return m.Share(h) * m.OffnetFraction(h)
}

// CombinedFacilityShare sums FacilityShare over a set of colocated
// hypergiants, ignoring duplicates and out-of-range values.
func (m Mix) CombinedFacilityShare(hgs []HG) float64 {
	var total float64
	seen := [NumHG]bool{}
	for _, h := range hgs {
		if h < 0 || h >= NumHG || seen[h] {
			continue
		}
		seen[h] = true
		total += m.FacilityShare(h)
	}
	return total
}

// ParseHG maps a lowercase hypergiant name ("google", "netflix", "meta",
// "akamai") to its HG value.
func ParseHG(name string) (HG, bool) {
	switch name {
	case "google":
		return Google, true
	case "netflix":
		return Netflix, true
	case "meta":
		return Meta, true
	case "akamai":
		return Akamai, true
	default:
		return NumHG, false
	}
}

// Key is the lowercase spec-file key for the hypergiant.
func (h HG) Key() string {
	switch h {
	case Google:
		return "google"
	case Netflix:
		return "netflix"
	case Meta:
		return "meta"
	case Akamai:
		return "akamai"
	default:
		return "hg?"
	}
}
