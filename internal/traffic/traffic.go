// Package traffic holds the published traffic constants the paper combines
// in §2.1 and §3.2: each hypergiant's share of total Internet traffic
// (Sandvine / Akamai claims) and the fraction of that traffic its offnets
// can serve (cache efficiency). Their product is the fraction of a user's
// total traffic a local offnet can deliver, and the sum across hypergiants
// colocated in one facility is the paper's headline "52% of a user's traffic
// could be coming from a single facility".
package traffic

// HG identifies one of the four hypergiants the paper studies.
type HG int

// The four hypergiants, in the paper's Table 1 order.
const (
	Google HG = iota
	Netflix
	Meta
	Akamai
	NumHG // sentinel: number of hypergiants
)

// All lists the hypergiants in canonical order.
var All = []HG{Google, Netflix, Meta, Akamai}

// String implements fmt.Stringer.
func (h HG) String() string {
	switch h {
	case Google:
		return "Google"
	case Netflix:
		return "Netflix"
	case Meta:
		return "Meta"
	case Akamai:
		return "Akamai"
	default:
		return "HG(?)"
	}
}

// Share is the hypergiant's fraction of total Internet traffic (§2.1:
// "Google serves 21% of Internet traffic, Netflix serves 9%, and Meta serves
// 15%. Akamai claims to serve 15-20% of web traffic" — the paper uses 17.5%).
func (h HG) Share() float64 {
	switch h {
	case Google:
		return 0.21
	case Netflix:
		return 0.09
	case Meta:
		return 0.15
	case Akamai:
		return 0.175
	default:
		return 0
	}
}

// OffnetFraction is the fraction of the hypergiant's traffic its offnets
// serve for clients they cover (§2.1/§3.2: Google 80%, Netflix 95%, Meta
// 86%, Akamai 75%).
func (h HG) OffnetFraction() float64 {
	switch h {
	case Google:
		return 0.80
	case Netflix:
		return 0.95
	case Meta:
		return 0.86
	case Akamai:
		return 0.75
	default:
		return 0
	}
}

// SteadyOffnetProvisioning is the economy-wide ratio of offnet capacity to
// the cacheable share of peak demand. Slightly below 1: offnets are sized
// for their normal peak with essentially no headroom (§4.1), so a sliver of
// cacheable traffic already spills interdomain at peak. Both the deployment
// layer (interconnect sizing) and the capacity model key off this constant.
const SteadyOffnetProvisioning = 0.92

// SteadyInterdomainShare is the share of a hypergiant's peak demand crossing
// interdomain links in steady state: what the offnet cannot or may not
// serve.
func (h HG) SteadyInterdomainShare() float64 {
	return 1 - SteadyOffnetProvisioning*h.OffnetFraction()
}

// FacilityShare is the fraction of a user's total Internet traffic a local
// offnet of this hypergiant can serve: Share × OffnetFraction. The paper
// rounds these to 17% (Google), 9% (Netflix), 13% (Meta), 13% (Akamai).
func (h HG) FacilityShare() float64 {
	return h.Share() * h.OffnetFraction()
}

// CombinedFacilityShare sums FacilityShare over a set of colocated
// hypergiants: the estimated fraction of a user's traffic one facility can
// serve. For all four it is ≈0.52.
func CombinedFacilityShare(hgs []HG) float64 {
	var total float64
	seen := [NumHG]bool{}
	for _, h := range hgs {
		if h < 0 || h >= NumHG || seen[h] {
			continue
		}
		seen[h] = true
		total += h.FacilityShare()
	}
	return total
}
