package traffic

import (
	"math"
	"testing"
)

func TestPaperConstants(t *testing.T) {
	// §2.1 / §3.2 arithmetic, to the paper's rounding.
	cases := []struct {
		hg    HG
		share float64
	}{
		{Google, 0.21 * 0.80},  // "21% × 80% = 17%"
		{Netflix, 0.09 * 0.95}, // "9% × 95% = 9%"
		{Meta, 0.15 * 0.86},    // "15% × 86% = 13%"
		{Akamai, 0.175 * 0.75}, // "17.5% × 75% = 13%"
	}
	for _, tc := range cases {
		if got := tc.hg.FacilityShare(); math.Abs(got-tc.share) > 1e-12 {
			t.Errorf("%s FacilityShare = %v, want %v", tc.hg, got, tc.share)
		}
	}
}

func TestAllFourSumTo52Percent(t *testing.T) {
	// "A facility hosting all four hypergiants can serve 17% + 9% + 13% +
	// 13% = 52% of a user's traffic!"
	got := CombinedFacilityShare(All)
	if got < 0.51 || got > 0.53 {
		t.Errorf("combined share = %.4f, want ≈0.52", got)
	}
}

func TestCombinedDeduplicates(t *testing.T) {
	single := CombinedFacilityShare([]HG{Google})
	dup := CombinedFacilityShare([]HG{Google, Google, Google})
	if single != dup {
		t.Errorf("duplicate HGs double-counted: %v vs %v", single, dup)
	}
	if CombinedFacilityShare(nil) != 0 {
		t.Error("empty set should be 0")
	}
	if CombinedFacilityShare([]HG{HG(99), HG(-1)}) != 0 {
		t.Error("invalid HGs should contribute 0")
	}
}

func TestStrings(t *testing.T) {
	want := map[HG]string{Google: "Google", Netflix: "Netflix", Meta: "Meta", Akamai: "Akamai", HG(9): "HG(?)"}
	for h, s := range want {
		if h.String() != s {
			t.Errorf("String(%d) = %q want %q", int(h), h.String(), s)
		}
	}
}

func TestAllOrderMatchesTable1(t *testing.T) {
	if len(All) != int(NumHG) {
		t.Fatalf("All has %d entries, want %d", len(All), NumHG)
	}
	if All[0] != Google || All[1] != Netflix || All[2] != Meta || All[3] != Akamai {
		t.Error("All must follow Table 1 order: Google, Netflix, Meta, Akamai")
	}
}

func TestSharesAreProbabilities(t *testing.T) {
	var sum float64
	for _, h := range All {
		if s := h.Share(); s <= 0 || s >= 1 {
			t.Errorf("%s Share = %v out of (0,1)", h, s)
		}
		if f := h.OffnetFraction(); f <= 0 || f > 1 {
			t.Errorf("%s OffnetFraction = %v out of (0,1]", h, f)
		}
		sum += h.Share()
	}
	if sum >= 1 {
		t.Errorf("hypergiant shares sum to %v ≥ 1", sum)
	}
}
