package hypergiant

import (
	"testing"

	"offnetrisk/internal/inet"
)

// Failure-injection tests: the deployment and measurement layers must
// degrade gracefully on degenerate worlds rather than panic or corrupt
// state.

func TestDeployOnMinimalWorld(t *testing.T) {
	cfg := inet.Config{
		Seed: 1, AccessISPs: 2, TransitISPs: 1, Backbones: 1, IXPs: 1,
		TotalUsers: 1e6, ZipfExponent: 1, UsersPerSlash24: 8000,
	}
	w := inet.Generate(cfg)
	d, err := Deploy(w, Epoch2023, DefaultDeployConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// With two access ISPs at least one hypergiant must have deployed
	// somewhere, and every invariant still holds.
	if len(d.Servers) == 0 {
		t.Fatal("no servers on minimal world")
	}
	for _, s := range d.Servers {
		if _, ok := w.Facilities[s.Facility]; !ok {
			t.Fatalf("server in unknown facility %d", s.Facility)
		}
	}
}

func TestDeployConfigSanitization(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(2))
	// A zero-value config must be sanitized, not crash or deploy nothing.
	d, err := Deploy(w, Epoch2023, DeployConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Servers) == 0 {
		t.Fatal("zero-value config deployed nothing")
	}
	// Pathological values fall back to defaults.
	d2, err := Deploy(inet.Generate(inet.TinyConfig(2)), Epoch2023, DeployConfig{
		Seed: 2, PeakMbpsPerUser: -1, ColocationPropensity: 7,
		ResponsiveFraction: -3, AnycastFraction: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Servers) != len(d.Servers) {
		t.Errorf("sanitized configs diverge: %d vs %d servers", len(d2.Servers), len(d.Servers))
	}
}

func TestHostAddressSpacePressure(t *testing.T) {
	// Deployment must survive an ISP whose address space is already nearly
	// exhausted: it deploys what fits instead of failing the world.
	w := inet.Generate(inet.TinyConfig(4))
	var small *inet.ISP
	for _, isp := range w.AccessISPs() {
		n := uint64(0)
		for _, p := range isp.Prefixes {
			n += p.NumAddrs()
		}
		if n == 256 {
			small = isp
			break
		}
	}
	if small == nil {
		t.Skip("no single-/24 ISP")
	}
	for i := 0; i < 250; i++ {
		if _, err := w.AllocHostIn(small.ASN); err != nil {
			t.Fatal(err)
		}
	}
	d, err := Deploy(w, Epoch2023, DefaultDeployConfig(4))
	if err != nil {
		t.Fatalf("deployment failed under address pressure: %v", err)
	}
	if len(d.Servers) == 0 {
		t.Fatal("nothing deployed")
	}
}
