package hypergiant

import (
	"fmt"
	"math/rand"

	"offnetrisk/internal/cert"
	"offnetrisk/internal/traffic"
)

// Profile captures a hypergiant's deployment behaviour: how broadly it
// deploys at each epoch, how its boxes are sized, and the certificates it
// installs — including the naming changes between 2021 and 2023 that broke
// the original discovery methodology.
type Profile struct {
	HG traffic.HG
	// Coverage is the fraction of access ISPs hosting offnets at each
	// epoch. Ratios between epochs reproduce Table 1's growth: Google
	// +23.2%, Netflix +37.4%, Meta +16.9%, Akamai +0.0%.
	Coverage map[Epoch]float64
	// ServerGbps is the per-server serving capacity.
	ServerGbps float64
	// MaxServersPerISP caps a deployment's size in one ISP.
	MaxServersPerISP int
	// LegacySpread is the probability that a deployment predates current
	// colocation practice and sits in a non-primary facility; highest for
	// Akamai, whose "deployments date from many years before the other
	// hypergiants began deploying offnets".
	LegacySpread float64
	// OnnetOrg is the Organization entry on the hypergiant's own (onnet)
	// certificates.
	OnnetOrg string
	// OnnetDomains are hostnames served from onnet, which the 2021
	// methodology compared offnet names against.
	OnnetDomains []string
}

// Profiles returns the four hypergiants' deployment profiles. The coverage
// numbers are calibrated so that the ratio 2023/2021 matches Table 1 and the
// relative order of footprints (Google > Netflix ≳ Meta > Akamai in 2023)
// holds.
func Profiles() map[traffic.HG]Profile {
	return map[traffic.HG]Profile{
		traffic.Google: {
			HG:               traffic.Google,
			Coverage:         map[Epoch]float64{Epoch2021: 0.62, Epoch2023: 0.62 * 1.232},
			ServerGbps:       9,
			MaxServersPerISP: 24,
			LegacySpread:     0.10,
			OnnetOrg:         "Google LLC",
			OnnetDomains:     []string{"www.google.com", "youtube.com", "ggc.google.com"},
		},
		traffic.Netflix: {
			HG:               traffic.Netflix,
			Coverage:         map[Epoch]float64{Epoch2021: 0.345, Epoch2023: 0.345 * 1.374},
			ServerGbps:       18,
			MaxServersPerISP: 10,
			LegacySpread:     0.08,
			OnnetOrg:         "Netflix, Inc.",
			OnnetDomains:     []string{"netflix.com", "nflxvideo.net"},
		},
		traffic.Meta: {
			HG:               traffic.Meta,
			Coverage:         map[Epoch]float64{Epoch2021: 0.36, Epoch2023: 0.36 * 1.169},
			ServerGbps:       10,
			MaxServersPerISP: 16,
			LegacySpread:     0.08,
			OnnetOrg:         "Meta Platforms, Inc.",
			OnnetDomains:     []string{"facebook.com", "instagram.com", "star.c10r.facebook.com"},
		},
		traffic.Akamai: {
			HG:               traffic.Akamai,
			Coverage:         map[Epoch]float64{Epoch2021: 0.178, Epoch2023: 0.178},
			ServerGbps:       6,
			MaxServersPerISP: 30,
			LegacySpread:     0.45,
			OnnetOrg:         "Akamai Technologies, Inc.",
			OnnetDomains:     []string{"a248.e.akamai.net", "akamaiedge.net"},
		},
	}
}

// offnetCert builds the certificate a hypergiant installs on an offnet
// server at the given epoch and site. The 2021→2023 changes are the ones §2.2
// documents:
//
//   - Google 2021 certificates carried Organization "Google LLC"; by 2023
//     Google "does not include the Organization entry", and identification
//     must use the CN *.googlevideo.com (plus issuer checks).
//   - Meta 2021 offnets presented the same names as onnet servers
//     (*.fbcdn.net); by 2023 Meta "uses different domain names for different
//     offnet deployments" — site-specific CNs like *.fhan14-4.fna.fbcdn.net.
//   - Netflix and Akamai conventions are stable across epochs.
func offnetCert(hg traffic.HG, epoch Epoch, siteTag string, serverIdx int, r *rand.Rand) cert.Certificate {
	switch hg {
	case traffic.Google:
		cn := "*.googlevideo.com"
		san := fmt.Sprintf("r%d---sn-%s.googlevideo.com", serverIdx+1, siteTag)
		if epoch == Epoch2021 {
			return cert.Certificate{
				SubjectOrg: "Google LLC",
				SubjectCN:  cn,
				DNSNames:   []string{san},
				Issuer:     "Google Trust Services LLC",
			}
		}
		return cert.Certificate{
			// Organization entry removed post-2021.
			SubjectCN: cn,
			DNSNames:  []string{san},
			Issuer:    "Google Trust Services LLC",
		}
	case traffic.Netflix:
		return cert.Certificate{
			SubjectOrg: "Netflix, Inc.",
			SubjectCN:  "*.nflxvideo.net",
			DNSNames: []string{fmt.Sprintf("ipv4-c%03d-%s-isp.1.oca.nflxvideo.net",
				serverIdx+1, siteTag)},
			Issuer: "DigiCert Inc",
		}
	case traffic.Meta:
		if epoch == Epoch2021 {
			return cert.Certificate{
				SubjectOrg: "Facebook, Inc.",
				SubjectCN:  "*.fbcdn.net",
				DNSNames:   []string{"*.fbcdn.net", "*.facebook.com"},
				Issuer:     "DigiCert Inc",
			}
		}
		// Site-specific naming, e.g. *.fhan14-4.fna.fbcdn.net.
		site := fmt.Sprintf("*.f%s-%d.fna.fbcdn.net", siteTag, serverIdx%6+1)
		return cert.Certificate{
			SubjectOrg: "Meta Platforms, Inc.",
			SubjectCN:  site,
			DNSNames:   []string{site},
			Issuer:     "DigiCert Inc",
		}
	case traffic.Akamai:
		return cert.Certificate{
			SubjectOrg: "Akamai Technologies, Inc.",
			SubjectCN:  "a248.e.akamai.net",
			DNSNames:   []string{"*.akamaiedge.net", "a248.e.akamai.net"},
			Issuer:     "Let's Encrypt",
		}
	default:
		return cert.Certificate{}
	}
}
