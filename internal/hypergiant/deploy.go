package hypergiant

import (
	"fmt"
	"math"
	"sort"

	"offnetrisk/internal/geo"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/traffic"
)

// DeployConfig tunes the deployment layer.
type DeployConfig struct {
	// Seed drives all placement randomness. The same seed at both epochs
	// produces nested footprints (2023 extends 2021), matching the
	// longitudinal behaviour the 2021 paper observed.
	Seed int64
	// PeakMbpsPerUser is an ISP's total peak traffic per user; demand for a
	// hypergiant is users × share × this.
	PeakMbpsPerUser float64
	// ColocationPropensity is the probability that an ISP concentrates the
	// offnets it hosts in its primary interconnection facility (§3.1 gives
	// the operational reasons).
	ColocationPropensity float64
	// ResponsiveFraction is the probability a server answers pings; the
	// paper saw 249K/261K respond.
	ResponsiveFraction float64
	// AnycastFraction is the probability an address yields impossible
	// latencies (1.9K/261K in the paper).
	AnycastFraction float64
	// Mix is the traffic mix demand is computed against; the zero Mix means
	// the paper's published constants.
	Mix traffic.Mix
	// PNICapacityScale multiplies every private interconnect's capacity
	// (scenario knob; 0 means the neutral 1.0).
	PNICapacityScale float64
	// TransitCoverageScale scales how many transit providers host offnets
	// relative to the epoch's access coverage (0 means the default 0.8).
	TransitCoverageScale float64
	// Profiles overrides the hypergiants' deployment profiles; nil means the
	// compiled-in Profiles().
	Profiles map[traffic.HG]Profile
}

// DefaultDeployConfig returns the configuration used by the experiments.
func DefaultDeployConfig(seed int64) DeployConfig {
	return DeployConfig{
		Seed:                 seed,
		PeakMbpsPerUser:      0.3,
		ColocationPropensity: 0.86,
		ResponsiveFraction:   0.955,
		AnycastFraction:      0.007,
	}
}

func (c DeployConfig) sanitized() DeployConfig {
	if c.PeakMbpsPerUser <= 0 {
		c.PeakMbpsPerUser = 0.3
	}
	if c.ColocationPropensity <= 0 || c.ColocationPropensity > 1 {
		c.ColocationPropensity = 0.86
	}
	if c.ResponsiveFraction <= 0 || c.ResponsiveFraction > 1 {
		c.ResponsiveFraction = 0.955
	}
	if c.AnycastFraction < 0 || c.AnycastFraction >= 1 {
		c.AnycastFraction = 0.007
	}
	c.Mix = c.Mix.Sanitized()
	if c.PNICapacityScale <= 0 {
		c.PNICapacityScale = 1.0
	}
	if c.TransitCoverageScale <= 0 || c.TransitCoverageScale > 1 {
		c.TransitCoverageScale = 0.8
	}
	if c.Profiles == nil {
		c.Profiles = Profiles()
	}
	return c
}

// Deploy places all four hypergiants' offnets into the world at the given
// epoch and wires up interconnection. It mutates the world (content ASes,
// IXP memberships, host address allocations), so deploy each epoch into a
// freshly generated world.
func Deploy(w *inet.World, epoch Epoch, cfg DeployConfig) (*Deployment, error) {
	cfg = cfg.sanitized()
	if epoch != Epoch2021 && epoch != Epoch2023 {
		return nil, fmt.Errorf("hypergiant: unknown epoch %d", epoch)
	}
	d := &Deployment{
		Epoch:     epoch,
		World:     w,
		ContentAS: make(map[traffic.HG]inet.ASN),
	}
	profiles := cfg.Profiles

	// Onnet content ASes, present at the biggest metros, members of the
	// larger exchanges.
	ixps := w.IXPList()
	sort.Slice(ixps, func(i, j int) bool { return ixps[i].CapacityGbps > ixps[j].CapacityGbps })
	for _, hg := range traffic.All {
		as, err := w.AddContentAS("hg-"+hg.String(), geo.Metros[:12], 32)
		if err != nil {
			return nil, fmt.Errorf("hypergiant: %s onnet: %w", hg, err)
		}
		d.ContentAS[hg] = as
		// Hypergiants are present at essentially every significant exchange
		// (Google peers at ~190 IXPs); join them all.
		for _, x := range ixps {
			if err := w.JoinIXP(as, x.ID); err != nil {
				return nil, fmt.Errorf("hypergiant: %s join %s: %w", hg, x.Name, err)
			}
		}
	}

	access := w.AccessISPs()
	// Stable per-ISP hosting propensity shared across hypergiants: ISPs good
	// at hosting one hypergiant are good at hosting others, producing the
	// heavy multi-hypergiant overlap of §3.1.
	propensity := make(map[inet.ASN]float64, len(access))
	for _, isp := range access {
		r := rngutil.New(cfg.Seed ^ int64(isp.ASN)*0x9e3779b9)
		propensity[isp.ASN] = math.Exp(r.NormFloat64() * 0.8)
	}

	// Per-ISP colocation policy, shared across hypergiants and epochs.
	primary := make(map[inet.ASN]inet.FacilityID, len(access))
	colocates := make(map[inet.ASN]bool, len(access))
	for _, isp := range access {
		r := rngutil.New(cfg.Seed ^ 0x5bf03635 ^ int64(isp.ASN)<<1)
		primary[isp.ASN] = primaryFacility(w, isp, r)
		colocates[isp.ASN] = rngutil.Bernoulli(r, cfg.ColocationPropensity)
	}

	for _, hg := range traffic.All {
		prof := profiles[hg]
		hosts := selectHosts(access, propensity, prof, epoch, cfg.Seed)
		for _, isp := range hosts {
			if err := deployInISP(d, prof, isp, isp.Users, primary[isp.ASN], colocates[isp.ASN], cfg); err != nil {
				return nil, err
			}
		}
	}

	// Transit-hosted offnets: hypergiants also place caches in transit
	// providers to serve "users downstream from a transit provider"
	// (§3.1). Providers are ranked by downstream population; coverage
	// scales with the access-network coverage of the epoch.
	var transits []*inet.ISP
	for _, isp := range w.ISPList() {
		if isp.Tier == inet.TierTransit && len(isp.Facilities) > 0 {
			transits = append(transits, isp)
		}
	}
	sort.Slice(transits, func(i, j int) bool {
		di, dj := w.DownstreamUsers(transits[i].ASN), w.DownstreamUsers(transits[j].ASN)
		if di != dj {
			return di > dj
		}
		return transits[i].ASN < transits[j].ASN
	})
	for _, hg := range traffic.All {
		prof := profiles[hg]
		n := int(math.Round(prof.Coverage[epoch] * cfg.TransitCoverageScale * float64(len(transits))))
		if n > len(transits) {
			n = len(transits)
		}
		for _, isp := range transits[:n] {
			down := w.DownstreamUsers(isp.ASN)
			if down <= 0 {
				continue
			}
			// Transit POPs host the offnets at their first facility; the
			// colocation logic reuses the access-network machinery.
			if err := deployInISP(d, prof, isp, down*0.5, isp.Facilities[0], true, cfg); err != nil {
				return nil, err
			}
		}
	}
	d.index()
	buildPeerings(d, cfg)
	return d, nil
}

// selectHosts ranks access ISPs by demand-weighted propensity and takes the
// epoch's coverage share. Because the score is epoch-independent, the 2023
// host set is a superset of 2021's, matching observed growth dynamics.
func selectHosts(access []*inet.ISP, propensity map[inet.ASN]float64, prof Profile, epoch Epoch, seed int64) []*inet.ISP {
	type scored struct {
		isp   *inet.ISP
		score float64
	}
	scoredISPs := make([]scored, 0, len(access))
	for _, isp := range access {
		r := rngutil.New(seed ^ int64(isp.ASN)<<3 ^ int64(prof.HG)*0x2545f491)
		// Per-(HG,ISP) noise on top of the shared propensity.
		noise := math.Exp(r.NormFloat64() * 0.6)
		scoredISPs = append(scoredISPs, scored{isp, isp.Users * propensity[isp.ASN] * noise})
	}
	sort.Slice(scoredISPs, func(i, j int) bool {
		if scoredISPs[i].score != scoredISPs[j].score {
			return scoredISPs[i].score > scoredISPs[j].score
		}
		return scoredISPs[i].isp.ASN < scoredISPs[j].isp.ASN
	})
	n := int(math.Round(prof.Coverage[epoch] * float64(len(access))))
	if n > len(scoredISPs) {
		n = len(scoredISPs)
	}
	out := make([]*inet.ISP, 0, n)
	for _, s := range scoredISPs[:n] {
		out = append(out, s.isp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// primaryFacility picks the ISP's main interconnection facility: one in a
// metro where the ISP is an IXP member (smaller ISPs "interconnect with
// other networks in only a single location and may situate offnets nearby"),
// falling back to the first facility.
func primaryFacility(w *inet.World, isp *inet.ISP, r interface{ Intn(int) int }) inet.FacilityID {
	fs := w.FacilitiesOf(isp.ASN)
	if len(fs) == 0 {
		return 0
	}
	for _, id := range isp.IXPs {
		x, ok := w.IXPs[id]
		if !ok {
			continue
		}
		for _, f := range fs {
			if f.Metro.Code == x.Metro.Code {
				return f.ID
			}
		}
	}
	return fs[r.Intn(len(fs))].ID
}

// deployInISP creates the hypergiant's servers inside one network.
// demandUsers is the population the deployment serves: the ISP's own users
// for access networks, the downstream customer base for transit providers.
func deployInISP(d *Deployment, prof Profile, isp *inet.ISP, demandUsers float64, primary inet.FacilityID, colocate bool, cfg DeployConfig) error {
	w := d.World
	r := rngutil.New(cfg.Seed ^ int64(isp.ASN)*31 ^ int64(prof.HG)*0x9e3779b9 ^ int64(d.Epoch))

	demandGbps := demandUsers * cfg.Mix.Share(prof.HG) * cfg.PeakMbpsPerUser / 1000
	nServers := int(math.Ceil(demandGbps / prof.ServerGbps))
	if nServers < 1 {
		nServers = 1
	}
	if nServers > prof.MaxServersPerISP {
		nServers = prof.MaxServersPerISP
	}

	// Sites: most deployments are single-site (§4.1); multi-metro ISPs get
	// extra sites with a hypergiant-specific probability.
	fs := w.FacilitiesOf(isp.ASN)
	if len(fs) == 0 {
		return fmt.Errorf("hypergiant: ISP %s has no facilities", isp.Name)
	}
	extraSiteP := map[traffic.HG]float64{
		traffic.Google:  0.38,
		traffic.Netflix: 0.10,
		traffic.Meta:    0.28,
		traffic.Akamai:  0.40,
	}[prof.HG]
	maxSites := 1
	if len(fs) > 1 && nServers > 1 {
		for s := 1; s < len(fs) && s < 4; s++ {
			if rngutil.Bernoulli(r, extraSiteP) {
				maxSites++
			}
		}
	}
	if maxSites > nServers {
		maxSites = nServers
	}

	// Facility per site. Site 0 follows the ISP's colocation policy; legacy
	// deployments (probability LegacySpread) land in a random facility
	// instead, recreating Akamai's partially colocated signature.
	siteFacility := make([]*inet.Facility, 0, maxSites)
	used := make(map[inet.FacilityID]bool)
	for s := 0; s < maxSites; s++ {
		var f *inet.Facility
		legacy := rngutil.Bernoulli(r, prof.LegacySpread)
		if s == 0 && colocate && !legacy {
			f = w.Facilities[primary]
		}
		if f == nil {
			// Random facility, preferring one not already used by this
			// deployment so extra sites are really distinct.
			perm := rngutil.SampleWithoutReplacement(r, len(fs), len(fs))
			for _, j := range perm {
				if !used[fs[j].ID] {
					f = fs[j]
					break
				}
			}
			if f == nil {
				f = fs[perm[0]]
			}
		}
		used[f.ID] = true
		siteFacility = append(siteFacility, f)
	}

	for i := 0; i < nServers; i++ {
		f := siteFacility[i%len(siteFacility)]
		addr, err := w.AllocHostIn(isp.ASN)
		if err != nil {
			// ISP space exhausted: deploy what fits.
			break
		}
		siteTag := fmt.Sprintf("%s%d", f.Metro.Code, 1+int(f.ID)%89)
		// Hypergiant gear concentrates in a small cage area rather than
		// spreading over the whole floor; sharing a rack across hypergiants
		// is "super common" per the paper's operator anecdote.
		cage := f.Racks
		if cage > 6 {
			cage = 6
		}
		s := &Server{
			Addr:         addr,
			HG:           prof.HG,
			ISP:          isp.ASN,
			Facility:     f.ID,
			Rack:         r.Intn(cage),
			SiteTag:      siteTag,
			Cert:         offnetCert(prof.HG, d.Epoch, siteTag, i, r),
			CapacityGbps: prof.ServerGbps,
			Responsive:   rngutil.Bernoulli(r, cfg.ResponsiveFraction),
			Anycast:      rngutil.Bernoulli(r, cfg.AnycastFraction),
		}
		d.Servers = append(d.Servers, s)
	}
	return nil
}

// buildPeerings wires hypergiant↔ISP interconnection: PNIs for the biggest
// demands, IXP peerings where both sides share a fabric, nothing for roughly
// half the offnet hosts (§4.2.1 finds no peering evidence for 48.4% of ISPs
// with Google offnets).
func buildPeerings(d *Deployment, cfg DeployConfig) {
	w := d.World
	for _, hg := range traffic.All {
		hgAS := d.ContentAS[hg]
		hosts := d.HostISPs(hg)
		// Rank hosts by user population: the biggest eyeballs are the ones
		// hypergiants bother to interconnect with directly.
		ranked := append([]inet.ASN(nil), hosts...)
		sort.Slice(ranked, func(i, j int) bool {
			ui, uj := w.ISPs[ranked[i]].Users, w.ISPs[ranked[j]].Users
			if ui != uj {
				return ui > uj
			}
			return ranked[i] < ranked[j]
		})
		rank := make(map[inet.ASN]int, len(ranked))
		for i, as := range ranked {
			rank[as] = i
		}
		for _, as := range hosts {
			isp := w.ISPs[as]
			r := rngutil.New(cfg.Seed ^ int64(as)*131 ^ int64(hg)*0x85ebca6b)
			users := isp.Users
			if isp.Tier == inet.TierTransit {
				users = w.DownstreamUsers(as) * 0.5
			}
			demandGbps := users * cfg.Mix.Share(hg) * cfg.PeakMbpsPerUser / 1000

			// Peering probability decays with size rank; calibrated so
			// roughly half of hosting ISPs have some peering (§4.2.1 finds
			// peering or possible peering for 51.5% of Google hosts).
			frac := 1 - float64(rank[as])/float64(len(ranked))
			p := 0.28 + 0.70*frac*frac
			if !rngutil.Bernoulli(r, p) {
				continue
			}

			shared := w.SharedIXPs(hgAS, as)
			// Dedicated interconnects go to the top of the demand ranking;
			// the rest peer over shared fabrics where possible. Calibrated
			// toward §4.2.1: 62.2% of peers use an IXP somewhere, 42.5%
			// only appear connected through an IXP.
			wantPNI := frac > 0.55 || len(shared) == 0
			wantIXP := len(shared) > 0 && (!wantPNI || rngutil.Bernoulli(r, 0.35))
			if !wantPNI && !wantIXP {
				wantIXP = len(shared) > 0
				wantPNI = !wantIXP
			}
			// Interconnects are sized against the interdomain share of
			// demand — offnets absorb the cacheable part, so links carry
			// the steady-state remainder plus whatever spills.
			interdomain := demandGbps * cfg.Mix.SteadyInterdomainShare(hg)
			if wantPNI {
				d.Peerings = append(d.Peerings, Peering{
					HG: hg, ISP: as, Kind: PeerPNI,
					CapacityGbps: pniCapacity(r, interdomain) * cfg.PNICapacityScale,
				})
			}
			if wantIXP {
				x := shared[r.Intn(len(shared))]
				d.Peerings = append(d.Peerings, Peering{
					HG: hg, ISP: as, Kind: PeerIXP, IXP: x,
					CapacityGbps: interdomain * rngutil.Jitter(r, 0.8, 0.4),
				})
			}
		}

		// Non-hosting networks also peer: §4.2.1 finds 9207 ISPs peering
		// with Google, far more than the 4697 hosting offnets. Transit
		// providers peer heavily (they aggregate hypergiant traffic for
		// their customers); non-hosting access ISPs peer opportunistically
		// over shared fabrics.
		hostSet := make(map[inet.ASN]bool, len(hosts))
		for _, as := range hosts {
			hostSet[as] = true
		}
		for _, isp := range w.ISPList() {
			if hostSet[isp.ASN] || isp.Tier == inet.TierContent || isp.Tier == inet.TierBackbone {
				continue
			}
			r := rngutil.New(cfg.Seed ^ int64(isp.ASN)*977 ^ int64(hg)*0xc2b2ae35)
			shared := w.SharedIXPs(hgAS, isp.ASN)
			switch isp.Tier {
			case inet.TierTransit:
				if !rngutil.Bernoulli(r, 0.75) {
					continue
				}
				demand := isp.Users*cfg.Mix.Share(hg)*cfg.PeakMbpsPerUser/1000*cfg.Mix.SteadyInterdomainShare(hg) + 40
				if rngutil.Bernoulli(r, 0.6) {
					d.Peerings = append(d.Peerings, Peering{
						HG: hg, ISP: isp.ASN, Kind: PeerPNI,
						CapacityGbps: pniCapacity(r, demand) * cfg.PNICapacityScale,
					})
				}
				if len(shared) > 0 && rngutil.Bernoulli(r, 0.7) {
					d.Peerings = append(d.Peerings, Peering{
						HG: hg, ISP: isp.ASN, Kind: PeerIXP, IXP: shared[r.Intn(len(shared))],
						CapacityGbps: demand * rngutil.Jitter(r, 0.7, 0.4),
					})
				}
			case inet.TierAccess:
				if len(shared) == 0 || !rngutil.Bernoulli(r, 0.30) {
					continue
				}
				demand := isp.Users * cfg.Mix.Share(hg) * cfg.PeakMbpsPerUser / 1000 * cfg.Mix.SteadyInterdomainShare(hg)
				d.Peerings = append(d.Peerings, Peering{
					HG: hg, ISP: isp.ASN, Kind: PeerIXP, IXP: shared[r.Intn(len(shared))],
					CapacityGbps: demand * rngutil.Jitter(r, 0.7, 0.4),
				})
			}
		}
	}
}

// pniCapacity sizes a private interconnect relative to peak demand. §4.2.2:
// peak demand exceeded Google PNI capacity "by an average of at least 13%",
// and "10% of Meta PNI experienced periods in which traffic demand was twice
// the capacity". The mixture below reproduces both: most PNIs hover around
// demand, a tail is severely undersized.
func pniCapacity(r interface{ Float64() float64 }, demandGbps float64) float64 {
	u := r.Float64()
	switch {
	case u < 0.10:
		// Severely constrained: demand reaches 2× capacity.
		return demandGbps * (0.42 + 0.08*r.Float64())
	case u < 0.55:
		// Under-provisioned: capacity 70–100% of peak demand.
		return demandGbps * (0.70 + 0.30*r.Float64())
	default:
		// Comfortable: up to 40% headroom.
		return demandGbps * (1.0 + 0.40*r.Float64())
	}
}
