package hypergiant

import (
	"offnetrisk/internal/scenario"
	"offnetrisk/internal/traffic"
)

// ProfilesFromScenario builds the hypergiants' deployment profiles from a
// resolved spec. The spec overrides the world-shaped fields (coverage,
// server sizing, legacy spread); certificate conventions stay compiled in —
// they encode the measurement methodology, not the world.
func ProfilesFromScenario(sp *scenario.Spec) map[traffic.HG]Profile {
	profiles := Profiles()
	for _, hg := range traffic.All {
		p := sp.Profile(hg)
		prof := profiles[hg]
		prof.Coverage = map[Epoch]float64{
			Epoch2021: p.Coverage2021,
			Epoch2023: p.Coverage2023,
		}
		prof.ServerGbps = p.ServerGbps
		prof.MaxServersPerISP = p.MaxServersPerISP
		prof.LegacySpread = p.LegacySpread
		profiles[hg] = prof
	}
	return profiles
}

// DeployConfigFromScenario builds the deployment configuration a resolved
// spec declares. With the default scenario it equals
// DefaultDeployConfig(seed) after sanitizing, so defaulted pipelines are
// byte-identical to the constant-based path.
func DeployConfigFromScenario(sp *scenario.Spec, seed int64) DeployConfig {
	return DeployConfig{
		Seed:                 seed,
		PeakMbpsPerUser:      sp.Deployment.PeakMbpsPerUser,
		ColocationPropensity: sp.Deployment.ColocationPropensity,
		ResponsiveFraction:   sp.Deployment.ResponsiveFraction,
		AnycastFraction:      sp.Deployment.AnycastFraction,
		Mix:                  sp.Mix(),
		PNICapacityScale:     sp.Deployment.PNICapacityScale,
		TransitCoverageScale: sp.Deployment.TransitCoverageScale,
		Profiles:             ProfilesFromScenario(sp),
	}
}
