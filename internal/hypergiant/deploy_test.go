package hypergiant

import (
	"testing"

	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

func deployTiny(t *testing.T, epoch Epoch, seed int64) *Deployment {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := Deploy(w, epoch, DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeployBasics(t *testing.T) {
	d := deployTiny(t, Epoch2023, 1)
	if len(d.Servers) == 0 {
		t.Fatal("no servers deployed")
	}
	var accessServers, transitServers int
	for _, s := range d.Servers {
		isp, ok := d.World.ISPs[s.ISP]
		if !ok {
			t.Fatalf("server in unknown AS %d", s.ISP)
		}
		switch isp.Tier {
		case inet.TierAccess:
			accessServers++
		case inet.TierTransit:
			transitServers++
		default:
			t.Fatalf("server in %s AS %d", isp.Tier, s.ISP)
		}
		owner, ok := d.World.OwnerOf(s.Addr)
		if !ok || owner != s.ISP {
			t.Fatalf("server addr %s not owned by hosting ISP (owner=%d isp=%d)", s.Addr, owner, s.ISP)
		}
		f, ok := d.World.Facilities[s.Facility]
		if !ok {
			t.Fatalf("server in unknown facility %d", s.Facility)
		}
		if f.Owner != s.ISP {
			t.Fatalf("server facility %s not owned by hosting ISP", f.Name())
		}
		if s.Rack < 0 || s.Rack >= f.Racks {
			t.Fatalf("rack %d out of range [0,%d)", s.Rack, f.Racks)
		}
		if s.CapacityGbps <= 0 {
			t.Fatal("server without capacity")
		}
		if s.SiteTag == "" {
			t.Fatal("server without site tag")
		}
	}
}

func TestDeployIncludesTransitOffnets(t *testing.T) {
	// §3.1: offnets "can also serve users downstream from a transit
	// provider" — deployments must include transit-hosted caches.
	d := deployTiny(t, Epoch2023, 1)
	found := false
	for _, s := range d.Servers {
		if d.World.ISPs[s.ISP].Tier == inet.TierTransit {
			found = true
			break
		}
	}
	if !found {
		t.Error("no transit-hosted offnets deployed")
	}
}

func TestServerAddressesUnique(t *testing.T) {
	d := deployTiny(t, Epoch2023, 2)
	seen := make(map[string]bool)
	for _, s := range d.Servers {
		k := s.Addr.String()
		if seen[k] {
			t.Fatalf("duplicate server address %s", k)
		}
		seen[k] = true
	}
}

func TestDeployDeterministic(t *testing.T) {
	a := deployTiny(t, Epoch2023, 5)
	b := deployTiny(t, Epoch2023, 5)
	if len(a.Servers) != len(b.Servers) {
		t.Fatalf("server counts differ: %d vs %d", len(a.Servers), len(b.Servers))
	}
	for i := range a.Servers {
		if a.Servers[i].Addr != b.Servers[i].Addr || a.Servers[i].HG != b.Servers[i].HG ||
			a.Servers[i].Facility != b.Servers[i].Facility {
			t.Fatalf("server %d differs between identical runs", i)
		}
	}
	if len(a.Peerings) != len(b.Peerings) {
		t.Fatalf("peering counts differ: %d vs %d", len(a.Peerings), len(b.Peerings))
	}
}

func TestFootprintGrowthMatchesTable1(t *testing.T) {
	// Table 1: Google +23.2%, Netflix +37.4%, Meta +16.9%, Akamai +0.0%.
	// The synthetic world must reproduce ordering and growth within
	// tolerance, and 2023 must extend 2021.
	d21 := deployTiny(t, Epoch2021, 3)
	d23 := deployTiny(t, Epoch2023, 3)

	wantGrowth := map[traffic.HG]float64{
		traffic.Google:  1.232,
		traffic.Netflix: 1.374,
		traffic.Meta:    1.169,
		traffic.Akamai:  1.0,
	}
	for _, hg := range traffic.All {
		n21 := len(d21.HostISPs(hg))
		n23 := len(d23.HostISPs(hg))
		if n21 == 0 {
			t.Fatalf("%s: no hosts in 2021", hg)
		}
		growth := float64(n23) / float64(n21)
		if growth < wantGrowth[hg]-0.12 || growth > wantGrowth[hg]+0.12 {
			t.Errorf("%s growth = %.3f, want ≈%.3f (n21=%d n23=%d)", hg, growth, wantGrowth[hg], n21, n23)
		}
	}
	// Footprint ordering in 2023: Google > Netflix, Meta > Akamai.
	g, n, m, a := len(d23.HostISPs(traffic.Google)), len(d23.HostISPs(traffic.Netflix)),
		len(d23.HostISPs(traffic.Meta)), len(d23.HostISPs(traffic.Akamai))
	if !(g > n && g > m && n > a && m > a) {
		t.Errorf("footprint order violated: G=%d N=%d M=%d A=%d", g, n, m, a)
	}
}

func TestEpochsNested(t *testing.T) {
	d21 := deployTiny(t, Epoch2021, 3)
	d23 := deployTiny(t, Epoch2023, 3)
	for _, hg := range traffic.All {
		hosts23 := make(map[inet.ASN]bool)
		for _, as := range d23.HostISPs(hg) {
			hosts23[as] = true
		}
		for _, as := range d21.HostISPs(hg) {
			if !hosts23[as] {
				t.Fatalf("%s: 2021 host AS%d missing in 2023 (footprints must nest)", hg, as)
			}
		}
	}
}

func TestMultiHypergiantOverlap(t *testing.T) {
	// §3.1: "Of the 5516 ISPs that host an offnet for at least one ... 3382
	// host offnets for at least two, 1880 for at least three, and 505 host
	// offnets for all four" — i.e. ≥2 ≈ 61%, ≥3 ≈ 34%, =4 ≈ 9% of hosts.
	d := deployTiny(t, Epoch2023, 1)
	counts := make([]int, 5)
	for _, as := range d.HostingISPs() {
		counts[len(d.HGsIn(as))]++
	}
	total := 0
	for _, c := range counts[1:] {
		total += c
	}
	atLeast := func(k int) float64 {
		n := 0
		for i := k; i <= 4; i++ {
			n += counts[i]
		}
		return float64(n) / float64(total)
	}
	if f := atLeast(2); f < 0.40 || f > 0.85 {
		t.Errorf("≥2 hypergiants fraction = %.2f, want ≈0.61", f)
	}
	if f := atLeast(3); f < 0.15 || f > 0.60 {
		t.Errorf("≥3 hypergiants fraction = %.2f, want ≈0.34", f)
	}
	if f := atLeast(4); f < 0.02 || f > 0.35 {
		t.Errorf("=4 hypergiants fraction = %.2f, want ≈0.09", f)
	}
}

func TestCertificateConventions(t *testing.T) {
	d21 := deployTiny(t, Epoch2021, 4)
	d23 := deployTiny(t, Epoch2023, 4)

	find := func(d *Deployment, hg traffic.HG) *Server {
		for _, s := range d.Servers {
			if s.HG == hg {
				return s
			}
		}
		t.Fatalf("no %s server", hg)
		return nil
	}

	// Google 2021 carries the Organization entry; 2023 does not.
	if g := find(d21, traffic.Google); g.Cert.SubjectOrg != "Google LLC" {
		t.Errorf("2021 Google org = %q", g.Cert.SubjectOrg)
	}
	g23 := find(d23, traffic.Google)
	if g23.Cert.SubjectOrg != "" {
		t.Errorf("2023 Google org should be removed, got %q", g23.Cert.SubjectOrg)
	}
	if g23.Cert.SubjectCN != "*.googlevideo.com" {
		t.Errorf("2023 Google CN = %q", g23.Cert.SubjectCN)
	}

	// Meta 2021 uses onnet names; 2023 uses site-specific fna names.
	if m := find(d21, traffic.Meta); m.Cert.SubjectCN != "*.fbcdn.net" {
		t.Errorf("2021 Meta CN = %q", m.Cert.SubjectCN)
	}
	m23 := find(d23, traffic.Meta)
	if m23.Cert.SubjectCN == "*.fbcdn.net" {
		t.Error("2023 Meta should use site-specific names")
	}
	if !m23.Cert.AnyNameMatches([]string{"*.fbcdn.net"}) {
		t.Errorf("2023 Meta cert %q must still match *.fbcdn.net pattern", m23.Cert.SubjectCN)
	}

	// Netflix and Akamai are stable across epochs.
	if n := find(d23, traffic.Netflix); n.Cert.SubjectOrg != "Netflix, Inc." {
		t.Errorf("Netflix org = %q", n.Cert.SubjectOrg)
	}
	if a := find(d23, traffic.Akamai); a.Cert.SubjectCN != "a248.e.akamai.net" {
		t.Errorf("Akamai CN = %q", a.Cert.SubjectCN)
	}
}

func TestColocationGroundTruth(t *testing.T) {
	// Most multi-hypergiant ISPs must colocate at least some offnets
	// (§3.2: 81–95%), and Akamai should show the most partial colocation.
	d := deployTiny(t, Epoch2023, 1)
	w := d.World

	fullyColoc := 0
	someColoc := 0
	multiHG := 0
	for _, as := range d.HostingISPs() {
		if len(d.HGsIn(as)) < 2 {
			continue
		}
		multiHG++
		// Facility → set of HGs.
		facHGs := make(map[inet.FacilityID]map[traffic.HG]bool)
		for _, s := range d.ServersIn(as) {
			if facHGs[s.Facility] == nil {
				facHGs[s.Facility] = make(map[traffic.HG]bool)
			}
			facHGs[s.Facility][s.HG] = true
		}
		colocServers, totalServers := 0, 0
		for _, s := range d.ServersIn(as) {
			totalServers++
			if len(facHGs[s.Facility]) >= 2 {
				colocServers++
			}
		}
		if colocServers > 0 {
			someColoc++
		}
		if colocServers == totalServers {
			fullyColoc++
		}
	}
	if multiHG == 0 {
		t.Fatal("no multi-hypergiant ISPs")
	}
	if f := float64(someColoc) / float64(multiHG); f < 0.70 {
		t.Errorf("ISPs with some colocation = %.2f, want ≥0.70 (paper: 81–95%%)", f)
	}
	_ = w
}

func TestPeeringsSane(t *testing.T) {
	d := deployTiny(t, Epoch2023, 1)
	if len(d.Peerings) == 0 {
		t.Fatal("no peerings built")
	}
	for _, p := range d.Peerings {
		if p.CapacityGbps <= 0 {
			t.Errorf("peering %s↔AS%d has no capacity", p.HG, p.ISP)
		}
		if p.Kind == PeerIXP {
			hgAS := d.ContentAS[p.HG]
			if !d.World.MemberOf(hgAS, p.IXP) || !d.World.MemberOf(p.ISP, p.IXP) {
				t.Errorf("IXP peering %s↔AS%d at IXP %d without membership", p.HG, p.ISP, p.IXP)
			}
		}
		if p.Kind == PeerNone {
			t.Error("PeerNone should never be materialized")
		}
	}
	// Roughly half the Google hosts should have no peering (paper: 48.4%).
	hosts := d.HostISPs(traffic.Google)
	unpeered := 0
	for _, as := range hosts {
		if len(d.PeeringsOf(traffic.Google, as)) == 0 {
			unpeered++
		}
	}
	f := float64(unpeered) / float64(len(hosts))
	if f < 0.25 || f > 0.70 {
		t.Errorf("unpeered Google hosts = %.2f, want ≈0.48", f)
	}
}

func TestPNICapacityMixture(t *testing.T) {
	// §4.2.2: a meaningful fraction of PNIs must be under-provisioned, and
	// ≈10% severely (demand ≈ 2× capacity).
	d := deployTiny(t, Epoch2023, 1)
	cfg := DefaultDeployConfig(1)
	var under, severe, total int
	for _, p := range d.Peerings {
		if p.Kind != PeerPNI {
			continue
		}
		isp := d.World.ISPs[p.ISP]
		// PNIs carry the interdomain share of demand (offnets hold the
		// cacheable part); §4.2.2's deficits are relative to that load.
		demand := isp.Users * p.HG.Share() * cfg.PeakMbpsPerUser / 1000 * p.HG.SteadyInterdomainShare()
		if isp.Tier != inet.TierAccess {
			continue
		}
		total++
		if demand > p.CapacityGbps {
			under++
		}
		if demand >= 1.8*p.CapacityGbps {
			severe++
		}
	}
	if total == 0 {
		t.Fatal("no PNIs")
	}
	if f := float64(under) / float64(total); f < 0.25 || f > 0.75 {
		t.Errorf("under-provisioned PNI fraction = %.2f, want ≈0.4–0.5", f)
	}
	if f := float64(severe) / float64(total); f < 0.02 || f > 0.25 {
		t.Errorf("severely constrained PNI fraction = %.2f, want ≈0.10", f)
	}
}

func TestDeployRejectsBadEpoch(t *testing.T) {
	w := inet.Generate(inet.TinyConfig(1))
	if _, err := Deploy(w, Epoch(1999), DefaultDeployConfig(1)); err == nil {
		t.Error("unknown epoch should error")
	}
}

func TestHelpers(t *testing.T) {
	d := deployTiny(t, Epoch2023, 1)
	as := d.HostingISPs()[0]
	servers := d.ServersIn(as)
	if len(servers) == 0 {
		t.Fatal("hosting ISP without servers")
	}
	hg := servers[0].HG
	if len(d.ServersOf(hg, as)) == 0 {
		t.Error("ServersOf empty for known deployment")
	}
	if got := PeerPNI.String(); got != "pni" {
		t.Errorf("PeerPNI = %q", got)
	}
	if got := PeerIXP.String(); got != "ixp" {
		t.Errorf("PeerIXP = %q", got)
	}
	if got := PeerNone.String(); got != "none" {
		t.Errorf("PeerNone = %q", got)
	}
}

func TestHostCountDistributionTrend(t *testing.T) {
	// §3.1: multi-hypergiant hosting increases between epochs (2840→3382
	// ISPs with ≥2, 1690→1880 with ≥3, 430→505 with all four).
	d21 := deployTiny(t, Epoch2021, 1)
	d23 := deployTiny(t, Epoch2023, 1)
	c21 := d21.HostCountDistribution()
	c23 := d23.HostCountDistribution()
	atLeast := func(c [5]int, k int) int {
		n := 0
		for i := k; i <= 4; i++ {
			n += c[i]
		}
		return n
	}
	for k := 1; k <= 3; k++ {
		if atLeast(c23, k) < atLeast(c21, k) {
			t.Errorf("≥%d hypergiant hosting shrank between epochs: %d → %d",
				k, atLeast(c21, k), atLeast(c23, k))
		}
	}
	if atLeast(c23, 2) <= atLeast(c21, 2) {
		t.Errorf("multi-hypergiant hosting should grow: %d → %d", atLeast(c21, 2), atLeast(c23, 2))
	}
}
