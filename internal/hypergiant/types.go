// Package hypergiant layers the four hypergiants' offnet deployments onto a
// synthetic Internet: which ISPs host offnets at which epoch (§2.2), where
// inside each ISP the servers physically sit — facility and rack (§3.1–3.2),
// what TLS certificates they present (§2.2, including the 2021→2023 naming
// evasions), how big the boxes are (§4.1), and how each hypergiant
// interconnects with each ISP — PNI, IXP, or nothing (§4.2).
package hypergiant

import (
	"sort"

	"offnetrisk/internal/cert"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/netaddr"
	"offnetrisk/internal/traffic"
)

// Epoch selects a deployment snapshot; Table 1 compares the two.
type Epoch int

// The two measurement epochs.
const (
	Epoch2021 Epoch = 2021
	Epoch2023 Epoch = 2023
)

// Server is one offnet server: a hypergiant-owned box hosted at an address
// inside an ISP's announced space, racked in one of the ISP's facilities.
type Server struct {
	Addr     netaddr.Addr
	HG       traffic.HG
	ISP      inet.ASN
	Facility inet.FacilityID
	// Rack is the rack position within the facility; offnets of different
	// hypergiants sharing a rack is "super common" per the paper's operator
	// anecdote.
	Rack int
	// SiteTag names the deployment site the way Meta's certificates do
	// (e.g. "han14"): metro code plus site index within the ISP.
	SiteTag string
	// Cert is the TLS certificate the server presents on :443.
	Cert cert.Certificate
	// CapacityGbps is the server's peak serving capacity.
	CapacityGbps float64
	// Responsive is false for the small fraction of servers that drop
	// measurement probes (the paper discards 12K unresponsive of 261K).
	Responsive bool
	// Anycast marks addresses that are actually served from multiple
	// destinations, producing physically impossible latency combinations;
	// the paper discards 1.9K such addresses (Appendix A).
	Anycast bool
}

// PeeringKind distinguishes dedicated from shared interconnection.
type PeeringKind int

// Peering kinds. §4.2: "Outside of IXPs, peering uses private network
// interconnects."
const (
	PeerNone PeeringKind = iota
	PeerPNI              // dedicated private interconnect
	PeerIXP              // shared exchange fabric
)

// String implements fmt.Stringer.
func (k PeeringKind) String() string {
	switch k {
	case PeerPNI:
		return "pni"
	case PeerIXP:
		return "ixp"
	default:
		return "none"
	}
}

// Peering is one interconnection between a hypergiant and an ISP. A pair may
// have several (multiple PNIs, several exchanges).
type Peering struct {
	HG   traffic.HG
	ISP  inet.ASN
	Kind PeeringKind
	// IXP is set for PeerIXP.
	IXP inet.IXPID
	// CapacityGbps is the provisioned capacity of this interconnect. §4.2.2:
	// PNIs "frequently lack sufficient bandwidth even under normal
	// conditions".
	CapacityGbps float64
}

// Deployment is a full snapshot of all four hypergiants' offnets at an epoch.
type Deployment struct {
	Epoch   Epoch
	World   *inet.World
	Servers []*Server
	// ContentAS maps each hypergiant to its onnet AS in the world.
	ContentAS map[traffic.HG]inet.ASN
	// Peerings lists hypergiant↔ISP interconnections.
	Peerings []Peering

	byISP   map[inet.ASN][]*Server
	byHGISP map[hgISP][]*Server
}

type hgISP struct {
	hg  traffic.HG
	isp inet.ASN
}

func (d *Deployment) index() {
	d.byISP = make(map[inet.ASN][]*Server)
	d.byHGISP = make(map[hgISP][]*Server)
	for _, s := range d.Servers {
		d.byISP[s.ISP] = append(d.byISP[s.ISP], s)
		k := hgISP{s.HG, s.ISP}
		d.byHGISP[k] = append(d.byHGISP[k], s)
	}
}

// ServersIn returns all offnet servers hosted by the ISP.
func (d *Deployment) ServersIn(as inet.ASN) []*Server { return d.byISP[as] }

// ServersOf returns the hypergiant's servers hosted by the ISP.
func (d *Deployment) ServersOf(hg traffic.HG, as inet.ASN) []*Server {
	return d.byHGISP[hgISP{hg, as}]
}

// HostISPs returns the ASNs hosting at least one offnet of the hypergiant,
// ascending. This is the ground truth Table 1's inference is validated
// against.
func (d *Deployment) HostISPs(hg traffic.HG) []inet.ASN {
	var out []inet.ASN
	for k := range d.byHGISP {
		if k.hg == hg {
			out = append(out, k.isp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HostingISPs returns every ASN hosting at least one offnet of any
// hypergiant, ascending.
func (d *Deployment) HostingISPs() []inet.ASN {
	out := make([]inet.ASN, 0, len(d.byISP))
	for as := range d.byISP {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HGsIn returns the distinct hypergiants hosted by the ISP, in canonical
// order.
func (d *Deployment) HGsIn(as inet.ASN) []traffic.HG {
	var present [traffic.NumHG]bool
	for _, s := range d.byISP[as] {
		present[s.HG] = true
	}
	var out []traffic.HG
	for _, hg := range traffic.All {
		if present[hg] {
			out = append(out, hg)
		}
	}
	return out
}

// PeeringsOf returns all interconnections between the hypergiant and ISP.
func (d *Deployment) PeeringsOf(hg traffic.HG, as inet.ASN) []Peering {
	var out []Peering
	for _, p := range d.Peerings {
		if p.HG == hg && p.ISP == as {
			out = append(out, p)
		}
	}
	return out
}

// HostCountDistribution returns, indexed by k, the number of ISPs hosting
// exactly k hypergiants (k = 0 unused). §3.1 tracks this distribution over
// time: "ISPs tended to host more hypergiants over time".
func (d *Deployment) HostCountDistribution() [5]int {
	var out [5]int
	for as := range d.byISP {
		k := len(d.HGsIn(as))
		if k >= 1 && k <= 4 {
			out[k]++
		}
	}
	return out
}

// Reindex rebuilds the internal lookup tables after external construction
// or modification of the Servers slice (e.g. counterfactual deployments).
func (d *Deployment) Reindex() { d.index() }
