// Package cli holds the flag surface shared by every command in cmd/: one
// registration point so -seed, -tiny, -large, -scenario, -v, -workers,
// -shards, -snapshot, -debug-addr, -events, -chaos and -chaos-seed are
// spelled, defaulted and documented identically everywhere,
// plus the common startup plumbing (logger, SIGINT-cancelled context, debug
// endpoints and event streams wired to that context).
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"offnetrisk"
	"offnetrisk/internal/chaos"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/scenario"
)

// Common is the flag set every command shares.
type Common struct {
	Seed          int64
	Tiny          bool
	Large         bool
	Scenario      string
	ListScenarios bool
	Verbose       bool
	Workers       int
	Shards        int
	Snapshot      string
	DebugAddr     string
	Events        string
	Trace         string
	Lineage       string
	Chaos         string
	ChaosSeed     int64
	Hours         int
	Schedule      string

	fs   *flag.FlagSet
	sink *obs.EventSink
}

// Register installs the shared flags on fs. Call before the command's own
// flags and before flag.Parse.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{fs: fs}
	fs.Int64Var(&c.Seed, "seed", 42, "world seed")
	fs.BoolVar(&c.Tiny, "tiny", false, "run the scenario at miniature test scale (alias for the tiny topology)")
	fs.BoolVar(&c.Large, "large", false, "run the scenario at the large (paper-sized) scale (alias for the large topology)")
	fs.StringVar(&c.Scenario, "scenario", "", "named scenario or spec-file path declaring the world (see -list-scenarios)")
	fs.BoolVar(&c.ListScenarios, "list-scenarios", false, "list the compiled-in scenarios and exit")
	fs.BoolVar(&c.Verbose, "v", false, "verbose (debug-level) logging")
	fs.IntVar(&c.Workers, "workers", 0, "parallel workers for experiment stages (0 = GOMAXPROCS)")
	fs.IntVar(&c.Shards, "shards", 0, "generation shards for sharded (e.g. huge) worlds; output-invariant (0 = builder default)")
	fs.StringVar(&c.Snapshot, "snapshot", "", "world snapshot file: generate+spill on first run, stream back afterwards (validated against the scenario)")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve /metrics, /debug/pprof, /debug/vars and /debug/obs on this address (e.g. localhost:6060)")
	fs.StringVar(&c.Events, "events", "", "stream span start/end and funnel snapshots as JSONL to this file")
	fs.StringVar(&c.Trace, "trace", "", "export the execution timeline as Perfetto-loadable trace-event JSON to this file")
	fs.StringVar(&c.Lineage, "lineage", "", "record per-decision provenance and write it as JSONL to this file (query with cmd/explain)")
	fs.StringVar(&c.Chaos, "chaos", "off", "fault-injection profile: off, light or heavy (default: the scenario's)")
	fs.Int64Var(&c.ChaosSeed, "chaos-seed", 7, "seed for the fault-injection streams (independent of -seed; default: the scenario's)")
	fs.IntVar(&c.Hours, "hours", 0, "replay the temporal engine over this many clock hours (0 = off; implied 24 by -schedule)")
	fs.StringVar(&c.Schedule, "schedule", "", "event-schedule file (demand steps, facility failures, capacity cuts, isolation) for the temporal replay")
	return c
}

// HandleScenarioList prints the scenario registry and reports true when
// -list-scenarios was requested; commands return immediately in that case.
func (c *Common) HandleScenarioList() bool {
	if !c.ListScenarios {
		return false
	}
	for _, row := range scenario.Describe() {
		fmt.Printf("%-24s %s\n", row[0], row[1])
	}
	return true
}

// Scale maps -tiny/-large onto the pipeline scale. The scale overrides the
// scenario's topology section, so any scenario can run at test scale.
func (c *Common) Scale() offnetrisk.Scale {
	switch {
	case c.Tiny:
		return offnetrisk.ScaleTiny
	case c.Large:
		return offnetrisk.ScaleLarge
	default:
		return offnetrisk.ScaleDefault
	}
}

// ScenarioSpec resolves -scenario/-tiny/-large to the run's scenario.
// Without -scenario, -tiny and -large are aliases for the registry's tiny
// and large scenarios; passing both at once is an error (previously one
// silently won).
func (c *Common) ScenarioSpec() (*scenario.Spec, error) {
	if c.Tiny && c.Large {
		return nil, errors.New("cli: -tiny and -large are mutually exclusive; pick one world size")
	}
	name := c.Scenario
	if name == "" {
		switch {
		case c.Tiny:
			name = "tiny"
		case c.Large:
			name = "large"
		default:
			name = scenario.DefaultName
		}
	}
	return scenario.Resolve(name)
}

// flagSet reports whether the named flag was explicitly passed.
func (c *Common) flagSet(name string) bool {
	if c.fs == nil {
		return false
	}
	set := false
	c.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// ChaosSettings resolves the run's fault-injection profile and seed:
// explicit -chaos/-chaos-seed flags win, unset flags fall back to the
// scenario's chaos section.
func (c *Common) ChaosSettings(sp *scenario.Spec) (profile string, seed int64) {
	profile, seed = c.Chaos, c.ChaosSeed
	if sp == nil {
		return profile, seed
	}
	if !c.flagSet("chaos") && sp.Chaos.Profile != "" {
		profile = sp.Chaos.Profile
	}
	if !c.flagSet("chaos-seed") {
		seed = sp.Chaos.Seed
	}
	return profile, seed
}

// WorldConfig resolves the raw world config for commands that generate a
// world directly instead of going through a Pipeline: the scenario's
// topology, overridden by an explicit -tiny/-large scale.
func (c *Common) WorldConfig() (inet.Config, error) {
	sp, err := c.ScenarioSpec()
	if err != nil {
		return inet.Config{}, err
	}
	var cfg inet.Config
	switch {
	case c.Tiny:
		cfg = inet.TinyConfig(c.Seed)
	case c.Large:
		cfg = inet.LargeConfig(c.Seed)
	default:
		cfg = inet.ConfigFromScenario(sp, c.Seed)
	}
	cfg.Shards = c.Shards
	cfg.GenWorkers = c.Workers
	return cfg, nil
}

// Logger sets up the command's structured logger at the -v-selected level.
func (c *Common) Logger(cmd string) *slog.Logger {
	return obs.SetupCLI(cmd, c.Verbose)
}

// Injector resolves -chaos/-chaos-seed to a fault injector (nil when off);
// the error reports an unknown profile name. Prefer InjectorFromSpec when a
// scenario is in play — it applies the scenario's chaos section.
func (c *Common) Injector() (*chaos.Injector, error) {
	prof, err := chaos.ParseProfile(c.Chaos)
	if err != nil {
		return nil, err
	}
	return chaos.New(prof, c.ChaosSeed), nil
}

// InjectorFromSpec resolves the chaos injector with the scenario's chaos
// section as the fallback for unset flags.
func (c *Common) InjectorFromSpec(sp *scenario.Spec) (*chaos.Injector, error) {
	profile, seed := c.ChaosSettings(sp)
	prof, err := chaos.ParseProfile(profile)
	if err != nil {
		return nil, err
	}
	return chaos.New(prof, seed), nil
}

// Pipeline builds the pipeline for the selected scenario, seed, scale,
// workers and chaos profile. The error reports a flag conflict, an
// unresolvable -scenario, or an invalid -chaos value.
func (c *Common) Pipeline() (*offnetrisk.Pipeline, error) {
	sp, err := c.ScenarioSpec()
	if err != nil {
		return nil, err
	}
	inj, err := c.InjectorFromSpec(sp)
	if err != nil {
		return nil, err
	}
	p := offnetrisk.NewPipelineFromSpec(sp, c.Seed)
	p.Scale = c.Scale()
	p.Workers = c.Workers
	p.Shards = c.Shards
	p.SnapshotPath = c.Snapshot
	p.Chaos = inj
	return p, nil
}

// Temporal resolves -hours/-schedule to the replay horizon and the parsed
// schedule. hours == 0 (and a nil schedule) means no temporal replay was
// requested; -schedule alone implies a 24-hour horizon. Parse and
// validation failures of the schedule file are returned as errors.
func (c *Common) Temporal() (hours int, sched *scenario.Schedule, err error) {
	if c.Hours < 0 {
		return 0, nil, fmt.Errorf("cli: -hours %d must be >= 0", c.Hours)
	}
	hours = c.Hours
	if c.Schedule != "" {
		sched, err = scenario.LoadSchedule(c.Schedule)
		if err != nil {
			return 0, nil, err
		}
		if hours == 0 {
			hours = 24
		}
	}
	return hours, sched, nil
}

// EventSink returns the -events stream opened by Observability (nil when no
// stream was requested or Observability has not run), so commands can hand
// it to subsystems that emit their own event types — the temporal engine's
// trajectory stream rides the same file as the tracer's span events.
func (c *Common) EventSink() *obs.EventSink { return c.sink }

// Context returns a context cancelled by SIGINT/SIGTERM, so ^C aborts
// in-flight experiment stages cleanly instead of killing the process
// mid-write. The returned stop must be deferred.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// StartDebug serves the debug endpoints when -debug-addr is set and ties
// their shutdown to ctx, closing the listener (and its accept goroutine)
// when the command is cancelled. No-op with an empty address.
func (c *Common) StartDebug(ctx context.Context, tr *obs.Tracer, logger *slog.Logger) error {
	if c.DebugAddr == "" {
		return nil
	}
	addr, stop, err := obs.ServeDebug(c.DebugAddr, tr)
	if err != nil {
		return err
	}
	context.AfterFunc(ctx, stop)
	logger.Info("debug endpoint listening", "url", "http://"+addr+"/debug/obs")
	return nil
}

// Observability wires the optional observability surfaces in one call: the
// -debug-addr endpoint (pprof, expvar, Prometheus /metrics, live /debug/obs
// page), the -events JSONL stream attached to the tracer, the -trace
// timeline recording whose Perfetto export is written at teardown, and the
// -lineage provenance recorder whose JSONL capture is spilled at teardown.
// The returned close emits the final funnel snapshots, flushes the stream,
// and writes the trace and lineage files; it is idempotent, also runs on ctx
// cancellation (so ^C still leaves a complete stream, trace and lineage
// capture behind), and must be deferred by the command.
func (c *Common) Observability(ctx context.Context, tr *obs.Tracer, logger *slog.Logger) (func(), error) {
	if err := c.StartDebug(ctx, tr, logger); err != nil {
		return nil, err
	}
	var sink *obs.EventSink
	if c.Events != "" {
		s, err := obs.OpenEventSink(c.Events)
		if err != nil {
			return nil, err
		}
		sink = s
		c.sink = sink
		tr.SetSink(sink)
		logger.Info("event stream open", "path", c.Events)
	}
	if c.Trace != "" {
		// Recording must be live before any span or chaos decision runs, so
		// the export sees the whole run.
		tr.EnableTimeline()
	}
	if c.Lineage != "" {
		// Like the timeline, the recorder must be live before any
		// classification decision runs so the capture covers the whole run.
		obs.SetLineage(obs.NewLineageRecorder())
	}
	if sink == nil && c.Trace == "" && c.Lineage == "" {
		return func() {}, nil
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if sink != nil {
				c.sink = nil
				tr.SetSink(nil)
				sink.EmitFunnels(obs.Default)
				if err := sink.Close(); err != nil {
					logger.Warn("event stream close failed", "path", c.Events, "err", err)
				}
			}
			if c.Trace != "" {
				if err := obs.WriteTraceFile(c.Trace, tr); err != nil {
					logger.Warn("trace export failed", "path", c.Trace, "err", err)
				} else {
					logger.Info("trace written", "path", c.Trace, "hint", "load in ui.perfetto.dev")
				}
			}
			if lr := obs.ActiveLineage(); c.Lineage != "" && lr != nil {
				if err := obs.WriteLineageFile(c.Lineage, lr); err != nil {
					logger.Warn("lineage export failed", "path", c.Lineage, "err", err)
				} else {
					logger.Info("lineage written", "path", c.Lineage,
						"records", len(lr.Records()), "digest", lr.Digest(),
						"hint", "query with cmd/explain")
				}
			}
		})
	}
	context.AfterFunc(ctx, stop)
	return stop, nil
}
