// Package cli holds the flag surface shared by every command in cmd/: one
// registration point so -seed, -tiny, -large, -v, -workers, -debug-addr,
// -events, -chaos and -chaos-seed are spelled, defaulted and documented
// identically everywhere,
// plus the common startup plumbing (logger, SIGINT-cancelled context, debug
// endpoints and event streams wired to that context).
package cli

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"offnetrisk"
	"offnetrisk/internal/chaos"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
)

// Common is the flag set every command shares.
type Common struct {
	Seed      int64
	Tiny      bool
	Large     bool
	Verbose   bool
	Workers   int
	DebugAddr string
	Events    string
	Trace     string
	Chaos     string
	ChaosSeed int64
}

// Register installs the shared flags on fs. Call before the command's own
// flags and before flag.Parse.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.Int64Var(&c.Seed, "seed", 42, "world seed")
	fs.BoolVar(&c.Tiny, "tiny", false, "use the miniature test world")
	fs.BoolVar(&c.Large, "large", false, "use the large (paper-sized) world")
	fs.BoolVar(&c.Verbose, "v", false, "verbose (debug-level) logging")
	fs.IntVar(&c.Workers, "workers", 0, "parallel workers for experiment stages (0 = GOMAXPROCS)")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve /metrics, /debug/pprof, /debug/vars and /debug/obs on this address (e.g. localhost:6060)")
	fs.StringVar(&c.Events, "events", "", "stream span start/end and funnel snapshots as JSONL to this file")
	fs.StringVar(&c.Trace, "trace", "", "export the execution timeline as Perfetto-loadable trace-event JSON to this file")
	fs.StringVar(&c.Chaos, "chaos", "off", "fault-injection profile: off, light or heavy")
	fs.Int64Var(&c.ChaosSeed, "chaos-seed", 7, "seed for the fault-injection streams (independent of -seed)")
	return c
}

// Scale maps -tiny/-large onto the pipeline scale.
func (c *Common) Scale() offnetrisk.Scale {
	switch {
	case c.Tiny:
		return offnetrisk.ScaleTiny
	case c.Large:
		return offnetrisk.ScaleLarge
	default:
		return offnetrisk.ScaleDefault
	}
}

// WorldConfig maps -tiny/-large onto a raw world config, for commands that
// generate a world directly instead of going through a Pipeline.
func (c *Common) WorldConfig() inet.Config {
	switch {
	case c.Tiny:
		return inet.TinyConfig(c.Seed)
	case c.Large:
		return inet.LargeConfig(c.Seed)
	default:
		return inet.DefaultConfig(c.Seed)
	}
}

// Logger sets up the command's structured logger at the -v-selected level.
func (c *Common) Logger(cmd string) *slog.Logger {
	return obs.SetupCLI(cmd, c.Verbose)
}

// Injector resolves -chaos/-chaos-seed to a fault injector (nil when off);
// the error reports an unknown profile name.
func (c *Common) Injector() (*chaos.Injector, error) {
	prof, err := chaos.ParseProfile(c.Chaos)
	if err != nil {
		return nil, err
	}
	return chaos.New(prof, c.ChaosSeed), nil
}

// Pipeline builds the pipeline for the selected seed, scale, workers and
// chaos profile. The error reports an invalid -chaos value.
func (c *Common) Pipeline() (*offnetrisk.Pipeline, error) {
	inj, err := c.Injector()
	if err != nil {
		return nil, err
	}
	p := offnetrisk.NewPipeline(c.Seed, c.Scale())
	p.Workers = c.Workers
	p.Chaos = inj
	return p, nil
}

// Context returns a context cancelled by SIGINT/SIGTERM, so ^C aborts
// in-flight experiment stages cleanly instead of killing the process
// mid-write. The returned stop must be deferred.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// StartDebug serves the debug endpoints when -debug-addr is set and ties
// their shutdown to ctx, closing the listener (and its accept goroutine)
// when the command is cancelled. No-op with an empty address.
func (c *Common) StartDebug(ctx context.Context, tr *obs.Tracer, logger *slog.Logger) error {
	if c.DebugAddr == "" {
		return nil
	}
	addr, stop, err := obs.ServeDebug(c.DebugAddr, tr)
	if err != nil {
		return err
	}
	context.AfterFunc(ctx, stop)
	logger.Info("debug endpoint listening", "url", "http://"+addr+"/debug/obs")
	return nil
}

// Observability wires the optional observability surfaces in one call: the
// -debug-addr endpoint (pprof, expvar, Prometheus /metrics, live /debug/obs
// page), the -events JSONL stream attached to the tracer, and the -trace
// timeline recording whose Perfetto export is written at teardown. The
// returned close emits the final funnel snapshots, flushes the stream, and
// writes the trace file; it is idempotent, also runs on ctx cancellation (so
// ^C still leaves a complete stream and trace behind), and must be deferred
// by the command.
func (c *Common) Observability(ctx context.Context, tr *obs.Tracer, logger *slog.Logger) (func(), error) {
	if err := c.StartDebug(ctx, tr, logger); err != nil {
		return nil, err
	}
	var sink *obs.EventSink
	if c.Events != "" {
		s, err := obs.OpenEventSink(c.Events)
		if err != nil {
			return nil, err
		}
		sink = s
		tr.SetSink(sink)
		logger.Info("event stream open", "path", c.Events)
	}
	if c.Trace != "" {
		// Recording must be live before any span or chaos decision runs, so
		// the export sees the whole run.
		tr.EnableTimeline()
	}
	if sink == nil && c.Trace == "" {
		return func() {}, nil
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if sink != nil {
				tr.SetSink(nil)
				sink.EmitFunnels(obs.Default)
				if err := sink.Close(); err != nil {
					logger.Warn("event stream close failed", "path", c.Events, "err", err)
				}
			}
			if c.Trace != "" {
				if err := obs.WriteTraceFile(c.Trace, tr); err != nil {
					logger.Warn("trace export failed", "path", c.Trace, "err", err)
				} else {
					logger.Info("trace written", "path", c.Trace, "hint", "load in ui.perfetto.dev")
				}
			}
		})
	}
	context.AfterFunc(ctx, stop)
	return stop, nil
}
