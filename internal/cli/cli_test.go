package cli

import (
	"flag"
	"strings"
	"testing"

	"offnetrisk"
	"offnetrisk/internal/scenario"
)

// parse registers the shared flags on a fresh FlagSet and parses args,
// mirroring what every cmd/ main does.
func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return c
}

func TestTinyLargeConflict(t *testing.T) {
	c := parse(t, "-tiny", "-large")
	if _, err := c.ScenarioSpec(); err == nil {
		t.Fatal("-tiny -large accepted; want a conflict error")
	} else if !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("conflict error %q does not name the conflict", err)
	}
	// The same conflict must surface through Pipeline and WorldConfig too —
	// commands call whichever fits, and all of them must refuse.
	if _, err := c.Pipeline(); err == nil {
		t.Fatal("Pipeline accepted -tiny -large")
	}
	if _, err := c.WorldConfig(); err == nil {
		t.Fatal("WorldConfig accepted -tiny -large")
	}
}

func TestScaleAliases(t *testing.T) {
	cases := []struct {
		args  []string
		name  string
		scale offnetrisk.Scale
	}{
		{nil, scenario.DefaultName, offnetrisk.ScaleDefault},
		{[]string{"-tiny"}, "tiny", offnetrisk.ScaleTiny},
		{[]string{"-large"}, "large", offnetrisk.ScaleLarge},
		// An explicit -scenario keeps its own spec; the scale flag only
		// overrides the topology.
		{[]string{"-scenario", "ios-flash-crowd", "-tiny"}, "ios-flash-crowd", offnetrisk.ScaleTiny},
	}
	for _, tc := range cases {
		c := parse(t, tc.args...)
		sp, err := c.ScenarioSpec()
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if sp.Name != tc.name {
			t.Errorf("%v: scenario %q, want %q", tc.args, sp.Name, tc.name)
		}
		if got := c.Scale(); got != tc.scale {
			t.Errorf("%v: scale %v, want %v", tc.args, got, tc.scale)
		}
	}
}

func TestScenarioSpecUnknownName(t *testing.T) {
	c := parse(t, "-scenario", "no-such-world")
	if _, err := c.ScenarioSpec(); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

func TestChaosSettingsFallback(t *testing.T) {
	chaotic := scenario.MustLookup("ios-flash-crowd") // chaos {light, 7}
	if chaotic.Chaos.Profile != "light" {
		t.Fatalf("fixture drift: ios-flash-crowd chaos profile %q", chaotic.Chaos.Profile)
	}

	// Unset flags inherit the scenario's chaos section.
	c := parse(t)
	if prof, seed := c.ChaosSettings(chaotic); prof != "light" || seed != chaotic.Chaos.Seed {
		t.Errorf("fallback = (%q, %d), want (light, %d)", prof, seed, chaotic.Chaos.Seed)
	}

	// Explicit flags win over the scenario.
	c = parse(t, "-chaos", "off", "-chaos-seed", "99")
	if prof, seed := c.ChaosSettings(chaotic); prof != "off" || seed != 99 {
		t.Errorf("explicit flags = (%q, %d), want (off, 99)", prof, seed)
	}

	// Default scenario leaves the flag defaults untouched, so plain runs are
	// byte-identical to the pre-scenario CLI.
	c = parse(t)
	if prof, seed := c.ChaosSettings(scenario.Default()); prof != "off" || seed != 7 {
		t.Errorf("default scenario = (%q, %d), want (off, 7)", prof, seed)
	}
}

func TestInjectorFromSpecRejectsBadProfile(t *testing.T) {
	c := parse(t, "-chaos", "apocalyptic")
	if _, err := c.InjectorFromSpec(scenario.Default()); err == nil {
		t.Fatal("unknown chaos profile accepted")
	}
}

func TestPipelineCarriesScenario(t *testing.T) {
	c := parse(t, "-scenario", "meta-cdn", "-tiny", "-workers", "3")
	p, err := c.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if p.Scenario().Name != "meta-cdn" {
		t.Errorf("pipeline scenario %q, want meta-cdn", p.Scenario().Name)
	}
	if p.Scale != offnetrisk.ScaleTiny {
		t.Errorf("pipeline scale %v, want tiny", p.Scale)
	}
	if p.Workers != 3 {
		t.Errorf("pipeline workers %d, want 3", p.Workers)
	}
}
