package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"offnetrisk"
	"offnetrisk/internal/scenario"
)

// parse registers the shared flags on a fresh FlagSet and parses args,
// mirroring what every cmd/ main does.
func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return c
}

func TestTinyLargeConflict(t *testing.T) {
	c := parse(t, "-tiny", "-large")
	if _, err := c.ScenarioSpec(); err == nil {
		t.Fatal("-tiny -large accepted; want a conflict error")
	} else if !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("conflict error %q does not name the conflict", err)
	}
	// The same conflict must surface through Pipeline and WorldConfig too —
	// commands call whichever fits, and all of them must refuse.
	if _, err := c.Pipeline(); err == nil {
		t.Fatal("Pipeline accepted -tiny -large")
	}
	if _, err := c.WorldConfig(); err == nil {
		t.Fatal("WorldConfig accepted -tiny -large")
	}
}

func TestScaleAliases(t *testing.T) {
	cases := []struct {
		args  []string
		name  string
		scale offnetrisk.Scale
	}{
		{nil, scenario.DefaultName, offnetrisk.ScaleDefault},
		{[]string{"-tiny"}, "tiny", offnetrisk.ScaleTiny},
		{[]string{"-large"}, "large", offnetrisk.ScaleLarge},
		// An explicit -scenario keeps its own spec; the scale flag only
		// overrides the topology.
		{[]string{"-scenario", "ios-flash-crowd", "-tiny"}, "ios-flash-crowd", offnetrisk.ScaleTiny},
	}
	for _, tc := range cases {
		c := parse(t, tc.args...)
		sp, err := c.ScenarioSpec()
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if sp.Name != tc.name {
			t.Errorf("%v: scenario %q, want %q", tc.args, sp.Name, tc.name)
		}
		if got := c.Scale(); got != tc.scale {
			t.Errorf("%v: scale %v, want %v", tc.args, got, tc.scale)
		}
	}
}

func TestScenarioSpecUnknownName(t *testing.T) {
	c := parse(t, "-scenario", "no-such-world")
	if _, err := c.ScenarioSpec(); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

func TestChaosSettingsFallback(t *testing.T) {
	chaotic := scenario.MustLookup("ios-flash-crowd") // chaos {light, 7}
	if chaotic.Chaos.Profile != "light" {
		t.Fatalf("fixture drift: ios-flash-crowd chaos profile %q", chaotic.Chaos.Profile)
	}

	// Unset flags inherit the scenario's chaos section.
	c := parse(t)
	if prof, seed := c.ChaosSettings(chaotic); prof != "light" || seed != chaotic.Chaos.Seed {
		t.Errorf("fallback = (%q, %d), want (light, %d)", prof, seed, chaotic.Chaos.Seed)
	}

	// Explicit flags win over the scenario.
	c = parse(t, "-chaos", "off", "-chaos-seed", "99")
	if prof, seed := c.ChaosSettings(chaotic); prof != "off" || seed != 99 {
		t.Errorf("explicit flags = (%q, %d), want (off, 99)", prof, seed)
	}

	// Default scenario leaves the flag defaults untouched, so plain runs are
	// byte-identical to the pre-scenario CLI.
	c = parse(t)
	if prof, seed := c.ChaosSettings(scenario.Default()); prof != "off" || seed != 7 {
		t.Errorf("default scenario = (%q, %d), want (off, 7)", prof, seed)
	}
}

func TestInjectorFromSpecRejectsBadProfile(t *testing.T) {
	c := parse(t, "-chaos", "apocalyptic")
	if _, err := c.InjectorFromSpec(scenario.Default()); err == nil {
		t.Fatal("unknown chaos profile accepted")
	}
}

func TestPipelineCarriesScenario(t *testing.T) {
	c := parse(t, "-scenario", "meta-cdn", "-tiny", "-workers", "3")
	p, err := c.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if p.Scenario().Name != "meta-cdn" {
		t.Errorf("pipeline scenario %q, want meta-cdn", p.Scenario().Name)
	}
	if p.Scale != offnetrisk.ScaleTiny {
		t.Errorf("pipeline scale %v, want tiny", p.Scale)
	}
	if p.Workers != 3 {
		t.Errorf("pipeline workers %d, want 3", p.Workers)
	}
}

// TestTemporalResolution pins the -hours/-schedule contract: off by default,
// -hours alone replays the steady state, -schedule implies a 24-hour horizon,
// negative hours and unreadable schedule files are flag errors.
func TestTemporalResolution(t *testing.T) {
	if hours, sched, err := parse(t).Temporal(); err != nil || hours != 0 || sched != nil {
		t.Fatalf("default Temporal() = (%d, %v, %v), want (0, nil, nil)", hours, sched, err)
	}
	if hours, sched, err := parse(t, "-hours", "48").Temporal(); err != nil || hours != 48 || sched != nil {
		t.Fatalf("-hours 48: got (%d, %v, %v)", hours, sched, err)
	}

	path := filepath.Join(t.TempDir(), "sched.json")
	doc := `{"version": 1, "name": "cli-test", "events": [{"at_hours": 2, "isolation": {"enabled": true}}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	hours, sched, err := parse(t, "-schedule", path).Temporal()
	if err != nil || sched == nil || sched.Name != "cli-test" {
		t.Fatalf("-schedule: got (%d, %v, %v)", hours, sched, err)
	}
	if hours != 24 {
		t.Fatalf("-schedule alone implies 24 hours, got %d", hours)
	}
	if hours, _, err := parse(t, "-hours", "6", "-schedule", path).Temporal(); err != nil || hours != 6 {
		t.Fatalf("-hours 6 -schedule: got (%d, %v); explicit hours must win", hours, err)
	}

	if _, _, err := parse(t, "-hours", "-1").Temporal(); err == nil {
		t.Fatal("-hours -1 accepted")
	}
	if _, _, err := parse(t, "-schedule", filepath.Join(t.TempDir(), "absent.json")).Temporal(); err == nil {
		t.Fatal("missing schedule file accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"version": 9, "name": "x", "events": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := parse(t, "-schedule", badPath).Temporal(); err == nil {
		t.Fatal("invalid schedule file accepted")
	}
}
