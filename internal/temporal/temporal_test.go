package temporal

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/scenario"
)

func buildWorld(t testing.TB, seed int64) (*hypergiant.Deployment, *capacity.Model) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d, capacity.Build(d, capacity.DefaultConfig(seed))
}

func mustRun(t testing.TB, m *capacity.Model, d *hypergiant.Deployment, sched *scenario.Schedule, cfg Config) *Trajectory {
	t.Helper()
	eng, err := New(m, d, sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	traj, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

// servedFacility returns a facility that actually hosts offnet servers in
// the deployment, so failing it perturbs the serving model.
func servedFacility(t testing.TB, d *hypergiant.Deployment) inet.FacilityID {
	t.Helper()
	var ids []inet.FacilityID
	seen := map[inet.FacilityID]bool{}
	for _, s := range d.Servers {
		if !seen[s.Facility] {
			seen[s.Facility] = true
			ids = append(ids, s.Facility)
		}
	}
	if len(ids) == 0 {
		t.Fatal("deployment hosts no servers")
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// The facility shared by the most hypergiants perturbs the most flows.
	bestN := -1
	best := ids[0]
	for _, id := range ids {
		hgs := map[int]bool{}
		for _, s := range d.Servers {
			if s.Facility == id {
				hgs[int(s.HG)] = true
			}
		}
		if len(hgs) > bestN {
			bestN, best = len(hgs), id
		}
	}
	return best
}

// The steady-state differential oracle: with an empty schedule the engine's
// flows at each hour h must equal capacity.Model.Serve(Diurnal[h], ...)
// bit-exactly, across 100 derived seeds (ISSUE 10 acceptance criterion).
func TestSteadyStateMatchesServe(t *testing.T) {
	base := int64(42)
	for i := 0; i < 100; i++ {
		seed := rngutil.Derive(base, rngutil.Label("temporal.oracle"), int64(i))
		d, m := buildWorld(t, seed)
		traj := mustRun(t, m, d, nil, Config{Hours: 24})
		if len(traj.Steps) != 24 {
			t.Fatalf("seed %d: %d steps, want 24", seed, len(traj.Steps))
		}
		for _, st := range traj.Steps {
			want := m.Serve(capacity.Diurnal[st.Hour%24], nil, nil)
			if !reflect.DeepEqual(st.Flows, want) {
				t.Fatalf("seed %d hour %d: engine flows diverge from Serve", seed, st.Hour)
			}
			if st.Burst {
				t.Fatalf("seed %d hour %d: steady state must not burst", seed, st.Hour)
			}
			// ServeHour is the same entry point the engine's identity relies on.
			if got := m.ServeHour(st.Hour, nil, nil, false); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d hour %d: ServeHour diverges from Serve", seed, st.Hour)
			}
		}
	}
}

// The failure differential oracle: a scheduled facility failure must land on
// cascade.Simulate's report — flows, congested IXP/transit sets, direct and
// collateral ISP sets — bit-exactly, across 100 derived seeds.
func TestFailureTrajectoryMatchesSimulate(t *testing.T) {
	base := int64(42)
	const failAt = 5
	for i := 0; i < 100; i++ {
		seed := rngutil.Derive(base, rngutil.Label("temporal.oracle.fail"), int64(i))
		d, m := buildWorld(t, seed)
		fid := servedFacility(t, d)
		sched := &scenario.Schedule{
			Version: scenario.ScheduleVersion,
			Name:    "differential-failure",
			Events: []scenario.TimedEvent{{
				AtHours:         failAt,
				FacilityFailure: &scenario.FacilityFailure{Facility: int(fid)},
			}},
		}
		traj := mustRun(t, m, d, sched, Config{Hours: 12})
		for _, st := range traj.Steps {
			if st.AtHours < failAt {
				if st.Burst {
					t.Fatalf("seed %d t=%g: burst before the failure", seed, st.AtHours)
				}
				continue
			}
			sc := cascade.Scenario{
				FailFacilities: map[inet.FacilityID]bool{fid: true},
				DemandMult:     capacity.Diurnal[st.Hour%24],
				SharedHeadroom: 1.25,
			}
			want := cascade.Simulate(m, d, sc)
			if !reflect.DeepEqual(st.Flows, want.Flows) {
				t.Fatalf("seed %d t=%g: flows diverge from Simulate", seed, st.AtHours)
			}
			if !reflect.DeepEqual(st.Report.CongestedIXPs(), want.CongestedIXPs()) {
				t.Fatalf("seed %d t=%g: congested IXPs %v vs %v",
					seed, st.AtHours, st.Report.CongestedIXPs(), want.CongestedIXPs())
			}
			if !reflect.DeepEqual(st.Report.CongestedTransits(), want.CongestedTransits()) {
				t.Fatalf("seed %d t=%g: congested transits %v vs %v",
					seed, st.AtHours, st.Report.CongestedTransits(), want.CongestedTransits())
			}
			if !reflect.DeepEqual(st.Report.DirectISPs, want.DirectISPs) {
				t.Fatalf("seed %d t=%g: direct ISPs diverge", seed, st.AtHours)
			}
			if !reflect.DeepEqual(st.Report.CollateralISPs, want.CollateralISPs) {
				t.Fatalf("seed %d t=%g: collateral ISPs diverge", seed, st.AtHours)
			}
		}
	}
}

func TestEventOrderingAndDigest(t *testing.T) {
	d, m := buildWorld(t, 7)
	fid := servedFacility(t, d)
	sched := &scenario.Schedule{
		Version: scenario.ScheduleVersion,
		Name:    "ordering",
		Events: []scenario.TimedEvent{
			{AtHours: 2.5, DurationHours: 3, DemandStep: &scenario.DemandStep{HG: "akamai", Multiplier: 2}},
			{AtHours: 4, DurationHours: 2, FacilityFailure: &scenario.FacilityFailure{Facility: int(fid)}},
			{AtHours: 5, Isolation: &scenario.IsolationToggle{Enabled: true}},
		},
	}
	traj := mustRun(t, m, d, sched, Config{Hours: 10})
	// Events are (timestamp, seq)-ordered with dense sequence numbers.
	for i, ev := range traj.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if i > 0 && ev.AtHours < traj.Events[i-1].AtHours {
			t.Fatalf("event %d at %g precedes event %d at %g",
				i, ev.AtHours, i-1, traj.Events[i-1].AtHours)
		}
	}
	// Evaluation instants: the 10 ticks plus the fractional window edges at
	// t=2.5 and t=5.5 (the on-the-hour schedule items coincide with ticks).
	if len(traj.Steps) != 12 {
		t.Fatalf("%d steps, want 12 (10 ticks + t=2.5 + t=5.5)", len(traj.Steps))
	}
	// Isolation from t=5 onward only.
	for _, st := range traj.Steps {
		if st.Isolated != (st.AtHours >= 5) {
			t.Fatalf("t=%g: isolated=%v", st.AtHours, st.Isolated)
		}
	}
	// Re-running is byte-identical.
	again := mustRun(t, m, d, sched, Config{Hours: 10})
	if traj.Digest() != again.Digest() {
		t.Fatal("same inputs produced different trajectory digests")
	}
	if !strings.HasPrefix(traj.Digest(), "sha256:") {
		t.Fatalf("digest %q lacks scheme prefix", traj.Digest())
	}
	// Summary is deterministic and carries the digest.
	if a, b := traj.Summary(), again.Summary(); a != b || !strings.Contains(a, traj.Digest()) {
		t.Fatal("summary not deterministic or missing the digest")
	}
}

func TestEngineEmitsOnSink(t *testing.T) {
	d, m := buildWorld(t, 3)
	var buf bytes.Buffer
	sink := obs.NewEventSink(&buf)
	traj := mustRun(t, m, d, nil, Config{Hours: 3, Sink: sink})
	sink.Close()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(traj.Events) {
		t.Fatalf("%d stream lines for %d events", len(lines), len(traj.Events))
	}
	for _, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparsable stream line %q: %v", line, err)
		}
		if ev.Type != "temporal" {
			t.Fatalf("stream event type %q, want temporal", ev.Type)
		}
		if ev.Attrs["event"] == nil {
			t.Fatalf("stream event missing payload: %q", line)
		}
	}
}

func TestNewValidates(t *testing.T) {
	d, m := buildWorld(t, 3)
	if _, err := New(m, d, nil, Config{Hours: 0}); err == nil {
		t.Fatal("hours 0 accepted")
	}
	if _, err := New(m, d, nil, Config{Hours: MaxHours + 1}); err == nil {
		t.Fatal("hours beyond MaxHours accepted")
	}
	if _, err := New(nil, d, nil, Config{Hours: 1}); err == nil {
		t.Fatal("nil model accepted")
	}
	bad := &scenario.Schedule{Version: 99, Name: "bad"}
	if _, err := New(m, d, bad, Config{Hours: 1}); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

// A capacity cut must shift serving off the cut layer, and the cut model
// must leave the pristine baseline untouched once the window closes.
func TestCapacityCutShiftsServing(t *testing.T) {
	d, m := buildWorld(t, 11)
	sched := &scenario.Schedule{
		Version: scenario.ScheduleVersion,
		Name:    "pni-cut",
		Events: []scenario.TimedEvent{{
			AtHours: 2, DurationHours: 3,
			CapacityCut: &scenario.CapacityCut{Layer: "pni", CutFraction: 1},
		}},
	}
	traj := mustRun(t, m, d, sched, Config{Hours: 8})
	var inWindow, outWindow *Step
	for i := range traj.Steps {
		st := &traj.Steps[i]
		switch {
		case st.AtHours >= 2 && st.AtHours < 5:
			inWindow = st
		case st.AtHours >= 5:
			if outWindow == nil {
				outWindow = st
			}
		}
	}
	if inWindow == nil || outWindow == nil {
		t.Fatal("missing steps around the cut window")
	}
	if inWindow.Agg.PNI != 0 {
		t.Fatalf("PNI served %.3f Gbps during a 100%% PNI cut", inWindow.Agg.PNI)
	}
	if outWindow.Agg.PNI <= 0 {
		t.Fatalf("PNI did not recover after the cut window (%.3f Gbps)", outWindow.Agg.PNI)
	}
	// After the window the state is quiet again: flows equal the baseline.
	want := m.Serve(capacity.Diurnal[outWindow.Hour%24], nil, nil)
	if !reflect.DeepEqual(outWindow.Flows, want) {
		t.Fatal("post-window flows diverge from the pristine baseline")
	}
}
