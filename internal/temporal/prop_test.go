package temporal

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/rngutil"
	"offnetrisk/internal/scenario"
)

// The property suite runs 200+ randomized schedules and checks, at every
// event timestamp:
//   - flow conservation: Demand == Offnet+PNI+IXP+UpstreamOffnet+Transit
//     + unserved (unserved is identically zero in this serving model — the
//     transit layer is the unbounded spill sink);
//   - link utilization never exceeds capacity for non-congested links;
//   - the collateral blast radius is monotone non-increasing in
//     SharedHeadroom (set-wise, at every step).

var hgNames = []string{"google", "netflix", "meta", "akamai"}

// randomSchedule builds a valid schedule: every event gets a distinct
// target, so no two windows can collide whatever their timing.
func randomSchedule(r *rand.Rand, facilities []inet.FacilityID) *scenario.Schedule {
	s := &scenario.Schedule{Version: scenario.ScheduleVersion, Name: "prop"}
	win := func() (at, dur float64) {
		at = math.Round(r.Float64()*40) / 2 // [0, 20] in half-hour ticks
		if r.Intn(3) == 0 {
			return at, 0 // open-ended
		}
		return at, 1 + math.Round(r.Float64()*10)/2
	}
	// Demand steps on a random subset of distinct hypergiants.
	for _, hg := range rngutil.SampleWithoutReplacement(r, len(hgNames), r.Intn(3)) {
		at, dur := win()
		s.Events = append(s.Events, scenario.TimedEvent{
			AtHours: at, DurationHours: dur,
			DemandStep: &scenario.DemandStep{HG: hgNames[hg], Multiplier: 1 + r.Float64()*2.5},
		})
	}
	// Failures of distinct facilities.
	for _, i := range rngutil.SampleWithoutReplacement(r, len(facilities), r.Intn(3)) {
		at, dur := win()
		s.Events = append(s.Events, scenario.TimedEvent{
			AtHours: at, DurationHours: dur,
			FacilityFailure: &scenario.FacilityFailure{Facility: int(facilities[i])},
		})
	}
	// One cut on a distinct (layer, hg) pair.
	if r.Intn(2) == 0 {
		at, dur := win()
		s.Events = append(s.Events, scenario.TimedEvent{
			AtHours: at, DurationHours: dur,
			CapacityCut: &scenario.CapacityCut{
				Layer:       scenario.ScheduleLayers[r.Intn(len(scenario.ScheduleLayers))],
				HG:          hgNames[r.Intn(len(hgNames))],
				CutFraction: 0.25 + r.Float64()*0.75,
			},
		})
	}
	// Sometimes toggle isolation on mid-run.
	if r.Intn(3) == 0 {
		s.Events = append(s.Events, scenario.TimedEvent{
			AtHours:   math.Round(r.Float64() * 20),
			Isolation: &scenario.IsolationToggle{Enabled: true},
		})
	}
	return s
}

func facilitiesOf(d *hypergiant.Deployment) []inet.FacilityID {
	seen := map[inet.FacilityID]bool{}
	var ids []inet.FacilityID
	for _, s := range d.Servers {
		if !seen[s.Facility] {
			seen[s.Facility] = true
			ids = append(ids, s.Facility)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func checkConservation(t *testing.T, schedule int, st *Step) {
	t.Helper()
	for _, f := range st.Flows {
		sum := f.Offnet + f.PNI + f.IXP + f.UpstreamOffnet + f.Transit
		if math.Abs(sum-f.Demand) > 1e-6*math.Max(1, f.Demand) {
			t.Fatalf("schedule %d t=%g: flow %v/%d not conserved: %v != %v",
				schedule, st.AtHours, f.HG, f.ISP, sum, f.Demand)
		}
	}
	agg := st.Agg.Offnet + st.Agg.PNI + st.Agg.IXP + st.Agg.UpstreamOffnet +
		st.Agg.Transit + st.Agg.Unserved
	if math.Abs(agg-st.Agg.Demand) > 1e-6*math.Max(1, st.Agg.Demand) {
		t.Fatalf("schedule %d t=%g: aggregate not conserved: %v != %v",
			schedule, st.AtHours, agg, st.Agg.Demand)
	}
	if st.Agg.Unserved != 0 {
		t.Fatalf("schedule %d t=%g: unserved %v in a model whose transit sink is unbounded",
			schedule, st.AtHours, st.Agg.Unserved)
	}
}

func checkUtilization(t *testing.T, schedule int, st *Step) {
	t.Helper()
	for id, l := range st.Report.IXPLoad {
		if !l.Congested() && l.LoadGbps > l.CapacityGbps {
			t.Fatalf("schedule %d t=%g: IXP %d load %v > capacity %v yet not congested",
				schedule, st.AtHours, id, l.LoadGbps, l.CapacityGbps)
		}
		if !l.Congested() && l.LoadGbps > 0 && l.Utilization() >= 1 {
			t.Fatalf("schedule %d t=%g: IXP %d utilization %v >= 1 yet not congested",
				schedule, st.AtHours, id, l.Utilization())
		}
	}
	for as, l := range st.Report.TransitLoad {
		if !l.Congested() && l.LoadGbps > l.CapacityGbps {
			t.Fatalf("schedule %d t=%g: transit %d load %v > capacity %v yet not congested",
				schedule, st.AtHours, as, l.LoadGbps, l.CapacityGbps)
		}
	}
}

func collateralSet(st *Step) map[inet.ASN]bool { return st.Report.CollateralISPs }

func TestPropertiesOverRandomSchedules(t *testing.T) {
	const schedules = 200
	const perWorld = 20
	headrooms := []float64{1.05, 1.25, 1.6}
	for i := 0; i < schedules; i++ {
		seed := rngutil.Derive(42, rngutil.Label("temporal.prop"), int64(i/perWorld))
		d, m := buildWorld(t, seed)
		r := rngutil.New(rngutil.Derive(42, rngutil.Label("temporal.prop.sched"), int64(i)))
		sched := randomSchedule(r, facilitiesOf(d))
		if err := sched.Validate(); err != nil {
			t.Fatalf("schedule %d: generator produced invalid schedule: %v", i, err)
		}

		// One trajectory per headroom over the same schedule. Headroom only
		// resizes shared-link capacities — flows are identical — so the
		// congested and collateral sets must shrink set-wise as headroom
		// grows.
		var trajs []*Trajectory
		for _, hr := range headrooms {
			trajs = append(trajs, mustRun(t, m, d, sched, Config{Hours: 24, SharedHeadroom: hr}))
		}
		for k := 1; k < len(trajs); k++ {
			if len(trajs[k].Steps) != len(trajs[0].Steps) {
				t.Fatalf("schedule %d: step counts differ across headrooms", i)
			}
		}
		for s := range trajs[0].Steps {
			st := &trajs[0].Steps[s]
			checkConservation(t, i, st)
			checkUtilization(t, i, st)
			for k := 1; k < len(trajs); k++ {
				lo, hi := &trajs[k-1].Steps[s], &trajs[k].Steps[s]
				checkUtilization(t, i, hi)
				for as := range collateralSet(hi) {
					if !collateralSet(lo)[as] {
						t.Fatalf("schedule %d t=%g: ISP %d collateral at headroom %v but not at %v",
							i, hi.AtHours, as, headrooms[k], headrooms[k-1])
					}
				}
				for _, id := range hi.Report.CongestedIXPs() {
					if hi.Report.IXPLoad[id].LoadGbps > 0 {
						l := lo.Report.IXPLoad[id]
						if !l.Congested() {
							t.Fatalf("schedule %d t=%g: IXP %d congested at headroom %v but not at %v",
								i, hi.AtHours, id, headrooms[k], headrooms[k-1])
						}
					}
				}
			}
		}
	}
}

// Monotonicity of the blast radius holds for the closed-form entry point
// too: the engine inherits it from cascade.Assess, so pin it there as well
// with a focused failure scenario.
func TestCollateralMonotoneInHeadroomSteady(t *testing.T) {
	d, m := buildWorld(t, 5)
	fid := servedFacility(t, d)
	sched := &scenario.Schedule{
		Version: scenario.ScheduleVersion,
		Name:    "mono",
		Events: []scenario.TimedEvent{{
			AtHours:         0,
			FacilityFailure: &scenario.FacilityFailure{Facility: int(fid)},
		}},
	}
	prev := -1
	for _, hr := range []float64{1.01, 1.1, 1.25, 1.5, 2.0, 3.0} {
		traj := mustRun(t, m, d, sched, Config{Hours: 24, SharedHeadroom: hr})
		total := 0
		for _, st := range traj.Steps {
			total += st.Agg.CollateralISPs
		}
		if prev >= 0 && total > prev {
			t.Fatalf("headroom %v: total collateral %d grew from %d", hr, total, prev)
		}
		prev = total
	}
}

var sinkTrajectory *Trajectory

func BenchmarkEngine24h(b *testing.B) {
	d, m := buildWorld(b, 1)
	fid := servedFacility(b, d)
	sched := &scenario.Schedule{
		Version: scenario.ScheduleVersion,
		Name:    "bench",
		Events: []scenario.TimedEvent{
			{AtHours: 9, DurationHours: 6, DemandStep: &scenario.DemandStep{HG: "akamai", Multiplier: 2.2}},
			{AtHours: 12, DurationHours: 4, FacilityFailure: &scenario.FacilityFailure{Facility: int(fid)}},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkTrajectory = mustRun(b, m, d, sched, Config{Hours: 24})
	}
}
