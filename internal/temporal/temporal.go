// Package temporal is the shared-clock discrete-event engine the paper's
// temporal phenomena run on: offnet fill tracking the 24-hour diurnal
// demand curve, PNI saturation, spillover onto shared IXP/transit links,
// congestion onset and clearance, and mitigation (isolation) actions all
// fire as timestamped events. Scheduled disturbances come from declarative
// event schedules (internal/scenario): demand steps replay the flash-crowd
// shape of the iOS-update event, facility failures replay §3.3/§4.3, and
// capacity cuts drain individual serving layers.
//
// The engine is deterministic by construction: events are ordered by
// (timestamp, sequence number) on a heap, sequence numbers are assigned in
// a fixed construction order, the serving model and cascade assessment are
// the same pure functions the closed-form sweeps call (capacity.ServeHour /
// cascade.Assess), and no wall-clock or map-iteration order reaches the
// trajectory. The SHA-256 trajectory digest is therefore byte-identical at
// any -workers/-shards setting, and the closed-form pipeline remains the
// differential oracle: an empty schedule reproduces capacity.Serve hour by
// hour, and a scheduled facility failure lands on cascade.Simulate's report
// bit-exactly.
package temporal

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/scenario"
	"offnetrisk/internal/traffic"
)

// Lazily registered so runs without a temporal replay keep the committed
// golden manifests byte-identical (the registry only sees these names when
// an engine actually runs).
var (
	mSteps = obs.NewLazyCounter("temporal.steps_total",
		"clock steps evaluated by the discrete-event engine")
	mEvents = obs.NewLazyCounter("temporal.events_total",
		"events appended to temporal trajectories")
	mOnsets = obs.NewLazyCounter("temporal.congestion_onsets_total",
		"congestion-onset events observed on shared links")
)

// MaxHours bounds a replay horizon to one simulated year.
const MaxHours = 8760

// Config tunes one engine run.
type Config struct {
	// Hours is the replay horizon; the clock ticks at every integer hour in
	// [0, Hours).
	Hours int
	// SharedHeadroom sizes shared links from baseline load, as in
	// cascade.Scenario; <=1 means the default 1.25.
	SharedHeadroom float64
	// Sink, when non-nil, receives every trajectory event live on the
	// -events JSONL stream (type "temporal").
	Sink *obs.EventSink
}

// Engine replays one schedule against one capacity model.
type Engine struct {
	cfg   Config
	base  *capacity.Model
	dep   *hypergiant.Deployment
	sched *scenario.Schedule
}

// New validates the horizon and binds the engine to a model, a deployment
// and a schedule (nil = empty schedule: pure diurnal steady state).
func New(m *capacity.Model, d *hypergiant.Deployment, sched *scenario.Schedule, cfg Config) (*Engine, error) {
	if m == nil || d == nil {
		return nil, fmt.Errorf("temporal: nil model or deployment")
	}
	if cfg.Hours < 1 || cfg.Hours > MaxHours {
		return nil, fmt.Errorf("temporal: hours %d out of range [1, %d]", cfg.Hours, MaxHours)
	}
	if cfg.SharedHeadroom <= 1 {
		cfg.SharedHeadroom = cascade.DefaultScenario().SharedHeadroom
	}
	if sched != nil {
		if err := sched.Validate(); err != nil {
			return nil, fmt.Errorf("temporal: %w", err)
		}
	}
	return &Engine{cfg: cfg, base: m, dep: d, sched: sched}, nil
}

// itemKind orders what a heap item does when it fires.
type itemKind int

const (
	itemTick itemKind = iota
	itemStart
	itemEnd
	itemToggle
)

// item is one entry on the event heap: a timestamp, a deterministic
// tiebreak sequence assigned at construction, and the schedule entry it
// activates or deactivates (ticks carry the hour instead).
type item struct {
	at   float64
	seq  int
	kind itemKind
	hour int // itemTick
	ev   int // schedule event index, for start/end/toggle
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)      { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() any        { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *itemHeap) peekAt() float64 { return (*h)[0].at }

// state is the engine's mutable world between steps. Activation is counted,
// not boolean, so a window ending and an adjacent window starting at the
// same instant commute whatever their heap order.
type state struct {
	failures map[inet.FacilityID]int
	steps    map[int]bool // active demand-step schedule indexes
	cuts     map[int]bool // active capacity-cut schedule indexes
	isolated bool
}

func (st *state) disturbed() bool {
	return len(st.failures) > 0 || len(st.steps) > 0 || len(st.cuts) > 0
}

// failedSet renders the counted failures as the map capacity.serve expects;
// nil when nothing is dark.
func (st *state) failedSet() map[inet.FacilityID]bool {
	var out map[inet.FacilityID]bool
	for fid, n := range st.failures {
		if n > 0 {
			if out == nil {
				out = make(map[inet.FacilityID]bool)
			}
			out[fid] = true
		}
	}
	return out
}

// scaleSet recomputes the per-hypergiant demand multipliers from the active
// steps, in schedule order so stacked wildcard/specific steps compose
// deterministically; nil when no step is active.
func (st *state) scaleSet(sched *scenario.Schedule) map[traffic.HG]float64 {
	if len(st.steps) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(st.steps))
	for i := range st.steps {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make(map[traffic.HG]float64, len(traffic.All))
	for _, hg := range traffic.All {
		out[hg] = 1.0
	}
	for _, i := range idxs {
		d := sched.Events[i].DemandStep
		if hg, ok := traffic.ParseHG(d.HG); ok {
			out[hg] *= d.Multiplier
			continue
		}
		for _, hg := range traffic.All {
			out[hg] *= d.Multiplier
		}
	}
	return out
}

// cutSet renders the active cuts as capacity.Cut values, in schedule order.
func (st *state) cutSet(sched *scenario.Schedule) []capacity.Cut {
	if len(st.cuts) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(st.cuts))
	for i := range st.cuts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]capacity.Cut, 0, len(idxs))
	for _, i := range idxs {
		c := sched.Events[i].CapacityCut
		cut := capacity.Cut{ISP: inet.ASN(c.ISP), Frac: c.CutFraction}
		switch c.Layer {
		case "pni":
			cut.Layer = capacity.LayerPNI
		case "ixp":
			cut.Layer = capacity.LayerIXP
		default:
			cut.Layer = capacity.LayerOffnet
		}
		if hg, ok := traffic.ParseHG(c.HG); ok {
			cut.HG = hg
		} else {
			cut.AllHGs = true
		}
		out = append(out, cut)
	}
	return out
}

// Run replays the schedule over the horizon and returns the trajectory. The
// loop pops every heap item sharing the earliest timestamp, applies them to
// the state, then evaluates the world once at that instant — serving split,
// congestion assessment, onset/clearance detection, isolation accounting.
func (e *Engine) Run(ctx context.Context) (*Trajectory, error) {
	h := &itemHeap{}
	seq := 0
	push := func(it item) {
		it.seq = seq
		seq++
		heap.Push(h, it)
	}
	// Ticks first: at equal timestamps the clock advances before schedule
	// actions apply, so an on-the-hour disturbance is evaluated once, with
	// the disturbance in effect.
	for hr := 0; hr < e.cfg.Hours; hr++ {
		push(item{at: float64(hr), kind: itemTick, hour: hr})
	}
	horizon := float64(e.cfg.Hours)
	if e.sched != nil {
		for i := range e.sched.Events {
			ev := &e.sched.Events[i]
			if ev.AtHours >= horizon {
				continue // beyond the replay window
			}
			if ev.Isolation != nil {
				push(item{at: ev.AtHours, kind: itemToggle, ev: i})
				continue
			}
			push(item{at: ev.AtHours, kind: itemStart, ev: i})
			if ev.DurationHours > 0 {
				if end := ev.AtHours + ev.DurationHours; end < horizon {
					push(item{at: end, kind: itemEnd, ev: i})
				}
			}
		}
	}

	traj := &Trajectory{Hours: e.cfg.Hours, ScheduleName: e.scheduleName()}
	st := &state{
		failures: make(map[inet.FacilityID]int),
		steps:    make(map[int]bool),
		cuts:     make(map[int]bool),
	}
	cur := e.base
	baselineByHour := make(map[int][]capacity.Flow, 24)
	prevCongIXP := make(map[inet.IXPID]bool)
	prevCongTr := make(map[inet.ASN]bool)
	stepCounter := mSteps.Get()
	onsetCounter := mOnsets.Get()

	for h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return traj, err
		}
		at := h.peekAt()
		hour := int(math.Floor(at))
		cutsChanged := false
		for h.Len() > 0 && h.peekAt() == at {
			it := heap.Pop(h).(item)
			switch it.kind {
			case itemTick:
				traj.append(e.cfg.Sink, Event{
					AtHours: at, Kind: "tick", Hour: it.hour,
					Value: capacity.Diurnal[it.hour%24],
				})
			case itemStart, itemEnd:
				cutsChanged = e.applyWindow(traj, st, it, at) || cutsChanged
			case itemToggle:
				en := e.sched.Events[it.ev].Isolation.Enabled
				st.isolated = en
				kind := "isolation_off"
				if en {
					kind = "isolation_on"
				}
				traj.append(e.cfg.Sink, Event{AtHours: at, Kind: kind})
			}
		}
		if cutsChanged {
			cur = e.base.WithCuts(st.cutSet(e.sched))
		}

		// Evaluate the world at this instant.
		hIdx := hour % 24
		baseline, ok := baselineByHour[hIdx]
		if !ok {
			baseline = e.base.Serve(capacity.Diurnal[hIdx], nil, nil)
			baselineByHour[hIdx] = baseline
		}
		mult := capacity.Diurnal[hIdx]
		burst := st.disturbed()
		scale := st.scaleSet(e.sched)
		failed := st.failedSet()
		flows := baseline
		if burst {
			flows = cur.ServeBurst(mult, scale, failed)
		}
		sc := cascade.Scenario{
			FailFacilities: failed,
			Surge:          scale,
			DemandMult:     mult,
			SharedHeadroom: e.cfg.SharedHeadroom,
		}
		rep := cascade.Assess(cur, e.dep, sc, baseline, flows)
		var iso *cascade.IsolatedReport
		if st.isolated {
			iso = cascade.AssessIsolated(cur, e.dep, rep)
		}

		onsets := e.emitCongestionEdges(traj, at, rep, prevCongIXP, prevCongTr)
		onsetCounter.Add(int64(onsets))

		step := buildStep(at, hour, burst, st.isolated, flows, rep, iso)
		traj.Steps = append(traj.Steps, step)
		agg := step.Agg
		traj.append(e.cfg.Sink, Event{AtHours: at, Kind: "flows", Hour: hour, Agg: &agg})
		stepCounter.Inc()
	}
	mEvents.Get().Add(int64(len(traj.Events)))
	return traj, nil
}

// applyWindow applies one window start/end to the state and records its
// trajectory event; reports whether the active cut set changed.
func (e *Engine) applyWindow(traj *Trajectory, st *state, it item, at float64) bool {
	ev := &e.sched.Events[it.ev]
	start := it.kind == itemStart
	suffix := "_end"
	delta := -1
	if start {
		suffix = "_start"
		delta = 1
	}
	switch {
	case ev.DemandStep != nil:
		st.steps[it.ev] = start
		if !start {
			delete(st.steps, it.ev)
		}
		traj.append(e.cfg.Sink, Event{
			AtHours: at, Kind: "demand_step" + suffix,
			HG: ev.DemandStep.HG, Value: ev.DemandStep.Multiplier,
		})
	case ev.FacilityFailure != nil:
		fid := inet.FacilityID(ev.FacilityFailure.Facility)
		st.failures[fid] += delta
		if st.failures[fid] <= 0 {
			delete(st.failures, fid)
		}
		traj.append(e.cfg.Sink, Event{
			AtHours: at, Kind: "facility_failure" + suffix,
			Facility: ev.FacilityFailure.Facility,
		})
	case ev.CapacityCut != nil:
		st.cuts[it.ev] = start
		if !start {
			delete(st.cuts, it.ev)
		}
		traj.append(e.cfg.Sink, Event{
			AtHours: at, Kind: "capacity_cut" + suffix,
			Layer: ev.CapacityCut.Layer, HG: ev.CapacityCut.HG,
			ISP: ev.CapacityCut.ISP, Value: ev.CapacityCut.CutFraction,
		})
		return true
	}
	return false
}

// emitCongestionEdges diffs the congested link sets against the previous
// step and emits onset/clearance events in a fixed order (IXP onsets, then
// transit onsets, then IXP clears, then transit clears, each ascending);
// returns the onset count. prev maps are updated in place.
func (e *Engine) emitCongestionEdges(traj *Trajectory, at float64, rep *cascade.Report, prevIXP map[inet.IXPID]bool, prevTr map[inet.ASN]bool) int {
	onsets := 0
	curIXP := make(map[inet.IXPID]bool)
	for _, id := range rep.CongestedIXPs() {
		curIXP[id] = true
		if !prevIXP[id] {
			onsets++
			traj.append(e.cfg.Sink, Event{
				AtHours: at, Kind: "congestion_onset", IXP: int(id),
				Value: rep.IXPLoad[id].Utilization(),
			})
		}
	}
	curTr := make(map[inet.ASN]bool)
	for _, as := range rep.CongestedTransits() {
		curTr[as] = true
		if !prevTr[as] {
			onsets++
			traj.append(e.cfg.Sink, Event{
				AtHours: at, Kind: "congestion_onset", Transit: uint32(as),
				Value: rep.TransitLoad[as].Utilization(),
			})
		}
	}
	clearedIXP := make([]inet.IXPID, 0)
	for id := range prevIXP {
		if !curIXP[id] {
			clearedIXP = append(clearedIXP, id)
		}
	}
	sort.Slice(clearedIXP, func(i, j int) bool { return clearedIXP[i] < clearedIXP[j] })
	for _, id := range clearedIXP {
		traj.append(e.cfg.Sink, Event{
			AtHours: at, Kind: "congestion_clear", IXP: int(id),
			Value: rep.IXPLoad[id].Utilization(),
		})
	}
	clearedTr := make([]inet.ASN, 0)
	for as := range prevTr {
		if !curTr[as] {
			clearedTr = append(clearedTr, as)
		}
	}
	sort.Slice(clearedTr, func(i, j int) bool { return clearedTr[i] < clearedTr[j] })
	for _, as := range clearedTr {
		traj.append(e.cfg.Sink, Event{
			AtHours: at, Kind: "congestion_clear", Transit: uint32(as),
			Value: rep.TransitLoad[as].Utilization(),
		})
	}
	for id := range prevIXP {
		delete(prevIXP, id)
	}
	for id := range curIXP {
		prevIXP[id] = true
	}
	for as := range prevTr {
		delete(prevTr, as)
	}
	for as := range curTr {
		prevTr[as] = true
	}
	return onsets
}

func (e *Engine) scheduleName() string {
	if e.sched == nil {
		return ""
	}
	return e.sched.Name
}
