package temporal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"offnetrisk/internal/capacity"
	"offnetrisk/internal/cascade"
	"offnetrisk/internal/obs"
)

// Event is one line of a trajectory: the shared clock time, a dense
// sequence number (the deterministic tiebreak), the event kind, and the
// kind-specific payload. Events are what the digest hashes and what the
// -events stream carries, so the struct marshals canonically: field order
// is fixed and unset fields are omitted.
type Event struct {
	AtHours float64 `json:"at_hours"`
	Seq     int     `json:"seq"`
	// Kind is "tick", "demand_step_start"/"_end",
	// "facility_failure_start"/"_end", "capacity_cut_start"/"_end",
	// "isolation_on"/"isolation_off", "congestion_onset",
	// "congestion_clear", or "flows".
	Kind     string     `json:"kind"`
	Hour     int        `json:"hour,omitempty"`
	HG       string     `json:"hg,omitempty"`
	ISP      uint32     `json:"isp,omitempty"`
	Facility int        `json:"facility,omitempty"`
	IXP      int        `json:"ixp,omitempty"`
	Transit  uint32     `json:"transit,omitempty"`
	Layer    string     `json:"layer,omitempty"`
	Value    float64    `json:"value,omitempty"`
	Agg      *Aggregate `json:"agg,omitempty"`
}

// Aggregate sums one step's serving split and congestion outcome. Unserved
// is identically zero in this serving model — transit is the unbounded
// spill sink, so no demand is dropped; what reality would shed shows up as
// OverloadGbps on congested shared links instead. The field stays in the
// schema (and in the conservation identity the property suite checks) so a
// future clipping serving mode slots in without a digest-schema change.
type Aggregate struct {
	Demand         float64 `json:"demand"`
	Offnet         float64 `json:"offnet"`
	PNI            float64 `json:"pni"`
	IXP            float64 `json:"ixp"`
	UpstreamOffnet float64 `json:"upstream_offnet"`
	Transit        float64 `json:"transit"`
	Unserved       float64 `json:"unserved"`
	OverloadGbps   float64 `json:"overload_gbps"`

	CongestedIXPs          int  `json:"congested_ixps"`
	CongestedTransits      int  `json:"congested_transits"`
	DirectISPs             int  `json:"direct_isps"`
	CollateralISPs         int  `json:"collateral_isps"`
	IsolatedCollateralISPs int  `json:"isolated_collateral_isps,omitempty"`
	Burst                  bool `json:"burst,omitempty"`
	Isolated               bool `json:"isolated,omitempty"`
}

// Step is one evaluation of the world at an event timestamp, with the full
// serving split and cascade report retained for tests and reporting (only
// the Aggregate reaches the digest).
type Step struct {
	AtHours   float64
	Hour      int
	Burst     bool
	Isolated  bool
	Flows     []capacity.Flow
	Report    *cascade.Report
	IsoReport *cascade.IsolatedReport
	Agg       Aggregate
}

// Trajectory is one engine run: every event in (timestamp, seq) order plus
// one Step per evaluated instant.
type Trajectory struct {
	Hours        int
	ScheduleName string
	Events       []Event
	Steps        []Step
}

// append stamps the event's sequence number, records it, and mirrors it on
// the live event stream when one is attached.
func (t *Trajectory) append(sink *obs.EventSink, ev Event) {
	ev.Seq = len(t.Events)
	t.Events = append(t.Events, ev)
	sink.Emit(obs.Event{Type: "temporal", Attrs: map[string]any{"event": ev}})
}

// Digest returns the canonical SHA-256 of the trajectory: each event
// JSON-marshaled on its own line, in order. Go's float formatting is the
// shortest round-trip representation, so identical float values — which the
// determinism contract guarantees across -workers/-shards — give identical
// bytes.
func (t *Trajectory) Digest() string {
	h := sha256.New()
	for _, ev := range t.Events {
		b, err := json.Marshal(ev)
		if err != nil {
			// Event is a plain data struct; Marshal cannot fail on it.
			panic(fmt.Sprintf("temporal: marshal event: %v", err))
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// buildStep assembles one Step and its digest-facing aggregate.
func buildStep(at float64, hour int, burst, isolated bool, flows []capacity.Flow, rep *cascade.Report, iso *cascade.IsolatedReport) Step {
	st := Step{
		AtHours: at, Hour: hour, Burst: burst, Isolated: isolated,
		Flows: flows, Report: rep, IsoReport: iso,
	}
	for _, f := range flows {
		st.Agg.Demand += f.Demand
		st.Agg.Offnet += f.Offnet
		st.Agg.PNI += f.PNI
		st.Agg.IXP += f.IXP
		st.Agg.UpstreamOffnet += f.UpstreamOffnet
		st.Agg.Transit += f.Transit
	}
	// Sum overload in sorted link order: float accumulation order must not
	// depend on map iteration or the digest loses byte-identity.
	congIXPs := rep.CongestedIXPs()
	congTrs := rep.CongestedTransits()
	for _, id := range congIXPs {
		l := rep.IXPLoad[id]
		st.Agg.OverloadGbps += l.LoadGbps - l.CapacityGbps
	}
	for _, as := range congTrs {
		l := rep.TransitLoad[as]
		st.Agg.OverloadGbps += l.LoadGbps - l.CapacityGbps
	}
	st.Agg.CongestedIXPs = len(congIXPs)
	st.Agg.CongestedTransits = len(congTrs)
	st.Agg.DirectISPs = len(rep.DirectISPs)
	st.Agg.CollateralISPs = len(rep.CollateralISPs)
	st.Agg.Burst = burst
	st.Agg.Isolated = isolated
	if iso != nil {
		st.Agg.IsolatedCollateralISPs = len(iso.IsolatedCollateralISPs)
	}
	return st
}

// Summary renders the trajectory for reports: horizon, event totals,
// congestion episodes, peak blast radius, digest. Deterministic — no
// wall-clock state reaches it.
func (t *Trajectory) Summary() string {
	var b strings.Builder
	onsets, clears := 0, 0
	for _, ev := range t.Events {
		switch ev.Kind {
		case "congestion_onset":
			onsets++
		case "congestion_clear":
			clears++
		}
	}
	peakLinks, peakLinksAt := 0, 0.0
	peakColl, peakCollAt := 0, 0.0
	maxDirect, maxIsoColl := 0, 0
	for _, st := range t.Steps {
		if n := st.Agg.CongestedIXPs + st.Agg.CongestedTransits; n > peakLinks {
			peakLinks, peakLinksAt = n, st.AtHours
		}
		if st.Agg.CollateralISPs > peakColl {
			peakColl, peakCollAt = st.Agg.CollateralISPs, st.AtHours
		}
		if st.Agg.DirectISPs > maxDirect {
			maxDirect = st.Agg.DirectISPs
		}
		if st.Agg.IsolatedCollateralISPs > maxIsoColl {
			maxIsoColl = st.Agg.IsolatedCollateralISPs
		}
	}
	name := t.ScheduleName
	if name == "" {
		name = "(steady state)"
	}
	fmt.Fprintf(&b, "temporal replay %s: %dh horizon, %d steps, %d events\n",
		name, t.Hours, len(t.Steps), len(t.Events))
	fmt.Fprintf(&b, "  congestion: %d onsets / %d clears; peak %d congested links at t=%gh\n",
		onsets, clears, peakLinks, peakLinksAt)
	fmt.Fprintf(&b, "  blast radius: peak %d collateral ISPs at t=%gh (max direct %d, max isolated collateral %d)\n",
		peakColl, peakCollAt, maxDirect, maxIsoColl)
	fmt.Fprintf(&b, "  trajectory digest %s", t.Digest())
	return b.String()
}
