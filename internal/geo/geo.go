// Package geo provides geographic primitives used throughout the
// reproduction: coordinates, great-circle distances, and speed-of-light
// round-trip-time bounds.
//
// The paper's colocation pipeline (Appendix A) discards latency samples that
// "could not possibly have come from a single destination (based on latencies
// from known M-Lab geolocations and the speed of light)"; MinRTT implements
// that physical bound. Distances feed the synthetic M-Lab latency model.
package geo

import (
	"fmt"
	"math"
	"time"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// FiberSpeedKmPerMs is the propagation speed of light in fiber, roughly 2/3
// of c, expressed in kilometres per millisecond. Real paths are longer than
// great circles, so RTT models add a path-stretch factor on top.
const FiberSpeedKmPerMs = 200.0

// VacuumSpeedKmPerMs is the speed of light in vacuum in km/ms. The paper's
// impossibility filter must use the vacuum speed: no measurement may beat it
// regardless of medium.
const VacuumSpeedKmPerMs = 299.792458

// Point is a location on the Earth's surface.
type Point struct {
	LatDeg float64
	LonDeg float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.4f,%.4f)", p.LatDeg, p.LonDeg)
}

// Valid reports whether the point lies within the conventional latitude and
// longitude ranges.
func (p Point) Valid() bool {
	return p.LatDeg >= -90 && p.LatDeg <= 90 && p.LonDeg >= -180 && p.LonDeg <= 180
}

// DistanceKm returns the great-circle distance between two points using the
// haversine formula.
func DistanceKm(a, b Point) float64 {
	lat1 := a.LatDeg * math.Pi / 180
	lat2 := b.LatDeg * math.Pi / 180
	dLat := (b.LatDeg - a.LatDeg) * math.Pi / 180
	dLon := (b.LonDeg - a.LonDeg) * math.Pi / 180

	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp against floating error before Asin.
	if s > 1 {
		s = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(s))
}

// MinRTT returns the physically minimal round-trip time between two points:
// the great-circle distance travelled twice at the speed of light in vacuum.
// Any measured RTT below this is impossible and indicates the probed address
// is not where it is assumed to be (or is served by multiple destinations).
func MinRTT(a, b Point) time.Duration {
	km := DistanceKm(a, b)
	ms := 2 * km / VacuumSpeedKmPerMs
	return time.Duration(ms * float64(time.Millisecond))
}

// FiberRTT returns the idealized round-trip time over fiber along the great
// circle with the given multiplicative path stretch (>= 1). It is the base of
// the synthetic latency model; jitter and last-mile terms are added by the
// measurement simulator.
func FiberRTT(a, b Point, stretch float64) time.Duration {
	if stretch < 1 {
		stretch = 1
	}
	km := DistanceKm(a, b) * stretch
	ms := 2 * km / FiberSpeedKmPerMs
	return time.Duration(ms * float64(time.Millisecond))
}

// Metro is a named metropolitan area: a city with an IATA-style code, the
// granularity at which the paper's clustering validation operates ("55
// clusters only included hostnames from a single city").
type Metro struct {
	Code    string // IATA-style three-letter code, lower case (e.g. "han")
	City    string
	Country string // ISO 3166-1 alpha-2
	Loc     Point
}

// String implements fmt.Stringer.
func (m Metro) String() string {
	return fmt.Sprintf("%s/%s,%s", m.Code, m.City, m.Country)
}
