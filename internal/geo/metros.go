package geo

// Metros is a catalogue of world metropolitan areas used to place ISPs,
// facilities, IXPs, and vantage points. Codes follow the airport-code style
// the paper observes in Meta offnet hostnames (fhan14-4.fna.fbcdn.net → han,
// Hanoi) and in router PTR naming. Coordinates are approximate city centres.
//
// The set deliberately spans the countries the paper calls out in Figure 1c
// (Mexico, Bolivia, Uruguay, New Zealand, Mongolia, Greenland) plus a broad
// mix across continents so the per-country aggregation in Figure 1 has
// realistic variance.
var Metros = []Metro{
	// North America
	{"nyc", "New York", "US", Point{40.71, -74.01}},
	{"lax", "Los Angeles", "US", Point{34.05, -118.24}},
	{"chi", "Chicago", "US", Point{41.88, -87.63}},
	{"dfw", "Dallas", "US", Point{32.78, -96.80}},
	{"sea", "Seattle", "US", Point{47.61, -122.33}},
	{"mia", "Miami", "US", Point{25.76, -80.19}},
	{"atl", "Atlanta", "US", Point{33.75, -84.39}},
	{"den", "Denver", "US", Point{39.74, -104.99}},
	{"yyz", "Toronto", "CA", Point{43.65, -79.38}},
	{"yvr", "Vancouver", "CA", Point{49.28, -123.12}},
	{"mex", "Mexico City", "MX", Point{19.43, -99.13}},
	{"gdl", "Guadalajara", "MX", Point{20.67, -103.35}},
	{"mty", "Monterrey", "MX", Point{25.69, -100.32}},
	// South America
	{"gru", "Sao Paulo", "BR", Point{-23.55, -46.63}},
	{"gig", "Rio de Janeiro", "BR", Point{-22.91, -43.17}},
	{"eze", "Buenos Aires", "AR", Point{-34.60, -58.38}},
	{"scl", "Santiago", "CL", Point{-33.45, -70.67}},
	{"bog", "Bogota", "CO", Point{4.71, -74.07}},
	{"lim", "Lima", "PE", Point{-12.05, -77.04}},
	{"lpb", "La Paz", "BO", Point{-16.50, -68.15}},
	{"vvi", "Santa Cruz", "BO", Point{-17.78, -63.18}},
	{"mvd", "Montevideo", "UY", Point{-34.90, -56.16}},
	// Europe
	{"lhr", "London", "GB", Point{51.51, -0.13}},
	{"ltn", "Luton", "GB", Point{51.88, -0.42}},
	{"bhx", "Birmingham", "GB", Point{52.49, -1.89}},
	{"cdg", "Paris", "FR", Point{48.86, 2.35}},
	{"ory", "Orly", "FR", Point{48.74, 2.38}},
	{"mrs", "Marseille", "FR", Point{43.30, 5.37}},
	{"fra", "Frankfurt", "DE", Point{50.11, 8.68}},
	{"ber", "Berlin", "DE", Point{52.52, 13.40}},
	{"muc", "Munich", "DE", Point{48.14, 11.58}},
	{"ams", "Amsterdam", "NL", Point{52.37, 4.90}},
	{"mad", "Madrid", "ES", Point{40.42, -3.70}},
	{"bcn", "Barcelona", "ES", Point{41.39, 2.17}},
	{"mxp", "Milan", "IT", Point{45.46, 9.19}},
	{"fco", "Rome", "IT", Point{41.90, 12.50}},
	{"waw", "Warsaw", "PL", Point{52.23, 21.01}},
	{"prg", "Prague", "CZ", Point{50.08, 14.44}},
	{"vie", "Vienna", "AT", Point{48.21, 16.37}},
	{"sto", "Stockholm", "SE", Point{59.33, 18.07}},
	{"osl", "Oslo", "NO", Point{59.91, 10.75}},
	{"hel", "Helsinki", "FI", Point{60.17, 24.94}},
	{"kbp", "Kyiv", "UA", Point{50.45, 30.52}},
	{"otp", "Bucharest", "RO", Point{44.43, 26.10}},
	{"sof", "Sofia", "BG", Point{42.70, 23.32}},
	{"ath", "Athens", "GR", Point{37.98, 23.73}},
	{"lis", "Lisbon", "PT", Point{38.72, -9.14}},
	{"dub", "Dublin", "IE", Point{53.35, -6.26}},
	{"zrh", "Zurich", "CH", Point{47.37, 8.54}},
	{"bud", "Budapest", "HU", Point{47.50, 19.04}},
	// Africa
	{"jnb", "Johannesburg", "ZA", Point{-26.20, 28.05}},
	{"cpt", "Cape Town", "ZA", Point{-33.92, 18.42}},
	{"los", "Lagos", "NG", Point{6.52, 3.38}},
	{"abv", "Abuja", "NG", Point{9.06, 7.50}},
	{"nbo", "Nairobi", "KE", Point{-1.29, 36.82}},
	{"cai", "Cairo", "EG", Point{30.04, 31.24}},
	{"cmn", "Casablanca", "MA", Point{33.57, -7.59}},
	{"acc", "Accra", "GH", Point{5.60, -0.19}},
	{"dar", "Dar es Salaam", "TZ", Point{-6.79, 39.21}},
	{"tun", "Tunis", "TN", Point{36.81, 10.18}},
	// Middle East
	{"dxb", "Dubai", "AE", Point{25.20, 55.27}},
	{"ruh", "Riyadh", "SA", Point{24.71, 46.68}},
	{"tlv", "Tel Aviv", "IL", Point{32.09, 34.78}},
	{"ist", "Istanbul", "TR", Point{41.01, 28.98}},
	{"amm", "Amman", "JO", Point{31.95, 35.93}},
	// Asia
	{"bom", "Mumbai", "IN", Point{19.08, 72.88}},
	{"del", "Delhi", "IN", Point{28.70, 77.10}},
	{"maa", "Chennai", "IN", Point{13.08, 80.27}},
	{"blr", "Bangalore", "IN", Point{12.97, 77.59}},
	{"sin", "Singapore", "SG", Point{1.35, 103.82}},
	{"kul", "Kuala Lumpur", "MY", Point{3.14, 101.69}},
	{"cgk", "Jakarta", "ID", Point{-6.21, 106.85}},
	{"sub", "Surabaya", "ID", Point{-7.26, 112.75}},
	{"bkk", "Bangkok", "TH", Point{13.76, 100.50}},
	{"han", "Hanoi", "VN", Point{21.03, 105.85}},
	{"sgn", "Ho Chi Minh City", "VN", Point{10.82, 106.63}},
	{"mnl", "Manila", "PH", Point{14.60, 120.98}},
	{"hkg", "Hong Kong", "HK", Point{22.32, 114.17}},
	{"tpe", "Taipei", "TW", Point{25.03, 121.57}},
	{"icn", "Seoul", "KR", Point{37.57, 126.98}},
	{"nrt", "Tokyo", "JP", Point{35.68, 139.69}},
	{"kix", "Osaka", "JP", Point{34.69, 135.50}},
	{"pek", "Beijing", "CN", Point{39.90, 116.41}},
	{"pvg", "Shanghai", "CN", Point{31.23, 121.47}},
	{"dac", "Dhaka", "BD", Point{23.81, 90.41}},
	{"khi", "Karachi", "PK", Point{24.86, 67.01}},
	{"cmb", "Colombo", "LK", Point{6.93, 79.86}},
	{"ktm", "Kathmandu", "NP", Point{27.72, 85.32}},
	{"uln", "Ulaanbaatar", "MN", Point{47.89, 106.91}},
	// Oceania
	{"syd", "Sydney", "AU", Point{-33.87, 151.21}},
	{"mel", "Melbourne", "AU", Point{-37.81, 144.96}},
	{"per", "Perth", "AU", Point{-31.95, 115.86}},
	{"akl", "Auckland", "NZ", Point{-36.85, 174.76}},
	{"wlg", "Wellington", "NZ", Point{-41.29, 174.78}},
	{"chc", "Christchurch", "NZ", Point{-43.53, 172.64}},
	// Extreme / Figure 1c call-outs
	{"goh", "Nuuk", "GL", Point{64.18, -51.69}},
	{"rkv", "Reykjavik", "IS", Point{64.15, -21.94}},
	{"svo", "Moscow", "RU", Point{55.76, 37.62}},
	{"led", "St Petersburg", "RU", Point{59.93, 30.34}},
}

// MetroByCode returns the metro with the given code, or false when unknown.
func MetroByCode(code string) (Metro, bool) {
	for _, m := range Metros {
		if m.Code == code {
			return m, true
		}
	}
	return Metro{}, false
}

// Countries returns the sorted-unique set of country codes present in the
// metro catalogue.
func Countries() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range Metros {
		if !seen[m.Country] {
			seen[m.Country] = true
			out = append(out, m.Country)
		}
	}
	return out
}

// MetrosIn returns all metros in the given country, in catalogue order.
func MetrosIn(country string) []Metro {
	var out []Metro
	for _, m := range Metros {
		if m.Country == country {
			out = append(out, m)
		}
	}
	return out
}
