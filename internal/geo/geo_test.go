package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDistanceKnownPairs(t *testing.T) {
	lhr, _ := MetroByCode("lhr")
	nyc, _ := MetroByCode("nyc")
	cdg, _ := MetroByCode("cdg")
	syd, _ := MetroByCode("syd")

	cases := []struct {
		name     string
		a, b     Point
		wantKm   float64
		tolerate float64
	}{
		{"london-newyork", lhr.Loc, nyc.Loc, 5570, 100},
		{"london-paris", lhr.Loc, cdg.Loc, 344, 30},
		{"london-sydney", lhr.Loc, syd.Loc, 16990, 200},
		{"same-point", nyc.Loc, nyc.Loc, 0, 1e-9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DistanceKm(tc.a, tc.b)
			if math.Abs(got-tc.wantKm) > tc.tolerate {
				t.Errorf("DistanceKm = %.1f, want %.1f ± %.1f", got, tc.wantKm, tc.tolerate)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		c := Point{clampLat(lat3), clampLon(lon3)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceBounds(t *testing.T) {
	// No two points on Earth can be farther apart than half the circumference.
	maxD := math.Pi * EarthRadiusKm
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d := DistanceKm(a, b)
		return d >= 0 && d <= maxD+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinRTTBelowFiberRTT(t *testing.T) {
	// The physical lower bound must never exceed the fiber model for the
	// same pair: otherwise the impossibility filter would reject its own
	// synthetic measurements.
	for _, a := range Metros[:20] {
		for _, b := range Metros[:20] {
			min := MinRTT(a.Loc, b.Loc)
			fiber := FiberRTT(a.Loc, b.Loc, 1.0)
			if min > fiber {
				t.Fatalf("MinRTT(%s,%s)=%v > FiberRTT=%v", a.Code, b.Code, min, fiber)
			}
		}
	}
}

func TestFiberRTTStretchClamp(t *testing.T) {
	lhr, _ := MetroByCode("lhr")
	nyc, _ := MetroByCode("nyc")
	base := FiberRTT(lhr.Loc, nyc.Loc, 1.0)
	clamped := FiberRTT(lhr.Loc, nyc.Loc, 0.5)
	if clamped != base {
		t.Errorf("stretch < 1 should clamp to 1: got %v want %v", clamped, base)
	}
	stretched := FiberRTT(lhr.Loc, nyc.Loc, 2.0)
	if stretched <= base {
		t.Errorf("stretch 2.0 should exceed base: %v <= %v", stretched, base)
	}
}

func TestMinRTTKnownMagnitude(t *testing.T) {
	lhr, _ := MetroByCode("lhr")
	nyc, _ := MetroByCode("nyc")
	// ~5570 km * 2 / 299.79 km/ms ≈ 37 ms.
	got := MinRTT(lhr.Loc, nyc.Loc)
	if got < 30*time.Millisecond || got > 45*time.Millisecond {
		t.Errorf("MinRTT(LHR,NYC) = %v, want ≈37ms", got)
	}
}

func TestMetroCatalogue(t *testing.T) {
	codes := make(map[string]bool)
	for _, m := range Metros {
		if len(m.Code) != 3 {
			t.Errorf("metro %q: code must be 3 letters", m.Code)
		}
		if codes[m.Code] {
			t.Errorf("duplicate metro code %q", m.Code)
		}
		codes[m.Code] = true
		if !m.Loc.Valid() {
			t.Errorf("metro %q: invalid location %v", m.Code, m.Loc)
		}
		if len(m.Country) != 2 {
			t.Errorf("metro %q: country %q not ISO alpha-2", m.Code, m.Country)
		}
	}
	if len(Metros) < 80 {
		t.Errorf("catalogue too small: %d metros", len(Metros))
	}
}

func TestMetroByCode(t *testing.T) {
	m, ok := MetroByCode("han")
	if !ok || m.City != "Hanoi" || m.Country != "VN" {
		t.Errorf("MetroByCode(han) = %+v, %v", m, ok)
	}
	if _, ok := MetroByCode("zzz"); ok {
		t.Error("MetroByCode(zzz) should not exist")
	}
}

func TestFigure1cCountriesPresent(t *testing.T) {
	// Figure 1c highlights these countries; the synthetic world must be able
	// to place infrastructure there.
	for _, cc := range []string{"MX", "BO", "UY", "NZ", "MN", "GL"} {
		if len(MetrosIn(cc)) == 0 {
			t.Errorf("no metros in Figure 1c country %s", cc)
		}
	}
}

func TestCountriesUniqueSorted(t *testing.T) {
	cs := Countries()
	seen := make(map[string]bool)
	for _, c := range cs {
		if seen[c] {
			t.Errorf("duplicate country %s", c)
		}
		seen[c] = true
	}
	if len(cs) < 40 {
		t.Errorf("too few countries: %d", len(cs))
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{-91, 0}, false},
	}
	for _, tc := range cases {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("Valid(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 180) - 90 }
func clampLon(v float64) float64 { return math.Mod(math.Abs(v), 360) - 180 }
