package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"offnetrisk/internal/traffic"
)

// TestRegistryResolved: every registry entry is fully resolved and valid —
// the contract every consumer relies on.
func TestRegistryResolved(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("registry has %d scenarios, want >= 4: %v", len(names), names)
	}
	for _, name := range names {
		sp, ok := Lookup(name)
		if !ok {
			t.Fatalf("Names() lists %q but Lookup misses it", name)
		}
		if sp.Name != name {
			t.Errorf("scenario registered as %q names itself %q", name, sp.Name)
		}
		if sp.Description == "" {
			t.Errorf("scenario %q has no description", name)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("scenario %q fails validation: %v", name, err)
		}
	}
}

// TestRegistryNameUniqueness: Names is sorted and duplicate-free, and the
// content hashes distinguish every scenario from every other.
func TestRegistryNameUniqueness(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	hashes := map[string]string{}
	for i, name := range names {
		if i > 0 && names[i-1] >= name {
			t.Errorf("Names() not strictly sorted: %q before %q", names[i-1], name)
		}
		if seen[name] {
			t.Errorf("duplicate scenario name %q", name)
		}
		seen[name] = true
		h := MustLookup(name).Hash()
		if h == "" {
			t.Fatalf("scenario %q has empty hash", name)
		}
		if prev, dup := hashes[h]; dup {
			t.Errorf("scenarios %q and %q share content hash %s", prev, name, h)
		}
		hashes[h] = name
	}
}

// TestLookupIsolation: mutating a Lookup result must not leak into the
// registry.
func TestLookupIsolation(t *testing.T) {
	a := MustLookup(DefaultName)
	a.Traffic.Shares["google"] = 0.99
	a.Deployment.Hypergiants["google"] = HGProfile{}
	b := MustLookup(DefaultName)
	if b.Traffic.Shares["google"] == 0.99 {
		t.Fatal("mutating a looked-up spec's traffic map corrupted the registry")
	}
	if b.Deployment.Hypergiants["google"] == (HGProfile{}) {
		t.Fatal("mutating a looked-up spec's hypergiant map corrupted the registry")
	}
}

// TestRoundTrip: canonical serialization parses back to an identical spec
// with an identical hash, for every registry scenario.
func TestRoundTrip(t *testing.T) {
	for _, name := range Names() {
		sp := MustLookup(name)
		data, err := sp.Canonical()
		if err != nil {
			t.Fatalf("%s: Canonical: %v", name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: re-parse of canonical form failed: %v", name, err)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Errorf("%s: round-trip changed the spec:\nbefore: %+v\nafter:  %+v", name, sp, back)
		}
		if sp.Hash() != back.Hash() {
			t.Errorf("%s: round-trip changed the hash %s -> %s", name, sp.Hash(), back.Hash())
		}
	}
}

// TestHashStability: the hash is a pure function of content — identical
// across calls, different once content moves.
func TestHashStability(t *testing.T) {
	a, b := MustLookup(DefaultName), MustLookup(DefaultName)
	if a.Hash() != b.Hash() {
		t.Fatal("two lookups of the same scenario hash differently")
	}
	b.Measurement.PingSites++
	if a.Hash() == b.Hash() {
		t.Fatal("editing a spec did not change its hash")
	}
}

// TestShardedTopologyField: the sharded flag is part of the hashed world
// definition, but its omitempty encoding keeps every pre-existing spec's
// canonical form — and therefore the committed golden hashes — unchanged.
func TestShardedTopologyField(t *testing.T) {
	def, err := MustLookup(DefaultName).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(def), `"sharded"`) {
		t.Fatal("default canonical form mentions sharded: existing scenario hashes would drift")
	}

	huge := MustLookup("huge")
	if !huge.Topology.Sharded {
		t.Fatal("huge scenario is not sharded")
	}
	hc, err := huge.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(hc), `"sharded": true`) {
		t.Fatalf("huge canonical form does not pin the sharded builder: %s", hc)
	}

	patched, err := Parse([]byte(`{"version": 1, "topology": {"sharded": true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !patched.Topology.Sharded {
		t.Fatal("sharded patch ignored")
	}
	if patched.Hash() == MustLookup(DefaultName).Hash() {
		t.Fatal("flipping sharded did not change the spec hash")
	}
}

func TestParseRejectsUnknownKeys(t *testing.T) {
	cases := map[string]string{
		"top-level": `{"version": 1, "warp_drive": true}`,
		"nested":    `{"version": 1, "topology": {"access_isps": 10, "atlantis": 1}}`,
		"hg":        `{"version": 1, "deployment": {"hypergiants": {"google": {"coverage_2099": 1}}}}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s unknown key accepted", label)
		}
	}
}

func TestParseRejectsBadVersion(t *testing.T) {
	if _, err := Parse([]byte(`{"name": "x"}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("missing version accepted (err: %v)", err)
	}
	if _, err := Parse([]byte(`{"version": 2}`)); err == nil || !strings.Contains(err.Error(), "version 2") {
		t.Errorf("future version accepted (err: %v)", err)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	if _, err := Parse([]byte(`{"version": 1} {"version": 1}`)); err == nil {
		t.Error("trailing document accepted")
	}
}

func TestParseRejectsUnknownBase(t *testing.T) {
	if _, err := Parse([]byte(`{"version": 1, "base": "atlantis"}`)); err == nil {
		t.Error("unknown base scenario accepted")
	}
}

// TestParseMergesOverBase: omitted fields inherit the base; stated fields —
// including explicit zeros — override it.
func TestParseMergesOverBase(t *testing.T) {
	sp, err := Parse([]byte(`{
		"version": 1,
		"name": "lossless-tiny",
		"base": "tiny",
		"measurement": {"probe_loss": 0},
		"traffic": {"shares": {"netflix": 0.2}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	tiny := MustLookup("tiny")
	if sp.Name != "lossless-tiny" {
		t.Errorf("name = %q, want lossless-tiny", sp.Name)
	}
	if sp.Topology != tiny.Topology {
		t.Errorf("topology not inherited from tiny base: %+v", sp.Topology)
	}
	if sp.Measurement.ProbeLoss != 0 {
		t.Errorf("explicit zero probe_loss not applied, got %g", sp.Measurement.ProbeLoss)
	}
	if sp.Measurement.PingSites != tiny.Measurement.PingSites {
		t.Errorf("omitted ping_sites not inherited, got %d", sp.Measurement.PingSites)
	}
	if sp.Traffic.Shares["netflix"] != 0.2 {
		t.Errorf("stated share not applied, got %g", sp.Traffic.Shares["netflix"])
	}
	if want := tiny.Traffic.Shares["google"]; sp.Traffic.Shares["google"] != want {
		t.Errorf("omitted share not inherited, got %g want %g", sp.Traffic.Shares["google"], want)
	}
}

func TestParseRejectsInvalidResolvedSpec(t *testing.T) {
	cases := map[string]string{
		"share sum":  `{"version": 1, "traffic": {"shares": {"google": 0.5, "netflix": 0.3, "meta": 0.2, "akamai": 0.1}}}`,
		"coverage":   `{"version": 1, "deployment": {"hypergiants": {"google": {"coverage_2023": 1.5}}}}`,
		"chaos":      `{"version": 1, "chaos": {"profile": "apocalypse"}}`,
		"zipf":       `{"version": 1, "topology": {"zipf_exponent": -1}}`,
		"pni scale":  `{"version": 1, "deployment": {"pni_capacity_scale": 0}}`,
		"hg unknown": `{"version": 1, "traffic": {"shares": {"cloudflare": 0.1}}}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: invalid spec accepted", label)
		}
	}
}

// TestResolve: registry names resolve in place, paths resolve through the
// parser, everything else is a helpful error.
func TestResolve(t *testing.T) {
	sp, err := Resolve("open-connect-everywhere")
	if err != nil || sp.Name != "open-connect-everywhere" {
		t.Fatalf("registry name resolution failed: %v", err)
	}

	path := filepath.Join(t.TempDir(), "custom.json")
	if err := os.WriteFile(path, []byte(`{"version": 1, "name": "custom", "base": "tiny"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err = Resolve(path)
	if err != nil {
		t.Fatalf("file resolution failed: %v", err)
	}
	if sp.Name != "custom" || sp.Topology != MustLookup("tiny").Topology {
		t.Errorf("file spec resolved wrong: %+v", sp)
	}

	if _, err := Resolve("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown name error unhelpful: %v", err)
	}
	if _, err := Resolve(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestDefaultMatchesConstants: the default scenario reproduces the
// compiled-in traffic constants bit for bit — the byte-compatibility anchor
// for every defaulted pipeline.
func TestDefaultMatchesConstants(t *testing.T) {
	sp := Default()
	mix := sp.Mix()
	want := traffic.DefaultMix()
	if mix != want {
		t.Fatalf("default scenario mix %+v differs from traffic.DefaultMix %+v", mix, want)
	}
	for _, h := range traffic.All {
		if got := mix.SteadyInterdomainShare(h); got != h.SteadyInterdomainShare() {
			t.Errorf("%s steady interdomain share %v != constant %v", h, got, h.SteadyInterdomainShare())
		}
		if got := mix.FacilityShare(h); got != h.FacilityShare() {
			t.Errorf("%s facility share %v != constant %v", h, got, h.FacilityShare())
		}
	}
	if mix.CombinedFacilityShare(traffic.All) != traffic.CombinedFacilityShare(traffic.All) {
		t.Error("combined facility share differs from the constant-based computation")
	}
}
