package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"offnetrisk/internal/traffic"
)

// Event schedules are the declarative "what happens over the day" companion
// to scenario specs: a versioned, strictly-parsed list of timed disturbances
// (demand steps, facility failures, capacity cuts, isolation toggles) that
// the discrete-event engine in internal/temporal replays against the diurnal
// demand curve. PR 7 deferred this section to the temporal engine; it lives
// here so schedules share the spec layer's parsing discipline — unknown
// keys, wrong versions, out-of-range values, and overlapping windows are all
// errors, never silent reinterpretations.

// ScheduleVersion is the schedule schema version this build reads.
const ScheduleVersion = 1

// maxScheduleHours bounds event timestamps and durations to one simulated
// year; anything later is almost certainly a units mistake.
const maxScheduleHours = 8760

// maxScheduleEvents bounds a schedule document's event count.
const maxScheduleEvents = 4096

// Schedule is one parsed, validated event schedule.
type Schedule struct {
	Version     int          `json:"version"`
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Events      []TimedEvent `json:"events"`
}

// TimedEvent is one scheduled disturbance: a window [at, at+duration) and
// exactly one action. A zero (or omitted) duration means "until the end of
// the run" for window actions; isolation toggles are instants and reject a
// duration outright.
type TimedEvent struct {
	AtHours       float64 `json:"at_hours"`
	DurationHours float64 `json:"duration_hours,omitempty"`

	DemandStep      *DemandStep      `json:"demand_step,omitempty"`
	FacilityFailure *FacilityFailure `json:"facility_failure,omitempty"`
	CapacityCut     *CapacityCut     `json:"capacity_cut,omitempty"`
	Isolation       *IsolationToggle `json:"isolation,omitempty"`
}

// DemandStep multiplies demand during the window — the flash-crowd /
// bad-software-update shape of §4.1.
type DemandStep struct {
	// HG is the lowercase hypergiant the step applies to; "" means all four.
	HG string `json:"hg,omitempty"`
	// Multiplier scales the hypergiant's demand for the window's duration.
	Multiplier float64 `json:"multiplier"`
}

// FacilityFailure darkens one colocation facility for the window — the
// §3.3/§4.3 correlated-failure scenario.
type FacilityFailure struct {
	Facility int `json:"facility"`
}

// CapacityCut removes a fraction of one serving layer's capacity for the
// window (a PNI port dies, an offnet rack is drained, an IXP LAG degrades).
type CapacityCut struct {
	// Layer is "offnet", "pni" or "ixp".
	Layer string `json:"layer"`
	// HG is the lowercase hypergiant the cut applies to; "" means all four.
	HG string `json:"hg,omitempty"`
	// ISP restricts the cut to one access network; 0 means every ISP.
	ISP uint32 `json:"isp,omitempty"`
	// CutFraction is the share of capacity removed, in (0, 1].
	CutFraction float64 `json:"cut_fraction"`
}

// IsolationToggle switches the §6 per-hypergiant capacity-slice mitigation
// on or off from this instant onward.
type IsolationToggle struct {
	Enabled bool `json:"enabled"`
}

// ScheduleLayers lists the capacity layers a cut may target.
var ScheduleLayers = []string{"offnet", "pni", "ixp"}

func validLayer(l string) bool {
	for _, v := range ScheduleLayers {
		if l == v {
			return true
		}
	}
	return false
}

// ParseSchedule reads a schedule file's bytes and validates the result.
// Unknown keys anywhere in the document, versions other than the one this
// build reads, out-of-range values, and overlapping same-target windows are
// errors.
func ParseSchedule(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse schedule: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse schedule: trailing data after the schedule document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSchedule reads and parses the schedule file at path.
func LoadSchedule(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read schedule file: %w", err)
	}
	return ParseSchedule(data)
}

// kind names the event's single action, or errors when the action count is
// not exactly one.
func (e *TimedEvent) kind() (string, error) {
	var kinds []string
	if e.DemandStep != nil {
		kinds = append(kinds, "demand_step")
	}
	if e.FacilityFailure != nil {
		kinds = append(kinds, "facility_failure")
	}
	if e.CapacityCut != nil {
		kinds = append(kinds, "capacity_cut")
	}
	if e.Isolation != nil {
		kinds = append(kinds, "isolation")
	}
	switch len(kinds) {
	case 0:
		return "", fmt.Errorf("no action (want exactly one of demand_step, facility_failure, capacity_cut, isolation)")
	case 1:
		return kinds[0], nil
	default:
		return "", fmt.Errorf("%d actions %v (want exactly one)", len(kinds), kinds)
	}
}

// window returns the half-open active window [at, end); end is +Inf for the
// open-ended zero-duration form.
func (e *TimedEvent) window() (start, end float64) {
	start = e.AtHours
	if e.DurationHours <= 0 {
		return start, math.Inf(1)
	}
	return start, start + e.DurationHours
}

// Validate checks schema version, per-event ranges, the one-action rule, and
// rejects overlapping windows that target the same object (two failures of
// one facility, two steps on one hypergiant, two cuts of one link, two
// isolation toggles at one instant). Adjacent half-open windows ([2,4) then
// [4,6)) are fine.
func (s *Schedule) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("schedule %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Version != ScheduleVersion {
		return bad("unsupported schedule version %d (this build reads version %d)", s.Version, ScheduleVersion)
	}
	if s.Name == "" {
		return bad("missing name")
	}
	if len(s.Events) > maxScheduleEvents {
		return bad("%d events exceeds the %d-event cap", len(s.Events), maxScheduleEvents)
	}
	for i := range s.Events {
		e := &s.Events[i]
		kind, err := e.kind()
		if err != nil {
			return bad("event %d: %v", i, err)
		}
		if math.IsNaN(e.AtHours) || e.AtHours < 0 || e.AtHours > maxScheduleHours {
			return bad("event %d: at_hours %g out of range [0, %d]", i, e.AtHours, maxScheduleHours)
		}
		if math.IsNaN(e.DurationHours) || e.DurationHours < 0 || e.DurationHours > maxScheduleHours {
			return bad("event %d: duration_hours %g out of range [0, %d]", i, e.DurationHours, maxScheduleHours)
		}
		switch kind {
		case "demand_step":
			d := e.DemandStep
			if d.HG != "" {
				if _, ok := traffic.ParseHG(d.HG); !ok {
					return bad("event %d: unknown hypergiant %q in demand_step", i, d.HG)
				}
			}
			if math.IsNaN(d.Multiplier) || d.Multiplier <= 0 || d.Multiplier > 100 {
				return bad("event %d: demand_step.multiplier %g out of range (0, 100]", i, d.Multiplier)
			}
		case "facility_failure":
			if e.FacilityFailure.Facility <= 0 {
				return bad("event %d: facility_failure.facility must be > 0, got %d", i, e.FacilityFailure.Facility)
			}
		case "capacity_cut":
			c := e.CapacityCut
			if !validLayer(c.Layer) {
				return bad("event %d: capacity_cut.layer %q (want one of %v)", i, c.Layer, ScheduleLayers)
			}
			if c.HG != "" {
				if _, ok := traffic.ParseHG(c.HG); !ok {
					return bad("event %d: unknown hypergiant %q in capacity_cut", i, c.HG)
				}
			}
			if math.IsNaN(c.CutFraction) || c.CutFraction <= 0 || c.CutFraction > 1 {
				return bad("event %d: capacity_cut.cut_fraction %g out of range (0, 1]", i, c.CutFraction)
			}
		case "isolation":
			if e.DurationHours != 0 {
				return bad("event %d: isolation is an instant toggle; duration_hours must be omitted", i)
			}
		}
	}
	for i := range s.Events {
		for j := i + 1; j < len(s.Events); j++ {
			if eventsCollide(&s.Events[i], &s.Events[j]) {
				return bad("events %d and %d overlap on the same target", i, j)
			}
		}
	}
	return nil
}

// eventsCollide reports whether two (individually valid) events target the
// same object with intersecting windows. Wildcards ("" hypergiant, 0 ISP)
// collide with everything they cover.
func eventsCollide(a, b *TimedEvent) bool {
	switch {
	case a.DemandStep != nil && b.DemandStep != nil:
		if !hgCollide(a.DemandStep.HG, b.DemandStep.HG) {
			return false
		}
	case a.FacilityFailure != nil && b.FacilityFailure != nil:
		if a.FacilityFailure.Facility != b.FacilityFailure.Facility {
			return false
		}
	case a.CapacityCut != nil && b.CapacityCut != nil:
		ac, bc := a.CapacityCut, b.CapacityCut
		if ac.Layer != bc.Layer || !hgCollide(ac.HG, bc.HG) {
			return false
		}
		if ac.ISP != 0 && bc.ISP != 0 && ac.ISP != bc.ISP {
			return false
		}
	case a.Isolation != nil && b.Isolation != nil:
		// Toggles are instants: only the same instant is ambiguous.
		return a.AtHours == b.AtHours
	default:
		return false
	}
	aStart, aEnd := a.window()
	bStart, bEnd := b.window()
	return aStart < bEnd && bStart < aEnd
}

func hgCollide(a, b string) bool {
	return a == "" || b == "" || a == b
}
