// Package scenario is the declarative "which world are we in" layer: a
// versioned spec that names everything the reproduction used to hard-code —
// topology scale, per-hypergiant deployment strategy, traffic mix,
// measurement-campaign parameters, and chaos profile — plus a compiled-in
// registry of named worlds grounded in related work (Netflix "Open Connect
// Everywhere" deep-ISP deployments, the Apple iOS-update flash crowd,
// multi-CDN/meta-CDN delivery, oblivious CDNs).
//
// A resolved Spec is the input contract of the whole pipeline: inet,
// hypergiant, the measurement packages and offnetrisk.Pipeline all derive
// their configs from one, the run manifest records its name and content
// hash, and every named scenario is golden-gated in CI. The `default`
// scenario reproduces the previously hard-coded constants bit for bit, so
// runs that never mention a scenario are byte-identical to the code this
// layer replaced.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"offnetrisk/internal/chaos"
	"offnetrisk/internal/traffic"
)

// Version is the spec schema version this build reads. Parse rejects
// anything else: version bumps are deliberate migrations, not silent
// reinterpretations.
const Version = 1

// Spec is one fully resolved scenario. Registry entries and Resolve results
// are always complete (every field set and validated); the JSON form is the
// canonical serialization the content hash is computed over.
type Spec struct {
	Version     int    `json:"version"`
	Name        string `json:"name"`
	Description string `json:"description"`

	Topology    Topology    `json:"topology"`
	Deployment  Deployment  `json:"deployment"`
	Traffic     Traffic     `json:"traffic"`
	Measurement Measurement `json:"measurement"`
	Chaos       Chaos       `json:"chaos"`
}

// Topology mirrors inet.Config: how large a synthetic Internet to build.
type Topology struct {
	AccessISPs      int     `json:"access_isps"`
	TransitISPs     int     `json:"transit_isps"`
	Backbones       int     `json:"backbones"`
	IXPs            int     `json:"ixps"`
	TotalUsers      float64 `json:"total_users"`
	ZipfExponent    float64 `json:"zipf_exponent"`
	UsersPerSlash24 float64 `json:"users_per_slash24"`
	// Sharded selects the shard-composed streaming world builder (the huge
	// tier's generator). Part of the world definition — flipping it changes
	// the world's bytes, so it lives in the hashed topology section.
	// omitempty keeps every existing spec's canonical form, and therefore
	// its hash, unchanged.
	Sharded bool `json:"sharded,omitempty"`
}

// Deployment declares the hypergiants' deployment strategy: the global
// knobs of hypergiant.DeployConfig plus per-hypergiant profile overrides.
type Deployment struct {
	PeakMbpsPerUser      float64 `json:"peak_mbps_per_user"`
	ColocationPropensity float64 `json:"colocation_propensity"`
	ResponsiveFraction   float64 `json:"responsive_fraction"`
	AnycastFraction      float64 `json:"anycast_fraction"`
	// PNICapacityScale multiplies every private interconnect's capacity:
	// >1 provisions peering generously, <1 starves it.
	PNICapacityScale float64 `json:"pni_capacity_scale"`
	// TransitCoverageScale scales how many transit providers host offnets
	// relative to the per-hypergiant access coverage (offnet depth).
	TransitCoverageScale float64 `json:"transit_coverage_scale"`
	// Hypergiants is keyed by lowercase hypergiant name (google, netflix,
	// meta, akamai); every key must be present in a resolved spec.
	Hypergiants map[string]HGProfile `json:"hypergiants"`
}

// HGProfile is one hypergiant's deployment behaviour under the scenario.
// Certificate conventions stay compiled in (they encode the measurement
// methodology, not the world).
type HGProfile struct {
	Coverage2021     float64 `json:"coverage_2021"`
	Coverage2023     float64 `json:"coverage_2023"`
	ServerGbps       float64 `json:"server_gbps"`
	MaxServersPerISP int     `json:"max_servers_per_isp"`
	LegacySpread     float64 `json:"legacy_spread"`
}

// Traffic declares the traffic mix: per-hypergiant shares and cache
// efficiencies, offnet provisioning headroom, and burst tolerance.
type Traffic struct {
	// Shares and OffnetFractions are keyed by lowercase hypergiant name.
	Shares          map[string]float64 `json:"shares"`
	OffnetFractions map[string]float64 `json:"offnet_fractions"`
	// OffnetProvisioning is the ratio of offnet capacity to the cacheable
	// share of peak demand.
	OffnetProvisioning float64 `json:"offnet_provisioning"`
	// BurstFactor is how far above nominal capacity an offnet can be
	// pushed briefly.
	BurstFactor float64 `json:"burst_factor"`
}

// Measurement declares the measurement-campaign parameters of every
// pipeline stage.
type Measurement struct {
	// Ping campaign (Appendix A).
	PingSites  int     `json:"ping_sites"`
	PingProbes int     `json:"ping_probes"`
	ProbeLoss  float64 `json:"probe_loss"`
	MinSites   int     `json:"min_sites"`
	// Cloud traceroute survey (§4.2.1).
	TracerouteVMs        int     `json:"traceroute_vms"`
	TargetsPerISP        int     `json:"targets_per_isp"`
	SilentRouterFraction float64 `json:"silent_router_fraction"`
	// TLS scan (§2.2).
	ScanBackgroundPerISP float64 `json:"scan_background_per_isp"`
	ScanOnnetPerHG       int     `json:"scan_onnet_per_hg"`
	// Reverse-DNS validation (§3.2).
	RDNSCoverage float64 `json:"rdns_coverage"`
	RDNSGeoHint  float64 `json:"rdns_geo_hint"`
	RDNSStale    float64 `json:"rdns_stale"`
	// Session-level QoE simulation (§3.3).
	SessionsPerISP int `json:"sessions_per_isp"`
}

// Chaos declares the fault-injection profile the scenario runs under.
// Explicit -chaos/-chaos-seed flags override it.
type Chaos struct {
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
}

// Mix converts the traffic section into the traffic.Mix consumed by the
// deployment and capacity layers.
func (s *Spec) Mix() traffic.Mix {
	m := traffic.Mix{OffnetProvisioning: s.Traffic.OffnetProvisioning}
	for _, h := range traffic.All {
		m.Shares[h] = s.Traffic.Shares[h.Key()]
		m.OffnetFractions[h] = s.Traffic.OffnetFractions[h.Key()]
	}
	return m
}

// Profile returns the hypergiant's deployment profile section.
func (s *Spec) Profile(h traffic.HG) HGProfile {
	return s.Deployment.Hypergiants[h.Key()]
}

// Canonical returns the spec's canonical serialization: indented JSON with
// the schema's fixed field order. The content hash is computed over these
// bytes, and parsing them back yields an identical spec.
func (s *Spec) Canonical() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal %q: %w", s.Name, err)
	}
	return append(data, '\n'), nil
}

// Hash is the hex SHA-256 of the canonical serialization: the value the run
// manifest records so runsdiff drifts whenever the world definition moves.
func (s *Spec) Hash() string {
	data, err := s.Canonical()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Validate checks a resolved spec: schema version, complete hypergiant
// maps, and every parameter inside its meaningful range.
func (s *Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Version != Version {
		return bad("unsupported spec version %d (this build reads version %d)", s.Version, Version)
	}
	if s.Name == "" {
		return bad("missing name")
	}
	t := s.Topology
	if t.AccessISPs < 1 || t.TransitISPs < 1 || t.Backbones < 1 || t.IXPs < 1 {
		return bad("topology counts must be >= 1 (access %d, transit %d, backbones %d, ixps %d)",
			t.AccessISPs, t.TransitISPs, t.Backbones, t.IXPs)
	}
	if t.TotalUsers <= 0 || t.ZipfExponent <= 0 || t.UsersPerSlash24 <= 0 {
		return bad("topology totals must be > 0 (users %g, zipf %g, users/slash24 %g)",
			t.TotalUsers, t.ZipfExponent, t.UsersPerSlash24)
	}
	d := s.Deployment
	if d.PeakMbpsPerUser <= 0 {
		return bad("deployment.peak_mbps_per_user must be > 0, got %g", d.PeakMbpsPerUser)
	}
	if d.ColocationPropensity <= 0 || d.ColocationPropensity > 1 {
		return bad("deployment.colocation_propensity must be in (0,1], got %g", d.ColocationPropensity)
	}
	if d.ResponsiveFraction <= 0 || d.ResponsiveFraction > 1 {
		return bad("deployment.responsive_fraction must be in (0,1], got %g", d.ResponsiveFraction)
	}
	if d.AnycastFraction < 0 || d.AnycastFraction >= 1 {
		return bad("deployment.anycast_fraction must be in [0,1), got %g", d.AnycastFraction)
	}
	if d.PNICapacityScale <= 0 {
		return bad("deployment.pni_capacity_scale must be > 0, got %g", d.PNICapacityScale)
	}
	if d.TransitCoverageScale <= 0 || d.TransitCoverageScale > 1 {
		return bad("deployment.transit_coverage_scale must be in (0,1], got %g", d.TransitCoverageScale)
	}
	if len(d.Hypergiants) != len(traffic.All) {
		return bad("deployment.hypergiants must cover all %d hypergiants, got %d", len(traffic.All), len(d.Hypergiants))
	}
	for name, p := range d.Hypergiants {
		if _, ok := traffic.ParseHG(name); !ok {
			return bad("unknown hypergiant %q in deployment.hypergiants", name)
		}
		if p.Coverage2021 < 0 || p.Coverage2021 > 1 || p.Coverage2023 < 0 || p.Coverage2023 > 1 {
			return bad("hypergiant %s coverage must be in [0,1], got %g/%g", name, p.Coverage2021, p.Coverage2023)
		}
		if p.ServerGbps <= 0 {
			return bad("hypergiant %s server_gbps must be > 0, got %g", name, p.ServerGbps)
		}
		if p.MaxServersPerISP < 1 {
			return bad("hypergiant %s max_servers_per_isp must be >= 1, got %d", name, p.MaxServersPerISP)
		}
		if p.LegacySpread < 0 || p.LegacySpread > 1 {
			return bad("hypergiant %s legacy_spread must be in [0,1], got %g", name, p.LegacySpread)
		}
	}
	tr := s.Traffic
	if len(tr.Shares) != len(traffic.All) || len(tr.OffnetFractions) != len(traffic.All) {
		return bad("traffic.shares and traffic.offnet_fractions must cover all %d hypergiants", len(traffic.All))
	}
	var shareSum float64
	for name, v := range tr.Shares {
		if _, ok := traffic.ParseHG(name); !ok {
			return bad("unknown hypergiant %q in traffic.shares", name)
		}
		if v <= 0 || v >= 1 {
			return bad("traffic share for %s must be in (0,1), got %g", name, v)
		}
		shareSum += v
	}
	if shareSum >= 1 {
		return bad("traffic shares sum to %g; the four hypergiants cannot exceed all Internet traffic", shareSum)
	}
	for name, v := range tr.OffnetFractions {
		if _, ok := traffic.ParseHG(name); !ok {
			return bad("unknown hypergiant %q in traffic.offnet_fractions", name)
		}
		if v <= 0 || v > 1 {
			return bad("traffic offnet fraction for %s must be in (0,1], got %g", name, v)
		}
	}
	if tr.OffnetProvisioning <= 0 || tr.OffnetProvisioning > 1.5 {
		return bad("traffic.offnet_provisioning must be in (0,1.5], got %g", tr.OffnetProvisioning)
	}
	if tr.BurstFactor < 1 {
		return bad("traffic.burst_factor must be >= 1, got %g", tr.BurstFactor)
	}
	m := s.Measurement
	if m.PingSites < 1 || m.PingProbes < 1 || m.MinSites < 1 {
		return bad("measurement ping parameters must be >= 1 (sites %d, probes %d, min_sites %d)",
			m.PingSites, m.PingProbes, m.MinSites)
	}
	if m.ProbeLoss < 0 || m.ProbeLoss >= 1 {
		return bad("measurement.probe_loss must be in [0,1), got %g", m.ProbeLoss)
	}
	if m.TracerouteVMs < 1 || m.TargetsPerISP < 1 {
		return bad("measurement traceroute parameters must be >= 1 (vms %d, targets %d)",
			m.TracerouteVMs, m.TargetsPerISP)
	}
	if m.SilentRouterFraction < 0 || m.SilentRouterFraction >= 1 {
		return bad("measurement.silent_router_fraction must be in [0,1), got %g", m.SilentRouterFraction)
	}
	if m.ScanBackgroundPerISP < 0 || m.ScanOnnetPerHG < 0 {
		return bad("measurement scan parameters must be >= 0 (background %g, onnet %d)",
			m.ScanBackgroundPerISP, m.ScanOnnetPerHG)
	}
	if m.RDNSCoverage <= 0 || m.RDNSCoverage > 1 || m.RDNSGeoHint < 0 || m.RDNSGeoHint > 1 || m.RDNSStale < 0 || m.RDNSStale > 1 {
		return bad("measurement rdns fractions out of range (coverage %g, geo_hint %g, stale %g)",
			m.RDNSCoverage, m.RDNSGeoHint, m.RDNSStale)
	}
	if m.SessionsPerISP < 1 {
		return bad("measurement.sessions_per_isp must be >= 1, got %d", m.SessionsPerISP)
	}
	if _, err := chaos.ParseProfile(s.Chaos.Profile); err != nil {
		return bad("chaos.profile: %v", err)
	}
	return nil
}

// Clone deep-copies the spec so callers can tweak maps without mutating
// registry entries.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Deployment.Hypergiants = make(map[string]HGProfile, len(s.Deployment.Hypergiants))
	for k, v := range s.Deployment.Hypergiants {
		c.Deployment.Hypergiants[k] = v
	}
	c.Traffic.Shares = make(map[string]float64, len(s.Traffic.Shares))
	for k, v := range s.Traffic.Shares {
		c.Traffic.Shares[k] = v
	}
	c.Traffic.OffnetFractions = make(map[string]float64, len(s.Traffic.OffnetFractions))
	for k, v := range s.Traffic.OffnetFractions {
		c.Traffic.OffnetFractions[k] = v
	}
	return &c
}
