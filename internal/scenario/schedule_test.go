package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validScheduleDoc = `{
  "version": 1,
  "name": "unit",
  "description": "one of each action",
  "events": [
    {"at_hours": 9, "duration_hours": 8, "demand_step": {"hg": "akamai", "multiplier": 2.4}},
    {"at_hours": 12, "duration_hours": 5, "facility_failure": {"facility": 22}},
    {"at_hours": 13.5, "duration_hours": 3, "capacity_cut": {"layer": "pni", "hg": "akamai", "cut_fraction": 0.5}},
    {"at_hours": 16, "isolation": {"enabled": true}}
  ]
}`

func TestParseScheduleValid(t *testing.T) {
	s, err := ParseSchedule([]byte(validScheduleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "unit" || len(s.Events) != 4 {
		t.Fatalf("parsed %q with %d events", s.Name, len(s.Events))
	}
	if s.Events[0].DemandStep == nil || s.Events[0].DemandStep.Multiplier != 2.4 {
		t.Fatal("demand step did not round-trip")
	}
	if s.Events[3].Isolation == nil || !s.Events[3].Isolation.Enabled {
		t.Fatal("isolation toggle did not round-trip")
	}
}

func TestLoadSchedule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := os.WriteFile(path, []byte(validScheduleDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSchedule(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSchedule(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestParseScheduleRejects walks every strictness rule: unknown keys, wrong
// versions, trailing data, range violations, the one-action rule, and
// overlapping same-target windows.
func TestParseScheduleRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"unknown top-level key", `{"version": 1, "name": "x", "bogus": 1, "events": []}`, "bogus"},
		{"unknown event key", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "when": 2, "isolation": {"enabled": true}}]}`, "when"},
		{"unknown action key", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "demand_step": {"hg": "akamai", "multiplier": 2, "extra": 1}}]}`, "extra"},
		{"wrong version", `{"version": 2, "name": "x", "events": []}`, "version 2"},
		{"missing version", `{"name": "x", "events": []}`, "version 0"},
		{"missing name", `{"version": 1, "events": []}`, "missing name"},
		{"trailing data", `{"version": 1, "name": "x", "events": []}{"more": true}`, "trailing data"},
		{"no action", `{"version": 1, "name": "x", "events": [{"at_hours": 1}]}`, "no action"},
		{"two actions", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "demand_step": {"multiplier": 2}, "facility_failure": {"facility": 3}}]}`, "2 actions"},
		{"negative timestamp", `{"version": 1, "name": "x", "events": [{"at_hours": -1, "isolation": {"enabled": true}}]}`, "at_hours"},
		{"timestamp beyond a year", `{"version": 1, "name": "x", "events": [{"at_hours": 9000, "isolation": {"enabled": true}}]}`, "at_hours"},
		{"negative duration", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "duration_hours": -2, "facility_failure": {"facility": 3}}]}`, "duration_hours"},
		{"zero multiplier", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "demand_step": {"multiplier": 0}}]}`, "multiplier"},
		{"huge multiplier", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "demand_step": {"multiplier": 101}}]}`, "multiplier"},
		{"unknown hypergiant", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "demand_step": {"hg": "cloudflare", "multiplier": 2}}]}`, "cloudflare"},
		{"zero facility", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "facility_failure": {"facility": 0}}]}`, "facility"},
		{"unknown layer", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "capacity_cut": {"layer": "satellite", "cut_fraction": 0.5}}]}`, "satellite"},
		{"zero cut fraction", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "capacity_cut": {"layer": "pni", "cut_fraction": 0}}]}`, "cut_fraction"},
		{"cut fraction above one", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "capacity_cut": {"layer": "pni", "cut_fraction": 1.5}}]}`, "cut_fraction"},
		{"isolation with duration", `{"version": 1, "name": "x", "events": [{"at_hours": 1, "duration_hours": 2, "isolation": {"enabled": true}}]}`, "instant"},
		{"overlapping failures of one facility", `{"version": 1, "name": "x", "events": [
			{"at_hours": 1, "duration_hours": 4, "facility_failure": {"facility": 7}},
			{"at_hours": 3, "duration_hours": 4, "facility_failure": {"facility": 7}}]}`, "overlap"},
		{"open-ended failure overlaps later one", `{"version": 1, "name": "x", "events": [
			{"at_hours": 1, "facility_failure": {"facility": 7}},
			{"at_hours": 100, "duration_hours": 1, "facility_failure": {"facility": 7}}]}`, "overlap"},
		{"wildcard demand step overlaps named one", `{"version": 1, "name": "x", "events": [
			{"at_hours": 1, "duration_hours": 4, "demand_step": {"multiplier": 2}},
			{"at_hours": 2, "duration_hours": 4, "demand_step": {"hg": "netflix", "multiplier": 3}}]}`, "overlap"},
		{"wildcard-ISP cut overlaps named-ISP cut", `{"version": 1, "name": "x", "events": [
			{"at_hours": 1, "duration_hours": 4, "capacity_cut": {"layer": "ixp", "cut_fraction": 0.5}},
			{"at_hours": 2, "duration_hours": 4, "capacity_cut": {"layer": "ixp", "isp": 64512, "cut_fraction": 0.5}}]}`, "overlap"},
		{"duplicate isolation instant", `{"version": 1, "name": "x", "events": [
			{"at_hours": 5, "isolation": {"enabled": true}},
			{"at_hours": 5, "isolation": {"enabled": false}}]}`, "overlap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSchedule([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted: %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Disjoint or adjacent windows on the same target, same-window events on
// different targets, and differing-layer cuts are all fine.
func TestScheduleAllowsNonColliding(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"adjacent half-open failure windows", `{"version": 1, "name": "x", "events": [
			{"at_hours": 2, "duration_hours": 2, "facility_failure": {"facility": 7}},
			{"at_hours": 4, "duration_hours": 2, "facility_failure": {"facility": 7}}]}`},
		{"same window, different facilities", `{"version": 1, "name": "x", "events": [
			{"at_hours": 2, "duration_hours": 2, "facility_failure": {"facility": 7}},
			{"at_hours": 2, "duration_hours": 2, "facility_failure": {"facility": 8}}]}`},
		{"same window, different hypergiants", `{"version": 1, "name": "x", "events": [
			{"at_hours": 2, "duration_hours": 2, "demand_step": {"hg": "google", "multiplier": 2}},
			{"at_hours": 2, "duration_hours": 2, "demand_step": {"hg": "meta", "multiplier": 3}}]}`},
		{"same window, different layers", `{"version": 1, "name": "x", "events": [
			{"at_hours": 2, "duration_hours": 2, "capacity_cut": {"layer": "pni", "cut_fraction": 0.5}},
			{"at_hours": 2, "duration_hours": 2, "capacity_cut": {"layer": "ixp", "cut_fraction": 0.5}}]}`},
		{"same layer, different ISPs", `{"version": 1, "name": "x", "events": [
			{"at_hours": 2, "duration_hours": 2, "capacity_cut": {"layer": "pni", "isp": 64512, "cut_fraction": 0.5}},
			{"at_hours": 2, "duration_hours": 2, "capacity_cut": {"layer": "pni", "isp": 64513, "cut_fraction": 0.5}}]}`},
		{"isolation toggles at distinct instants", `{"version": 1, "name": "x", "events": [
			{"at_hours": 5, "isolation": {"enabled": true}},
			{"at_hours": 9, "isolation": {"enabled": false}}]}`},
		{"failure during a demand step", `{"version": 1, "name": "x", "events": [
			{"at_hours": 2, "duration_hours": 8, "demand_step": {"multiplier": 2}},
			{"at_hours": 4, "duration_hours": 2, "facility_failure": {"facility": 7}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSchedule([]byte(tc.doc)); err != nil {
				t.Fatalf("rejected: %v", err)
			}
		})
	}
}

// The committed acceptance schedule must always parse against the current
// schema — this pins the repo artifact to the code.
func TestCommittedFlashCrowdScheduleParses(t *testing.T) {
	s, err := LoadSchedule("../../schedules/ios-flash-crowd.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "ios-flash-crowd" || len(s.Events) != 4 {
		t.Fatalf("committed schedule drifted: name %q, %d events", s.Name, len(s.Events))
	}
}
