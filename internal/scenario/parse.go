package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Spec files are patches, not full documents: a file states `version`, an
// optional `base` (a registry name, `default` if omitted), and only the
// fields it wants to change. Parsing is strict — unknown keys and wrong
// versions are errors — and the result is always a fully resolved, validated
// Spec. Because omission means "inherit", every field of the patch types is
// a pointer: `"probe_loss": 0` deliberately sets zero loss, while leaving
// the key out keeps the base's value.

type specPatch struct {
	Version     *int    `json:"version"`
	Base        *string `json:"base"`
	Name        *string `json:"name"`
	Description *string `json:"description"`

	Topology    *topologyPatch    `json:"topology"`
	Deployment  *deploymentPatch  `json:"deployment"`
	Traffic     *trafficPatch     `json:"traffic"`
	Measurement *measurementPatch `json:"measurement"`
	Chaos       *chaosPatch       `json:"chaos"`
}

type topologyPatch struct {
	AccessISPs      *int     `json:"access_isps"`
	TransitISPs     *int     `json:"transit_isps"`
	Backbones       *int     `json:"backbones"`
	IXPs            *int     `json:"ixps"`
	TotalUsers      *float64 `json:"total_users"`
	ZipfExponent    *float64 `json:"zipf_exponent"`
	UsersPerSlash24 *float64 `json:"users_per_slash24"`
	Sharded         *bool    `json:"sharded"`
}

type deploymentPatch struct {
	PeakMbpsPerUser      *float64                  `json:"peak_mbps_per_user"`
	ColocationPropensity *float64                  `json:"colocation_propensity"`
	ResponsiveFraction   *float64                  `json:"responsive_fraction"`
	AnycastFraction      *float64                  `json:"anycast_fraction"`
	PNICapacityScale     *float64                  `json:"pni_capacity_scale"`
	TransitCoverageScale *float64                  `json:"transit_coverage_scale"`
	Hypergiants          map[string]hgProfilePatch `json:"hypergiants"`
}

type hgProfilePatch struct {
	Coverage2021     *float64 `json:"coverage_2021"`
	Coverage2023     *float64 `json:"coverage_2023"`
	ServerGbps       *float64 `json:"server_gbps"`
	MaxServersPerISP *int     `json:"max_servers_per_isp"`
	LegacySpread     *float64 `json:"legacy_spread"`
}

type trafficPatch struct {
	Shares             map[string]float64 `json:"shares"`
	OffnetFractions    map[string]float64 `json:"offnet_fractions"`
	OffnetProvisioning *float64           `json:"offnet_provisioning"`
	BurstFactor        *float64           `json:"burst_factor"`
}

type measurementPatch struct {
	PingSites            *int     `json:"ping_sites"`
	PingProbes           *int     `json:"ping_probes"`
	ProbeLoss            *float64 `json:"probe_loss"`
	MinSites             *int     `json:"min_sites"`
	TracerouteVMs        *int     `json:"traceroute_vms"`
	TargetsPerISP        *int     `json:"targets_per_isp"`
	SilentRouterFraction *float64 `json:"silent_router_fraction"`
	ScanBackgroundPerISP *float64 `json:"scan_background_per_isp"`
	ScanOnnetPerHG       *int     `json:"scan_onnet_per_hg"`
	RDNSCoverage         *float64 `json:"rdns_coverage"`
	RDNSGeoHint          *float64 `json:"rdns_geo_hint"`
	RDNSStale            *float64 `json:"rdns_stale"`
	SessionsPerISP       *int     `json:"sessions_per_isp"`
}

type chaosPatch struct {
	Profile *string `json:"profile"`
	Seed    *int64  `json:"seed"`
}

// Parse reads a spec file's bytes, resolves it against its base scenario,
// and validates the result. Unknown keys anywhere in the document and spec
// versions other than the one this build reads are errors.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var patch specPatch
	if err := dec.Decode(&patch); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	// A spec file is one document; trailing garbage means the file is not
	// what the author thinks it is.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse spec: trailing data after the spec document")
	}
	if patch.Version == nil {
		return nil, fmt.Errorf("scenario: spec is missing required field \"version\" (this build reads version %d)", Version)
	}
	if *patch.Version != Version {
		return nil, fmt.Errorf("scenario: unsupported spec version %d (this build reads version %d)", *patch.Version, Version)
	}

	baseName := DefaultName
	if patch.Base != nil {
		baseName = *patch.Base
	}
	base, ok := Lookup(baseName)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown base scenario %q (known: %s)", baseName, strings.Join(Names(), ", "))
	}

	sp := applyPatch(base, &patch)
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// applyPatch overlays every stated field of the patch onto a copy of base.
func applyPatch(base *Spec, patch *specPatch) *Spec {
	sp := base.Clone()
	if patch.Name != nil {
		sp.Name = *patch.Name
	}
	if patch.Description != nil {
		sp.Description = *patch.Description
	}
	if t := patch.Topology; t != nil {
		setInt(&sp.Topology.AccessISPs, t.AccessISPs)
		setInt(&sp.Topology.TransitISPs, t.TransitISPs)
		setInt(&sp.Topology.Backbones, t.Backbones)
		setInt(&sp.Topology.IXPs, t.IXPs)
		setFloat(&sp.Topology.TotalUsers, t.TotalUsers)
		setFloat(&sp.Topology.ZipfExponent, t.ZipfExponent)
		setFloat(&sp.Topology.UsersPerSlash24, t.UsersPerSlash24)
		if t.Sharded != nil {
			sp.Topology.Sharded = *t.Sharded
		}
	}
	if d := patch.Deployment; d != nil {
		setFloat(&sp.Deployment.PeakMbpsPerUser, d.PeakMbpsPerUser)
		setFloat(&sp.Deployment.ColocationPropensity, d.ColocationPropensity)
		setFloat(&sp.Deployment.ResponsiveFraction, d.ResponsiveFraction)
		setFloat(&sp.Deployment.AnycastFraction, d.AnycastFraction)
		setFloat(&sp.Deployment.PNICapacityScale, d.PNICapacityScale)
		setFloat(&sp.Deployment.TransitCoverageScale, d.TransitCoverageScale)
		for name, hp := range d.Hypergiants {
			prof := sp.Deployment.Hypergiants[name]
			setFloat(&prof.Coverage2021, hp.Coverage2021)
			setFloat(&prof.Coverage2023, hp.Coverage2023)
			setFloat(&prof.ServerGbps, hp.ServerGbps)
			setInt(&prof.MaxServersPerISP, hp.MaxServersPerISP)
			setFloat(&prof.LegacySpread, hp.LegacySpread)
			sp.Deployment.Hypergiants[name] = prof
		}
	}
	if tr := patch.Traffic; tr != nil {
		for name, v := range tr.Shares {
			sp.Traffic.Shares[name] = v
		}
		for name, v := range tr.OffnetFractions {
			sp.Traffic.OffnetFractions[name] = v
		}
		setFloat(&sp.Traffic.OffnetProvisioning, tr.OffnetProvisioning)
		setFloat(&sp.Traffic.BurstFactor, tr.BurstFactor)
	}
	if m := patch.Measurement; m != nil {
		setInt(&sp.Measurement.PingSites, m.PingSites)
		setInt(&sp.Measurement.PingProbes, m.PingProbes)
		setFloat(&sp.Measurement.ProbeLoss, m.ProbeLoss)
		setInt(&sp.Measurement.MinSites, m.MinSites)
		setInt(&sp.Measurement.TracerouteVMs, m.TracerouteVMs)
		setInt(&sp.Measurement.TargetsPerISP, m.TargetsPerISP)
		setFloat(&sp.Measurement.SilentRouterFraction, m.SilentRouterFraction)
		setFloat(&sp.Measurement.ScanBackgroundPerISP, m.ScanBackgroundPerISP)
		setInt(&sp.Measurement.ScanOnnetPerHG, m.ScanOnnetPerHG)
		setFloat(&sp.Measurement.RDNSCoverage, m.RDNSCoverage)
		setFloat(&sp.Measurement.RDNSGeoHint, m.RDNSGeoHint)
		setFloat(&sp.Measurement.RDNSStale, m.RDNSStale)
		setInt(&sp.Measurement.SessionsPerISP, m.SessionsPerISP)
	}
	if c := patch.Chaos; c != nil {
		if c.Profile != nil {
			sp.Chaos.Profile = *c.Profile
		}
		if c.Seed != nil {
			sp.Chaos.Seed = *c.Seed
		}
	}
	return sp
}

func setInt(dst *int, src *int) {
	if src != nil {
		*dst = *src
	}
}

func setFloat(dst *float64, src *float64) {
	if src != nil {
		*dst = *src
	}
}

// Resolve turns a -scenario argument into a spec: a registry name resolves
// to the compiled-in scenario, anything else is read as a spec file path.
func Resolve(nameOrPath string) (*Spec, error) {
	if sp, ok := Lookup(nameOrPath); ok {
		return sp, nil
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		if os.IsNotExist(err) && !strings.ContainsAny(nameOrPath, "/\\.") {
			return nil, fmt.Errorf("scenario: unknown scenario %q (known: %s)", nameOrPath, strings.Join(Names(), ", "))
		}
		return nil, fmt.Errorf("scenario: read spec file: %w", err)
	}
	return Parse(data)
}
