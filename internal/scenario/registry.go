package scenario

import (
	"fmt"
	"sort"
)

// The compiled-in scenario registry. `default` reproduces the previously
// hard-coded world bit for bit; `tiny` and `large` are its topology
// variants (the worlds behind -tiny/-large); the rest are named worlds
// grounded in related work (see PAPERS.md).
//
// Registry entries are constructed once and handed out as deep copies, so
// callers can edit a resolved spec without corrupting the registry.

// DefaultName is the scenario used when nothing is requested.
const DefaultName = "default"

// defaultSpec returns the world the reproduction has always built: the
// constants previously spread across inet.DefaultConfig,
// hypergiant.DefaultDeployConfig, hypergiant.Profiles, internal/traffic and
// the measurement packages, in one declarative document.
func defaultSpec() *Spec {
	return &Spec{
		Version:     Version,
		Name:        DefaultName,
		Description: "the paper's synthetic world: four hypergiants, published traffic shares, laptop-scale topology",
		Topology: Topology{
			AccessISPs:      900,
			TransitISPs:     48,
			Backbones:       8,
			IXPs:            36,
			TotalUsers:      3.0e9,
			ZipfExponent:    1.05,
			UsersPerSlash24: 8000,
		},
		Deployment: Deployment{
			PeakMbpsPerUser:      0.3,
			ColocationPropensity: 0.86,
			ResponsiveFraction:   0.955,
			AnycastFraction:      0.007,
			PNICapacityScale:     1.0,
			TransitCoverageScale: 0.8,
			Hypergiants: map[string]HGProfile{
				"google": {
					Coverage2021: 0.62, Coverage2023: 0.62 * 1.232,
					ServerGbps: 9, MaxServersPerISP: 24, LegacySpread: 0.10,
				},
				"netflix": {
					Coverage2021: 0.345, Coverage2023: 0.345 * 1.374,
					ServerGbps: 18, MaxServersPerISP: 10, LegacySpread: 0.08,
				},
				"meta": {
					Coverage2021: 0.36, Coverage2023: 0.36 * 1.169,
					ServerGbps: 10, MaxServersPerISP: 16, LegacySpread: 0.08,
				},
				"akamai": {
					Coverage2021: 0.178, Coverage2023: 0.178,
					ServerGbps: 6, MaxServersPerISP: 30, LegacySpread: 0.45,
				},
			},
		},
		Traffic: Traffic{
			Shares: map[string]float64{
				"google": 0.21, "netflix": 0.09, "meta": 0.15, "akamai": 0.175,
			},
			OffnetFractions: map[string]float64{
				"google": 0.80, "netflix": 0.95, "meta": 0.86, "akamai": 0.75,
			},
			OffnetProvisioning: 0.92,
			BurstFactor:        1.2,
		},
		Measurement: Measurement{
			PingSites: 163, PingProbes: 8, ProbeLoss: 0.01, MinSites: 100,
			TracerouteVMs: 112, TargetsPerISP: 4, SilentRouterFraction: 0.15,
			ScanBackgroundPerISP: 2.5, ScanOnnetPerHG: 20,
			RDNSCoverage: 0.45, RDNSGeoHint: 0.55, RDNSStale: 0.01,
			SessionsPerISP: 40,
		},
		Chaos: Chaos{Profile: "off", Seed: 7},
	}
}

// registry builds every named scenario. Each is derived from the default by
// editing the sections the scenario is about, so the diff against `default`
// IS the scenario's definition.
func registry() map[string]*Spec {
	specs := map[string]*Spec{DefaultName: defaultSpec()}

	tiny := defaultSpec()
	tiny.Name = "tiny"
	tiny.Description = "the default world at unit-test scale (the world behind -tiny)"
	tiny.Topology = Topology{
		AccessISPs: 60, TransitISPs: 10, Backbones: 3, IXPs: 8,
		TotalUsers: 2.0e8, ZipfExponent: 1.0, UsersPerSlash24: 8000,
	}
	specs[tiny.Name] = tiny

	huge := defaultSpec()
	huge.Name = "huge"
	huge.Description = "the default world at 50x+ scale, built by the sharded streaming generator; spill to a snapshot with -snapshot"
	huge.Topology = Topology{
		AccessISPs: 48000, TransitISPs: 2400, Backbones: 64, IXPs: 720,
		TotalUsers: 5.0e9, ZipfExponent: 1.05, UsersPerSlash24: 8000,
		Sharded: true,
	}
	specs[huge.Name] = huge

	large := defaultSpec()
	large.Name = "large"
	large.Description = "the default world sized closer to the paper's datasets (the world behind -large)"
	large.Topology = Topology{
		AccessISPs: 2400, TransitISPs: 96, Backbones: 10, IXPs: 60,
		TotalUsers: 4.2e9, ZipfExponent: 1.05, UsersPerSlash24: 8000,
	}
	specs[large.Name] = large

	// "Open Connect Everywhere" (Böttger et al.): Netflix pushes OCAs deep
	// into eyeball and transit networks. Netflix coverage approaches
	// saturation, its share reflects the regional streaming peak, offnets
	// colocate even harder at the primary interconnect, and peering is
	// provisioned a notch more generously.
	oca := defaultSpec()
	oca.Name = "open-connect-everywhere"
	oca.Description = "Netflix OCA-style deep-ISP deployment: near-saturated Netflix coverage, streaming-peak share, denser transit offnets"
	oca.Deployment.ColocationPropensity = 0.90
	oca.Deployment.TransitCoverageScale = 0.9
	oca.Deployment.PNICapacityScale = 1.1
	oca.Deployment.Hypergiants["netflix"] = HGProfile{
		Coverage2021: 0.55, Coverage2023: 0.88,
		ServerGbps: 18, MaxServersPerISP: 16, LegacySpread: 0.04,
	}
	oca.Traffic.Shares["netflix"] = 0.15
	oca.Traffic.OffnetFractions["netflix"] = 0.97
	specs[oca.Name] = oca

	// "Dissecting Apple's Meta-CDN during an iOS Update": an iOS release
	// shifts the traffic mix hard toward the Akamai-led CDN coalition,
	// with poorly cacheable first-day payloads, thin provisioning
	// headroom, aggressive bursting, and measurement noise from the
	// overload (the light chaos profile).
	ios := defaultSpec()
	ios.Name = "ios-flash-crowd"
	ios.Description = "iOS-update flash crowd through an Akamai-led multi-CDN: update-day traffic mix, thin headroom, chaos light"
	ios.Deployment.Hypergiants["akamai"] = HGProfile{
		Coverage2021: 0.178, Coverage2023: 0.30,
		ServerGbps: 6, MaxServersPerISP: 40, LegacySpread: 0.45,
	}
	ios.Traffic.Shares = map[string]float64{
		"google": 0.18, "netflix": 0.07, "meta": 0.13, "akamai": 0.30,
	}
	ios.Traffic.OffnetFractions["akamai"] = 0.60
	ios.Traffic.OffnetProvisioning = 0.85
	ios.Traffic.BurstFactor = 1.4
	ios.Chaos = Chaos{Profile: "light", Seed: 7}
	specs[ios.Name] = ios

	// "Characterizing a Meta-CDN": content owners spread delivery across
	// multiple CDNs. Shares even out, per-CDN cache efficiency drops
	// (requests split across providers), the TLS scan sees far more
	// unrelated CDN hosts, and PNIs are sized a little leaner because no
	// single CDN carries the whole relationship.
	meta := defaultSpec()
	meta.Name = "meta-cdn"
	meta.Description = "multi-CDN/meta-CDN delivery: evened-out shares, reduced per-CDN cache efficiency, noisy TLS scan background"
	meta.Deployment.PNICapacityScale = 0.9
	meta.Deployment.Hypergiants["akamai"] = HGProfile{
		Coverage2021: 0.178, Coverage2023: 0.25,
		ServerGbps: 6, MaxServersPerISP: 30, LegacySpread: 0.45,
	}
	meta.Traffic.Shares = map[string]float64{
		"google": 0.15, "netflix": 0.10, "meta": 0.14, "akamai": 0.22,
	}
	meta.Traffic.OffnetFractions = map[string]float64{
		"google": 0.70, "netflix": 0.85, "meta": 0.75, "akamai": 0.65,
	}
	meta.Traffic.OffnetProvisioning = 0.90
	meta.Measurement.ScanBackgroundPerISP = 6.0
	meta.Measurement.ScanOnnetPerHG = 35
	specs[meta.Name] = meta

	// "OCDN: Oblivious Content Distribution Networks": delivery designed
	// to hide provenance. The deployments are the default world's, but
	// every measurement channel degrades — sparser vantage coverage,
	// lossier probes, more silent routers, and reverse DNS that rarely
	// says anything truthful about location.
	ocdn := defaultSpec()
	ocdn.Name = "ocdn"
	ocdn.Description = "oblivious-CDN world: default deployments measured through degraded channels (sparse vantage points, silent routers, lying rDNS)"
	ocdn.Measurement.PingSites = 140
	ocdn.Measurement.ProbeLoss = 0.03
	ocdn.Measurement.MinSites = 80
	ocdn.Measurement.SilentRouterFraction = 0.30
	ocdn.Measurement.RDNSCoverage = 0.20
	ocdn.Measurement.RDNSGeoHint = 0.30
	ocdn.Measurement.RDNSStale = 0.05
	specs[ocdn.Name] = ocdn

	return specs
}

// Names lists the registry's scenario names in sorted order.
func Names() []string {
	specs := registry()
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Default returns a copy of the default scenario.
func Default() *Spec {
	return defaultSpec()
}

// Lookup returns a copy of the named scenario.
func Lookup(name string) (*Spec, bool) {
	sp, ok := registry()[name]
	if !ok {
		return nil, false
	}
	return sp, true
}

// MustLookup is Lookup for registry names the code itself guarantees exist.
func MustLookup(name string) *Spec {
	sp, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("scenario: registry is missing %q", name))
	}
	return sp
}

// Describe returns the name and description of every registered scenario,
// sorted by name — the rows behind -list-scenarios.
func Describe() [][2]string {
	specs := registry()
	out := make([][2]string, 0, len(specs))
	for _, name := range Names() {
		out = append(out, [2]string{name, specs[name].Description})
	}
	return out
}
