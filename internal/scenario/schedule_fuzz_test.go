package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzParseSchedule drives arbitrary bytes through the strict schedule
// parser: it must never panic, and anything it accepts must honor the schema
// invariants — current version, exactly one action per event, in-range
// timestamps and parameters — and must survive a marshal/re-parse round trip,
// so an accepted document can always be re-emitted and replayed.
func FuzzParseSchedule(f *testing.F) {
	f.Add([]byte(validScheduleDoc))
	f.Add([]byte(`{"version": 1, "name": "minimal", "events": []}`))
	f.Add([]byte(`{"version": 1, "name": "open-ended", "events": [{"at_hours": 0, "facility_failure": {"facility": 1}}]}`))
	f.Add([]byte(`{"version": 1, "name": "bad", "events": [{"at_hours": -1, "isolation": {"enabled": true}}]}`))
	f.Add([]byte(`{"version": 2, "name": "future", "events": []}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSchedule(data)
		if err != nil {
			return
		}
		if s.Version != ScheduleVersion {
			t.Fatalf("accepted schedule with version %d", s.Version)
		}
		if s.Name == "" {
			t.Fatal("accepted schedule without a name")
		}
		for i := range s.Events {
			e := &s.Events[i]
			if _, err := e.kind(); err != nil {
				t.Fatalf("accepted event %d with bad action count: %v", i, err)
			}
			if e.AtHours < 0 || e.AtHours > maxScheduleHours {
				t.Fatalf("accepted event %d with at_hours %g", i, e.AtHours)
			}
			if e.DurationHours < 0 || e.DurationHours > maxScheduleHours {
				t.Fatalf("accepted event %d with duration_hours %g", i, e.DurationHours)
			}
		}
		// An accepted document round-trips: re-marshal, re-parse, and the
		// second pass must accept too (validation is stable under Go's
		// canonical JSON re-encoding).
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted schedule does not re-marshal: %v", err)
		}
		again, err := ParseSchedule(out)
		if err != nil {
			t.Fatalf("re-marshaled schedule rejected: %v\n%s", err, out)
		}
		if again.Name != s.Name || len(again.Events) != len(s.Events) {
			t.Fatalf("round trip changed the schedule: %q/%d -> %q/%d",
				s.Name, len(s.Events), again.Name, len(again.Events))
		}
	})
}
