package coloc

import (
	"math"
	"testing"

	"offnetrisk/internal/hypergiant"
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/stats"
	"offnetrisk/internal/traffic"
)

// fullPipeline builds world → deployment → campaign → analysis.
func fullPipeline(t *testing.T, seed int64) (*hypergiant.Deployment, *mlab.Campaign, *Analysis) {
	t.Helper()
	w := inet.Generate(inet.TinyConfig(seed))
	d, err := hypergiant.Deploy(w, hypergiant.Epoch2023, hypergiant.DefaultDeployConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	c := mlab.Measure(d, mlab.Sites(163, seed), mlab.DefaultConfig(seed))
	a := Analyze(w, c, []float64{0.1, 0.9})
	return d, c, a
}

func TestPairDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 100}
	b := []float64{1, 2, 3, 4, 0}
	sites := []int{0, 1, 2, 3, 4}
	// With 20% exclusion the discrepant site 4 is dropped: distance 0.
	if d := PairDistance(a, b, sites, 0.2); d != 0 {
		t.Errorf("distance with exclusion = %v, want 0", d)
	}
	// Without exclusion the 100ms discrepancy dominates: 100/5 = 20.
	if d := PairDistance(a, b, sites, 0); math.Abs(d-20) > 1e-9 {
		t.Errorf("distance without exclusion = %v, want 20", d)
	}
	// NaN sites are skipped.
	c := []float64{1, math.NaN(), 3, 4, 0}
	if d := PairDistance(a, c, sites, 0); math.IsNaN(d) {
		t.Error("NaN leaked into distance")
	}
	// All-NaN → +Inf.
	nan := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	if d := PairDistance(a, nan, sites, 0.2); !math.IsInf(d, 1) {
		t.Errorf("all-NaN distance = %v, want +Inf", d)
	}
}

func TestDistanceMatrixSymmetricZeroDiag(t *testing.T) {
	_, c, _ := fullPipeline(t, 1)
	for as, ms := range c.ByISP {
		if len(ms) < 2 {
			continue
		}
		dm := DistanceMatrix(ms, c.GoodSites[as], DiscrepancyExclusion)
		if dm.N() != len(ms) {
			t.Fatalf("N = %d, want %d", dm.N(), len(ms))
		}
		for i := 0; i < dm.N(); i++ {
			if dm.At(i, i) != 0 {
				t.Fatalf("diagonal not zero: %v", dm.At(i, i))
			}
			for j := 0; j < dm.N(); j++ {
				if dm.At(i, j) != dm.At(j, i) {
					t.Fatalf("matrix asymmetric at %d,%d", i, j)
				}
				if dm.At(i, j) < 0 {
					t.Fatalf("negative distance at %d,%d", i, j)
				}
				if i != j {
					if want := PairDistance(ms[i].RTTms, ms[j].RTTms, c.GoodSites[as], DiscrepancyExclusion); dm.At(i, j) != want {
						t.Fatalf("cell %d,%d = %v, want PairDistance %v", i, j, dm.At(i, j), want)
					}
				}
			}
		}
		break
	}
}

func TestClusteringRecoversGroundTruth(t *testing.T) {
	// Ground truth check at both ξ bounds. The latency model has rack-level
	// structure (per-rack sub-ms route detours), so the conservative ξ=0.1
	// recovers rack groups — same-rack pairs must co-cluster — while the
	// permissive ξ=0.9 merges racks back into facilities — same-facility
	// pairs must co-cluster. Different metros must stay separate at both.
	d, c, a := fullPipeline(t, 1)
	w := d.World

	check := func(xi float64, sameGroup func(a, b *mlab.Measurement) bool, label string, wantFrac, wantMetroSep float64) {
		var total, ok int
		var diffMetroTotal, diffMetroSplit int
		for as, isp := range a.PerISP {
			if host, ok := w.ISPs[as]; !ok || !host.IsAccess() {
				// Transit POP facilities sit in metros chosen independently;
				// the rack/facility ground-truth assertions target access
				// networks, as the paper's validation does.
				continue
			}
			ms := c.ByISP[as]
			labels := isp.PerXi[xi].Labels
			for i := 0; i < len(ms); i++ {
				for j := i + 1; j < len(ms); j++ {
					fi := w.Facilities[ms[i].Target.Facility]
					fj := w.Facilities[ms[j].Target.Facility]
					if fi.Metro.Code != fj.Metro.Code {
						diffMetroTotal++
						if labels[i] != labels[j] || labels[i] < 0 {
							diffMetroSplit++
						}
						continue
					}
					if !sameGroup(ms[i], ms[j]) {
						continue
					}
					total++
					if labels[i] == labels[j] && labels[i] >= 0 {
						ok++
					}
				}
			}
		}
		if total == 0 {
			t.Fatalf("ξ=%v: no %s pairs to validate", xi, label)
		}
		if f := float64(ok) / float64(total); f < wantFrac {
			t.Errorf("ξ=%v: %s pairs clustered together: %.2f, want ≥%.2f", xi, label, f, wantFrac)
		}
		if diffMetroTotal > 0 {
			if f := float64(diffMetroSplit) / float64(diffMetroTotal); f < wantMetroSep {
				t.Errorf("ξ=%v: different-metro pairs separated: %.2f, want ≥%.2f", xi, f, wantMetroSep)
			}
		}
	}

	sameRack := func(a, b *mlab.Measurement) bool {
		return a.Target.Facility == b.Target.Facility && a.Target.Rack == b.Target.Rack
	}
	sameFacility := func(a, b *mlab.Measurement) bool {
		return a.Target.Facility == b.Target.Facility
	}
	check(0.1, sameRack, "same-rack", 0.9, 0.9)
	// The permissive ξ=0.9 occasionally merges latency-close metros in one
	// country — the paper's own validation sees this too (2 of 34 clusters
	// spanned cities in the same country).
	// Pair-level separation at ξ=0.9 is weak by construction: a handful of
	// big merged clusters in latency-close metros contribute many pairs
	// (cluster-level validation in internal/rdns stays ≈93% single-city,
	// matching the paper's 30/34).
	check(0.9, sameFacility, "same-facility", 0.85, 0.6)
}

func TestTable2Shape(t *testing.T) {
	_, _, a := fullPipeline(t, 1)
	rows := a.Table2()
	if len(rows) != 8 { // 4 HGs × 2 ξ
		t.Fatalf("Table2 rows = %d, want 8", len(rows))
	}
	for _, row := range rows {
		sum := row.SoleFrac
		for b := stats.BucketZero; b < stats.NumBuckets; b++ {
			if row.BucketFrac[b] < 0 || row.BucketFrac[b] > 1 {
				t.Errorf("%s ξ=%v bucket %v out of range: %v", row.HG, row.Xi, b, row.BucketFrac[b])
			}
			sum += row.BucketFrac[b]
		}
		if math.Abs(sum-1) > 1e-9 && sum != 0 {
			t.Errorf("%s ξ=%v row sums to %v", row.HG, row.Xi, sum)
		}
	}
	// Direction: at ξ=0.9 the fully-colocated bucket must not shrink
	// relative to ξ=0.1 for the same hypergiant (Table 2's dominant trend,
	// e.g. Meta 32%→84%, Google 33%→62%).
	byKey := make(map[string]Table2Row)
	for _, row := range rows {
		key := row.HG.String()
		if row.Xi == 0.1 {
			byKey[key+"-lo"] = row
		} else {
			byKey[key+"-hi"] = row
		}
	}
	regressions := 0
	for _, hg := range traffic.All {
		lo := byKey[hg.String()+"-lo"]
		hi := byKey[hg.String()+"-hi"]
		if hi.BucketFrac[stats.BucketFull] < lo.BucketFrac[stats.BucketFull]-0.05 {
			regressions++
			t.Logf("%s: full-colocation at ξ=0.9 (%.2f) < ξ=0.1 (%.2f)",
				hg, hi.BucketFrac[stats.BucketFull], lo.BucketFrac[stats.BucketFull])
		}
	}
	if regressions > 1 {
		t.Errorf("ξ=0.9 shrank full colocation for %d hypergiants", regressions)
	}
	// Sole fraction is ξ-independent.
	for _, hg := range traffic.All {
		lo, hi := byKey[hg.String()+"-lo"], byKey[hg.String()+"-hi"]
		if math.Abs(lo.SoleFrac-hi.SoleFrac) > 1e-9 {
			t.Errorf("%s sole fraction differs across ξ", hg)
		}
	}
}

func TestColocationIsCommon(t *testing.T) {
	// The paper's core claim: most multi-HG ISPs colocate at least some
	// offnets (81–95%). Check at ξ=0.1 (conservative).
	_, _, a := fullPipeline(t, 1)
	rows := a.Table2()
	for _, row := range rows {
		if row.Xi != 0.1 {
			continue
		}
		multi := 1 - row.SoleFrac
		if multi <= 0 {
			continue
		}
		noColoc := row.BucketFrac[stats.BucketZero]
		someColoc := (multi - noColoc) / multi
		if someColoc < 0.55 {
			t.Errorf("%s: only %.2f of multi-HG hosts colocate (paper: 0.81–0.95)", row.HG, someColoc)
		}
	}
}

func TestFigure2CCDF(t *testing.T) {
	_, _, a := fullPipeline(t, 1)
	for _, xi := range []float64{0.1, 0.9} {
		ccdf := a.Figure2(xi)
		if len(ccdf) == 0 {
			t.Fatalf("empty CCDF at ξ=%v", xi)
		}
		if ccdf[0].Frac != 1 {
			t.Errorf("CCDF must start at 1, got %v", ccdf[0].Frac)
		}
		// Max possible single-facility share is the all-four sum ≈ 0.52.
		for _, p := range ccdf {
			if p.X > traffic.CombinedFacilityShare(traffic.All)+1e-9 {
				t.Errorf("facility share %v exceeds the four-HG maximum", p.X)
			}
		}
		// A meaningful share of users must sit at ≥25% (paper: 71–82% of
		// analyzable users).
		if got := stats.CCDFAt(ccdf, 0.25); got < 0.3 {
			t.Errorf("ξ=%v: users with ≥25%% single-facility share = %.2f, want substantial", xi, got)
		}
	}
}

func TestSingleSiteFractions(t *testing.T) {
	// §4.1: Netflix has the most single-site deployments (75.3–91.2%);
	// every hypergiant has a majority of single-site host ISPs somewhere in
	// the ξ bounds.
	_, _, a := fullPipeline(t, 1)
	for _, hg := range traffic.All {
		lo := a.SingleSiteFrac(hg, 0.1)
		hi := a.SingleSiteFrac(hg, 0.9)
		if lo <= 0 && hi <= 0 {
			t.Errorf("%s: zero single-site fraction at both ξ", hg)
		}
		if lo > 1 || hi > 1 {
			t.Errorf("%s: fraction out of range (%v, %v)", hg, lo, hi)
		}
	}
	nf01 := a.SingleSiteFrac(traffic.Netflix, 0.1)
	g01 := a.SingleSiteFrac(traffic.Google, 0.1)
	if nf01 < g01-0.25 {
		t.Errorf("Netflix single-site (%.2f) should not be far below Google (%.2f)", nf01, g01)
	}
}

func TestUserShareAtLeast(t *testing.T) {
	_, _, a := fullPipeline(t, 1)
	// Monotone in the threshold.
	prev := 1.1
	for _, share := range []float64{0.0, 0.1, 0.25, 0.4, 0.52} {
		got := a.UserShareAtLeast(0.1, share)
		if got < 0 || got > 1 {
			t.Fatalf("share %v: fraction %v out of range", share, got)
		}
		if got > prev+1e-9 {
			t.Fatalf("UserShareAtLeast not monotone at %v", share)
		}
		prev = got
	}
}

func TestFigure1(t *testing.T) {
	d, _, _ := fullPipeline(t, 1)
	w := d.World
	hosting := make(map[inet.ASN][]traffic.HG)
	for _, as := range d.HostingISPs() {
		hosting[as] = d.HGsIn(as)
	}
	rows := Figure1(w, hosting)
	if len(rows) == 0 {
		t.Fatal("no country rows")
	}
	for _, row := range rows {
		if row.AtLeast2 > row.AtLeastOne+1e-9 || row.AtLeast3 > row.AtLeast2+1e-9 || row.AllFour > row.AtLeast3+1e-9 {
			t.Errorf("%s: non-monotone shares %+v", row.Country, row)
		}
		for _, v := range []float64{row.AtLeastOne, row.AtLeast2, row.AtLeast3, row.AllFour} {
			if v < 0 || v > 1+1e-9 {
				t.Errorf("%s: share out of range: %+v", row.Country, row)
			}
		}
	}
	one, two, three, four := GlobalUserShares(w, hosting)
	if !(one >= two && two >= three && three >= four) {
		t.Errorf("global shares non-monotone: %v %v %v %v", one, two, three, four)
	}
	if one < 0.5 {
		t.Errorf("global ≥1 share = %.2f, want majority of users (paper: 0.76)", one)
	}
	if four <= 0 {
		t.Error("no users in all-four ISPs; Figure 1c would be empty")
	}
}

func TestAnalysisDeterministic(t *testing.T) {
	_, _, a1 := fullPipeline(t, 6)
	_, _, a2 := fullPipeline(t, 6)
	if len(a1.PerISP) != len(a2.PerISP) {
		t.Fatal("analysis not deterministic")
	}
	for as, r1 := range a1.PerISP {
		r2 := a2.PerISP[as]
		if r2 == nil {
			t.Fatal("ISP missing in repeat run")
		}
		for _, xi := range []float64{0.1, 0.9} {
			for i := range r1.PerXi[xi].Labels {
				if r1.PerXi[xi].Labels[i] != r2.PerXi[xi].Labels[i] {
					t.Fatal("labels differ across identical runs")
				}
			}
		}
	}
}

func TestPairScoreArithmetic(t *testing.T) {
	s := PairScore{TruePos: 8, FalsePos: 2, FalseNeg: 2}
	if p := s.Precision(); math.Abs(p-0.8) > 1e-9 {
		t.Errorf("precision = %v", p)
	}
	if r := s.Recall(); math.Abs(r-0.8) > 1e-9 {
		t.Errorf("recall = %v", r)
	}
	if f := s.F1(); math.Abs(f-0.8) > 1e-9 {
		t.Errorf("f1 = %v", f)
	}
	var zero PairScore
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero score must not divide by zero")
	}
}

func TestGroundTruthScoring(t *testing.T) {
	// The simulation-only capability: exact clustering accuracy. ξ=0.1
	// must recover rack structure nearly perfectly; ξ=0.9 must recover
	// facility structure with high recall.
	d, c, a := fullPipeline(t, 1)
	w := d.World

	rack01 := a.ScoreAnalysis(w, c, 0.1, ByRack)
	if f := rack01.F1(); f < 0.9 {
		t.Errorf("ξ=0.1 rack F1 = %.3f, want ≥0.9", f)
	}
	fac09 := a.ScoreAnalysis(w, c, 0.9, ByFacility)
	if r := fac09.Recall(); r < 0.85 {
		t.Errorf("ξ=0.9 facility recall = %.3f, want ≥0.85", r)
	}
	// ξ=0.1 deliberately under-merges at facility granularity (it sees
	// racks); recall must therefore be lower than at ξ=0.9.
	fac01 := a.ScoreAnalysis(w, c, 0.1, ByFacility)
	if fac01.Recall() >= fac09.Recall() {
		t.Errorf("facility recall should rise with ξ: %.3f vs %.3f",
			fac01.Recall(), fac09.Recall())
	}
}

func TestTrafficConcentration(t *testing.T) {
	_, _, a := fullPipeline(t, 1)
	for _, xi := range []float64{0.1, 0.9} {
		hhi := a.MeanTrafficHHI(xi)
		// A facility can serve at most ~52% of traffic (all four HGs), so
		// HHI sits between the diffuse floor and full concentration.
		if hhi <= 0.1 || hhi >= 1 {
			t.Errorf("ξ=%v: mean traffic HHI = %.3f out of plausible range", xi, hhi)
		}
	}
	// Per-ISP values are valid HHIs.
	for _, isp := range a.PerISP {
		for _, xi := range []float64{0.1, 0.9} {
			if h := isp.PerXi[xi].TrafficHHI; h < 0 || h > 1 {
				t.Fatalf("HHI out of range: %v", h)
			}
		}
	}
	// Merging clusters (ξ=0.9) concentrates traffic: user-weighted HHI must
	// not decrease relative to ξ=0.1.
	if a.MeanTrafficHHI(0.9) < a.MeanTrafficHHI(0.1)-1e-9 {
		t.Errorf("HHI fell with merging: %.3f → %.3f", a.MeanTrafficHHI(0.1), a.MeanTrafficHHI(0.9))
	}
}
