package coloc

import (
	"sort"

	"offnetrisk/internal/inet"
	"offnetrisk/internal/traffic"
)

// CountryShare is one country's row behind Figure 1: the fraction of the
// country's Internet users in ISPs hosting offnets from ≥2, ≥3, and all 4 of
// the hypergiants.
type CountryShare struct {
	Country    string
	Users      float64
	AtLeast2   float64
	AtLeast3   float64
	AllFour    float64
	AtLeastOne float64
}

// Figure1 aggregates hosting sets per country, weighted by ISP user
// population. hosting maps each ISP to the hypergiants it hosts (from the
// scan inference or deployment ground truth).
func Figure1(w *inet.World, hosting map[inet.ASN][]traffic.HG) []CountryShare {
	users := w.CountryUsers()
	type acc struct{ one, two, three, four float64 }
	per := make(map[string]*acc)
	for cc := range users {
		per[cc] = &acc{}
	}
	for as, hgs := range hosting {
		isp, ok := w.ISPs[as]
		if !ok || !isp.IsAccess() {
			continue
		}
		a := per[isp.Country]
		if a == nil {
			a = &acc{}
			per[isp.Country] = a
		}
		n := len(dedupeHGs(hgs))
		if n >= 1 {
			a.one += isp.Users
		}
		if n >= 2 {
			a.two += isp.Users
		}
		if n >= 3 {
			a.three += isp.Users
		}
		if n >= 4 {
			a.four += isp.Users
		}
	}
	var out []CountryShare
	for cc, a := range per {
		total := users[cc]
		if total <= 0 {
			continue
		}
		out = append(out, CountryShare{
			Country:    cc,
			Users:      total,
			AtLeastOne: a.one / total,
			AtLeast2:   a.two / total,
			AtLeast3:   a.three / total,
			AllFour:    a.four / total,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

func dedupeHGs(hgs []traffic.HG) []traffic.HG {
	var present [traffic.NumHG]bool
	var out []traffic.HG
	for _, h := range hgs {
		if h >= 0 && h < traffic.NumHG && !present[h] {
			present[h] = true
			out = append(out, h)
		}
	}
	return out
}

// GlobalUserShares summarizes Figure 1 globally: the fraction of all users
// in ISPs hosting ≥1, ≥2, ≥3, and 4 hypergiants (§3.2 reports 76% of users
// are in ISPs with at least one offnet).
func GlobalUserShares(w *inet.World, hosting map[inet.ASN][]traffic.HG) (one, two, three, four float64) {
	var total float64
	for _, isp := range w.AccessISPs() {
		total += isp.Users
	}
	if total <= 0 {
		return
	}
	for as, hgs := range hosting {
		isp, ok := w.ISPs[as]
		if !ok || !isp.IsAccess() {
			continue
		}
		n := len(dedupeHGs(hgs))
		if n >= 1 {
			one += isp.Users
		}
		if n >= 2 {
			two += isp.Users
		}
		if n >= 3 {
			three += isp.Users
		}
		if n >= 4 {
			four += isp.Users
		}
	}
	return one / total, two / total, three / total, four / total
}
