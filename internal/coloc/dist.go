// Pairwise distance kernel: selection-based PairDistance with per-worker
// scratch, and the flat triangular distance matrix with balanced pair-block
// parallel fill. This is the hot path of the §3.2/Appendix A colocation
// inference — every ISP costs O(n²) pair distances over ~163-entry latency
// vectors — so the kernel is written to be allocation-free in steady state
// while producing bit-identical results to the original sort-per-pair code
// (DESIGN.md §8.1).
package coloc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"offnetrisk/internal/mlab"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/par"
)

// PairDistance computes the normalized Manhattan distance between two
// latency vectors over the given site indices, after dropping the `exclude`
// fraction of sites with the largest per-site discrepancy.
//
// This convenience form allocates a scratch per call; the distance-matrix
// fill reuses a per-worker PairScratch instead.
func PairDistance(a, b []float64, sites []int, exclude float64) float64 {
	var s PairScratch
	d := s.PairDistance(a, b, sites, exclude)
	s.FlushFunnel()
	return d
}

// PairScratch holds the reusable per-worker buffer for PairDistance. The
// zero value is ready; the buffer grows to the largest site set seen. Not
// safe for concurrent use — one per worker (par.ForEachLocal).
//
// Funnel accounting (coloc.pairs) is batched into the plain int64 fields and
// published with FlushFunnel, keeping the per-pair path free of atomics and
// allocations.
type PairScratch struct {
	diffs []float64

	fIn, fNaN, fExcl, fOut int64
}

// FlushFunnel publishes the batched coloc.pairs accounting and zeroes the
// batch. Callers flush once per block (or per call for the convenience
// form), not per pair.
func (s *PairScratch) FlushFunnel() {
	if s.fIn == 0 {
		return
	}
	fPairs.In(s.fIn)
	fPairs.Out(s.fOut)
	fPairsNaN.Add(s.fNaN)
	fPairsDiscrepant.Add(s.fExcl)
	if lr := obs.ActiveLineage(); lr != nil {
		lr.CountIn(lnPairs, s.fIn)
		lr.CountKept(lnPairs, s.fOut)
		lr.CountDrop(lnPairs, "nan_rtt", s.fNaN)
		lr.CountDrop(lnPairs, "discrepant_20pct", s.fExcl)
	}
	s.fIn, s.fNaN, s.fExcl, s.fOut = 0, 0, 0, 0
}

// PairDistance is the scratch-reusing pair distance. The exclusion is
// computed by partial selection (quickselect) of the kept k smallest
// per-site discrepancies instead of a full sort; the kept values are then
// summed in ascending order, so the result is the exact float64 the
// sort-everything implementation produced (see DESIGN.md §8.1).
func (s *PairScratch) PairDistance(a, b []float64, sites []int, exclude float64) float64 {
	diffs := s.diffs[:0]
	if cap(diffs) < len(sites) {
		diffs = make([]float64, 0, len(sites))
	}
	for _, si := range sites {
		x, y := a[si], b[si]
		if math.IsNaN(x) || math.IsNaN(y) {
			continue
		}
		diffs = append(diffs, math.Abs(x-y))
	}
	s.diffs = diffs
	s.fIn += int64(len(sites))
	s.fNaN += int64(len(sites) - len(diffs))
	if len(diffs) == 0 {
		return math.Inf(1)
	}
	keep := len(diffs) - int(float64(len(diffs))*exclude)
	if keep < 1 {
		keep = 1
	}
	s.fExcl += int64(len(diffs) - keep)
	s.fOut += int64(keep)
	if keep < len(diffs) {
		selectSmallest(diffs, keep)
		diffs = diffs[:keep]
	}
	// Ascending summation order matches the old sort-based code bit for bit;
	// sorting only the kept 80% is cheaper than sorting everything, and the
	// multiset of kept values is an order statistic, so it is exact.
	sort.Float64s(diffs)
	var sum float64
	for _, d := range diffs {
		sum += d
	}
	return sum / float64(keep)
}

// selectSmallest partially partitions a so a[:k] holds its k smallest values
// (in unspecified order): Hoare quickselect with deterministic
// median-of-three pivoting. Requires 0 < k < len(a) and no NaNs (the caller
// filtered them).
func selectSmallest(a []float64, k int) {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// a[lo..j] ≤ pivot ≤ a[i..hi]; recurse into the side holding the
		// k-th smallest (index k-1).
		switch {
		case k-1 <= j:
			hi = j
		case k-1 >= i:
			lo = i
		default:
			return
		}
	}
}

// DistMatrix is a symmetric pairwise distance matrix with an implicit zero
// diagonal, stored as the strict upper triangle in one flat contiguous
// slice — n(n-1)/2 cells instead of the n+1 separate allocations (and 2×
// redundant storage) of a [][]float64.
type DistMatrix struct {
	n     int
	cells []float64 // row-major strict upper triangle; see index
}

// NewDistMatrix returns an n×n matrix with all off-diagonal cells zero.
func NewDistMatrix(n int) *DistMatrix {
	m := &DistMatrix{}
	m.Reset(n)
	return m
}

// Reset resizes the matrix for n points, reusing the cell storage when it is
// large enough and zeroing nothing (every cell is written by the fill).
func (m *DistMatrix) Reset(n int) {
	m.n = n
	cells := n * (n - 1) / 2
	if cap(m.cells) < cells {
		m.cells = make([]float64, cells)
	}
	m.cells = m.cells[:cells]
}

// N returns the number of points.
func (m *DistMatrix) N() int { return m.n }

// index maps i < j to the flat cell position: rows of shrinking length
// n-1-i, so row i starts at i*(n-1) - i*(i-1)/2.
func (m *DistMatrix) index(i, j int) int {
	return i*(m.n-1) - i*(i-1)/2 + (j - i - 1)
}

// At returns the distance between points i and j. It satisfies
// optics.DistFunc directly — symmetry and the zero diagonal are structural.
func (m *DistMatrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return m.cells[m.index(i, j)]
}

// pairBlock is the number of pair cells per fill task. Blocks — not rows —
// are the fan-out unit: row i holds n-1-i cells, so one-task-per-row gives
// the first worker ~n cells and the last none, while fixed-size blocks of
// the flat triangle are balanced to within one block regardless of n.
const pairBlock = 2048

// DistanceMatrix builds the pairwise distance matrix for an ISP's
// measurements.
func DistanceMatrix(ms []*mlab.Measurement, sites []int, exclude float64) *DistMatrix {
	m, _ := DistanceMatrixContext(context.Background(), ms, sites, exclude, 1)
	return m
}

// DistanceMatrixContext is DistanceMatrix fanned out in balanced pair-blocks
// across workers: each task fills a disjoint contiguous range of the flat
// triangle, so any worker count fills the same cells. Distances are pure
// functions of the inputs — no RNG to thread.
func DistanceMatrixContext(ctx context.Context, ms []*mlab.Measurement, sites []int, exclude float64, workers int) (*DistMatrix, error) {
	m := NewDistMatrix(len(ms))
	if err := DistanceMatrixInto(ctx, m, ms, sites, exclude, workers); err != nil {
		return nil, err
	}
	return m, nil
}

// DistanceMatrixInto is DistanceMatrixContext writing into a caller-owned
// (typically per-worker, reused) matrix. On error the matrix contents are
// undefined. mDistancesComputed is incremented only on success: a
// context-cancelled fill computed some unknown subset, which must not count
// as completed work in the run manifest.
func DistanceMatrixInto(ctx context.Context, m *DistMatrix, ms []*mlab.Measurement, sites []int, exclude float64, workers int) error {
	n := len(ms)
	m.Reset(n)
	pairs := n * (n - 1) / 2
	blocks := (pairs + pairBlock - 1) / pairBlock
	opts := par.Options{Workers: workers, Name: "distance-matrix"}
	err := par.ForEachLocal(ctx, blocks, opts, func() *PairScratch { return &PairScratch{} },
		func(_ context.Context, b int, sc *PairScratch) error {
			start := b * pairBlock
			end := start + pairBlock
			if end > pairs {
				end = pairs
			}
			// Unrank the block's first flat cell into its (i, j) pair, then
			// walk the triangle row-major: the flat index advances in
			// lockstep, so each cell is written exactly once by one task.
			i, rowStart := 0, 0
			for rowStart+(n-1-i) <= start {
				rowStart += n - 1 - i
				i++
			}
			j := i + 1 + (start - rowStart)
			lr := obs.ActiveLineage()
			for k := start; k < end; k++ {
				m.cells[k] = sc.PairDistance(ms[i].RTTms, ms[j].RTTms, sites, exclude)
				if lr != nil {
					// Sampled pair evidence. Every pair belongs to exactly one
					// ISP's measurement set and one block task, so no two
					// workers ever offer the same identity — the sample is
					// deterministic at any worker count.
					a, b, d := ms[i].Target, ms[j].Target, m.cells[k]
					lr.Record(lnPairs, fmt.Sprintf("isp=%d", a.ISP),
						a.Addr.String()+"|"+b.Addr.String(),
						obs.LineageKept, "distance", func() []obs.LineageKV {
							return []obs.LineageKV{
								{K: "distance_ms", V: fmt.Sprintf("%.6g", d)},
								{K: "sites", V: fmt.Sprint(len(sites))},
								{K: "exclude_frac", V: fmt.Sprintf("%g", exclude)},
								{K: "hg_a", V: a.HG.String()},
								{K: "hg_b", V: b.HG.String()},
							}
						})
				}
				j++
				if j == n {
					i++
					j = i + 1
				}
			}
			sc.FlushFunnel()
			return nil
		})
	if err != nil {
		return err
	}
	mDistancesComputed.Add(int64(pairs))
	return nil
}
