package coloc

import (
	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
)

// The real pipeline can only validate clustering against reverse-DNS hints
// (internal/rdns); the simulation knows the actual facility and rack of
// every server, so it can score clustering exactly. This file provides that
// scoring: pairwise precision/recall/F1 of flat cluster labels against
// physical ground truth — used by the ablation benches and by tests.

// Granularity selects the physical grouping clusters are scored against.
type Granularity int

// Granularities.
const (
	ByFacility Granularity = iota
	ByRack
)

// PairScore is a pairwise clustering score.
type PairScore struct {
	TruePos, FalsePos, FalseNeg int
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (s PairScore) Precision() float64 {
	if s.TruePos+s.FalsePos == 0 {
		return 0
	}
	return float64(s.TruePos) / float64(s.TruePos+s.FalsePos)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (s PairScore) Recall() float64 {
	if s.TruePos+s.FalseNeg == 0 {
		return 0
	}
	return float64(s.TruePos) / float64(s.TruePos+s.FalseNeg)
}

// F1 returns the harmonic mean of precision and recall.
func (s PairScore) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ScoreLabels scores flat labels for one ISP's measurements against
// physical ground truth at the given granularity. Two servers are
// ground-truth-together when they share a facility (ByFacility) or both the
// facility and the rack (ByRack); they are predicted-together when they
// share a non-noise label.
func ScoreLabels(ms []*mlab.Measurement, labels []int, g Granularity) PairScore {
	var s PairScore
	same := func(a, b *mlab.Measurement) bool {
		if a.Target.Facility != b.Target.Facility {
			return false
		}
		return g == ByFacility || a.Target.Rack == b.Target.Rack
	}
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			truth := same(ms[i], ms[j])
			pred := labels[i] >= 0 && labels[i] == labels[j]
			switch {
			case truth && pred:
				s.TruePos++
			case !truth && pred:
				s.FalsePos++
			case truth && !pred:
				s.FalseNeg++
			}
		}
	}
	return s
}

// ScoreAnalysis aggregates pair scores over every analyzed access ISP at
// one ξ. Transit POPs are excluded: their facilities are placed by a
// different process and the paper's validation scoped to access networks.
func (a *Analysis) ScoreAnalysis(w *inet.World, c *mlab.Campaign, xi float64, g Granularity) PairScore {
	var total PairScore
	for as, isp := range a.PerISP {
		if host, ok := w.ISPs[as]; !ok || !host.IsAccess() {
			continue
		}
		x, ok := isp.PerXi[xi]
		if !ok {
			continue
		}
		s := ScoreLabels(c.ByISP[as], x.Labels, g)
		total.TruePos += s.TruePos
		total.FalsePos += s.FalsePos
		total.FalseNeg += s.FalseNeg
	}
	return total
}
