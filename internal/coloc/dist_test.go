package coloc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"

	"offnetrisk/internal/mlab"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/rngutil"
)

// referencePairDistance is the original allocate-and-fully-sort
// implementation, kept verbatim as the differential oracle for the
// selection-based kernel.
func referencePairDistance(a, b []float64, sites []int, exclude float64) float64 {
	diffs := make([]float64, 0, len(sites))
	for _, si := range sites {
		x, y := a[si], b[si]
		if math.IsNaN(x) || math.IsNaN(y) {
			continue
		}
		diffs = append(diffs, math.Abs(x-y))
	}
	if len(diffs) == 0 {
		return math.Inf(1)
	}
	sort.Float64s(diffs)
	keep := len(diffs) - int(float64(len(diffs))*exclude)
	if keep < 1 {
		keep = 1
	}
	var sum float64
	for _, d := range diffs[:keep] {
		sum += d
	}
	return sum / float64(keep)
}

// randomPair draws a random latency-vector pair: sometimes continuous,
// sometimes quantized to a tiny grid so the discrepancies are tie-heavy
// (duplicate values across the quickselect partition boundary), with NaN
// holes sprinkled in.
func randomPair(seed int64) (a, b []float64, sites []int, exclude float64) {
	r := rngutil.New(seed)
	n := r.Intn(200) + 1
	a = make([]float64, n)
	b = make([]float64, n)
	quantized := r.Intn(2) == 0
	for i := range a {
		if r.Float64() < 0.05 {
			a[i] = math.NaN()
		} else if quantized {
			a[i] = float64(r.Intn(4))
		} else {
			a[i] = r.Float64() * 50
		}
		if r.Float64() < 0.05 {
			b[i] = math.NaN()
		} else if quantized {
			b[i] = float64(r.Intn(4))
		} else {
			b[i] = r.Float64() * 50
		}
	}
	for i := 0; i < n; i++ {
		if r.Float64() < 0.8 {
			sites = append(sites, i)
		}
	}
	exclude = []float64{0, DiscrepancyExclusion, 0.5, r.Float64()}[r.Intn(4)]
	return a, b, sites, exclude
}

// TestPairDistanceMatchesReference is the differential proof: the
// quickselect kernel must reproduce the sort-based reference bit for bit on
// 1000 seeded random inputs, including tie-heavy ones, with one scratch
// reused across every case (the steady-state usage).
func TestPairDistanceMatchesReference(t *testing.T) {
	var sc PairScratch
	for seed := int64(0); seed < 1000; seed++ {
		a, b, sites, exclude := randomPair(seed)
		want := referencePairDistance(a, b, sites, exclude)
		got := sc.PairDistance(a, b, sites, exclude)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("seed %d: got %v, want %v (n=%d exclude=%v)", seed, got, want, len(sites), exclude)
		}
		if pkg := PairDistance(a, b, sites, exclude); math.Float64bits(pkg) != math.Float64bits(want) {
			t.Fatalf("seed %d: package-level PairDistance %v, want %v", seed, pkg, want)
		}
	}
}

// TestPairDistanceZeroAlloc guards the steady-state kernel: once the scratch
// has grown, a pair distance performs zero allocations.
func TestPairDistanceZeroAlloc(t *testing.T) {
	a, b, sites, _ := randomPair(7)
	var sc PairScratch
	sc.PairDistance(a, b, sites, DiscrepancyExclusion) // warm the buffer
	if n := testing.AllocsPerRun(200, func() {
		sc.PairDistance(a, b, sites, DiscrepancyExclusion)
	}); n != 0 {
		t.Fatalf("steady-state PairDistance allocates %v per pair, want 0", n)
	}
}

// syntheticMeasurements builds bare measurements (only RTTms is read by the
// distance kernel) for matrix tests.
func syntheticMeasurements(seed int64, n, sites int) ([]*mlab.Measurement, []int) {
	r := rngutil.New(seed)
	ms := make([]*mlab.Measurement, n)
	for i := range ms {
		v := make([]float64, sites)
		for s := range v {
			if r.Float64() < 0.03 {
				v[s] = math.NaN()
			} else {
				v[s] = r.Float64() * 40
			}
		}
		ms[i] = &mlab.Measurement{RTTms: v}
	}
	idx := make([]int, sites)
	for i := range idx {
		idx[i] = i
	}
	return ms, idx
}

// TestDistanceMatrixBlocksMatchPairDistance checks the balanced pair-block
// fill cell by cell against direct PairDistance calls, across worker counts
// and at a size large enough to span multiple blocks (n=70 → 2415 pairs >
// one 2048-cell block).
func TestDistanceMatrixBlocksMatchPairDistance(t *testing.T) {
	ms, sites := syntheticMeasurements(3, 70, 60)
	want := DistanceMatrix(ms, sites, DiscrepancyExclusion)
	for _, workers := range []int{1, 3, 8} {
		dm, err := DistanceMatrixContext(context.Background(), ms, sites, DiscrepancyExclusion, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(ms); i++ {
			for j := 0; j < len(ms); j++ {
				if math.Float64bits(dm.At(i, j)) != math.Float64bits(want.At(i, j)) {
					t.Fatalf("workers=%d: cell %d,%d = %v, want %v", workers, i, j, dm.At(i, j), want.At(i, j))
				}
			}
		}
	}
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			ref := referencePairDistance(ms[i].RTTms, ms[j].RTTms, sites, DiscrepancyExclusion)
			if math.Float64bits(want.At(i, j)) != math.Float64bits(ref) {
				t.Fatalf("cell %d,%d = %v, want reference %v", i, j, want.At(i, j), ref)
			}
		}
	}
}

// TestDistanceMatrixIntoReuse proves a reused matrix (the per-worker
// steady state) produces the same cells as a fresh one, including shrinking
// to a smaller n.
func TestDistanceMatrixIntoReuse(t *testing.T) {
	big, sitesBig := syntheticMeasurements(5, 40, 80)
	small, sitesSmall := syntheticMeasurements(6, 9, 30)
	var m DistMatrix
	ctx := context.Background()
	if err := DistanceMatrixInto(ctx, &m, big, sitesBig, DiscrepancyExclusion, 1); err != nil {
		t.Fatal(err)
	}
	if err := DistanceMatrixInto(ctx, &m, small, sitesSmall, DiscrepancyExclusion, 1); err != nil {
		t.Fatal(err)
	}
	fresh := DistanceMatrix(small, sitesSmall, DiscrepancyExclusion)
	if m.N() != fresh.N() {
		t.Fatalf("reused N = %d, want %d", m.N(), fresh.N())
	}
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			if m.At(i, j) != fresh.At(i, j) {
				t.Fatalf("reused cell %d,%d = %v, want %v", i, j, m.At(i, j), fresh.At(i, j))
			}
		}
	}
}

// TestDistanceMatrixCancelledCountsNothing is the satellite fix's guard: a
// fill aborted by context cancellation must return an error and must not
// advance the coloc.distances_computed counter — partial work is not
// completed work in the run manifest.
func TestDistanceMatrixCancelledCountsNothing(t *testing.T) {
	ms, sites := syntheticMeasurements(9, 30, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Reset the shared registry so the assertion is absolute, not a delta
	// that depends on which tests ran first.
	obs.Default.Reset()
	if _, err := DistanceMatrixContext(ctx, ms, sites, DiscrepancyExclusion, 2); err == nil {
		t.Fatal("cancelled fill returned no error")
	}
	var m DistMatrix
	if err := DistanceMatrixInto(ctx, &m, ms, sites, DiscrepancyExclusion, 2); err == nil {
		t.Fatal("cancelled Into fill returned no error")
	}
	if n := mDistancesComputed.Value(); n != 0 {
		t.Fatalf("cancelled fill advanced distances_computed to %d", n)
	}
}

// TestDistanceMatrixFunnelDeterministicAcrossWorkers sweeps worker counts
// and asserts the coloc.pairs funnel accounting is byte-identical: the
// counts are integer sums over a fixed pair set, so block scheduling must
// not change them.
func TestDistanceMatrixFunnelDeterministicAcrossWorkers(t *testing.T) {
	ms, sites := syntheticMeasurements(31, 163, 7)
	var ref []byte
	refWorkers := 0
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		obs.Default.Reset()
		if _, err := DistanceMatrixContext(context.Background(), ms, sites, DiscrepancyExclusion, workers); err != nil {
			t.Fatal(err)
		}
		state, err := json.Marshal(obs.Default.FunnelSnapshots())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refWorkers = state, workers
			continue
		}
		if !bytes.Equal(ref, state) {
			t.Fatalf("coloc.pairs accounting differs between workers=%d and workers=%d:\n%s\nvs\n%s",
				refWorkers, workers, ref, state)
		}
	}
	// And it balances: every considered site sample is kept or attributed.
	obs.Default.Reset()
	if _, err := DistanceMatrixContext(context.Background(), ms, sites, DiscrepancyExclusion, 2); err != nil {
		t.Fatal(err)
	}
	for _, s := range obs.Default.FunnelSnapshots() {
		if s.Name == "coloc.pairs" {
			if !s.Balanced() {
				t.Fatalf("coloc.pairs unbalanced: %+v", s)
			}
			wantIn := int64(len(ms)*(len(ms)-1)/2) * int64(len(sites))
			if s.In != wantIn {
				t.Fatalf("coloc.pairs in = %d, want %d (pairs × sites)", s.In, wantIn)
			}
		}
	}
}

// BenchmarkPairDistance measures the selection kernel at vector sizes
// bracketing the campaign's 163 usable sites.
func BenchmarkPairDistance(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rngutil.New(11)
			a := make([]float64, n)
			c := make([]float64, n)
			sites := make([]int, n)
			for i := 0; i < n; i++ {
				a[i] = r.Float64() * 40
				c[i] = r.Float64() * 40
				sites[i] = i
			}
			var sc PairScratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.PairDistance(a, c, sites, DiscrepancyExclusion)
			}
		})
	}
}
