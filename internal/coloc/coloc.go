// Package coloc performs the paper's colocation analysis (§3.2, Appendix A):
// per-ISP OPTICS clustering of offnet latency vectors into facility-level
// sites, the Table 2 colocation bucketing, the Figure 1 per-country
// aggregation, the Figure 2 traffic-share CCDF, and the §4.1 single-site
// statistics.
package coloc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"offnetrisk/internal/inet"
	"offnetrisk/internal/mlab"
	"offnetrisk/internal/obs"
	"offnetrisk/internal/optics"
	"offnetrisk/internal/par"
	"offnetrisk/internal/stats"
	"offnetrisk/internal/traffic"
)

var (
	mISPsAnalyzed = obs.NewCounter("coloc.isps_analyzed",
		"ISPs put through the per-ISP OPTICS clustering")
	mDistancesComputed = obs.NewCounter("coloc.distances_computed",
		"pairwise latency-vector distances computed")
)

// fPairs accounts per-site samples flowing through the pair-distance kernel:
// in = sites considered per pair, dropped = NaN-sided samples plus the 20%
// largest-discrepancy exclusion (Appendix A), out = samples actually summed.
// The hot path batches these in PairScratch and flushes per pair-block, so
// the kernel stays allocation-free; atomic integer adds commute, so the
// snapshot is identical at any worker count.
var (
	fPairs           = obs.NewFunnel("coloc.pairs", "per-site latency samples entering the pair-distance kernel vs. summed")
	fPairsNaN        = fPairs.Reason("nan_rtt")
	fPairsDiscrepant = fPairs.Reason("discrepant_20pct")
)

// Lineage stage names (DESIGN.md §13).
const (
	lnPairs   = "coloc.pairs"
	lnCluster = "coloc.cluster"
)

// fCluster accounts OPTICS cluster membership: servers entering label
// extraction vs. assigned to a cluster (noise = "not colocated"). It is
// lazily registered and fed only when lineage recording is on — the funnel
// exists for provenance, and eager registration would drift every committed
// golden manifest.
var fCluster = obs.NewLazyFunnel("coloc.cluster",
	"offnet servers entering OPTICS label extraction vs. assigned to a cluster")

// MeanTrafficHHI returns the user-weighted mean facility-traffic
// concentration index at the given ξ.
func (a *Analysis) MeanTrafficHHI(xi float64) float64 {
	var weighted, users float64
	for _, isp := range a.PerISP {
		x, ok := isp.PerXi[xi]
		if !ok {
			continue
		}
		weighted += x.TrafficHHI * isp.Users
		users += isp.Users
	}
	if users <= 0 {
		return 0
	}
	return weighted / users
}

// DiscrepancyExclusion is the fraction of vantage sites dropped per pair:
// "excluding measurements from the 20% of M-Lab sites that have the largest
// latency discrepancy between the two addresses" (Appendix A).
const DiscrepancyExclusion = 0.20

// XiResult is the clustering outcome for one ISP at one ξ.
type XiResult struct {
	// Labels aligns with the ISP's measurement slice; -1 is noise (an
	// offnet "not colocated" with anything).
	Labels []int
	// ColocFrac is, per hypergiant present, the fraction of its offnets
	// whose cluster also contains another hypergiant's offnet.
	ColocFrac map[traffic.HG]float64
	// SiteCount is the number of distinct sites per hypergiant: clusters
	// containing the hypergiant plus one site per noise server.
	SiteCount map[traffic.HG]int
	// BestHGs is the hypergiant set of the cluster hosting the most
	// distinct hypergiants (the "facility hosting the most hypergiants").
	BestHGs []traffic.HG
	// BestShare is the combined facility traffic share of that cluster.
	BestShare float64
	// TrafficHHI is the Herfindahl index of a user's traffic across the
	// ISP's facilities (clusters) plus the diffuse remainder — the
	// "concentration of traffic" of §1, as a number.
	TrafficHHI float64
}

// ISPResult is one ISP's analysis across ξ values.
type ISPResult struct {
	ASN   inet.ASN
	Users float64
	// HGs hosted by the ISP (from measured servers).
	HGs   []traffic.HG
	PerXi map[float64]*XiResult
}

// Analysis is the full colocation analysis of a measured deployment.
type Analysis struct {
	Xis    []float64
	PerISP map[inet.ASN]*ISPResult
}

// Analyze clusters every usable ISP at each ξ. MinPts is fixed at the
// paper's n_min = 2.
func Analyze(w *inet.World, c *mlab.Campaign, xis []float64) *Analysis {
	a, _ := AnalyzeContext(context.Background(), w, c, xis, 1)
	return a
}

// ispScratch is the per-worker reusable state of the per-ISP clustering
// task: the distance matrix storage and the OPTICS working arrays. With it,
// the steady-state analysis loop performs no per-pair and no per-run
// allocations — buffers grow to the largest ISP seen and stay.
type ispScratch struct {
	dm  DistMatrix
	opt optics.Scratch
}

// AnalyzeContext is Analyze fanned out one ISP per task (ascending ASN):
// each task builds its own distance matrix and OPTICS ordering, touching
// nothing shared, so the per-ISP results are identical at any worker count.
// The distance matrix and the OPTICS reachability ordering depend only on
// the sites and the exclusion — not on ξ — so both are computed once per
// ISP and the per-ξ work is just the steepness extraction over the shared
// ordering.
func AnalyzeContext(ctx context.Context, w *inet.World, c *mlab.Campaign, xis []float64, workers int) (*Analysis, error) {
	return AnalyzeMixContext(ctx, w, c, xis, workers, traffic.DefaultMix())
}

// AnalyzeMixContext is AnalyzeContext with traffic shares taken from the
// given mix instead of the paper's constants, so scenario worlds report
// facility shares consistent with their own traffic section.
func AnalyzeMixContext(ctx context.Context, w *inet.World, c *mlab.Campaign, xis []float64, workers int, mix traffic.Mix) (*Analysis, error) {
	mix = mix.Sanitized()
	a := &Analysis{Xis: xis, PerISP: make(map[inet.ASN]*ISPResult)}
	mISPsAnalyzed.Add(int64(len(c.ByISP)))
	asns := make([]inet.ASN, 0, len(c.ByISP))
	for as := range c.ByISP {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	results, err := par.MapLocal(ctx, len(asns), par.Options{Workers: workers, Name: "optics-cluster"},
		func() *ispScratch { return &ispScratch{} },
		func(_ context.Context, i int, sc *ispScratch) (*ISPResult, error) {
			as := asns[i]
			ms := c.ByISP[as]
			sites := c.GoodSites[as]
			if err := DistanceMatrixInto(ctx, &sc.dm, ms, sites, DiscrepancyExclusion, 1); err != nil {
				return nil, err
			}

			res := &ISPResult{ASN: as, PerXi: make(map[float64]*XiResult)}
			if isp, ok := w.ISPs[as]; ok {
				res.Users = isp.Users
			}
			res.HGs = hostedHGs(ms)
			ord := sc.opt.Run(len(ms), sc.dm.At, 2, math.Inf(1))
			for _, xi := range xis {
				labels := ord.Labels(ord.ExtractXi(xi, 2))
				res.PerXi[xi] = summarize(ms, labels, mix)
				recordClusterLineage(as, xi, ms, labels)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		a.PerISP[asns[i]] = res
	}
	return a, nil
}

// recordClusterLineage accounts cluster membership for one ISP at one ξ —
// only when lineage is on, so lineage-off runs keep every committed golden
// manifest byte-identical. Each (ISP, ξ) is handled by exactly one worker
// task, so no two workers ever offer the same decision identity.
func recordClusterLineage(as inet.ASN, xi float64, ms []*mlab.Measurement, labels []int) {
	lr := obs.ActiveLineage()
	if lr == nil {
		return
	}
	f := fCluster.Get()
	group := fmt.Sprintf("isp=%d|xi=%g", as, xi)
	var kept int64
	for i, m := range ms {
		l, m := labels[i], m
		outcome, reason := obs.LineageKept, "clustered"
		if l < 0 {
			outcome, reason = obs.LineageDropped, "noise"
		} else {
			kept++
		}
		lr.Record(lnCluster, group, m.Target.Addr.String(), outcome, reason,
			func() []obs.LineageKV {
				return []obs.LineageKV{
					{K: "xi", V: fmt.Sprintf("%g", xi)},
					{K: "cluster", V: fmt.Sprint(l)},
					{K: "hg", V: m.Target.HG.String()},
				}
			})
	}
	n := int64(len(ms))
	f.In(n)
	f.Out(kept)
	if n > kept {
		f.Drop("noise", n-kept)
	}
	lr.CountIn(lnCluster, n)
	lr.CountKept(lnCluster, kept)
	if n > kept {
		lr.CountDrop(lnCluster, "noise", n-kept)
	}
}

// hostedHGs lists the distinct hypergiants among measurements, in canonical
// order.
func hostedHGs(ms []*mlab.Measurement) []traffic.HG {
	var present [traffic.NumHG]bool
	for _, m := range ms {
		present[m.Target.HG] = true
	}
	var out []traffic.HG
	for _, hg := range traffic.All {
		if present[hg] {
			out = append(out, hg)
		}
	}
	return out
}

// summarize derives the per-ξ statistics from flat cluster labels.
func summarize(ms []*mlab.Measurement, labels []int, mix traffic.Mix) *XiResult {
	r := &XiResult{
		Labels:    labels,
		ColocFrac: make(map[traffic.HG]float64),
		SiteCount: make(map[traffic.HG]int),
	}

	// Cluster → hypergiant set.
	clusterHGs := make(map[int]map[traffic.HG]bool)
	for i, m := range ms {
		l := labels[i]
		if l < 0 {
			continue
		}
		if clusterHGs[l] == nil {
			clusterHGs[l] = make(map[traffic.HG]bool)
		}
		clusterHGs[l][m.Target.HG] = true
	}

	// Colocated fraction per hypergiant.
	total := make(map[traffic.HG]int)
	coloc := make(map[traffic.HG]int)
	for i, m := range ms {
		hg := m.Target.HG
		total[hg]++
		if l := labels[i]; l >= 0 && len(clusterHGs[l]) >= 2 {
			coloc[hg]++
		}
	}
	for hg, n := range total {
		r.ColocFrac[hg] = float64(coloc[hg]) / float64(n)
	}

	// Site counts: distinct clusters containing the hypergiant plus one
	// site per noise server of that hypergiant.
	seen := make(map[traffic.HG]map[int]bool)
	for i, m := range ms {
		hg := m.Target.HG
		if labels[i] < 0 {
			r.SiteCount[hg]++
			continue
		}
		if seen[hg] == nil {
			seen[hg] = make(map[int]bool)
		}
		if !seen[hg][labels[i]] {
			seen[hg][labels[i]] = true
			r.SiteCount[hg]++
		}
	}

	// Best cluster: most distinct hypergiants; ties by combined share.
	for _, hgs := range clusterHGs {
		var list []traffic.HG
		for _, hg := range traffic.All {
			if hgs[hg] {
				list = append(list, hg)
			}
		}
		share := mix.CombinedFacilityShare(list)
		if len(list) > len(r.BestHGs) || (len(list) == len(r.BestHGs) && share > r.BestShare) {
			r.BestHGs = list
			r.BestShare = share
		}
	}
	// An ISP whose servers are all noise still serves each hypergiant from
	// somewhere; its best "facility" is a single-hypergiant site.
	if r.BestHGs == nil && len(ms) > 0 {
		best := ms[0].Target.HG
		r.BestHGs = []traffic.HG{best}
		r.BestShare = mix.CombinedFacilityShare(r.BestHGs)
	}

	// Traffic concentration: one share per cluster (what its hypergiants
	// can serve of a user's traffic) plus the diffuse remainder from
	// everywhere else.
	var shares []float64
	var sum float64
	clusterIDs := make([]int, 0, len(clusterHGs))
	for l := range clusterHGs {
		clusterIDs = append(clusterIDs, l)
	}
	sort.Ints(clusterIDs)
	for _, l := range clusterIDs {
		var list []traffic.HG
		for _, hg := range traffic.All {
			if clusterHGs[l][hg] {
				list = append(list, hg)
			}
		}
		share := mix.CombinedFacilityShare(list)
		shares = append(shares, share)
		sum += share
	}
	if rest := 1 - sum; rest > 0 {
		shares = append(shares, rest)
	}
	r.TrafficHHI = stats.HHI(shares)
	return r
}

// Table2Row is one row of Table 2: a hypergiant at one ξ.
type Table2Row struct {
	HG traffic.HG
	Xi float64
	// SoleFrac is the fraction of the hypergiant's host ISPs hosting no
	// other hypergiant.
	SoleFrac float64
	// BucketFrac buckets multi-hypergiant hosts by the colocated share of
	// this hypergiant's offnets. SoleFrac + ΣBucketFrac = 1.
	BucketFrac [stats.NumBuckets]float64
}

// Table2 computes the colocation table over the analyzed ISPs.
func (a *Analysis) Table2() []Table2Row {
	var rows []Table2Row
	for _, hg := range traffic.All {
		for _, xi := range a.Xis {
			row := Table2Row{HG: hg, Xi: xi}
			var hosts, sole int
			var hist stats.Histogram
			for _, isp := range a.PerISP {
				if !hasHG(isp.HGs, hg) {
					continue
				}
				hosts++
				if len(isp.HGs) == 1 {
					sole++
					continue
				}
				hist.Add(stats.BucketOf(isp.PerXi[xi].ColocFrac[hg]))
			}
			if hosts == 0 {
				rows = append(rows, row)
				continue
			}
			row.SoleFrac = float64(sole) / float64(hosts)
			multi := float64(hosts - sole)
			for b := stats.BucketZero; b < stats.NumBuckets; b++ {
				if multi > 0 {
					row.BucketFrac[b] = float64(hist.Counts[b]) / float64(hosts)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func hasHG(hgs []traffic.HG, hg traffic.HG) bool {
	for _, h := range hgs {
		if h == hg {
			return true
		}
	}
	return false
}

// Figure2 returns the user-weighted CCDF of the estimated traffic fraction
// one facility can serve, at the given ξ.
func (a *Analysis) Figure2(xi float64) []stats.CCDFPoint {
	var pts []stats.WeightedPoint
	for _, isp := range a.PerISP {
		x, ok := isp.PerXi[xi]
		if !ok {
			continue
		}
		pts = append(pts, stats.WeightedPoint{Value: x.BestShare, Weight: isp.Users})
	}
	return stats.WeightedCCDF(pts)
}

// SingleSiteFrac returns the fraction of the hypergiant's host ISPs with
// exactly one site at the given ξ (§4.1: e.g. "75.3%–91.2% of ISPs have only
// a single Netflix site").
func (a *Analysis) SingleSiteFrac(hg traffic.HG, xi float64) float64 {
	var hosts, single int
	for _, isp := range a.PerISP {
		x, ok := isp.PerXi[xi]
		if !ok {
			continue
		}
		n, hosted := x.SiteCount[hg]
		if !hosted {
			continue
		}
		hosts++
		if n == 1 {
			single++
		}
	}
	if hosts == 0 {
		return 0
	}
	return float64(single) / float64(hosts)
}

// UserShareAtLeast returns the fraction of analyzed users whose ISP has a
// facility able to serve at least the given traffic share (§3.2: "71%–82%
// are in an ISP with a facility ... capable of delivering at least 25% of
// their traffic").
func (a *Analysis) UserShareAtLeast(xi, share float64) float64 {
	var total, qualifying float64
	for _, isp := range a.PerISP {
		x, ok := isp.PerXi[xi]
		if !ok {
			continue
		}
		total += isp.Users
		if x.BestShare >= share {
			qualifying += isp.Users
		}
	}
	if total == 0 {
		return 0
	}
	return qualifying / total
}
