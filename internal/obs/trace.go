package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Chrome trace-event export: the span forest, per-worker tracks, funnel and
// chaos counter tracks, and chaos-fault instant events serialized in the
// trace-event JSON format, loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing. The export is a pure rendering of recorded timeline
// state — it draws no randomness and never feeds back into results.
//
// Track layout: every span runs on the process pid TracePID. Spans opened by
// the sequential pipeline cursor render on the "main" thread (tid 1);
// par worker spans — recognized by their "worker" attribute — and everything
// nested under them render on a per-worker "worker-N" track (tid 2+N), so a
// parallel region reads as N concurrent lanes whose busy/idle gaps are the
// utilization picture internal/par accounts.

// TracePID is the synthetic process id of all exported events.
const TracePID = 1

// traceMainTID is the track of cursor-nested (sequential) spans.
const traceMainTID = 1

// traceWorkerTIDBase maps worker w to tid traceWorkerTIDBase+w.
const traceWorkerTIDBase = 2

// TraceEvent is one trace-event object. Field names follow the trace-event
// format: ph is the phase ("X" complete, "i" instant, "C" counter, "M"
// metadata), ts/dur are microseconds relative to the trace origin.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"` // pointer: 0 is meaningful on "X"
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("p" = process)
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the on-disk JSON object. Perfetto accepts this envelope
// directly; traceEvents carries every event.
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// BuildTrace renders the tracer's recorded timeline — spans, instants, and
// counter marks — as a trace file. The tracer's epoch is the trace origin.
func BuildTrace(t *Tracer) *TraceFile {
	tf := &TraceFile{DisplayTimeUnit: "ms"}
	if t == nil {
		return tf
	}
	spans := t.Snapshot(t.Epoch())

	// Metadata: name the process and the main track up front; worker tracks
	// are named as they are discovered.
	tf.add(TraceEvent{Name: "process_name", Ph: "M", Pid: TracePID, Tid: traceMainTID,
		Args: map[string]any{"name": "offnetrisk"}})
	tf.add(TraceEvent{Name: "thread_name", Ph: "M", Pid: TracePID, Tid: traceMainTID,
		Args: map[string]any{"name": "main"}})

	namedTids := map[int]bool{traceMainTID: true}
	for _, s := range spans {
		tf.addSpan(s, traceMainTID, namedTids)
	}
	for _, in := range t.Instants() {
		tf.add(TraceEvent{
			Name: in.Name, Cat: "instant", Ph: "i", S: "p",
			TS: in.AtMS * 1000, Pid: TracePID, Tid: traceMainTID,
			Args: in.Attrs,
		})
	}
	if sup := t.InstantsSuppressed(); len(sup) > 0 {
		// Record what the per-name cap dropped, so a heavily-faulted trace
		// says it is a sample rather than silently looking complete.
		tf.OtherData = map[string]any{"instants_suppressed": sup}
	}
	for _, mark := range t.Marks() {
		for _, f := range mark.Funnels {
			tf.add(TraceEvent{
				Name: "funnel:" + f.Name, Cat: "funnel", Ph: "C",
				TS: mark.AtMS * 1000, Pid: TracePID, Tid: traceMainTID,
				Args: map[string]any{"kept": f.Out, "dropped": f.Dropped()},
			})
		}
		for _, name := range sortedKeys(mark.Counters) {
			tf.add(TraceEvent{
				Name: name, Cat: "counter", Ph: "C",
				TS: mark.AtMS * 1000, Pid: TracePID, Tid: traceMainTID,
				Args: map[string]any{"value": mark.Counters[name]},
			})
		}
	}
	return tf
}

func (tf *TraceFile) add(e TraceEvent) { tf.TraceEvents = append(tf.TraceEvents, e) }

// addSpan emits one complete ("X") event per span, descending with the
// track inherited from the parent unless the span is a par worker span,
// which opens (and names) its own worker track.
func (tf *TraceFile) addSpan(s SpanSnapshot, tid int, namedTids map[int]bool) {
	if w, ok := workerIndex(s); ok {
		tid = traceWorkerTIDBase + w
		if !namedTids[tid] {
			namedTids[tid] = true
			tf.add(TraceEvent{Name: "thread_name", Ph: "M", Pid: TracePID, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("worker-%d", w)}})
			tf.add(TraceEvent{Name: "thread_sort_index", Ph: "M", Pid: TracePID, Tid: tid,
				Args: map[string]any{"sort_index": tid}})
		}
	}
	args := make(map[string]any, len(s.Attrs)+2)
	for k, v := range s.Attrs {
		args[k] = v
	}
	args["alloc_bytes"] = s.AllocBytes
	args["mallocs"] = s.Mallocs
	dur := s.DurMS * 1000
	tf.add(TraceEvent{
		Name: s.Name, Cat: "span", Ph: "X",
		TS: s.StartMS * 1000, Dur: &dur,
		Pid: TracePID, Tid: tid, Args: args,
	})
	for _, c := range s.Children {
		tf.addSpan(c, tid, namedTids)
	}
}

// workerIndex recognizes a par worker span by its "worker" attribute (an int
// on live snapshots, a float64 after a JSON round trip).
func workerIndex(s SpanSnapshot) (int, bool) {
	v, ok := s.Attrs["worker"]
	if !ok {
		return 0, false
	}
	f, ok := attrFloat(v)
	if !ok || f < 0 {
		return 0, false
	}
	return int(f), true
}

// attrFloat coerces a span attribute to float64 across the types attribute
// values take live (int, int64, float64) and after JSON decoding (float64).
func attrFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}

// WriteTrace serializes the tracer's timeline as trace-event JSON.
func WriteTrace(w io.Writer, t *Tracer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(BuildTrace(t)); err != nil {
		return fmt.Errorf("obs: encode trace: %w", err)
	}
	return nil
}

// WriteTraceFile writes the trace to path (the -trace flag's sink).
func WriteTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create trace %s: %w", path, err)
	}
	if err := WriteTrace(f, t); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close trace %s: %w", path, err)
	}
	return nil
}

// ReadTraceFile loads a trace written by WriteTraceFile (cmd/obsprofile and
// the schema tests).
func ReadTraceFile(path string) (*TraceFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("obs: parse trace %s: %w", path, err)
	}
	return &tf, nil
}

// ValidateTrace checks the structural contract of an exported trace: every
// event carries a known phase, a name, the process pid, non-negative
// timestamps, and a duration exactly when the phase requires one. It returns
// the first violation, or nil. This is the strict-schema gate the CI test
// runs over real exports.
func ValidateTrace(tf *TraceFile) error {
	if tf == nil {
		return fmt.Errorf("obs: nil trace")
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	for i, e := range tf.TraceEvents {
		where := fmt.Sprintf("event %d (%q)", i, e.Name)
		if e.Name == "" {
			return fmt.Errorf("obs: %s: empty name", where)
		}
		if e.Pid != TracePID {
			return fmt.Errorf("obs: %s: pid %d, want %d", where, e.Pid, TracePID)
		}
		if e.Tid < traceMainTID {
			return fmt.Errorf("obs: %s: invalid tid %d", where, e.Tid)
		}
		switch e.Ph {
		case "X":
			if e.TS < 0 {
				return fmt.Errorf("obs: %s: negative ts %g", where, e.TS)
			}
			if e.Dur == nil || *e.Dur < 0 {
				return fmt.Errorf("obs: %s: complete event without non-negative dur", where)
			}
		case "i":
			if e.TS < 0 {
				return fmt.Errorf("obs: %s: negative ts %g", where, e.TS)
			}
			if e.S != "p" && e.S != "t" && e.S != "g" {
				return fmt.Errorf("obs: %s: instant scope %q", where, e.S)
			}
		case "C":
			if e.TS < 0 {
				return fmt.Errorf("obs: %s: negative ts %g", where, e.TS)
			}
			if len(e.Args) == 0 {
				return fmt.Errorf("obs: %s: counter event without args", where)
			}
			for k, v := range e.Args {
				if _, ok := attrFloat(v); !ok {
					return fmt.Errorf("obs: %s: counter arg %s is not numeric (%T)", where, k, v)
				}
			}
		case "M":
			if len(e.Args) == 0 {
				return fmt.Errorf("obs: %s: metadata event without args", where)
			}
		default:
			return fmt.Errorf("obs: %s: unknown phase %q", where, e.Ph)
		}
	}
	return nil
}

// SpanEvents filters the complete ("X") span events, sorted by start time —
// a convenience for analyzers and tests.
func (tf *TraceFile) SpanEvents() []TraceEvent {
	var out []TraceEvent
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" && e.Cat == "span" {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// CounterTracks lists the distinct counter-track names in the trace, sorted.
func (tf *TraceFile) CounterTracks() []string {
	seen := map[string]bool{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "C" {
			seen[e.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InstantNames lists the distinct instant-event names, sorted — the chaos
// fault kinds visible on the timeline.
func (tf *TraceFile) InstantNames() []string {
	seen := map[string]bool{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "i" {
			seen[e.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
