package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Lineage records per-decision provenance. Funnels say how many items each
// classification stage kept or dropped; lineage says which evidence put a
// specific subject (an address, an ISP, a trace hop) into a specific outcome,
// so any cell of Table 1/2 can be explained end to end. Recording is
// default-off: sites consult the process-wide recorder via ActiveLineage,
// every recorder method is nil-safe, and a disabled run costs one atomic
// load + nil check per call site.
//
// Two concerns are deliberately decoupled:
//
//   - Counts. CountIn/CountKept/CountDrop mirror the funnel feeds exactly
//     (same stage names, same reason codes), so per-stage lineage counts
//     reconcile against funnel accounting: in == kept + Σ drops, and any
//     site that drops data without recording why fails the guard.
//
//   - Records. Full evidence records are sampled: per (stage, group) the
//     recorder keeps the cap records whose admission key — a pure hash of
//     the record's identity, never a sequential RNG draw — is smallest.
//     A bounded min-set over a multiset is arrival-order independent, so
//     the retained sample (and hence the digest) is byte-identical at any
//     -workers/-shards. Sites must uphold one invariant for this to hold:
//     a record's evidence is a pure function of its identity
//     (stage, group, subject, outcome, reason) and the run configuration,
//     so identically keyed duplicates are byte-identical and deduplication
//     is safe.
//
// Group keys choose the sampling granularity. Table 1 classification groups
// by (hypergiant, ISP, pass) so every populated cell retains at least one
// record; per-ISP stages group by ISP. The empty group is legal and groups
// by reason code alone.
type LineageRecorder struct {
	mu     sync.RWMutex
	stages map[string]*lineageStage
	caps   map[string]int
}

// LineageKV is one evidence key/value pair on a decision record.
type LineageKV struct {
	K string `json:"k"`
	V string `json:"v"`
}

// LineageDecision is one sampled classification decision: the evidence chain
// behind one subject's outcome at one stage.
type LineageDecision struct {
	Stage      string      `json:"stage"`
	Group      string      `json:"group,omitempty"`
	Subject    string      `json:"subject"`
	Outcome    string      `json:"outcome"`
	ReasonCode string      `json:"reason_code,omitempty"`
	Evidence   []LineageKV `json:"evidence,omitempty"`
}

// Outcome values for LineageDecision. Kept decisions carry the reason code
// "" or a positive classification tag; dropped decisions carry the funnel
// drop reason.
const (
	LineageKept    = "kept"
	LineageDropped = "dropped"
)

// LineageStageCount is one stage's decision accounting as exported to the
// manifest and the lineage file summary. It reconciles against the stage's
// funnel: In == Kept + Σ Drops.
type LineageStageCount struct {
	Stage string       `json:"stage"`
	In    int64        `json:"in"`
	Kept  int64        `json:"kept"`
	Drops []FunnelDrop `json:"drops,omitempty"`
}

// Dropped returns the total decisions dropped across reasons.
func (s LineageStageCount) Dropped() int64 {
	var n int64
	for _, d := range s.Drops {
		n += d.N
	}
	return n
}

// Balanced reports whether the accounting reconciles: In == Kept + Σ drops.
func (s LineageStageCount) Balanced() bool { return s.In == s.Kept+s.Dropped() }

// DropN returns the count recorded for the reason (0 when absent).
func (s LineageStageCount) DropN(reason string) int64 {
	for _, d := range s.Drops {
		if d.Reason == reason {
			return d.N
		}
	}
	return 0
}

// DefaultLineageCap is the per-(stage, group) sampled-record cap.
const DefaultLineageCap = 2

type lineageStage struct {
	in   atomic.Int64
	kept atomic.Int64
	cap  int

	mu     sync.Mutex
	drops  map[string]int64
	groups map[string]*lineageGroup
}

type lineageGroup struct {
	recs []lineageAdmitted
}

type lineageAdmitted struct {
	key uint64
	id  string
	dec LineageDecision
}

// NewLineageRecorder returns an empty recorder with the default sampling cap.
func NewLineageRecorder() *LineageRecorder {
	return &LineageRecorder{
		stages: make(map[string]*lineageStage),
		caps:   make(map[string]int),
	}
}

// SetCap overrides the per-(stage, group) record cap for one stage. Call
// before the stage records anything; a cap set after is ignored.
func (r *LineageRecorder) SetCap(stage string, cap int) {
	if r == nil || cap <= 0 {
		return
	}
	r.mu.Lock()
	r.caps[stage] = cap
	r.mu.Unlock()
}

func (r *LineageRecorder) stage(name string) *lineageStage {
	r.mu.RLock()
	s := r.stages[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.stages[name]; s != nil {
		return s
	}
	k := r.caps[name]
	if k <= 0 {
		k = DefaultLineageCap
	}
	s = &lineageStage{
		cap:    k,
		drops:  make(map[string]int64),
		groups: make(map[string]*lineageGroup),
	}
	r.stages[name] = s
	return s
}

// CountIn records n decisions entering the stage. Safe on a nil receiver.
func (r *LineageRecorder) CountIn(stage string, n int64) {
	if r != nil {
		r.stage(stage).in.Add(n)
	}
}

// CountKept records n decisions kept by the stage. Safe on a nil receiver.
func (r *LineageRecorder) CountKept(stage string, n int64) {
	if r != nil {
		r.stage(stage).kept.Add(n)
	}
}

// CountDrop records n decisions dropped by the stage for the reason (the
// funnel's drop-reason tag, verbatim). Safe on a nil receiver.
func (r *LineageRecorder) CountDrop(stage, reason string, n int64) {
	if r == nil || n == 0 {
		return
	}
	s := r.stage(stage)
	s.mu.Lock()
	s.drops[reason] += n
	s.mu.Unlock()
}

// lineageKey derives the hash admission key for a record identity. FNV-1a
// over the full identity: pure, order-free, no sequential state.
func lineageKey(stage, group, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(stage))
	h.Write([]byte{0})
	h.Write([]byte(group))
	h.Write([]byte{0})
	h.Write([]byte(id))
	return h.Sum64()
}

// admitBefore orders candidates by (key, id): the sample keeps the records
// that sort first. The id tiebreak keeps eviction deterministic even across
// 64-bit hash collisions.
func admitBefore(key uint64, id string, than lineageAdmitted) bool {
	if key != than.key {
		return key < than.key
	}
	return id < than.id
}

// Record offers one decision for sampling. The evidence builder runs only if
// the record is admitted, so call sites pay nothing for decisions the sample
// rejects. Safe on a nil receiver. Record does not touch the stage counts;
// call CountIn/CountKept/CountDrop alongside, mirroring the funnel feeds.
func (r *LineageRecorder) Record(stage, group, subject, outcome, reason string, build func() []LineageKV) {
	if r == nil {
		return
	}
	s := r.stage(stage)
	id := subject + "\x00" + outcome + "\x00" + reason
	key := lineageKey(stage, group, id)

	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[group]
	if g == nil {
		g = &lineageGroup{}
		s.groups[group] = g
	}
	for i := range g.recs {
		if g.recs[i].id == id {
			// Duplicate identity: by the purity invariant the evidence would
			// be byte-identical, so the already admitted record stands.
			return
		}
	}
	slot := -1
	if len(g.recs) < s.cap {
		g.recs = append(g.recs, lineageAdmitted{})
		slot = len(g.recs) - 1
	} else {
		worst := 0
		for i := 1; i < len(g.recs); i++ {
			if admitBefore(g.recs[worst].key, g.recs[worst].id, g.recs[i]) {
				worst = i
			}
		}
		if !admitBefore(key, id, g.recs[worst]) {
			return
		}
		slot = worst
	}
	dec := LineageDecision{
		Stage:      stage,
		Group:      group,
		Subject:    subject,
		Outcome:    outcome,
		ReasonCode: reason,
	}
	if build != nil {
		dec.Evidence = build()
	}
	g.recs[slot] = lineageAdmitted{key: key, id: id, dec: dec}
}

// StageCounts returns every stage's decision accounting, stages sorted by
// name and drops sorted by reason — the deterministic order used by the
// manifest and the lineage file summary.
func (r *LineageRecorder) StageCounts() []LineageStageCount {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.stages))
	for n := range r.stages {
		names = append(names, n)
	}
	stages := make(map[string]*lineageStage, len(r.stages))
	for n, s := range r.stages {
		stages[n] = s
	}
	r.mu.RUnlock()
	sort.Strings(names)

	out := make([]LineageStageCount, 0, len(names))
	for _, n := range names {
		s := stages[n]
		sc := LineageStageCount{Stage: n, In: s.in.Load(), Kept: s.kept.Load()}
		s.mu.Lock()
		for reason, cnt := range s.drops {
			sc.Drops = append(sc.Drops, FunnelDrop{Reason: reason, N: cnt})
		}
		s.mu.Unlock()
		sort.Slice(sc.Drops, func(i, j int) bool { return sc.Drops[i].Reason < sc.Drops[j].Reason })
		out = append(out, sc)
	}
	return out
}

// lineageLess is the canonical record order: records sort by
// (Stage, Group, Subject, Outcome, ReasonCode). Identity determines evidence
// (the purity invariant), so this fully orders the sample.
func lineageLess(a, b LineageDecision) bool {
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	if a.Group != b.Group {
		return a.Group < b.Group
	}
	if a.Subject != b.Subject {
		return a.Subject < b.Subject
	}
	if a.Outcome != b.Outcome {
		return a.Outcome < b.Outcome
	}
	return a.ReasonCode < b.ReasonCode
}

// Records returns every sampled decision in canonical order.
func (r *LineageRecorder) Records() []LineageDecision {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	stages := make([]*lineageStage, 0, len(r.stages))
	for _, s := range r.stages {
		stages = append(stages, s)
	}
	r.mu.RUnlock()

	var out []LineageDecision
	for _, s := range stages {
		s.mu.Lock()
		for _, g := range s.groups {
			for _, a := range g.recs {
				out = append(out, a.dec)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return lineageLess(out[i], out[j]) })
	return out
}

// recordLines renders the canonical JSONL record lines — the exact bytes
// WriteLineageFile emits and Digest hashes.
func (r *LineageRecorder) recordLines() [][]byte {
	recs := r.Records()
	lines := make([][]byte, len(recs))
	for i, d := range recs {
		b, err := json.Marshal(d)
		if err != nil {
			// Decisions are plain strings; marshal cannot fail. Keep the
			// line count stable regardless.
			b = []byte("{}")
		}
		lines[i] = append(b, '\n')
	}
	return lines
}

// Digest returns the canonical SHA-256 of the sampled records: the hash of
// the JSONL record lines exactly as WriteLineageFile emits them. Equal seeds
// and configs produce equal digests at any worker or shard count; rehashing
// a written lineage file's record lines reproduces it. Returns "" on a nil
// recorder.
func (r *LineageRecorder) Digest() string {
	if r == nil {
		return ""
	}
	h := sha256.New()
	for _, line := range r.recordLines() {
		h.Write(line)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// activeLineage is the process-wide recorder classification sites consult.
// Default off (nil): every method on the nil recorder no-ops.
var activeLineage atomic.Pointer[LineageRecorder]

// SetLineage installs r as the process-wide active recorder. Pass nil to
// disable recording.
func SetLineage(r *LineageRecorder) { activeLineage.Store(r) }

// ActiveLineage returns the active recorder, or nil when lineage is off.
// Recorder methods are nil-safe, so call sites chain directly:
//
//	obs.ActiveLineage().CountIn("ping.filter", 1)
func ActiveLineage() *LineageRecorder { return activeLineage.Load() }

// LineageEnabled reports whether a recorder is active. Sites use it to gate
// work with no lineage-off equivalent (registering lineage-only funnels,
// building group keys).
func LineageEnabled() bool { return activeLineage.Load() != nil }

// LineageMarkdown renders the recorder's state as the report's "Evidence
// appendix": the per-stage decision accounting, then up to maxPerStage
// sampled evidence chains per stage. The output is a pure function of the
// canonical record set, so — like every experiment section — it is
// byte-identical at any worker or shard count.
func LineageMarkdown(r *LineageRecorder, maxPerStage int) string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "| stage | in | kept | dropped | drop breakdown |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	for _, s := range r.StageCounts() {
		var reasons []string
		for _, d := range s.Drops {
			reasons = append(reasons, fmt.Sprintf("%s=%d", d.Reason, d.N))
		}
		breakdown := strings.Join(reasons, ", ")
		if breakdown == "" {
			breakdown = "—"
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %s |\n", s.Stage, s.In, s.Kept, s.Dropped(), breakdown)
	}

	perStage := 0
	last := ""
	for _, rec := range r.Records() {
		if rec.Stage != last {
			fmt.Fprintf(&b, "\n**%s**\n\n", rec.Stage)
			last, perStage = rec.Stage, 0
		}
		if perStage >= maxPerStage {
			continue
		}
		perStage++
		head := rec.Outcome
		if rec.ReasonCode != "" {
			head += "/" + rec.ReasonCode
		}
		fmt.Fprintf(&b, "- `%s` %s", rec.Subject, head)
		if rec.Group != "" {
			fmt.Fprintf(&b, " (%s)", rec.Group)
		}
		var kvs []string
		for _, kv := range rec.Evidence {
			kvs = append(kvs, kv.K+"="+kv.V)
		}
		if len(kvs) > 0 {
			fmt.Fprintf(&b, " — %s", strings.Join(kvs, ", "))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
