package obs

import "context"

// spanKey is the context key carrying the current span. Spans travel by
// context through code that fans out across goroutines: the tracer's
// sequential cursor cannot attribute concurrent stages, but a span carried
// explicitly can parent worker spans without races (Span.Child is
// mutex-safe and never touches the cursor).
type spanKey struct{}

// ContextWithSpan returns a context carrying the span. A nil span is stored
// as-is; SpanFromContext then returns nil and all span methods no-op.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by the context, or nil if none
// (or a nil span) was attached. Safe to call on any context.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
