package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// Lineage file format: one canonical JSON record line per sampled decision
// (sorted, stable field order — the same bytes Digest hashes), terminated by
// a single summary line carrying the schema version, record count, digest,
// and per-stage decision counts. The digest covers the record lines only, so
// a reader can re-hash what it read and detect truncation or tampering.

// LineageSchemaVersion is the current lineage file schema.
const LineageSchemaVersion = 1

// LineageSummary is the trailing line of a lineage file.
type LineageSummary struct {
	Type    string              `json:"type"` // always "summary"
	Schema  int                 `json:"schema"`
	Records int                 `json:"records"`
	Digest  string              `json:"digest"`
	Stages  []LineageStageCount `json:"stages,omitempty"`
}

// WriteLineageFile spills the recorder's sampled decisions to path as JSONL.
func WriteLineageFile(path string, r *LineageRecorder) error {
	if r == nil {
		return fmt.Errorf("obs: write lineage %s: no active recorder", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create lineage file: %w", err)
	}
	w := bufio.NewWriter(f)
	lines := r.recordLines()
	for _, line := range lines {
		if _, err := w.Write(line); err != nil {
			f.Close()
			return fmt.Errorf("obs: write lineage record: %w", err)
		}
	}
	sum := LineageSummary{
		Type:    "summary",
		Schema:  LineageSchemaVersion,
		Records: len(lines),
		Digest:  r.Digest(),
		Stages:  r.StageCounts(),
	}
	b, err := json.Marshal(sum)
	if err != nil {
		f.Close()
		return fmt.Errorf("obs: marshal lineage summary: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("obs: write lineage summary: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("obs: flush lineage file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close lineage file: %w", err)
	}
	return nil
}

// LineageFile is a loaded lineage capture.
type LineageFile struct {
	Records []LineageDecision
	Summary LineageSummary
}

// ReadLineageFile loads a file written by WriteLineageFile, verifying the
// record count and digest against the summary line.
func ReadLineageFile(path string) (*LineageFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read lineage file: %w", err)
	}
	defer f.Close()

	var lf LineageFile
	sawSummary := false
	h := sha256.New()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if sawSummary {
			return nil, fmt.Errorf("obs: lineage %s:%d: data after summary line", path, lineNo)
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("obs: lineage %s:%d: %w", path, lineNo, err)
		}
		if probe.Type == "summary" {
			if err := json.Unmarshal(line, &lf.Summary); err != nil {
				return nil, fmt.Errorf("obs: lineage %s:%d: summary: %w", path, lineNo, err)
			}
			sawSummary = true
			continue
		}
		var dec LineageDecision
		if err := json.Unmarshal(line, &dec); err != nil {
			return nil, fmt.Errorf("obs: lineage %s:%d: record: %w", path, lineNo, err)
		}
		lf.Records = append(lf.Records, dec)
		h.Write(line)
		h.Write([]byte{'\n'})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan lineage %s: %w", path, err)
	}
	if !sawSummary {
		return nil, fmt.Errorf("obs: lineage %s: missing summary line (truncated file?)", path)
	}
	if lf.Summary.Schema != LineageSchemaVersion {
		return nil, fmt.Errorf("obs: lineage %s: schema %d, want %d", path, lf.Summary.Schema, LineageSchemaVersion)
	}
	if len(lf.Records) != lf.Summary.Records {
		return nil, fmt.Errorf("obs: lineage %s: %d records, summary says %d", path, len(lf.Records), lf.Summary.Records)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != lf.Summary.Digest {
		return nil, fmt.Errorf("obs: lineage %s: record digest %s does not match summary %s", path, got, lf.Summary.Digest)
	}
	return &lf, nil
}
