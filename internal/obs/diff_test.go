package obs

import (
	"strings"
	"testing"
)

// testManifest builds a self-consistent manifest by hand — no Default
// registry involvement, so diff tests are order-independent.
func testManifest() *Manifest {
	return &Manifest{
		Tool: "reproduce", Seed: 42, Scale: "tiny",
		GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64",
		WallMS: 1000,
		Stages: []SpanSnapshot{
			{Name: "table1", DurMS: 200, Ended: true},
			{Name: "colocation", DurMS: 700, Ended: true},
		},
		Metrics: map[string]MetricValue{
			"ping.rtts_measured":     {Type: "counter", Value: 5000},
			"capacity.sites_tracked": {Type: "gauge", Value: 12},
			"ping.rtt_ms": {
				Type: "histogram", Value: 123.456, Count: 100,
				Bounds: []float64{1, 5, 10}, Buckets: []int64{10, 40, 30, 20},
			},
		},
		Funnels: []FunnelSnapshot{
			{Name: "ping.filter", In: 100, Out: 90,
				Drops: []FunnelDrop{{Reason: "unresponsive", N: 10}}},
		},
	}
}

func hasEntry(entries []string, substr string) bool {
	for _, e := range entries {
		if strings.Contains(e, substr) {
			return true
		}
	}
	return false
}

func TestCompareManifestsIdentical(t *testing.T) {
	r := CompareManifests(testManifest(), testManifest(), DiffOptions{})
	if r.HasDrift() {
		t.Fatalf("identical manifests drifted: %v", r.Drift)
	}
	if len(r.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", r.Warnings)
	}
}

func TestCompareManifestsCounterDrift(t *testing.T) {
	b := testManifest()
	b.Metrics["ping.rtts_measured"] = MetricValue{Type: "counter", Value: 5001}
	r := CompareManifests(testManifest(), b, DiffOptions{})
	if !r.HasDrift() || !hasEntry(r.Drift, "ping.rtts_measured") {
		t.Fatalf("counter delta not drift: %v", r.Drift)
	}
}

func TestCompareManifestsGaugeIsInformational(t *testing.T) {
	b := testManifest()
	b.Metrics["capacity.sites_tracked"] = MetricValue{Type: "gauge", Value: 13}
	r := CompareManifests(testManifest(), b, DiffOptions{})
	if r.HasDrift() {
		t.Fatalf("gauge difference must not be drift: %v", r.Drift)
	}
	if !hasEntry(r.Infos, "capacity.sites_tracked") {
		t.Fatalf("gauge difference not reported: %v", r.Infos)
	}
}

func TestCompareManifestsHistogramSumTolerance(t *testing.T) {
	b := testManifest()
	m := b.Metrics["ping.rtt_ms"]
	m.Value += 1e-10 // within default 1e-9 relative tolerance
	b.Metrics["ping.rtt_ms"] = m
	r := CompareManifests(testManifest(), b, DiffOptions{})
	if r.HasDrift() {
		t.Fatalf("in-tolerance sum flagged as drift: %v", r.Drift)
	}
	if !hasEntry(r.Infos, "within tolerance") {
		t.Fatalf("in-tolerance sum not reported: %v", r.Infos)
	}

	m.Value += 1 // way out of tolerance
	b.Metrics["ping.rtt_ms"] = m
	if r := CompareManifests(testManifest(), b, DiffOptions{}); !r.HasDrift() {
		t.Fatal("out-of-tolerance sum not drift")
	}
}

func TestCompareManifestsBucketAndFunnelDrift(t *testing.T) {
	b := testManifest()
	m := b.Metrics["ping.rtt_ms"]
	m.Buckets = []int64{11, 39, 30, 20} // same count, moved mass
	b.Metrics["ping.rtt_ms"] = m
	b.Funnels[0].Out = 89
	b.Funnels[0].Drops[0].N = 11
	r := CompareManifests(testManifest(), b, DiffOptions{})
	if !hasEntry(r.Drift, "bucket[0]") {
		t.Fatalf("bucket shift not drift: %v", r.Drift)
	}
	if !hasEntry(r.Drift, "funnel ping.filter: kept 90 vs 89") {
		t.Fatalf("funnel kept drift not reported: %v", r.Drift)
	}
	if !hasEntry(r.Drift, "drop unresponsive 10 vs 11") {
		t.Fatalf("funnel drop drift not reported: %v", r.Drift)
	}
}

func TestCompareManifestsMissingSeries(t *testing.T) {
	b := testManifest()
	delete(b.Metrics, "ping.rtts_measured")
	b.Funnels = nil
	r := CompareManifests(testManifest(), b, DiffOptions{})
	if !hasEntry(r.Drift, "metric ping.rtts_measured: missing from candidate") {
		t.Fatalf("missing metric not drift: %v", r.Drift)
	}
	if !hasEntry(r.Drift, "funnel ping.filter: missing from candidate") {
		t.Fatalf("missing funnel not drift: %v", r.Drift)
	}
}

func TestCompareManifestsSeedAndStageDrift(t *testing.T) {
	b := testManifest()
	b.Seed = 43
	b.Stages = []SpanSnapshot{
		{Name: "table1", DurMS: 200, Ended: true},
		{Name: "capacity", DurMS: 700, Ended: true},
	}
	r := CompareManifests(testManifest(), b, DiffOptions{})
	if !hasEntry(r.Drift, "seed: 42 vs 43") {
		t.Fatalf("seed mismatch not drift: %v", r.Drift)
	}
	if !hasEntry(r.Drift, `stage[1]: "colocation" vs "capacity"`) {
		t.Fatalf("stage rename not drift: %v", r.Drift)
	}
}

func TestCompareManifestsWallRegressionWarns(t *testing.T) {
	b := testManifest()
	b.Stages[1].DurMS = 2000 // 700 → 2000 is past the 2x default
	r := CompareManifests(testManifest(), b, DiffOptions{})
	if r.HasDrift() {
		t.Fatalf("wall regression must not be drift: %v", r.Drift)
	}
	if !hasEntry(r.Warnings, "colocation") {
		t.Fatalf("regression not warned: %v", r.Warnings)
	}
	// Sub-threshold stages never warn, however large the ratio.
	c := testManifest()
	c.Stages[0].DurMS = 5
	d := testManifest()
	d.Stages[0].DurMS = 45
	if r := CompareManifests(c, d, DiffOptions{}); len(r.Warnings) != 0 {
		t.Fatalf("noise-floor stage warned: %v", r.Warnings)
	}
}

func TestCompareManifestsUnbalancedFunnelWarns(t *testing.T) {
	b := testManifest()
	b.Funnels[0].In = 101 // 101 != 90 + 10
	r := CompareManifests(testManifest(), b, DiffOptions{})
	if !hasEntry(r.Warnings, "unbalanced") {
		t.Fatalf("unbalanced funnel not warned: %v", r.Warnings)
	}
}

func TestCompareManifestsChaosDrift(t *testing.T) {
	// Same chaos identity on both sides: no drift.
	a, b := testManifest(), testManifest()
	a.ChaosProfile, a.ChaosSeed, a.Degraded = "heavy", 7, true
	a.DegradedStages = []string{"ping.filter"}
	b.ChaosProfile, b.ChaosSeed, b.Degraded = "heavy", 7, true
	b.DegradedStages = []string{"ping.filter"}
	if r := CompareManifests(a, b, DiffOptions{}); r.HasDrift() {
		t.Fatalf("equal chaos manifests drifted: %v", r.Drift)
	}

	// Each chaos field must independently surface as drift.
	mut := []func(m *Manifest){
		func(m *Manifest) { m.ChaosProfile = "light" },
		func(m *Manifest) { m.ChaosSeed = 8 },
		func(m *Manifest) { m.Degraded = false },
		func(m *Manifest) { m.DegradedStages = []string{"ping.filter", "tracert.hops"} },
	}
	want := []string{"chaos profile", "chaos seed", "degraded:", "degraded stages"}
	for i, f := range mut {
		c := testManifest()
		c.ChaosProfile, c.ChaosSeed, c.Degraded = "heavy", 7, true
		c.DegradedStages = []string{"ping.filter"}
		f(c)
		r := CompareManifests(a, c, DiffOptions{})
		if !r.HasDrift() || !hasEntry(r.Drift, want[i]) {
			t.Fatalf("mutation %d: no %q drift in %v", i, want[i], r.Drift)
		}
	}

	// Chaos vs clean: profile and degraded flag both drift.
	r := CompareManifests(a, testManifest(), DiffOptions{})
	if !hasEntry(r.Drift, "chaos profile") || !hasEntry(r.Drift, "degraded") {
		t.Fatalf("chaos-vs-clean comparison missed drift: %v", r.Drift)
	}
}

// TestCompareManifestsTemporalDrift: the trajectory digest, horizon and
// schedule name are all first-class drift — a replay that changes any of
// them must fail the runsdiff gate, and a missing-vs-present replay is
// drift too.
func TestCompareManifestsTemporalDrift(t *testing.T) {
	base := func() *Manifest {
		m := testManifest()
		m.TrajectoryDigest = "sha256:aaaa"
		m.TemporalHours = 24
		m.TemporalSchedule = "ios-flash-crowd"
		return m
	}
	if r := CompareManifests(base(), base(), DiffOptions{}); r.HasDrift() {
		t.Fatalf("identical temporal manifests drifted: %v", r.Drift)
	}

	b := base()
	b.TrajectoryDigest = "sha256:bbbb"
	if r := CompareManifests(base(), b, DiffOptions{}); !r.HasDrift() || !hasEntry(r.Drift, "trajectory digest") {
		t.Fatalf("trajectory digest change not drift: %v", r.Drift)
	}

	b = base()
	b.TemporalHours = 48
	if r := CompareManifests(base(), b, DiffOptions{}); !r.HasDrift() || !hasEntry(r.Drift, "temporal hours") {
		t.Fatalf("temporal hours change not drift: %v", r.Drift)
	}

	b = base()
	b.TemporalSchedule = "other"
	if r := CompareManifests(base(), b, DiffOptions{}); !r.HasDrift() || !hasEntry(r.Drift, "temporal schedule") {
		t.Fatalf("temporal schedule change not drift: %v", r.Drift)
	}

	// Replay on one side only: all three fields differ from their zero values.
	if r := CompareManifests(testManifest(), base(), DiffOptions{}); !r.HasDrift() || !hasEntry(r.Drift, "trajectory digest") {
		t.Fatalf("replay-vs-no-replay not drift: %v", r.Drift)
	}
}
