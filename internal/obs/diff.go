package obs

import (
	"fmt"
	"math"
	"sort"
)

// Manifest comparison: the engine behind cmd/runsdiff and the CI golden-run
// gate. Two manifests from the same (tool, seed, scale) must agree on every
// deterministic quantity — counters, histogram counts and buckets, funnel
// accounting, root stage names — and may differ on run-varying ones (wall
// times, allocations, Go version, gauges written last-write-wins from
// parallel code, histogram sums whose float accumulation order depends on
// scheduling). The comparison classifies every difference accordingly.

// DiffOptions tunes the comparison.
type DiffOptions struct {
	// SumTol is the relative tolerance for histogram sums. The sums are
	// CAS-accumulated floats, so the addition order — and therefore the
	// rounding — depends on goroutine scheduling; equal runs agree to ~1e-12
	// relative. Zero means the 1e-9 default.
	SumTol float64
	// MaxWallRegress flags a stage whose wall time grew by more than this
	// factor (new > old*factor) as a regression warning. Zero means the
	// default 2.0. Stages faster than minWallMS are never flagged.
	MaxWallRegress float64
}

func (o DiffOptions) sanitized() DiffOptions {
	if o.SumTol <= 0 {
		o.SumTol = 1e-9
	}
	if o.MaxWallRegress <= 1 {
		o.MaxWallRegress = 2.0
	}
	return o
}

// minWallMS is the floor below which stage wall times are considered noise.
const minWallMS = 50

// DiffResult is the classified outcome of comparing two manifests.
type DiffResult struct {
	// Drift lists determinism-relevant differences: same-seed runs must
	// produce none, and CI fails when any appear.
	Drift []string
	// Warnings lists quality signals that do not break determinism:
	// per-stage wall-time regressions, unbalanced funnels.
	Warnings []string
	// Infos lists expected run-to-run variation: environment, wall clock,
	// gauges, in-tolerance sum differences.
	Infos []string
}

// HasDrift reports whether any determinism-relevant difference was found.
func (r *DiffResult) HasDrift() bool { return len(r.Drift) > 0 }

func (r *DiffResult) driftf(format string, args ...any) {
	r.Drift = append(r.Drift, fmt.Sprintf(format, args...))
}

func (r *DiffResult) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

func (r *DiffResult) infof(format string, args ...any) {
	r.Infos = append(r.Infos, fmt.Sprintf(format, args...))
}

// CompareManifests diffs two manifests, a as the reference (golden) run and
// b as the candidate.
func CompareManifests(a, b *Manifest, opts DiffOptions) *DiffResult {
	opts = opts.sanitized()
	r := &DiffResult{}

	if a.Tool != b.Tool {
		r.driftf("tool: %q vs %q", a.Tool, b.Tool)
	}
	if a.Seed != b.Seed {
		r.driftf("seed: %d vs %d", a.Seed, b.Seed)
	}
	if a.Scale != b.Scale {
		r.driftf("scale: %q vs %q", a.Scale, b.Scale)
	}
	if a.Scenario != b.Scenario {
		r.driftf("scenario: %q vs %q", a.Scenario, b.Scenario)
	}
	if a.ScenarioHash != b.ScenarioHash {
		r.driftf("scenario hash: %q vs %q", a.ScenarioHash, b.ScenarioHash)
	}
	// The snapshot path is machine-local provenance, not result content:
	// streamed and freshly synthesized worlds are byte-identical, so a path
	// difference alone is informational.
	if a.Snapshot != b.Snapshot {
		r.infof("snapshot path: %q vs %q (world provenance only)", a.Snapshot, b.Snapshot)
	}
	if a.ChaosProfile != b.ChaosProfile {
		r.driftf("chaos profile: %q vs %q", a.ChaosProfile, b.ChaosProfile)
	}
	if a.ChaosSeed != b.ChaosSeed {
		r.driftf("chaos seed: %d vs %d", a.ChaosSeed, b.ChaosSeed)
	}
	if a.Degraded != b.Degraded {
		r.driftf("degraded: %v vs %v", a.Degraded, b.Degraded)
	}
	if !equalStrings(a.DegradedStages, b.DegradedStages) {
		r.driftf("degraded stages: %v vs %v", a.DegradedStages, b.DegradedStages)
	}
	if a.GoVersion != b.GoVersion {
		r.infof("go version: %s vs %s", a.GoVersion, b.GoVersion)
	}
	if a.GOOS != b.GOOS || a.GOARCH != b.GOARCH {
		r.infof("platform: %s/%s vs %s/%s", a.GOOS, a.GOARCH, b.GOOS, b.GOARCH)
	}
	if a.WallMS > 0 && b.WallMS > 0 {
		r.infof("total wall: %.0fms vs %.0fms", a.WallMS, b.WallMS)
	}
	// The profile block is pure timing analysis — wall-clock quarantined
	// like the stage durations it derives from, never drift.
	if a.Profile != nil && b.Profile != nil {
		r.infof("critical path: %.0fms vs %.0fms", a.Profile.CriticalPathMS, b.Profile.CriticalPathMS)
	}

	// The trajectory digest is a canonical hash of the temporal replay's full
	// event stream: any divergence in event order, timing, serving splits or
	// congestion edges between same-seed runs is drift, as are horizon and
	// schedule-name differences (different replays are different runs).
	if a.TrajectoryDigest != b.TrajectoryDigest {
		r.driftf("trajectory digest: %q vs %q", a.TrajectoryDigest, b.TrajectoryDigest)
	}
	if a.TemporalHours != b.TemporalHours {
		r.driftf("temporal hours: %d vs %d", a.TemporalHours, b.TemporalHours)
	}
	if a.TemporalSchedule != b.TemporalSchedule {
		r.driftf("temporal schedule: %q vs %q", a.TemporalSchedule, b.TemporalSchedule)
	}

	// The lineage digest is a canonical hash of the sampled decision records:
	// any change to what was decided — or to which evidence was retained —
	// shows up here even when aggregate counters happen to agree.
	if a.LineageDigest != b.LineageDigest {
		r.driftf("lineage digest: %q vs %q", a.LineageDigest, b.LineageDigest)
	}
	compareLineage(a.Lineage, b.Lineage, r)

	compareMetrics(a.Metrics, b.Metrics, opts, r)
	compareFunnels(a.Funnels, b.Funnels, r)
	compareStages(a.Stages, b.Stages, opts, r)
	return r
}

// compareLineage diffs per-stage lineage decision counts: deterministic at
// any worker count, so any difference is drift.
func compareLineage(a, b []LineageStageCount, r *DiffResult) {
	am := make(map[string]LineageStageCount, len(a))
	for _, s := range a {
		am[s.Stage] = s
	}
	bm := make(map[string]LineageStageCount, len(b))
	for _, s := range b {
		bm[s.Stage] = s
	}
	for _, name := range sortedKeys(am) {
		as := am[name]
		bs, ok := bm[name]
		if !ok {
			r.driftf("lineage %s: missing from candidate", name)
			continue
		}
		if as.In != bs.In {
			r.driftf("lineage %s: in %d vs %d", name, as.In, bs.In)
		}
		if as.Kept != bs.Kept {
			r.driftf("lineage %s: kept %d vs %d", name, as.Kept, bs.Kept)
		}
		reasons := map[string]bool{}
		for _, d := range as.Drops {
			reasons[d.Reason] = true
		}
		for _, d := range bs.Drops {
			reasons[d.Reason] = true
		}
		for _, reason := range sortedKeys(reasons) {
			if an, bn := as.DropN(reason), bs.DropN(reason); an != bn {
				r.driftf("lineage %s: drop %s %d vs %d", name, reason, an, bn)
			}
		}
	}
	for _, name := range sortedKeys(bm) {
		if _, ok := am[name]; !ok {
			r.driftf("lineage %s: missing from reference", name)
		}
	}
}

func compareMetrics(a, b map[string]MetricValue, opts DiffOptions, r *DiffResult) {
	for _, name := range sortedKeys(a) {
		av := a[name]
		bv, ok := b[name]
		if !ok {
			r.driftf("metric %s: missing from candidate", name)
			continue
		}
		if av.Type != bv.Type {
			r.driftf("metric %s: type %s vs %s", name, av.Type, bv.Type)
			continue
		}
		switch av.Type {
		case "counter":
			if av.Value != bv.Value {
				r.driftf("metric %s: %.0f vs %.0f (Δ%+.0f)", name, av.Value, bv.Value, bv.Value-av.Value)
			}
		case "gauge":
			// Gauges are last-write-wins from parallel code; differences are
			// informational, never drift.
			if av.Value != bv.Value {
				r.infof("gauge %s: %.6g vs %.6g", name, av.Value, bv.Value)
			}
		case "histogram":
			if av.Count != bv.Count {
				r.driftf("histogram %s: count %d vs %d", name, av.Count, bv.Count)
			}
			if len(av.Buckets) != len(bv.Buckets) {
				r.driftf("histogram %s: %d buckets vs %d", name, len(av.Buckets), len(bv.Buckets))
			} else {
				for i := range av.Buckets {
					if av.Buckets[i] != bv.Buckets[i] {
						r.driftf("histogram %s: bucket[%d] (le=%.6g) %d vs %d",
							name, i, av.Bounds[i], av.Buckets[i], bv.Buckets[i])
					}
				}
			}
			// Sums are scheduling-order-dependent float accumulations:
			// compare with relative tolerance.
			if d := relDiff(av.Value, bv.Value); d > opts.SumTol {
				r.driftf("histogram %s: sum %.9g vs %.9g (rel Δ %.2e > tol %.0e)",
					name, av.Value, bv.Value, d, opts.SumTol)
			} else if av.Value != bv.Value {
				r.infof("histogram %s: sum differs within tolerance (rel Δ %.2e)",
					name, relDiff(av.Value, bv.Value))
			}
		}
	}
	for _, name := range sortedKeys(b) {
		if _, ok := a[name]; !ok {
			r.driftf("metric %s: missing from reference", name)
		}
	}
}

func compareFunnels(a, b []FunnelSnapshot, r *DiffResult) {
	am, bm := funnelsByName(a), funnelsByName(b)
	for _, name := range sortedKeys(am) {
		af := am[name]
		bf, ok := bm[name]
		if !ok {
			r.driftf("funnel %s: missing from candidate", name)
			continue
		}
		if af.In != bf.In {
			r.driftf("funnel %s: in %d vs %d", name, af.In, bf.In)
		}
		if af.Out != bf.Out {
			r.driftf("funnel %s: kept %d vs %d", name, af.Out, bf.Out)
		}
		reasons := map[string]bool{}
		for _, d := range af.Drops {
			reasons[d.Reason] = true
		}
		for _, d := range bf.Drops {
			reasons[d.Reason] = true
		}
		for _, reason := range sortedKeys(reasons) {
			if an, bn := af.DropN(reason), bf.DropN(reason); an != bn {
				r.driftf("funnel %s: drop %s %d vs %d", name, reason, an, bn)
			}
		}
		if !bf.Balanced() {
			r.warnf("funnel %s: candidate unbalanced (in %d != kept %d + dropped %d)",
				name, bf.In, bf.Out, bf.Dropped())
		}
	}
	for _, name := range sortedKeys(bm) {
		if _, ok := am[name]; !ok {
			r.driftf("funnel %s: missing from reference", name)
		}
	}
}

// compareStages checks the root-level stage sequence — names must match in
// order (the run executed the same stages) — and flags wall-time regressions.
// Child spans are ignored: worker spans make subtree shapes
// scheduling-dependent by design.
func compareStages(a, b []SpanSnapshot, opts DiffOptions, r *DiffResult) {
	if len(a) != len(b) {
		r.driftf("stages: %d root stages vs %d", len(a), len(b))
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Name != b[i].Name {
			r.driftf("stage[%d]: %q vs %q", i, a[i].Name, b[i].Name)
			continue
		}
		if a[i].DurMS >= minWallMS && b[i].DurMS > a[i].DurMS*opts.MaxWallRegress {
			r.warnf("stage %s: wall %.0fms vs %.0fms (> %.1fx regression)",
				a[i].Name, a[i].DurMS, b[i].DurMS, opts.MaxWallRegress)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// relDiff returns |a-b| / max(|a|, |b|), 0 when both are 0.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func funnelsByName(snaps []FunnelSnapshot) map[string]FunnelSnapshot {
	out := make(map[string]FunnelSnapshot, len(snaps))
	for _, s := range snaps {
		out[s.Name] = s
	}
	return out
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
