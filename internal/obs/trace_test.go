package obs

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// buildTimelineTracer records a real timeline: nested spans, a worker span,
// instants, and a counter mark (fired by the root span's End).
func buildTimelineTracer(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer()
	tr.EnableTimeline()

	fun := NewFunnel("trace_test.items", "items through the trace test")
	cnt := NewCounter("chaos.trace_test_total", "test chaos counter")
	fun.In(10)
	fun.Out(9)
	fun.Reason("lost").Inc()
	cnt.Add(3)

	root := tr.Start("stage")
	child := root.Child("region/worker-2")
	child.SetAttr("worker", 2)
	child.SetAttr("busy_ms", 1.5)
	child.SetAttr("tasks", 4)
	grand := child.Child("inner")
	grand.End()
	child.End()
	tr.Instant("chaos.test_fault", map[string]any{"addr": int64(7)})
	root.End() // root End samples the funnel + chaos counters into a mark
	return tr
}

// TestTraceExportSchema is the strict-schema gate over a real export: every
// event must satisfy the trace-event structural contract ValidateTrace
// enforces (known phase, name, pid/tid, ts/dur present where required).
func TestTraceExportSchema(t *testing.T) {
	tr := buildTimelineTracer(t)
	tf := BuildTrace(tr)
	if err := ValidateTrace(tf); err != nil {
		t.Fatalf("real export failed schema validation: %v", err)
	}

	spans := tf.SpanEvents()
	if len(spans) != 3 {
		t.Fatalf("span events = %d, want 3", len(spans))
	}
	// The worker span and its subtree render on the worker track; the rest on
	// the main track.
	byName := map[string]TraceEvent{}
	for _, e := range spans {
		byName[e.Name] = e
	}
	if got := byName["stage"].Tid; got != traceMainTID {
		t.Fatalf("stage tid = %d, want main %d", got, traceMainTID)
	}
	wantTid := traceWorkerTIDBase + 2
	if got := byName["region/worker-2"].Tid; got != wantTid {
		t.Fatalf("worker span tid = %d, want %d", got, wantTid)
	}
	if got := byName["inner"].Tid; got != wantTid {
		t.Fatalf("span nested under a worker should inherit its track: tid %d, want %d", got, wantTid)
	}

	// The worker track must be named via thread_name metadata.
	namedWorker := false
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" && e.Tid == wantTid {
			namedWorker = e.Args["name"] == "worker-2"
		}
	}
	if !namedWorker {
		t.Fatal("worker track missing its thread_name metadata")
	}

	if names := tf.InstantNames(); len(names) != 1 || names[0] != "chaos.test_fault" {
		t.Fatalf("instant names = %v, want [chaos.test_fault]", names)
	}
	tracks := tf.CounterTracks()
	wantTracks := map[string]bool{"funnel:trace_test.items": false, "chaos.trace_test_total": false}
	for _, n := range tracks {
		if _, ok := wantTracks[n]; ok {
			wantTracks[n] = true
		}
	}
	for n, seen := range wantTracks {
		if !seen {
			t.Fatalf("counter track %q missing (got %v)", n, tracks)
		}
	}
}

// TestTraceFileRoundTrip: the on-disk JSON reparses into the same structure
// and still validates — what cmd/obsprofile -validate-trace relies on.
func TestTraceFileRoundTrip(t *testing.T) {
	tr := buildTimelineTracer(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(tf); err != nil {
		t.Fatalf("round-tripped trace failed validation: %v", err)
	}
	orig := BuildTrace(tr)
	if len(tf.TraceEvents) != len(orig.TraceEvents) {
		t.Fatalf("event count changed across disk: %d vs %d", len(tf.TraceEvents), len(orig.TraceEvents))
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	dur := 5.0
	negDur := -1.0
	good := TraceEvent{Name: "ok", Ph: "X", TS: 0, Dur: &dur, Pid: TracePID, Tid: 1}
	cases := []struct {
		name string
		ev   TraceEvent
	}{
		{"empty name", TraceEvent{Ph: "X", Dur: &dur, Pid: TracePID, Tid: 1}},
		{"wrong pid", TraceEvent{Name: "x", Ph: "X", Dur: &dur, Pid: 9, Tid: 1}},
		{"zero tid", TraceEvent{Name: "x", Ph: "X", Dur: &dur, Pid: TracePID, Tid: 0}},
		{"complete without dur", TraceEvent{Name: "x", Ph: "X", Pid: TracePID, Tid: 1}},
		{"negative dur", TraceEvent{Name: "x", Ph: "X", Dur: &negDur, Pid: TracePID, Tid: 1}},
		{"negative ts", TraceEvent{Name: "x", Ph: "X", TS: -1, Dur: &dur, Pid: TracePID, Tid: 1}},
		{"instant bad scope", TraceEvent{Name: "x", Ph: "i", S: "z", Pid: TracePID, Tid: 1}},
		{"counter without args", TraceEvent{Name: "x", Ph: "C", Pid: TracePID, Tid: 1}},
		{"counter non-numeric arg", TraceEvent{Name: "x", Ph: "C", Pid: TracePID, Tid: 1, Args: map[string]any{"v": "NaNish"}}},
		{"unknown phase", TraceEvent{Name: "x", Ph: "Q", Pid: TracePID, Tid: 1}},
	}
	for _, tc := range cases {
		tf := &TraceFile{TraceEvents: []TraceEvent{good, tc.ev}}
		if err := ValidateTrace(tf); err == nil {
			t.Errorf("%s: validation accepted a malformed event", tc.name)
		}
	}
	if err := ValidateTrace(&TraceFile{}); err == nil {
		t.Error("empty trace accepted")
	}
	if err := ValidateTrace(nil); err == nil {
		t.Error("nil trace accepted")
	}
}

// TestInstantCapSuppresses: past the per-name cap, instants count instead of
// record, and the export notes the suppression in otherData.
func TestInstantCapSuppresses(t *testing.T) {
	tr := NewTracer()
	tr.EnableTimeline()
	const extra = 25
	for i := 0; i < maxInstantsPerName+extra; i++ {
		tr.Instant("hot.fault", map[string]any{"i": i})
	}
	tr.Instant("rare.fault", nil)

	if n := len(tr.Instants()); n != maxInstantsPerName+1 {
		t.Fatalf("recorded %d instants, want %d", n, maxInstantsPerName+1)
	}
	sup := tr.InstantsSuppressed()
	if sup["hot.fault"] != extra {
		t.Fatalf("suppressed[hot.fault] = %d, want %d", sup["hot.fault"], extra)
	}
	if _, ok := sup["rare.fault"]; ok {
		t.Fatal("uncapped name reported as suppressed")
	}

	tf := BuildTrace(tr)
	od, ok := tf.OtherData["instants_suppressed"].(map[string]int64)
	if !ok || od["hot.fault"] != extra {
		t.Fatalf("otherData missing suppression note: %#v", tf.OtherData)
	}
	if err := ValidateTrace(tf); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineDisabledIsInert: with the timeline off (the default), instants
// are dropped and marks never accumulate — the -trace machinery costs nothing
// unless asked for.
func TestTimelineDisabledIsInert(t *testing.T) {
	tr := NewTracer()
	tr.Instant("ignored", nil)
	root := tr.Start("stage")
	root.End()
	if len(tr.Instants()) != 0 || len(tr.Marks()) != 0 {
		t.Fatalf("disabled timeline recorded state: %d instants, %d marks",
			len(tr.Instants()), len(tr.Marks()))
	}
	if tr.TimelineEnabled() {
		t.Fatal("timeline reported enabled by default")
	}

	var nilTr *Tracer
	nilTr.Instant("ignored", nil)
	nilTr.EnableTimeline()
	if nilTr.TimelineEnabled() || nilTr.Instants() != nil || nilTr.InstantsSuppressed() != nil {
		t.Fatal("nil tracer timeline methods not inert")
	}
	if tf := BuildTrace(nilTr); len(tf.TraceEvents) != 0 {
		t.Fatal("nil tracer produced trace events")
	}
}

// TestMarksDedupe: a root-span end with no counter movement adds no mark.
func TestMarksDedupe(t *testing.T) {
	tr := NewTracer()
	tr.EnableTimeline()
	cnt := NewCounter(fmt.Sprintf("chaos.dedupe_%d_total", time.Now().UnixNano()), "test counter")

	cnt.Inc()
	tr.Start("first").End()
	marks1 := len(tr.Marks())
	if marks1 == 0 {
		t.Fatal("moved counter produced no mark")
	}

	tr.Start("second").End() // nothing moved since the first mark
	if len(tr.Marks()) != marks1 {
		t.Fatalf("unmoved counters re-marked: %d vs %d", len(tr.Marks()), marks1)
	}

	cnt.Inc()
	tr.Start("third").End()
	if len(tr.Marks()) != marks1+1 {
		t.Fatalf("moved counter did not re-mark: %d vs %d", len(tr.Marks()), marks1+1)
	}
}
