package obs

import (
	"log/slog"
	"os"
)

// SetupCLI installs the shared slog handler every cmd/* binary uses: text
// format on stderr, bare messages (no timestamps — CLI output must be
// reproducible), the command name as a constant "cmd" attribute, and Debug
// level when verbose. It returns the logger and also makes it the slog
// default so library code logging via slog inherits it.
func SetupCLI(cmd string, verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			// Drop the wall-clock attr: run logs should diff cleanly.
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	l := slog.New(h).With("cmd", cmd)
	slog.SetDefault(l)
	return l
}
