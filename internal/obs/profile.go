package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline analysis: where a run's wall-clock actually went. BuildProfile
// consumes a span forest (live from a tracer, or re-read from a manifest's
// stages) and computes the three quantities DESIGN.md §10 defines:
//
//   - the critical path — the chain of spans that bounds the run's wall
//     time: sequential work adds up, concurrent work contributes only its
//     longest member;
//   - per-span exclusive self-time — a span's duration minus the union of
//     its children's intervals, i.e. the time no child accounts for;
//   - per-region worker utilization — for every internal/par fan-out, the
//     fraction of occupied worker-lane time actually spent running tasks
//     (Σ busy / Σ lane duration), the parallel-efficiency figure.
//
// The profile is pure arithmetic over recorded timings: it varies run to
// run like wall-clock does, and runsdiff treats it as informational, never
// drift.

// Profile is the machine-readable performance profile attached to run
// manifests and rendered in REPORT.md.
type Profile struct {
	// WallMS is the summed duration of the root stages (they run
	// sequentially, so this is the experiment wall time the spans observed).
	WallMS float64 `json:"wall_ms"`
	// CriticalPathMS is the summed self-time of the steps on the critical
	// path; it equals the sum of CriticalPath[i].SelfMS exactly.
	CriticalPathMS float64    `json:"critical_path_ms"`
	CriticalPath   []PathStep `json:"critical_path,omitempty"`
	// SelfTimes ranks spans by exclusive self-time, largest first (top N).
	SelfTimes []SelfTime `json:"self_times,omitempty"`
	// Regions summarizes every parallel region's worker utilization,
	// sorted by region name.
	Regions []RegionStats `json:"regions,omitempty"`
}

// PathStep is one span on the critical path with its exclusive contribution.
type PathStep struct {
	Path   string  `json:"path"`
	SelfMS float64 `json:"self_ms"`
}

// SelfTime is one span's exclusive-time ranking entry.
type SelfTime struct {
	Path       string  `json:"path"`
	SelfMS     float64 `json:"self_ms"`
	TotalMS    float64 `json:"total_ms"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// RegionStats is one parallel region's aggregated worker accounting. A
// region is identified by its par.Options.Name; when a stage runs the same
// region several times (e.g. one distance matrix per ISP), the instances
// aggregate: LaneMS sums every worker span's duration, BusyMS the time those
// workers spent inside tasks, and Efficiency is BusyMS/LaneMS.
type RegionStats struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"` // distinct worker indices seen
	Tasks      int64   `json:"tasks"`
	BusyMS     float64 `json:"busy_ms"`
	LaneMS     float64 `json:"lane_ms"`
	Efficiency float64 `json:"efficiency"` // BusyMS / LaneMS, in [0,1]
}

// BuildProfile analyzes a span forest. Roots are treated as sequential (the
// pipeline contract); concurrency appears only below a root, as overlapping
// child intervals. topN bounds the self-time ranking (<= 0 means 10).
func BuildProfile(stages []SpanSnapshot, topN int) *Profile {
	if topN <= 0 {
		topN = 10
	}
	p := &Profile{}
	if len(stages) == 0 {
		return p
	}
	for _, root := range stages {
		p.WallMS += root.DurMS
		ms, steps := criticalPath(root, "")
		p.CriticalPathMS += ms
		p.CriticalPath = append(p.CriticalPath, steps...)
	}

	var selfs []SelfTime
	regions := map[string]*RegionStats{}
	regionWorkers := map[string]map[int]bool{}
	var walk func(s SpanSnapshot, prefix string)
	walk = func(s SpanSnapshot, prefix string) {
		path := joinSpanPath(prefix, s.Name)
		selfs = append(selfs, SelfTime{
			Path:       path,
			SelfMS:     exclusiveMS(s),
			TotalMS:    s.DurMS,
			AllocBytes: s.AllocBytes,
		})
		if w, ok := workerIndex(s); ok {
			name := regionName(s.Name)
			r := regions[name]
			if r == nil {
				r = &RegionStats{Name: name}
				regions[name] = r
				regionWorkers[name] = map[int]bool{}
			}
			regionWorkers[name][w] = true
			r.LaneMS += s.DurMS
			if busy, ok := attrFloat(s.Attrs["busy_ms"]); ok {
				r.BusyMS += busy
			}
			if tasks, ok := attrFloat(s.Attrs["tasks"]); ok {
				r.Tasks += int64(tasks)
			}
		}
		for _, c := range s.Children {
			walk(c, path)
		}
	}
	for _, root := range stages {
		walk(root, "")
	}

	sort.SliceStable(selfs, func(i, j int) bool { return selfs[i].SelfMS > selfs[j].SelfMS })
	if len(selfs) > topN {
		selfs = selfs[:topN]
	}
	p.SelfTimes = selfs

	names := make([]string, 0, len(regions))
	for n := range regions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := regions[n]
		r.Workers = len(regionWorkers[n])
		if r.LaneMS > 0 {
			r.Efficiency = r.BusyMS / r.LaneMS
			if r.Efficiency > 1 {
				r.Efficiency = 1
			}
		}
		p.Regions = append(p.Regions, *r)
	}
	return p
}

// criticalPath computes a span's critical-path time and the step chain
// behind it: the span's exclusive self-time, then — child clusters taken in
// time order, overlapping children forming one cluster — the critical path
// of each cluster's longest member. Sequential children therefore add up
// while concurrent workers contribute only the slowest lane.
func criticalPath(s SpanSnapshot, prefix string) (float64, []PathStep) {
	path := joinSpanPath(prefix, s.Name)
	steps := []PathStep{{Path: path, SelfMS: exclusiveMS(s)}}
	total := steps[0].SelfMS
	for _, cluster := range overlapClusters(s) {
		bestMS, bestSteps := -1.0, []PathStep(nil)
		for _, c := range cluster {
			ms, st := criticalPath(c, path)
			if ms > bestMS {
				bestMS, bestSteps = ms, st
			}
		}
		total += bestMS
		steps = append(steps, bestSteps...)
	}
	return total, steps
}

// exclusiveMS is the span's duration minus the union of its children's
// intervals (clipped to the span), floored at zero against float noise.
func exclusiveMS(s SpanSnapshot) float64 {
	covered := 0.0
	for _, cluster := range overlapClusters(s) {
		start, end := cluster[0].StartMS, cluster[0].StartMS
		for _, c := range cluster {
			if e := c.StartMS + c.DurMS; e > end {
				end = e
			}
		}
		if spanEnd := s.StartMS + s.DurMS; end > spanEnd {
			end = spanEnd
		}
		if end > start {
			covered += end - start
		}
	}
	self := s.DurMS - covered
	if self < 0 {
		return 0
	}
	return self
}

// overlapClusters groups a span's children into maximal runs of overlapping
// intervals, in start order: members of one cluster ran concurrently (the
// par worker lanes), distinct clusters ran sequentially.
func overlapClusters(s SpanSnapshot) [][]SpanSnapshot {
	if len(s.Children) == 0 {
		return nil
	}
	children := append([]SpanSnapshot(nil), s.Children...)
	sort.SliceStable(children, func(i, j int) bool { return children[i].StartMS < children[j].StartMS })
	var clusters [][]SpanSnapshot
	curEnd := 0.0
	for _, c := range children {
		if len(clusters) > 0 && c.StartMS < curEnd {
			clusters[len(clusters)-1] = append(clusters[len(clusters)-1], c)
		} else {
			clusters = append(clusters, []SpanSnapshot{c})
			curEnd = c.StartMS
		}
		if e := c.StartMS + c.DurMS; e > curEnd {
			curEnd = e
		}
	}
	return clusters
}

// regionName strips the "/worker-N" suffix a par worker span carries,
// leaving the region's par.Options.Name.
func regionName(spanName string) string {
	if i := strings.LastIndex(spanName, "/worker-"); i >= 0 {
		return spanName[:i]
	}
	return spanName
}

func joinSpanPath(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "/" + name
}

// Markdown renders the profile as the "Performance profile" section body of
// REPORT.md: critical path, self-time ranking, and worker utilization.
func (p *Profile) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Total stage wall %.1f ms; critical path %.1f ms (%.0f%% of wall).\n",
		p.WallMS, p.CriticalPathMS, pct(p.CriticalPathMS, p.WallMS))
	fmt.Fprintf(&b, "Timings are observability-only: they vary run to run and are quarantined\nfrom determinism comparisons.\n")

	if len(p.CriticalPath) > 0 {
		fmt.Fprintf(&b, "\n**Critical path** (span, exclusive contribution):\n\n")
		fmt.Fprintf(&b, "| span | self ms | share |\n|---|---|---|\n")
		for _, st := range p.CriticalPath {
			fmt.Fprintf(&b, "| %s | %.1f | %.0f%% |\n", st.Path, st.SelfMS, pct(st.SelfMS, p.CriticalPathMS))
		}
	}
	if len(p.SelfTimes) > 0 {
		fmt.Fprintf(&b, "\n**Top stages by exclusive self-time:**\n\n")
		fmt.Fprintf(&b, "| span | self ms | total ms | alloc |\n|---|---|---|---|\n")
		for _, st := range p.SelfTimes {
			fmt.Fprintf(&b, "| %s | %.1f | %.1f | %s |\n", st.Path, st.SelfMS, st.TotalMS, humanBytes(st.AllocBytes))
		}
	}
	if len(p.Regions) > 0 {
		fmt.Fprintf(&b, "\n**Parallel regions** (internal/par busy/idle accounting):\n\n")
		fmt.Fprintf(&b, "| region | workers | tasks | busy ms | lane ms | efficiency |\n|---|---|---|---|---|---|\n")
		for _, r := range p.Regions {
			fmt.Fprintf(&b, "| %s | %d | %d | %.1f | %.1f | %.0f%% |\n",
				r.Name, r.Workers, r.Tasks, r.BusyMS, r.LaneMS, 100*r.Efficiency)
		}
	}
	return b.String()
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part / whole
}

func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
