package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Funnel records one filtering stage of the data pipeline: how many items
// entered the stage, how many survived it, and — per named reason — why the
// rest were dropped. Every headline number in the reproduction sits
// downstream of a filter cascade (discard unresponsive offnet targets,
// discard speed-of-light violations, gate ISPs on usable vantage points,
// drop the most-discrepant site pairs), and the funnel layer is what makes
// those decisions auditable: a balanced funnel satisfies
//
//	In == Out + Σ drops
//
// so a change in any experiment's denominator between two runs is
// attributable to a specific reason at a specific stage.
//
// Funnels follow the metric naming convention ("<package>.<stage>", e.g.
// "ping.filter", "coloc.pairs") and reason names are short snake_case tags
// ("unresponsive", "sol_violation", "discrepant_20pct"). All methods are
// single atomic operations, safe for concurrent use and safe on a nil
// receiver, and nothing here feeds back into experiment results — equal
// seeds produce identical funnel totals at any worker count, because every
// item is counted exactly once no matter which worker processed it.
type Funnel struct {
	name string
	help string
	in   atomic.Int64
	out  atomic.Int64

	mu      sync.RWMutex
	reasons map[string]*Counter
}

// Name returns the funnel's registered name ("" for nil funnels).
func (f *Funnel) Name() string {
	if f == nil {
		return ""
	}
	return f.name
}

// In records n items entering the stage. Safe on a nil receiver.
func (f *Funnel) In(n int64) {
	if f != nil {
		f.in.Add(n)
	}
}

// Out records n items surviving the stage. Safe on a nil receiver.
func (f *Funnel) Out(n int64) {
	if f != nil {
		f.out.Add(n)
	}
}

// Reason registers (or returns the existing) drop counter for the reason.
// Hot paths bind reasons once at package init and increment the returned
// counter directly; Reason on a nil funnel returns nil, whose methods no-op.
func (f *Funnel) Reason(reason string) *Counter {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.reasons[reason]; ok {
		return c
	}
	c := &Counter{}
	f.reasons[reason] = c
	return c
}

// Drop records n items dropped for the reason (convenience over Reason).
func (f *Funnel) Drop(reason string, n int64) {
	if f != nil {
		f.Reason(reason).Add(n)
	}
}

// Snapshot copies the funnel's current state, drops sorted by reason so
// equal states render byte-identically.
func (f *Funnel) Snapshot() FunnelSnapshot {
	if f == nil {
		return FunnelSnapshot{}
	}
	f.mu.RLock()
	snap := FunnelSnapshot{
		Name: f.name,
		Help: f.help,
		In:   f.in.Load(),
		Out:  f.out.Load(),
	}
	for reason, c := range f.reasons {
		snap.Drops = append(snap.Drops, FunnelDrop{Reason: reason, N: c.Value()})
	}
	f.mu.RUnlock()
	sort.Slice(snap.Drops, func(i, j int) bool { return snap.Drops[i].Reason < snap.Drops[j].Reason })
	return snap
}

// FunnelDrop is one drop reason's count in a snapshot.
type FunnelDrop struct {
	Reason string `json:"reason"`
	N      int64  `json:"n"`
}

// FunnelSnapshot is one funnel's exported state: the per-stage accounting
// that lands in the run manifest, the reproduce report, the event stream,
// and the debug page.
type FunnelSnapshot struct {
	Name  string       `json:"name"`
	Help  string       `json:"help,omitempty"`
	In    int64        `json:"in"`
	Out   int64        `json:"out"`
	Drops []FunnelDrop `json:"drops,omitempty"`
}

// Dropped returns the total items dropped across reasons.
func (s FunnelSnapshot) Dropped() int64 {
	var n int64
	for _, d := range s.Drops {
		n += d.N
	}
	return n
}

// Balanced reports whether the accounting reconciles: In == Out + Σ drops.
func (s FunnelSnapshot) Balanced() bool { return s.In == s.Out+s.Dropped() }

// DropN returns the count recorded for the reason (0 when absent).
func (s FunnelSnapshot) DropN(reason string) int64 {
	for _, d := range s.Drops {
		if d.Reason == reason {
			return d.N
		}
	}
	return 0
}

// NewFunnel registers (or returns the existing) funnel under name.
func (r *Registry) NewFunnel(name, help string) *Funnel {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.funnels[name]; ok {
		return f
	}
	f := &Funnel{name: name, help: help, reasons: make(map[string]*Counter)}
	r.funnels[name] = f
	return f
}

// NewFunnel registers a funnel in the Default registry.
func NewFunnel(name, help string) *Funnel { return Default.NewFunnel(name, help) }

// FunnelSnapshots returns every registered funnel's state, sorted by name —
// the deterministic serialization order used by manifests and events.
func (r *Registry) FunnelSnapshots() []FunnelSnapshot {
	r.mu.RLock()
	funnels := make([]*Funnel, 0, len(r.funnels))
	for _, f := range r.funnels {
		funnels = append(funnels, f)
	}
	r.mu.RUnlock()
	sort.Slice(funnels, func(i, j int) bool { return funnels[i].name < funnels[j].name })
	out := make([]FunnelSnapshot, len(funnels))
	for i, f := range funnels {
		out[i] = f.Snapshot()
	}
	return out
}

// FunnelTable renders funnel snapshots as a markdown table — the report's
// per-stage accounting mirroring the paper's Table 2 denominators. Each row
// reads items-in → items-kept, with the drop breakdown spelled out.
func FunnelTable(snaps []FunnelSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| stage | in | kept | dropped | drop breakdown | balanced |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|\n")
	for _, s := range snaps {
		var reasons []string
		for _, d := range s.Drops {
			reasons = append(reasons, fmt.Sprintf("%s=%d", d.Reason, d.N))
		}
		breakdown := strings.Join(reasons, ", ")
		if breakdown == "" {
			breakdown = "—"
		}
		balanced := "✅"
		if !s.Balanced() {
			balanced = "❌"
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %s | %s |\n",
			s.Name, s.In, s.Out, s.Dropped(), breakdown, balanced)
	}
	return b.String()
}
