package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeEvents parses a JSONL stream back into events, failing on any
// malformed line.
func decodeEvents(t *testing.T, data []byte) []Event {
	t.Helper()
	var out []Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("malformed event line %q: %v", sc.Text(), err)
		}
		out = append(out, e)
	}
	return out
}

func TestEventSinkSpanStream(t *testing.T) {
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	tr := NewTracer()
	tr.SetSink(sink)

	root := tr.Start("colocation")
	child := tr.Start("ping-campaign")
	child.SetAttr("targets", 163)
	child.End()
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events := decodeEvents(t, buf.Bytes())
	var types, spans []string
	for _, e := range events {
		if e.Type == "funnel" {
			continue // global funnels may flush on root end; not under test here
		}
		types = append(types, e.Type)
		spans = append(spans, e.Span)
	}
	wantTypes := []string{"span_start", "span_start", "span_end", "span_end"}
	wantSpans := []string{"colocation", "colocation/ping-campaign", "colocation/ping-campaign", "colocation"}
	if strings.Join(types, ",") != strings.Join(wantTypes, ",") {
		t.Fatalf("event types = %v, want %v", types, wantTypes)
	}
	if strings.Join(spans, ",") != strings.Join(wantSpans, ",") {
		t.Fatalf("event spans = %v, want %v", spans, wantSpans)
	}
	// span_end carries duration and attrs.
	for _, e := range events {
		if e.Type == "span_end" && e.Span == "colocation/ping-campaign" {
			if e.DurMS < 0 || e.Attrs["targets"] != float64(163) {
				t.Fatalf("bad span_end payload: %+v", e)
			}
		}
	}
}

func TestEventSinkEmitFunnelsOnChange(t *testing.T) {
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	r := NewRegistry()
	f := r.NewFunnel("test.stream_stage", "")

	f.In(5)
	f.Out(5)
	sink.EmitFunnels(r)
	sink.EmitFunnels(r) // unchanged: must not re-emit
	f.In(1)
	f.Drop("late", 1)
	sink.EmitFunnels(r)
	sink.Close()

	events := decodeEvents(t, buf.Bytes())
	if len(events) != 2 {
		t.Fatalf("got %d funnel events, want 2: %+v", len(events), events)
	}
	if events[0].Funnel == nil || events[0].Funnel.In != 5 {
		t.Fatalf("first emission wrong: %+v", events[0])
	}
	if events[1].Funnel.In != 6 || events[1].Funnel.DropN("late") != 1 {
		t.Fatalf("second emission wrong: %+v", events[1])
	}
}

func TestEventSinkNilAndClosed(t *testing.T) {
	var sink *EventSink
	sink.Emit(Event{Type: "span_start"})
	sink.EmitFunnels(Default)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	s := NewEventSink(&buf)
	s.Emit(Event{Type: "span_start", Span: "a"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	n := buf.Len()
	s.Emit(Event{Type: "span_start", Span: "after-close"})
	if buf.Len() != n {
		t.Fatal("emit after close wrote data")
	}
}

func TestTracerSinkDetach(t *testing.T) {
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	tr := NewTracer()
	tr.SetSink(sink)
	tr.Start("one").End()
	tr.SetSink(nil)
	tr.Start("two").End()
	sink.Close()

	for _, e := range decodeEvents(t, buf.Bytes()) {
		if e.Span == "two" {
			t.Fatal("event emitted after sink detached")
		}
	}
}

// droppedTotal reads the obs.events_dropped_total counter.
func droppedTotal() float64 {
	return Default.Snapshot()["obs.events_dropped_total"].Value
}

// TestEmitAfterCloseCounted: an event arriving after Close must not vanish
// silently — it lands in obs.events_dropped_total, so a manifest says why the
// stream file ends where it does.
func TestEmitAfterCloseCounted(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	s.Emit(Event{Type: "span_start", Span: "before"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	before := droppedTotal()
	n := buf.Len()
	s.Emit(Event{Type: "span_end", Span: "too-late"})
	if buf.Len() != n {
		t.Fatal("emit after close wrote to the stream")
	}
	if got := droppedTotal() - before; got != 1 {
		t.Fatalf("events_dropped_total moved by %g, want 1", got)
	}

	// Nil sinks are the "no stream requested" state, not a failure: emitting
	// into one counts nothing.
	before = droppedTotal()
	var nilSink *EventSink
	nilSink.Emit(Event{Type: "span_end"})
	if got := droppedTotal() - before; got != 0 {
		t.Fatalf("nil-sink emit counted as dropped (%+g)", got)
	}
}

// TestEmitUnmarshalableCounted: the marshal-failure path counts too.
func TestEmitUnmarshalableCounted(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	defer s.Close()

	before := droppedTotal()
	s.Emit(Event{Type: "span_end", Attrs: map[string]any{"bad": make(chan int)}})
	if got := droppedTotal() - before; got != 1 {
		t.Fatalf("events_dropped_total moved by %g, want 1", got)
	}
	if buf.Len() != 0 {
		t.Fatalf("unmarshalable event wrote %d bytes", buf.Len())
	}
}
