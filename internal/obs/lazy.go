package obs

import "sync"

// Optional subsystems must not register metrics unless they actually run:
// every registered name lands in the run manifest, so an eagerly registered
// counter from an inactive subsystem would perturb the committed golden
// manifests. LazyCounter and LazyFunnel package the registration-on-first-use
// pattern those subsystems (world snapshot loads, chaos injection, lineage
// recording) were each hand-rolling: declare the handle at package level,
// call Get only on the active path, and the underlying metric exists exactly
// when the subsystem does.

// LazyCounter defers registering its counter in the Default registry until
// the first Get. The zero value is unusable; use NewLazyCounter.
type LazyCounter struct {
	name, help string
	once       sync.Once
	c          *Counter
}

// NewLazyCounter declares a counter without registering it.
func NewLazyCounter(name, help string) *LazyCounter {
	return &LazyCounter{name: name, help: help}
}

// Get registers the counter (once) and returns it. Safe on a nil receiver:
// it returns a nil *Counter, whose methods no-op.
func (l *LazyCounter) Get() *Counter {
	if l == nil {
		return nil
	}
	l.once.Do(func() { l.c = NewCounter(l.name, l.help) })
	return l.c
}

// LazyFunnel defers registering its funnel in the Default registry until the
// first Get. The zero value is unusable; use NewLazyFunnel.
type LazyFunnel struct {
	name, help string
	once       sync.Once
	f          *Funnel
}

// NewLazyFunnel declares a funnel without registering it.
func NewLazyFunnel(name, help string) *LazyFunnel {
	return &LazyFunnel{name: name, help: help}
}

// Get registers the funnel (once) and returns it. Safe on a nil receiver:
// it returns a nil *Funnel, whose methods no-op.
func (l *LazyFunnel) Get() *Funnel {
	if l == nil {
		return nil
	}
	l.once.Do(func() { l.f = NewFunnel(l.name, l.help) })
	return l.f
}
