package obs

import (
	"expvar"
	"fmt"
	"html"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// ServeDebug starts the opt-in debug endpoint on addr (e.g. "localhost:6060")
// and returns the bound address. It serves:
//
//	/debug/pprof/   — the full net/http/pprof suite
//	/debug/vars     — expvar, including the offnetrisk metrics registry
//	/debug/obs      — a live HTML span/progress + metrics + funnels page
//	/metrics        — Prometheus text exposition (format 0.0.4)
//
// The tracer may be nil (the page then shows metrics only). The returned
// close function shuts the server down and releases the listener; callers
// hook it to context cancellation (or defer it) so the goroutine does not
// outlive the run. Errors after startup are dropped, matching the
// endpoint's diagnostic-only role.
func ServeDebug(addr string, tr *Tracer) (string, func(), error) {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", PromHandler(Default))
	start := time.Now()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		writeObsPage(w, tr, start)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/debug/obs", http.StatusFound)
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	var once sync.Once
	stop := func() { once.Do(func() { _ = srv.Close() }) }
	return ln.Addr().String(), stop, nil
}

// writeObsPage renders the live span tree and metric values. It refreshes
// itself every 2 s so a running pipeline reads as a progress page.
func writeObsPage(w http.ResponseWriter, tr *Tracer, start time.Time) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><meta http-equiv="refresh" content="2">`)
	fmt.Fprint(w, `<title>offnetrisk /debug/obs</title><style>
body{font-family:monospace;margin:2em}table{border-collapse:collapse}
td,th{padding:2px 10px;text-align:left;border-bottom:1px solid #ddd}
.open{color:#b50}.done{color:#060}</style>`)
	fmt.Fprintf(w, "<h1>offnetrisk run — up %s</h1>", time.Since(start).Round(time.Millisecond))

	fmt.Fprint(w, "<h2>stages</h2>")
	spans := tr.Snapshot(start)
	if len(spans) == 0 {
		fmt.Fprint(w, "<p>no spans recorded (tracer disabled or run not started)</p>")
	} else {
		fmt.Fprint(w, "<table><tr><th>stage</th><th>state</th><th>ms</th><th>alloc</th><th>attrs</th></tr>")
		for _, s := range spans {
			writeSpanRows(w, s, 0)
		}
		fmt.Fprint(w, "</table>")
	}

	fmt.Fprint(w, "<h2>metrics</h2><table><tr><th>name</th><th>type</th><th>value</th></tr>")
	snap := Default.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := snap[n]
		val := fmt.Sprintf("%.6g", m.Value)
		if m.Type == "histogram" {
			val = fmt.Sprintf("n=%d sum=%.6g", m.Count, m.Value)
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>",
			html.EscapeString(n), m.Type, val)
	}
	fmt.Fprint(w, "</table>")

	if funnels := Default.FunnelSnapshots(); len(funnels) > 0 {
		fmt.Fprint(w, "<h2>funnels</h2><table><tr><th>stage</th><th>in</th><th>kept</th><th>dropped</th><th>drop breakdown</th></tr>")
		for _, f := range funnels {
			breakdown := "—"
			if len(f.Drops) > 0 {
				breakdown = ""
				for i, d := range f.Drops {
					if i > 0 {
						breakdown += ", "
					}
					breakdown += fmt.Sprintf("%s=%d", html.EscapeString(d.Reason), d.N)
				}
			}
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>",
				html.EscapeString(f.Name), f.In, f.Out, f.Dropped(), breakdown)
		}
		fmt.Fprint(w, "</table>")
	}

	if lr := ActiveLineage(); lr != nil {
		writeLineageSection(w, lr)
	}

	fmt.Fprint(w, "<p><a href='/debug/pprof/'>pprof</a> · <a href='/debug/vars'>expvar</a> · <a href='/metrics'>prometheus</a></p>")
}

// writeLineageSection renders the active lineage recorder: per-stage decision
// counts and the sampled evidence records. Subjects, reasons, and evidence
// values are caller-supplied strings — escape everything.
func writeLineageSection(w http.ResponseWriter, lr *LineageRecorder) {
	counts := lr.StageCounts()
	if len(counts) == 0 {
		return
	}
	fmt.Fprint(w, "<h2>lineage</h2><table><tr><th>stage</th><th>in</th><th>kept</th><th>dropped</th><th>drop breakdown</th></tr>")
	for _, s := range counts {
		breakdown := "—"
		if len(s.Drops) > 0 {
			breakdown = ""
			for i, d := range s.Drops {
				if i > 0 {
					breakdown += ", "
				}
				breakdown += fmt.Sprintf("%s=%d", html.EscapeString(d.Reason), d.N)
			}
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>",
			html.EscapeString(s.Stage), s.In, s.Kept, s.Dropped(), breakdown)
	}
	fmt.Fprint(w, "</table>")

	recs := lr.Records()
	fmt.Fprintf(w, "<h3>sampled decisions (%d) — digest %s</h3>", len(recs), html.EscapeString(lr.Digest()))
	fmt.Fprint(w, "<table><tr><th>stage</th><th>group</th><th>subject</th><th>outcome</th><th>reason</th><th>evidence</th></tr>")
	for _, d := range recs {
		ev := ""
		for i, kv := range d.Evidence {
			if i > 0 {
				ev += " "
			}
			ev += html.EscapeString(kv.K) + "=" + html.EscapeString(kv.V)
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			html.EscapeString(d.Stage), html.EscapeString(d.Group), html.EscapeString(d.Subject),
			html.EscapeString(d.Outcome), html.EscapeString(d.ReasonCode), ev)
	}
	fmt.Fprint(w, "</table>")
}

func writeSpanRows(w http.ResponseWriter, s SpanSnapshot, depth int) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "&nbsp;&nbsp;"
	}
	state, class := "running", "open"
	if s.Ended {
		state, class = "done", "done"
	}
	// Attribute values are caller-supplied and may contain markup; escape
	// both keys and rendered values before they reach the page.
	attrs := ""
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				attrs += " "
			}
			attrs += html.EscapeString(k) + "=" + html.EscapeString(fmt.Sprint(s.Attrs[k]))
		}
	}
	fmt.Fprintf(w, "<tr><td>%s%s</td><td class=%q>%s</td><td>%.1f</td><td>%dB</td><td>%s</td></tr>",
		indent, html.EscapeString(s.Name), class, state, s.DurMS, s.AllocBytes, attrs)
	for _, c := range s.Children {
		writeSpanRows(w, c, depth+1)
	}
}
