package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition format 0.0.4 for the registry, so a standard
// scraper (or `curl /metrics`) reads the same counters the manifest records.
// Internal metric names keep their "<package>.<noun>_<verb>" spelling in the
// registry; the exposition maps '.' (invalid in Prometheus identifiers) to
// '_', e.g. "ping.rtts_measured" → "ping_rtts_measured". Funnels export as
// three labelled families — funnel_in_total, funnel_out_total, and
// funnel_dropped_total{funnel,reason} — so drop reasons stay queryable
// without a metric-name explosion.

// PromContentType is the Content-Type of the 0.0.4 text format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric and funnel in Prometheus
// text exposition format 0.0.4: a # HELP and # TYPE line per family, bucket
// series with cumulative counts and an explicit +Inf bound, and _sum/_count
// series for histograms. Families are sorted by name, so equal registry
// states render byte-identically.
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		m := snap[name]
		pname := promName(name)
		writePromHeader(w, pname, m.Help, m.Type)
		switch m.Type {
		case "histogram":
			var cum int64
			for i, bound := range m.Bounds {
				cum += m.Buckets[i]
				le := promFloat(bound)
				if bound == math.MaxFloat64 {
					// Snapshot stores the overflow bound JSON-safely as
					// MaxFloat64; the exposition restores the +Inf bucket.
					le = "+Inf"
				}
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pname, le, cum)
			}
			fmt.Fprintf(w, "%s_sum %s\n", pname, promFloat(m.Value))
			fmt.Fprintf(w, "%s_count %d\n", pname, m.Count)
		default:
			fmt.Fprintf(w, "%s %s\n", pname, promFloat(m.Value))
		}
	}

	funnels := r.FunnelSnapshots()
	if len(funnels) == 0 {
		return
	}
	writePromHeader(w, "funnel_in_total", "items entering each pipeline filtering stage", "counter")
	for _, f := range funnels {
		fmt.Fprintf(w, "funnel_in_total{funnel=\"%s\"} %d\n", promLabel(f.Name), f.In)
	}
	writePromHeader(w, "funnel_out_total", "items surviving each pipeline filtering stage", "counter")
	for _, f := range funnels {
		fmt.Fprintf(w, "funnel_out_total{funnel=\"%s\"} %d\n", promLabel(f.Name), f.Out)
	}
	writePromHeader(w, "funnel_dropped_total", "items dropped per filtering stage and reason", "counter")
	for _, f := range funnels {
		for _, d := range f.Drops {
			fmt.Fprintf(w, "funnel_dropped_total{funnel=\"%s\",reason=\"%s\"} %d\n",
				promLabel(f.Name), promLabel(d.Reason), d.N)
		}
	}
}

// PromHandler serves the registry as a Prometheus scrape endpoint.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		r.WritePrometheus(w)
	})
}

func writePromHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, promHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// promName maps a registry name onto the Prometheus identifier grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid byte (notably the '.'
// namespace separator) with '_'.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		b.WriteByte(c)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promHelp escapes a HELP text per the format: backslash and newline.
func promHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabel escapes a label value body per the format: backslash, double
// quote, and newline.
func promLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat renders a float the way Prometheus parsers expect, including
// the "+Inf" spelling for the overflow bucket bound.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
