package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("pipeline/colocation")
	ping := tr.Start("ping-campaign")
	ping.SetAttr("rtts", 163)
	ping.End()
	cluster := tr.Start("optics-cluster")
	inner := cluster.Child("xi=0.1")
	inner.End()
	cluster.End()
	root.End()
	second := tr.Start("pipeline/table1")
	second.End()

	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	snap := tr.Snapshot(time.Time{})
	if snap[0].Name != "pipeline/colocation" || len(snap[0].Children) != 2 {
		t.Fatalf("bad root snapshot: %+v", snap[0])
	}
	if snap[0].Children[1].Children[0].Name != "xi=0.1" {
		t.Fatalf("Child() span not nested: %+v", snap[0].Children[1])
	}
	if got := snap[0].Attrs; got != nil {
		t.Fatalf("root has unexpected attrs: %v", got)
	}
	if snap[0].Children[0].Attrs["rtts"] != 163 {
		t.Fatalf("attr lost: %v", snap[0].Children[0].Attrs)
	}
	if n := StageCount(snap); n != 5 {
		t.Fatalf("StageCount = %d, want 5", n)
	}
}

func TestSpanTimingMonotonic(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	child := tr.Start("child")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()

	if child.Elapsed() <= 0 {
		t.Fatal("child duration not positive")
	}
	if root.Elapsed() < child.Elapsed() {
		t.Fatalf("parent %v shorter than child %v", root.Elapsed(), child.Elapsed())
	}
	snap := tr.Snapshot(time.Time{})
	if snap[0].Children[0].StartMS < snap[0].StartMS {
		t.Fatal("child started before parent")
	}
	// End twice: duration must freeze.
	d := child.Elapsed()
	child.End()
	if child.Elapsed() != d {
		t.Fatal("double End changed duration")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("nope")
	if s != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// All of these must be no-ops, not panics.
	s.SetAttr("k", 1)
	c := s.Child("child")
	c.End()
	s.End()
	if s.Elapsed() != 0 || s.Name() != "" {
		t.Fatal("nil span leaked state")
	}
	if tr.Snapshot(time.Time{}) != nil || tr.Roots() != nil {
		t.Fatal("nil tracer returned spans")
	}
	var cnt *Counter
	cnt.Inc()
	var g *Gauge
	g.Set(3)
	var h *Histogram
	h.Observe(1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("ping.rtt_ms", "", []float64{1, 5, 10})
	// Boundary values land in the bucket whose upper bound equals them.
	for _, v := range []float64{0.5, 1.0, 1.0001, 5.0, 9.99, 10.0, 10.01, 400} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	wantBounds := []float64{1, 5, 10, math.Inf(1)}
	if !reflect.DeepEqual(bounds, wantBounds) {
		t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
	}
	wantCounts := []int64{2, 2, 2, 2} // {0.5,1} {1.0001,5} {9.99,10} {10.01,400}
	if !reflect.DeepEqual(counts, wantCounts) {
		t.Fatalf("counts = %v, want %v", counts, wantCounts)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0001 + 5 + 9.99 + 10 + 10.01 + 400
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test.events_counted", "")
	h := r.NewHistogram("test.values_observed", "", []float64{10, 100})
	g := r.NewGauge("test.level_sampled", "")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	// Registration is idempotent: same name, same metric.
	if r.NewCounter("test.events_counted", "") != c {
		t.Fatal("re-registering returned a different counter")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	tr := NewTracer()
	start := time.Now()
	root := tr.Start("table1")
	stage := tr.Start("scan/2023")
	stage.SetAttr("records", 1234)
	stage.End()
	root.End()
	NewCounter("test.manifest_counted", "").Add(7)

	m := BuildManifest("reproduce", 42, "tiny", tr, start)
	if m.GoVersion == "" || m.Seed != 42 || m.Scale != "tiny" {
		t.Fatalf("bad provenance: %+v", m)
	}
	if m.StageCount() != 2 {
		t.Fatalf("StageCount = %d, want 2", m.StageCount())
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip fidelity: same JSON both ways. (JSON numbers decode as
	// float64, so compare serialized forms.)
	a, _ := json.Marshal(m)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip changed manifest:\n%s\n%s", a, b)
	}
	if got.Metrics["test.manifest_counted"].Value != 7 {
		t.Fatalf("metric lost in round trip: %+v", got.Metrics["test.manifest_counted"])
	}
}

func TestServeDebug(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("stage-one")
	sp.End()
	addr, stop, err := ServeDebug("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	for _, path := range []string{"/debug/obs", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if _, ok := vars["offnetrisk_metrics"]; !ok {
		keys := make([]string, 0, len(vars))
		for k := range vars {
			keys = append(keys, k)
		}
		t.Fatalf("expvar missing offnetrisk_metrics; has %s", strings.Join(keys, ", "))
	}
}
