package obs

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric naming convention: "<package>.<noun>_<verb>", e.g.
// "ping.rtts_measured", "optics.points_clustered", "tracert.hops_mapped".
// Packages register their metrics in package-level vars so every metric is
// present (at zero) from process start.

// Registry holds named metrics. The zero value is not ready; use
// NewRegistry or the package-level Default registry.
type Registry struct {
	mu      sync.RWMutex
	counts  map[string]*Counter
	gauges  map[string]*Gauge
	hists   map[string]*Histogram
	funnels map[string]*Funnel
}

// Default is the process-wide registry the internal packages register into.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts:  make(map[string]*Counter),
		gauges:  make(map[string]*Gauge),
		hists:   make(map[string]*Histogram),
		funnels: make(map[string]*Funnel),
	}
}

// Reset zeroes every registered metric and funnel without unregistering
// anything. It is a TEST-ONLY helper: package-level metric vars stay bound
// to their (now zeroed) instances, so a test can reset the shared Default
// registry and assert absolute values instead of deltas — assertions no
// longer depend on which tests ran first. Production code never calls it;
// counters are documented as cumulative over the process.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counts {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.n.Store(0)
	}
	for _, f := range r.funnels {
		f.in.Store(0)
		f.out.Store(0)
		f.mu.RLock()
		for _, c := range f.reasons {
			c.v.Store(0)
		}
		f.mu.RUnlock()
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	help string
	v    atomic.Int64
}

// Add increments the counter. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Help returns the registration help string ("" for nil or unregistered
// counters, e.g. funnel drop reasons).
func (c *Counter) Help() string {
	if c == nil {
		return ""
	}
	return c.help
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value.
type Gauge struct {
	help string
	bits atomic.Uint64
}

// Set stores the value. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Help returns the registration help string.
func (g *Gauge) Help() string {
	if g == nil {
		return ""
	}
	return g.help
}

// Histogram counts observations into fixed buckets. An observation lands in
// the first bucket whose upper bound is >= the value; values above the last
// bound land in the implicit overflow bucket.
type Histogram struct {
	help   string
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	n      atomic.Int64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Help returns the registration help string.
func (h *Histogram) Help() string {
	if h == nil {
		return ""
	}
	return h.help
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the upper bounds and per-bucket counts (the final count is
// the overflow bucket, bound +Inf).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// NewCounter registers (or returns the existing) counter under name.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	c := &Counter{help: help}
	r.counts[name] = c
	return c
}

// NewGauge registers (or returns the existing) gauge under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{help: help}
	r.gauges[name] = g
	return g
}

// NewHistogram registers (or returns the existing) histogram under name with
// the given ascending upper bucket bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	sort.Float64s(h.bounds)
	r.hists[name] = h
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}

// MetricValue is one metric's exported state.
type MetricValue struct {
	Type  string  `json:"type"` // "counter" | "gauge" | "histogram"
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   int64     `json:"count,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric keyed by name. Histogram bounds
// replace +Inf with math.MaxFloat64 so the snapshot is JSON-safe.
func (r *Registry) Snapshot() map[string]MetricValue {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]MetricValue, len(r.counts)+len(r.gauges)+len(r.hists))
	for name, c := range r.counts {
		out[name] = MetricValue{Type: "counter", Help: c.help, Value: float64(c.Value())}
	}
	for name, g := range r.gauges {
		out[name] = MetricValue{Type: "gauge", Help: g.help, Value: g.Value()}
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		for i, b := range bounds {
			if math.IsInf(b, 1) {
				bounds[i] = math.MaxFloat64
			}
		}
		out[name] = MetricValue{
			Type: "histogram", Help: h.help,
			Value: h.Sum(), Count: h.Count(), Bounds: bounds, Buckets: counts,
		}
	}
	return out
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var expvarOnce sync.Once

// PublishExpvar exposes the Default registry under the expvar key
// "offnetrisk_metrics" (idempotent; expvar.Publish panics on duplicates).
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("offnetrisk_metrics", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
