package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFunnelBalance(t *testing.T) {
	r := NewRegistry()
	f := r.NewFunnel("test.filter", "items entering vs. kept")
	drop := f.Reason("bad_input")
	f.In(100)
	f.Out(90)
	drop.Add(7)
	f.Drop("too_late", 3)

	s := f.Snapshot()
	if s.Name != "test.filter" || s.In != 100 || s.Out != 90 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if s.Dropped() != 10 {
		t.Fatalf("Dropped = %d, want 10", s.Dropped())
	}
	if !s.Balanced() {
		t.Fatalf("funnel should balance: %+v", s)
	}
	if s.DropN("bad_input") != 7 || s.DropN("too_late") != 3 || s.DropN("absent") != 0 {
		t.Fatalf("bad drop counts: %+v", s.Drops)
	}
	// Drops are sorted by reason so equal states render byte-identically.
	want := []FunnelDrop{{Reason: "bad_input", N: 7}, {Reason: "too_late", N: 3}}
	if !reflect.DeepEqual(s.Drops, want) {
		t.Fatalf("drops = %+v, want %+v", s.Drops, want)
	}

	f.Out(5) // 100 in, 95 out, 10 dropped: over-accounted
	if f.Snapshot().Balanced() {
		t.Fatal("unbalanced funnel reported as balanced")
	}
}

func TestFunnelNilSafety(t *testing.T) {
	var f *Funnel
	f.In(1)
	f.Out(1)
	f.Drop("x", 1)
	f.Reason("x").Inc()
	if f.Name() != "" {
		t.Fatal("nil funnel leaked a name")
	}
	if s := f.Snapshot(); s.In != 0 || s.Out != 0 || len(s.Drops) != 0 {
		t.Fatalf("nil funnel snapshot not zero: %+v", s)
	}
}

func TestFunnelRegistration(t *testing.T) {
	r := NewRegistry()
	f := r.NewFunnel("test.stage", "help text")
	if r.NewFunnel("test.stage", "other") != f {
		t.Fatal("re-registering returned a different funnel")
	}
	if f.Reason("why") != f.Reason("why") {
		t.Fatal("re-registering a reason returned a different counter")
	}
	r.NewFunnel("test.another", "")
	snaps := r.FunnelSnapshots()
	if len(snaps) != 2 || snaps[0].Name != "test.another" || snaps[1].Name != "test.stage" {
		t.Fatalf("FunnelSnapshots not sorted by name: %+v", snaps)
	}
	if snaps[1].Help != "help text" {
		t.Fatalf("help lost: %+v", snaps[1])
	}
}

func TestFunnelConcurrent(t *testing.T) {
	r := NewRegistry()
	f := r.NewFunnel("test.parallel", "")
	drop := f.Reason("lost")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.In(1)
				if i%10 == 0 {
					drop.Inc()
				} else {
					f.Out(1)
				}
			}
		}()
	}
	wg.Wait()
	s := f.Snapshot()
	if s.In != workers*per {
		t.Fatalf("in = %d, want %d", s.In, workers*per)
	}
	if !s.Balanced() {
		t.Fatalf("concurrent funnel unbalanced: %+v", s)
	}
}

func TestFunnelTable(t *testing.T) {
	r := NewRegistry()
	f := r.NewFunnel("ping.filter", "")
	f.In(10)
	f.Out(8)
	f.Drop("unresponsive", 2)
	r.NewFunnel("empty.stage", "")

	table := FunnelTable(r.FunnelSnapshots())
	for _, want := range []string{
		"| stage | in | kept | dropped | drop breakdown | balanced |",
		"| ping.filter | 10 | 8 | 2 | unresponsive=2 | ✅ |",
		"| empty.stage | 0 | 0 | 0 | — | ✅ |",
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}

	f.In(5) // unbalance
	if table := FunnelTable(r.FunnelSnapshots()); !strings.Contains(table, "❌") {
		t.Fatalf("unbalanced funnel not flagged:\n%s", table)
	}
}

func TestManifestIncludesFunnels(t *testing.T) {
	f := NewFunnel("test.manifest_funnel", "stage under test")
	f.In(3)
	f.Out(2)
	f.Drop("gone", 1)

	m := BuildManifest("test", 1, "tiny", NewTracer(), time.Time{})
	var got *FunnelSnapshot
	for i := range m.Funnels {
		if m.Funnels[i].Name == "test.manifest_funnel" {
			got = &m.Funnels[i]
		}
	}
	if got == nil {
		t.Fatalf("funnel missing from manifest: %+v", m.Funnels)
	}
	if got.In < 3 || got.Out < 2 || got.DropN("gone") < 1 || got.Help != "stage under test" {
		t.Fatalf("bad funnel snapshot in manifest: %+v", got)
	}
}
