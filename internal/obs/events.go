package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// The -events JSONL stream: one JSON object per line, emitted live as the
// run progresses, so an external consumer (tail -f, jq, a dashboard) watches
// stages open and close and funnel counts move without polling the debug
// endpoint. The stream is observability-only — timestamps and durations
// vary run to run; the deterministic record of a run is the manifest.

// Event is one line of the event stream.
type Event struct {
	// Type is "span_start", "span_end", "funnel", or "temporal" (trajectory
	// events from the discrete-event engine, payload under Attrs["event"]).
	Type string `json:"type"`
	// AtMS is the event's offset from the sink's creation, in milliseconds.
	AtMS float64 `json:"at_ms"`
	// Span is the slash-joined span path ("colocation/ping-campaign") for
	// span events.
	Span string `json:"span,omitempty"`
	// DurMS and AllocBytes mirror the span snapshot, on span_end only.
	DurMS      float64        `json:"dur_ms,omitempty"`
	AllocBytes uint64         `json:"alloc_bytes,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	// Funnel carries the stage's full accounting on funnel events, emitted
	// whenever a root span ends with the stage's counts changed, and once
	// more with the final totals when the sink closes.
	Funnel *FunnelSnapshot `json:"funnel,omitempty"`
}

// eventsDropped counts events that could not reach the stream — written
// after Close (e.g. a span ending during teardown) or unmarshalable. A
// clean run keeps it at zero; a nonzero value in a manifest says the event
// stream is incomplete and why the file ends where it does.
var eventsDropped = NewCounter("obs.events_dropped_total",
	"events discarded because the sink was already closed or failed to marshal")

// EventSink writes events as JSONL. All methods are safe for concurrent use
// and safe on a nil receiver, so instrumented code never checks whether a
// stream was requested.
type EventSink struct {
	start time.Time

	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	last   map[string]FunnelSnapshot
	closed bool
}

// OpenEventSink creates (truncating) the JSONL file at path.
func OpenEventSink(path string) (*EventSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open event stream %s: %w", path, err)
	}
	return NewEventSink(f), nil
}

// NewEventSink wraps a writer as an event sink. If w is also an io.Closer it
// is closed by Close.
func NewEventSink(w io.Writer) *EventSink {
	s := &EventSink{
		start: time.Now(),
		w:     bufio.NewWriter(w),
		last:  make(map[string]FunnelSnapshot),
	}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes one event, stamping AtMS, and flushes so consumers see it
// immediately (the stream is line-buffered, not end-buffered: a `tail -f`
// must read a stage's start before the stage finishes).
func (s *EventSink) Emit(e Event) {
	if s == nil {
		return
	}
	e.AtMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		eventsDropped.Inc()
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		eventsDropped.Inc()
		return
	}
	s.w.Write(data)
	s.w.WriteByte('\n')
	s.w.Flush()
}

// EmitFunnels emits one funnel event per registered funnel whose snapshot
// changed since the last emission — called by the tracer when a root span
// ends, and by the CLI teardown for the final totals.
func (s *EventSink) EmitFunnels(r *Registry) {
	if s == nil || r == nil {
		return
	}
	for _, snap := range r.FunnelSnapshots() {
		s.mu.Lock()
		prev, seen := s.last[snap.Name]
		changed := !seen || prev.In != snap.In || prev.Out != snap.Out || prev.Dropped() != snap.Dropped()
		if changed {
			s.last[snap.Name] = snap
		}
		s.mu.Unlock()
		if changed {
			snap := snap
			s.Emit(Event{Type: "funnel", Funnel: &snap})
		}
	}
}

// Close flushes and closes the underlying writer. Idempotent.
func (s *EventSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
