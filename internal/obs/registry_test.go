package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test.reset_counter", "")
	g := r.NewGauge("test.reset_gauge", "")
	h := r.NewHistogram("test.reset_hist", "", []float64{1, 10})
	f := r.NewFunnel("test.reset_funnel", "")
	drop := f.Reason("gone")

	c.Add(5)
	g.Set(3.5)
	h.Observe(2)
	h.Observe(20)
	f.In(4)
	f.Out(3)
	drop.Inc()

	r.Reset()

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("metrics survived Reset: c=%d g=%v hn=%d hsum=%v",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
	if _, counts := h.Buckets(); counts[0]+counts[1]+counts[2] != 0 {
		t.Fatalf("histogram buckets survived Reset: %v", counts)
	}
	s := f.Snapshot()
	if s.In != 0 || s.Out != 0 || s.Dropped() != 0 {
		t.Fatalf("funnel survived Reset: %+v", s)
	}

	// Instances stay registered and usable: package-level metric vars keep
	// working after a test resets the registry.
	c.Inc()
	if r.NewCounter("test.reset_counter", "") != c || c.Value() != 1 {
		t.Fatal("Reset unregistered the counter")
	}
}

func TestSnapshotIncludesHelp(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test.help_counter", "counts things")
	r.NewGauge("test.help_gauge", "gauges things")
	r.NewHistogram("test.help_hist", "buckets things", []float64{1})

	snap := r.Snapshot()
	for name, want := range map[string]string{
		"test.help_counter": "counts things",
		"test.help_gauge":   "gauges things",
		"test.help_hist":    "buckets things",
	} {
		if snap[name].Help != want {
			t.Fatalf("%s help = %q, want %q", name, snap[name].Help, want)
		}
	}

	// Help travels into the manifest (and from there into runsdiff output).
	mc := NewCounter("test.manifest_help", "documented in the manifest")
	mc.Inc()
	m := BuildManifest("test", 1, "tiny", NewTracer(), time.Time{})
	if m.Metrics["test.manifest_help"].Help != "documented in the manifest" {
		t.Fatalf("manifest lost help: %+v", m.Metrics["test.manifest_help"])
	}

	// Accessors for direct use.
	if mc.Help() != "documented in the manifest" {
		t.Fatalf("Counter.Help = %q", mc.Help())
	}
	var nilC *Counter
	if nilC.Help() != "" {
		t.Fatal("nil Counter.Help must be empty")
	}
}

// TestConcurrentHistogramSum drives Observe from many goroutines with
// integer-valued observations, whose float sums are exact in any order — so
// under -race this both exercises the CAS loop for data races and proves no
// observation is lost to a failed swap.
func TestConcurrentHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test.cas_sum", "", []float64{100, 1000})
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%7 + 1)) // 1..7, exactly representable
			}
		}(w)
	}
	wg.Wait()

	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	// Per worker: full cycles of 1+..+7=28 plus the partial cycle's prefix.
	wantPerWorker := 0.0
	for i := 0; i < per; i++ {
		wantPerWorker += float64(i%7 + 1)
	}
	if want := wantPerWorker * workers; h.Sum() != want {
		t.Fatalf("CAS sum = %v, want %v (lost updates)", h.Sum(), want)
	}
	_, counts := h.Buckets()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
}

// TestObsPageEscapesUntrustedStrings guards the debug page against markup
// injection from span attribute values and metric names.
func TestObsPageEscapesUntrustedStrings(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("stage-<script>alert(1)</script>")
	sp.SetAttr("payload", `<img src=x onerror="alert(1)">`)
	sp.End()

	rec := httptest.NewRecorder()
	writeObsPage(rec, tr, time.Now())
	body := rec.Body.String()
	if strings.Contains(body, "<script>alert(1)") || strings.Contains(body, "<img src=x") {
		t.Fatalf("unescaped markup reached the page:\n%s", body)
	}
	if !strings.Contains(body, "&lt;script&gt;") {
		t.Fatalf("span name not rendered escaped:\n%s", body)
	}
	if !strings.Contains(body, "payload=&lt;img") {
		t.Fatalf("span attr not rendered escaped:\n%s", body)
	}
}
