package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestObsPageDeepNesting: the live page renders every level of a deeply
// nested span tree, indentation growing with depth, so a par worker's
// sub-spans do not silently vanish from the progress view.
func TestObsPageDeepNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("l0")
	l1 := root.Child("l1")
	l2 := l1.Child("l2")
	l3 := l2.Child("l3")
	l4 := l3.Child("l4")
	l4.End()
	l3.End()
	l2.End()
	l1.End()
	root.End()

	rec := httptest.NewRecorder()
	writeObsPage(rec, tr, time.Now())
	body := rec.Body.String()

	prevIdx := -1
	for depth, name := range []string{"l0", "l1", "l2", "l3", "l4"} {
		indent := strings.Repeat("&nbsp;&nbsp;", depth)
		row := "<td>" + indent + name + "</td>"
		idx := strings.Index(body, row)
		if idx < 0 {
			t.Fatalf("level %d row %q missing from page:\n%s", depth, row, body)
		}
		if idx < prevIdx {
			t.Fatalf("level %d rendered before its parent", depth)
		}
		prevIdx = idx
	}
}

// TestObsPageWorkerAttrs: the busy/idle accounting par attaches to worker
// spans reaches the page — and stays escaped even when an attribute value
// carries markup (attrs are caller-supplied strings too).
func TestObsPageWorkerAttrs(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("region")
	w := root.Child("region/worker-0")
	w.SetAttr("worker", 0)
	w.SetAttr("busy_ms", 12.5)
	w.SetAttr("idle_ms", 0.5)
	w.SetAttr("queue_wait_ms", 0.1)
	w.SetAttr("tasks", 9)
	w.SetAttr("note", `<b onmouseover="x()">hot</b>`)
	w.End()
	root.SetAttr("par:region", "workers=1 tasks=9 busy=12.5ms wall=13.0ms eff=96%")
	root.End()

	rec := httptest.NewRecorder()
	writeObsPage(rec, tr, time.Now())
	body := rec.Body.String()

	for _, want := range []string{
		"busy_ms=12.5", "idle_ms=0.5", "queue_wait_ms=0.1", "tasks=9",
		"par:region=workers=1 tasks=9",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("page missing worker accounting %q", want)
		}
	}
	if strings.Contains(body, "<b onmouseover") {
		t.Fatalf("unescaped attr markup reached the page:\n%s", body)
	}
	if !strings.Contains(body, "note=&lt;b") {
		t.Fatalf("attr value not rendered escaped:\n%s", body)
	}
}
