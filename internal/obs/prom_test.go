package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Line grammars of the 0.0.4 text format: comment lines and samples with an
// optional label set. Kept deliberately strict — a scraper's lexer is.
var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"$`)
)

// validatePromText parses an exposition document the way a scraper's lexer
// would and returns the sample lines grouped per family name (histogram
// series fold into their base family).
func validatePromText(t *testing.T, r io.Reader) map[string][]string {
	t.Helper()
	families := make(map[string][]string)
	typed := make(map[string]string)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if m := promHelpRe.FindStringSubmatch(text); m != nil {
				continue
			}
			if m := promTypeRe.FindStringSubmatch(text); m != nil {
				typed[m[1]] = m[2]
				continue
			}
			t.Fatalf("line %d: malformed comment line %q", line, text)
		}
		m := promSampleRe.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("line %d: malformed sample line %q", line, text)
		}
		name, labels := m[1], m[2]
		if labels != "" {
			for _, pair := range strings.Split(labels[1:len(labels)-1], ",") {
				if !promLabelRe.MatchString(pair) {
					t.Fatalf("line %d: malformed label %q", line, pair)
				}
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if _, ok := typed[trimmed]; ok && typed[trimmed] == "histogram" {
					base = trimmed
				}
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", line, name)
		}
		families[base] = append(families[base], text)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ping.rtts_measured", "RTT summaries kept").Add(42)
	r.NewGauge("capacity.sites_tracked", "sites tracked").Set(7.5)
	h := r.NewHistogram("ping.rtt_ms", "RTT distribution", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 3, 7, 100} {
		h.Observe(v)
	}
	f := r.NewFunnel("ping.filter", "campaign filter")
	f.In(10)
	f.Out(8)
	f.Drop("unresponsive", 2)

	var b strings.Builder
	r.WritePrometheus(&b)
	families := validatePromText(t, strings.NewReader(b.String()))

	// Registry dots map to underscores.
	if _, ok := families["ping_rtts_measured"]; !ok {
		t.Fatalf("counter family missing; have %v", families)
	}
	if got := families["ping_rtts_measured"]; len(got) != 1 || got[0] != "ping_rtts_measured 42" {
		t.Fatalf("counter sample = %q", got)
	}

	// Histogram: cumulative buckets ending at +Inf == _count, plus _sum.
	hist := families["ping_rtt_ms"]
	wantHist := []string{
		`ping_rtt_ms_bucket{le="1"} 1`,
		`ping_rtt_ms_bucket{le="5"} 2`,
		`ping_rtt_ms_bucket{le="10"} 3`,
		`ping_rtt_ms_bucket{le="+Inf"} 4`,
		`ping_rtt_ms_sum 110.5`,
		`ping_rtt_ms_count 4`,
	}
	if len(hist) != len(wantHist) {
		t.Fatalf("histogram series = %q, want %q", hist, wantHist)
	}
	for i := range wantHist {
		if hist[i] != wantHist[i] {
			t.Fatalf("histogram series[%d] = %q, want %q", i, hist[i], wantHist[i])
		}
	}

	// Funnels export as three labelled counter families.
	if got := families["funnel_in_total"]; len(got) != 1 || got[0] != `funnel_in_total{funnel="ping.filter"} 10` {
		t.Fatalf("funnel_in_total = %q", got)
	}
	if got := families["funnel_dropped_total"]; len(got) != 1 ||
		got[0] != `funnel_dropped_total{funnel="ping.filter",reason="unresponsive"} 2` {
		t.Fatalf("funnel_dropped_total = %q", got)
	}

	// Deterministic: equal registry states render byte-identically.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b.String() != b2.String() {
		t.Fatal("two renders of the same registry differ")
	}
}

func TestPromEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter(`weird.name-with"chars`, "help with \\backslash and\nnewline").Inc()
	f := r.NewFunnel("funnel\"with\\quotes", "")
	f.In(1)
	f.Drop("reason\nwith_newline", 1)

	var b strings.Builder
	r.WritePrometheus(&b)
	validatePromText(t, strings.NewReader(b.String()))

	out := b.String()
	if !strings.Contains(out, "weird_name_with_chars 1") {
		t.Fatalf("invalid metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `help with \\backslash and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `funnel="funnel\"with\\quotes"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test.requests_served", "requests").Add(3)
	srv := httptest.NewServer(PromHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, PromContentType)
	}
	families := validatePromText(t, resp.Body)
	if _, ok := families["test_requests_served"]; !ok {
		t.Fatalf("missing family; have %v", families)
	}
}

// TestPromFloatFormats pins the number spellings scrapers accept.
func TestPromFloatFormats(t *testing.T) {
	for v, want := range map[float64]string{
		1.5: "1.5", 42: "42", 0: "0",
	} {
		if got := promFloat(v); got != want {
			t.Fatalf("promFloat(%v) = %q, want %q", v, got, want)
		}
		if _, err := strconv.ParseFloat(promFloat(v), 64); err != nil {
			t.Fatalf("promFloat(%v) unparseable: %v", v, err)
		}
	}
	if got := promFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("promFloat(+Inf) = %q", got)
	}
}
